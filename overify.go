// Package overify is a from-scratch reproduction of
//
//	Wagner, Kuznetsov, Candea.
//	"-OVERIFY: Optimizing Programs for Fast Verification." HotOS 2013.
//
// It implements the whole stack the paper's prototype was built on:
// a small C dialect (MiniC) with a clang-style front end, a typed SSA
// IR, the optimization passes -OVERIFY composes (inlining, loop
// unswitching and unrolling, if-conversion, mem2reg, jump threading,
// constant folding, CSE, LICM, runtime-check insertion, range
// annotation), a KLEE-style symbolic-execution engine with a constraint
// solver, a bytecode VM for timed concrete runs, two libc variants
// (uclibc-style and verification-friendly), and a Coreutils-like corpus.
//
// The headline API mirrors the paper's workflow:
//
//	c, err := overify.Compile("wc", src, overify.OVerify)
//	rep, err := c.Verify("umain", overify.VerifyOptions{InputBytes: 10})
//	fmt.Println(rep.Stats.Paths)   // 11 for the paper's wc at -OVERIFY
//
// The benchmark harness in cmd/overify-bench regenerates every table
// and figure of the paper; see EXPERIMENTS.md for the measured results.
package overify

import (
	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/libc"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// Level is a compiler optimization level (-O0 ... -OVERIFY).
type Level = pipeline.Level

// Optimization levels. OVerify is the paper's proposed switch.
const (
	O0      = pipeline.O0
	O1      = pipeline.O1
	O2      = pipeline.O2
	O3      = pipeline.O3
	OVerify = pipeline.OVerify
)

// LibcKind selects the linked C library variant.
type LibcKind = libc.Kind

// Libc variants: the uclibc-style baseline and the verification-
// oriented library -OVERIFY links (§3, "Library-level changes").
const (
	Uclibc   = libc.Uclibc
	Verified = libc.Verified
)

// Compiled is a compiled program; see Compile.
type Compiled = core.Compiled

// RunResult is the outcome of a concrete execution.
type RunResult = core.RunResult

// VerifyOptions configure symbolic verification (input size, limits).
type VerifyOptions = core.VerifyOptions

// Report is a symbolic-execution report: path/instruction/solver
// statistics plus any bugs found, each with a reproducing input.
type Report = symex.Report

// Program is one entry of the bundled Coreutils-like corpus.
type Program = coreutils.Program

// Compile parses MiniC source, links the level's default libc
// (Verified for OVerify, Uclibc otherwise), and optimizes.
func Compile(name, src string, level Level) (*Compiled, error) {
	return core.CompileSource(name, src, level, core.DefaultLibc(level))
}

// CompileWithLibc is Compile with an explicit libc choice.
func CompileWithLibc(name, src string, level Level, lk LibcKind) (*Compiled, error) {
	return core.CompileSource(name, src, level, lk)
}

// Corpus returns the bundled utility programs (the paper's Coreutils
// stand-in), sorted by name.
func Corpus() []Program { return coreutils.All() }

// CorpusProgram looks up one bundled program by name.
func CorpusProgram(name string) (Program, bool) { return coreutils.Get(name) }

// ParseLevel converts "-O0" ... "-OVERIFY"/"-OSYMBEX" spellings.
func ParseLevel(s string) (Level, error) { return pipeline.ParseLevel(s) }
