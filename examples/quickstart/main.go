// Quickstart: compile a MiniC program with -OVERIFY and verify it
// exhaustively — the package's three-line workflow.
package main

import (
	"fmt"
	"log"

	"overify"
)

const src = `
int umain(unsigned char *input, int len) {
	int vowels = 0;
	int i = 0;
	while (input[i] != 0) {
		int c = tolower((int)input[i]);
		if (c == 'a' || c == 'e' || c == 'i' || c == 'o' || c == 'u') {
			vowels = vowels + 1;
		}
		i = i + 1;
	}
	return vowels;
}
`

func main() {
	// Compile with the verification-oriented pipeline. -OVERIFY links
	// the verification-friendly libc automatically.
	c, err := overify.Compile("vowels", src, overify.OVerify)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled in %s (%d passes, %d -> %d instructions)\n",
		c.Result.CompileTime, c.Result.PassesRun, c.Result.InstrsIn, c.Result.InstrsOut)

	// Run it concretely first.
	rr, err := c.Run("umain", []byte("symbolic execution"))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("concrete run: exit=%d (vowel count)\n", rr.Exit)

	// Now verify: explore every path for all inputs of up to 8 bytes.
	rep, err := c.Verify("umain", overify.VerifyOptions{InputBytes: 8})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("verified %d paths in %s (%d instructions, %d solver queries)\n",
		rep.Stats.Paths, rep.Stats.Elapsed, rep.Stats.Instrs, rep.Stats.SolverStats.Queries)
	if len(rep.Bugs) == 0 {
		fmt.Println("no bugs: the program is crash-free for every input up to 8 bytes")
	}
	for _, b := range rep.Bugs {
		fmt.Printf("BUG [%s] %s — input %q\n", b.Kind, b.Msg, b.Input)
	}
}
