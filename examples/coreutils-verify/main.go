// Coreutils-verify runs the paper's §4 experiment on a handful of
// corpus utilities: compile at -O0, -O3 and -OVERIFY, verify each with
// the same symbolic input, and print the per-level cost side by side.
package main

import (
	"fmt"
	"log"
	"time"

	"overify"
	"overify/internal/pipeline"
)

func main() {
	programs := []string{"echo", "tr", "cut", "grep-v", "uniq-c", "cksum"}
	const inputBytes = 5

	fmt.Printf("verifying %d utilities with %d symbolic input bytes\n\n", len(programs), inputBytes)
	fmt.Printf("%-10s %8s | %12s %12s %12s\n", "program", "", "-O0", "-O3", "-OVERIFY")

	for _, name := range programs {
		p, ok := overify.CorpusProgram(name)
		if !ok {
			log.Fatalf("no corpus program %q", name)
		}
		times := make(map[overify.Level]string)
		paths := make(map[overify.Level]int64)
		for _, level := range []overify.Level{pipeline.O0, pipeline.O3, pipeline.OVerify} {
			c, err := overify.Compile(p.Name, p.Src, level)
			if err != nil {
				log.Fatal(err)
			}
			opts := overify.VerifyOptions{InputBytes: inputBytes}
			opts.Engine.Timeout = 20 * time.Second
			rep, err := c.Verify("umain", opts)
			if err != nil {
				log.Fatal(err)
			}
			total := c.Result.CompileTime + rep.Stats.Elapsed
			s := total.Round(10 * time.Microsecond).String()
			if rep.Stats.TimedOut {
				s = ">" + s
			}
			times[level] = s
			paths[level] = rep.Stats.TotalPaths()
		}
		fmt.Printf("%-10s %8s | %12s %12s %12s\n", name, "time",
			times[pipeline.O0], times[pipeline.O3], times[pipeline.OVerify])
		fmt.Printf("%-10s %8s | %12d %12d %12d\n", "", "paths",
			paths[pipeline.O0], paths[pipeline.O3], paths[pipeline.OVerify])
	}
}
