// Passes-explore shows what each -OVERIFY pass does to the paper's wc
// function: it prints the IR after every stage, ending with the
// branch-free loop body of Listing 2.
package main

import (
	"fmt"
	"log"

	"overify/internal/frontend"
	"overify/internal/ir"
	"overify/internal/lang"
	"overify/internal/libc"
	"overify/internal/passes"
	"overify/internal/pipeline"
)

const wcSrc = `
int wc(unsigned char *str, int any) {
	int res = 0;
	int new_word = 1;
	for (unsigned char *p = str; *p; ++p) {
		if (isspace(*p) || (any && !isalpha(*p))) {
			new_word = 1;
		} else {
			if (new_word) {
				++res;
				new_word = 0;
			}
		}
	}
	return res;
}
`

func main() {
	progFile, err := lang.Parse(wcSrc)
	if err != nil {
		log.Fatal(err)
	}
	libFile, err := libc.Parse(libc.Verified)
	if err != nil {
		log.Fatal(err)
	}
	mod, err := frontend.LowerFiles("wc", libFile, progFile)
	if err != nil {
		log.Fatal(err)
	}

	stages := []struct {
		name string
		seq  []passes.Pass
	}{
		{"mem2reg (SSA construction)", []passes.Pass{passes.Mem2Reg()}},
		{"cleanup (fold, CSE, CFG, DCE)", []passes.Pass{
			passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE()}},
		{"aggressive inlining", []passes.Pass{passes.Inline(), passes.Mem2Reg(),
			passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE()}},
		{"if-conversion to fixpoint (Listing 2)", []passes.Pass{passes.Fixpoint(12,
			passes.JumpThread(), passes.LICM(), passes.IfConvert(),
			passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE())}},
	}

	cost := pipeline.VerifyCost()
	report := func(stage string) {
		wc := mod.Func("wc")
		fmt.Printf("=== after %s: %d instructions, %d conditional branches ===\n",
			stage, wc.NumInstrs(), wc.NumBranches())
	}
	wc := mod.Func("wc")
	fmt.Printf("=== frontend output (-O0): %d instructions, %d conditional branches ===\n",
		wc.NumInstrs(), wc.NumBranches())

	for _, st := range stages {
		cx := &passes.Context{Cost: cost}
		for _, p := range st.seq {
			p.Run(mod, cx)
		}
		if err := ir.VerifyModule(mod); err != nil {
			log.Fatalf("after %s: %v", st.name, err)
		}
		report(st.name)
	}
	fmt.Println("\nfinal wc (only the loop-header branch remains):")
	fmt.Println(mod.Func("wc").String())
}
