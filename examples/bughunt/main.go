// Bughunt demonstrates the verification payoff: a utility with three
// seeded bugs (an off-by-one buffer write, a division that can see zero,
// and a violated assertion). Symbolic execution at -OVERIFY finds all
// of them and emits a concrete reproducing input for each — the paper's
// "bugs are found closer to their root cause" argument.
package main

import (
	"fmt"
	"log"

	"overify"
)

const src = `
int umain(unsigned char *input, int len) {
	unsigned char field[4];
	int n = 0;
	int i = 0;
	// Bug 1: off-by-one — accepts 5 bytes into a 4-byte buffer when the
	// input starts with ':'.
	while (input[i] != 0 && n <= 4) {
		if (input[i] == ':') {
			field[n] = input[i];   // n can be 4 here: out of bounds
			n = n + 1;
		}
		i = i + 1;
	}
	// Bug 2: divides by a byte that can be zero... minus itself.
	int divisor = (int)input[0] - (int)input[1];
	int scaled = 0;
	if (len >= 2 && input[0] != 0) {
		scaled = 100 / divisor;    // input[0] == input[1] crashes
	}
	// Bug 3: a precondition that does not actually hold for all inputs.
	assert(n < 4 || scaled != 0);
	return n + scaled;
}
`

func main() {
	c, err := overify.Compile("fieldparse", src, overify.OVerify)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := c.Verify("umain", overify.VerifyOptions{InputBytes: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("explored %d paths (%d ended in errors) in %s\n",
		rep.Stats.TotalPaths(), rep.Stats.ErrorPaths, rep.Stats.Elapsed)
	if len(rep.Bugs) == 0 {
		fmt.Println("no bugs found (unexpected — this program has three!)")
		return
	}
	fmt.Printf("found %d distinct bugs:\n", len(rep.Bugs))
	for _, b := range rep.Bugs {
		fmt.Printf("  [%s] %s\n", b.Kind, b.Msg)
		if b.Input != nil {
			fmt.Printf("      reproduce with input: %q\n", string(b.Input))
		}
	}

	// The same bugs are found at -O0 — optimization levels change the
	// cost of verification, not its verdicts (§4: "all bugs discovered
	// ... with -O0 and -O3 are also found with -OSYMBEX").
	c0, err := overify.Compile("fieldparse", src, overify.O0)
	if err != nil {
		log.Fatal(err)
	}
	rep0, err := c0.Verify("umain", overify.VerifyOptions{InputBytes: 6})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat -O0: %d bugs in %s (vs %s at -OVERIFY)\n",
		len(rep0.Bugs), rep0.Stats.Elapsed, rep.Stats.Elapsed)
}
