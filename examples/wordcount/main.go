// Wordcount reproduces the paper's Table 1 narrative interactively: the
// same wc function compiled four ways, verified and timed, showing the
// verification/execution conflict the paper opens with.
package main

import (
	"fmt"
	"log"
	"time"

	"overify/internal/bench"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

func main() {
	const n = 8 // symbolic string length; the paper uses 10
	fmt.Printf("exhaustively verifying wc over all strings of up to %d bytes\n\n", n)
	fmt.Printf("%-10s %12s %12s %12s %10s %10s\n",
		"level", "compile", "verify", "run", "paths", "instrs")

	for _, level := range []pipeline.Level{
		pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify,
	} {
		c, err := bench.CompileAt("wc", bench.WcSource, level)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := bench.VerifyWc(c, n, symex.Options{Timeout: 120 * time.Second})
		if err != nil {
			log.Fatal(err)
		}
		runTime, _, err := bench.TimeConcreteRun(c, "wc", bench.WordText(20000), interp.IntVal(ir.I32, 0))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12s %12s %12s %10d %10d\n",
			level, c.Result.CompileTime.Round(time.Microsecond),
			rep.Stats.Elapsed.Round(time.Microsecond),
			runTime.Round(time.Microsecond),
			rep.Stats.Paths, rep.Stats.Instrs)
	}
	fmt.Println("\nNote the conflict: -OVERIFY verifies orders of magnitude faster but")
	fmt.Println("runs slower than -O3 — branches are cheap for CPUs, expensive for verifiers.")
}
