module overify

go 1.24
