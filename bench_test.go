// Package-level benchmarks: one testing.B benchmark per paper table or
// figure, so `go test -bench=. -benchmem` regenerates every experiment
// at laptop scale. The full-size runs (10 symbolic bytes, long
// timeouts) live behind cmd/overify-bench; these keep the iteration
// loop fast while preserving every measured shape.
package overify_test

import (
	"fmt"
	"testing"
	"time"

	"overify"
	"overify/internal/bench"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/vm"
)

// BenchmarkTable1Verify measures t_verify for wc per optimization level
// (Table 1, row 1) at 6 symbolic bytes.
func BenchmarkTable1Verify(b *testing.B) {
	for _, level := range []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify} {
		b.Run(level.String(), func(b *testing.B) {
			c, err := bench.CompileAt("wc", bench.WcSource, level)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := bench.VerifyWc(c, 6, symex.Options{})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Stats.Paths), "paths")
				b.ReportMetric(float64(rep.Stats.Instrs), "sym-instrs")
			}
		})
	}
}

// BenchmarkTable1Compile measures t_compile per level (Table 1, row 2).
func BenchmarkTable1Compile(b *testing.B) {
	for _, level := range []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify} {
		b.Run(level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.CompileAt("wc", bench.WcSource, level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable1Run measures t_run per level (Table 1, row 3): the
// concrete word-count over a generated text, showing the -OVERIFY
// execution penalty vs -O3.
func BenchmarkTable1Run(b *testing.B) {
	text := bench.WordText(20000)
	for _, level := range []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify} {
		b.Run(level.String(), func(b *testing.B) {
			c, err := bench.CompileAt("wc", bench.WcSource, level)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := bench.TimeConcreteRun(c, "wc", text, interp.IntVal(ir.I32, 0)); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkTable2Ablation measures the per-transformation ablation
// (Table 2) as one benchmark iteration per full table.
func BenchmarkTable2Ablation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table2(bench.Table2Options{InputBytes: 2})
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) == 0 {
			b.Fatal("no rows")
		}
	}
}

// BenchmarkTable3PassStats measures the corpus compile sweep that
// produces Table 3.
func BenchmarkTable3PassStats(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table3()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.Failures != 0 {
				b.Fatalf("%s: %d failures", r.Level, r.Failures)
			}
		}
	}
}

// BenchmarkFigure4Corpus measures compile+verify per (program, level)
// for a representative slice of the corpus (Figure 4's bars).
func BenchmarkFigure4Corpus(b *testing.B) {
	programs := []string{"echo", "tr", "wc", "grep-v", "cksum", "stat"}
	for _, name := range programs {
		p, ok := overify.CorpusProgram(name)
		if !ok {
			b.Fatalf("no program %s", name)
		}
		for _, level := range bench.Figure4Levels {
			b.Run(name+"/"+level.String(), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					c, err := overify.Compile(p.Name, p.Src, level)
					if err != nil {
						b.Fatal(err)
					}
					opts := overify.VerifyOptions{InputBytes: 4}
					opts.Engine.Timeout = 10 * time.Second
					rep, err := c.Verify("umain", opts)
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(rep.Stats.TotalPaths()), "paths")
				}
			})
		}
	}
}

// BenchmarkParallelVerify measures t_verify at 1..N workers on the
// fork-heavy -O0 build of wc (the worker-scaling study's hot cell):
// per-level wall-clock at each worker count, verdicts independent of
// the count.
func BenchmarkParallelVerify(b *testing.B) {
	for _, level := range []pipeline.Level{pipeline.O0, pipeline.OVerify} {
		c, err := bench.CompileAt("wc", bench.WcSource, level)
		if err != nil {
			b.Fatal(err)
		}
		for _, workers := range []int{1, 2, 4} {
			b.Run(fmt.Sprintf("%s/workers=%d", level, workers), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					rep, err := bench.VerifyWc(c, 6, symex.Options{Workers: workers})
					if err != nil {
						b.Fatal(err)
					}
					b.ReportMetric(float64(rep.Stats.Paths), "paths")
				}
			})
		}
	}
}

// BenchmarkSolver measures raw solver throughput on the wc-style
// byte-classification queries that dominate verification time.
func BenchmarkSolver(b *testing.B) {
	c, err := bench.CompileAt("wc", bench.WcSource, pipeline.O0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := bench.VerifyWc(c, 3, symex.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.Stats.SolverStats.Queries), "queries")
	}
}

// BenchmarkVMvsInterp compares the two concrete execution substrates on
// the same compiled program (the "release binary" ablation).
func BenchmarkVMvsInterp(b *testing.B) {
	p, _ := overify.CorpusProgram("cksum")
	c, err := overify.CompileWithLibc(p.Name, p.Src, overify.O3, overify.Uclibc)
	if err != nil {
		b.Fatal(err)
	}
	input := make([]byte, 4000)
	for i := range input {
		input[i] = byte('a' + i%26)
	}
	b.Run("interp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := c.Run("umain", input); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("vm", func(b *testing.B) {
		prog, err := vm.Compile(c.Mod)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m := vm.NewMachine(prog)
			buf := vm.ByteObject("input", append(append([]byte{}, input...), 0))
			if _, err := m.Call("umain", vm.PtrValue(buf, 0), vm.IntValue(32, uint64(len(input)))); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCompileCorpus measures whole-corpus compile throughput per
// level (the t_compile side of Figure 4).
func BenchmarkCompileCorpus(b *testing.B) {
	for _, level := range []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify} {
		b.Run(level.String(), func(b *testing.B) {
			progs := overify.Corpus()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := progs[i%len(progs)]
				if _, err := overify.Compile(p.Name, p.Src, level); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
