// Package interp is the reference concrete executor for the IR. It defines
// the ground-truth semantics that the bytecode VM and the symbolic
// executor must agree with, and it doubles as the oracle for the
// differential tests that compare program behavior across optimization
// levels (the paper's §2.3 equivalence argument).
package interp

import (
	"fmt"

	"overify/internal/ir"
)

// TrapKind classifies run-time faults.
type TrapKind int

// Trap kinds; these are the "crashes" that §3's runtime checks turn all
// illegal behavior into.
const (
	TrapNone TrapKind = iota
	TrapDivByZero
	TrapNullDeref
	TrapOutOfBounds
	TrapCheckFailed
	TrapUnreachable
	TrapPtrDomain  // ptrdiff/relational cmp across different objects
	TrapStoreConst // write to read-only global
	TrapLimit      // step or stack budget exhausted
)

var trapNames = [...]string{
	"none", "division by zero", "null dereference", "out-of-bounds access",
	"check failed", "unreachable executed", "pointer domain error",
	"write to constant", "resource limit exceeded",
}

// String returns the trap description.
func (k TrapKind) String() string {
	if int(k) < len(trapNames) {
		return trapNames[k]
	}
	return "trap?"
}

// Trap is a run-time fault raised by the interpreter.
type Trap struct {
	Kind TrapKind
	Msg  string
}

// Error formats the trap.
func (t *Trap) Error() string { return fmt.Sprintf("trap: %s: %s", t.Kind, t.Msg) }

// Object is a memory object: Count elements of an element type. Cells
// hold full runtime values so that spilled pointers (clang -O0 style
// lowering) can live in memory. Pointers reference an Object plus an
// element offset.
type Object struct {
	Elem     ir.Type
	Count    int64
	Data     []Value
	ReadOnly bool
	Name     string
}

// Value is a runtime value: either an integer (Bits) or a pointer
// (Obj, Off). A nil Obj with IsPtr set is the null pointer.
type Value struct {
	IsPtr bool
	Bits  uint64
	Obj   *Object
	Off   int64
}

// IntVal makes an integer runtime value masked to the width of t.
func IntVal(t ir.IntType, v uint64) Value { return Value{Bits: ir.Mask(t.Bits, v)} }

// PtrVal makes a pointer runtime value.
func PtrVal(obj *Object, off int64) Value { return Value{IsPtr: true, Obj: obj, Off: off} }

// Stats counts the work performed during execution; the paper's t_run and
// instruction-count columns come from here.
type Stats struct {
	Instrs   int64 // instructions executed
	Branches int64 // conditional branches executed
	Loads    int64
	Stores   int64
	Calls    int64
	MaxDepth int // deepest call stack
}

// Options bound an execution.
type Options struct {
	MaxSteps int64 // 0 means the default (100M)
	MaxDepth int   // 0 means the default (10k frames)
}

// Machine executes IR functions concretely.
type Machine struct {
	Mod     *ir.Module
	Stats   Stats
	opts    Options
	globals map[*ir.Global]*Object
	depth   int
}

// NewMachine prepares a machine with fresh global storage.
func NewMachine(mod *ir.Module, opts Options) *Machine {
	if opts.MaxSteps == 0 {
		opts.MaxSteps = 100_000_000
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 10_000
	}
	m := &Machine{Mod: mod, opts: opts, globals: make(map[*ir.Global]*Object)}
	for _, g := range mod.Globals {
		obj := &Object{Elem: g.Elem, Count: g.Count, ReadOnly: g.ReadOnly, Name: "@" + g.Name}
		obj.Data = make([]Value, g.Count)
		for i, v := range g.Init {
			obj.Data[i] = Value{Bits: v}
		}
		m.globals[g] = obj
	}
	return m
}

// NewObject allocates a standalone object (used by drivers to build
// argument buffers).
func NewObject(name string, elem ir.IntType, data []uint64) *Object {
	d := make([]Value, len(data))
	for i, v := range data {
		d[i] = Value{Bits: ir.Mask(elem.Bits, v)}
	}
	return &Object{Elem: elem, Count: int64(len(data)), Data: d, Name: name}
}

// ByteObject builds an i8 object from raw bytes.
func ByteObject(name string, b []byte) *Object {
	d := make([]Value, len(b))
	for i, c := range b {
		d[i] = Value{Bits: uint64(c)}
	}
	return &Object{Elem: ir.I8, Count: int64(len(b)), Data: d, Name: name}
}

// GlobalData returns a snapshot of the integer cell values of the named
// global, for drivers reading program output after a run.
func (m *Machine) GlobalData(name string) ([]uint64, bool) {
	g := m.Mod.Global(name)
	if g == nil {
		return nil, false
	}
	obj := m.globals[g]
	out := make([]uint64, len(obj.Data))
	for i, c := range obj.Data {
		out[i] = c.Bits
	}
	return out, true
}

// Call runs the named function with the given arguments and returns its
// result.
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	fn := m.Mod.Func(name)
	if fn == nil {
		return Value{}, fmt.Errorf("interp: no function %q", name)
	}
	return m.callFunc(fn, args)
}

func (m *Machine) trap(kind TrapKind, format string, args ...interface{}) error {
	return &Trap{Kind: kind, Msg: fmt.Sprintf(format, args...)}
}

func (m *Machine) callFunc(fn *ir.Function, args []Value) (Value, error) {
	if fn.IsDeclaration() {
		return Value{}, fmt.Errorf("interp: call to declaration %q", fn.Name)
	}
	if len(args) != len(fn.Params) {
		return Value{}, fmt.Errorf("interp: call %s: %d args, want %d", fn.Name, len(args), len(fn.Params))
	}
	m.depth++
	if m.depth > m.Stats.MaxDepth {
		m.Stats.MaxDepth = m.depth
	}
	defer func() { m.depth-- }()
	if m.depth > m.opts.MaxDepth {
		return Value{}, m.trap(TrapLimit, "call depth exceeds %d", m.opts.MaxDepth)
	}

	frame := make(map[ir.Value]Value, 32)
	for i, p := range fn.Params {
		frame[p] = args[i]
	}

	block := fn.Entry()
	var prev *ir.Block
	for {
		// Phase 1: evaluate phis together (they read edge values).
		phis := block.Phis()
		if len(phis) > 0 {
			tmp := make([]Value, len(phis))
			for i, phi := range phis {
				v := phi.PhiIncoming(prev)
				if v == nil {
					return Value{}, fmt.Errorf("interp: %s/%s: phi %s has no edge from %s",
						fn.Name, block.Name, phi.Ref(), prev.Name)
				}
				ev, err := m.eval(frame, v)
				if err != nil {
					return Value{}, err
				}
				tmp[i] = ev
				m.Stats.Instrs++
			}
			for i, phi := range phis {
				frame[phi] = tmp[i]
			}
		}

		for _, in := range block.Instrs[len(phis):] {
			m.Stats.Instrs++
			if m.Stats.Instrs > m.opts.MaxSteps {
				return Value{}, m.trap(TrapLimit, "step budget %d exhausted", m.opts.MaxSteps)
			}
			switch in.Op {
			case ir.OpBr:
				prev, block = block, in.Succs[0]
			case ir.OpCondBr:
				m.Stats.Branches++
				c, err := m.eval(frame, in.Args[0])
				if err != nil {
					return Value{}, err
				}
				if c.Bits != 0 {
					prev, block = block, in.Succs[0]
				} else {
					prev, block = block, in.Succs[1]
				}
			case ir.OpRet:
				if len(in.Args) == 0 {
					return Value{}, nil
				}
				return m.eval(frame, in.Args[0])
			case ir.OpUnreachable:
				return Value{}, m.trap(TrapUnreachable, "in %s/%s", fn.Name, block.Name)
			default:
				v, err := m.step(frame, in)
				if err != nil {
					return Value{}, err
				}
				if !ir.SameType(in.Typ, ir.Void) {
					frame[in] = v
				}
				continue
			}
			break // took a terminator: resume outer loop with new block
		}
	}
}

// eval resolves an operand to a runtime value.
func (m *Machine) eval(frame map[ir.Value]Value, v ir.Value) (Value, error) {
	switch x := v.(type) {
	case *ir.Const:
		return Value{Bits: x.Val}, nil
	case *ir.Null:
		return Value{IsPtr: true}, nil
	case *ir.Global:
		return PtrVal(m.globals[x], 0), nil
	default:
		rv, ok := frame[v]
		if !ok {
			return Value{}, fmt.Errorf("interp: use of undefined value %s", v.Ref())
		}
		return rv, nil
	}
}

// step executes one non-terminator, non-phi instruction.
func (m *Machine) step(frame map[ir.Value]Value, in *ir.Instr) (Value, error) {
	ev := func(i int) (Value, error) { return m.eval(frame, in.Args[i]) }
	switch {
	case in.Op.IsBinary():
		a, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		b, err := ev(1)
		if err != nil {
			return Value{}, err
		}
		bits := in.Typ.(ir.IntType).Bits
		r, ok := ir.EvalBin(in.Op, bits, a.Bits, b.Bits)
		if !ok {
			return Value{}, m.trap(TrapDivByZero, "%s in %s", in.Op, in.Blk.Fn.Name)
		}
		return Value{Bits: r}, nil

	case in.Op.IsCmp():
		a, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		b, err := ev(1)
		if err != nil {
			return Value{}, err
		}
		if a.IsPtr || b.IsPtr {
			return m.cmpPtr(in, a, b)
		}
		bits := in.Args[0].Type().(ir.IntType).Bits
		if ir.EvalCmp(in.Op, bits, a.Bits, b.Bits) {
			return Value{Bits: 1}, nil
		}
		return Value{Bits: 0}, nil
	}

	switch in.Op {
	case ir.OpSelect:
		c, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		// Note: both arms are evaluated operands (they are values already
		// computed); select itself is branch-free.
		t, err := ev(1)
		if err != nil {
			return Value{}, err
		}
		f, err := ev(2)
		if err != nil {
			return Value{}, err
		}
		if c.Bits != 0 {
			return t, nil
		}
		return f, nil

	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		a, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		from := in.Args[0].Type().(ir.IntType).Bits
		to := in.Typ.(ir.IntType).Bits
		return Value{Bits: ir.EvalCast(in.Op, from, to, a.Bits)}, nil

	case ir.OpAlloca:
		obj := &Object{
			Elem:  in.Allocated,
			Count: in.Count,
			Data:  make([]Value, in.Count),
			Name:  fmt.Sprintf("%s.%s", in.Blk.Fn.Name, in.Ref()),
		}
		return PtrVal(obj, 0), nil

	case ir.OpGEP:
		p, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		idx, err := ev(1)
		if err != nil {
			return Value{}, err
		}
		if p.Obj == nil {
			return Value{}, m.trap(TrapNullDeref, "gep on null pointer")
		}
		return PtrVal(p.Obj, p.Off+int64(idx.Bits)), nil

	case ir.OpPtrDiff:
		a, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		b, err := ev(1)
		if err != nil {
			return Value{}, err
		}
		if a.Obj != b.Obj {
			return Value{}, m.trap(TrapPtrDomain, "ptrdiff across objects")
		}
		return Value{Bits: uint64(a.Off - b.Off)}, nil

	case ir.OpLoad:
		p, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		m.Stats.Loads++
		if p.Obj == nil {
			return Value{}, m.trap(TrapNullDeref, "load from null")
		}
		if p.Off < 0 || p.Off >= p.Obj.Count {
			return Value{}, m.trap(TrapOutOfBounds, "load %s[%d] (size %d)", p.Obj.Name, p.Off, p.Obj.Count)
		}
		return p.Obj.Data[p.Off], nil

	case ir.OpStore:
		v, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		p, err := ev(1)
		if err != nil {
			return Value{}, err
		}
		m.Stats.Stores++
		if p.Obj == nil {
			return Value{}, m.trap(TrapNullDeref, "store to null")
		}
		if p.Off < 0 || p.Off >= p.Obj.Count {
			return Value{}, m.trap(TrapOutOfBounds, "store %s[%d] (size %d)", p.Obj.Name, p.Off, p.Obj.Count)
		}
		if p.Obj.ReadOnly {
			return Value{}, m.trap(TrapStoreConst, "store to %s", p.Obj.Name)
		}
		if !v.IsPtr {
			if et, ok := p.Obj.Elem.(ir.IntType); ok {
				v.Bits = ir.Mask(et.Bits, v.Bits)
			}
		}
		p.Obj.Data[p.Off] = v
		return Value{}, nil

	case ir.OpCall:
		m.Stats.Calls++
		args := make([]Value, len(in.Args))
		for i := range in.Args {
			a, err := ev(i)
			if err != nil {
				return Value{}, err
			}
			args[i] = a
		}
		return m.callFunc(in.Callee, args)

	case ir.OpCheck:
		c, err := ev(0)
		if err != nil {
			return Value{}, err
		}
		if c.Bits == 0 {
			return Value{}, m.trap(TrapCheckFailed, "%s: %s", in.Kind, in.Msg)
		}
		return Value{}, nil
	}
	return Value{}, fmt.Errorf("interp: cannot execute %s", in.Op)
}

func (m *Machine) cmpPtr(in *ir.Instr, a, b Value) (Value, error) {
	boolVal := func(c bool) Value {
		if c {
			return Value{Bits: 1}
		}
		return Value{Bits: 0}
	}
	switch in.Op {
	case ir.OpEq:
		return boolVal(a.Obj == b.Obj && (a.Obj == nil || a.Off == b.Off)), nil
	case ir.OpNe:
		return boolVal(a.Obj != b.Obj || (a.Obj != nil && a.Off != b.Off)), nil
	}
	if a.Obj != b.Obj {
		return Value{}, m.trap(TrapPtrDomain, "relational pointer comparison across objects")
	}
	switch in.Op {
	case ir.OpULt:
		return boolVal(a.Off < b.Off), nil
	case ir.OpULe:
		return boolVal(a.Off <= b.Off), nil
	case ir.OpUGt:
		return boolVal(a.Off > b.Off), nil
	case ir.OpUGe:
		return boolVal(a.Off >= b.Off), nil
	}
	return Value{}, fmt.Errorf("interp: bad pointer comparison %s", in.Op)
}
