package interp_test

import (
	"errors"
	"testing"

	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
)

func runSrc(t *testing.T, src, fn string, args ...interp.Value) (interp.Value, error) {
	t.Helper()
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m := interp.NewMachine(mod, interp.Options{})
	return m.Call(fn, args...)
}

func i32v(v int64) interp.Value { return interp.IntVal(ir.I32, uint64(v)) }

func TestArithmetic(t *testing.T) {
	src := `
	int f(int a, int b) {
		return (a + b) * 3 - a / (b + 1) + a % 7;
	}`
	ret, err := runSrc(t, src, "f", i32v(20), i32v(4))
	if err != nil {
		t.Fatal(err)
	}
	want := int64((20+4)*3 - 20/5 + 20%7)
	if got := ir.SignExtend(32, ret.Bits); got != want {
		t.Errorf("got %d, want %d", got, want)
	}
}

func TestSignedNegatives(t *testing.T) {
	src := `
	int f(int a) {
		if (a < 0) { return -a / 2; }
		return a * -1;
	}`
	ret, err := runSrc(t, src, "f", i32v(-10))
	if err != nil {
		t.Fatal(err)
	}
	if got := ir.SignExtend(32, ret.Bits); got != 5 {
		t.Errorf("f(-10) = %d, want 5", got)
	}
	ret, _ = runSrc(t, src, "f", i32v(7))
	if got := ir.SignExtend(32, ret.Bits); got != -7 {
		t.Errorf("f(7) = %d, want -7", got)
	}
}

func TestTrapDivByZero(t *testing.T) {
	_, err := runSrc(t, `int f(int a) { return 1 / a; }`, "f", i32v(0))
	var tr *interp.Trap
	if !errors.As(err, &tr) || tr.Kind != interp.TrapDivByZero {
		t.Errorf("err = %v, want div-by-zero trap", err)
	}
}

func TestTrapOutOfBounds(t *testing.T) {
	_, err := runSrc(t, `int f(int i) { int a[3]; return a[i]; }`, "f", i32v(5))
	var tr *interp.Trap
	if !errors.As(err, &tr) || tr.Kind != interp.TrapOutOfBounds {
		t.Errorf("err = %v, want out-of-bounds trap", err)
	}
}

func TestTrapNullDeref(t *testing.T) {
	src := `
	int deref(int *p) { return *p; }
	int f(void) { return deref((int*)0); }`
	_, err := runSrc(t, src, "f")
	var tr *interp.Trap
	if !errors.As(err, &tr) || tr.Kind != interp.TrapNullDeref {
		t.Errorf("err = %v, want null-deref trap", err)
	}
}

func TestTrapStoreToConst(t *testing.T) {
	src := `
	const char tab[2] = {1, 2};
	void f(void) { tab[0] = 9; }`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(mod, interp.Options{})
	_, err = m.Call("f")
	var tr *interp.Trap
	if !errors.As(err, &tr) || tr.Kind != interp.TrapStoreConst {
		t.Errorf("err = %v, want store-const trap", err)
	}
}

func TestRecursionAndDepthLimit(t *testing.T) {
	src := `
	int fib(int n) {
		if (n < 2) { return n; }
		return fib(n - 1) + fib(n - 2);
	}
	int inf(int n) { return inf(n + 1); }`
	ret, err := runSrc(t, src, "fib", i32v(15))
	if err != nil {
		t.Fatal(err)
	}
	if ret.Bits != 610 {
		t.Errorf("fib(15) = %d", ret.Bits)
	}
	_, err = runSrc(t, src, "inf", i32v(0))
	var tr *interp.Trap
	if !errors.As(err, &tr) || tr.Kind != interp.TrapLimit {
		t.Errorf("err = %v, want limit trap", err)
	}
}

func TestStepBudget(t *testing.T) {
	src := `int f(void) { int i = 0; while (1) { i++; } return i; }`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(mod, interp.Options{MaxSteps: 10_000})
	_, err = m.Call("f")
	var tr *interp.Trap
	if !errors.As(err, &tr) || tr.Kind != interp.TrapLimit {
		t.Errorf("err = %v, want step-limit trap", err)
	}
}

func TestPointerIdioms(t *testing.T) {
	src := `
	int f(unsigned char *s) {
		unsigned char *p = s;
		while (*p) { p++; }
		return (int)(p - s);
	}`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(mod, interp.Options{})
	buf := interp.ByteObject("s", []byte("hello\x00"))
	ret, err := m.Call("f", interp.PtrVal(buf, 0))
	if err != nil {
		t.Fatal(err)
	}
	if ret.Bits != 5 {
		t.Errorf("strlen via ptrdiff = %d", ret.Bits)
	}
}

func TestGlobalState(t *testing.T) {
	src := `
	int counter;
	int bump(void) { counter += 1; return counter; }
	int f(void) { bump(); bump(); return bump(); }`
	ret, err := runSrc(t, src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if ret.Bits != 3 {
		t.Errorf("counter = %d, want 3", ret.Bits)
	}
}

func TestCharWrapping(t *testing.T) {
	// unsigned char arithmetic wraps at 256 via truncation on store.
	src := `
	int f(void) {
		unsigned char c = 200;
		c = (unsigned char)(c + 100);
		return (int)c;
	}`
	ret, err := runSrc(t, src, "f")
	if err != nil {
		t.Fatal(err)
	}
	if ret.Bits != 44 {
		t.Errorf("got %d, want 44 (300 mod 256)", ret.Bits)
	}
}

func TestStats(t *testing.T) {
	src := `int f(int n) { int s = 0; for (int i = 0; i < n; i++) { s += i; } return s; }`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	m := interp.NewMachine(mod, interp.Options{})
	if _, err := m.Call("f", i32v(10)); err != nil {
		t.Fatal(err)
	}
	if m.Stats.Instrs == 0 || m.Stats.Branches == 0 || m.Stats.Stores == 0 {
		t.Errorf("stats not collected: %+v", m.Stats)
	}
}
