package coreutils_test

import (
	"bytes"
	"fmt"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
)

// runAt compiles a corpus program at the level (with the level's
// default libc) and executes it concretely on the sample input.
func runAt(t *testing.T, p coreutils.Program, level pipeline.Level, input []byte) *core.RunResult {
	t.Helper()
	c, err := core.CompileProgram(p, level)
	if err != nil {
		t.Fatalf("%s at %s: compile: %v", p.Name, level, err)
	}
	rr, err := c.Run("umain", input)
	if err != nil {
		t.Fatalf("%s at %s: run: %v", p.Name, level, err)
	}
	return rr
}

// TestCorpusGoldenParity runs every coreutil through the concrete
// interpreter at -O0 and -OVERIFY on its sample input and asserts the
// observable behavior (exit code and OUT sink bytes) is identical —
// the §2.3 requirement that -OVERIFY builds stay semantically
// equivalent to the unoptimized program.
func TestCorpusGoldenParity(t *testing.T) {
	for _, p := range coreutils.All() {
		o0 := runAt(t, p, pipeline.O0, []byte(p.Sample))
		ov := runAt(t, p, pipeline.OVerify, []byte(p.Sample))
		if o0.Exit != ov.Exit {
			t.Errorf("%s: exit at -O0 = %d, at -OVERIFY = %d", p.Name, o0.Exit, ov.Exit)
		}
		if !bytes.Equal(o0.Output, ov.Output) {
			t.Errorf("%s: output at -O0 = %q, at -OVERIFY = %q", p.Name, o0.Output, ov.Output)
		}
	}
}

// golden pins the exact observable behavior of representative corpus
// programs on their sample inputs. The parity test above catches -O0
// and -OVERIFY drifting apart; this one catches both drifting together
// away from the documented semantics.
var golden = []struct {
	name string
	exit int64
	out  string
}{
	{"true", 0, ""},
	{"false", 1, ""},
	{"echo", 0, "hello world\n"},
	{"cat", 15, "some text\nlines"},
	{"wc", 3, ""},
	{"wc-l", 3, ""},
	{"wc-c", 6, ""},
	{"basename", 4, "tool"},
	{"dirname", 7, "usr/bin"},
	{"rev", 6, "fedcba"},
	{"toupper", 10, "MIXED CASE"},
	{"tolower", 10, "mixed case"},
	{"tr", 0, "lbh blbh"},
	{"uniq", 4, "abcd"},
	{"sort", 4, "abcd"},
	{"yes", 0, "y\ny\ny\ny\n"},
	{"seq", 5, "1\n2\n3\n4\n5\n"},
}

// TestCorpusGoldenOutputs checks the pinned expectations at every
// level: the corpus programs are the benchmark substrate, so their
// semantics must never drift silently.
func TestCorpusGoldenOutputs(t *testing.T) {
	levels := []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.OVerify}
	for _, g := range golden {
		p, ok := coreutils.Get(g.name)
		if !ok {
			t.Fatalf("no corpus program %q", g.name)
		}
		for _, level := range levels {
			rr := runAt(t, p, level, []byte(p.Sample))
			if rr.Exit != g.exit {
				t.Errorf("%s at %s: exit = %d, want %d", g.name, level, rr.Exit, g.exit)
			}
			if string(rr.Output) != g.out {
				t.Errorf("%s at %s: output = %q, want %q", g.name, level, rr.Output, g.out)
			}
		}
	}
}

// TestCorpusRegistry pins the registry invariants the harnesses rely
// on: sorted iteration, name lookup, and non-empty sample inputs.
func TestCorpusRegistry(t *testing.T) {
	all := coreutils.All()
	if len(all) < 30 {
		t.Fatalf("corpus has %d programs, expected the full suite (30+)", len(all))
	}
	names := coreutils.Names()
	if len(names) != len(all) {
		t.Fatalf("Names() returned %d entries for %d programs", len(names), len(all))
	}
	for i, p := range all {
		if p.Name != names[i] {
			t.Errorf("All()[%d].Name = %q but Names()[%d] = %q", i, p.Name, i, names[i])
		}
		if i > 0 && all[i-1].Name >= p.Name {
			t.Errorf("All() not sorted: %q before %q", all[i-1].Name, p.Name)
		}
		if p.Sample == "" {
			t.Errorf("%s: empty sample input", p.Name)
		}
		if p.Src == "" {
			t.Errorf("%s: empty source", p.Name)
		}
		got, ok := coreutils.Get(p.Name)
		if !ok || got.Name != p.Name {
			t.Errorf("Get(%q) failed", p.Name)
		}
	}
	if _, ok := coreutils.Get("no-such-program"); ok {
		t.Error("Get of unknown program reported ok")
	}
}

// TestCorpusGoldenCoverage makes the golden table keep up with the
// corpus: every pinned name must exist (renames fail loudly, not by
// silently testing nothing).
func TestCorpusGoldenCoverage(t *testing.T) {
	for _, g := range golden {
		if _, ok := coreutils.Get(g.name); !ok {
			t.Errorf("golden entry %q is not in the corpus", g.name)
		}
	}
	if len(golden) < 15 {
		t.Errorf("golden table has %d entries, keep at least 15 pinned", len(golden))
	}
}

// ExampleAll demonstrates corpus iteration for the doc page.
func ExampleAll() {
	for _, p := range coreutils.All()[:3] {
		fmt.Printf("%s: %s\n", p.Name, p.Desc)
	}
	// Output:
	// base32: 5-bit group encoding
	// basename: strip directory prefix
	// cat: copy input until NUL
}
