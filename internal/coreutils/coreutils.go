// Package coreutils is the reproduction's stand-in for the Coreutils
// 6.10 suite the paper evaluates (§4): a corpus of small text utilities
// written in MiniC against the internal/libc contract. Each program has
// the driver signature
//
//	int umain(unsigned char *input, int len)
//
// where input is a NUL-terminated buffer (symbolic during verification,
// concrete during timing runs) and len its length. Programs read flags
// and data out of the buffer — mirroring how the KLEE coreutils study
// passes symbolic command-line arguments — write results through the
// libc OUT sink, and return an exit code.
package coreutils

import "sort"

// Program is one corpus entry.
type Program struct {
	Name   string
	Desc   string
	Src    string
	Sample string // concrete input for timing and differential runs
}

var registry = map[string]Program{}

func register(p Program) {
	if _, dup := registry[p.Name]; dup {
		panic("coreutils: duplicate program " + p.Name)
	}
	registry[p.Name] = p
}

// All returns the corpus sorted by name.
func All() []Program {
	out := make([]Program, 0, len(registry))
	for _, p := range registry {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Names returns the sorted program names.
func Names() []string {
	ps := All()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// Get returns the named program.
func Get(name string) (Program, bool) {
	p, ok := registry[name]
	return p, ok
}

func init() {
	register(Program{
		Name: "true", Desc: "exit successfully", Sample: "x",
		Src: `
int umain(unsigned char *input, int len) {
	return 0;
}
`})

	register(Program{
		Name: "false", Desc: "exit unsuccessfully", Sample: "x",
		Src: `
int umain(unsigned char *input, int len) {
	return 1;
}
`})

	register(Program{
		Name: "echo", Desc: "copy input to output", Sample: "hello world",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (i < len) {
		putch((int)input[i]);
		i = i + 1;
	}
	putch('\n');
	return 0;
}
`})

	register(Program{
		Name: "cat", Desc: "copy input until NUL", Sample: "some text\nlines",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		putch((int)input[i]);
		i = i + 1;
	}
	return i;
}
`})

	register(Program{
		Name: "wc", Desc: "count words separated by whitespace", Sample: "two  words here",
		Src: `
int umain(unsigned char *input, int len) {
	int res = 0;
	int new_word = 1;
	int i = 0;
	while (input[i] != 0) {
		if (isspace((int)input[i])) {
			new_word = 1;
		} else {
			if (new_word) {
				res = res + 1;
				new_word = 0;
			}
		}
		i = i + 1;
	}
	return res;
}
`})

	register(Program{
		Name: "wc-l", Desc: "count newline characters", Sample: "a\nb\nc\n",
		Src: `
int umain(unsigned char *input, int len) {
	int lines = 0;
	int i = 0;
	while (input[i] != 0) {
		if (input[i] == '\n') {
			lines = lines + 1;
		}
		i = i + 1;
	}
	return lines;
}
`})

	register(Program{
		Name: "wc-c", Desc: "count bytes until NUL", Sample: "abcdef",
		Src: `
int umain(unsigned char *input, int len) {
	return strlen_(input);
}
`})

	register(Program{
		Name: "basename", Desc: "strip directory prefix", Sample: "usr/bin/tool",
		Src: `
int umain(unsigned char *input, int len) {
	int slash = strrchr_(input, '/');
	int i = slash + 1;
	while (input[i] != 0) {
		putch((int)input[i]);
		i = i + 1;
	}
	return i - slash - 1;
}
`})

	register(Program{
		Name: "dirname", Desc: "strip trailing path component", Sample: "usr/bin/tool",
		Src: `
int umain(unsigned char *input, int len) {
	int slash = strrchr_(input, '/');
	if (slash < 0) {
		putch('.');
		return 0;
	}
	int i = 0;
	while (i < slash) {
		putch((int)input[i]);
		i = i + 1;
	}
	return slash;
}
`})

	register(Program{
		Name: "head", Desc: "first k bytes, k from leading byte", Sample: "4abcdefgh",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int k = (int)input[0] % 8;
	int i = 1;
	while (i <= k && input[i] != 0) {
		putch((int)input[i]);
		i = i + 1;
	}
	return i - 1;
}
`})

	register(Program{
		Name: "tail", Desc: "last k bytes, k from leading byte", Sample: "3abcdefgh",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int k = (int)input[0] % 8;
	int n = strlen_(input);
	int i = n - k;
	if (i < 1) {
		i = 1;
	}
	while (input[i] != 0) {
		putch((int)input[i]);
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "tr", Desc: "translate byte a to byte b", Sample: "ablah blah",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 2) {
		return 1;
	}
	int from = (int)input[0];
	int to = (int)input[1];
	int i = 2;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c == from) {
			putch(to);
		} else {
			putch(c);
		}
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "tr-d", Desc: "delete occurrences of a byte", Sample: "lhello world",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int del = (int)input[0];
	int kept = 0;
	int i = 1;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c != del) {
			putch(c);
			kept = kept + 1;
		}
		i = i + 1;
	}
	return kept;
}
`})

	register(Program{
		Name: "cut", Desc: "print field k of ':'-separated input", Sample: "1aa:bb:cc",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int want = (int)input[0] % 4;
	int field = 0;
	int i = 1;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c == ':') {
			field = field + 1;
		} else if (field == want) {
			putch(c);
		}
		i = i + 1;
	}
	if (field < want) {
		return 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "expand", Desc: "tabs to two spaces", Sample: "a\tb\tc",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		if (input[i] == '\t') {
			putch(' ');
			putch(' ');
		} else {
			putch((int)input[i]);
		}
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "unexpand", Desc: "double spaces to tabs", Sample: "a  b  c",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		if (input[i] == ' ' && input[i + 1] == ' ') {
			putch('\t');
			i = i + 2;
		} else {
			putch((int)input[i]);
			i = i + 1;
		}
	}
	return 0;
}
`})

	register(Program{
		Name: "fold", Desc: "newline every k bytes", Sample: "3abcdefghij",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int w = (int)input[0] % 8;
	if (w == 0) {
		w = 1;
	}
	int col = 0;
	int i = 1;
	while (input[i] != 0) {
		putch((int)input[i]);
		col = col + 1;
		if (col == w) {
			putch('\n');
			col = 0;
		}
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "nl", Desc: "number lines", Sample: "aa\nbb\ncc",
		Src: `
int umain(unsigned char *input, int len) {
	int line = 1;
	int at_start = 1;
	int i = 0;
	while (input[i] != 0) {
		if (at_start) {
			putch('0' + line % 10);
			putch(' ');
			at_start = 0;
		}
		putch((int)input[i]);
		if (input[i] == '\n') {
			line = line + 1;
			at_start = 1;
		}
		i = i + 1;
	}
	return line;
}
`})

	register(Program{
		Name: "rev", Desc: "reverse the input bytes", Sample: "abcdef",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int i = n - 1;
	while (i >= 0) {
		putch((int)input[i]);
		i = i - 1;
	}
	return n;
}
`})

	register(Program{
		Name: "tac", Desc: "lines in reverse order", Sample: "a\nbb\nc",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int end = n;
	int i = n - 1;
	while (i >= 0) {
		if (input[i] == '\n' || i == 0) {
			int start = i;
			if (input[i] == '\n') {
				start = i + 1;
			}
			int j = start;
			while (j < end) {
				putch((int)input[j]);
				j = j + 1;
			}
			putch('\n');
			end = i;
		}
		i = i - 1;
	}
	return n;
}
`})

	register(Program{
		Name: "sum", Desc: "BSD rotating checksum", Sample: "checksum me",
		Src: `
int umain(unsigned char *input, int len) {
	int ck = 0;
	int i = 0;
	while (input[i] != 0) {
		ck = (ck >> 1) + ((ck & 1) << 15);
		ck = ck + (int)input[i];
		ck = ck & 0xFFFF;
		i = i + 1;
	}
	return ck;
}
`})

	register(Program{
		Name: "cksum", Desc: "shift-xor checksum", Sample: "crc input",
		Src: `
int umain(unsigned char *input, int len) {
	unsigned int crc = 0;
	int i = 0;
	while (input[i] != 0) {
		crc = crc ^ ((unsigned int)(int)input[i] << 8);
		int k = 0;
		while (k < 8) {
			if (crc & 0x8000) {
				crc = (crc << 1) ^ 0x1021;
			} else {
				crc = crc << 1;
			}
			crc = crc & 0xFFFF;
			k = k + 1;
		}
		i = i + 1;
	}
	return (int)crc;
}
`})

	register(Program{
		Name: "uniq", Desc: "squeeze repeated bytes", Sample: "aabbbcdd",
		Src: `
int umain(unsigned char *input, int len) {
	int prev = -1;
	int out = 0;
	int i = 0;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c != prev) {
			putch(c);
			out = out + 1;
		}
		prev = c;
		i = i + 1;
	}
	return out;
}
`})

	register(Program{
		Name: "sort", Desc: "sort bytes ascending (insertion sort)", Sample: "dcba",
		Src: `
int umain(unsigned char *input, int len) {
	unsigned char buf[16];
	int n = 0;
	while (n < 15 && input[n] != 0) {
		buf[n] = input[n];
		n = n + 1;
	}
	int i = 1;
	while (i < n) {
		int j = i;
		while (j > 0 && (int)buf[j - 1] > (int)buf[j]) {
			int t = (int)buf[j];
			buf[j] = buf[j - 1];
			buf[j - 1] = (unsigned char)t;
			j = j - 1;
		}
		i = i + 1;
	}
	int k = 0;
	while (k < n) {
		putch((int)buf[k]);
		k = k + 1;
	}
	return n;
}
`})

	register(Program{
		Name: "comm", Desc: "compare two halves byte-wise", Sample: "abcabd",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int half = n / 2;
	int same = 0;
	int i = 0;
	while (i < half) {
		if (input[i] == input[half + i]) {
			same = same + 1;
		}
		i = i + 1;
	}
	return same;
}
`})

	register(Program{
		Name: "paste", Desc: "interleave two halves", Sample: "abc123",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int half = n / 2;
	int i = 0;
	while (i < half) {
		putch((int)input[i]);
		putch((int)input[half + i]);
		i = i + 1;
	}
	return half;
}
`})

	register(Program{
		Name: "od", Desc: "octal dump", Sample: "AB",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		int c = (int)input[i];
		putch('0' + ((c >> 6) & 7));
		putch('0' + ((c >> 3) & 7));
		putch('0' + (c & 7));
		putch(' ');
		i = i + 1;
	}
	return i;
}
`})

	register(Program{
		Name: "base32", Desc: "5-bit group encoding", Sample: "data!",
		Src: `
int umain(unsigned char *input, int len) {
	int acc = 0;
	int nbits = 0;
	int i = 0;
	while (input[i] != 0) {
		acc = (acc << 8) | (int)input[i];
		nbits = nbits + 8;
		while (nbits >= 5) {
			int v = (acc >> (nbits - 5)) & 31;
			if (v < 26) {
				putch('A' + v);
			} else {
				putch('2' + v - 26);
			}
			nbits = nbits - 5;
		}
		i = i + 1;
	}
	if (nbits > 0) {
		int v = (acc << (5 - nbits)) & 31;
		if (v < 26) {
			putch('A' + v);
		} else {
			putch('2' + v - 26);
		}
	}
	return i;
}
`})

	register(Program{
		Name: "yes", Desc: "emit y bounded by input length", Sample: "xxxx",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (i < len) {
		putch('y');
		putch('\n');
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "seq", Desc: "digits 1..k, k from leading byte", Sample: "5",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int k = (int)input[0] % 8;
	int i = 1;
	while (i <= k) {
		putch('0' + i);
		putch('\n');
		i = i + 1;
	}
	return k;
}
`})

	register(Program{
		Name: "test", Desc: "tiny [ expression: equality of two halves", Sample: "ab=ab",
		Src: `
int umain(unsigned char *input, int len) {
	int eq = strchr_(input, '=');
	if (eq < 0) {
		return 2;
	}
	int i = 0;
	int j = eq + 1;
	while (i < eq && input[j] != 0) {
		if (input[i] != input[j]) {
			return 1;
		}
		i = i + 1;
		j = j + 1;
	}
	if (i == eq && input[j] == 0) {
		return 0;
	}
	return 1;
}
`})

	register(Program{
		Name: "printf", Desc: "format: %c consumes next byte, %% literal", Sample: "a%cb!",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c == '%' && input[i + 1] != 0) {
			int d = (int)input[i + 1];
			if (d == '%') {
				putch('%');
				i = i + 2;
			} else if (d == 'c' && input[i + 2] != 0) {
				putch((int)input[i + 2]);
				i = i + 3;
			} else {
				putch(d);
				i = i + 2;
			}
		} else {
			putch(c);
			i = i + 1;
		}
	}
	return 0;
}
`})

	register(Program{
		Name: "factor", Desc: "count prime factors of leading byte", Sample: "<",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int n = (int)input[0];
	if (n < 2) {
		return 0;
	}
	int count = 0;
	int d = 2;
	while (d * d <= n) {
		while (n % d == 0) {
			n = n / d;
			count = count + 1;
			putch('0' + d % 10);
		}
		d = d + 1;
	}
	if (n > 1) {
		count = count + 1;
		putch('0' + n % 10);
	}
	return count;
}
`})

	register(Program{
		Name: "cmp", Desc: "index of first difference of two halves", Sample: "abcaXc",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int half = n / 2;
	int i = 0;
	while (i < half) {
		if (input[i] != input[half + i]) {
			return i + 1;
		}
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "toupper", Desc: "uppercase the input", Sample: "MiXeD cAsE",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		putch(toupper((int)input[i]));
		i = i + 1;
	}
	return i;
}
`})

	register(Program{
		Name: "tolower", Desc: "lowercase the input", Sample: "MiXeD cAsE",
		Src: `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) {
		putch(tolower((int)input[i]));
		i = i + 1;
	}
	return i;
}
`})

	register(Program{
		Name: "strings", Desc: "runs of >=3 printable bytes", Sample: "ab\x01cdef\x02g",
		Src: `
int umain(unsigned char *input, int len) {
	int run = 0;
	int found = 0;
	int i = 0;
	while (input[i] != 0) {
		int c = (int)input[i];
		int printable = isalnum(c) | ispunct(c) | (c == ' ');
		if (printable) {
			run = run + 1;
			if (run == 3) {
				found = found + 1;
			}
		} else {
			run = 0;
		}
		i = i + 1;
	}
	return found;
}
`})

	register(Program{
		Name: "expr", Desc: "single-digit addition: a+b", Sample: "3+4",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 3) {
		return 255;
	}
	if (!isdigit((int)input[0]) || !isdigit((int)input[2])) {
		return 255;
	}
	int a = (int)input[0] - '0';
	int b = (int)input[2] - '0';
	int op = (int)input[1];
	if (op == '+') {
		return a + b;
	}
	if (op == '-') {
		return abs_(a - b);
	}
	if (op == '*') {
		return a * b;
	}
	if (op == '/') {
		if (b == 0) {
			return 255;
		}
		return a / b;
	}
	return 255;
}
`})

	register(Program{
		Name: "join", Desc: "emit common prefix of two halves", Sample: "abcabd",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int half = n / 2;
	int i = 0;
	while (i < half && input[i] == input[half + i]) {
		putch((int)input[i]);
		i = i + 1;
	}
	return i;
}
`})

	register(Program{
		Name: "shuf", Desc: "deterministic byte shuffle (xor fold)", Sample: "shuffle",
		Src: `
int umain(unsigned char *input, int len) {
	int n = strlen_(input);
	int i = 0;
	while (i < n) {
		int j = (i * 7 + 3) % n;
		putch((int)input[j]);
		i = i + 1;
	}
	return n;
}
`})
}
