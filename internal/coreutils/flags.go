package coreutils

// Flag-mode utilities: the first input byte selects a mode that the
// main loop tests on every iteration, with side-effecting arms (output
// calls). This is the control-flow shape real coreutils have (think
// `if (verbose)` inside a processing loop) and the one where loop
// unswitching — rather than if-conversion — is the profitable transform:
// the arms contain calls/stores, so they cannot be speculated, but the
// condition is loop-invariant, so the loop can be cloned per mode.
//
// Fixed-round utilities (hash16, mix32, rot13rounds) carry inner loops
// with constant trip counts between the -O3 and -OVERIFY unroll budgets,
// exercising the unroll-threshold difference Table 3 reports.
func init() {
	register(Program{
		Name: "grep-v", Desc: "print bytes (not) equal to a pattern byte, flag-invertible", Sample: "vxaxbxc",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 2) {
		return 2;
	}
	int invert = input[0] == 'v';
	int pat = (int)input[1];
	int matched = 0;
	int i = 2;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (invert) {
			if (c != pat) {
				putch(c);
				matched = matched + 1;
			}
		} else {
			if (c == pat) {
				putch(c);
				matched = matched + 1;
			}
		}
		i = i + 1;
	}
	if (matched > 0) {
		return 0;
	}
	return 1;
}
`})

	register(Program{
		Name: "cat-n", Desc: "cat with optional line numbering flag", Sample: "nab\ncd",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int number = input[0] == 'n';
	int line = 1;
	int at_start = 1;
	int i = 1;
	while (input[i] != 0) {
		if (number) {
			if (at_start) {
				putch('0' + line % 10);
				putch(' ');
				at_start = 0;
			}
		}
		putch((int)input[i]);
		if (input[i] == '\n') {
			line = line + 1;
			at_start = 1;
		}
		i = i + 1;
	}
	return line;
}
`})

	register(Program{
		Name: "wc-m", Desc: "count words or bytes depending on mode flag", Sample: "wtwo words",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int words_mode = input[0] == 'w';
	int count = 0;
	int in_word = 0;
	int i = 1;
	while (input[i] != 0) {
		if (words_mode) {
			if (isspace((int)input[i])) {
				in_word = 0;
			} else {
				if (!in_word) {
					count = count + 1;
					in_word = 1;
				}
			}
		} else {
			count = count + 1;
		}
		i = i + 1;
	}
	return count;
}
`})

	register(Program{
		Name: "tr-u", Desc: "case-map with direction flag tested per byte", Sample: "uMiXeD",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int up = input[0] == 'u';
	int i = 1;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (up) {
			putch(toupper(c));
		} else {
			putch(tolower(c));
		}
		i = i + 1;
	}
	return i - 1;
}
`})

	register(Program{
		Name: "uniq-c", Desc: "squeeze repeats, optionally with counts", Sample: "caabbb",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int counting = input[0] == 'c';
	int prev = -1;
	int run = 0;
	int i = 1;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c == prev) {
			run = run + 1;
		} else {
			if (prev >= 0) {
				if (counting) {
					putch('0' + run % 10);
					putch(' ');
				}
				putch(prev);
			}
			prev = c;
			run = 1;
		}
		i = i + 1;
	}
	if (prev >= 0) {
		if (counting) {
			putch('0' + run % 10);
			putch(' ');
		}
		putch(prev);
	}
	return 0;
}
`})

	register(Program{
		Name: "od-x", Desc: "dump bytes in octal or decimal by flag", Sample: "xAB",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int hexish = input[0] == 'x';
	int i = 1;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (hexish) {
			int hi = (c >> 4) & 15;
			int lo = c & 15;
			if (hi < 10) {
				putch('0' + hi);
			} else {
				putch('a' + hi - 10);
			}
			if (lo < 10) {
				putch('0' + lo);
			} else {
				putch('a' + lo - 10);
			}
		} else {
			putch('0' + ((c >> 6) & 7));
			putch('0' + ((c >> 3) & 7));
			putch('0' + (c & 7));
		}
		putch(' ');
		i = i + 1;
	}
	return i - 1;
}
`})

	register(Program{
		Name: "fold-s", Desc: "fold with optional space-squeeze flag", Sample: "sa  b c",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int squeeze = input[0] == 's';
	int prev_space = 0;
	int i = 1;
	while (input[i] != 0) {
		int c = (int)input[i];
		int sp = isspace(c);
		if (squeeze) {
			if (sp) {
				if (!prev_space) {
					putch(' ');
				}
			} else {
				putch(c);
			}
		} else {
			putch(c);
		}
		prev_space = sp;
		i = i + 1;
	}
	return 0;
}
`})

	register(Program{
		Name: "head-v", Desc: "head with optional marker flag per byte", Sample: "m3abcde",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 2) {
		return 1;
	}
	int mark = input[0] == 'm';
	int k = (int)input[1] % 8;
	int i = 2;
	int emitted = 0;
	while (emitted < k && input[i] != 0) {
		if (mark) {
			putch('>');
		}
		putch((int)input[i]);
		i = i + 1;
		emitted = emitted + 1;
	}
	return emitted;
}
`})

	register(Program{
		Name: "hash16", Desc: "16-round mixing hash over the input", Sample: "hashable",
		Src: `
int umain(unsigned char *input, int len) {
	unsigned int h = 0x811C;
	int i = 0;
	while (input[i] != 0) {
		h = h ^ (unsigned int)(int)input[i];
		int r = 0;
		while (r < 16) {
			h = (h * 31 + 7) & 0xFFFF;
			h = h ^ (h >> 3);
			r = r + 1;
		}
		i = i + 1;
	}
	return (int)(h & 0xFF);
}
`})

	register(Program{
		Name: "mix32", Desc: "32-round bit mixer over a seed byte", Sample: "Z",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	unsigned int x = (unsigned int)(int)input[0];
	int r = 0;
	while (r < 32) {
		x = (x << 1) ^ (x >> 2) ^ ((unsigned int)r * 0x9E37);
		x = x & 0xFFFFFF;
		r = r + 1;
	}
	return (int)(x & 0xFF);
}
`})

	register(Program{
		Name: "rot13rounds", Desc: "apply rot13 a fixed 26 times (identity)", Sample: "abc",
		Src: `
int umain(unsigned char *input, int len) {
	unsigned char buf[8];
	int n = 0;
	while (n < 7 && input[n] != 0) {
		buf[n] = input[n];
		n = n + 1;
	}
	int round = 0;
	while (round < 26) {
		int i = 0;
		while (i < n) {
			int c = (int)buf[i];
			if (c >= 'a' && c <= 'z') {
				c = 'a' + (c - 'a' + 1) % 26;
			}
			buf[i] = (unsigned char)c;
			i = i + 1;
		}
		round = round + 1;
	}
	int k = 0;
	while (k < n) {
		putch((int)buf[k]);
		k = k + 1;
	}
	return n;
}
`})

	register(Program{
		Name: "split-ab", Desc: "route bytes to alternating outputs by flag", Sample: "aXYZW",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int even_first = input[0] == 'a';
	int i = 1;
	while (input[i] != 0) {
		int is_even = ((i - 1) & 1) == 0;
		if (even_first) {
			if (is_even) {
				putch((int)input[i]);
			} else {
				putch('.');
			}
		} else {
			if (is_even) {
				putch('.');
			} else {
				putch((int)input[i]);
			}
		}
		i = i + 1;
	}
	return 0;
}
`})
}
