package coreutils

// Utilities with larger internal structure: helper functions above the
// CPU pipeline's inline threshold (but below -OVERIFY's), call chains
// deeper than the CPU pipeline's inline rounds, and mode loops bigger
// than its unswitch budget. These are the shapes that produce the
// paper's Table 3 gap between -O3 and -OSYMBEX on real coreutils.
func init() {
	register(Program{
		Name: "numfmt", Desc: "format each byte as padded decimal via a large helper", Sample: "pAB",
		Src: `
void emit3(int v, int pad) {
	int h = (v / 100) % 10;
	int t = (v / 10) % 10;
	int u = v % 10;
	if (pad) {
		putch('0' + h);
		putch('0' + t);
		putch('0' + u);
	} else {
		if (h != 0) {
			putch('0' + h);
			putch('0' + t);
			putch('0' + u);
		} else if (t != 0) {
			putch('0' + t);
			putch('0' + u);
		} else {
			putch('0' + u);
		}
	}
	putch(' ');
}

int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int pad = input[0] == 'p';
	int i = 1;
	while (input[i] != 0) {
		emit3((int)input[i], pad);
		i = i + 1;
	}
	return i - 1;
}
`})

	register(Program{
		Name: "stat", Desc: "per-byte class census through a call chain", Sample: "a1 B!",
		Src: `
int classify1(int c) {
	if (isalpha(c)) {
		return 1;
	}
	return 0;
}
int classify2(int c) {
	if (classify1(c)) {
		return 1;
	}
	if (isdigit(c)) {
		return 2;
	}
	return 0;
}
int classify3(int c) {
	int k = classify2(c);
	if (k != 0) {
		return k;
	}
	if (isspace(c)) {
		return 3;
	}
	return 0;
}
int classify4(int c) {
	int k = classify3(c);
	if (k != 0) {
		return k;
	}
	if (ispunct(c)) {
		return 4;
	}
	return 5;
}
int classify5(int c) {
	int k = classify4(c);
	if (k == 5 && c == 0) {
		return 0;
	}
	return k;
}

int umain(unsigned char *input, int len) {
	int alpha = 0;
	int digit = 0;
	int space = 0;
	int punct = 0;
	int other = 0;
	int i = 0;
	while (input[i] != 0) {
		int k = classify5((int)input[i]);
		if (k == 1) {
			alpha = alpha + 1;
		} else if (k == 2) {
			digit = digit + 1;
		} else if (k == 3) {
			space = space + 1;
		} else if (k == 4) {
			punct = punct + 1;
		} else {
			other = other + 1;
		}
		i = i + 1;
	}
	return alpha * 16 + digit * 8 + space * 4 + punct * 2 + other;
}
`})

	register(Program{
		Name: "pr", Desc: "page formatter: wide flag loop with many output sites", Sample: "hln one\ntwo",
		Src: `
int umain(unsigned char *input, int len) {
	if (len < 3) {
		return 1;
	}
	int header = input[0] == 'h';
	int lnum = input[1] == 'l';
	int nflag = input[2] == 'n';
	int line = 1;
	int at_start = 1;
	int i = 3;
	if (header) {
		putch('=');
		putch('=');
		putch('\n');
	}
	while (input[i] != 0) {
		int c = (int)input[i];
		if (at_start) {
			if (header) {
				putch('|');
				putch(' ');
			}
			if (lnum) {
				putch('0' + line / 10 % 10);
				putch('0' + line % 10);
				putch(':');
				putch(' ');
			}
			at_start = 0;
		}
		if (nflag) {
			if (c == '\n') {
				putch('$');
				putch('\n');
			} else {
				putch(c);
			}
		} else {
			putch(c);
		}
		if (c == '\n') {
			line = line + 1;
			at_start = 1;
		}
		i = i + 1;
	}
	return line;
}
`})

	register(Program{
		Name: "csplit", Desc: "split stream at marker with big per-section helper", Sample: ";ab;cd",
		Src: `
void section(int idx, int first, int last) {
	putch('[');
	if (idx >= 10) {
		putch('0' + idx / 10 % 10);
	}
	putch('0' + idx % 10);
	putch(']');
	if (first) {
		putch('^');
	}
	if (last) {
		putch('$');
	}
	putch(' ');
}

int umain(unsigned char *input, int len) {
	if (len < 1) {
		return 1;
	}
	int marker = (int)input[0];
	int idx = 0;
	int i = 1;
	int started = 0;
	while (input[i] != 0) {
		int c = (int)input[i];
		if (c == marker) {
			idx = idx + 1;
			started = 0;
		} else {
			if (!started) {
				section(idx, idx == 0, input[i + 1] == 0);
				started = 1;
			}
			putch(c);
		}
		i = i + 1;
	}
	return idx;
}
`})

	register(Program{
		Name: "checksum64", Desc: "64-round avalanche over the input", Sample: "avalanche",
		Src: `
unsigned int mixround(unsigned int h, unsigned int k) {
	h = h ^ (k * 0x9E37);
	h = (h << 3) ^ (h >> 5);
	return h & 0xFFFFFF;
}

int umain(unsigned char *input, int len) {
	unsigned int h = 0xABCDEF;
	int i = 0;
	while (input[i] != 0) {
		h = h ^ (unsigned int)(int)input[i];
		int r = 0;
		while (r < 48) {
			h = mixround(h, (unsigned int)r);
			r = r + 1;
		}
		i = i + 1;
	}
	return (int)(h & 0xFF);
}
`})
}
