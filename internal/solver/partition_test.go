package solver

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// randomStream builds a random path-condition stream over n byte vars:
// single-var bounds, two-var links and table reads — the constraint mix
// the engine appends branch by branch.
func randomStream(b *expr.Builder, vs []*expr.Var, rng *rand.Rand, length int) []*expr.Expr {
	table := classTable()
	var pc []*expr.Expr
	for len(pc) < length {
		v := b.Var(vs[rng.Intn(len(vs))])
		switch rng.Intn(4) {
		case 0:
			pc = append(pc, b.Cmp(ir.OpULt, v, b.Const(8, uint64(1+rng.Intn(250)))))
		case 1:
			w := b.Var(vs[rng.Intn(len(vs))])
			c := b.Cmp(ir.OpULe, v, w)
			if c.Kind != expr.KConst {
				pc = append(pc, c)
			}
		case 2:
			read := b.Read(table, 8, b.Cast(ir.OpZExt, v, 64))
			pc = append(pc, b.Cmp(ir.OpEq, read, b.Const(8, 0)))
		default:
			pc = append(pc, b.Cmp(ir.OpNe, v, b.Const(8, uint64(rng.Intn(256)))))
		}
	}
	return pc
}

// TestPartitionMatchesScratch: extending a carried partition one
// constraint at a time must produce, at every prefix, exactly the
// groups a from-scratch partition of that prefix produces — same
// groups, same constraint order within groups, same group order.
func TestPartitionMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		b := expr.NewBuilder()
		vs := vars(6)
		pc := randomStream(b, vs, rng, 12)
		var p *Partition
		for k, c := range pc {
			p = p.Extend(c)
			scratch := PartitionOf(pc[:k+1])
			got, want := p.Groups(), scratch.Groups()
			if len(got) != len(want) {
				t.Fatalf("trial %d prefix %d: %d groups, scratch has %d", trial, k+1, len(got), len(want))
			}
			for i := range got {
				if fmt.Sprint(got[i].cs) != fmt.Sprint(want[i].cs) {
					t.Fatalf("trial %d prefix %d group %d: %v != scratch %v",
						trial, k+1, i, got[i].cs, want[i].cs)
				}
				if got[i].fp != want[i].fp {
					t.Fatalf("trial %d prefix %d group %d: fingerprint drift", trial, k+1, i)
				}
			}
		}
	}
}

// TestSatPartitionEquivalence: deciding through a carried partition
// must agree with the slice API on a fresh solver at every prefix, and
// models must satisfy the query.
func TestSatPartitionEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 60; trial++ {
		b := expr.NewBuilder()
		vs := vars(5)
		pc := randomStream(b, vs, rng, 8)
		carried := New(Options{})
		var p *Partition
		for k, c := range pc {
			p = p.Extend(c)
			fresh := New(Options{})
			want, _, errW := fresh.Sat(pc[:k+1])
			got, model, errG := carried.SatPartition(p)
			if (errW == nil) != (errG == nil) {
				t.Fatalf("trial %d prefix %d: error drift %v vs %v", trial, k+1, errW, errG)
			}
			if got != want {
				t.Fatalf("trial %d prefix %d: sat=%v, fresh says %v", trial, k+1, got, want)
			}
			if got && !satisfies(pc[:k+1], model) {
				t.Fatalf("trial %d prefix %d: model does not satisfy query", trial, k+1)
			}
		}
	}
}

// TestPartitionVerdictReuse: groups decided on an earlier query are
// reused straight off the carried partition — no cache probe, counted
// as PartitionHits.
func TestPartitionVerdictReuse(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(3)
	s := New(Options{ModelHistory: 1})
	p := PartitionOf([]*expr.Expr{
		b.Cmp(ir.OpEq, b.Var(vs[0]), b.Const(8, 7)),
		b.Cmp(ir.OpEq, b.Var(vs[1]), b.Const(8, 9)),
	})
	if sat, _, err := s.SatPartition(p); err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	// Extend with a third, independent constraint. The old groups carry
	// verdicts; only the new group needs any lookup. Defeat model reuse
	// with a constraint the remembered model cannot satisfy.
	p2 := p.Extend(b.Cmp(ir.OpEq, b.Var(vs[2]), b.Const(8, 1)))
	before := s.Stats
	if sat, _, err := s.SatPartition(p2); err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if hits := s.Stats.PartitionHits - before.PartitionHits; hits != 2 {
		t.Errorf("PartitionHits delta = %d, want 2 (both untouched groups)", hits)
	}
	if s.Stats.CacheHits != before.CacheHits {
		t.Errorf("untouched groups probed the cache (%d hits)", s.Stats.CacheHits-before.CacheHits)
	}
}

// TestNoDagWalksOnQueryPath: the per-query path — partitioning,
// prefetch, search — must consume the interned variable sets; a fresh
// DAG walk anywhere shows up on the expr walk counter.
func TestNoDagWalksOnQueryPath(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(6)
	rng := rand.New(rand.NewSource(13))
	pc := randomStream(b, vs, rng, 10)
	start := expr.VarSetWalks()

	s := New(Options{})
	var p *Partition
	for _, c := range pc {
		p = p.Extend(c)
		if _, _, err := s.SatPartition(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Prefetch(pc, pc[:len(pc)-1])
	if _, _, err := s.Sat(pc); err != nil {
		t.Fatal(err)
	}
	if walks := expr.VarSetWalks() - start; walks != 0 {
		t.Errorf("per-query path performed %d fresh DAG walks; builder bitsets must cover it", walks)
	}
}

// TestFingerprintCanonical: the fingerprint depends only on the group's
// constraint set — append order and duplicates must not matter — and
// distinct groups get distinct fingerprints.
func TestFingerprintCanonical(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(2)
	c1 := b.Cmp(ir.OpULt, b.Var(vs[0]), b.Const(8, 10))
	c2 := b.Cmp(ir.OpUGe, b.Var(vs[0]), b.Const(8, 3))
	c3 := b.Cmp(ir.OpEq, b.Var(vs[0]), b.Var(vs[1]))

	fpOf := func(cs ...*expr.Expr) Fingerprint {
		p := PartitionOf(cs)
		if len(p.Groups()) != 1 {
			t.Fatalf("want one group, got %d", len(p.Groups()))
		}
		return p.Groups()[0].Fingerprint()
	}
	if fpOf(c1, c2, c3) != fpOf(c3, c2, c1) {
		t.Error("fingerprint depends on constraint order")
	}
	if fpOf(c1, c2, c3) != fpOf(c1, c2, c1, c3, c2) {
		t.Error("fingerprint depends on duplicate constraints")
	}
	seen := map[Fingerprint]bool{fpOf(c1): true}
	for _, fp := range []Fingerprint{fpOf(c2), fpOf(c3), fpOf(c1, c2), fpOf(c1, c2, c3)} {
		if seen[fp] {
			t.Error("distinct groups share a fingerprint")
		}
		seen[fp] = true
	}
}

// TestOptionDefaults pins the documented defaults: the Options comments
// and NewWithCache must not drift apart again.
func TestOptionDefaults(t *testing.T) {
	s := New(Options{})
	if s.opts.MaxNodes != 65_536 {
		t.Errorf("MaxNodes default = %d, want 65536", s.opts.MaxNodes)
	}
	if s.opts.MaxWork != 8_000_000 {
		t.Errorf("MaxWork default = %d, want 8000000", s.opts.MaxWork)
	}
	if s.opts.ModelHistory != 8 {
		t.Errorf("ModelHistory default = %d, want 8", s.opts.ModelHistory)
	}
}

// TestGroupVerdictNoBudgetLaundering: a group that fails with ErrBudget
// must not park that failure in the group's atomic verdict pointer (or
// either cache) where later states would reuse it as a settled answer
// via PartitionHits. Budget failures retry; real verdicts stick.
func TestGroupVerdictNoBudgetLaundering(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(2)
	// One two-variable group the value-set propagation cannot collapse
	// (the kept-set "everything but 5" widens to top), so deciding it
	// requires real search work — which a one-assignment budget cannot
	// fund.
	c := b.Cmp(ir.OpNe, b.Bin(ir.OpXor, b.Var(vs[0]), b.Var(vs[1])), b.Const(8, 5))
	var p *Partition
	p = p.Extend(c)

	tiny := New(Options{MaxWork: 1})
	if _, _, err := tiny.SatPartition(p); !errors.Is(err, ErrBudget) {
		t.Fatalf("tiny budget: err = %v, want ErrBudget", err)
	}
	if tiny.Stats.Failures != 1 {
		t.Fatalf("Failures = %d, want 1", tiny.Stats.Failures)
	}
	for _, g := range p.Groups() {
		if g.verdict.Load() != nil {
			t.Fatal("budget failure was stored as a settled group verdict")
		}
	}

	// Retried, the same query must fail again — not hit a laundered
	// verdict in the partition or a cache.
	if _, _, err := tiny.SatPartition(p); !errors.Is(err, ErrBudget) {
		t.Fatalf("retry: err = %v, want ErrBudget", err)
	}
	if tiny.Stats.Failures != 2 || tiny.Stats.PartitionHits != 0 || tiny.Stats.CacheHits != 0 {
		t.Fatalf("retry stats = %+v, want second failure with no partition/cache hits", tiny.Stats)
	}

	// A solver with a real budget decides the group; its verdict lands
	// on the shared partition.
	generous := New(Options{})
	sat, model, err := generous.SatPartition(p)
	if err != nil || !sat {
		t.Fatalf("generous: sat=%v err=%v, want sat", sat, err)
	}
	if !satisfies([]*expr.Expr{c}, model) {
		t.Fatalf("generous model %v does not satisfy", model)
	}

	// Now the tiny solver reuses the settled verdict off the partition:
	// no search, no failure.
	sat, _, err = tiny.SatPartition(p)
	if err != nil || !sat {
		t.Fatalf("after settle: sat=%v err=%v, want sat via partition hit", sat, err)
	}
	if tiny.Stats.PartitionHits != 1 || tiny.Stats.Failures != 2 {
		t.Fatalf("after settle stats = %+v, want one partition hit and no new failures", tiny.Stats)
	}
}
