package solver

import "overify/internal/expr"

// The solver portfolio: when a group survives value-set propagation and
// stalls the default fixed-order search past Options.PortfolioStall
// assignments, K diverse configurations race on the same compiled tape
// and the first answer wins. A configuration differs from the default
// only in *order* — which value a variable tries first, which of
// several smallest-domain variables is branched on — never in what the
// search can conclude, so any configuration's answer is the group's
// answer.
//
// The race is deterministic: instead of wall-clock goroutine racing,
// configurations take turns under a doubling assignment budget
// (stall<<1, stall<<2, ... capped at MaxWork), in a fixed rotation.
// "First answer wins" means the first configuration to decide within
// its budget slice. Every assignment tried by every loser accrues to
// Stats.Assignments, so the win is measurable as a counter drop that is
// a pure function of the group — the same on every machine — which is
// what keeps verdict stores and MaxAssignments budgets
// machine-independent with the portfolio enabled.

// searchConfig is one portfolio member: a value-enumeration order and a
// min-domain tie-break. The zero value is the default configuration
// (ascending values, first minimum), byte-identical to the fixed-order
// solver.
type searchConfig struct {
	order   uint8 // 0 ascending, 1 descending, >=2 affine permutation
	tieLast bool  // branch on the last smallest-domain variable, not the first
}

// value maps enumeration step k to the candidate value under this
// configuration. n is the domain size, always a power of two, so an
// affine map with an odd multiplier is a bijection on [0, n).
func (c searchConfig) value(k, n uint64) uint64 {
	switch c.order {
	case 0:
		return k
	case 1:
		return n - 1 - k
	default:
		m := uint64(c.order)*2 + 1 // odd, coprime with n
		return (k*m + uint64(c.order)*7) & (n - 1)
	}
}

// portfolioConfig enumerates the race members. Index 0 is always the
// default configuration, so a race can never conclude something the
// fixed-order solver could not; the rest vary the value order
// (descending, then scattered affine permutations) and the tie-break.
func portfolioConfig(i int) searchConfig {
	switch i {
	case 0:
		return searchConfig{}
	case 1:
		return searchConfig{order: 1}
	case 2:
		return searchConfig{tieLast: true}
	case 3:
		return searchConfig{order: 1, tieLast: true}
	default:
		return searchConfig{order: uint8(i), tieLast: i%2 == 0}
	}
}

// searchPortfolio runs the stall probe and then the budget-doubling
// rotation over the K configured members. domains has already been
// propagated; each attempt gets a private copy (filtering mutates it).
func (s *Solver) searchPortfolio(t *tape, domains []domain) (bool, map[*expr.Var]uint64, error) {
	stall := s.opts.PortfolioStall
	if stall <= 0 {
		stall = 4096
	}
	if stall > s.opts.MaxWork {
		stall = s.opts.MaxWork
	}
	fresh := func() []domain {
		d := make([]domain, len(domains))
		copy(d, domains)
		return d
	}

	sat, model, err := s.searchTape(t, fresh(), searchConfig{}, stall)
	if err != ErrBudget {
		return sat, model, err
	}
	s.Stats.PortfolioRaces++

	for budget := stall; ; {
		budget *= 2
		if budget > s.opts.MaxWork || budget <= 0 {
			budget = s.opts.MaxWork
		}
		for ci := 0; ci < s.opts.Portfolio; ci++ {
			sat, model, err := s.searchTape(t, fresh(), portfolioConfig(ci), budget)
			if err == ErrBudget {
				continue
			}
			if err != nil {
				return false, nil, err
			}
			if ci != 0 {
				s.Stats.PortfolioWins++
			}
			return sat, model, nil
		}
		if budget >= s.opts.MaxWork {
			return false, nil, ErrBudget
		}
	}
}
