package solver_test

import (
	"sync"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/expr"
	"overify/internal/pipeline"
	"overify/internal/solver"
)

// Captured corpus workload: wc's real exploration (serial, -OVERIFY,
// 4 symbolic bytes) replayed once with solver.CaptureQuery installed.
// The capture is deterministic (serial DFS), so benchmarks before and
// after a solver change replay the same query stream.
var (
	captureOnce   sync.Once
	capturedWc    [][]*expr.Expr
	capturedWcErr error
)

func wcQueries(tb testing.TB) [][]*expr.Expr {
	tb.Helper()
	captureOnce.Do(func() {
		p, ok := coreutils.Get("wc")
		if !ok {
			capturedWcErr = nil
			return
		}
		c, err := core.CompileProgram(p, pipeline.OVerify)
		if err != nil {
			capturedWcErr = err
			return
		}
		solver.CaptureQuery = func(q []*expr.Expr) {
			capturedWc = append(capturedWc, append([]*expr.Expr(nil), q...))
		}
		defer func() { solver.CaptureQuery = nil }()
		_, capturedWcErr = c.Verify("umain", core.VerifyOptions{InputBytes: 4})
	})
	if capturedWcErr != nil {
		tb.Fatal(capturedWcErr)
	}
	if len(capturedWc) == 0 {
		tb.Fatal("no queries captured")
	}
	return capturedWc
}

// BenchmarkSat replays the captured corpus query stream through a fresh
// solver per iteration, the way the engine issues it: partitions are
// carried on states (built once per appended constraint, not per
// query), so they are prepared outside the timer and the measurement
// covers the per-query path — model reuse, group keying, caching and
// search. The pre-change baseline for this benchmark measured the old
// per-query path (constant filtering + fresh union-find + string keys
// + memoized tree-walk search) on the same stream.
func BenchmarkSat(b *testing.B) {
	qs := wcQueries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh partitions per iteration (group verdicts live on the
		// groups, so reusing them would leak decided state between
		// iterations), built outside the timed section: the engine
		// amortizes construction across branches (one Extend per
		// appended constraint, measured by BenchmarkPartitionExtend).
		b.StopTimer()
		parts := make([]*solver.Partition, len(qs))
		for j, q := range qs {
			parts[j] = solver.PartitionOf(q)
		}
		s := solver.New(solver.Options{})
		b.StartTimer()
		for _, p := range parts {
			if _, _, err := s.SatPartition(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSatHot replays the stream through one long-lived solver, the
// repeat-hit regime (model reuse + partition verdicts + L1) a deep DFS
// run spends most of its queries in.
func BenchmarkSatHot(b *testing.B) {
	qs := wcQueries(b)
	parts := make([]*solver.Partition, len(qs))
	for i, q := range qs {
		parts[i] = solver.PartitionOf(q)
	}
	s := solver.New(solver.Options{})
	for _, p := range parts { // warm
		if _, _, err := s.SatPartition(p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, p := range parts {
			if _, _, err := s.SatPartition(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSatSlice replays through the slice-based convenience API,
// which re-partitions every query from scratch — the path tests and
// one-shot callers use, kept measured so the partitioning overhead
// stays visible.
func BenchmarkSatSlice(b *testing.B) {
	qs := wcQueries(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := solver.New(solver.Options{})
		for _, q := range qs {
			if _, _, err := s.Sat(q); err != nil {
				b.Fatal(err)
			}
		}
	}
}
