package solver

// Fingerprint is a fixed-size comparable group key: the sorted
// hash-consed node ids of a constraint group mixed into 128 bits.
// It replaces the old sorted-strconv string keys, so cache lookups
// neither allocate nor hash variable-length strings; at 128 bits a
// collision between distinct groups is never expected in practice
// (about 2^-64 per pair of groups).
type Fingerprint struct {
	hi, lo uint64
}

// mix64 is the splitmix64 finalizer, a full-avalanche 64-bit
// permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Hex renders the fingerprint as 32 lowercase hex digits, the form the
// on-disk verdict store uses as file names.
func (f Fingerprint) Hex() string {
	const digits = "0123456789abcdef"
	var b [32]byte
	for i := 0; i < 16; i++ {
		var by byte
		if i < 8 {
			by = byte(f.hi >> (56 - 8*i))
		} else {
			by = byte(f.lo >> (56 - 8*(i-8)))
		}
		b[2*i] = digits[by>>4]
		b[2*i+1] = digits[by&0xf]
	}
	return string(b[:])
}

// Hasher streams arbitrary bytes into a 128-bit Fingerprint with the
// same mixing the group fingerprints use — the generalization that lets
// content keys cover canonical IR text, pipeline specs and config
// strings, not just hash-consed node ids. It implements io.Writer and
// never returns an error.
type Hasher struct {
	hi, lo uint64
	buf    [8]byte
	nbuf   int
	total  uint64
}

// NewHasher returns a hasher seeded like fingerprintIDs.
func NewHasher() *Hasher {
	return &Hasher{hi: 0x9e3779b97f4a7c15, lo: 0xc2b2ae3d27d4eb4f}
}

func (h *Hasher) word(w uint64) {
	x := mix64(w)
	h.hi = mix64(h.hi ^ x)
	h.lo = h.lo*0x100000001b3 + x
}

// Write absorbs p; the digest depends on the exact byte stream (and its
// length), not on how it was chunked across calls.
func (h *Hasher) Write(p []byte) (int, error) {
	h.total += uint64(len(p))
	n := len(p)
	for len(p) > 0 {
		if h.nbuf == 0 && len(p) >= 8 {
			w := uint64(p[0]) | uint64(p[1])<<8 | uint64(p[2])<<16 | uint64(p[3])<<24 |
				uint64(p[4])<<32 | uint64(p[5])<<40 | uint64(p[6])<<48 | uint64(p[7])<<56
			h.word(w)
			p = p[8:]
			continue
		}
		k := copy(h.buf[h.nbuf:], p)
		h.nbuf += k
		p = p[k:]
		if h.nbuf == 8 {
			w := uint64(h.buf[0]) | uint64(h.buf[1])<<8 | uint64(h.buf[2])<<16 | uint64(h.buf[3])<<24 |
				uint64(h.buf[4])<<32 | uint64(h.buf[5])<<40 | uint64(h.buf[6])<<48 | uint64(h.buf[7])<<56
			h.word(w)
			h.nbuf = 0
		}
	}
	return n, nil
}

// WriteString is Write for strings, avoiding a conversion allocation at
// call sites.
func (h *Hasher) WriteString(s string) {
	var tmp [64]byte
	for len(s) > 0 {
		n := copy(tmp[:], s)
		h.Write(tmp[:n])
		s = s[n:]
	}
}

// Sum finalizes the digest over everything written so far. The hasher
// remains usable; further writes extend the stream.
func (h *Hasher) Sum() Fingerprint {
	hi, lo, buf, nbuf := h.hi, h.lo, h.buf, h.nbuf
	if nbuf > 0 {
		var w uint64
		for i := 0; i < nbuf; i++ {
			w |= uint64(buf[i]) << (8 * uint(i))
		}
		x := mix64(w ^ 0xa5a5a5a5a5a5a5a5)
		hi = mix64(hi ^ x)
		lo = lo*0x100000001b3 + x
	}
	// Length finalization: streams that differ only in trailing zero
	// padding or chunk boundaries stay distinct.
	x := mix64(h.total)
	return Fingerprint{hi: mix64(hi ^ x), lo: lo*0x100000001b3 + x}
}

// fingerprintIDs hashes a sorted id list. The list must be canonical
// (sorted, deduplicated) — Group maintains that invariant — so equal
// groups map to equal fingerprints regardless of constraint order.
func fingerprintIDs(ids []int64) Fingerprint {
	hi := 0x9e3779b97f4a7c15 ^ uint64(len(ids))
	lo := 0xc2b2ae3d27d4eb4f + uint64(len(ids))
	for _, id := range ids {
		x := mix64(uint64(id))
		hi = mix64(hi ^ x)
		lo = lo*0x100000001b3 + x
	}
	return Fingerprint{hi: hi, lo: lo}
}
