package solver

// Fingerprint is a fixed-size comparable group key: the sorted
// hash-consed node ids of a constraint group mixed into 128 bits.
// It replaces the old sorted-strconv string keys, so cache lookups
// neither allocate nor hash variable-length strings; at 128 bits a
// collision between distinct groups is never expected in practice
// (about 2^-64 per pair of groups).
type Fingerprint struct {
	hi, lo uint64
}

// mix64 is the splitmix64 finalizer, a full-avalanche 64-bit
// permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fingerprintIDs hashes a sorted id list. The list must be canonical
// (sorted, deduplicated) — Group maintains that invariant — so equal
// groups map to equal fingerprints regardless of constraint order.
func fingerprintIDs(ids []int64) Fingerprint {
	hi := 0x9e3779b97f4a7c15 ^ uint64(len(ids))
	lo := 0xc2b2ae3d27d4eb4f + uint64(len(ids))
	for _, id := range ids {
		x := mix64(uint64(id))
		hi = mix64(hi ^ x)
		lo = lo*0x100000001b3 + x
	}
	return Fingerprint{hi: hi, lo: lo}
}
