package solver

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the number of lock stripes in a shared Cache. Power of
// two so the shard index is a mask; 64 stripes keep contention
// negligible even with dozens of workers.
const cacheShards = 64

// cacheSlot wraps a resident entry with its clock reference bit. The
// bit is set on every hit (atomically, under the shard read lock) and
// gives the entry a second chance when the eviction hand passes it.
type cacheSlot struct {
	e    cacheEntry
	used atomic.Bool
}

type cacheShard struct {
	mu sync.RWMutex
	m  map[Fingerprint]*cacheSlot

	// ring is the shard's insertion-ordered clock queue: hand indexes
	// the next candidate; a swept entry with its used bit set is given
	// a second chance (bit cleared, re-enqueued), otherwise it is
	// evicted. The prefix before hand is compacted away periodically.
	ring []Fingerprint
	hand int
}

// Cache is a query-result cache shared between solvers: the parallel
// symbolic-execution engine gives every worker its own Solver (the
// search state is not concurrency-safe) but layers one Cache under all
// of them, so a group decided by any worker is a hit for every other.
// Keys are group fingerprints (sorted hash-consed expression ids mixed
// into a fixed-size comparable value), which is why all workers must
// share one expr.Builder — and why a daemon sharing one Cache across
// runs must also share one builder across those runs.
//
// A Cache is safe for concurrent use.
//
// A bounded cache (NewCacheWithCap) evicts cold entries once a stripe
// exceeds its share of the cap, using a second-chance clock over
// stripe-local rings: recently hit entries survive the sweep, untouched
// ones leave. Evicting an entry never changes a verdict — the group is
// simply re-decided (deterministically) on next miss.
type Cache struct {
	shards   [cacheShards]cacheShard
	shardCap int // max entries per stripe; 0 = unbounded

	hits      atomic.Int64
	misses    atomic.Int64
	entries   atomic.Int64
	evictions atomic.Int64
}

// NewCache returns an empty unbounded shared cache.
func NewCache() *Cache {
	return NewCacheWithCap(0)
}

// NewCacheWithCap returns an empty shared cache holding at most
// maxEntries decided groups (0 = unbounded). The cap is apportioned
// across lock stripes, so the effective bound is maxEntries rounded up
// to a multiple of the stripe count.
func NewCacheWithCap(maxEntries int) *Cache {
	c := &Cache{}
	if maxEntries > 0 {
		c.shardCap = (maxEntries + cacheShards - 1) / cacheShards
		if c.shardCap < 1 {
			c.shardCap = 1
		}
	}
	for i := range c.shards {
		c.shards[i].m = make(map[Fingerprint]*cacheSlot)
	}
	return c
}

// Capacity returns the total entry cap (0 = unbounded).
func (c *Cache) Capacity() int {
	return c.shardCap * cacheShards
}

// shardIdx maps a fingerprint onto its lock stripe. The fingerprint is
// already uniformly mixed, so the low bits are as good as a hash.
func shardIdx(fp Fingerprint) uint32 {
	return uint32(fp.lo) & (cacheShards - 1)
}

func (c *Cache) shard(fp Fingerprint) *cacheShard {
	return &c.shards[shardIdx(fp)]
}

// getBatch looks up many keys in one striped-lock round trip: keys are
// grouped by shard and each touched shard's read lock is taken exactly
// once, instead of once per key. The symbolic-execution engine batches
// the two sibling queries of a conditional branch (pc+cond, pc+!cond)
// through here via Solver.PrefetchParts.
//
// Only hits are counted here: a batched hit satisfies the caller for
// good (the solver's L1 absorbs it), while a batched miss is re-probed
// by the per-group get() on the solve path, which counts it — counting
// both would double every miss in the snapshot.
func (c *Cache) getBatch(fps []Fingerprint) map[Fingerprint]cacheEntry {
	if len(fps) == 0 {
		return nil
	}
	byShard := make(map[uint32][]Fingerprint)
	for _, fp := range fps {
		idx := shardIdx(fp)
		byShard[idx] = append(byShard[idx], fp)
	}
	found := make(map[Fingerprint]cacheEntry, len(fps))
	var hits int64
	for idx, ks := range byShard {
		sh := &c.shards[idx]
		sh.mu.RLock()
		for _, fp := range ks {
			if s, ok := sh.m[fp]; ok {
				s.used.Store(true)
				found[fp] = s.e
				hits++
			}
		}
		sh.mu.RUnlock()
	}
	c.hits.Add(hits)
	return found
}

// get looks up a previously decided group.
func (c *Cache) get(fp Fingerprint) (cacheEntry, bool) {
	sh := c.shard(fp)
	sh.mu.RLock()
	s, ok := sh.m[fp]
	var e cacheEntry
	if ok {
		s.used.Store(true)
		e = s.e
	}
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// put records a decided group. First writer wins; a concurrent
// duplicate decision of the same group is identical anyway. In a
// bounded cache the insert may evict the stripe's coldest entries.
func (c *Cache) put(fp Fingerprint, e cacheEntry) {
	sh := c.shard(fp)
	sh.mu.Lock()
	if _, dup := sh.m[fp]; !dup {
		sh.m[fp] = &cacheSlot{e: e}
		sh.ring = append(sh.ring, fp)
		c.entries.Add(1)
		if c.shardCap > 0 {
			c.evictLocked(sh)
		}
	}
	sh.mu.Unlock()
}

// evictLocked runs the clock hand until the stripe fits its cap. Each
// resident candidate with its reference bit set gets a second chance
// (bit cleared, moved to the back of the ring); the first cold one is
// evicted. Terminates because every sweep either evicts or clears a
// bit, and a full circle of cleared bits makes the next pass evict.
func (c *Cache) evictLocked(sh *cacheShard) {
	for len(sh.m) > c.shardCap {
		if sh.hand >= len(sh.ring) {
			// Fully swept: compact the consumed prefix and restart.
			sh.ring = append(sh.ring[:0], sh.ring[sh.hand:]...)
			sh.hand = 0
			continue
		}
		fp := sh.ring[sh.hand]
		sh.hand++
		s, ok := sh.m[fp]
		if !ok {
			continue // already evicted under an earlier hand position
		}
		if s.used.Load() {
			s.used.Store(false)
			sh.ring = append(sh.ring, fp)
			continue
		}
		delete(sh.m, fp)
		c.entries.Add(-1)
		c.evictions.Add(1)
	}
	// Keep the ring from accumulating a long consumed prefix.
	if sh.hand > len(sh.ring)/2 {
		sh.ring = append(sh.ring[:0], sh.ring[sh.hand:]...)
		sh.hand = 0
	}
}

// CacheStats is a point-in-time snapshot of shared-cache effectiveness.
type CacheStats struct {
	Hits      int64
	Misses    int64
	Entries   int64
	Evictions int64
	Capacity  int // 0 = unbounded
}

// Snapshot returns the cache counters.
func (c *Cache) Snapshot() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Entries:   c.entries.Load(),
		Evictions: c.evictions.Load(),
		Capacity:  c.Capacity(),
	}
}
