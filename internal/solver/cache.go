package solver

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the number of lock stripes in a shared Cache. Power of
// two so the shard index is a mask; 64 stripes keep contention
// negligible even with dozens of workers.
const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[string]cacheEntry
}

// Cache is a query-result cache shared between solvers: the parallel
// symbolic-execution engine gives every worker its own Solver (the
// search state is not concurrency-safe) but layers one Cache under all
// of them, so a group decided by any worker is a hit for every other.
// Keys are canonical group keys (sorted hash-consed expression ids),
// which is why all workers must share one expr.Builder.
//
// A Cache is safe for concurrent use.
type Cache struct {
	shards [cacheShards]cacheShard

	hits    atomic.Int64
	misses  atomic.Int64
	entries atomic.Int64
}

// NewCache returns an empty shared cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[string]cacheEntry)
	}
	return c
}

// fnv1a hashes the key onto a shard index.
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (c *Cache) shard(key string) *cacheShard {
	return &c.shards[fnv1a(key)&(cacheShards-1)]
}

// getBatch looks up many keys in one striped-lock round trip: keys are
// grouped by shard and each touched shard's read lock is taken exactly
// once, instead of once per key. The symbolic-execution engine batches
// the two sibling queries of a conditional branch (pc+cond, pc+!cond)
// through here via Solver.Prefetch.
//
// Only hits are counted here: a batched hit satisfies the caller for
// good (the solver's L1 absorbs it), while a batched miss is re-probed
// by the per-group get() on the solve path, which counts it — counting
// both would double every miss in the snapshot.
func (c *Cache) getBatch(keys []string) map[string]cacheEntry {
	if len(keys) == 0 {
		return nil
	}
	byShard := make(map[uint32][]string)
	for _, k := range keys {
		idx := fnv1a(k) & (cacheShards - 1)
		byShard[idx] = append(byShard[idx], k)
	}
	found := make(map[string]cacheEntry, len(keys))
	var hits int64
	for idx, ks := range byShard {
		sh := &c.shards[idx]
		sh.mu.RLock()
		for _, k := range ks {
			if e, ok := sh.m[k]; ok {
				found[k] = e
				hits++
			}
		}
		sh.mu.RUnlock()
	}
	c.hits.Add(hits)
	return found
}

// get looks up a previously decided group.
func (c *Cache) get(key string) (cacheEntry, bool) {
	sh := c.shard(key)
	sh.mu.RLock()
	e, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// put records a decided group. First writer wins; a concurrent
// duplicate decision of the same group is identical anyway.
func (c *Cache) put(key string, e cacheEntry) {
	sh := c.shard(key)
	sh.mu.Lock()
	if _, dup := sh.m[key]; !dup {
		sh.m[key] = e
		c.entries.Add(1)
	}
	sh.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of shared-cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int64
}

// Snapshot returns the cache counters.
func (c *Cache) Snapshot() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.entries.Load(),
	}
}
