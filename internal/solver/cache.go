package solver

import (
	"sync"
	"sync/atomic"
)

// cacheShards is the number of lock stripes in a shared Cache. Power of
// two so the shard index is a mask; 64 stripes keep contention
// negligible even with dozens of workers.
const cacheShards = 64

type cacheShard struct {
	mu sync.RWMutex
	m  map[Fingerprint]cacheEntry
}

// Cache is a query-result cache shared between solvers: the parallel
// symbolic-execution engine gives every worker its own Solver (the
// search state is not concurrency-safe) but layers one Cache under all
// of them, so a group decided by any worker is a hit for every other.
// Keys are group fingerprints (sorted hash-consed expression ids mixed
// into a fixed-size comparable value), which is why all workers must
// share one expr.Builder.
//
// A Cache is safe for concurrent use.
type Cache struct {
	shards [cacheShards]cacheShard

	hits    atomic.Int64
	misses  atomic.Int64
	entries atomic.Int64
}

// NewCache returns an empty shared cache.
func NewCache() *Cache {
	c := &Cache{}
	for i := range c.shards {
		c.shards[i].m = make(map[Fingerprint]cacheEntry)
	}
	return c
}

// shardIdx maps a fingerprint onto its lock stripe. The fingerprint is
// already uniformly mixed, so the low bits are as good as a hash.
func shardIdx(fp Fingerprint) uint32 {
	return uint32(fp.lo) & (cacheShards - 1)
}

func (c *Cache) shard(fp Fingerprint) *cacheShard {
	return &c.shards[shardIdx(fp)]
}

// getBatch looks up many keys in one striped-lock round trip: keys are
// grouped by shard and each touched shard's read lock is taken exactly
// once, instead of once per key. The symbolic-execution engine batches
// the two sibling queries of a conditional branch (pc+cond, pc+!cond)
// through here via Solver.PrefetchParts.
//
// Only hits are counted here: a batched hit satisfies the caller for
// good (the solver's L1 absorbs it), while a batched miss is re-probed
// by the per-group get() on the solve path, which counts it — counting
// both would double every miss in the snapshot.
func (c *Cache) getBatch(fps []Fingerprint) map[Fingerprint]cacheEntry {
	if len(fps) == 0 {
		return nil
	}
	byShard := make(map[uint32][]Fingerprint)
	for _, fp := range fps {
		idx := shardIdx(fp)
		byShard[idx] = append(byShard[idx], fp)
	}
	found := make(map[Fingerprint]cacheEntry, len(fps))
	var hits int64
	for idx, ks := range byShard {
		sh := &c.shards[idx]
		sh.mu.RLock()
		for _, fp := range ks {
			if e, ok := sh.m[fp]; ok {
				found[fp] = e
				hits++
			}
		}
		sh.mu.RUnlock()
	}
	c.hits.Add(hits)
	return found
}

// get looks up a previously decided group.
func (c *Cache) get(fp Fingerprint) (cacheEntry, bool) {
	sh := c.shard(fp)
	sh.mu.RLock()
	e, ok := sh.m[fp]
	sh.mu.RUnlock()
	if ok {
		c.hits.Add(1)
	} else {
		c.misses.Add(1)
	}
	return e, ok
}

// put records a decided group. First writer wins; a concurrent
// duplicate decision of the same group is identical anyway.
func (c *Cache) put(fp Fingerprint, e cacheEntry) {
	sh := c.shard(fp)
	sh.mu.Lock()
	if _, dup := sh.m[fp]; !dup {
		sh.m[fp] = e
		c.entries.Add(1)
	}
	sh.mu.Unlock()
}

// CacheStats is a point-in-time snapshot of shared-cache effectiveness.
type CacheStats struct {
	Hits    int64
	Misses  int64
	Entries int64
}

// Snapshot returns the cache counters.
func (c *Cache) Snapshot() CacheStats {
	return CacheStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.entries.Load(),
	}
}
