package solver

import (
	"sort"
	"sync/atomic"

	"overify/internal/expr"
)

// Group is one independence class of a path condition: constraints
// transitively linked by shared variables. Groups are immutable after
// construction and shared structurally between the partitions of forked
// states; only the decided verdict is written, atomically, so any state
// (on any worker) that still holds the group reuses the verdict without
// even a cache probe.
type Group struct {
	cs  []*expr.Expr // constraints in append order (deduplicated)
	ids []int64      // sorted node ids (canonical identity)
	vs  *expr.VarSet // union of the constraints' variable sets
	fp  Fingerprint  // memoized cache key over ids

	// verdict holds the decided entry once any solver has decided the
	// group. Stores are idempotent: the backtracking search is
	// deterministic, so concurrent deciders store equivalent entries.
	verdict atomic.Pointer[cacheEntry]
}

// Fingerprint returns the group's cache key.
func (g *Group) Fingerprint() Fingerprint { return g.fp }

// Constraints returns the group's constraints. The slice is shared and
// must not be mutated.
func (g *Group) Constraints() []*expr.Expr { return g.cs }

// Vars returns the group's variable set.
func (g *Group) Vars() *expr.VarSet { return g.vs }

// contains reports whether the group already holds the node id.
func (g *Group) contains(id int64) bool {
	i := sort.Search(len(g.ids), func(i int) bool { return g.ids[i] >= id })
	return i < len(g.ids) && g.ids[i] == id
}

func newGroup(c *expr.Expr) *Group {
	g := &Group{cs: []*expr.Expr{c}, ids: []int64{c.ID()}, vs: c.VarSet()}
	g.fp = fingerprintIDs(g.ids)
	return g
}

// mergeGroups builds the group holding every constraint of gs plus c
// (c skipped when already present in one of them).
func mergeGroups(gs []*Group, c *expr.Expr) *Group {
	n := 1
	for _, g := range gs {
		n += len(g.cs)
	}
	m := &Group{cs: make([]*expr.Expr, 0, n), ids: make([]int64, 0, n)}
	dup := false
	for _, g := range gs {
		m.cs = append(m.cs, g.cs...)
		m.ids = append(m.ids, g.ids...)
		m.vs = expr.MergeVarSets(m.vs, g.vs)
		if g.contains(c.ID()) {
			dup = true
		}
	}
	if !dup {
		m.cs = append(m.cs, c)
		m.ids = append(m.ids, c.ID())
		m.vs = expr.MergeVarSets(m.vs, c.VarSet())
	}
	sort.Slice(m.ids, func(i, j int) bool { return m.ids[i] < m.ids[j] })
	m.fp = fingerprintIDs(m.ids)
	return m
}

// Partition is the persistent independence structure of a path
// condition. Path conditions grow one constraint per branch, so the
// symbolic-execution engine carries the partition forward on each
// state: appending a constraint merges its variable set into the
// existing groups in O(groups) instead of re-running union-find over
// the whole condition, and forked states share it by pointer
// (partitions are immutable; Extend returns a new one).
//
// A nil *Partition is the empty path condition.
type Partition struct {
	groups []*Group
	unsat  bool // a constant-false constraint was appended
}

// Groups returns the partition's groups. The slice is shared and must
// not be mutated.
func (p *Partition) Groups() []*Group {
	if p == nil {
		return nil
	}
	return p.groups
}

// Trivial reports whether the partition decides itself: no live
// constraints (trivially sat) or a constant-false constraint
// (trivially unsat).
func (p *Partition) Trivial() (sat, trivial bool) {
	if p == nil || (len(p.groups) == 0 && !p.unsat) {
		return true, true
	}
	if p.unsat {
		return false, true
	}
	return false, false
}

// Len returns the number of live constraints.
func (p *Partition) Len() int {
	if p == nil {
		return 0
	}
	n := 0
	for _, g := range p.groups {
		n += len(g.cs)
	}
	return n
}

// Extend returns the partition of the condition with c appended. The
// receiver is unchanged: untouched groups are shared by pointer (their
// decided verdicts ride along), and only the groups whose variables
// intersect c's are merged. Constant-true constraints return the
// receiver as is; a duplicate of a constraint already in its group
// does too.
func (p *Partition) Extend(c *expr.Expr) *Partition {
	if c.IsTrue() {
		return p
	}
	if p != nil && p.unsat {
		return p
	}
	if c.IsFalse() {
		return &Partition{unsat: true}
	}
	var groups []*Group
	if p != nil {
		groups = p.groups
	}
	vs := c.VarSet()
	var touched []*Group
	first := -1
	for i, g := range groups {
		if g.vs.Intersects(vs) {
			if first < 0 {
				first = i
			}
			touched = append(touched, g)
		}
	}
	if len(touched) == 1 && touched[0].contains(c.ID()) {
		return p
	}
	np := &Partition{groups: make([]*Group, 0, len(groups)+1)}
	if first < 0 {
		// Independent of everything so far: a fresh group at the end
		// (mirroring first-constraint order).
		np.groups = append(np.groups, groups...)
		np.groups = append(np.groups, newGroup(c))
		return np
	}
	merged := mergeGroups(touched, c)
	for i, g := range groups {
		switch {
		case i == first:
			np.groups = append(np.groups, merged)
		case g.vs.Intersects(vs):
			// folded into merged
		default:
			np.groups = append(np.groups, g)
		}
	}
	return np
}

// PartitionOf partitions a whole constraint slice from scratch (the
// non-incremental entry point used by the slice-based Sat API and by
// callers that do not carry a partition).
func PartitionOf(cs []*expr.Expr) *Partition {
	var p *Partition
	for _, c := range cs {
		p = p.Extend(c)
	}
	return p
}

// independentGroups is the non-incremental view of the partition,
// retained for tests and benchmarks: constraints that share variables
// (transitively) are grouped, groups ordered by first constraint.
func independentGroups(constraints []*expr.Expr) [][]*expr.Expr {
	p := PartitionOf(constraints)
	if p == nil {
		return nil
	}
	out := make([][]*expr.Expr, 0, len(p.groups))
	for _, g := range p.groups {
		out = append(out, g.cs)
	}
	return out
}
