package solver

import (
	"sync"

	"overify/internal/expr"
)

// TapeCache memoizes compiled constraint tapes across searches, keyed by
// group fingerprint. A verdict cache already answers repeat groups
// without searching at all; the tape cache covers the window the verdict
// cache cannot — a group whose verdict was evicted (or never stored)
// still re-searches, and without this cache it would re-flatten the same
// constraint DAG first. Fingerprints are expression-node-identity based,
// so a TapeCache is only meaningful within one expression builder's
// lifetime: the daemon scopes one per generation.
//
// Tapes handed to Put alias the compiling solver's scratch buffers, so
// Put stores a deep copy the cache owns. Get returns the owned copy
// directly — tapeStateFrom only reads a tape, and evaluation state lives
// in the caller's scratch, so shared cached tapes are safe across the
// engine's worker solvers.
type TapeCache struct {
	mu    sync.Mutex
	limit int
	m     map[Fingerprint]*tape
}

// DefaultTapeCacheCap bounds a TapeCache when no explicit capacity is
// given; at typical group sizes this is a few MB of tapes.
const DefaultTapeCacheCap = 4096

// NewTapeCache returns a cache holding at most limit tapes (0 or
// negative means DefaultTapeCacheCap). When full it stops inserting:
// within one generation the hot fingerprints recur from the first run
// onward, so keeping the earliest tapes is the right eviction-free
// policy.
func NewTapeCache(limit int) *TapeCache {
	if limit <= 0 {
		limit = DefaultTapeCacheCap
	}
	return &TapeCache{limit: limit, m: make(map[Fingerprint]*tape)}
}

// Len reports how many tapes are cached.
func (tc *TapeCache) Len() int {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return len(tc.m)
}

func (tc *TapeCache) get(fp Fingerprint) *tape {
	tc.mu.Lock()
	t := tc.m[fp]
	tc.mu.Unlock()
	return t
}

func (tc *TapeCache) put(fp Fingerprint, t *tape) {
	owned := copyTape(t)
	tc.mu.Lock()
	if _, ok := tc.m[fp]; !ok && len(tc.m) < tc.limit {
		tc.m[fp] = owned
	}
	tc.mu.Unlock()
}

// copyTape deep-copies every slice that aliases the compiling scratch.
// tapeOp.table stays pointer-shared: it is an expr.Expr's immutable
// lookup table, owned by the expression graph, not the scratch.
func copyTape(t *tape) *tape {
	c := &tape{
		ops:    append([]tapeOp(nil), t.ops...),
		roots:  append([]int32(nil), t.roots...),
		vars:   append([]*expr.Var(nil), t.vars...),
		watch:  make([][]int32, len(t.watch)),
		cmasks: make([][]uint64, len(t.cmasks)),
		csub:   make([][]uint64, len(t.csub)),
		nwords: t.nwords,
	}
	for i, w := range t.watch {
		c.watch[i] = append([]int32(nil), w...)
	}
	for i, m := range t.cmasks {
		c.cmasks[i] = append([]uint64(nil), m...)
	}
	for i, s := range t.csub {
		c.csub[i] = append([]uint64(nil), s...)
	}
	return c
}
