package solver

import (
	"math/rand"
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// TestGetBatchMatchesGet: a batched lookup must return exactly what
// per-key gets would. Hits are counted in the batch; misses are left
// for the solve path's per-key get to count (else every prefetch miss
// would be double-counted in the snapshot).
func TestGetBatchMatchesGet(t *testing.T) {
	c := NewCache()
	var keys []Fingerprint
	for i := 0; i < 200; i++ {
		k := fingerprintIDs([]int64{int64(i)})
		keys = append(keys, k)
		if i%3 == 0 {
			c.put(k, cacheEntry{sat: i%2 == 0})
		}
	}
	before := c.Snapshot()
	got := c.getBatch(keys)
	after := c.Snapshot()
	hits, misses := 0, 0
	for i, k := range keys {
		e, ok := got[k]
		wantOK := i%3 == 0
		if ok != wantOK {
			t.Fatalf("key %d: present=%v, want %v", i, ok, wantOK)
		}
		if ok {
			hits++
			if e.sat != (i%2 == 0) {
				t.Fatalf("key %d: wrong entry", i)
			}
		} else {
			misses++
		}
	}
	_ = misses
	if after.Hits-before.Hits != int64(hits) {
		t.Errorf("accounting: hits %d, want %d", after.Hits-before.Hits, hits)
	}
	if after.Misses != before.Misses {
		t.Errorf("getBatch counted %d misses; the solve path's get() counts those", after.Misses-before.Misses)
	}
	if c.getBatch(nil) != nil {
		t.Error("getBatch(nil) should return nil")
	}
}

// siblingQueries builds a random path condition plus the cond/!cond
// sibling pair, the exact shape the engine's condBr batching sees.
func siblingQueries(b *expr.Builder, vs []*expr.Var, rng *rand.Rand) (qa, qb []*expr.Expr) {
	var pc []*expr.Expr
	for i := 0; i < 1+rng.Intn(4); i++ {
		v := b.Var(vs[rng.Intn(len(vs))])
		pc = append(pc, b.Cmp(ir.OpULt, v, b.Const(8, uint64(1+rng.Intn(250)))))
	}
	cond := b.Cmp(ir.OpEq, b.Var(vs[rng.Intn(len(vs))]), b.Const(8, uint64(rng.Intn(256))))
	qa = append(append([]*expr.Expr(nil), pc...), cond)
	qb = append(append([]*expr.Expr(nil), pc...), b.Not(cond))
	return qa, qb
}

// TestPrefetchPairEquivalence: prefetching sibling queries must not
// change any verdict or model compared to plain Sat on a fresh solver,
// across shared-cache hit and miss regimes.
func TestPrefetchPairEquivalence(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(4)
	shared := NewCache()
	warm := NewWithCache(Options{}, shared)    // populates the shared cache
	batched := NewWithCache(Options{}, shared) // prefetches against it
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 200; round++ {
		qa, qb := siblingQueries(b, vs, rng)
		if round%2 == 0 {
			// Warm the shared cache through a different solver so the
			// batched one exercises the prefetch-hit path.
			warm.Sat(qa)
			warm.Sat(qb)
		}
		plain := New(Options{})
		wantA, _, errA := plain.Sat(qa)
		wantB, _, errB := plain.Sat(qb)

		batched.Prefetch(qa, qb)
		gotA, mA, eA := batched.Sat(qa)
		gotB, mB, eB := batched.Sat(qb)
		if (errA == nil) != (eA == nil) || (errB == nil) != (eB == nil) {
			t.Fatalf("round %d: error drift", round)
		}
		if gotA != wantA || gotB != wantB {
			t.Fatalf("round %d: verdicts (%v,%v), want (%v,%v)", round, gotA, gotB, wantA, wantB)
		}
		if gotA && !satisfies(qa, mA) {
			t.Fatalf("round %d: model A does not satisfy query", round)
		}
		if gotB && !satisfies(qb, mB) {
			t.Fatalf("round %d: model B does not satisfy query", round)
		}
	}
}

// TestPrefetchWarmsL1: after a prefetch of decided groups, Sat answers
// from the private L1 — the shared cache sees no additional lookups.
func TestPrefetchWarmsL1(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(2)
	shared := NewCache()
	producer := NewWithCache(Options{}, shared)
	x := b.Var(vs[0])
	cond := b.Cmp(ir.OpEq, x, b.Const(8, 9))
	pc := []*expr.Expr{b.Cmp(ir.OpULt, b.Var(vs[1]), b.Const(8, 100))}
	qa := append(append([]*expr.Expr(nil), pc...), cond)
	qb := append(append([]*expr.Expr(nil), pc...), b.Not(cond))
	producer.Sat(qa)
	producer.Sat(qb)

	consumer := NewWithCache(Options{ModelHistory: 1}, shared)
	consumer.Prefetch(qa, qb)
	after := shared.Snapshot()
	if _, _, err := consumer.Sat(qa); err != nil {
		t.Fatal(err)
	}
	if _, _, err := consumer.Sat(qb); err != nil {
		t.Fatal(err)
	}
	final := shared.Snapshot()
	if final.Hits != after.Hits || final.Misses != after.Misses {
		t.Errorf("Sat after Prefetch touched the shared cache: %+v -> %+v", after, final)
	}
	if consumer.Stats.CacheHits == 0 {
		t.Error("prefetched groups did not count as solver cache hits")
	}
}
