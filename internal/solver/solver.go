// Package solver decides satisfiability of path constraints over
// symbolic input bytes. It is the reproduction's stand-in for the STP
// solver KLEE uses, scoped to the workload the paper evaluates: bitvector
// constraints over small byte-wide inputs (2–10 symbolic bytes).
//
// The decision procedure is exact: constraints are partitioned into
// independent groups (KLEE's independence optimization), each group is
// solved by backtracking search over per-byte domains with forward
// checking, and results are cached per group (KLEE's counterexample
// cache). Model reuse is attempted before any search: if a recently
// produced model satisfies the whole query, no search happens at all.
//
// The per-query constant factors are engineered away: variable sets are
// interned on expression nodes at construction (expr.VarSet), the
// independence partition is carried incrementally across a growing path
// condition (Partition), groups are keyed by fixed-size fingerprints
// instead of strings, and the backtracking search runs each group as a
// compiled flat tape (compile.go) rather than a memoized tree walk.
package solver

import (
	"errors"
	"time"

	"overify/internal/expr"
)

// Options bound the solver's work.
type Options struct {
	// MaxNodes bounds backtracking nodes per query (default 65,536).
	MaxNodes int64
	// MaxWork bounds assignments tried per query (default 8,000,000):
	// every candidate value probed by the unary filter and every value
	// bound by the backtracking search counts one unit. Assignments are
	// a pure function of the search tree, so a group's verdict does not
	// depend on how constraints are evaluated — an evaluator that
	// charges differently per probe (the legacy memoized tree walk vs
	// the compiled tape) cannot flip a decided group to ErrBudget.
	MaxWork int64
	// ModelHistory is how many recent models are tried for reuse
	// (default 8).
	ModelHistory int
	// Portfolio, when > 1, races that many diverse search configurations
	// (distinct value orders and variable tie-breaks, portfolio.go) on
	// any group whose default-configuration search stalls past
	// PortfolioStall assignments. The race is time-sliced by assignment
	// budget in a fixed rotation, so the winner — and every counter — is
	// a pure function of the group, identical on every machine. 0 or 1
	// disables the portfolio (the default): single fixed-order search.
	Portfolio int
	// PortfolioStall is the assignment budget the default configuration
	// gets before the portfolio race starts (default 4096). Groups that
	// decide within the stall budget never pay for a race.
	PortfolioStall int64
}

// Stats counts solver work across a run; t_verify is dominated by these.
type Stats struct {
	Queries        int64
	CacheHits      int64 // group verdicts answered by the L1 or shared cache
	PartitionHits  int64 // group verdicts reused off the carried partition (no cache probe)
	ModelReuseHits int64
	Sat            int64
	Unsat          int64
	Failures       int64 // budget exhaustion
	Nodes          int64 // backtracking nodes explored
	Assignments    int64 // candidate values tried (probes + bindings), the budget currency
	TapeCompiles   int64 // groups compiled to evaluation tapes (searches run)
	TapeReuses     int64 // searches that reused a cached tape instead of compiling
	TapeSlots      int64 // total slots across compiled tapes
	PortfolioRaces int64 // groups that stalled past PortfolioStall and entered a race
	PortfolioWins  int64 // races a non-default configuration answered first
	MaxGroupVars   int
}

// Add accumulates o into s; the parallel engine merges per-worker
// solver stats with this after all workers have stopped.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.CacheHits += o.CacheHits
	s.PartitionHits += o.PartitionHits
	s.ModelReuseHits += o.ModelReuseHits
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Failures += o.Failures
	s.Nodes += o.Nodes
	s.Assignments += o.Assignments
	s.TapeCompiles += o.TapeCompiles
	s.TapeReuses += o.TapeReuses
	s.TapeSlots += o.TapeSlots
	s.PortfolioRaces += o.PortfolioRaces
	s.PortfolioWins += o.PortfolioWins
	if o.MaxGroupVars > s.MaxGroupVars {
		s.MaxGroupVars = o.MaxGroupVars
	}
}

// ErrBudget is returned when a query exceeds the node budget.
var ErrBudget = errors.New("solver: node budget exhausted")

// CaptureQuery, when non-nil, receives every constant-filtered query the
// solver decides. Benchmark harnesses set it (from a serial run) to
// capture corpus-shaped path conditions; production leaves it nil.
var CaptureQuery func(q []*expr.Expr)

var errTooWide = errors.New("solver: variable wider than 8 bits")

type cacheEntry struct {
	sat   bool
	model map[*expr.Var]uint64
}

// Solver decides queries and caches results. Not safe for concurrent
// use; create one per engine worker. Solvers may share a Cache (see
// NewWithCache) — the cache layer is concurrency-safe, the search and
// model-reuse state is not. A private unsynchronized L1 map sits in
// front of the shared cache so repeat hits (the common case under DFS
// exploration) never touch a lock.
type Solver struct {
	opts      Options
	Stats     Stats
	l1        map[Fingerprint]cacheEntry
	cache     *Cache
	recent    []map[*expr.Var]uint64
	reuseEval *expr.Evaluator
	deadline  time.Time
	// tapes, when set, shares compiled tapes across searches (and across
	// the solvers of one engine run) keyed by group fingerprint.
	tapes *TapeCache
	// scratch is the compile/evaluation buffer set reused across this
	// solver's searches (solvers are single-goroutine).
	scratch tapeScratch
}

// SetTapeCache attaches a shared compiled-tape cache. Call before
// solving; the cache layer is concurrency-safe.
func (s *Solver) SetTapeCache(tc *TapeCache) { s.tapes = tc }

// New returns a solver with the given options and a private cache.
func New(opts Options) *Solver {
	return NewWithCache(opts, NewCache())
}

// NewWithCache returns a solver layered over a shared query cache. The
// parallel engine creates one Cache per run and one Solver per worker,
// so every worker benefits from every other worker's decided groups.
func NewWithCache(opts Options, cache *Cache) *Solver {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 65_536
	}
	if opts.MaxWork == 0 {
		opts.MaxWork = 8_000_000
	}
	if opts.ModelHistory == 0 {
		opts.ModelHistory = 8
	}
	if cache == nil {
		cache = NewCache()
	}
	return &Solver{
		opts:      opts,
		l1:        make(map[Fingerprint]cacheEntry),
		cache:     cache,
		reuseEval: expr.NewEvaluator(),
	}
}

// SharedCache returns the cache this solver decides into.
func (s *Solver) SharedCache() *Cache { return s.cache }

// SetDeadline makes every subsequent query fail with ErrBudget once the
// wall clock passes t (zero disables). The symbolic-execution engine
// forwards its own deadline here so a single hard query cannot outlive
// the exploration budget.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// Prefetch warms the private L1 with the shared-cache entries for every
// independent group of the given queries, in one batched striped-lock
// round trip. It is the slice-based convenience form of PrefetchParts.
func (s *Solver) Prefetch(queries ...[]*expr.Expr) {
	parts := make([]*Partition, len(queries))
	for i, q := range queries {
		parts[i] = PartitionOf(q)
	}
	s.PrefetchParts(parts...)
}

// PrefetchParts warms the private L1 with the shared-cache entries for
// every undecided group of the given partitions, in one batched
// striped-lock round trip (Cache.getBatch). The symbolic executor calls
// it with the two sibling partitions of a conditional branch before
// deciding them, so the true and false sides cost one shared-cache
// visit instead of two. Partitions that decide trivially, that a recent
// model already satisfies, or whose groups carry verdicts contribute no
// keys — Sat answers those without ever consulting the cache.
func (s *Solver) PrefetchParts(parts ...*Partition) {
	// With carried partitions the undecided set is tiny (usually just
	// the one or two groups the branch condition touched), so dedup is
	// a linear scan — no per-call map.
	var fps []Fingerprint
	for _, p := range parts {
		if _, trivial := p.Trivial(); trivial {
			continue
		}
		reused := false
		for _, m := range s.recent {
			if s.modelSatisfies(p, m) {
				reused = true
				break
			}
		}
		if reused {
			continue
		}
	groups:
		for _, g := range p.groups {
			if g.verdict.Load() != nil {
				continue
			}
			for _, fp := range fps {
				if fp == g.fp {
					continue groups
				}
			}
			if _, ok := s.l1[g.fp]; ok {
				continue
			}
			fps = append(fps, g.fp)
		}
	}
	for fp, e := range s.cache.getBatch(fps) {
		s.l1[fp] = e
	}
}

// Sat reports whether the conjunction of the constraints is satisfiable,
// and if so returns a model (an assignment of every mentioned variable).
// Callers with a growing path condition should carry a Partition and use
// SatPartition instead; Sat re-partitions from scratch.
func (s *Solver) Sat(constraints []*expr.Expr) (bool, map[*expr.Var]uint64, error) {
	return s.SatPartition(PartitionOf(constraints))
}

// SatPartition decides a pre-partitioned query. Groups whose verdict was
// already decided while the partition was carried forward are reused
// without a cache probe; the remaining groups go through L1 → shared
// cache → compiled search.
func (s *Solver) SatPartition(p *Partition) (bool, map[*expr.Var]uint64, error) {
	s.Stats.Queries++

	if sat, trivial := p.Trivial(); trivial {
		if sat {
			s.Stats.Sat++
			return true, map[*expr.Var]uint64{}, nil
		}
		s.Stats.Unsat++
		return false, nil, nil
	}
	if CaptureQuery != nil {
		q := make([]*expr.Expr, 0, p.Len())
		for _, g := range p.groups {
			q = append(q, g.cs...)
		}
		CaptureQuery(q)
	}

	// Model reuse: does a recent model satisfy everything?
	for _, m := range s.recent {
		if s.modelSatisfies(p, m) {
			s.Stats.ModelReuseHits++
			s.Stats.Sat++
			return true, m, nil
		}
	}

	model := make(map[*expr.Var]uint64)
	for _, g := range p.groups {
		sat, gm, err := s.solveGroup(g)
		if err != nil {
			s.Stats.Failures++
			return false, nil, err
		}
		if !sat {
			s.Stats.Unsat++
			return false, nil, nil
		}
		for v, val := range gm {
			model[v] = val
		}
	}
	s.Stats.Sat++
	s.remember(model)
	return true, model, nil
}

// modelSatisfies reports whether the model satisfies every constraint
// of the partition, through the allocation-free reusable evaluator
// (missing variables read as zero, like expr.Eval).
func (s *Solver) modelSatisfies(p *Partition, model map[*expr.Var]uint64) bool {
	s.reuseEval.Bind(model)
	for _, g := range p.groups {
		for _, c := range g.cs {
			if s.reuseEval.Eval(c) == 0 {
				return false
			}
		}
	}
	return true
}

// satisfies is the slice form of the model check (tests use it).
func satisfies(constraints []*expr.Expr, model map[*expr.Var]uint64) bool {
	for _, c := range constraints {
		if expr.Eval(c, model) == 0 {
			return false
		}
	}
	return true
}

func (s *Solver) remember(model map[*expr.Var]uint64) {
	m := make(map[*expr.Var]uint64, len(model))
	for k, v := range model {
		m[k] = v
	}
	s.recent = append(s.recent, m)
	if len(s.recent) > s.opts.ModelHistory {
		s.recent = s.recent[1:]
	}
}

func (s *Solver) solveGroup(g *Group) (bool, map[*expr.Var]uint64, error) {
	if e := g.verdict.Load(); e != nil {
		s.Stats.PartitionHits++
		return e.sat, e.model, nil
	}
	if e, ok := s.l1[g.fp]; ok {
		s.Stats.CacheHits++
		g.verdict.Store(&e)
		return e.sat, e.model, nil
	}
	if e, ok := s.cache.get(g.fp); ok {
		s.l1[g.fp] = e
		s.Stats.CacheHits++
		g.verdict.Store(&e)
		return e.sat, e.model, nil
	}
	sat, model, err := s.search(g)
	if err != nil {
		return false, nil, err
	}
	// Cached models are shared across workers; they are never mutated
	// after insertion (Sat only reads them, remember copies).
	entry := cacheEntry{sat: sat, model: model}
	s.l1[g.fp] = entry
	s.cache.put(g.fp, entry)
	g.verdict.Store(&entry)
	return sat, model, nil
}

// domain is the candidate-value set of one 8-bit variable.
type domain [4]uint64

func fullDomain(bits int) domain {
	var d domain
	n := 1 << uint(bits)
	for i := 0; i < n; i++ {
		d[i/64] |= 1 << uint(i%64)
	}
	return d
}

func (d *domain) has(v uint64) bool { return d[v/64]&(1<<(v%64)) != 0 }
func (d *domain) clear(v uint64)    { d[v/64] &^= 1 << (v % 64) }

func (d *domain) count() int {
	n := 0
	for _, w := range d {
		for x := w; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

// search runs backtracking with forward checking over the group,
// evaluating constraints on the group's compiled tape. With a portfolio
// configured, a group that stalls past the stall budget is raced across
// diverse configurations (portfolio.go); otherwise the default
// configuration runs alone with the full work budget.
func (s *Solver) search(g *Group) (bool, map[*expr.Var]uint64, error) {
	for _, v := range g.vs.Vars() {
		if v.Bits > 8 {
			return false, nil, errTooWide
		}
	}
	var t *tape
	if s.tapes != nil {
		t = s.tapes.get(g.fp)
	}
	if t != nil {
		s.Stats.TapeReuses++
	} else {
		t = s.scratch.compile(g)
		s.Stats.TapeCompiles++
		s.Stats.TapeSlots += int64(len(t.ops))
		if s.tapes != nil {
			s.tapes.put(g.fp, t)
		}
	}
	if len(t.vars) > s.Stats.MaxGroupVars {
		s.Stats.MaxGroupVars = len(t.vars)
	}

	domains := make([]domain, len(t.vars))
	for i, v := range t.vars {
		domains[i] = fullDomain(v.Bits)
	}

	// Value-set propagation first: it can prove the group unsat or
	// collapse domains without trying a single assignment, and its cost
	// is a function of the tape, not of the search tree (propagate.go).
	if !propagateDomains(t, domains) {
		return false, nil, nil
	}

	if s.opts.Portfolio > 1 {
		return s.searchPortfolio(t, domains)
	}
	return s.searchTape(t, domains, searchConfig{}, s.opts.MaxWork)
}

// searchTape is one backtracking attempt over a compiled tape: the
// given configuration's value order and tie-break, at most maxAssigns
// assignments. domains is consumed (filtering mutates it); callers
// re-running attempts must pass a fresh copy.
func (s *Solver) searchTape(t *tape, domains []domain, cfg searchConfig, maxAssigns int64) (bool, map[*expr.Var]uint64, error) {
	vars := t.vars
	ts := tapeStateFrom(&s.scratch, t)
	// The budget is counted in assignments tried — one unit per
	// candidate value probed by the unary filter or bound by the DFS —
	// never in evaluator work. Assignments are determined by the group
	// alone (domains, constraint order, variable order), so the verdict
	// a group gets is independent of how constraints are evaluated.
	var nodes, assigns int64
	defer func() { s.Stats.Assignments += assigns }()
	checkBudget := func() error {
		if nodes > s.opts.MaxNodes || assigns > maxAssigns {
			return ErrBudget
		}
		if !s.deadline.IsZero() && assigns&1023 == 0 && time.Now().After(s.deadline) {
			return ErrBudget
		}
		return nil
	}

	nc := len(t.roots)
	// filterUnary prunes the domain of v using constraints where v is the
	// only unassigned variable. Returns false if a domain empties.
	filterUnary := func(vi int32) (bool, error) {
		d := &domains[vi]
		bits := vars[vi].Bits
		for ci := 0; ci < nc; ci++ {
			if err := checkBudget(); err != nil {
				return false, err
			}
			un, hasV := ts.unassignedIn(ci, vi)
			if un != 1 || !hasV {
				continue
			}
			for val := uint64(0); val < uint64(1)<<uint(bits); val++ {
				if !d.has(val) {
					continue
				}
				assigns++
				known, r := ts.probe(ci, vi, val)
				if known && r == 0 {
					d.clear(val)
				}
			}
			if d.count() == 0 {
				return false, nil
			}
		}
		return true, nil
	}

	// allHold checks every constraint under the current (partial)
	// assignment; returns false on a definite violation.
	allHold := func() bool {
		for ci := 0; ci < nc; ci++ {
			known, r := ts.root(ci)
			if known && r == 0 {
				return false
			}
		}
		return true
	}
	complete := func() bool {
		for ci := 0; ci < nc; ci++ {
			known, r := ts.root(ci)
			if !known || r == 0 {
				return false
			}
		}
		return true
	}

	var dfs func(remaining []int32) (bool, error)
	dfs = func(remaining []int32) (bool, error) {
		nodes++
		s.Stats.Nodes++
		if err := checkBudget(); err != nil {
			return false, err
		}
		if len(remaining) == 0 {
			return complete(), nil
		}
		// Choose the unassigned variable with the smallest domain; the
		// configuration picks which of several equal minima to take.
		best := 0
		bestCount := domains[remaining[0]].count()
		for i := 1; i < len(remaining); i++ {
			if c := domains[remaining[i]].count(); c < bestCount || (cfg.tieLast && c == bestCount) {
				best, bestCount = i, c
			}
		}
		vi := remaining[best]
		rest := make([]int32, 0, len(remaining)-1)
		rest = append(rest, remaining[:best]...)
		rest = append(rest, remaining[best+1:]...)

		d := domains[vi] // snapshot: restored by value semantics
		n := uint64(1) << uint(vars[vi].Bits)
		for k := uint64(0); k < n; k++ {
			val := cfg.value(k, n)
			if !d.has(val) {
				continue
			}
			assigns++
			ts.assign(vi, val)
			if allHold() {
				// Forward-check: refilter domains of remaining vars.
				saved := make([]domain, len(rest))
				for i, rv := range rest {
					saved[i] = domains[rv]
				}
				alive := true
				for _, rv := range rest {
					ok, err := filterUnary(rv)
					if err != nil {
						return false, err
					}
					if !ok {
						alive = false
						break
					}
				}
				if alive {
					sat, err := dfs(rest)
					if err != nil {
						return false, err
					}
					if sat {
						return true, nil
					}
				}
				for i, rv := range rest {
					domains[rv] = saved[i]
				}
			}
			ts.unassign(vi)
		}
		return false, nil
	}

	// Initial unary filtering pass.
	order := make([]int32, len(vars))
	for i := range order {
		order[i] = int32(i)
	}
	for _, vi := range order {
		ok, err := filterUnary(vi)
		if err != nil {
			return false, nil, err
		}
		if !ok {
			return false, nil, nil
		}
	}
	sat, err := dfs(order)
	if err != nil {
		return false, nil, err
	}
	if !sat {
		return false, nil, nil
	}
	model := make(map[*expr.Var]uint64, len(vars))
	for i, v := range vars {
		model[v] = ts.avals[i]
	}
	return true, model, nil
}
