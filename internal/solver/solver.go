// Package solver decides satisfiability of path constraints over
// symbolic input bytes. It is the reproduction's stand-in for the STP
// solver KLEE uses, scoped to the workload the paper evaluates: bitvector
// constraints over small byte-wide inputs (2–10 symbolic bytes).
//
// The decision procedure is exact: constraints are partitioned into
// independent groups (KLEE's independence optimization), each group is
// solved by backtracking search over per-byte domains with forward
// checking, and results are cached per group (KLEE's counterexample
// cache). Model reuse is attempted before any search: if a recently
// produced model satisfies the whole query, no search happens at all.
package solver

import (
	"errors"
	"sort"
	"strconv"
	"strings"
	"time"

	"overify/internal/expr"
)

// Options bound the solver's work.
type Options struct {
	// MaxNodes bounds backtracking nodes per query (default 100k).
	MaxNodes int64
	// MaxWork bounds expression-node visits per query (default 50M) —
	// the finer-grained budget that stops pathological searches.
	MaxWork int64
	// ModelHistory is how many recent models are tried for reuse
	// (default 8).
	ModelHistory int
}

// Stats counts solver work across a run; t_verify is dominated by these.
type Stats struct {
	Queries        int64
	CacheHits      int64
	ModelReuseHits int64
	Sat            int64
	Unsat          int64
	Failures       int64 // budget exhaustion
	Nodes          int64 // backtracking nodes explored
	MaxGroupVars   int
}

// Add accumulates o into s; the parallel engine merges per-worker
// solver stats with this after all workers have stopped.
func (s *Stats) Add(o Stats) {
	s.Queries += o.Queries
	s.CacheHits += o.CacheHits
	s.ModelReuseHits += o.ModelReuseHits
	s.Sat += o.Sat
	s.Unsat += o.Unsat
	s.Failures += o.Failures
	s.Nodes += o.Nodes
	if o.MaxGroupVars > s.MaxGroupVars {
		s.MaxGroupVars = o.MaxGroupVars
	}
}

// ErrBudget is returned when a query exceeds the node budget.
var ErrBudget = errors.New("solver: node budget exhausted")

var errTooWide = errors.New("solver: variable wider than 8 bits")

type cacheEntry struct {
	sat   bool
	model map[*expr.Var]uint64
}

// Solver decides queries and caches results. Not safe for concurrent
// use; create one per engine worker. Solvers may share a Cache (see
// NewWithCache) — the cache layer is concurrency-safe, the search and
// model-reuse state is not. A private unsynchronized L1 map sits in
// front of the shared cache so repeat hits (the common case under DFS
// exploration) never touch a lock.
type Solver struct {
	opts     Options
	Stats    Stats
	l1       map[string]cacheEntry
	cache    *Cache
	recent   []map[*expr.Var]uint64
	deadline time.Time
}

// New returns a solver with the given options and a private cache.
func New(opts Options) *Solver {
	return NewWithCache(opts, NewCache())
}

// NewWithCache returns a solver layered over a shared query cache. The
// parallel engine creates one Cache per run and one Solver per worker,
// so every worker benefits from every other worker's decided groups.
func NewWithCache(opts Options, cache *Cache) *Solver {
	if opts.MaxNodes == 0 {
		opts.MaxNodes = 65_536
	}
	if opts.MaxWork == 0 {
		opts.MaxWork = 8_000_000
	}
	if opts.ModelHistory == 0 {
		opts.ModelHistory = 8
	}
	if cache == nil {
		cache = NewCache()
	}
	return &Solver{opts: opts, l1: make(map[string]cacheEntry), cache: cache}
}

// SharedCache returns the cache this solver decides into.
func (s *Solver) SharedCache() *Cache { return s.cache }

// SetDeadline makes every subsequent query fail with ErrBudget once the
// wall clock passes t (zero disables). The symbolic-execution engine
// forwards its own deadline here so a single hard query cannot outlive
// the exploration budget.
func (s *Solver) SetDeadline(t time.Time) { s.deadline = t }

// Prefetch warms the private L1 with the shared-cache entries for
// every independent group of the given queries, in one batched
// striped-lock round trip (Cache.getBatch). The symbolic executor
// calls it with the two sibling queries of a conditional branch before
// deciding them, so the true and false sides cost one shared-cache
// visit instead of two. Queries that constant-filter away or that a
// recent model already satisfies contribute no keys — Sat answers
// those without ever consulting the cache.
func (s *Solver) Prefetch(queries ...[]*expr.Expr) {
	var keys []string
	seen := make(map[string]bool)
	for _, q := range queries {
		live := q[:0:0]
		trivial := false
		for _, c := range q {
			if c.IsTrue() {
				continue
			}
			if c.IsFalse() {
				trivial = true
				break
			}
			live = append(live, c)
		}
		if trivial || len(live) == 0 {
			continue
		}
		reused := false
		for _, m := range s.recent {
			if satisfies(live, m) {
				reused = true
				break
			}
		}
		if reused {
			continue
		}
		for _, g := range independentGroups(live) {
			key := groupKey(g)
			if seen[key] {
				continue
			}
			seen[key] = true
			if _, ok := s.l1[key]; ok {
				continue
			}
			keys = append(keys, key)
		}
	}
	for key, e := range s.cache.getBatch(keys) {
		s.l1[key] = e
	}
}

// Sat reports whether the conjunction of the constraints is satisfiable,
// and if so returns a model (an assignment of every mentioned variable).
func (s *Solver) Sat(constraints []*expr.Expr) (bool, map[*expr.Var]uint64, error) {
	s.Stats.Queries++

	// Constant filtering.
	var live []*expr.Expr
	for _, c := range constraints {
		if c.IsTrue() {
			continue
		}
		if c.IsFalse() {
			s.Stats.Unsat++
			return false, nil, nil
		}
		live = append(live, c)
	}
	if len(live) == 0 {
		s.Stats.Sat++
		return true, map[*expr.Var]uint64{}, nil
	}

	// Model reuse: does a recent model satisfy everything?
	for _, m := range s.recent {
		if satisfies(live, m) {
			s.Stats.ModelReuseHits++
			s.Stats.Sat++
			return true, m, nil
		}
	}

	// Independence: split into groups sharing variables.
	groups := independentGroups(live)
	model := make(map[*expr.Var]uint64)
	for _, g := range groups {
		sat, gm, err := s.solveGroup(g)
		if err != nil {
			s.Stats.Failures++
			return false, nil, err
		}
		if !sat {
			s.Stats.Unsat++
			return false, nil, nil
		}
		for v, val := range gm {
			model[v] = val
		}
	}
	s.Stats.Sat++
	s.remember(model)
	return true, model, nil
}

func satisfies(constraints []*expr.Expr, model map[*expr.Var]uint64) bool {
	for _, c := range constraints {
		if expr.Eval(c, model) == 0 {
			return false
		}
	}
	return true
}

func (s *Solver) remember(model map[*expr.Var]uint64) {
	m := make(map[*expr.Var]uint64, len(model))
	for k, v := range model {
		m[k] = v
	}
	s.recent = append(s.recent, m)
	if len(s.recent) > s.opts.ModelHistory {
		s.recent = s.recent[1:]
	}
}

// independentGroups unions constraints that share variables.
func independentGroups(constraints []*expr.Expr) [][]*expr.Expr {
	parent := make([]int, len(constraints))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }

	varOwner := make(map[*expr.Var]int)
	for i, c := range constraints {
		for _, v := range expr.VarsOf(c) {
			if j, ok := varOwner[v]; ok {
				union(i, j)
			} else {
				varOwner[v] = i
			}
		}
	}
	byRoot := make(map[int][]*expr.Expr)
	var order []int
	for i, c := range constraints {
		r := find(i)
		if _, ok := byRoot[r]; !ok {
			order = append(order, r)
		}
		byRoot[r] = append(byRoot[r], c)
	}
	out := make([][]*expr.Expr, 0, len(order))
	for _, r := range order {
		out = append(out, byRoot[r])
	}
	return out
}

func groupKey(g []*expr.Expr) string {
	ids := make([]int64, len(g))
	for i, c := range g {
		ids[i] = c.ID()
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var sb strings.Builder
	for _, id := range ids {
		sb.WriteString(strconv.FormatInt(id, 36))
		sb.WriteByte(',')
	}
	return sb.String()
}

func (s *Solver) solveGroup(g []*expr.Expr) (bool, map[*expr.Var]uint64, error) {
	key := groupKey(g)
	if e, ok := s.l1[key]; ok {
		s.Stats.CacheHits++
		return e.sat, e.model, nil
	}
	if e, ok := s.cache.get(key); ok {
		s.l1[key] = e
		s.Stats.CacheHits++
		return e.sat, e.model, nil
	}
	sat, model, err := s.search(g)
	if err != nil {
		return false, nil, err
	}
	// Cached models are shared across workers; they are never mutated
	// after insertion (Sat only reads them, remember copies).
	entry := cacheEntry{sat: sat, model: model}
	s.l1[key] = entry
	s.cache.put(key, entry)
	return sat, model, nil
}

// domain is the candidate-value set of one 8-bit variable.
type domain [4]uint64

func fullDomain(bits int) domain {
	var d domain
	n := 1 << uint(bits)
	for i := 0; i < n; i++ {
		d[i/64] |= 1 << uint(i%64)
	}
	return d
}

func (d *domain) has(v uint64) bool { return d[v/64]&(1<<(v%64)) != 0 }
func (d *domain) clear(v uint64)    { d[v/64] &^= 1 << (v % 64) }

func (d *domain) count() int {
	n := 0
	for _, w := range d {
		for x := w; x != 0; x &= x - 1 {
			n++
		}
	}
	return n
}

func (d *domain) first() (uint64, bool) {
	for i, w := range d {
		if w != 0 {
			bit := uint64(0)
			for w&1 == 0 {
				w >>= 1
				bit++
			}
			return uint64(i)*64 + bit, true
		}
	}
	return 0, false
}

// search runs backtracking with forward checking over the group.
func (s *Solver) search(g []*expr.Expr) (bool, map[*expr.Var]uint64, error) {
	vars := expr.VarsOf(g...)
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	for _, v := range vars {
		if v.Bits > 8 {
			return false, nil, errTooWide
		}
	}
	if len(vars) > s.Stats.MaxGroupVars {
		s.Stats.MaxGroupVars = len(vars)
	}

	domains := make(map[*expr.Var]*domain, len(vars))
	for _, v := range vars {
		d := fullDomain(v.Bits)
		domains[v] = &d
	}
	// constraint -> its variables (for unassigned counting).
	cvars := make([][]*expr.Var, len(g))
	for i, c := range g {
		cvars[i] = expr.VarsOf(c)
	}

	asn := make(map[*expr.Var]uint64)
	pe := expr.NewPartialEvaluator(asn)
	var nodes int64
	checkBudget := func() error {
		if nodes > s.opts.MaxNodes || pe.Work > s.opts.MaxWork {
			return ErrBudget
		}
		if !s.deadline.IsZero() && pe.Work%16384 < 64 && time.Now().After(s.deadline) {
			return ErrBudget
		}
		return nil
	}

	// filterUnary prunes the domain of v using constraints where v is the
	// only unassigned variable. Returns false if a domain empties.
	filterUnary := func(v *expr.Var) (bool, error) {
		d := domains[v]
		for i, c := range g {
			if err := checkBudget(); err != nil {
				return false, err
			}
			un := 0
			mentionsV := false
			for _, cv := range cvars[i] {
				if _, ok := asn[cv]; !ok {
					un++
					if cv == v {
						mentionsV = true
					}
				}
			}
			if un != 1 || !mentionsV {
				continue
			}
			for val := uint64(0); val < uint64(1)<<uint(v.Bits); val++ {
				if !d.has(val) {
					continue
				}
				asn[v] = val
				pe.Reset()
				r := pe.Eval(c)
				delete(asn, v)
				if r.Known && r.Val == 0 {
					d.clear(val)
				}
			}
			pe.Reset()
			if d.count() == 0 {
				return false, nil
			}
		}
		return true, nil
	}

	// allHold checks every constraint under the current (partial)
	// assignment; returns false on a definite violation.
	allHold := func() bool {
		for _, c := range g {
			r := pe.Eval(c)
			if r.Known && r.Val == 0 {
				return false
			}
		}
		return true
	}
	complete := func() bool {
		for _, c := range g {
			r := pe.Eval(c)
			if !r.Known || r.Val == 0 {
				return false
			}
		}
		return true
	}

	var dfs func(remaining []*expr.Var) (bool, error)
	dfs = func(remaining []*expr.Var) (bool, error) {
		nodes++
		s.Stats.Nodes++
		if err := checkBudget(); err != nil {
			return false, err
		}
		if len(remaining) == 0 {
			return complete(), nil
		}
		// Choose the unassigned variable with the smallest domain.
		best := 0
		bestCount := domains[remaining[0]].count()
		for i := 1; i < len(remaining); i++ {
			if c := domains[remaining[i]].count(); c < bestCount {
				best, bestCount = i, c
			}
		}
		v := remaining[best]
		rest := make([]*expr.Var, 0, len(remaining)-1)
		rest = append(rest, remaining[:best]...)
		rest = append(rest, remaining[best+1:]...)

		d := *domains[v] // snapshot: restored by value semantics
		for val := uint64(0); val < uint64(1)<<uint(v.Bits); val++ {
			if !d.has(val) {
				continue
			}
			asn[v] = val
			pe.Reset()
			if allHold() {
				// Forward-check: refilter domains of remaining vars.
				saved := make(map[*expr.Var]domain, len(rest))
				for _, rv := range rest {
					saved[rv] = *domains[rv]
				}
				alive := true
				for _, rv := range rest {
					ok, err := filterUnary(rv)
					if err != nil {
						return false, err
					}
					if !ok {
						alive = false
						break
					}
				}
				if alive {
					sat, err := dfs(rest)
					if err != nil {
						return false, err
					}
					if sat {
						return true, nil
					}
				}
				for rv, sd := range saved {
					*domains[rv] = sd
				}
			}
			delete(asn, v)
			pe.Reset()
		}
		return false, nil
	}

	// Initial unary filtering pass.
	for _, v := range vars {
		ok, err := filterUnary(v)
		if err != nil {
			return false, nil, err
		}
		if !ok {
			return false, nil, nil
		}
	}
	sat, err := dfs(vars)
	if err != nil {
		return false, nil, err
	}
	if !sat {
		return false, nil, nil
	}
	model := make(map[*expr.Var]uint64, len(vars))
	for v, val := range asn {
		model[v] = val
	}
	return true, model, nil
}
