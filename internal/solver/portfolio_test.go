package solver

import (
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// hardGroup builds (x & y) == 255 over full 8-bit domains: the pair
// cross product (256x256) overflows the value-set pair cap so
// propagation widens to top, unary filtering can't fire with two
// unassigned variables, and the ascending value order must reject 254
// wrong x values (each paying a 256-probe forward check) before
// reaching x=255. Descending order finds x=255, y=255 almost
// immediately — the portfolio's canonical win.
func hardGroup(b *expr.Builder) []*expr.Expr {
	x := b.Var(&expr.Var{Name: "x", Bits: 8, Idx: 0})
	y := b.Var(&expr.Var{Name: "y", Bits: 8, Idx: 1})
	return []*expr.Expr{b.Cmp(ir.OpEq, b.Bin(ir.OpAnd, x, y), b.Const(8, 255))}
}

// TestPortfolioBeatsFixedOrder is the counter-based acceptance check:
// on the hard group the racing solver answers in strictly fewer
// assignments than the fixed-order solver, with at least one win
// credited to a non-default configuration. Both counts are pure
// functions of the group — no wall clock involved.
func TestPortfolioBeatsFixedOrder(t *testing.T) {
	fixedB := expr.NewBuilder()
	fixed := New(Options{})
	sat, model, err := fixed.Sat(hardGroup(fixedB))
	if err != nil || !sat {
		t.Fatalf("fixed: sat=%v err=%v", sat, err)
	}
	if len(model) != 2 {
		t.Fatalf("fixed model: %v", model)
	}

	portB := expr.NewBuilder()
	port := New(Options{Portfolio: 4, PortfolioStall: 1024})
	psat, pmodel, err := port.Sat(hardGroup(portB))
	if err != nil || !psat {
		t.Fatalf("portfolio: sat=%v err=%v", psat, err)
	}
	for _, v := range pmodel {
		if v != 255 {
			t.Fatalf("portfolio model: %v (want all-255)", pmodel)
		}
	}

	if port.Stats.PortfolioRaces != 1 {
		t.Fatalf("PortfolioRaces = %d, want 1", port.Stats.PortfolioRaces)
	}
	if port.Stats.PortfolioWins < 1 {
		t.Fatalf("PortfolioWins = %d, want >= 1", port.Stats.PortfolioWins)
	}
	if port.Stats.Assignments >= fixed.Stats.Assignments {
		t.Fatalf("portfolio assignments %d not under fixed-order %d",
			port.Stats.Assignments, fixed.Stats.Assignments)
	}
	t.Logf("fixed=%d assignments, portfolio=%d (races=%d wins=%d)",
		fixed.Stats.Assignments, port.Stats.Assignments,
		port.Stats.PortfolioRaces, port.Stats.PortfolioWins)
}

// TestPortfolioDeterministic pins the race's machine-independence: two
// independent solvers produce identical stats and models on the same
// group.
func TestPortfolioDeterministic(t *testing.T) {
	run := func() (Stats, map[string]uint64) {
		b := expr.NewBuilder()
		s := New(Options{Portfolio: 4, PortfolioStall: 512})
		sat, model, err := s.Sat(hardGroup(b))
		if err != nil || !sat {
			t.Fatalf("sat=%v err=%v", sat, err)
		}
		byName := make(map[string]uint64, len(model))
		for v, val := range model {
			byName[v.Name] = val
		}
		return s.Stats, byName
	}
	s1, m1 := run()
	s2, m2 := run()
	if s1 != s2 {
		t.Fatalf("stats differ across identical runs:\n%+v\n%+v", s1, s2)
	}
	for k, v := range m1 {
		if m2[k] != v {
			t.Fatalf("models differ: %v vs %v", m1, m2)
		}
	}
}

// TestPortfolioOffMatchesDefault pins that Portfolio <= 1 keeps the
// historical fixed-order behavior bit-for-bit: same verdicts, same
// assignment counts, no race counters.
func TestPortfolioOffMatchesDefault(t *testing.T) {
	for _, k := range []int{0, 1} {
		b := expr.NewBuilder()
		s := New(Options{Portfolio: k})
		sat, _, err := s.Sat(hardGroup(b))
		if err != nil || !sat {
			t.Fatalf("Portfolio=%d: sat=%v err=%v", k, sat, err)
		}
		ref := New(Options{})
		rb := expr.NewBuilder()
		rsat, _, rerr := ref.Sat(hardGroup(rb))
		if rerr != nil || !rsat {
			t.Fatalf("ref: sat=%v err=%v", rsat, rerr)
		}
		if s.Stats != ref.Stats {
			t.Fatalf("Portfolio=%d stats drifted from default:\n%+v\n%+v", k, s.Stats, ref.Stats)
		}
		if s.Stats.PortfolioRaces != 0 || s.Stats.PortfolioWins != 0 {
			t.Fatalf("Portfolio=%d: race counters moved: %+v", k, s.Stats)
		}
	}
}

// TestPortfolioUnsatGroup checks a race on an unsatisfiable hard group
// terminates with the correct verdict: (x & y) == 255 && x == 0.
func TestPortfolioUnsatGroup(t *testing.T) {
	b := expr.NewBuilder()
	x := b.Var(&expr.Var{Name: "x", Bits: 8, Idx: 0})
	y := b.Var(&expr.Var{Name: "y", Bits: 8, Idx: 1})
	cs := []*expr.Expr{
		b.Cmp(ir.OpEq, b.Bin(ir.OpAnd, x, y), b.Const(8, 255)),
		b.Cmp(ir.OpEq, b.Bin(ir.OpOr, x, y), b.Const(8, 254)),
	}
	s := New(Options{Portfolio: 4, PortfolioStall: 256})
	sat, _, err := s.Sat(cs)
	if err != nil {
		t.Fatalf("err=%v", err)
	}
	if sat {
		t.Fatalf("sat=true for contradictory group")
	}
}
