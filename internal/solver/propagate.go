package solver

import (
	"math/bits"

	"overify/internal/expr"
	"overify/internal/ir"
)

// Bounded value-set propagation over a compiled tape, run once per
// search before any backtracking. The per-variable enumeration the
// search does is blind to arithmetic structure: a constraint like
//
//	uge(sext(add(ite(...), 1)), 4)
//
// only ever takes values {1..4} on the inner add no matter what the
// input bytes are, so it can be refuted (or its variables' domains
// collapsed to the few feasible bytes) without visiting 256^k
// assignments. basename's "last slash index" groups are exactly this
// shape and blow any per-assignment budget under plain enumeration.
//
// The analysis keeps two value sets per tape slot, each widened to
// "top" (unknown) beyond vsetCap values:
//
//   - fwd: values the slot can take, computed bottom-up over the
//     current domains.
//   - dem: values consistent with every constraint seen so far,
//     computed top-down from "each constraint root must be non-zero".
//
// The invariant both maintain: in any assignment satisfying the WHOLE
// group, every slot's value lies in fwd[s] ∩ dem[s]. Constraints share
// slots (the tape is hash-consed group-wide), so a demand derived from
// one constraint narrows what every other constraint sees — dem
// persists across constraints and rounds, shrinking monotonically.
// When any set (or a variable domain) empties, no satisfying
// assignment exists and the group is unsat with zero search; surviving
// variable demands prune domains for the backtracking search.
//
// The whole pass is a deterministic function of the group, so group
// verdicts stay evaluator- and schedule-independent; its cost is
// bounded by rounds × tape size × vsetPairCap, independent of how many
// assignments the search would have tried.

const (
	// vsetCap is the widening threshold: a slot tracking more than this
	// many distinct values becomes top (unknown).
	vsetCap = 32
	// vsetPairCap bounds the operand cross-product enumerated per slot;
	// larger products widen to top instead of being computed.
	vsetPairCap = 4096
	// vsetRangeCap bounds the full-range enumeration fallback for
	// narrow slots whose forward set widened to top. Variables are at
	// most 8 bits wide, so 256 covers every byte-valued slot; it is
	// deliberately larger than vsetCap because a range enumeration is
	// transient (one demand pass) rather than stored per slot.
	vsetRangeCap = 256
	// propMaxRounds bounds full sweeps; each round re-runs every
	// constraint over the narrowed sets. Chain-shaped contradictions
	// (constraint A narrows a shared node, B refutes on it) settle in
	// two; the cap only exists to bound adversarial groups.
	propMaxRounds = 8
)

// vset is a small finite value set, or top (every value possible).
type vset struct {
	top  bool
	vals []uint64 // deduped, unordered, len ≤ vsetCap
}

func (s *vset) reset() {
	s.top = true
	s.vals = s.vals[:0]
}

func (s *vset) add(v uint64) {
	if s.top {
		return
	}
	for _, x := range s.vals {
		if x == v {
			return
		}
	}
	if len(s.vals) >= vsetCap {
		s.top = true
		s.vals = s.vals[:0]
		return
	}
	s.vals = append(s.vals, v)
}

func (s *vset) has(v uint64) bool {
	if s.top {
		return true
	}
	for _, x := range s.vals {
		if x == v {
			return true
		}
	}
	return false
}

func (s *vset) empty() bool { return !s.top && len(s.vals) == 0 }

// intersect keeps only the values of s that d also allows, reporting
// whether anything was removed.
func (s *vset) intersect(d *vset) bool {
	if d.top {
		return false
	}
	if s.top {
		s.top = false
		s.vals = append(s.vals[:0], d.vals...)
		return true
	}
	kept := s.vals[:0]
	for _, x := range s.vals {
		if d.has(x) {
			kept = append(kept, x)
		}
	}
	shrunk := len(kept) < len(s.vals)
	s.vals = kept
	return shrunk
}

// propagator holds the per-search propagation state.
type propagator struct {
	t        *tape
	domains  []domain
	fwd      []vset
	dem      []vset
	varIter  [][]uint64
	rangeBuf []uint64
	changed  bool
	unsat    bool
}

// concreteSlot evaluates one slot from concrete operand values,
// mirroring tapeState.recompute with every operand known (which in
// turn mirrors expr.Eval).
func (p *propagator) concreteSlot(s int32, a, b, c uint64) uint64 {
	op := &p.t.ops[s]
	var val uint64
	switch op.kind {
	case expr.KBin:
		r, ok := ir.EvalBin(op.op, int(op.bits), a, b)
		if !ok {
			r = 0
		}
		val = r
	case expr.KCmp:
		if ir.EvalCmp(op.op, int(p.t.ops[op.a0].bits), a, b) {
			val = 1
		}
	case expr.KSelect:
		if a != 0 {
			val = b
		} else {
			val = c
		}
	case expr.KCast:
		val = ir.EvalCast(op.op, int(p.t.ops[op.a0].bits), int(op.bits), a)
	case expr.KRead:
		if a < uint64(len(op.table)) {
			val = op.table[a]
		}
	}
	return ir.Mask(int(op.bits), val)
}

// iterable returns a finite enumeration of slot s's feasible values,
// or nil when only top is known: the forward set when finite, the
// variable's current domain for variable slots, and the full range for
// narrow slots. Callers that hold enumerations across calls must copy:
// the full-range case reuses one buffer.
func (p *propagator) iterable(s int32) []uint64 {
	if f := &p.fwd[s]; !f.top {
		return f.vals
	}
	op := &p.t.ops[s]
	if op.kind == expr.KVar {
		return p.varIter[op.vi]
	}
	// Narrow slots enumerate their full range (bits < 64 guards the
	// shift: 1<<64 wraps to 0 and would enumerate nothing).
	if op.bits > 0 && op.bits < 64 {
		if n := uint64(1) << uint(op.bits); n <= vsetRangeCap {
			full := p.rangeBuf[:0]
			for v := uint64(0); v < n; v++ {
				full = append(full, v)
			}
			p.rangeBuf = full
			return full
		}
	}
	return nil
}

// forward recomputes fwd[s] from its operands' sets, then narrows it
// by the accumulated demand.
func (p *propagator) forward(s int32) {
	op := &p.t.ops[s]
	f := &p.fwd[s]
	f.top = false
	f.vals = f.vals[:0]
	switch op.kind {
	case expr.KConst:
		f.add(ir.Mask(int(op.bits), op.val))
	case expr.KVar:
		iv := p.varIter[op.vi]
		if len(iv) > vsetCap {
			f.top = true
		} else {
			for _, v := range iv {
				f.add(v)
			}
		}
	default:
		ia := p.opIter(op.a0)
		ib := one
		if op.a1 >= 0 {
			ib = p.opIter(op.a1)
		}
		ic := one
		if op.a2 >= 0 {
			ic = p.opIter(op.a2)
		}
		if ia == nil || ib == nil || ic == nil || len(ia)*len(ib)*len(ic) > vsetPairCap {
			f.top = true
		} else {
			for _, va := range ia {
				for _, vb := range ib {
					for _, vc := range ic {
						f.add(p.concreteSlot(s, va, vb, vc))
						if f.top {
							break
						}
					}
				}
			}
		}
	}
	f.intersect(&p.dem[s])
	if f.empty() {
		p.unsat = true
	}
}

var one = []uint64{0}

// opIter is iterable without the full-range fallback buffer (safe to
// hold across the nested forward enumeration).
func (p *propagator) opIter(s int32) []uint64 {
	if f := &p.fwd[s]; !f.top {
		return f.vals
	}
	if op := &p.t.ops[s]; op.kind == expr.KVar {
		return p.varIter[op.vi]
	}
	return nil
}

// demand narrows dem[target] (operand position which of slot s) to the
// values for which some combination of the other operands' feasible
// values makes s evaluate into dem[s]. Unenumerable or oversized
// products contribute nothing (top).
func (p *propagator) demand(s int32, which int) {
	op := &p.t.ops[s]
	ops3 := [3]int32{op.a0, op.a1, op.a2}
	target := ops3[which]
	if target < 0 {
		return
	}
	it := p.iterable(target)
	if it == nil {
		return
	}
	tvals := append([]uint64(nil), it...)
	others := [3][]uint64{one, one, one}
	product := len(tvals)
	for i, o := range ops3 {
		if i == which || o < 0 {
			continue
		}
		ov := p.iterable(o)
		if ov == nil {
			return
		}
		others[i] = append([]uint64(nil), ov...)
		product *= len(ov)
	}
	if product > vsetPairCap {
		return
	}
	// Variable targets are pruned in their domain bitset directly: a
	// domain holds up to 256 values, so routing the kept set through a
	// vset would widen exclusion demands like "anything but 0" to top
	// and lose them.
	top := &p.t.ops[target]
	if top.kind == expr.KVar {
		var keep domain
		for _, tv := range tvals {
			if p.supported(s, tv, which, &others) {
				keep[tv/64] |= 1 << (tv % 64)
			}
		}
		dom := &p.domains[top.vi]
		for w := range dom {
			if masked := dom[w] & keep[w]; masked != dom[w] {
				dom[w] = masked
				p.changed = true
			}
		}
		if dom.count() == 0 {
			p.unsat = true
		}
		return
	}
	var dm vset
	for _, tv := range tvals {
		if p.supported(s, tv, which, &others) {
			dm.add(tv)
		}
	}
	if p.dem[target].intersect(&dm) {
		p.changed = true
	}
	if p.dem[target].empty() {
		p.unsat = true
	}
}

// supported reports whether some combination of the other operands'
// feasible values makes slot s evaluate into dem[s] with the target
// operand (position which) held at tv.
func (p *propagator) supported(s int32, tv uint64, which int, others *[3][]uint64) bool {
	ds := &p.dem[s]
	for _, v0 := range pickOperand(others[0], tv, which == 0) {
		for _, v1 := range pickOperand(others[1], tv, which == 1) {
			for _, v2 := range pickOperand(others[2], tv, which == 2) {
				if ds.has(p.concreteSlot(s, v0, v1, v2)) {
					return true
				}
			}
		}
	}
	return false
}

// pickOperand substitutes the target value into its operand position.
func pickOperand(vals []uint64, tv uint64, isTarget bool) []uint64 {
	if isTarget {
		return []uint64{tv}
	}
	return vals
}

// constraintPass runs one forward + backward sweep over constraint
// ci's sub-DAG.
func (p *propagator) constraintPass(ci int) {
	t := p.t
	sub := t.csub[ci]
	root := t.roots[ci]

	for s := int32(0); s <= root; s++ {
		if sub[s>>6]&(1<<uint(s&63)) == 0 {
			continue
		}
		p.forward(s)
		if p.unsat {
			return
		}
	}

	// The root must evaluate non-zero: intersect its demand with its
	// feasible non-zero values (or {1} for 1-bit roots).
	rd := &p.dem[root]
	var want vset
	if rf := &p.fwd[root]; !rf.top {
		for _, v := range rf.vals {
			if v != 0 {
				want.add(v)
			}
		}
	} else if t.ops[root].bits == 1 {
		want.add(1)
	} else {
		want.top = true
	}
	if rd.intersect(&want) {
		p.changed = true
	}
	if rd.empty() {
		p.unsat = true
		return
	}

	// Backward, parents-first (operands always sit at smaller slot
	// indices, so a slot's demand is final before it demands of its own
	// operands within this sweep; demands from other constraints keep
	// accumulating across sweeps).
	for s := root; s >= 0; s-- {
		if sub[s>>6]&(1<<uint(s&63)) == 0 {
			continue
		}
		if p.dem[s].top {
			continue
		}
		op := &t.ops[s]
		if op.kind == expr.KVar || op.kind == expr.KConst {
			continue
		}
		if op.kind == expr.KSelect {
			p.demandSelectBranch(s)
			if p.unsat {
				return
			}
		}
		for which := 0; which < 3; which++ {
			p.demand(s, which)
			if p.unsat {
				return
			}
		}
	}
}

// demandSelectBranch handles the select case the generic enumeration
// cannot: when the condition's feasible values are all zero (or all
// non-zero), the select's value IS the corresponding branch's value, so
// the select's demand transfers to that branch wholesale — no cross
// product with the dead branch's (possibly unbounded) values needed.
func (p *propagator) demandSelectBranch(s int32) {
	op := &p.t.ops[s]
	cf := &p.fwd[op.a0]
	if cf.top || len(cf.vals) == 0 {
		return
	}
	zero, nonzero := false, false
	for _, v := range cf.vals {
		if v == 0 {
			zero = true
		} else {
			nonzero = true
		}
	}
	var branch int32
	switch {
	case zero && !nonzero:
		branch = op.a2
	case nonzero && !zero:
		branch = op.a1
	default:
		return
	}
	if p.t.ops[branch].kind == expr.KConst {
		return
	}
	if p.dem[branch].intersect(&p.dem[s]) {
		p.changed = true
	}
	if p.dem[branch].empty() {
		p.unsat = true
	}
}

// pruneDomains applies accumulated variable demands to the domains.
func (p *propagator) pruneDomains() {
	for s, op := range p.t.ops {
		if op.kind != expr.KVar {
			continue
		}
		d := &p.dem[s]
		if d.top {
			continue
		}
		dom := &p.domains[op.vi]
		for _, v := range p.varIter[op.vi] {
			if !d.has(v) {
				dom.clear(v)
				p.changed = true
			}
		}
		if dom.count() == 0 {
			p.unsat = true
			return
		}
	}
}

// propagateDomains runs value-set propagation over the group's tape,
// pruning the search domains in place. It returns false when the group
// is proven unsatisfiable outright.
func propagateDomains(t *tape, domains []domain) bool {
	nslots := len(t.ops)
	p := &propagator{
		t:       t,
		domains: domains,
		fwd:     make([]vset, nslots),
		dem:     make([]vset, nslots),
		varIter: make([][]uint64, len(t.vars)),
	}
	for i := range p.dem {
		p.dem[i].reset()
	}
	for round := 0; round < propMaxRounds; round++ {
		for vi := range t.vars {
			vals := p.varIter[vi][:0]
			d := &domains[vi]
			for w, word := range d {
				for word != 0 {
					b := bits.TrailingZeros64(word)
					vals = append(vals, uint64(w*64+b))
					word &= word - 1
				}
			}
			p.varIter[vi] = vals
		}
		p.changed = false
		for ci := range t.roots {
			p.constraintPass(ci)
			if p.unsat {
				return false
			}
		}
		p.pruneDomains()
		if p.unsat {
			return false
		}
		if !p.changed {
			break
		}
	}
	return true
}
