package solver

import (
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// Corpus-shaped constraint generators. The shapes mirror what the
// symbolic executor sends while exploring the coreutils corpus: per
// input byte a NUL test and a classification-table read (isspace /
// isalpha lower to KRead over a 256-entry table), with occasional
// cross-byte constraints linking neighbors — the mix that dominates
// solver time in Table 1 / Figure 4.

func benchVars(n int) []*expr.Var {
	out := make([]*expr.Var, n)
	for i := range out {
		out[i] = &expr.Var{Name: "input[" + string(rune('0'+i)) + "]", Bits: 8, Idx: i}
	}
	return out
}

func classTable() []uint64 {
	t := make([]uint64, 256)
	for _, c := range " \t\n\v\f\r" {
		t[c] = 1
	}
	return t
}

// corpusPC builds a wc-shaped path condition over the given vars: byte
// i is non-NUL, classified by a table read, and every third byte is
// ordered against its neighbor.
func corpusPC(b *expr.Builder, vs []*expr.Var) []*expr.Expr {
	table := classTable()
	var pc []*expr.Expr
	for i, v := range vs {
		x := b.Var(v)
		pc = append(pc, b.Cmp(ir.OpNe, x, b.Const(8, 0)))
		read := b.Read(table, 8, b.Cast(ir.OpZExt, x, 64))
		pc = append(pc, b.Cmp(ir.OpEq, read, b.Const(8, 0)))
		if i > 0 && i%3 == 0 {
			pc = append(pc, b.Cmp(ir.OpULe, b.Var(vs[i-1]), x))
		}
	}
	return pc
}

func BenchmarkIndependentGroups(b *testing.B) {
	bld := expr.NewBuilder()
	pc := corpusPC(bld, benchVars(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g := independentGroups(pc); len(g) == 0 {
			b.Fatal("no groups")
		}
	}
}

// BenchmarkIncrementalPC partitions a growing path condition the way
// the engine sees it: one constraint appended per branch, the partition
// available at every prefix (pre-change: a full union-find re-partition
// per query; now: one carried Partition extended per append).
func BenchmarkIncrementalPC(b *testing.B) {
	bld := expr.NewBuilder()
	pc := corpusPC(bld, benchVars(8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var p *Partition
		for _, c := range pc {
			p = p.Extend(c)
			if _, trivial := p.Trivial(); trivial {
				b.Fatal("trivial partition")
			}
		}
	}
}

func BenchmarkGroupKey(b *testing.B) {
	bld := expr.NewBuilder()
	pc := corpusPC(bld, benchVars(8))
	groups := PartitionOf(pc).Groups()
	ids := make([][]int64, len(groups))
	for i, g := range groups {
		ids[i] = g.ids
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, g := range ids {
			_ = fingerprintIDs(g)
		}
	}
}

// BenchmarkPartitionExtend appends one constraint to an already-carried
// partition — the per-branch incremental cost the engine actually pays.
func BenchmarkPartitionExtend(b *testing.B) {
	bld := expr.NewBuilder()
	vs := benchVars(8)
	pc := corpusPC(bld, vs)
	base := PartitionOf(pc[:len(pc)-1])
	last := pc[len(pc)-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := base.Extend(last); p == nil {
			b.Fatal("nil partition")
		}
	}
}

// BenchmarkSearchTape measures one backtracking solve of a coupled
// multi-var group (the constraint evaluator's hot loop), bypassing the
// caches.
func BenchmarkSearchTape(b *testing.B) {
	bld := expr.NewBuilder()
	vs := benchVars(3)
	x := bld.Cast(ir.OpZExt, bld.Var(vs[0]), 32)
	y := bld.Cast(ir.OpZExt, bld.Var(vs[1]), 32)
	z := bld.Cast(ir.OpZExt, bld.Var(vs[2]), 32)
	table := classTable()
	g := []*expr.Expr{
		bld.Cmp(ir.OpEq, bld.Bin(ir.OpAdd, bld.Bin(ir.OpAdd, x, y), z), bld.Const(32, 420)),
		bld.Cmp(ir.OpULt, x, y),
		bld.Cmp(ir.OpEq, bld.Read(table, 8, bld.Cast(ir.OpZExt, bld.Var(vs[2]), 64)), bld.Const(8, 0)),
	}
	grp := PartitionOf(g).Groups()
	if len(grp) != 1 {
		b.Fatalf("want one group, got %d", len(grp))
	}
	s := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sat, _, err := s.search(grp[0])
		if err != nil || !sat {
			b.Fatalf("sat=%v err=%v", sat, err)
		}
	}
}
