package solver

import (
	"sync"
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// TestCacheSharedAcrossSolvers is the deterministic form of the
// cross-worker benefit: a group decided by one solver must be a cache
// hit for a second solver layered over the same Cache (expressions
// from one shared builder, so the group keys agree).
func TestCacheSharedAcrossSolvers(t *testing.T) {
	b := expr.NewConcurrentBuilder()
	v := &expr.Var{Name: "a", Bits: 8, Idx: 0}
	q := []*expr.Expr{b.Cmp(ir.OpEq, b.Var(v), b.Const(8, 42))}

	shared := NewCache()
	s1 := NewWithCache(Options{}, shared)
	s2 := NewWithCache(Options{}, shared)

	sat, model, err := s1.Sat(q)
	if err != nil || !sat || model[v] != 42 {
		t.Fatalf("s1: sat=%v model=%v err=%v", sat, model, err)
	}
	if shared.Snapshot().Entries == 0 {
		t.Fatal("s1 decided a group but published nothing")
	}

	before := shared.Snapshot().Hits
	sat, model, err = s2.Sat(q)
	if err != nil || !sat || model[v] != 42 {
		t.Fatalf("s2: sat=%v model=%v err=%v", sat, model, err)
	}
	if s2.Stats.CacheHits == 0 {
		t.Error("s2 re-searched a group s1 already decided")
	}
	if shared.Snapshot().Hits <= before {
		t.Error("s2's lookup did not hit the shared cache")
	}

	// Repeat queries on s2 are now L1 hits: shared-cache traffic stops.
	mid := shared.Snapshot()
	if _, _, err := s2.Sat(q); err != nil {
		t.Fatal(err)
	}
	after := shared.Snapshot()
	if after.Hits != mid.Hits || after.Misses != mid.Misses {
		t.Errorf("repeat query went past the L1: %+v -> %+v", mid, after)
	}
}

// TestCacheUnsatShared: UNSAT verdicts are shared too (the paper's
// point that sibling paths decide each other's infeasibility).
func TestCacheUnsatShared(t *testing.T) {
	b := expr.NewConcurrentBuilder()
	v := &expr.Var{Name: "a", Bits: 8, Idx: 0}
	x := b.Var(v)
	q := []*expr.Expr{
		b.Cmp(ir.OpEq, x, b.Const(8, 1)),
		b.Cmp(ir.OpEq, x, b.Const(8, 2)),
	}
	shared := NewCache()
	s1 := NewWithCache(Options{}, shared)
	s2 := NewWithCache(Options{}, shared)
	if sat, _, err := s1.Sat(q); err != nil || sat {
		t.Fatalf("s1: sat=%v err=%v", sat, err)
	}
	if sat, _, err := s2.Sat(q); err != nil || sat {
		t.Fatalf("s2: sat=%v err=%v", sat, err)
	}
	if s2.Stats.CacheHits == 0 {
		t.Error("UNSAT verdict was not shared")
	}
}

// TestCacheConcurrentAccess hammers one Cache from many goroutines
// (mixed get/put over overlapping keys) — meaningful under -race.
func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fingerprintIDs([]int64{int64(i % 97)})
				if _, ok := c.get(key); !ok {
					c.put(key, cacheEntry{sat: i%2 == 0})
				}
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	if snap.Entries == 0 || snap.Entries > 97 {
		t.Errorf("entries = %d, want 1..97 (dup puts must not double-count)", snap.Entries)
	}
	if snap.Hits+snap.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", snap.Hits+snap.Misses, 8*500)
	}
}

// TestCacheBoundedEviction pins the clock eviction: a stripe never
// holds more than its share of the cap, untouched entries leave first,
// and a recently hit entry survives the sweep (second chance).
func TestCacheBoundedEviction(t *testing.T) {
	c := NewCacheWithCap(cacheShards) // one entry per stripe
	if c.Capacity() != cacheShards {
		t.Fatalf("Capacity = %d, want %d", c.Capacity(), cacheShards)
	}
	// Drive many fingerprints into one stripe (same low bits).
	fp := func(i int) Fingerprint {
		return Fingerprint{hi: uint64(i), lo: uint64(i) << 32} // lo&63 == 0: all stripe 0
	}
	for i := 0; i < 10; i++ {
		c.put(fp(i), cacheEntry{sat: true})
	}
	snap := c.Snapshot()
	if snap.Entries != 1 {
		t.Errorf("stripe holds %d entries, cap 1", snap.Entries)
	}
	if snap.Evictions != 9 {
		t.Errorf("Evictions = %d, want 9", snap.Evictions)
	}
	// The survivor is the last inserted; its verdict must be intact.
	if _, ok := c.get(fp(9)); !ok {
		t.Error("most recent entry was evicted")
	}
}

// TestCacheSecondChance: with room for two entries per stripe, hitting
// an old entry right before an insert-driven sweep keeps it resident
// while the cold one leaves.
func TestCacheSecondChance(t *testing.T) {
	c := NewCacheWithCap(2 * cacheShards)
	fp := func(i int) Fingerprint {
		return Fingerprint{hi: uint64(i), lo: uint64(i) << 32}
	}
	c.put(fp(0), cacheEntry{sat: true})
	c.put(fp(1), cacheEntry{sat: false})
	// Touch 0 so the clock spares it; 1 stays cold.
	if _, ok := c.get(fp(0)); !ok {
		t.Fatal("resident entry missed")
	}
	c.put(fp(2), cacheEntry{sat: true}) // over cap: sweep runs
	if _, ok := c.shards[0].m[fp(0)]; !ok {
		t.Error("hit entry was evicted despite its reference bit")
	}
	if _, ok := c.shards[0].m[fp(1)]; ok {
		t.Error("cold entry survived the sweep")
	}
	if _, ok := c.shards[0].m[fp(2)]; !ok {
		t.Error("inserted entry missing after its own sweep")
	}
}

// TestCacheBoundedConcurrent hammers a tiny bounded cache from many
// goroutines (run under -race): the bound must hold and every hit must
// return the entry that was stored for that key.
func TestCacheBoundedConcurrent(t *testing.T) {
	c := NewCacheWithCap(cacheShards * 2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fp := Fingerprint{hi: uint64(i % 97), lo: uint64(g*1000 + i)}
				want := (fp.hi+fp.lo)%2 == 0
				if e, ok := c.get(fp); ok && e.sat != want {
					t.Errorf("hit returned wrong verdict for %v", fp)
					return
				}
				c.put(fp, cacheEntry{sat: want})
			}
		}(g)
	}
	wg.Wait()
	snap := c.Snapshot()
	var resident int64
	for i := range c.shards {
		c.shards[i].mu.RLock()
		resident += int64(len(c.shards[i].m))
		c.shards[i].mu.RUnlock()
	}
	if resident != snap.Entries {
		t.Errorf("entries counter %d != resident %d", snap.Entries, resident)
	}
	for i := range c.shards {
		if n := len(c.shards[i].m); n > c.shardCap {
			t.Errorf("stripe %d holds %d entries, cap %d", i, n, c.shardCap)
		}
	}
}
