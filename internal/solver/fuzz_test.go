package solver

import (
	"sync"
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// buildFuzzDAG interprets data as a stack program over four byte
// variables, producing 1-bit constraint expressions. Every operator the
// tape compiler handles (bin/cmp/select/cast/read, with folding done by
// the builder) is reachable.
func buildFuzzDAG(b *expr.Builder, vs []*expr.Var, data []byte) []*expr.Expr {
	table := classTable()
	stack := []*expr.Expr{b.Cast(ir.OpZExt, b.Var(vs[0]), 32)}
	var bools []*expr.Expr
	pop := func() *expr.Expr {
		e := stack[len(stack)-1]
		if len(stack) > 1 {
			stack = stack[:len(stack)-1]
		}
		return e
	}
	binOps := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr, ir.OpAShr}
	cmpOps := []ir.Op{ir.OpEq, ir.OpNe, ir.OpULt, ir.OpULe, ir.OpSLt, ir.OpSGe}
	for i := 0; i+1 < len(data) && len(bools) < 8; i += 2 {
		op, arg := data[i], uint64(data[i+1])
		switch op % 7 {
		case 0:
			stack = append(stack, b.Cast(ir.OpZExt, b.Var(vs[int(arg)%len(vs)]), 32))
		case 1:
			stack = append(stack, b.Const(32, arg*arg+arg))
		case 2:
			x, y := pop(), pop()
			stack = append(stack, b.Bin(binOps[int(arg)%len(binOps)], x, y))
		case 3:
			x, y := pop(), pop()
			c := b.Cmp(cmpOps[int(arg)%len(cmpOps)], x, y)
			bools = append(bools, c)
			stack = append(stack, b.Cast(ir.OpZExt, c, 32))
		case 4:
			c := b.Cmp(ir.OpNe, pop(), b.Const(32, arg))
			x, y := pop(), pop()
			stack = append(stack, b.Select(c, x, y))
		case 5:
			x := b.Cast(ir.OpTrunc, pop(), 8)
			stack = append(stack, b.Cast(ir.OpZExt, x, 32))
		case 6:
			idx := b.Cast(ir.OpZExt, b.Cast(ir.OpTrunc, pop(), 8), 64)
			stack = append(stack, b.Cast(ir.OpZExt, b.Read(table, 8, idx), 32))
		}
	}
	if len(bools) == 0 {
		bools = append(bools, b.Cmp(ir.OpNe, pop(), b.Const(32, 0)))
	}
	live := bools[:0]
	for _, c := range bools {
		if c.Kind != expr.KConst {
			live = append(live, c)
		}
	}
	return live
}

// FuzzCompiledEval is the differential oracle for the compiled
// constraint evaluator: on random expression DAGs and assignments, the
// tape must agree with expr.Eval under full assignments and with
// expr.PartialEvaluator (known-ness AND value) under partial ones,
// including after retractions. Two goroutines share one compiled tape
// to assert the tape itself is immutable (meaningful under -race).
func FuzzCompiledEval(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, byte(0x0f), uint64(12345))
	f.Add([]byte{6, 2, 3, 1, 4, 4, 2, 9, 3, 0, 5, 5}, byte(0x03), uint64(999))
	f.Add([]byte{2, 2, 2, 2, 3, 3, 3, 3, 4, 4}, byte(0x05), uint64(0))
	f.Fuzz(func(t *testing.T, data []byte, assignMask byte, seed uint64) {
		b := expr.NewBuilder()
		vs := vars(4)
		cs := buildFuzzDAG(b, vs, data)
		if len(cs) == 0 {
			return
		}
		for _, g := range PartitionOf(cs).Groups() {
			tp := compileGroup(g)
			var wg sync.WaitGroup
			for worker := 0; worker < 2; worker++ {
				wg.Add(1)
				go func(worker int) {
					defer wg.Done()
					ts := newTapeState(tp)
					// Partial assignment: variables picked by the mask.
					asn := make(map[*expr.Var]uint64)
					for vi, v := range tp.vars {
						if assignMask&(1<<uint(vi%8)) != 0 {
							val := (seed >> uint(8*vi)) & 0xff
							asn[v] = val
							ts.assign(int32(vi), val)
						}
					}
					pe := expr.NewPartialEvaluator(asn)
					for ci, c := range g.Constraints() {
						known, val := ts.root(ci)
						want := pe.Eval(c)
						if known != want.Known || (known && val != want.Val) {
							t.Errorf("worker %d partial: constraint %d tape=(%v,%d) partial=(%v,%d) for %s",
								worker, ci, known, val, want.Known, want.Val, c)
						}
					}
					// Probe differential: the non-committing probe the
					// unary filter uses must agree exactly with the
					// assign/evaluate/retract cycle it replaced.
					for ci := range g.Constraints() {
						for vi, v := range tp.vars {
							if _, ok := asn[v]; ok {
								continue
							}
							val := (seed >> uint(5*vi+7)) & 0xff
							pk, pv := ts.probe(ci, int32(vi), val)
							ts.assign(int32(vi), val)
							k, rv := ts.root(ci)
							ts.unassign(int32(vi))
							if pk != k || (k && pv != rv) {
								t.Errorf("worker %d probe: constraint %d var %d=%d probe=(%v,%d) committed=(%v,%d)",
									worker, ci, vi, val, pk, pv, k, rv)
							}
						}
					}
					// Complete the assignment: tape must agree with Eval.
					for vi, v := range tp.vars {
						if _, ok := asn[v]; !ok {
							val := (seed >> uint(4*vi+3)) & 0xff
							asn[v] = val
							ts.assign(int32(vi), val)
						}
					}
					for ci, c := range g.Constraints() {
						known, val := ts.root(ci)
						if !known {
							t.Fatalf("worker %d: fully assigned constraint %d unknown", worker, ci)
						}
						if want := expr.Eval(c, asn); val != want {
							t.Errorf("worker %d full: constraint %d tape=%d eval=%d for %s",
								worker, ci, val, want, c)
						}
					}
					// Retract half the variables: must match a fresh
					// partial evaluation of the remainder.
					for vi, v := range tp.vars {
						if vi%2 == 0 {
							delete(asn, v)
							ts.unassign(int32(vi))
						}
					}
					pe2 := expr.NewPartialEvaluator(asn)
					for ci, c := range g.Constraints() {
						known, val := ts.root(ci)
						want := pe2.Eval(c)
						if known != want.Known || (known && val != want.Val) {
							t.Errorf("worker %d retract: constraint %d tape=(%v,%d) partial=(%v,%d) for %s",
								worker, ci, known, val, want.Known, want.Val, c)
						}
					}
				}(worker)
			}
			wg.Wait()
		}
	})
}
