package solver

import (
	"math/bits"
	"sort"

	"overify/internal/expr"
	"overify/internal/ir"
)

// tape is a group compiled for the backtracking search: every DAG node
// reachable from the group's constraints becomes one slot of a flat
// topo-ordered program, evaluated into a scratch value array — no
// recursion, no map[*Expr] memo, no per-node generation checks. Each
// variable carries a watch list (the topo-ordered slots depending on
// it), so assigning or retracting one variable re-evaluates exactly the
// sub-tape that can change.
//
// A tape's slices alias its tapeScratch and are valid only until the
// scratch compiles the next group.
type tape struct {
	ops   []tapeOp
	roots []int32     // per constraint: slot holding its value
	vars  []*expr.Var // group variables sorted by name (search order)
	watch [][]int32   // per var index: dependent slots, topo-ordered
	// cmasks is the per-constraint variable bitmask (var-index words),
	// used for the only-unassigned-variable test in unary filtering.
	cmasks [][]uint64
	// csub is the per-constraint slot bitmask (slot-index words): the
	// sub-DAG reachable from the constraint's root. Unary-filter probes
	// re-evaluate only watch[vi] ∩ csub[ci] — the slots of the one
	// constraint being filtered — mirroring what the pre-tape evaluator
	// paid per probe (one constraint tree, not the variable's whole
	// watch list).
	csub   [][]uint64
	nwords int
}

type tapeOp struct {
	kind       expr.Kind
	op         ir.Op
	bits       int32
	a0, a1, a2 int32
	vi         int32    // KVar: var index
	val        uint64   // KConst
	table      []uint64 // KRead
}

// tapeScratch holds the growable buffers one solver reuses across all
// its searches, so compiling a group allocates only when a group
// outgrows everything compiled before it. A Solver owns one (solvers
// are single-goroutine; one search runs at a time).
type tapeScratch struct {
	t            tape
	slotOf       map[*expr.Expr]int32
	deps         []uint64 // per-slot var masks, nwords stride
	counts       []int32
	watchBacking []int32
	cmaskBacking []uint64
	csubBacking  []uint64

	// tapeState buffers.
	known    []bool
	val      []uint64
	assigned []bool
	avals    []uint64
	amask    []uint64
	ovKnown  []bool
	ovVal    []uint64
	ovStamp  []uint64
}

// compileGroup flattens the group's constraint DAG into a tape using
// fresh buffers (tests and the fuzz target use this entry point; the
// solver goes through its scratch).
func compileGroup(g *Group) *tape {
	return (&tapeScratch{}).compile(g)
}

// compile flattens the group's constraint DAG into the scratch's tape.
func (sc *tapeScratch) compile(g *Group) *tape {
	t := &sc.t
	t.vars = append(t.vars[:0], g.vs.Vars()...)
	vars := t.vars
	sort.Slice(vars, func(i, j int) bool { return vars[i].Name < vars[j].Name })
	// Var index by linear scan: groups have at most a handful of
	// variables, so this beats a map and allocates nothing.
	varIdx := func(v *expr.Var) int32 {
		for i, w := range vars {
			if w == v {
				return int32(i)
			}
		}
		panic("solver: variable missing from group set")
	}
	nwords := (len(vars) + 63) / 64
	t.nwords = nwords
	t.ops = t.ops[:0]
	t.roots = t.roots[:0]
	if sc.slotOf == nil {
		sc.slotOf = make(map[*expr.Expr]int32, 64)
	} else {
		clear(sc.slotOf)
	}
	slotOf := sc.slotOf
	sc.deps = sc.deps[:0]

	var emit func(e *expr.Expr) int32
	emit = func(e *expr.Expr) int32 {
		if s, ok := slotOf[e]; ok {
			return s
		}
		op := tapeOp{kind: e.Kind, op: e.Op, bits: int32(e.Bits), val: e.Val, table: e.Table, a0: -1, a1: -1, a2: -1}
		var d [1]uint64
		dw := d[:]
		if nwords > 1 {
			dw = make([]uint64, nwords)
		}
		switch e.Kind {
		case expr.KVar:
			vi := varIdx(e.V)
			op.vi = vi
			dw[vi/64] |= 1 << uint(vi%64)
		case expr.KConst:
		default:
			args := [3]int32{-1, -1, -1}
			for i, a := range e.Args {
				s := emit(a)
				args[i] = s
				for w := 0; w < nwords; w++ {
					dw[w] |= sc.deps[int(s)*nwords+w]
				}
			}
			op.a0, op.a1, op.a2 = args[0], args[1], args[2]
		}
		slot := int32(len(t.ops))
		t.ops = append(t.ops, op)
		sc.deps = append(sc.deps, dw...)
		slotOf[e] = slot
		return slot
	}
	for _, c := range g.cs {
		t.roots = append(t.roots, emit(c))
	}

	// Watch lists carved out of one exact-size backing array: count
	// per-var dependents, then fill in emission (= topo) order.
	if cap(sc.counts) < len(vars) {
		sc.counts = make([]int32, len(vars))
	}
	counts := sc.counts[:len(vars)]
	for i := range counts {
		counts[i] = 0
	}
	total := int32(0)
	for s := 0; s < len(t.ops); s++ {
		for vi := range vars {
			if sc.deps[s*nwords+vi/64]&(1<<uint(vi%64)) != 0 {
				counts[vi]++
				total++
			}
		}
	}
	if cap(sc.watchBacking) < int(total) {
		sc.watchBacking = make([]int32, total)
	}
	backing := sc.watchBacking[:total]
	if cap(t.watch) < len(vars) {
		t.watch = make([][]int32, len(vars))
	}
	t.watch = t.watch[:len(vars)]
	off := int32(0)
	for vi, n := range counts {
		t.watch[vi] = backing[off : off : off+n]
		off += n
	}
	for s := 0; s < len(t.ops); s++ {
		for vi := range vars {
			if sc.deps[s*nwords+vi/64]&(1<<uint(vi%64)) != 0 {
				t.watch[vi] = append(t.watch[vi], int32(s))
			}
		}
	}

	if cap(sc.cmaskBacking) < len(g.cs)*nwords {
		sc.cmaskBacking = make([]uint64, len(g.cs)*nwords)
	}
	cmaskBacking := sc.cmaskBacking[:len(g.cs)*nwords]
	for i := range cmaskBacking {
		cmaskBacking[i] = 0
	}
	if cap(t.cmasks) < len(g.cs) {
		t.cmasks = make([][]uint64, len(g.cs))
	}
	t.cmasks = t.cmasks[:len(g.cs)]
	for i, c := range g.cs {
		mask := cmaskBacking[i*nwords : (i+1)*nwords]
		for _, v := range c.VarSet().Vars() {
			vi := varIdx(v)
			mask[vi/64] |= 1 << uint(vi%64)
		}
		t.cmasks[i] = mask
	}

	// Constraint sub-DAG bitsets: mark each root, then sweep downward —
	// operands always sit at smaller slot indices, so one descending pass
	// closes the reachable set.
	swords := (len(t.ops) + 63) / 64
	if cap(sc.csubBacking) < len(g.cs)*swords {
		sc.csubBacking = make([]uint64, len(g.cs)*swords)
	}
	csubBacking := sc.csubBacking[:len(g.cs)*swords]
	for i := range csubBacking {
		csubBacking[i] = 0
	}
	if cap(t.csub) < len(g.cs) {
		t.csub = make([][]uint64, len(g.cs))
	}
	t.csub = t.csub[:len(g.cs)]
	for ci := range g.cs {
		sub := csubBacking[ci*swords : (ci+1)*swords]
		r := t.roots[ci]
		sub[r>>6] |= 1 << uint(r&63)
		for s := r; s >= 0; s-- {
			if sub[s>>6]&(1<<uint(s&63)) == 0 {
				continue
			}
			op := &t.ops[s]
			if op.a0 >= 0 {
				sub[op.a0>>6] |= 1 << uint(op.a0&63)
			}
			if op.a1 >= 0 {
				sub[op.a1>>6] |= 1 << uint(op.a1&63)
			}
			if op.a2 >= 0 {
				sub[op.a2>>6] |= 1 << uint(op.a2&63)
			}
		}
		t.csub[ci] = sub
	}
	return t
}

// tapeState is the mutable evaluation state over a tape: three-valued
// slot results (known flag + value) plus the current assignment. Its
// semantics match expr.PartialEvaluator exactly (including the known-
// side short circuits), which the differential fuzz target asserts.
type tapeState struct {
	t        *tape
	known    []bool
	val      []uint64
	assigned []bool
	avals    []uint64
	amask    []uint64 // assigned-variable bitmask (var-index words)
	work     int64    // slot evaluations (a cost statistic, not the budget)

	// Probe overlay: epoch-stamped shadow results for what-if queries
	// (probe) that never touch the committed known/val arrays, so a
	// candidate value can be tested against one constraint without the
	// assign/recompute-everything/unassign/recompute-everything round
	// trip. A slot's overlay entry is valid only when its stamp equals
	// the current epoch.
	ovKnown []bool
	ovVal   []uint64
	ovStamp []uint64
	epoch   uint64
}

// newTapeState builds evaluation state with fresh buffers (tests and
// the fuzz target; the solver reuses its scratch via tapeStateFrom).
func newTapeState(t *tape) *tapeState {
	return tapeStateFrom(&tapeScratch{}, t)
}

// tapeStateFrom builds evaluation state over the scratch's buffers and
// runs the initial full evaluation pass.
func tapeStateFrom(sc *tapeScratch, t *tape) *tapeState {
	grow := func(b []bool, n int) []bool {
		if cap(b) < n {
			return make([]bool, n)
		}
		b = b[:n]
		for i := range b {
			b[i] = false
		}
		return b
	}
	growU := func(u []uint64, n int) []uint64 {
		if cap(u) < n {
			return make([]uint64, n)
		}
		u = u[:n]
		for i := range u {
			u[i] = 0
		}
		return u
	}
	sc.known = grow(sc.known, len(t.ops))
	sc.val = growU(sc.val, len(t.ops))
	sc.assigned = grow(sc.assigned, len(t.vars))
	sc.avals = growU(sc.avals, len(t.vars))
	sc.amask = growU(sc.amask, t.nwords)
	sc.ovKnown = grow(sc.ovKnown, len(t.ops))
	sc.ovVal = growU(sc.ovVal, len(t.ops))
	sc.ovStamp = growU(sc.ovStamp, len(t.ops))
	ts := &tapeState{
		t:        t,
		known:    sc.known,
		val:      sc.val,
		assigned: sc.assigned,
		avals:    sc.avals,
		amask:    sc.amask,
		ovKnown:  sc.ovKnown,
		ovVal:    sc.ovVal,
		ovStamp:  sc.ovStamp,
	}
	for s := range t.ops {
		ts.recompute(int32(s))
	}
	return ts
}

// assign binds var vi and re-evaluates its watched sub-tape.
func (ts *tapeState) assign(vi int32, v uint64) {
	ts.assigned[vi] = true
	ts.avals[vi] = v
	ts.amask[vi/64] |= 1 << uint(vi%64)
	for _, s := range ts.t.watch[vi] {
		ts.recompute(s)
	}
}

// unassign retracts var vi and re-evaluates its watched sub-tape.
func (ts *tapeState) unassign(vi int32) {
	ts.assigned[vi] = false
	ts.amask[vi/64] &^= 1 << uint(vi%64)
	for _, s := range ts.t.watch[vi] {
		ts.recompute(s)
	}
}

// root returns constraint ci's three-valued result.
func (ts *tapeState) root(ci int) (known bool, val uint64) {
	s := ts.t.roots[ci]
	return ts.known[s], ts.val[s]
}

// unassignedIn counts the constraint's variables not currently
// assigned, and whether vi is among them.
func (ts *tapeState) unassignedIn(ci int, vi int32) (n int, hasVi bool) {
	mask := ts.t.cmasks[ci]
	for w, b := range mask {
		un := b &^ ts.amask[w]
		n += bits.OnesCount64(un)
		if int32(w) == vi/64 && un&(1<<uint(vi%64)) != 0 {
			hasVi = true
		}
	}
	return n, hasVi
}

// recompute re-evaluates one slot from its operands' current results.
func (ts *tapeState) recompute(s int32) {
	ts.work++
	op := &ts.t.ops[s]
	var known bool
	var val uint64
	switch op.kind {
	case expr.KConst:
		known, val = true, op.val
	case expr.KVar:
		if ts.assigned[op.vi] {
			known, val = true, ts.avals[op.vi]
		}
	case expr.KBin:
		ak, av := ts.known[op.a0], ts.val[op.a0]
		bk, bv := ts.known[op.a1], ts.val[op.a1]
		switch {
		case ak && bk:
			r, ok := ir.EvalBin(op.op, int(op.bits), av, bv)
			if !ok {
				r = 0
			}
			known, val = true, r
		default:
			// Known-side short circuits, mirroring PartialEvaluator.
			switch op.op {
			case ir.OpAnd:
				if (ak && av == 0) || (bk && bv == 0) {
					known, val = true, 0
				}
			case ir.OpOr:
				ones := ir.Mask(int(op.bits), ^uint64(0))
				if (ak && av == ones) || (bk && bv == ones) {
					known, val = true, ones
				}
			case ir.OpMul:
				if (ak && av == 0) || (bk && bv == 0) {
					known, val = true, 0
				}
			}
		}
	case expr.KCmp:
		if ts.known[op.a0] && ts.known[op.a1] {
			known = true
			if ir.EvalCmp(op.op, int(ts.t.ops[op.a0].bits), ts.val[op.a0], ts.val[op.a1]) {
				val = 1
			}
		}
	case expr.KSelect:
		ck, cv := ts.known[op.a0], ts.val[op.a0]
		if ck {
			if cv != 0 {
				known, val = ts.known[op.a1], ts.val[op.a1]
			} else {
				known, val = ts.known[op.a2], ts.val[op.a2]
			}
		} else if ts.known[op.a1] && ts.known[op.a2] && ts.val[op.a1] == ts.val[op.a2] {
			known, val = true, ts.val[op.a1]
		}
	case expr.KCast:
		if ts.known[op.a0] {
			known = true
			val = ir.EvalCast(op.op, int(ts.t.ops[op.a0].bits), int(op.bits), ts.val[op.a0])
		}
	case expr.KRead:
		if ts.known[op.a0] {
			known = true
			if idx := ts.val[op.a0]; idx < uint64(len(op.table)) {
				val = op.table[idx]
			}
		}
	}
	if known {
		val = ir.Mask(int(op.bits), val)
	}
	ts.known[s] = known
	ts.val[s] = val
}

// probe answers "what would constraint ci evaluate to if unassigned var
// vi held val?" without committing the assignment. Only the slots of
// ci's sub-DAG that depend on vi (watch[vi] ∩ csub[ci], in topo order)
// are re-evaluated, into the overlay; everything else reads its
// committed result. Equivalent to assign(vi, val); root(ci);
// unassign(vi), at the cost of one constraint instead of the variable's
// whole watch list twice — the unary filter runs 256 probes per
// (constraint, variable) pair, so this is the search's hot path.
func (ts *tapeState) probe(ci int, vi int32, val uint64) (known bool, r uint64) {
	ts.epoch++
	sub := ts.t.csub[ci]
	for _, s := range ts.t.watch[vi] {
		if sub[s>>6]&(1<<uint(s&63)) == 0 {
			continue
		}
		ts.recomputeOv(s, vi, val)
	}
	root := ts.t.roots[ci]
	if ts.ovStamp[root] == ts.epoch {
		return ts.ovKnown[root], ts.ovVal[root]
	}
	return ts.known[root], ts.val[root]
}

// recomputeOv is recompute into the overlay: operands read their
// overlay result when stamped this epoch (they depend on the probed
// variable and were just re-evaluated — watch lists are topo-ordered)
// and their committed result otherwise, and the probed variable's slot
// evaluates to the probe value. The semantics switch must mirror
// recompute exactly; the differential fuzz target asserts it.
func (ts *tapeState) recomputeOv(s, pvi int32, pval uint64) {
	ts.work++
	op := &ts.t.ops[s]
	get := func(a int32) (bool, uint64) {
		if ts.ovStamp[a] == ts.epoch {
			return ts.ovKnown[a], ts.ovVal[a]
		}
		return ts.known[a], ts.val[a]
	}
	var known bool
	var val uint64
	switch op.kind {
	case expr.KConst:
		known, val = true, op.val
	case expr.KVar:
		if op.vi == pvi {
			known, val = true, pval
		} else if ts.assigned[op.vi] {
			known, val = true, ts.avals[op.vi]
		}
	case expr.KBin:
		ak, av := get(op.a0)
		bk, bv := get(op.a1)
		switch {
		case ak && bk:
			r, ok := ir.EvalBin(op.op, int(op.bits), av, bv)
			if !ok {
				r = 0
			}
			known, val = true, r
		default:
			switch op.op {
			case ir.OpAnd:
				if (ak && av == 0) || (bk && bv == 0) {
					known, val = true, 0
				}
			case ir.OpOr:
				ones := ir.Mask(int(op.bits), ^uint64(0))
				if (ak && av == ones) || (bk && bv == ones) {
					known, val = true, ones
				}
			case ir.OpMul:
				if (ak && av == 0) || (bk && bv == 0) {
					known, val = true, 0
				}
			}
		}
	case expr.KCmp:
		ak, av := get(op.a0)
		bk, bv := get(op.a1)
		if ak && bk {
			known = true
			if ir.EvalCmp(op.op, int(ts.t.ops[op.a0].bits), av, bv) {
				val = 1
			}
		}
	case expr.KSelect:
		ck, cv := get(op.a0)
		tk, tv := get(op.a1)
		fk, fv := get(op.a2)
		if ck {
			if cv != 0 {
				known, val = tk, tv
			} else {
				known, val = fk, fv
			}
		} else if tk && fk && tv == fv {
			known, val = true, tv
		}
	case expr.KCast:
		if ak, av := get(op.a0); ak {
			known = true
			val = ir.EvalCast(op.op, int(ts.t.ops[op.a0].bits), int(op.bits), av)
		}
	case expr.KRead:
		if ak, av := get(op.a0); ak {
			known = true
			if av < uint64(len(op.table)) {
				val = op.table[av]
			}
		}
	}
	if known {
		val = ir.Mask(int(op.bits), val)
	}
	ts.ovKnown[s] = known
	ts.ovVal[s] = val
	ts.ovStamp[s] = ts.epoch
}
