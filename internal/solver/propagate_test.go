package solver

import (
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

// lastSlashChain builds the basename "last slash index" expression over
// three byte variables: ite(v2==47, 2, ite(v1==47, 1, ite(v0==47, 0,
// -1))) as an i32 — the shape whose unsat groups blew the solver budget
// under plain enumeration (see propagate.go).
func lastSlashChain(b *expr.Builder, vs []*expr.Var) *expr.Expr {
	ls := b.Const(32, 0xFFFFFFFF)
	for i, v := range vs {
		cond := b.Cmp(ir.OpEq, b.Var(v), b.Const(8, 47))
		ls = b.Select(cond, b.Const(32, uint64(i)), ls)
	}
	return ls
}

// uge4 builds uge(sext(e to i64), 4), the "index past the buffer"
// bounds test basename's loop guards compile to.
func uge4(b *expr.Builder, e *expr.Expr) *expr.Expr {
	return b.Cmp(ir.OpUGe, b.Cast(ir.OpSExt, e, 64), b.Const(64, 4))
}

// TestPropagateUnsatIteChain pins the pathological basename group to
// unsat, decided by value-set propagation alone. The two constraints
// force ls = 2 and ls ≤ 1 through *syntactically different* sub-DAGs
// (add(ls,2) vs add(add(ls,1),1)), so refuting them requires the
// cross-constraint demand sharing on the hash-consed ls slot — exactly
// what plain enumeration needed ~10^8 assignments for.
func TestPropagateUnsatIteChain(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(3)
	ls := lastSlashChain(b, vs)
	cs := []*expr.Expr{
		// ls+2 >= 4, i.e. ls = 2.
		uge4(b, b.Bin(ir.OpAdd, ls, b.Const(32, 2))),
		// (ls+1)+1 < 4, i.e. ls <= 1.
		b.Bin(ir.OpXor, uge4(b, b.Bin(ir.OpAdd, b.Bin(ir.OpAdd, ls, b.Const(32, 1)), b.Const(32, 1))), b.Const(1, 1)),
	}
	s := New(Options{})
	got, _, err := s.Sat(cs)
	if err != nil {
		t.Fatalf("Sat: %v", err)
	}
	if got {
		t.Fatal("contradictory ls constraints reported sat")
	}
	if s.Stats.Nodes != 0 {
		t.Errorf("unsat proof explored %d search nodes, want 0 (propagation must close it)", s.Stats.Nodes)
	}
}

// TestPropagateCollapsesDomain: a satisfiable query of the same shape
// whose only models have v0 = '/'. Demand propagation must collapse
// v0's domain before the search runs, or the search visits tens of
// millions of assignments finding the needle.
func TestPropagateCollapsesDomain(t *testing.T) {
	b := expr.NewBuilder()
	vs := vars(3)
	ls := lastSlashChain(b, vs)
	cs := []*expr.Expr{
		// Every byte non-zero.
		b.Cmp(ir.OpNe, b.Var(vs[0]), b.Const(8, 0)),
		b.Cmp(ir.OpNe, b.Var(vs[1]), b.Const(8, 0)),
		b.Cmp(ir.OpNe, b.Var(vs[2]), b.Const(8, 0)),
		// ls+3 < 4 → ls ∈ {-1, 0}.
		b.Bin(ir.OpXor, uge4(b, b.Bin(ir.OpAdd, ls, b.Const(32, 3))), b.Const(1, 1)),
		// buf[ls+3] == 0 with buf = (v0,v1,v2,0…): rules out ls = -1
		// (buf[2] = v2 ≠ 0), leaving ls = 0, i.e. v0 = '/'.
		b.Bin(ir.OpXor,
			b.Cmp(ir.OpNe, bufAt(b, vs, b.Bin(ir.OpAdd, ls, b.Const(32, 3))), b.Const(8, 0)),
			b.Const(1, 1)),
	}
	s := New(Options{})
	got, model, err := s.Sat(cs)
	if err != nil {
		t.Fatalf("Sat: %v", err)
	}
	if !got {
		t.Fatal("satisfiable ls query reported unsat")
	}
	if model[vs[0]] != 47 {
		t.Errorf("model v0 = %d, want 47", model[vs[0]])
	}
	if s.Stats.Assignments > 10_000 {
		t.Errorf("search tried %d assignments, want < 10000 (propagation must prune first)", s.Stats.Assignments)
	}
}

// bufAt builds ite(sext(idx)==0, v0, ite(sext(idx)==1, v1,
// ite(sext(idx)==2, v2, 0))) — basename's symbolic buffer load.
func bufAt(b *expr.Builder, vs []*expr.Var, idx *expr.Expr) *expr.Expr {
	idx64 := b.Cast(ir.OpSExt, idx, 64)
	out := b.Const(8, 0)
	for i := len(vs) - 1; i >= 0; i-- {
		cond := b.Cmp(ir.OpEq, idx64, b.Const(64, uint64(i)))
		out = b.Select(cond, b.Var(vs[i]), out)
	}
	return out
}

// FuzzSearchVsBruteForce is the ground-truth oracle for the whole
// decision procedure — propagation plus backtracking search: on random
// two-variable constraint DAGs the solver's verdict must match
// exhaustive enumeration of all 65536 assignments. This is the guard
// against propagation over-pruning (wrong unsat) that the conformance
// suites cannot provide, since those only compare the solver with
// itself across schedules.
func FuzzSearchVsBruteForce(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{6, 2, 3, 1, 4, 4, 2, 9, 3, 0, 5, 5})
	f.Add([]byte{4, 4, 3, 3, 2, 2, 3, 5, 4, 0})
	f.Add([]byte{2, 8, 3, 4, 0, 1, 2, 0, 3, 2, 4, 7, 5, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := expr.NewBuilder()
		vs := vars(2)
		cs := buildFuzzDAG(b, vs, data)
		if len(cs) == 0 {
			return
		}
		s := New(Options{})
		got, model, err := s.Sat(cs)
		if err != nil {
			return // budget exhaustion makes no verdict claim
		}
		if got && !satisfies(cs, model) {
			t.Fatalf("model %v does not satisfy query", model)
		}
		want := false
		asn := make(map[*expr.Var]uint64, 2)
	brute:
		for a := uint64(0); a < 256; a++ {
			for c := uint64(0); c < 256; c++ {
				asn[vs[0]], asn[vs[1]] = a, c
				if satisfies(cs, asn) {
					want = true
					break brute
				}
			}
		}
		if got != want {
			t.Fatalf("solver says sat=%v, brute force says %v for %v", got, want, cs)
		}
	})
}
