package solver

import (
	"math/rand"
	"testing"

	"overify/internal/expr"
	"overify/internal/ir"
)

func vars(n int) []*expr.Var {
	out := make([]*expr.Var, n)
	for i := range out {
		out[i] = &expr.Var{Name: string(rune('a' + i)), Bits: 8, Idx: i}
	}
	return out
}

func TestSimpleSat(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(1)
	x := b.Var(v[0])
	s := New(Options{})
	// x == 42
	sat, model, err := s.Sat([]*expr.Expr{b.Cmp(ir.OpEq, x, b.Const(8, 42))})
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if model[v[0]] != 42 {
		t.Errorf("model = %d, want 42", model[v[0]])
	}
}

func TestSimpleUnsat(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(1)
	x := b.Var(v[0])
	s := New(Options{})
	sat, _, err := s.Sat([]*expr.Expr{
		b.Cmp(ir.OpEq, x, b.Const(8, 1)),
		b.Cmp(ir.OpEq, x, b.Const(8, 2)),
	})
	if err != nil || sat {
		t.Fatalf("want unsat, got sat=%v err=%v", sat, err)
	}
}

func TestMultiVar(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(2)
	x := b.Cast(ir.OpZExt, b.Var(v[0]), 32)
	y := b.Cast(ir.OpZExt, b.Var(v[1]), 32)
	s := New(Options{})
	// x + y == 300 && x < 100  =>  y in (200, 300).
	sat, model, err := s.Sat([]*expr.Expr{
		b.Cmp(ir.OpEq, b.Bin(ir.OpAdd, x, y), b.Const(32, 300)),
		b.Cmp(ir.OpULt, x, b.Const(32, 100)),
	})
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if model[v[0]]+model[v[1]] != 300 || model[v[0]] >= 100 {
		t.Errorf("bad model: %v", model)
	}
}

func TestMultiVarUnsat(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(2)
	x := b.Cast(ir.OpZExt, b.Var(v[0]), 32)
	y := b.Cast(ir.OpZExt, b.Var(v[1]), 32)
	s := New(Options{})
	// x + y == 600 is impossible for two bytes (max 510).
	sat, _, err := s.Sat([]*expr.Expr{
		b.Cmp(ir.OpEq, b.Bin(ir.OpAdd, x, y), b.Const(32, 600)),
	})
	if err != nil || sat {
		t.Fatalf("want unsat, got sat=%v err=%v", sat, err)
	}
}

func TestIndependenceGroups(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(4)
	s := New(Options{})
	// Two independent pairs; both satisfiable.
	cs := []*expr.Expr{
		b.Cmp(ir.OpEq, b.Var(v[0]), b.Var(v[1])),
		b.Cmp(ir.OpNe, b.Var(v[2]), b.Var(v[3])),
	}
	sat, model, err := s.Sat(cs)
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if model[v[0]] != model[v[1]] || model[v[2]] == model[v[3]] {
		t.Errorf("bad model %v", model)
	}
	groups := independentGroups(cs)
	if len(groups) != 2 {
		t.Errorf("got %d groups, want 2", len(groups))
	}
}

func TestQueryCache(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(1)
	x := b.Var(v[0])
	s := New(Options{})
	q := []*expr.Expr{b.Cmp(ir.OpUGt, x, b.Const(8, 10))}
	if _, _, err := s.Sat(q); err != nil {
		t.Fatal(err)
	}
	// Model reuse or cache must kick in on the repeat.
	before := s.Stats.CacheHits + s.Stats.ModelReuseHits
	if _, _, err := s.Sat(q); err != nil {
		t.Fatal(err)
	}
	if s.Stats.CacheHits+s.Stats.ModelReuseHits <= before {
		t.Error("repeated query did not hit any cache")
	}
}

func TestTableReadConstraint(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(1)
	table := make([]uint64, 256)
	table['x'] = 1
	idx := b.Cast(ir.OpZExt, b.Var(v[0]), 64)
	read := b.Read(table, 8, idx)
	s := New(Options{})
	sat, model, err := s.Sat([]*expr.Expr{
		b.Cmp(ir.OpNe, read, b.Const(8, 0)),
	})
	if err != nil || !sat {
		t.Fatalf("sat=%v err=%v", sat, err)
	}
	if model[v[0]] != 'x' {
		t.Errorf("model = %q, want 'x'", model[v[0]])
	}
}

// TestRandomConsistency: for random constraint sets, (a) SAT answers
// come with models that actually satisfy the constraints, and (b) the
// solver agrees with brute force on 1- and 2-var problems.
func TestRandomConsistency(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 300; trial++ {
		b := expr.NewBuilder()
		v := vars(2)
		x := b.Cast(ir.OpZExt, b.Var(v[0]), 32)
		y := b.Cast(ir.OpZExt, b.Var(v[1]), 32)
		mk := func() *expr.Expr {
			c := uint64(r.Intn(300))
			ops := []ir.Op{ir.OpEq, ir.OpNe, ir.OpULt, ir.OpUGe}
			op := ops[r.Intn(len(ops))]
			switch r.Intn(3) {
			case 0:
				return b.Cmp(op, x, b.Const(32, c))
			case 1:
				return b.Cmp(op, y, b.Const(32, c))
			default:
				return b.Cmp(op, b.Bin(ir.OpAdd, x, y), b.Const(32, c))
			}
		}
		var cs []*expr.Expr
		for i := 0; i < 1+r.Intn(3); i++ {
			cs = append(cs, mk())
		}
		s := New(Options{})
		sat, model, err := s.Sat(cs)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Brute force ground truth.
		truth := false
		for a := 0; a < 256 && !truth; a++ {
			for bb := 0; bb < 256; bb++ {
				asn := map[*expr.Var]uint64{v[0]: uint64(a), v[1]: uint64(bb)}
				all := true
				for _, c := range cs {
					if expr.Eval(c, asn) == 0 {
						all = false
						break
					}
				}
				if all {
					truth = true
					break
				}
			}
		}
		if sat != truth {
			t.Fatalf("trial %d: solver=%v brute=%v for %v", trial, sat, truth, cs)
		}
		if sat {
			for _, c := range cs {
				if expr.Eval(c, model) == 0 {
					t.Fatalf("trial %d: model %v does not satisfy %s", trial, model, c)
				}
			}
		}
	}
}

func TestBudgetExhaustion(t *testing.T) {
	b := expr.NewBuilder()
	v := vars(8)
	// A constraint coupling 8 vars with a tiny budget must error, not
	// hang or return a wrong verdict.
	sum := b.Cast(ir.OpZExt, b.Var(v[0]), 32)
	for i := 1; i < 8; i++ {
		sum = b.Bin(ir.OpAdd, sum, b.Cast(ir.OpZExt, b.Var(v[i]), 32))
	}
	// sum*sum forces non-linear reasoning.
	q := b.Cmp(ir.OpEq, b.Bin(ir.OpMul, sum, sum), b.Const(32, 1_000_003))
	s := New(Options{MaxNodes: 4, MaxWork: 500})
	_, _, err := s.Sat([]*expr.Expr{q})
	if err == nil {
		t.Skip("solved within tiny budget (fine, but unexpected)")
	}
	if err != ErrBudget {
		t.Errorf("err = %v, want ErrBudget", err)
	}
	if s.Stats.Failures != 1 {
		t.Errorf("failures = %d", s.Stats.Failures)
	}
}
