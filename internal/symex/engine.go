package symex

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/solver"
)

// Options bound a symbolic-execution run.
type Options struct {
	MaxPaths  int64         // 0 = unlimited
	MaxInstrs int64         // 0 = default 100M
	MaxStates int           // live states cap; 0 = default 1M
	Timeout   time.Duration // 0 = none
	// MaxAssignments bounds total solver assignments tried across the
	// run (0 = unlimited), checked after every solver query. A serial
	// run stops at the same query on every machine — a deterministic
	// work budget where Timeout is a load-dependent one.
	MaxAssignments int64
	// Strategy selects the exploration order (see SearchKind). Every
	// strategy yields the same verdicts on an exhaustive run; they
	// differ in how fast they reach coverage — and so in t_verify when
	// a budget (MaxPaths, CoverTarget, Timeout) is in play.
	Strategy SearchKind
	// Seed fixes the random-path PRNGs (0 = a fixed default); same
	// seed, same serial exploration order.
	Seed int64
	// CoverTarget stops exploration once this many distinct basic
	// blocks have been executed (0 = off). This is the "time to
	// coverage" budget coverage-guided search optimizes for.
	CoverTarget int
	Solver      solver.Options
	// Workers is the number of exploration workers. 1 (or 0) explores
	// serially; -1 uses one worker per CPU. Workers share one expression
	// builder and one solver cache but hold private solvers and private
	// frontier shards (work-stealing keeps them busy).
	Workers int
	// Builder, when non-nil, is the expression builder this run interns
	// through instead of a fresh one. The verification daemon passes a
	// process-wide concurrent builder here so the hash-consed DAG stays
	// warm across requests — and so node ids, the solver cache's keys,
	// remain canonical across every run sharing Cache below. A shared
	// builder must be concurrent-safe (expr.NewConcurrentBuilder)
	// whenever it can be used by more than one goroutine.
	Builder *expr.Builder
	// Cache, when non-nil, is the solver query cache the run's workers
	// decide into, instead of a fresh per-run cache. Sharing it across
	// runs requires sharing Builder too: fingerprints are built from
	// builder-local node ids, so entries are only meaningful to runs on
	// the same builder.
	Cache *solver.Cache
	// Tapes, when non-nil, memoizes compiled constraint tapes by group
	// fingerprint across this run's workers (and, in the daemon, across
	// every run in a builder generation). Same sharing rule as Cache:
	// fingerprints are builder-local.
	Tapes *solver.TapeCache
	// Checks restricts which OpCheck kinds the run reports (the
	// per-property verify mode); the zero value keeps all of them.
	// Skipped checks neither report bugs nor constrain the path — the
	// path continues as if the check were absent, exactly matching a
	// program sliced for the same subset.
	Checks ir.CheckSet
}

// effectiveWorkers resolves the Workers option to a concrete count.
func (o Options) effectiveWorkers() int {
	switch {
	case o.Workers < 0:
		return runtime.NumCPU()
	case o.Workers == 0:
		return 1
	default:
		return o.Workers
	}
}

// BugKind classifies a found defect.
type BugKind int

// Bug kinds the engine detects natively (KLEE-style) plus explicit
// runtime-check failures.
const (
	BugDivByZero BugKind = iota
	BugNullDeref
	BugOutOfBounds
	BugCheckFailed
	BugAssertFailed
	BugUnreachable
	BugStoreConst
	BugPtrDomain
)

var bugNames = [...]string{
	"division by zero", "null dereference", "out-of-bounds access",
	"check failed", "assertion failed", "unreachable executed",
	"write to constant", "pointer domain error",
}

// String returns the bug class description.
func (k BugKind) String() string {
	if int(k) < len(bugNames) {
		return bugNames[k]
	}
	return "bug?"
}

// Bug is one defect found during exploration, with a concrete input that
// triggers it (the paper's "better error reports ... closer to their
// root cause").
type Bug struct {
	Kind  BugKind
	Msg   string
	Where string
	Input []byte // concrete symbolic-input bytes reproducing the bug
}

// Stats aggregates the engine's work; Table 1's t_verify, #instructions
// and #paths columns come from here.
type Stats struct {
	Paths          int64 // completed paths (returned from the entry fn)
	ErrorPaths     int64 // paths terminated by a bug
	TruncatedPaths int64 // paths killed by limits
	Forks          int64
	Instrs         int64 // instructions interpreted across all paths
	ChecksSkipped  int64 // OpChecks outside Options.Checks, passed over
	StatesExplored int64 // states whose execution began (initial + resumed forks)
	CoveredBlocks  int   // distinct basic blocks executed on some path
	MaxLiveStates  int
	Workers        int               // exploration workers used
	Strategy       string            // search strategy used
	SolverStats    solver.Stats      // summed over all workers
	SharedCache    solver.CacheStats // the cross-worker query cache
	Elapsed        time.Duration
	TimedOut       bool

	// Verdict-store counters, set by the re-verify driver (the engine
	// itself leaves them zero): VerdictCacheHits counts merged reports
	// served from the content-addressed store, SkippedFuncVerifies the
	// per-function explorations those hits avoided.
	VerdictCacheHits    int64
	SkippedFuncVerifies int64
}

// TotalPaths is completed + errored + truncated.
func (s *Stats) TotalPaths() int64 { return s.Paths + s.ErrorPaths + s.TruncatedPaths }

// Report is the result of one run.
type Report struct {
	Stats Stats
	Bugs  []Bug
}

// Engine symbolically executes one module. One Engine runs one
// exploration; the per-run shared pieces (expression builder, solver
// cache, counters) live here, while everything scheduling-dependent
// lives in per-worker state.
type Engine struct {
	Mod  *ir.Module
	B    *expr.Builder
	opts Options

	cache     *solver.Cache // shared across all workers' solvers
	cov       *coverage     // block-coverage map, fed by exec
	inputVars []*expr.Var   // ordered; used to concretize bug inputs
	deadline  time.Time

	// Split-phase residue: solver work and bugs accumulated by Split's
	// breadth-first prefix driver, merged into the final report by
	// RunStates (local continuation) or PartialReport (the distributed
	// coordinator, whose frontier runs in other processes). Split runs
	// single-threaded before any worker pool, so plain fields suffice.
	splitStats solver.Stats
	splitBugs  []Bug

	// Cross-worker counters. Paths counters are updated at path
	// granularity (cheap); instruction counts are batched per worker and
	// flushed every instrFlushStride instructions.
	nextState     atomic.Int64
	paths         atomic.Int64
	errorPaths    atomic.Int64
	truncated     atomic.Int64
	forks         atomic.Int64
	instrs        atomic.Int64
	assigns       atomic.Int64 // solver assignments flushed so far (MaxAssignments accounting)
	checksSkipped atomic.Int64
	explored      atomic.Int64 // states whose execution began
	timedOut      atomic.Bool
	stopped       atomic.Bool // a global limit fired; all workers bail out
}

// NewEngine prepares an engine over mod.
func NewEngine(mod *ir.Module, opts Options) *Engine {
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 100_000_000
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 1_000_000
	}
	// A serial run gets the unsynchronized builder: the per-expression
	// interning path is too hot to pay a concurrency tax for one worker.
	// An injected builder (daemon warm path) is taken as-is.
	b := opts.Builder
	if b == nil {
		b = expr.NewBuilder()
		if opts.effectiveWorkers() > 1 {
			b = expr.NewConcurrentBuilder()
		}
	}
	cache := opts.Cache
	if cache == nil {
		cache = solver.NewCache()
	}
	return &Engine{
		Mod:   mod,
		B:     b,
		cache: cache,
		cov:   newCoverage(),
		opts:  opts,
	}
}

// NewState builds the initial state with fresh global storage.
func (e *Engine) NewState() *State {
	st := &State{ID: 0, Globals: make(map[*ir.Global]*MemObject)}
	for _, g := range e.Mod.Globals {
		obj := &MemObject{Name: "@" + g.Name, Elem: g.Elem, Count: g.Count, ReadOnly: g.ReadOnly}
		obj.Cells = make([]SymVal, g.Count)
		bits := g.Elem.(ir.IntType).Bits
		for i := range obj.Cells {
			var v uint64
			if i < len(g.Init) {
				v = g.Init[i]
			}
			obj.Cells[i] = SymVal{E: e.B.Const(bits, v)}
		}
		st.Globals[g] = obj
	}
	return st
}

// SymbolicBuffer creates an i8 object of n symbolic bytes; when
// nulTerminated, one extra concrete NUL cell is appended (the paper's
// "up to N characters" convention: any byte may be NUL, and byte N
// certainly is).
func (e *Engine) SymbolicBuffer(name string, n int, nulTerminated bool) SymVal {
	count := n
	if nulTerminated {
		count++
	}
	obj := &MemObject{Name: name, Elem: ir.I8, Count: int64(count)}
	obj.Cells = make([]SymVal, count)
	for i := 0; i < n; i++ {
		v := &expr.Var{Name: fmt.Sprintf("%s[%d]", name, i), Bits: 8, Idx: len(e.inputVars)}
		node := e.B.Var(v)
		// Track the node's canonical *Var, not the candidate: on a
		// builder shared across runs the name may already be interned,
		// and solver models are keyed by the canonical pointer.
		e.inputVars = append(e.inputVars, node.V)
		obj.Cells[i] = SymVal{E: node}
	}
	if nulTerminated {
		obj.Cells[n] = SymVal{E: e.B.Const(8, 0)}
	}
	return SymVal{IsPtr: true, Obj: obj, Off: e.B.Const(64, 0)}
}

// SymbolicInt creates a fresh symbolic value of the given integer type,
// backed by an 8-bit input variable zero-extended as needed (the solver
// works over byte domains).
func (e *Engine) SymbolicInt(name string, t ir.IntType) SymVal {
	v := &expr.Var{Name: name, Bits: 8, Idx: len(e.inputVars)}
	x := e.B.Var(v)
	e.inputVars = append(e.inputVars, x.V)
	if t.Bits > 8 {
		return SymVal{E: e.B.Cast(ir.OpZExt, x, t.Bits)}
	}
	return SymVal{E: x}
}

// IntArg wraps a concrete integer argument.
func (e *Engine) IntArg(t ir.IntType, v uint64) SymVal {
	return SymVal{E: e.B.Const(t.Bits, v)}
}

// ConcreteBuffer creates an object holding concrete bytes.
func (e *Engine) ConcreteBuffer(name string, data []byte) SymVal {
	obj := &MemObject{Name: name, Elem: ir.I8, Count: int64(len(data))}
	obj.Cells = make([]SymVal, len(data))
	for i, c := range data {
		obj.Cells[i] = SymVal{E: e.B.Const(8, uint64(c))}
	}
	return SymVal{IsPtr: true, Obj: obj, Off: e.B.Const(64, 0)}
}

// Run explores fn(args) exhaustively from the given initial state (pass
// nil for a fresh one) and returns the report. With Workers > 1 the
// frontier is explored by a worker pool; the verdicts (bug set, path
// counts, instruction count) are independent of the interleaving as
// long as no budget limit fires mid-run.
func (e *Engine) Run(fnName string, args []SymVal, init *State) (*Report, error) {
	st, err := e.initialState(fnName, args, init)
	if err != nil {
		return nil, err
	}
	return e.RunStates([]*State{st}), nil
}

// initialState validates the entry function and builds the run's first
// state: args bound to params, control at the entry block.
func (e *Engine) initialState(fnName string, args []SymVal, init *State) (*State, error) {
	fn := e.Mod.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("symex: no function %q", fnName)
	}
	if fn.IsDeclaration() {
		return nil, fmt.Errorf("symex: %q has no body", fnName)
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("symex: %s takes %d args, got %d", fnName, len(fn.Params), len(args))
	}
	if init == nil {
		init = e.NewState()
	}
	frame := &Frame{Fn: fn, Block: fn.Entry(), Locals: make(map[ir.Value]SymVal)}
	for i, p := range fn.Params {
		frame.Locals[p] = args[i]
	}
	init.Frames = append(init.Frames, frame)
	return init, nil
}

// armDeadline starts the wall-clock budget on first use; Split and
// RunStates share one deadline however the run is phased.
func (e *Engine) armDeadline() {
	if e.opts.Timeout > 0 && e.deadline.IsZero() {
		e.deadline = time.Now().Add(e.opts.Timeout)
	}
}

// RunStates explores the given frontier states to completion with the
// configured worker pool and returns the report, including any
// split-phase work this engine accumulated earlier. It is Run's engine
// room, and the entry point a distributed worker process feeds decoded
// remote states into.
func (e *Engine) RunStates(states []*State) *Report {
	start := time.Now()
	e.armDeadline()

	n := e.opts.effectiveWorkers()
	strat := newStrategy(e.opts.Strategy, n, e.opts.Seed, e.cov)
	fr := newFrontier(n, strat, e.opts.MaxStates)
	fr.put(0, states)

	workers := make([]*worker, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		w := &worker{
			e:     e,
			id:    i,
			B:     e.B,
			fr:    fr,
			strat: strat,
			sol:   solver.NewWithCache(e.opts.Solver, e.cache),
		}
		if e.opts.Tapes != nil {
			w.sol.SetTapeCache(e.opts.Tapes)
		}
		if !e.deadline.IsZero() {
			w.sol.SetDeadline(e.deadline)
		}
		workers[i] = w
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run()
		}()
	}
	wg.Wait()
	// Collect truncation residue the workers did not fold in: states
	// still queued when the pool stopped (e.g. published after the
	// stopping worker drained).
	e.truncated.Add(fr.drain())

	stats := Stats{
		Paths:          e.paths.Load(),
		ErrorPaths:     e.errorPaths.Load(),
		TruncatedPaths: e.truncated.Load(),
		Forks:          e.forks.Load(),
		Instrs:         e.instrs.Load(),
		ChecksSkipped:  e.checksSkipped.Load(),
		StatesExplored: e.explored.Load(),
		CoveredBlocks:  int(e.cov.count()),
		MaxLiveStates:  fr.maxLive,
		Workers:        n,
		Strategy:       strat.Name(),
		SharedCache:    e.cache.Snapshot(),
		Elapsed:        time.Since(start),
		TimedOut:       e.timedOut.Load(),
	}
	stats.SolverStats.Add(e.splitStats)
	bugs := append([]Bug(nil), e.splitBugs...)
	for _, w := range workers {
		stats.SolverStats.Add(w.sol.Stats)
		bugs = append(bugs, w.bugs...)
	}
	return &Report{Stats: stats, Bugs: mergeBugs(bugs)}
}

// Split executes a bounded breadth-first prefix of fn(args)'s
// exploration and returns the pending frontier once it holds at least
// want states (or the program exhausts first, returning fewer). The
// distributed coordinator uses it to shard one verification across
// worker processes: the prefix's completed paths, bugs, and solver work
// stay in this engine (PartialReport), and every returned state can be
// shipped elsewhere (EncodeStates) — each branch decision still happens
// exactly once somewhere, which is what keeps the merged totals equal
// to a serial run's.
func (e *Engine) Split(fnName string, args []SymVal, init *State, want int) ([]*State, error) {
	st, err := e.initialState(fnName, args, init)
	if err != nil {
		return nil, err
	}
	e.armDeadline()
	w := &worker{
		e:     e,
		id:    0,
		B:     e.B,
		strat: newStrategy(e.opts.Strategy, 1, e.opts.Seed, e.cov),
		sol:   solver.NewWithCache(e.opts.Solver, e.cache),
	}
	if e.opts.Tapes != nil {
		w.sol.SetTapeCache(e.opts.Tapes)
	}
	if !e.deadline.IsZero() {
		w.sol.SetDeadline(e.deadline)
	}
	queue := []*State{st}
	for len(queue) > 0 && len(queue) < want {
		cur := queue[0]
		queue = queue[1:]
		e.explored.Add(1)
		stop, forked := w.step(cur)
		if stop {
			// A global limit fired during the prefix: everything still
			// queued is truncated, exactly as the worker pool would record.
			e.requestStop()
			e.truncated.Add(int64(len(queue)) + int64(len(forked)) + 1)
			queue = nil
			break
		}
		queue = append(queue, forked...)
		if len(forked) == 0 {
			if max := e.opts.MaxPaths; max > 0 && e.totalPaths() >= max {
				e.requestStop()
				e.truncated.Add(int64(len(queue)))
				queue = nil
				break
			}
		}
	}
	w.flushInstrs()
	e.splitStats.Add(w.sol.Stats)
	e.splitBugs = append(e.splitBugs, w.bugs...)
	return queue, nil
}

// PartialReport snapshots the work this engine has done so far — the
// split-phase prefix — without running a frontier. The distributed
// coordinator merges it with the worker processes' reports; the sum
// equals a serial run because every path is finished exactly once,
// either here or remotely.
func (e *Engine) PartialReport() *Report {
	stats := Stats{
		Paths:          e.paths.Load(),
		ErrorPaths:     e.errorPaths.Load(),
		TruncatedPaths: e.truncated.Load(),
		Forks:          e.forks.Load(),
		Instrs:         e.instrs.Load(),
		ChecksSkipped:  e.checksSkipped.Load(),
		StatesExplored: e.explored.Load(),
		CoveredBlocks:  int(e.cov.count()),
		Workers:        e.opts.effectiveWorkers(),
		Strategy:       e.opts.Strategy.String(),
		SolverStats:    e.splitStats,
		SharedCache:    e.cache.Snapshot(),
		TimedOut:       e.timedOut.Load(),
	}
	return &Report{Stats: stats, Bugs: mergeBugs(append([]Bug(nil), e.splitBugs...))}
}

// CoveredBlockNames returns the sorted "function/block" names of every
// covered block. Coverage is process-local state keyed by *ir.Block
// pointers, so distributed runs union these names across processes to
// recover the serial run's distinct-block count.
func (e *Engine) CoveredBlockNames() []string {
	var names []string
	e.cov.blocks.Range(func(k, _ any) bool {
		b := k.(*ir.Block)
		names = append(names, b.Fn.Name+"/"+b.Name)
		return true
	})
	sort.Strings(names)
	return names
}

// MergeReports combines the per-process reports of one sharded run:
// counters sum (each path, instruction and query happened exactly once
// in exactly one process), bug lists go through the same deterministic
// sorted/deduped merge a single process uses, and TimedOut is sticky.
// CoveredBlocks is summed naively — processes can cover the same block
// — so callers that track coverage across processes must overwrite it
// with the size of the CoveredBlockNames union.
func MergeReports(parts ...*Report) *Report {
	var out Report
	var bugs []Bug
	for _, r := range parts {
		if r == nil {
			continue
		}
		out.Stats.Paths += r.Stats.Paths
		out.Stats.ErrorPaths += r.Stats.ErrorPaths
		out.Stats.TruncatedPaths += r.Stats.TruncatedPaths
		out.Stats.Forks += r.Stats.Forks
		out.Stats.Instrs += r.Stats.Instrs
		out.Stats.ChecksSkipped += r.Stats.ChecksSkipped
		out.Stats.StatesExplored += r.Stats.StatesExplored
		out.Stats.CoveredBlocks += r.Stats.CoveredBlocks
		out.Stats.SolverStats.Add(r.Stats.SolverStats)
		if r.Stats.MaxLiveStates > out.Stats.MaxLiveStates {
			out.Stats.MaxLiveStates = r.Stats.MaxLiveStates
		}
		if r.Stats.Elapsed > out.Stats.Elapsed {
			out.Stats.Elapsed = r.Stats.Elapsed
		}
		out.Stats.Workers += r.Stats.Workers
		if out.Stats.Strategy == "" {
			out.Stats.Strategy = r.Stats.Strategy
		}
		out.Stats.TimedOut = out.Stats.TimedOut || r.Stats.TimedOut
		bugs = append(bugs, r.Bugs...)
	}
	out.Bugs = mergeBugs(bugs)
	return &out
}

// mergeBugs produces the deterministic, deduplicated bug list: sorted
// by (kind, message, location, input) and collapsed to one report per
// defect site, so the output is reproducible regardless of which worker
// found which bug first.
func mergeBugs(bugs []Bug) []Bug {
	sort.Slice(bugs, func(i, j int) bool {
		a, b := bugs[i], bugs[j]
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.Msg != b.Msg {
			return a.Msg < b.Msg
		}
		if a.Where != b.Where {
			return a.Where < b.Where
		}
		return bytes.Compare(a.Input, b.Input) < 0
	})
	out := bugs[:0]
	for _, b := range bugs {
		if len(out) > 0 {
			last := out[len(out)-1]
			if last.Kind == b.Kind && last.Msg == b.Msg {
				continue
			}
		}
		out = append(out, b)
	}
	return out
}

// totalPaths is the cross-worker running path total, used for the
// MaxPaths limit.
func (e *Engine) totalPaths() int64 {
	return e.paths.Load() + e.errorPaths.Load() + e.truncated.Load()
}

// requestStop asks every worker to bail out at its next limit check.
func (e *Engine) requestStop() { e.stopped.Store(true) }

// satResult is a solver verdict: yes, no, or budget-exhausted unknown.
type satResult int

// Solver verdicts.
const (
	satNo satResult = iota
	satYes
	satUnknown
)

// modelOrEmpty guards concretization against unknown-model results.
func modelOrEmpty(m map[*expr.Var]uint64) map[*expr.Var]uint64 {
	if m == nil {
		return map[*expr.Var]uint64{}
	}
	return m
}
