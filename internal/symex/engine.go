package symex

import (
	"fmt"
	"sort"
	"time"

	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/solver"
)

// SearchKind selects the exploration order.
type SearchKind int

// Exploration strategies. DFS keeps the solver's caches hot (children
// share their parent's constraint prefix); BFS finds shallow bugs first.
const (
	DFS SearchKind = iota
	BFS
)

// Options bound a symbolic-execution run.
type Options struct {
	MaxPaths  int64         // 0 = unlimited
	MaxInstrs int64         // 0 = default 500M
	MaxStates int           // live states cap; 0 = default 1M
	Timeout   time.Duration // 0 = none
	Search    SearchKind
	Solver    solver.Options
}

// BugKind classifies a found defect.
type BugKind int

// Bug kinds the engine detects natively (KLEE-style) plus explicit
// runtime-check failures.
const (
	BugDivByZero BugKind = iota
	BugNullDeref
	BugOutOfBounds
	BugCheckFailed
	BugAssertFailed
	BugUnreachable
	BugStoreConst
	BugPtrDomain
)

var bugNames = [...]string{
	"division by zero", "null dereference", "out-of-bounds access",
	"check failed", "assertion failed", "unreachable executed",
	"write to constant", "pointer domain error",
}

// String returns the bug class description.
func (k BugKind) String() string {
	if int(k) < len(bugNames) {
		return bugNames[k]
	}
	return "bug?"
}

// Bug is one defect found during exploration, with a concrete input that
// triggers it (the paper's "better error reports ... closer to their
// root cause").
type Bug struct {
	Kind  BugKind
	Msg   string
	Where string
	Input []byte // concrete symbolic-input bytes reproducing the bug
}

// Stats aggregates the engine's work; Table 1's t_verify, #instructions
// and #paths columns come from here.
type Stats struct {
	Paths          int64 // completed paths (returned from the entry fn)
	ErrorPaths     int64 // paths terminated by a bug
	TruncatedPaths int64 // paths killed by limits
	Forks          int64
	Instrs         int64 // instructions interpreted across all paths
	MaxLiveStates  int
	SolverStats    solver.Stats
	Elapsed        time.Duration
	TimedOut       bool
}

// TotalPaths is completed + errored + truncated.
func (s *Stats) TotalPaths() int64 { return s.Paths + s.ErrorPaths + s.TruncatedPaths }

// Report is the result of one run.
type Report struct {
	Stats Stats
	Bugs  []Bug
}

// Engine symbolically executes one module.
type Engine struct {
	Mod  *ir.Module
	B    *expr.Builder
	Sol  *solver.Solver
	opts Options

	inputVars []*expr.Var // ordered; used to concretize bug inputs
	nextState int64
	deadline  time.Time
	stats     Stats
	bugs      []Bug
}

// NewEngine prepares an engine over mod.
func NewEngine(mod *ir.Module, opts Options) *Engine {
	if opts.MaxInstrs == 0 {
		opts.MaxInstrs = 100_000_000
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 1_000_000
	}
	return &Engine{
		Mod:  mod,
		B:    expr.NewBuilder(),
		Sol:  solver.New(opts.Solver),
		opts: opts,
	}
}

// NewState builds the initial state with fresh global storage.
func (e *Engine) NewState() *State {
	st := &State{ID: 0, Globals: make(map[*ir.Global]*MemObject)}
	for _, g := range e.Mod.Globals {
		obj := &MemObject{Name: "@" + g.Name, Elem: g.Elem, Count: g.Count, ReadOnly: g.ReadOnly}
		obj.Cells = make([]SymVal, g.Count)
		bits := g.Elem.(ir.IntType).Bits
		for i := range obj.Cells {
			var v uint64
			if i < len(g.Init) {
				v = g.Init[i]
			}
			obj.Cells[i] = SymVal{E: e.B.Const(bits, v)}
		}
		st.Globals[g] = obj
	}
	return st
}

// SymbolicBuffer creates an i8 object of n symbolic bytes; when
// nulTerminated, one extra concrete NUL cell is appended (the paper's
// "up to N characters" convention: any byte may be NUL, and byte N
// certainly is).
func (e *Engine) SymbolicBuffer(name string, n int, nulTerminated bool) SymVal {
	count := n
	if nulTerminated {
		count++
	}
	obj := &MemObject{Name: name, Elem: ir.I8, Count: int64(count)}
	obj.Cells = make([]SymVal, count)
	for i := 0; i < n; i++ {
		v := &expr.Var{Name: fmt.Sprintf("%s[%d]", name, i), Bits: 8, Idx: len(e.inputVars)}
		e.inputVars = append(e.inputVars, v)
		obj.Cells[i] = SymVal{E: e.B.Var(v)}
	}
	if nulTerminated {
		obj.Cells[n] = SymVal{E: e.B.Const(8, 0)}
	}
	return SymVal{IsPtr: true, Obj: obj, Off: e.B.Const(64, 0)}
}

// SymbolicInt creates a fresh symbolic value of the given integer type,
// backed by an 8-bit input variable zero-extended as needed (the solver
// works over byte domains).
func (e *Engine) SymbolicInt(name string, t ir.IntType) SymVal {
	v := &expr.Var{Name: name, Bits: 8, Idx: len(e.inputVars)}
	e.inputVars = append(e.inputVars, v)
	x := e.B.Var(v)
	if t.Bits > 8 {
		return SymVal{E: e.B.Cast(ir.OpZExt, x, t.Bits)}
	}
	return SymVal{E: x}
}

// IntArg wraps a concrete integer argument.
func (e *Engine) IntArg(t ir.IntType, v uint64) SymVal {
	return SymVal{E: e.B.Const(t.Bits, v)}
}

// ConcreteBuffer creates an object holding concrete bytes.
func (e *Engine) ConcreteBuffer(name string, data []byte) SymVal {
	obj := &MemObject{Name: name, Elem: ir.I8, Count: int64(len(data))}
	obj.Cells = make([]SymVal, len(data))
	for i, c := range data {
		obj.Cells[i] = SymVal{E: e.B.Const(8, uint64(c))}
	}
	return SymVal{IsPtr: true, Obj: obj, Off: e.B.Const(64, 0)}
}

// Run explores fn(args) exhaustively from the given initial state (pass
// nil for a fresh one) and returns the report.
func (e *Engine) Run(fnName string, args []SymVal, init *State) (*Report, error) {
	fn := e.Mod.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("symex: no function %q", fnName)
	}
	if fn.IsDeclaration() {
		return nil, fmt.Errorf("symex: %q has no body", fnName)
	}
	if len(args) != len(fn.Params) {
		return nil, fmt.Errorf("symex: %s takes %d args, got %d", fnName, len(fn.Params), len(args))
	}
	if init == nil {
		init = e.NewState()
	}
	frame := &Frame{Fn: fn, Block: fn.Entry(), Locals: make(map[ir.Value]SymVal)}
	for i, p := range fn.Params {
		frame.Locals[p] = args[i]
	}
	init.Frames = append(init.Frames, frame)

	start := time.Now()
	if e.opts.Timeout > 0 {
		e.deadline = start.Add(e.opts.Timeout)
		e.Sol.SetDeadline(e.deadline)
	}
	worklist := []*State{init}
	for len(worklist) > 0 {
		if len(worklist) > e.stats.MaxLiveStates {
			e.stats.MaxLiveStates = len(worklist)
		}
		var st *State
		if e.opts.Search == BFS {
			st = worklist[0]
			worklist = worklist[1:]
		} else {
			st = worklist[len(worklist)-1]
			worklist = worklist[:len(worklist)-1]
		}
		stop, forked := e.step(st)
		if stop {
			// Limits hit: drain remaining work as truncated.
			e.stats.TruncatedPaths += int64(len(worklist)) + int64(len(forked)) + 1
			break
		}
		worklist = append(worklist, forked...)
		if len(worklist) > e.opts.MaxStates {
			over := len(worklist) - e.opts.MaxStates
			e.stats.TruncatedPaths += int64(over)
			worklist = worklist[over:]
		}
		if e.opts.MaxPaths > 0 && e.stats.TotalPaths() >= e.opts.MaxPaths {
			e.stats.TruncatedPaths += int64(len(worklist))
			break
		}
	}
	e.stats.Elapsed = time.Since(start)
	e.stats.SolverStats = e.Sol.Stats
	sort.Slice(e.bugs, func(i, j int) bool {
		if e.bugs[i].Kind != e.bugs[j].Kind {
			return e.bugs[i].Kind < e.bugs[j].Kind
		}
		return e.bugs[i].Msg < e.bugs[j].Msg
	})
	return &Report{Stats: e.stats, Bugs: e.bugs}, nil
}

// fork clones st for the other side of a branch.
func (e *Engine) fork(st *State) *State {
	e.nextState++
	e.stats.Forks++
	return st.clone(e.nextState)
}

// reportBug records a defect with a concretized input from the model.
func (e *Engine) reportBug(st *State, kind BugKind, msg string, model map[*expr.Var]uint64) {
	bug := Bug{Kind: kind, Msg: msg, Where: st.Where()}
	if model != nil {
		bug.Input = make([]byte, len(e.inputVars))
		for i, v := range e.inputVars {
			bug.Input[i] = byte(model[v])
		}
	}
	// Deduplicate by kind+message: one report per defect site.
	for _, b := range e.bugs {
		if b.Kind == bug.Kind && b.Msg == bug.Msg {
			return
		}
	}
	e.bugs = append(e.bugs, bug)
}

// satResult is a solver verdict: yes, no, or budget-exhausted unknown.
type satResult int

// Solver verdicts.
const (
	satNo satResult = iota
	satYes
	satUnknown
)

// sat asks the solver for pc + extra. Unknown (budget exhaustion) is
// mapped to "assume feasible", which keeps exploration sound; call
// sites that *report bugs* must use satTri and skip reporting on
// unknown.
func (e *Engine) sat(st *State, extra *expr.Expr) (bool, map[*expr.Var]uint64) {
	res, model := e.satTri(st, extra)
	return res != satNo, model
}

// modelOrEmpty guards concretization against unknown-model results.
func modelOrEmpty(m map[*expr.Var]uint64) map[*expr.Var]uint64 {
	if m == nil {
		return map[*expr.Var]uint64{}
	}
	return m
}

// satTri is the three-valued feasibility query.
func (e *Engine) satTri(st *State, extra *expr.Expr) (satResult, map[*expr.Var]uint64) {
	q := st.PC
	if extra != nil {
		q = append(append([]*expr.Expr(nil), st.PC...), extra)
	}
	ok, model, err := e.Sol.Sat(q)
	if err != nil {
		return satUnknown, nil
	}
	if ok {
		return satYes, model
	}
	return satNo, nil
}
