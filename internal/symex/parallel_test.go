package symex_test

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// verifyProg compiles a corpus program at the level and explores it
// with the given worker count.
func verifyProg(t *testing.T, p coreutils.Program, level pipeline.Level, n, workers int) *symex.Report {
	t.Helper()
	c, err := core.CompileProgram(p, level)
	if err != nil {
		t.Fatalf("%s at %s: %v", p.Name, level, err)
	}
	opts := core.VerifyOptions{InputBytes: n}
	opts.Engine.Workers = workers
	rep, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatalf("%s at %s: verify: %v", p.Name, level, err)
	}
	return rep
}

// bugKey is the deterministic identity of a bug report (the concrete
// Input may legitimately differ between runs: any model reproduces).
func bugKey(b symex.Bug) string { return fmt.Sprintf("%s|%s|%s", b.Kind, b.Msg, b.Where) }

func bugKeys(rep *symex.Report) []string {
	keys := make([]string, 0, len(rep.Bugs))
	for _, b := range rep.Bugs {
		keys = append(keys, bugKey(b))
	}
	sort.Strings(keys)
	return keys
}

// TestParallelDeterminism is the acceptance criterion of the parallel
// engine: workers=4 must report the identical bug set, completed-path
// count, error-path count and instruction count as workers=1 across the
// coreutils suite — the interleaving may change, the verdicts may not.
func TestParallelDeterminism(t *testing.T) {
	programs := coreutils.All()
	if testing.Short() {
		// A cheap but structurally diverse subset (loops, flags, two
		// buffers, symbolic indexing) for the quick gate.
		programs = programs[:0]
		for _, name := range []string{"echo", "cat", "wc", "tr", "grep-v", "rev", "uniq", "seq"} {
			p, ok := coreutils.Get(name)
			if !ok {
				t.Fatalf("no corpus program %q", name)
			}
			programs = append(programs, p)
		}
	}
	for _, p := range programs {
		serial := verifyProg(t, p, pipeline.OVerify, 3, 1)
		parallel := verifyProg(t, p, pipeline.OVerify, 3, 4)
		if serial.Stats.Paths != parallel.Stats.Paths {
			t.Errorf("%s: paths %d (1 worker) != %d (4 workers)",
				p.Name, serial.Stats.Paths, parallel.Stats.Paths)
		}
		if serial.Stats.ErrorPaths != parallel.Stats.ErrorPaths {
			t.Errorf("%s: error paths %d (1 worker) != %d (4 workers)",
				p.Name, serial.Stats.ErrorPaths, parallel.Stats.ErrorPaths)
		}
		if serial.Stats.Instrs != parallel.Stats.Instrs {
			t.Errorf("%s: instrs %d (1 worker) != %d (4 workers)",
				p.Name, serial.Stats.Instrs, parallel.Stats.Instrs)
		}
		sk, pk := bugKeys(serial), bugKeys(parallel)
		if fmt.Sprint(sk) != fmt.Sprint(pk) {
			t.Errorf("%s: bug sets differ: 1 worker %v vs 4 workers %v", p.Name, sk, pk)
		}
	}
}

// TestParallelBuggyPrograms re-runs the seeded-defect corpus with a
// worker pool: every bug found serially must be found in parallel, with
// a reproducing input attached.
func TestParallelBuggyPrograms(t *testing.T) {
	for _, bp := range buggyPrograms {
		n := bp.n
		if n == 0 {
			n = 3
		}
		c, err := core.CompileSource(bp.name, bp.src, pipeline.OVerify, core.DefaultLibc(pipeline.OVerify))
		if err != nil {
			t.Fatal(err)
		}
		opts := core.VerifyOptions{InputBytes: n}
		opts.Engine.Workers = 4
		rep, err := c.Verify("umain", opts)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, b := range rep.Bugs {
			if containsSub(b.Kind.String(), bp.kind) || containsSub(b.Msg, bp.kind) {
				found = true
				if b.Input == nil {
					t.Errorf("%s: bug %q has no reproducing input", bp.name, b.Msg)
				}
			}
		}
		if !found {
			t.Errorf("%s: seeded %q bug not found with 4 workers (bugs: %v)",
				bp.name, bp.kind, rep.Bugs)
		}
	}
}

// TestParallelSharedSolverCache: every worker's solver publishes its
// decided groups into the cross-worker cache (whether another worker
// then *hits* them depends on scheduling — the deterministic
// cross-solver hit is asserted in the solver package's cache tests).
func TestParallelSharedSolverCache(t *testing.T) {
	p, ok := coreutils.Get("wc")
	if !ok {
		t.Fatal("no wc program")
	}
	rep := verifyProg(t, p, pipeline.O0, 4, 4)
	if rep.Stats.SharedCache.Entries == 0 {
		t.Errorf("no groups published to the shared solver cache: %+v", rep.Stats.SharedCache)
	}
	if rep.Stats.Workers != 4 {
		t.Errorf("stats report %d workers, want 4", rep.Stats.Workers)
	}
	if rep.Stats.SolverStats.Queries == 0 {
		t.Error("per-worker solver stats were not aggregated")
	}
}

// TestParallelMaxPathsTruncation: global limits must stop a worker pool
// and report the truncation, same contract as the serial engine.
func TestParallelMaxPathsTruncation(t *testing.T) {
	p, ok := coreutils.Get("wc")
	if !ok {
		t.Fatal("no wc program")
	}
	c, err := core.CompileProgram(p, pipeline.O0)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.VerifyOptions{InputBytes: 6}
	opts.Engine.Workers = 4
	opts.Engine.MaxPaths = 10
	rep, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.TotalPaths() < 10 {
		t.Errorf("explored %d paths, expected at least 10", rep.Stats.TotalPaths())
	}
	if rep.Stats.TruncatedPaths == 0 {
		t.Error("expected truncated paths to be reported")
	}
}

// TestParallelTimeout: the deadline must stop all workers promptly and
// set TimedOut.
func TestParallelTimeout(t *testing.T) {
	p, ok := coreutils.Get("checksum64")
	if !ok {
		t.Fatal("no checksum64 program")
	}
	c, err := core.CompileProgram(p, pipeline.O0)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.VerifyOptions{InputBytes: 8}
	opts.Engine.Workers = 4
	opts.Engine.Timeout = 50 * time.Millisecond
	start := time.Now()
	rep, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Stats.TimedOut && rep.Stats.TotalPaths() == 0 {
		t.Error("neither finished nor timed out")
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("workers took %v to honor a 50ms deadline", elapsed)
	}
}

// TestWorkerAutoCount: Workers=-1 resolves to NumCPU and still explores
// everything.
func TestWorkerAutoCount(t *testing.T) {
	p, ok := coreutils.Get("cat")
	if !ok {
		t.Fatal("no cat program")
	}
	rep := verifyProg(t, p, pipeline.OVerify, 3, -1)
	if rep.Stats.Workers < 1 {
		t.Errorf("auto worker count resolved to %d", rep.Stats.Workers)
	}
	if rep.Stats.Paths == 0 {
		t.Error("no paths explored")
	}
}
