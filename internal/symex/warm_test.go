package symex_test

import (
	"reflect"
	"testing"

	"overify/internal/expr"
	"overify/internal/frontend"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/solver"
	"overify/internal/symex"
)

// runShared explores src with an injected builder + solver cache (the
// daemon's warm path) and returns the report.
func runShared(t *testing.T, src, fn string, n int, b *expr.Builder, c *solver.Cache) *symex.Report {
	t.Helper()
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := pipeline.OptimizeAtLevel(mod, pipeline.O0); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	opts := symex.Options{Builder: b, Cache: c}
	eng := symex.NewEngine(mod, opts)
	buf := eng.SymbolicBuffer("input", n, true)
	rep, err := eng.Run(fn, []symex.SymVal{buf, eng.IntArg(ir.I32, uint64(n))}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

const warmSrc = `
int f(unsigned char *in, int n) {
	int i = 0;
	int acc = 0;
	while (in[i] != 0) {
		if (in[i] > 'a') { acc = acc + in[i]; }
		if (in[i] == 'q') { acc = acc / (in[i] - 'q'); }
		i = i + 1;
	}
	return acc;
}`

// TestSharedBuilderCacheWarmRun is the engine-level core of the daemon:
// two runs over the same content sharing one concurrent builder and one
// solver cache must produce identical reports, with the second run
// answering (almost) every query from warm state instead of searching.
func TestSharedBuilderCacheWarmRun(t *testing.T) {
	b := expr.NewConcurrentBuilder()
	c := solver.NewCache()

	cold := runShared(t, warmSrc, "f", 4, b, c)
	warm := runShared(t, warmSrc, "f", 4, b, c)

	if !reflect.DeepEqual(cold.Bugs, warm.Bugs) {
		t.Errorf("warm run changed the bug report:\ncold: %+v\nwarm: %+v", cold.Bugs, warm.Bugs)
	}
	if cold.Stats.Paths != warm.Stats.Paths || cold.Stats.Instrs != warm.Stats.Instrs {
		t.Errorf("warm run changed exploration: paths %d vs %d, instrs %d vs %d",
			cold.Stats.Paths, warm.Stats.Paths, cold.Stats.Instrs, warm.Stats.Instrs)
	}
	ws := warm.Stats.SolverStats
	if ws.Queries == 0 {
		t.Fatal("warm run issued no queries; test is vacuous")
	}
	warmHits := ws.CacheHits + ws.PartitionHits + ws.ModelReuseHits
	if ratio := float64(warmHits) / float64(ws.Queries); ratio < 0.9 {
		t.Errorf("warm run answered only %.0f%% of %d queries from warm state (cache %d, partition %d, model %d)",
			100*ratio, ws.Queries, ws.CacheHits, ws.PartitionHits, ws.ModelReuseHits)
	}
	// Sanity: the cold run really did populate the shared cache.
	if snap := c.Snapshot(); snap.Entries == 0 {
		t.Error("shared cache is empty after a cold run")
	}
}

// TestSharedBuilderDistinctPrograms: runs of different programs through
// one shared builder+cache must not contaminate each other — hash-
// consing keeps node ids canonical, so distinct constraints can never
// collide on a fingerprint built from them.
func TestSharedBuilderDistinctPrograms(t *testing.T) {
	b := expr.NewConcurrentBuilder()
	c := solver.NewCache()

	other := `
int g(unsigned char *in, int n) {
	if (in[0] == 'z') { return 10 / (in[1] - in[1]); }
	return 0;
}`
	baseline := runShared(t, warmSrc, "f", 4, expr.NewConcurrentBuilder(), solver.NewCache())
	runShared(t, other, "g", 4, b, c) // warms the shared state with different content
	mixed := runShared(t, warmSrc, "f", 4, b, c)

	if !reflect.DeepEqual(baseline.Bugs, mixed.Bugs) {
		t.Errorf("shared state across programs changed the bug report:\nisolated: %+v\nshared: %+v",
			baseline.Bugs, mixed.Bugs)
	}
	if baseline.Stats.Paths != mixed.Stats.Paths {
		t.Errorf("paths: isolated %d, shared %d", baseline.Stats.Paths, mixed.Stats.Paths)
	}
}
