package symex_test

import (
	"fmt"
	"sort"
	"testing"

	"overify/internal/core"
	"overify/internal/pipeline"
)

// buggyPrograms seed one known defect each; the §4 claim under test:
// "all bugs discovered by KLEE with -O0 and -O3 are also found with
// -OSYMBEX".
var buggyPrograms = []struct {
	name string
	src  string
	kind string // substring expected in some bug's description
	n    int    // symbolic input bytes needed to reach the bug
}{
	{
		name: "oob-write",
		n:    5, // the overflow needs five non-NUL bytes
		src: `
int umain(unsigned char *input, int len) {
	unsigned char buf[4];
	int i = 0;
	// Off-by-one: accepts indices 0..4 into buf[4].
	while (i <= 4 && input[i] != 0) {
		buf[i] = input[i];
		i = i + 1;
	}
	return i;
}`,
		kind: "out-of-bounds",
	},
	{
		name: "div-by-input",
		src: `
int umain(unsigned char *input, int len) {
	if (len < 1) { return 0; }
	return 100 / (int)input[0];
}`,
		kind: "division by zero",
	},
	{
		name: "bad-assert",
		src: `
int umain(unsigned char *input, int len) {
	int sum = 0;
	int i = 0;
	while (input[i] != 0) {
		sum = sum + (int)input[i];
		i = i + 1;
	}
	assert(sum != 'X');
	return sum;
}`,
		kind: "assert",
	},
	{
		name: "oob-read-index",
		src: `
const char lut[8] = {1, 2, 3, 4, 5, 6, 7, 8};
int umain(unsigned char *input, int len) {
	if (len < 1) { return 0; }
	// Index can reach 15 into lut[8].
	return (int)lut[(int)input[0] % 16];
}`,
		kind: "out-of-bounds",
	},
}

// TestBugParityAcrossLevels verifies that every seeded bug is found at
// -O0, -O3 and -OVERIFY alike.
func TestBugParityAcrossLevels(t *testing.T) {
	levels := []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify}
	for _, bp := range buggyPrograms {
		kinds := make(map[pipeline.Level][]string)
		n := bp.n
		if n == 0 {
			n = 3
		}
		for _, level := range levels {
			c, err := core.CompileSource(bp.name, bp.src, level, core.DefaultLibc(level))
			if err != nil {
				t.Fatalf("%s at %s: %v", bp.name, level, err)
			}
			rep, err := c.Verify("umain", core.VerifyOptions{InputBytes: n})
			if err != nil {
				t.Fatalf("%s at %s: verify: %v", bp.name, level, err)
			}
			var ks []string
			for _, b := range rep.Bugs {
				ks = append(ks, b.Kind.String())
			}
			sort.Strings(ks)
			kinds[level] = ks

			found := false
			for _, b := range rep.Bugs {
				if containsSub(b.Kind.String(), bp.kind) || containsSub(b.Msg, bp.kind) {
					found = true
				}
			}
			if !found {
				t.Errorf("%s at %s: seeded %q bug not found (bugs: %v)",
					bp.name, level, bp.kind, rep.Bugs)
			}
		}
		// Bug-kind sets must agree across levels.
		want := fmt.Sprint(kinds[pipeline.O0])
		for _, level := range levels[1:] {
			if got := fmt.Sprint(kinds[level]); got != want {
				t.Errorf("%s: bug kinds differ: %s=%v vs %s=%v",
					bp.name, pipeline.O0, want, level, got)
			}
		}
	}
}

// TestBugInputsReproduce feeds each reported bug input back through the
// concrete interpreter and checks it actually crashes.
func TestBugInputsReproduce(t *testing.T) {
	for _, bp := range buggyPrograms {
		n := bp.n
		if n == 0 {
			n = 3
		}
		c, err := core.CompileSource(bp.name, bp.src, pipeline.OVerify, core.DefaultLibc(pipeline.OVerify))
		if err != nil {
			t.Fatal(err)
		}
		rep, err := c.Verify("umain", core.VerifyOptions{InputBytes: n})
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Bugs) == 0 {
			t.Errorf("%s: no bugs found", bp.name)
			continue
		}
		reproduced := 0
		for _, b := range rep.Bugs {
			if b.Input == nil {
				continue
			}
			// Run concretely at -O0 (the build closest to the source):
			// the input must trap.
			c0, err := core.CompileSource(bp.name, bp.src, pipeline.O0, core.DefaultLibc(pipeline.O0))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := c0.Run("umain", b.Input); err != nil {
				reproduced++
			}
		}
		if reproduced == 0 {
			t.Errorf("%s: no bug input reproduced a concrete crash", bp.name)
		}
	}
}

func containsSub(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
