package symex_test

import (
	"testing"

	"overify/internal/frontend"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

const wcSrc = `
int isspace(int c) {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == 11 || c == 12;
}
int isalpha(int c) {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int wc(unsigned char *str, int any) {
	int res = 0;
	int new_word = 1;
	for (unsigned char *p = str; *p; ++p) {
		if (isspace(*p) || (any && !isalpha(*p))) {
			new_word = 1;
		} else {
			if (new_word) {
				++res;
				new_word = 0;
			}
		}
	}
	return res;
}
`

// exploreWc runs exhaustive symbolic execution of wc over strings of up
// to n bytes with a symbolic `any` flag, at the given level.
func exploreWc(t *testing.T, level pipeline.Level, n int) *symex.Report {
	t.Helper()
	mod, err := frontend.Lower("wc", wcSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := pipeline.OptimizeAtLevel(mod, level); err != nil {
		t.Fatalf("optimize %s: %v", level, err)
	}
	eng := symex.NewEngine(mod, symex.Options{})
	buf := eng.SymbolicBuffer("input", n, true)
	any := eng.SymbolicInt("any", ir.I32)
	rep, err := eng.Run("wc", []symex.SymVal{buf, any}, nil)
	if err != nil {
		t.Fatalf("symex %s: %v", level, err)
	}
	return rep
}

func TestWcSymexSmall(t *testing.T) {
	// 3 symbolic bytes: small enough to explore exhaustively at -O0.
	paths := map[pipeline.Level]int64{}
	for _, level := range []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify} {
		rep := exploreWc(t, level, 3)
		if rep.Stats.TimedOut || rep.Stats.TruncatedPaths > 0 {
			t.Fatalf("%s: exploration truncated: %+v", level, rep.Stats)
		}
		if len(rep.Bugs) != 0 {
			t.Errorf("%s: unexpected bugs: %v", level, rep.Bugs)
		}
		paths[level] = rep.Stats.Paths
		t.Logf("%s: paths=%d instrs=%d queries=%d cacheHits=%d",
			level, rep.Stats.Paths, rep.Stats.Instrs,
			rep.Stats.SolverStats.Queries, rep.Stats.SolverStats.CacheHits)
	}
	// Table 1 shape: O0 >= O2 >= O3 > OVerify; OVerify = n+1 paths
	// (one per possible NUL position: the `any` flag folds into selects).
	if paths[pipeline.OVerify] != 4 {
		t.Errorf("OVerify paths = %d, want 4 (= n+1)", paths[pipeline.OVerify])
	}
	if paths[pipeline.O3] <= paths[pipeline.OVerify] {
		t.Errorf("O3 (%d) should explore more paths than OVerify (%d)",
			paths[pipeline.O3], paths[pipeline.OVerify])
	}
	if paths[pipeline.O0] < paths[pipeline.O3] {
		t.Errorf("O0 (%d) should explore at least as many paths as O3 (%d)",
			paths[pipeline.O0], paths[pipeline.O3])
	}
	if paths[pipeline.O0] != paths[pipeline.O2] {
		t.Errorf("O0 (%d) and O2 (%d) should explore the same paths (same CFG structure)",
			paths[pipeline.O0], paths[pipeline.O2])
	}
}

func TestWcSymexTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full 10-byte exploration in -short mode")
	}
	// The paper's Table 1 setting: strings up to 10 bytes. Only the
	// cheap levels are explored here; -O0/-O2 are exercised by the
	// benchmark harness with explicit time budgets.
	rep := exploreWc(t, pipeline.OVerify, 10)
	if rep.Stats.Paths != 11 {
		t.Errorf("OVerify paths = %d, want 11 (Table 1)", rep.Stats.Paths)
	}
	if len(rep.Bugs) != 0 {
		t.Errorf("unexpected bugs: %v", rep.Bugs)
	}
}
