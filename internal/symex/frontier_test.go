package symex

import "testing"

// testFrontier builds a frontier over a fresh strategy of the given kind.
func testFrontier(workers int, kind SearchKind, maxStates int) *frontier {
	return newFrontier(workers, newStrategy(kind, workers, 0, newCoverage()), maxStates)
}

func never() bool { return false }

// TestFrontierStealing: a worker with an empty shard must steal the
// shallowest state from the longest other shard.
func TestFrontierStealing(t *testing.T) {
	f := testFrontier(2, DFS, 0)
	a, b, c := &State{ID: 1}, &State{ID: 2}, &State{ID: 3}
	f.put(0, []*State{a, b, c})

	// Worker 1 owns nothing: it steals the oldest state of shard 0.
	got := f.take(1, never)
	if got != a {
		t.Errorf("steal took ID %d, want the shallowest (ID 1)", got.ID)
	}
	// Worker 0 pops its own shard from the back (DFS).
	got = f.take(0, never)
	if got != c {
		t.Errorf("own pop took ID %d, want the deepest (ID 3)", got.ID)
	}
}

// TestFrontierBFSOrder: BFS pops the worker's own shard from the front.
func TestFrontierBFSOrder(t *testing.T) {
	f := testFrontier(1, BFS, 0)
	a, b := &State{ID: 1}, &State{ID: 2}
	f.put(0, []*State{a, b})
	if got := f.take(0, never); got != a {
		t.Errorf("BFS took ID %d, want ID 1", got.ID)
	}
	if got := f.take(0, never); got != b {
		t.Errorf("BFS took ID %d, want ID 2", got.ID)
	}
}

// TestFrontierTermination: take returns nil once all shards are empty
// and no worker holds a state — and only then.
func TestFrontierTermination(t *testing.T) {
	f := testFrontier(2, DFS, 0)
	f.put(0, []*State{{ID: 1}})

	st := f.take(0, never)
	if st == nil {
		t.Fatal("no state")
	}
	// Worker 0 still holds the state: a second taker must block, so run
	// it in a goroutine and release from here.
	done := make(chan *State)
	go func() { done <- f.take(1, never) }()
	f.release()
	if got := <-done; got != nil {
		t.Errorf("take after final release returned state ID %d, want nil", got.ID)
	}
	// Subsequent takes return nil immediately.
	if got := f.take(0, never); got != nil {
		t.Error("take after done returned a state")
	}
}

// TestFrontierMaxStates: overflowing the cap drops the shallowest
// states and reports the count to the caller.
func TestFrontierMaxStates(t *testing.T) {
	f := testFrontier(1, DFS, 2)
	if n := f.put(0, []*State{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}); n != 2 {
		t.Errorf("dropped %d states, want 2", n)
	}
	// The two survivors are the deepest.
	if got := f.take(0, never); got.ID != 4 {
		t.Errorf("took ID %d, want 4", got.ID)
	}
	if got := f.take(0, never); got.ID != 3 {
		t.Errorf("took ID %d, want 3", got.ID)
	}
}

// TestFrontierDrain: drain empties every shard and wakes blocked
// takers.
func TestFrontierDrain(t *testing.T) {
	f := testFrontier(2, DFS, 0)
	f.put(0, []*State{{ID: 1}, {ID: 2}})
	if st := f.take(0, never); st == nil {
		t.Fatal("no state")
	}
	if n := f.drain(); n != 1 {
		t.Errorf("drain returned %d, want 1", n)
	}
	f.release()
	if st := f.take(1, never); st != nil {
		t.Error("take after drain returned a state")
	}
}

// TestFrontierStopped: a stop request observed in take unblocks the
// caller with nil.
func TestFrontierStopped(t *testing.T) {
	f := testFrontier(1, DFS, 0)
	f.put(0, []*State{{ID: 1}})
	if st := f.take(0, func() bool { return true }); st != nil {
		t.Error("take ignored the stop request")
	}
}
