package symex

import (
	"fmt"

	"overify/internal/expr"
	"overify/internal/ir"
)

const maxCallDepth = 4096

// step runs one state until it terminates (path done) or forks (the
// continuations are returned). stop=true means a global limit was hit
// and the whole exploration must end.
func (w *worker) step(st *State) (stop bool, forked []*State) {
	for {
		if w.overLimit() {
			return true, nil
		}
		f := st.top()
		w.coverBlock(f.Block)
		in := f.Block.Instrs[f.Idx]
		w.countInstr()

		switch in.Op {
		case ir.OpBr:
			w.jump(st, f, in.Succs[0])
			continue

		case ir.OpCondBr:
			c := w.ev(st, f, in.Args[0]).E
			if cc, ok := c.IsConst(); ok {
				if cc != 0 {
					w.jump(st, f, in.Succs[0])
				} else {
					w.jump(st, f, in.Succs[1])
				}
				continue
			}
			notC := w.B.Not(c)
			resT, resF, pT, pF := w.satTriPair(st, c, notC)
			switch {
			case resT == satYes && resF == satYes:
				other := w.fork(st)
				of := other.top()
				st.addPCPart(c, pT)
				w.jump(st, f, in.Succs[0])
				other.addPCPart(notC, pF)
				w.jump(other, of, in.Succs[1])
				// DFS continues with the last element: st (true side).
				return false, []*State{other, st}
			case resT == satYes || (resT == satUnknown && resF == satNo):
				// True side feasible (or the only possibility).
				st.addPCPart(c, pT)
				w.jump(st, f, in.Succs[0])
			case resF == satYes || (resF == satUnknown && resT == satNo):
				st.addPCPart(notC, pF)
				w.jump(st, f, in.Succs[1])
			case resT == satNo && resF == satNo:
				// Contradictory path condition; the path dies silently.
				return false, nil
			default:
				// Both sides unknown: concretize (KLEE's solver-failure
				// fallback). Follow the side a model of the current path
				// condition takes; no fork, so budget failures cannot
				// blow up the search.
				_, model := w.satTri(st, nil)
				if expr.Eval(c, modelOrEmpty(model)) != 0 {
					st.addPC(c)
					w.jump(st, f, in.Succs[0])
				} else {
					st.addPC(notC)
					w.jump(st, f, in.Succs[1])
				}
			}
			continue

		case ir.OpRet:
			var rv SymVal
			if len(in.Args) == 1 {
				rv = w.ev(st, f, in.Args[0])
			}
			st.Frames = st.Frames[:len(st.Frames)-1]
			if len(st.Frames) == 0 {
				w.e.paths.Add(1)
				return false, nil
			}
			caller := st.top()
			if f.Caller != nil && !ir.SameType(f.Caller.Typ, ir.Void) {
				caller.Locals[f.Caller] = rv
			}
			continue

		case ir.OpUnreachable:
			return w.endWithBug(st, BugUnreachable, "unreachable executed in "+st.Where())

		case ir.OpCall:
			callee := in.Callee
			if callee.IsDeclaration() {
				return w.endWithBug(st, BugPtrDomain, "call to undefined function @"+callee.Name)
			}
			if len(st.Frames) >= maxCallDepth {
				w.e.truncated.Add(1)
				return false, nil
			}
			args := make([]SymVal, len(in.Args))
			for i := range in.Args {
				args[i] = w.ev(st, f, in.Args[i])
			}
			f.Idx++ // resume after the call on return
			nf := &Frame{Fn: callee, Block: callee.Entry(), Locals: make(map[ir.Value]SymVal, 16), Caller: in}
			for i, p := range callee.Params {
				nf.Locals[p] = args[i]
			}
			st.Frames = append(st.Frames, nf)
			continue

		case ir.OpCheck:
			if !w.e.opts.Checks.Contains(in.Kind) {
				// Per-property mode: a check outside the kept subset
				// neither reports nor constrains — the path continues as
				// if the check were absent, so a filtered baseline run and
				// a run on a program sliced for the same subset agree.
				w.e.checksSkipped.Add(1)
				f.Idx++
				continue
			}
			c := w.ev(st, f, in.Args[0]).E
			if c.IsTrue() {
				f.Idx++
				continue
			}
			kind := BugCheckFailed
			switch in.Kind {
			case ir.CheckDivByZero:
				kind = BugDivByZero
			case ir.CheckBounds:
				kind = BugOutOfBounds
			case ir.CheckAssert:
				kind = BugAssertFailed
			}
			if c.IsFalse() {
				return w.endWithBug(st, kind, in.Msg)
			}
			if res, model := w.satTri(st, w.B.Not(c)); res == satYes {
				w.reportBug(st, kind, in.Msg, model)
				w.e.errorPaths.Add(1)
			}
			if satOK, _ := w.sat(st, c); satOK {
				st.addPC(c)
				f.Idx++
				continue
			}
			return false, nil // every input fails the check

		default:
			res, fk := w.execValue(st, f, in)
			switch res {
			case execEnd:
				return false, nil
			case execFork:
				return false, fk
			}
			f.Idx++
			continue
		}
	}
}

// jump moves the frame to target, evaluating its phis as a batch.
func (w *worker) jump(st *State, f *Frame, target *ir.Block) {
	phis := target.Phis()
	if len(phis) > 0 {
		vals := make([]SymVal, len(phis))
		for i, phi := range phis {
			v := phi.PhiIncoming(f.Block)
			if v == nil {
				panic(fmt.Sprintf("symex: phi %s in %s has no edge from %s",
					phi.Ref(), target.Name, f.Block.Name))
			}
			vals[i] = w.ev(st, f, v)
			w.countInstr()
		}
		for i, phi := range phis {
			f.Locals[phi] = vals[i]
		}
	}
	f.Prev = f.Block
	f.Block = target
	f.Idx = len(phis)
}

// ev resolves an operand to a symbolic value.
func (w *worker) ev(st *State, f *Frame, v ir.Value) SymVal {
	switch x := v.(type) {
	case *ir.Const:
		return SymVal{E: w.B.Const(x.Typ.Bits, x.Val)}
	case *ir.Null:
		return SymVal{IsPtr: true, Off: w.B.Const(64, 0)}
	case *ir.Global:
		return SymVal{IsPtr: true, Obj: st.Globals[x], Off: w.B.Const(64, 0)}
	default:
		sv, ok := f.Locals[v]
		if !ok {
			panic(fmt.Sprintf("symex: use of undefined value %s in %s", v.Ref(), st.Where()))
		}
		return sv
	}
}

// endWithBug concretizes the current path condition into a reproducing
// input, records the bug, and terminates the path.
func (w *worker) endWithBug(st *State, kind BugKind, msg string) (bool, []*State) {
	_, model := w.sat(st, nil)
	w.reportBug(st, kind, msg, model)
	w.e.errorPaths.Add(1)
	return false, nil
}

// execResult says how execValue left the state.
type execResult int

const (
	execOK   execResult = iota // value assigned; advance to the next instruction
	execEnd                    // path terminated (bug or contradiction)
	execFork                   // forked; both continuations are returned
)

// execValue executes a non-control instruction.
func (w *worker) execValue(st *State, f *Frame, in *ir.Instr) (execResult, []*State) {
	set := func(v SymVal) {
		if !ir.SameType(in.Typ, ir.Void) {
			f.Locals[in] = v
		}
	}

	switch {
	case in.Op.IsBinary():
		a := w.ev(st, f, in.Args[0])
		b := w.ev(st, f, in.Args[1])
		bits := in.Typ.(ir.IntType).Bits
		switch in.Op {
		case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
			d := b.E
			if dc, ok := d.IsConst(); ok {
				if dc == 0 {
					w.endWithBug(st, BugDivByZero,
						fmt.Sprintf("%s by zero in %s", in.Op, st.Where()))
					return execEnd, nil
				}
			} else {
				zero := w.B.Cmp(ir.OpEq, d, w.B.Const(bits, 0))
				if res, model := w.satTri(st, zero); res == satYes {
					w.reportBug(st, BugDivByZero,
						fmt.Sprintf("%s by zero in %s", in.Op, st.Where()), model)
					w.e.errorPaths.Add(1)
				}
				nz := w.B.Not(zero)
				if satNZ, _ := w.sat(st, nz); !satNZ {
					return execEnd, nil // division always traps
				}
				st.addPC(nz)
			}
		}
		set(SymVal{E: w.B.Bin(in.Op, a.E, b.E)})
		return execOK, nil

	case in.Op.IsCmp():
		a := w.ev(st, f, in.Args[0])
		b := w.ev(st, f, in.Args[1])
		if a.IsPtr || b.IsPtr {
			return w.cmpPointers(st, in, a, b, set)
		}
		set(SymVal{E: w.B.Cmp(in.Op, a.E, b.E)})
		return execOK, nil
	}

	switch in.Op {
	case ir.OpSelect:
		c := w.ev(st, f, in.Args[0])
		t := w.ev(st, f, in.Args[1])
		fv := w.ev(st, f, in.Args[2])
		if cc, ok := c.E.IsConst(); ok {
			if cc != 0 {
				set(t)
			} else {
				set(fv)
			}
			return execOK, nil
		}
		if !t.IsPtr && !fv.IsPtr {
			set(SymVal{E: w.B.Select(c.E, t.E, fv.E)})
			return execOK, nil
		}
		// Pointer select: merge offsets when the object agrees, else
		// fork on the condition.
		if t.Obj == fv.Obj {
			set(SymVal{IsPtr: true, Obj: t.Obj, Off: w.B.Select(c.E, t.Off, fv.Off)})
			return execOK, nil
		}
		notC := w.B.Not(c.E)
		satT, _ := w.sat(st, c.E)
		satF, _ := w.sat(st, notC)
		switch {
		case satT && satF:
			other := w.fork(st)
			of := other.top()
			st.addPC(c.E)
			set(t)
			f.Idx++
			other.addPC(notC)
			if !ir.SameType(in.Typ, ir.Void) {
				of.Locals[in] = w.ev(other, of, in.Args[2])
			}
			of.Idx++
			return execFork, []*State{other, st}
		case satT:
			st.addPC(c.E)
			set(t)
		case satF:
			st.addPC(notC)
			set(fv)
		default:
			return execEnd, nil
		}
		return execOK, nil

	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		a := w.ev(st, f, in.Args[0])
		set(SymVal{E: w.B.Cast(in.Op, a.E, in.Typ.(ir.IntType).Bits)})
		return execOK, nil

	case ir.OpAlloca:
		obj := &MemObject{
			Name:  fmt.Sprintf("%s.%s", f.Fn.Name, in.Ref()),
			Elem:  in.Allocated,
			Count: in.Count,
		}
		obj.Cells = make([]SymVal, in.Count)
		var zero SymVal
		if pt, ok := in.Allocated.(ir.PtrType); ok {
			_ = pt
			zero = SymVal{IsPtr: true, Off: w.B.Const(64, 0)}
		} else {
			zero = SymVal{E: w.B.Const(in.Allocated.(ir.IntType).Bits, 0)}
		}
		for i := range obj.Cells {
			obj.Cells[i] = zero
		}
		set(SymVal{IsPtr: true, Obj: obj, Off: w.B.Const(64, 0)})
		return execOK, nil

	case ir.OpGEP:
		p := w.ev(st, f, in.Args[0])
		idx := w.ev(st, f, in.Args[1])
		if p.Obj == nil {
			w.endWithBug(st, BugNullDeref, "pointer arithmetic on null in "+st.Where())
			return execEnd, nil
		}
		set(SymVal{IsPtr: true, Obj: p.Obj, Off: w.B.Bin(ir.OpAdd, p.Off, idx.E)})
		return execOK, nil

	case ir.OpPtrDiff:
		a := w.ev(st, f, in.Args[0])
		b := w.ev(st, f, in.Args[1])
		if a.Obj != b.Obj {
			w.endWithBug(st, BugPtrDomain, "ptrdiff across objects in "+st.Where())
			return execEnd, nil
		}
		if a.Obj == nil {
			set(SymVal{E: w.B.Const(64, 0)})
			return execOK, nil
		}
		set(SymVal{E: w.B.Bin(ir.OpSub, a.Off, b.Off)})
		return execOK, nil

	case ir.OpLoad:
		p := w.ev(st, f, in.Args[0])
		if p.Obj == nil {
			w.endWithBug(st, BugNullDeref, "load from null in "+st.Where())
			return execEnd, nil
		}
		v, res := w.loadCell(st, p.Obj, p.Off)
		if res != execOK {
			return res, nil
		}
		set(v)
		return execOK, nil

	case ir.OpStore:
		v := w.ev(st, f, in.Args[0])
		p := w.ev(st, f, in.Args[1])
		if p.Obj == nil {
			w.endWithBug(st, BugNullDeref, "store to null in "+st.Where())
			return execEnd, nil
		}
		if p.Obj.ReadOnly {
			w.endWithBug(st, BugStoreConst, "store to read-only "+p.Obj.Name)
			return execEnd, nil
		}
		return w.storeCell(st, p.Obj, p.Off, v)
	}
	panic("symex: cannot execute " + in.Op.String())
}

func (w *worker) cmpPointers(st *State, in *ir.Instr, a, b SymVal, set func(SymVal)) (execResult, []*State) {
	boolConst := func(v bool) {
		set(SymVal{E: w.B.Bool(v)})
	}
	switch in.Op {
	case ir.OpEq, ir.OpNe:
		eq := in.Op == ir.OpEq
		switch {
		case a.Obj == nil && b.Obj == nil:
			boolConst(eq)
		case a.Obj != b.Obj:
			boolConst(!eq)
		default:
			c := w.B.Cmp(ir.OpEq, a.Off, b.Off)
			if !eq {
				c = w.B.Not(c)
			}
			set(SymVal{E: c})
		}
		return execOK, nil
	}
	// Relational: only within one object.
	if a.Obj != b.Obj {
		w.endWithBug(st, BugPtrDomain, "relational pointer comparison across objects in "+st.Where())
		return execEnd, nil
	}
	if a.Obj == nil {
		boolConst(in.Op == ir.OpULe || in.Op == ir.OpUGe)
		return execOK, nil
	}
	// Offsets are signed quantities in elements; pointer order within an
	// object is offset order.
	var op ir.Op
	switch in.Op {
	case ir.OpULt:
		op = ir.OpSLt
	case ir.OpULe:
		op = ir.OpSLe
	case ir.OpUGt:
		op = ir.OpSGt
	default:
		op = ir.OpSGe
	}
	set(SymVal{E: w.B.Cmp(op, a.Off, b.Off)})
	return execOK, nil
}

// loadCell reads obj[off], handling symbolic offsets with bounds
// checking and ite-chains (or a single Read node over concrete tables).
func (w *worker) loadCell(st *State, obj *MemObject, off *expr.Expr) (SymVal, execResult) {
	if oc, ok := off.IsConst(); ok {
		if int64(oc) < 0 || int64(oc) >= obj.Count {
			w.endWithBug(st, BugOutOfBounds,
				fmt.Sprintf("load %s[%d] (size %d) in %s", obj.Name, int64(oc), obj.Count, st.Where()))
			return SymVal{}, execEnd
		}
		return obj.Cells[oc], execOK
	}
	if !w.boundsCheck(st, obj, off, "load") {
		return SymVal{}, execEnd
	}
	// All cells must be integers for a symbolic read.
	bits := 0
	allConst := true
	for _, c := range obj.Cells {
		if c.IsPtr {
			w.endWithBug(st, BugPtrDomain,
				"symbolic index into pointer-holding object "+obj.Name)
			return SymVal{}, execEnd
		}
		bits = c.E.Bits
		if _, ok := c.E.IsConst(); !ok {
			allConst = false
		}
	}
	if allConst {
		table := make([]uint64, obj.Count)
		for i, c := range obj.Cells {
			v, _ := c.E.IsConst()
			table[i] = v
		}
		return SymVal{E: w.B.Read(table, bits, off)}, execOK
	}
	// ite chain over the (small) object.
	acc := obj.Cells[obj.Count-1].E
	for i := obj.Count - 2; i >= 0; i-- {
		hit := w.B.Cmp(ir.OpEq, off, w.B.Const(64, uint64(i)))
		acc = w.B.Select(hit, obj.Cells[i].E, acc)
	}
	return SymVal{E: acc}, execOK
}

// storeCell writes obj[off] = v.
func (w *worker) storeCell(st *State, obj *MemObject, off *expr.Expr, v SymVal) (execResult, []*State) {
	if oc, ok := off.IsConst(); ok {
		if int64(oc) < 0 || int64(oc) >= obj.Count {
			w.endWithBug(st, BugOutOfBounds,
				fmt.Sprintf("store %s[%d] (size %d) in %s", obj.Name, int64(oc), obj.Count, st.Where()))
			return execEnd, nil
		}
		obj.Cells[oc] = v
		return execOK, nil
	}
	if !w.boundsCheck(st, obj, off, "store") {
		return execEnd, nil
	}
	if v.IsPtr {
		w.endWithBug(st, BugPtrDomain,
			"symbolic-offset store of a pointer into "+obj.Name)
		return execEnd, nil
	}
	for i := int64(0); i < obj.Count; i++ {
		old := obj.Cells[i]
		if old.IsPtr {
			w.endWithBug(st, BugPtrDomain,
				"symbolic-offset store into pointer-holding object "+obj.Name)
			return execEnd, nil
		}
		hit := w.B.Cmp(ir.OpEq, off, w.B.Const(64, uint64(i)))
		obj.Cells[i] = SymVal{E: w.B.Select(hit, v.E, old.E)}
	}
	return execOK, nil
}

// boundsCheck reports a bug if off can be out of bounds and constrains
// the path to in-bounds accesses. Returns false when the path cannot
// continue (every offset is out of bounds).
func (w *worker) boundsCheck(st *State, obj *MemObject, off *expr.Expr, what string) bool {
	oob := w.B.Cmp(ir.OpUGe, off, w.B.Const(64, uint64(obj.Count)))
	if res, model := w.satTri(st, oob); res == satYes {
		w.reportBug(st, BugOutOfBounds,
			fmt.Sprintf("%s %s out of bounds (size %d) in %s", what, obj.Name, obj.Count, st.Where()), model)
		w.e.errorPaths.Add(1)
	}
	inb := w.B.Not(oob)
	if satIn, _ := w.sat(st, inb); !satIn {
		return false
	}
	st.addPC(inb)
	return true
}
