package symex

import (
	"sync"
	"sync/atomic"

	"overify/internal/ir"
)

// coverage is the engine-wide block-coverage map: which basic blocks
// have had at least one instruction executed by any worker. It is fed
// by exec (a block is covered when a state begins executing in it, not
// when a fork merely targets it) and read by the coverage-weighted
// search strategy, which scores states by how much uncovered territory
// their next block opens up.
//
// All methods are safe for concurrent use without external locking:
// cover uses a lock-free LoadOrStore, and the distinct-block counter is
// atomic, so the per-instruction hot path never contends on a mutex.
type coverage struct {
	blocks sync.Map // *ir.Block -> struct{}
	n      atomic.Int64
}

func newCoverage() *coverage { return &coverage{} }

// cover marks b as executed and reports whether it was newly covered.
func (c *coverage) cover(b *ir.Block) bool {
	if _, seen := c.blocks.LoadOrStore(b, struct{}{}); seen {
		return false
	}
	c.n.Add(1)
	return true
}

// covered reports whether b has been executed on any path.
func (c *coverage) covered(b *ir.Block) bool {
	_, ok := c.blocks.Load(b)
	return ok
}

// count is the number of distinct covered blocks.
func (c *coverage) count() int64 { return c.n.Load() }
