package symex

import (
	"fmt"
	"testing"

	"overify/internal/ir"
)

// mkState builds a bare state positioned at block b (enough for the
// strategies: they read ID, Forks and the top frame's block).
func mkState(id int64, b *ir.Block) *State {
	return &State{ID: id, Frames: []*Frame{{Block: b}}}
}

// TestParseSearchRoundTrip: every built-in kind parses from its own
// String spelling.
func TestParseSearchRoundTrip(t *testing.T) {
	for _, k := range Strategies() {
		got, err := ParseSearch(k.String())
		if err != nil || got != k {
			t.Errorf("ParseSearch(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseSearch("bogo"); err == nil {
		t.Error("ParseSearch accepted an unknown strategy")
	}
}

// TestStealFollowsStrategyOrder is the regression for the steal path:
// the old frontier always stole slot 0 of the victim shard, ignoring
// the strategy's priority. With the coverage-weighted strategy, a thief
// must receive the victim's *best* state — the one whose next block is
// still uncovered — not whatever happens to sit first.
func TestStealFollowsStrategyOrder(t *testing.T) {
	hot := &ir.Block{Name: "hot"}
	cold := &ir.Block{Name: "cold"}
	cov := newCoverage()
	cov.cover(hot)

	strat := newStrategy(CovNew, 2, 0, cov)
	f := newFrontier(2, strat, 0)
	// Shard 0: two already-covered ("hot") states first, the state
	// opening uncovered territory last — slot 0 is the wrong answer.
	f.put(0, []*State{mkState(1, hot), mkState(2, hot), mkState(3, cold)})

	got := f.take(1, never)
	if got == nil || got.ID != 3 {
		t.Fatalf("thief stole state %v, want ID 3 (the uncovered-block state)", got)
	}
}

// TestCovnewPrefersUncovered: Select returns states scored by uncovered
// territory, and NotifyCovered demotes states lazily once their target
// is covered.
func TestCovnewPrefersUncovered(t *testing.T) {
	a := &ir.Block{Name: "a"}
	b := &ir.Block{Name: "b"}
	cov := newCoverage()
	strat := newStrategy(CovNew, 1, 0, cov)

	strat.Insert(0, []*State{mkState(1, a), mkState(2, b)})
	cov.cover(a) // a's state goes stale...
	strat.NotifyCovered(a)

	if st := strat.Select(0); st == nil || st.ID != 2 {
		t.Fatalf("Select = %v, want ID 2 (block b is uncovered)", st)
	}
	if st := strat.Select(0); st == nil || st.ID != 1 {
		t.Fatalf("Select = %v, want ID 1", st)
	}
	if st := strat.Select(0); st != nil {
		t.Fatalf("Select on empty shard = %v, want nil", st)
	}
}

// TestRandSameSeedSameOrder: the random-path pop order is a pure
// function of the seed — same seed, identical order; different seed,
// (virtually certainly) a different one. At one worker the pop order
// IS the exploration order, which is the reproducibility contract the
// -seed flag promises.
func TestRandSameSeedSameOrder(t *testing.T) {
	order := func(seed int64) []int64 {
		strat := newStrategy(RandPath, 1, seed, newCoverage())
		states := make([]*State, 32)
		for i := range states {
			states[i] = &State{ID: int64(i + 1)}
		}
		strat.Insert(0, states)
		var ids []int64
		for st := strat.Select(0); st != nil; st = strat.Select(0) {
			ids = append(ids, st.ID)
		}
		if len(ids) != len(states) {
			t.Fatalf("popped %d states, inserted %d", len(ids), len(states))
		}
		return ids
	}
	a, b := order(42), order(42)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Errorf("same seed, different order:\n  %v\n  %v", a, b)
	}
	if c := order(7); fmt.Sprint(a) == fmt.Sprint(c) {
		t.Errorf("seeds 42 and 7 produced the identical 32-state order")
	}
}

// TestStrategyEvict: eviction removes exactly one state from the
// fullest shard for every strategy, and covnew evicts its
// worst-scoring state, not its best.
func TestStrategyEvict(t *testing.T) {
	hot := &ir.Block{Name: "hot"}
	cold := &ir.Block{Name: "cold"}
	for _, kind := range Strategies() {
		cov := newCoverage()
		cov.cover(hot)
		strat := newStrategy(kind, 2, 0, cov)
		strat.Insert(0, []*State{mkState(1, hot)})
		strat.Insert(1, []*State{mkState(2, cold), mkState(3, hot), mkState(4, hot)})
		ev := strat.Evict()
		if ev == nil {
			t.Fatalf("%s: Evict returned nil with pending states", kind)
		}
		if strat.Len(0)+strat.Len(1) != 3 {
			t.Errorf("%s: Evict removed %d states, want 1", kind, 4-strat.Len(0)-strat.Len(1))
		}
		if strat.Len(1) != 2 {
			t.Errorf("%s: Evict took from shard with %d states, want the fullest", kind, 1)
		}
		if kind == CovNew && ev.ID == 2 {
			t.Errorf("covnew evicted the uncovered-block state (its best)")
		}
	}
}

// TestInterleaveRoundRobin: picks alternate covnew, dfs, covnew, ...
// per shard, with stale copies (the other ordering's view of an
// already-delivered state) skipped silently.
func TestInterleaveRoundRobin(t *testing.T) {
	hot := &ir.Block{Name: "hot"}
	cold := &ir.Block{Name: "cold"}
	cov := newCoverage()
	cov.cover(hot)
	strat := newStrategy(Interleave, 1, 0, cov)
	// Two covered-block states inserted first, the uncovered one last:
	// dfs order favors 3 (deepest), covnew order also favors 3 (score);
	// after 3 is gone the two orderings disagree — dfs wants 2 (top of
	// stack), covnew wants the freshest insert, also 2, then both drain
	// to 1.
	strat.Insert(0, []*State{mkState(1, hot), mkState(2, hot), mkState(3, cold)})
	var got []int64
	for st := strat.Select(0); st != nil; st = strat.Select(0) {
		got = append(got, st.ID)
	}
	if fmt.Sprint(got) != fmt.Sprint([]int64{3, 2, 1}) {
		t.Errorf("pop order %v, want [3 2 1]", got)
	}
	if strat.Len(0) != 0 {
		t.Errorf("Len = %d after drain", strat.Len(0))
	}
}

// TestInterleaveReinsert: the engine republishes the same *State after
// a partial run; the strategy must deliver it exactly once per insert
// even while stale copies of the previous cycle are still queued.
func TestInterleaveReinsert(t *testing.T) {
	b := &ir.Block{Name: "b"}
	strat := newStrategy(Interleave, 1, 0, newCoverage())
	st := mkState(1, b)
	for cycle := 0; cycle < 3; cycle++ {
		strat.Insert(0, []*State{st})
		if got := strat.Select(0); got != st {
			t.Fatalf("cycle %d: Select = %v, want the reinserted state", cycle, got)
		}
		if got := strat.Select(0); got != nil {
			t.Fatalf("cycle %d: duplicate delivery of %v", cycle, got)
		}
		if strat.Len(0) != 0 {
			t.Fatalf("cycle %d: Len = %d, want 0", cycle, strat.Len(0))
		}
	}
}

// TestCoverageMap: cover is idempotent, covered reflects it, count
// tracks distinct blocks.
func TestCoverageMap(t *testing.T) {
	cov := newCoverage()
	a, b := &ir.Block{Name: "a"}, &ir.Block{Name: "b"}
	if cov.covered(a) {
		t.Error("fresh map claims coverage")
	}
	if !cov.cover(a) {
		t.Error("first cover not reported as new")
	}
	if cov.cover(a) {
		t.Error("second cover reported as new")
	}
	cov.cover(b)
	if !cov.covered(a) || !cov.covered(b) || cov.count() != 2 {
		t.Errorf("covered=%v/%v count=%d, want true/true 2", cov.covered(a), cov.covered(b), cov.count())
	}
}

// checkCovHeaps validates the heap invariant over the cached ordering
// fields for every shard of a covnew strategy.
func checkCovHeaps(t *testing.T, c *covnewStrategy) {
	t.Helper()
	for s, h := range c.heaps {
		for i := range h {
			for _, child := range []int{2*i + 1, 2*i + 2} {
				if child < len(h) && covBefore(h[child], h[i]) {
					t.Fatalf("shard %d: heap invariant broken at parent %d / child %d", s, i, child)
				}
			}
		}
	}
}
