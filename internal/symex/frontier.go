package symex

import "sync"

// frontier is the sharded set of pending states. Each worker owns one
// shard and treats it as a stack (DFS: children are explored right
// after their parent, keeping the solver's constraint-prefix caches
// hot) or a queue (BFS). A worker whose shard drains steals from the
// back of the longest other shard — the shallowest state there, which
// is the one with the largest unexplored subtree, the classic
// work-stealing heuristic.
//
// A single mutex guards all shards. State transitions (fork, path end)
// are orders of magnitude rarer than interpreted instructions and
// solver work, so the lock is cold; what matters for scaling is that
// each worker keeps its own depth-first run between transitions.
type frontier struct {
	mu   sync.Mutex
	cond *sync.Cond

	shards    [][]*State
	search    SearchKind
	maxStates int

	queued  int // states sitting in shards
	active  int // states currently held by workers
	maxLive int // high-water mark of queued+active
	done    bool
}

func newFrontier(workers int, search SearchKind, maxStates int) *frontier {
	f := &frontier{
		shards:    make([][]*State, workers),
		search:    search,
		maxStates: maxStates,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// put publishes forked states to the worker's shard, returning how many
// pending states it had to drop (the shallowest of the fullest shards)
// to stay under maxStates — the caller accounts those as truncated.
func (f *frontier) put(id int, states []*State) (dropped int64) {
	if len(states) == 0 {
		return 0
	}
	f.mu.Lock()
	f.shards[id] = append(f.shards[id], states...)
	f.queued += len(states)
	if live := f.queued + f.active; live > f.maxLive {
		f.maxLive = live
	}
	for f.maxStates > 0 && f.queued > f.maxStates {
		big := 0
		for i := range f.shards {
			if len(f.shards[i]) > len(f.shards[big]) {
				big = i
			}
		}
		f.shards[big] = f.shards[big][1:]
		f.queued--
		dropped++
	}
	if len(states) > 1 {
		f.cond.Broadcast()
	} else {
		f.cond.Signal()
	}
	f.mu.Unlock()
	return dropped
}

// take returns the next state for worker id, blocking until one is
// available. It returns nil when the exploration is over: every shard
// is empty and no worker holds a state, or a global stop was requested
// (the caller observes that via engine.stopped).
func (f *frontier) take(id int, stopped func() bool) *State {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.done || stopped() {
			f.done = true
			f.cond.Broadcast()
			return nil
		}
		if st := f.popLocked(id); st != nil {
			f.active++
			return st
		}
		if f.active == 0 {
			f.done = true
			f.cond.Broadcast()
			return nil
		}
		f.cond.Wait()
	}
}

// popLocked pops from the worker's own shard, else steals.
func (f *frontier) popLocked(id int) *State {
	own := f.shards[id]
	if len(own) > 0 {
		var st *State
		if f.search == BFS {
			st = own[0]
			f.shards[id] = own[1:]
		} else {
			st = own[len(own)-1]
			f.shards[id] = own[:len(own)-1]
		}
		f.queued--
		return st
	}
	// Steal from the longest other shard. For DFS steal the oldest
	// (shallowest) state so the thief gets a big subtree and the victim
	// keeps its hot deep states; for BFS the front is the oldest anyway.
	victim, best := -1, 0
	for i := range f.shards {
		if i != id && len(f.shards[i]) > best {
			victim, best = i, len(f.shards[i])
		}
	}
	if victim < 0 {
		return nil
	}
	st := f.shards[victim][0]
	f.shards[victim] = f.shards[victim][1:]
	f.queued--
	return st
}

// release retires the state the worker was holding; when the last
// holder releases over empty shards, exploration is complete.
func (f *frontier) release() {
	f.mu.Lock()
	f.active--
	if f.active == 0 && f.queued == 0 {
		f.done = true
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// drain empties every shard (a global limit fired) and returns how many
// pending states were discarded, for truncation accounting.
func (f *frontier) drain() int64 {
	f.mu.Lock()
	n := int64(f.queued)
	for i := range f.shards {
		f.shards[i] = nil
	}
	f.queued = 0
	f.done = true
	f.cond.Broadcast()
	f.mu.Unlock()
	return n
}
