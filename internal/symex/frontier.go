package symex

import "sync"

// frontier is the sharded set of pending states. Each worker owns one
// shard; the order within a shard — and what a thief takes from a
// victim — is delegated to the run's Strategy, so the same
// work-distribution machinery serves DFS, BFS, coverage-weighted and
// random-path exploration. A worker whose shard drains steals from the
// longest other shard, asking the strategy which state to take so
// stealing never demotes a high-priority state.
//
// A single mutex guards all shards and strategy calls (except
// NotifyCovered, which strategies handle lock-free). State transitions
// (fork, path end) are orders of magnitude rarer than interpreted
// instructions and solver work, so the lock is cold; what matters for
// scaling is that each worker keeps its own run between transitions.
type frontier struct {
	mu   sync.Mutex
	cond *sync.Cond

	strat     Strategy
	workers   int
	maxStates int

	queued  int // states sitting in shards
	active  int // states currently held by workers
	maxLive int // high-water mark of queued+active
	done    bool
}

func newFrontier(workers int, strat Strategy, maxStates int) *frontier {
	f := &frontier{
		strat:     strat,
		workers:   workers,
		maxStates: maxStates,
	}
	f.cond = sync.NewCond(&f.mu)
	return f
}

// put publishes forked states to the worker's shard, returning how many
// pending states it had to evict (the strategy's least valuable) to
// stay under maxStates — the caller accounts those as truncated.
func (f *frontier) put(id int, states []*State) (dropped int64) {
	if len(states) == 0 {
		return 0
	}
	f.mu.Lock()
	f.strat.Insert(id, states)
	f.queued += len(states)
	if live := f.queued + f.active; live > f.maxLive {
		f.maxLive = live
	}
	for f.maxStates > 0 && f.queued > f.maxStates {
		if f.strat.Evict() == nil {
			break
		}
		f.queued--
		dropped++
	}
	if len(states) > 1 {
		f.cond.Broadcast()
	} else {
		f.cond.Signal()
	}
	f.mu.Unlock()
	return dropped
}

// take returns the next state for worker id, blocking until one is
// available. It returns nil when the exploration is over: every shard
// is empty and no worker holds a state, or a global stop was requested
// (the caller observes that via engine.stopped).
func (f *frontier) take(id int, stopped func() bool) *State {
	f.mu.Lock()
	defer f.mu.Unlock()
	for {
		if f.done || stopped() {
			f.done = true
			f.cond.Broadcast()
			return nil
		}
		if st := f.popLocked(id); st != nil {
			f.active++
			return st
		}
		if f.active == 0 {
			f.done = true
			f.cond.Broadcast()
			return nil
		}
		f.cond.Wait()
	}
}

// popLocked pops from the worker's own shard, else steals the
// strategy's choice from the longest other shard.
func (f *frontier) popLocked(id int) *State {
	if st := f.strat.Select(id); st != nil {
		f.queued--
		return st
	}
	victim, best := -1, 0
	for i := 0; i < f.workers; i++ {
		if i != id && f.strat.Len(i) > best {
			victim, best = i, f.strat.Len(i)
		}
	}
	if victim < 0 {
		return nil
	}
	st := f.strat.Steal(victim)
	if st != nil {
		f.queued--
	}
	return st
}

// release retires the state the worker was holding; when the last
// holder releases over empty shards, exploration is complete.
func (f *frontier) release() {
	f.mu.Lock()
	f.active--
	if f.active == 0 && f.queued == 0 {
		f.done = true
	}
	f.cond.Broadcast()
	f.mu.Unlock()
}

// drain empties every shard (a global limit fired) and returns how many
// pending states were discarded, for truncation accounting.
func (f *frontier) drain() int64 {
	f.mu.Lock()
	var n int64
	for i := 0; i < f.workers; i++ {
		for f.strat.Select(i) != nil {
			n++
		}
	}
	f.queued -= int(n)
	f.done = true
	f.cond.Broadcast()
	f.mu.Unlock()
	return n
}
