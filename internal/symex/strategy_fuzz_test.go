package symex

import (
	"sync"
	"testing"

	"overify/internal/ir"
)

// fuzzBlocks builds a small CFG pool (b0 -> b1 -> b2 -> b0, b3 isolated)
// so covnew's successor scoring sees real edges.
func fuzzBlocks() []*ir.Block {
	blocks := make([]*ir.Block, 4)
	for i := range blocks {
		blocks[i] = &ir.Block{Name: string(rune('a' + i))}
	}
	for i := 0; i < 3; i++ {
		blocks[i].Instrs = []*ir.Instr{{Op: ir.OpBr, Succs: []*ir.Block{blocks[(i+1)%3]}}}
	}
	return blocks
}

// FuzzStrategyOps drives every strategy through an arbitrary
// Insert/Select/Steal/Evict sequence — with a goroutine hammering the
// coverage map and NotifyCovered the whole time, as exec does — and
// checks the conservation law behind the conformance suite: no state is
// ever lost, duplicated or fabricated, and the covnew heaps keep their
// invariant. Run under -race this also proves NotifyCovered's lock-free
// contract against the frontier-locked mutators.
func FuzzStrategyOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	f.Add([]byte{4, 4, 4, 0, 0, 2, 3, 4, 2, 2, 2, 1, 1, 3, 3})
	f.Add([]byte{255, 128, 64, 32, 16, 8, 4, 2, 1, 0, 0, 0, 9, 9, 9, 9})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const shards = 3
		blocks := fuzzBlocks()
		for _, kind := range Strategies() {
			cov := newCoverage()
			strat := newStrategy(kind, shards, 99, cov)

			// The exec-side writer: covers blocks and notifies, racing
			// the (mutex-serialized, as in the real frontier) mutators.
			var mu sync.Mutex
			done := make(chan struct{})
			stop := make(chan struct{})
			go func() {
				defer close(done)
				for i := 0; ; i++ {
					select {
					case <-stop:
						return
					default:
					}
					b := blocks[i%len(blocks)]
					cov.cover(b)
					strat.NotifyCovered(b)
				}
			}()

			nextID := int64(0)
			pending := map[int64]bool{}
			removed := map[int64]bool{}
			takeOut := func(st *State, how string) {
				if st == nil {
					return
				}
				if removed[st.ID] {
					t.Fatalf("%s: %s returned state %d twice", kind, how, st.ID)
				}
				if !pending[st.ID] {
					t.Fatalf("%s: %s fabricated state %d", kind, how, st.ID)
				}
				delete(pending, st.ID)
				removed[st.ID] = true
			}
			for _, op := range ops {
				shard := int(op>>4) % shards
				mu.Lock()
				switch op % 4 {
				case 0: // insert 1..3 states
					n := int(op>>2)%3 + 1
					states := make([]*State, n)
					for i := range states {
						nextID++
						states[i] = mkState(nextID, blocks[int(nextID)%len(blocks)])
						states[i].Forks = int(op) % 5
						pending[nextID] = true
					}
					strat.Insert(shard, states)
				case 1:
					takeOut(strat.Select(shard), "Select")
				case 2:
					takeOut(strat.Steal(shard), "Steal")
				case 3:
					takeOut(strat.Evict(), "Evict")
				}
				mu.Unlock()
			}
			close(stop)
			<-done

			// Drain and settle the books: pending + removed must exactly
			// cover everything ever inserted.
			mu.Lock()
			for s := 0; s < shards; s++ {
				for st := strat.Select(s); st != nil; st = strat.Select(s) {
					takeOut(st, "drain")
				}
				if strat.Len(s) != 0 {
					t.Fatalf("%s: shard %d still reports %d states after drain", kind, s, strat.Len(s))
				}
			}
			mu.Unlock()
			if len(pending) != 0 {
				t.Fatalf("%s: %d states lost (never returned)", kind, len(pending))
			}
			if int64(len(removed)) != nextID {
				t.Fatalf("%s: inserted %d states, got back %d", kind, nextID, len(removed))
			}
		}
	})
}

// FuzzCovnewHeapInvariant replays op sequences against covnew alone and
// validates the per-shard heap invariant after every mutation, with
// coverage growing mid-sequence exactly as NotifyCovered delivers it.
func FuzzCovnewHeapInvariant(f *testing.F) {
	f.Add([]byte{0, 0, 0, 1, 5, 0, 2, 9, 0, 1})
	f.Add([]byte{7, 3, 128, 9, 200, 1, 0, 0, 64, 2})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const shards = 2
		blocks := fuzzBlocks()
		cov := newCoverage()
		strat := newStrategy(CovNew, shards, 0, cov).(*covnewStrategy)
		nextID := int64(0)
		for _, op := range ops {
			shard := int(op>>4) % shards
			switch op % 5 {
			case 0, 1:
				nextID++
				strat.Insert(shard, []*State{mkState(nextID, blocks[int(op)%len(blocks)])})
			case 2:
				strat.Select(shard)
			case 3:
				strat.Steal(shard)
			default:
				b := blocks[int(op>>2)%len(blocks)]
				cov.cover(b)
				strat.NotifyCovered(b)
			}
			checkCovHeaps(t, strat)
		}
	})
}

// FuzzCoverageMap checks the map's arithmetic under concurrent covers:
// distinct blocks covered == count, covered() agrees with the ops.
func FuzzCoverageMap(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1, 2, 3})
	f.Add([]byte{9, 9, 9, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		pool := make([]*ir.Block, 8)
		for i := range pool {
			pool[i] = &ir.Block{Name: string(rune('A' + i))}
		}
		cov := newCoverage()
		// Two goroutines race the same op stream; cover must stay
		// idempotent and the count must match the distinct set.
		var wg sync.WaitGroup
		for g := 0; g < 2; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for _, op := range ops {
					cov.cover(pool[int(op)%len(pool)])
				}
			}()
		}
		wg.Wait()
		distinct := map[*ir.Block]bool{}
		for _, op := range ops {
			distinct[pool[int(op)%len(pool)]] = true
		}
		if cov.count() != int64(len(distinct)) {
			t.Fatalf("count = %d, want %d distinct", cov.count(), len(distinct))
		}
		for _, b := range pool {
			if cov.covered(b) != distinct[b] {
				t.Fatalf("covered(%s) = %v, want %v", b.Name, cov.covered(b), distinct[b])
			}
		}
	})
}
