package symex_test

import (
	"bytes"
	"fmt"
	"sort"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// newVerifyEngine builds an engine + entry args exactly the way
// core.Verify does, so codec tests exercise the production shape.
func newVerifyEngine(c *core.Compiled, n int, opts symex.Options) (*symex.Engine, []symex.SymVal) {
	eng := symex.NewEngine(c.Mod, opts)
	buf := eng.SymbolicBuffer("input", n, true)
	length := eng.IntArg(ir.I32, uint64(n))
	return eng, []symex.SymVal{buf, length}
}

// distSim runs the split → encode → decode-in-other-process → explore →
// merge pipeline against nWorkers freshly compiled module instances
// (separate compiles stand in for separate processes: distinct module
// pointers, distinct builders). It returns the merged report and the
// covered-block union size.
func distSim(t testing.TB, p coreutils.Program, level pipeline.Level, n, want, nWorkers int) (*symex.Report, int) {
	cA, err := core.CompileProgram(p, level)
	if err != nil {
		t.Fatalf("%s at %s: %v", p.Name, level, err)
	}
	engA, args := newVerifyEngine(cA, n, symex.Options{})
	states, err := engA.Split("umain", args, nil, want)
	if err != nil {
		t.Fatalf("split: %v", err)
	}

	// Deterministic round-robin sharding, like the coordinator.
	shards := make([][]*symex.State, nWorkers)
	for j, st := range states {
		shards[j%nWorkers] = append(shards[j%nWorkers], st)
	}

	covered := make(map[string]bool)
	reports := []*symex.Report{engA.PartialReport()}
	for _, sh := range shards {
		data, err := engA.EncodeStates(sh)
		if err != nil {
			t.Fatalf("encode: %v", err)
		}
		cW, err := core.CompileProgram(p, level)
		if err != nil {
			t.Fatalf("worker compile: %v", err)
		}
		engW := symex.NewEngine(cW.Mod, symex.Options{})
		dec, err := engW.DecodeStates(data)
		if err != nil {
			t.Fatalf("decode: %v", err)
		}
		if len(dec) != len(sh) {
			t.Fatalf("decoded %d states, sent %d", len(dec), len(sh))
		}
		reports = append(reports, engW.RunStates(dec))
		for _, name := range engW.CoveredBlockNames() {
			covered[name] = true
		}
	}
	for _, name := range engA.CoveredBlockNames() {
		covered[name] = true
	}
	merged := symex.MergeReports(reports...)
	merged.Stats.CoveredBlocks = len(covered)
	return merged, len(covered)
}

// assertEquivalent compares every schedule-invariant verdict field: the
// counters, the covered-block set size, and the bug identities.
// Concrete bug inputs may differ (any model reproduces; model-reuse
// history is schedule-dependent), matching the parallel-determinism
// suite's contract.
func assertEquivalent(t *testing.T, label string, serial, dist *symex.Report) {
	t.Helper()
	s, d := serial.Stats, dist.Stats
	type row struct {
		name string
		a, b int64
	}
	for _, r := range []row{
		{"paths", s.Paths, d.Paths},
		{"errorPaths", s.ErrorPaths, d.ErrorPaths},
		{"truncated", s.TruncatedPaths, d.TruncatedPaths},
		{"instrs", s.Instrs, d.Instrs},
		{"checksSkipped", s.ChecksSkipped, d.ChecksSkipped},
		{"covered", int64(s.CoveredBlocks), int64(d.CoveredBlocks)},
		{"queries", s.SolverStats.Queries, d.SolverStats.Queries},
		{"sat", s.SolverStats.Sat, d.SolverStats.Sat},
		{"unsat", s.SolverStats.Unsat, d.SolverStats.Unsat},
	} {
		if r.a != r.b {
			t.Errorf("%s: %s: serial %d != distributed %d", label, r.name, r.a, r.b)
		}
	}
	sk, dk := bugKeys(serial), bugKeys(dist)
	if fmt.Sprint(sk) != fmt.Sprint(dk) {
		t.Errorf("%s: bug sets differ:\nserial      %v\ndistributed %v", label, sk, dk)
	}
}

func serialBaseline(t testing.TB, p coreutils.Program, level pipeline.Level, n int) *symex.Report {
	c, err := core.CompileProgram(p, level)
	if err != nil {
		t.Fatalf("%s at %s: %v", p.Name, level, err)
	}
	eng, args := newVerifyEngine(c, n, symex.Options{})
	rep, err := eng.Run("umain", args, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	rep.Stats.CoveredBlocks = len(eng.CoveredBlockNames())
	return rep
}

// TestStateCodecRoundTripExploration is the codec's contract:
// Decode(Encode(s)) explores identically. A serial baseline is compared
// against split → ship to 2 simulated worker processes → merge, across
// structurally diverse corpus programs.
func TestStateCodecRoundTripExploration(t *testing.T) {
	progs := []string{"echo", "wc", "tr", "rev", "uniq"}
	if testing.Short() {
		progs = progs[:3]
	}
	for _, name := range progs {
		p, ok := coreutils.Get(name)
		if !ok {
			t.Fatalf("no corpus program %q", name)
		}
		for _, level := range []pipeline.Level{pipeline.O0, pipeline.OVerify} {
			label := fmt.Sprintf("%s@%s", name, level)
			serial := serialBaseline(t, p, level, 3)
			dist, _ := distSim(t, p, level, 3, 8, 2)
			assertEquivalent(t, label, serial, dist)
		}
	}
}

// TestStateCodecSingleWalk extends the PR 4 walk-counter guard to the
// codec: encoding a batch expands each distinct reachable DAG node
// exactly once — batch-wide, cheaper than once per state — and never
// falls back to a var-set DAG walk.
func TestStateCodecSingleWalk(t *testing.T) {
	// Pick the first corpus program whose O0 exploration still has >= 2
	// pending states after a 4-state split (unsliced O0 keeps all the
	// branching around).
	var states []*symex.State
	var eng *symex.Engine
	for _, name := range []string{"wc", "tr", "grep-v", "uniq", "cksum"} {
		p, ok := coreutils.Get(name)
		if !ok {
			continue
		}
		c, err := core.CompileProgram(p, pipeline.O0)
		if err != nil {
			t.Fatal(err)
		}
		e, args := newVerifyEngine(c, 3, symex.Options{})
		s, err := e.Split("umain", args, nil, 4)
		if err != nil {
			t.Fatal(err)
		}
		if len(s) >= 2 {
			eng, states = e, s
			break
		}
	}
	if eng == nil {
		t.Fatal("no corpus program yielded >= 2 split states")
	}

	distinct := countReachableNodes(states)
	vw0 := expr.VarSetWalks()
	cv0 := symex.CodecExprVisits()
	if _, err := eng.EncodeStates(states); err != nil {
		t.Fatal(err)
	}
	if d := symex.CodecExprVisits() - cv0; d != int64(distinct) {
		t.Errorf("encoder expanded %d nodes, batch has %d distinct reachable nodes", d, distinct)
	}
	if d := expr.VarSetWalks() - vw0; d != 0 {
		t.Errorf("encoding performed %d var-set DAG walks, want 0", d)
	}
}

// countReachableNodes replicates the encoder's reachability (PC, frame
// locals, global objects, cells) with an independent walker.
func countReachableNodes(states []*symex.State) int {
	seenE := make(map[*expr.Expr]bool)
	seenO := make(map[*symex.MemObject]bool)
	var walkE func(x *expr.Expr)
	var walkO func(o *symex.MemObject)
	walkV := func(v symex.SymVal) {
		if v.E != nil {
			walkE(v.E)
		}
		if v.Off != nil {
			walkE(v.Off)
		}
		if v.Obj != nil {
			walkO(v.Obj)
		}
	}
	walkE = func(x *expr.Expr) {
		if seenE[x] {
			return
		}
		seenE[x] = true
		for _, a := range x.Args {
			walkE(a)
		}
	}
	walkO = func(o *symex.MemObject) {
		if seenO[o] {
			return
		}
		seenO[o] = true
		for _, c := range o.Cells {
			walkV(c)
		}
	}
	for _, st := range states {
		for _, c := range st.PC {
			walkE(c)
		}
		for _, o := range st.Globals {
			walkO(o)
		}
		for _, f := range st.Frames {
			for _, v := range f.Locals {
				walkV(v)
			}
		}
	}
	return len(seenE)
}

// TestStateCodecCorruptedFrames: truncations and flips must produce
// errors (or at worst a clean decode of a coincidentally valid frame),
// never a panic, and truncations must always be rejected.
func TestStateCodecCorruptedFrames(t *testing.T) {
	p, _ := coreutils.Get("tr")
	c, err := core.CompileProgram(p, pipeline.OVerify)
	if err != nil {
		t.Fatal(err)
	}
	eng, args := newVerifyEngine(c, 3, symex.Options{})
	states, err := eng.Split("umain", args, nil, 6)
	if err != nil {
		t.Fatal(err)
	}
	data, err := eng.EncodeStates(states)
	if err != nil {
		t.Fatal(err)
	}

	fresh := func() *symex.Engine {
		c2, err := core.CompileProgram(p, pipeline.OVerify)
		if err != nil {
			t.Fatal(err)
		}
		return symex.NewEngine(c2.Mod, symex.Options{})
	}

	// Sanity: the pristine frame decodes.
	if _, err := fresh().DecodeStates(data); err != nil {
		t.Fatalf("pristine frame rejected: %v", err)
	}
	// Every truncation must be rejected.
	for _, k := range []int{0, 1, 3, len(data) / 4, len(data) / 2, len(data) - 1} {
		if _, err := fresh().DecodeStates(data[:k]); err == nil {
			t.Errorf("truncation to %d bytes accepted", k)
		}
	}
	// Trailing garbage must be rejected.
	if _, err := fresh().DecodeStates(append(append([]byte(nil), data...), 0xff)); err == nil {
		t.Errorf("trailing garbage accepted")
	}
	// Bit flips across the frame must never panic (DecodeStates converts
	// builder panics to errors; a flip that still decodes cleanly is fine).
	for pos := 0; pos < len(data); pos += 7 {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x41
		_, _ = fresh().DecodeStates(mut) // must not panic
	}
}

// FuzzStateCodecRoundTrip is the differential fuzzer: for a fuzzed
// (program, input size, split size) the split+ship+merge pipeline must
// match the serial baseline's invariant counters and bug identities,
// and fuzz-mutated frames must never panic the decoder.
func FuzzStateCodecRoundTrip(f *testing.F) {
	progs := []string{"echo", "wc", "tr", "rev", "seq"}
	f.Add(uint8(0), uint8(3), uint8(4), []byte{})
	f.Add(uint8(1), uint8(2), uint8(8), []byte{0x00, 0x41})
	f.Add(uint8(2), uint8(3), uint8(1), []byte{0xff})
	f.Add(uint8(3), uint8(4), uint8(16), []byte{0x10, 0x20, 0x30})
	f.Fuzz(func(t *testing.T, pi, n, want uint8, corrupt []byte) {
		p, ok := coreutils.Get(progs[int(pi)%len(progs)])
		if !ok {
			t.Skip()
		}
		nb := 2 + int(n)%3     // 2..4 symbolic bytes
		ws := 1 + int(want)%12 // split size 1..12
		serial := serialBaseline(t, p, pipeline.OVerify, nb)
		dist, _ := distSim(t, p, pipeline.OVerify, nb, ws, 2)
		assertEquivalent(t, fmt.Sprintf("%s n=%d want=%d", p.Name, nb, ws), serial, dist)

		// Corruption leg: mutate a real frame with the fuzz bytes.
		c, err := core.CompileProgram(p, pipeline.OVerify)
		if err != nil {
			t.Fatal(err)
		}
		eng, args := newVerifyEngine(c, nb, symex.Options{})
		states, err := eng.Split("umain", args, nil, ws)
		if err != nil {
			t.Fatal(err)
		}
		data, err := eng.EncodeStates(states)
		if err != nil {
			t.Fatal(err)
		}
		mut := append([]byte(nil), data...)
		for i, b := range corrupt {
			if len(mut) == 0 {
				break
			}
			mut[(i*131+int(b))%len(mut)] ^= b
		}
		c2, err := core.CompileProgram(p, pipeline.OVerify)
		if err != nil {
			t.Fatal(err)
		}
		_, _ = symex.NewEngine(c2.Mod, symex.Options{}).DecodeStates(mut) // must not panic
	})
}

// TestSplitExhaustsSmallPrograms: when the requested shard count
// exceeds the whole exploration, Split finishes the program itself and
// the merge still matches (the degenerate cluster).
func TestSplitExhaustsSmallPrograms(t *testing.T) {
	p, _ := coreutils.Get("echo")
	serial := serialBaseline(t, p, pipeline.OVerify, 2)
	dist, _ := distSim(t, p, pipeline.OVerify, 2, 1<<20, 2)
	assertEquivalent(t, "echo exhaust", serial, dist)
}

// TestMergeBugsDeterministicOrder pins that MergeReports' bug list is
// sorted and deduplicated regardless of input order.
func TestMergeBugsDeterministicOrder(t *testing.T) {
	a := &symex.Report{Bugs: []symex.Bug{{Kind: 1, Msg: "b", Where: "w2"}, {Kind: 0, Msg: "a", Where: "w1", Input: []byte{9}}}}
	b := &symex.Report{Bugs: []symex.Bug{{Kind: 0, Msg: "a", Where: "w1", Input: []byte{3}}}}
	m1 := symex.MergeReports(a, b)
	m2 := symex.MergeReports(b, a)
	if len(m1.Bugs) != 2 || len(m2.Bugs) != 2 {
		t.Fatalf("merged bug counts: %d, %d (want 2)", len(m1.Bugs), len(m2.Bugs))
	}
	for i := range m1.Bugs {
		x, y := m1.Bugs[i], m2.Bugs[i]
		if x.Kind != y.Kind || x.Msg != y.Msg || x.Where != y.Where || !bytes.Equal(x.Input, y.Input) {
			t.Fatalf("merge order-dependent: %+v vs %+v", m1.Bugs, m2.Bugs)
		}
	}
	if !sort.SliceIsSorted(m1.Bugs, func(i, j int) bool {
		return m1.Bugs[i].Kind < m1.Bugs[j].Kind
	}) {
		t.Fatalf("merged bugs unsorted: %+v", m1.Bugs)
	}
}
