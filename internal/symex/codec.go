package symex

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"

	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/solver"
)

// State wire codec: EncodeStates flattens a batch of frontier states
// into a compact, self-contained byte frame; DecodeStates re-interns it
// into another process's engine so exploration continues identically.
//
// The format leans on the same structure the solver's constant-factor
// work does. The constraint DAG is emitted as one batch-wide node table
// in ascending builder-id order — children always precede parents, so
// the table is its own topological order and the decoder rebuilds each
// node with a single Builder call, re-interning it (and re-firing the
// canonical simplifications) in the receiver's DAG. Memory objects go
// through a batch-wide object table in two phases (headers, then
// cells), which preserves aliasing within a state and read-only sharing
// across states, and tolerates self-referential pointer cells. IR
// references cross the wire by stable identity: functions and globals
// by name, blocks by index, instructions by (block, index) — the
// receiving process compiled the same module, so the shapes match.
// Carried partitions are not serialized: group fingerprints are
// builder-local, so the decoder rebuilds each state's partition from
// its re-interned path condition.
//
// Everything is length-checked: corrupted or truncated frames produce
// errors, never panics. Encoding visits each distinct DAG node exactly
// once per batch — cheaper than once per state — which
// CodecExprVisits() exposes for the walk-counter guard tests.

const (
	codecMagic   = "OVSX"
	codecVersion = 1
)

// codecExprVisits counts DAG-node expansions performed by encoders, the
// codec's analogue of expr.VarSetWalks: tests pin it to exactly one
// visit per distinct reachable node per encoded batch.
var codecExprVisits atomic.Int64

// CodecExprVisits returns the total DAG-node expansions encoders have
// performed in this process.
func CodecExprVisits() int64 { return codecExprVisits.Load() }

// SymVal wire tags.
const (
	svAbsent = 0 // zero SymVal (void results)
	svInt    = 1 // integer expression
	svPtr    = 2 // pointer: object reference + offset expression
)

// ---------------------------------------------------------------------
// Encoder

type encWriter struct{ buf []byte }

func (w *encWriter) u(v uint64)   { w.buf = binary.AppendUvarint(w.buf, v) }
func (w *encWriter) b(v byte)     { w.buf = append(w.buf, v) }
func (w *encWriter) s(s string)   { w.u(uint64(len(s))); w.buf = append(w.buf, s...) }
func (w *encWriter) raw(p []byte) { w.buf = append(w.buf, p...) }

type encoder struct {
	w       encWriter
	vars    map[*expr.Var]int
	varList []*expr.Var
	nodes   map[*expr.Expr]int
	objs    map[*MemObject]int
	objList []*MemObject
	instrIx map[*ir.Function]map[*ir.Instr][2]int
	err     error
}

// EncodeStates serializes a batch of states from this engine into one
// wire frame. The engine's ordered input variables lead the frame so
// the decoding engine concretizes bug inputs identically.
func (e *Engine) EncodeStates(states []*State) ([]byte, error) {
	enc := &encoder{
		vars:    make(map[*expr.Var]int),
		nodes:   make(map[*expr.Expr]int),
		objs:    make(map[*MemObject]int),
		instrIx: make(map[*ir.Function]map[*ir.Instr][2]int),
	}
	for _, v := range e.inputVars {
		enc.vars[v] = len(enc.varList)
		enc.varList = append(enc.varList, v)
	}
	nInput := len(enc.varList)

	// Single pass over everything reachable: collect expression nodes
	// (memoized batch-wide) and memory objects in deterministic order.
	table := enc.collect(states)
	if enc.err != nil {
		return nil, enc.err
	}

	enc.w.raw([]byte(codecMagic))
	enc.w.b(codecVersion)
	enc.w.u(uint64(nInput))
	enc.w.u(uint64(len(enc.varList)))
	for _, v := range enc.varList {
		enc.w.s(v.Name)
		enc.w.u(uint64(v.Bits))
		enc.w.u(uint64(v.Idx))
	}

	enc.w.u(uint64(len(table)))
	for _, x := range table {
		enc.emitNode(x)
	}

	enc.w.u(uint64(len(enc.objList)))
	for _, o := range enc.objList {
		enc.w.s(o.Name)
		enc.emitType(o.Elem)
		enc.w.u(uint64(o.Count))
		if o.ReadOnly {
			enc.w.b(1)
		} else {
			enc.w.b(0)
		}
		enc.w.u(uint64(len(o.Cells)))
	}
	for _, o := range enc.objList {
		for _, c := range o.Cells {
			enc.emitSymVal(c)
		}
	}

	enc.w.u(uint64(len(states)))
	for _, st := range states {
		enc.emitState(st)
	}
	if enc.err != nil {
		return nil, enc.err
	}
	return enc.w.buf, nil
}

// collect walks the batch once: every reachable expression node lands
// in the memo (and is counted by codecExprVisits), every reachable
// memory object joins the object table in first-encounter order. The
// node table is then the memo's keys sorted by builder id — children
// have smaller ids than parents, so ascending id is a topological
// order and the decoder needs no second walk.
func (enc *encoder) collect(states []*State) []*expr.Expr {
	for _, st := range states {
		for _, c := range st.PC {
			enc.visitExpr(c)
		}
		for _, g := range sortedGlobals(st.Globals) {
			enc.visitObj(st.Globals[g])
		}
		for _, f := range st.Frames {
			for _, k := range sortedLocalKeys(enc, f) {
				sv := f.Locals[k]
				enc.visitSymVal(sv)
			}
		}
	}
	table := make([]*expr.Expr, 0, len(enc.nodes))
	for x := range enc.nodes {
		table = append(table, x)
	}
	sort.Slice(table, func(i, j int) bool { return table[i].ID() < table[j].ID() })
	for i, x := range table {
		enc.nodes[x] = i
	}
	return table
}

func (enc *encoder) visitExpr(x *expr.Expr) {
	if x == nil {
		return
	}
	if _, ok := enc.nodes[x]; ok {
		return
	}
	enc.nodes[x] = -1 // placeholder; final index assigned after the sort
	codecExprVisits.Add(1)
	if x.Kind == expr.KVar {
		if _, ok := enc.vars[x.V]; !ok {
			enc.vars[x.V] = len(enc.varList)
			enc.varList = append(enc.varList, x.V)
		}
		return
	}
	for _, a := range x.Args {
		enc.visitExpr(a)
	}
}

func (enc *encoder) visitSymVal(v SymVal) {
	enc.visitExpr(v.E)
	enc.visitExpr(v.Off)
	if v.Obj != nil {
		enc.visitObj(v.Obj)
	}
}

func (enc *encoder) visitObj(o *MemObject) {
	if o == nil {
		return
	}
	if _, ok := enc.objs[o]; ok {
		return
	}
	enc.objs[o] = len(enc.objList)
	enc.objList = append(enc.objList, o)
	for _, c := range o.Cells {
		enc.visitSymVal(c)
	}
}

func (enc *encoder) emitNode(x *expr.Expr) {
	enc.w.b(byte(x.Kind))
	enc.w.u(uint64(x.Bits))
	switch x.Kind {
	case expr.KConst:
		enc.w.u(x.Val)
	case expr.KVar:
		enc.w.u(uint64(enc.vars[x.V]))
	case expr.KBin, expr.KCmp:
		enc.w.u(uint64(x.Op))
		enc.w.u(uint64(enc.nodes[x.Args[0]]))
		enc.w.u(uint64(enc.nodes[x.Args[1]]))
	case expr.KSelect:
		enc.w.u(uint64(enc.nodes[x.Args[0]]))
		enc.w.u(uint64(enc.nodes[x.Args[1]]))
		enc.w.u(uint64(enc.nodes[x.Args[2]]))
	case expr.KCast:
		enc.w.u(uint64(x.Op))
		enc.w.u(uint64(enc.nodes[x.Args[0]]))
	case expr.KRead:
		enc.w.u(uint64(len(x.Table)))
		for _, v := range x.Table {
			enc.w.u(v)
		}
		enc.w.u(uint64(enc.nodes[x.Args[0]]))
	default:
		enc.fail(fmt.Errorf("symex: codec: unknown expr kind %d", x.Kind))
	}
}

func (enc *encoder) emitType(t ir.Type) {
	switch t := t.(type) {
	case ir.IntType:
		enc.w.b(0)
		enc.w.u(uint64(t.Bits))
	case ir.PtrType:
		enc.w.b(1)
		enc.emitType(t.Elem)
	case ir.ArrayType:
		enc.w.b(2)
		enc.emitType(t.Elem)
		enc.w.u(uint64(t.Len))
	case ir.VoidType:
		enc.w.b(3)
	default:
		enc.fail(fmt.Errorf("symex: codec: unencodable type %v", t))
	}
}

func (enc *encoder) emitSymVal(v SymVal) {
	switch {
	case v.IsPtr:
		enc.w.b(svPtr)
		if v.Obj == nil {
			enc.w.u(0)
		} else {
			enc.w.u(uint64(enc.objs[v.Obj]) + 1)
		}
		enc.emitExprRef(v.Off)
	case v.E != nil:
		enc.w.b(svInt)
		enc.w.u(uint64(enc.nodes[v.E]))
	default:
		enc.w.b(svAbsent)
	}
}

// emitExprRef writes an optional expression reference (index+1, 0=nil).
func (enc *encoder) emitExprRef(x *expr.Expr) {
	if x == nil {
		enc.w.u(0)
		return
	}
	enc.w.u(uint64(enc.nodes[x]) + 1)
}

func (enc *encoder) emitState(st *State) {
	enc.w.u(uint64(st.ID))
	enc.w.u(uint64(st.Forks))
	enc.w.u(uint64(len(st.PC)))
	for _, c := range st.PC {
		enc.w.u(uint64(enc.nodes[c]))
	}

	globals := sortedGlobals(st.Globals)
	enc.w.u(uint64(len(globals)))
	for _, g := range globals {
		enc.w.s(g.Name)
		enc.w.u(uint64(enc.objs[st.Globals[g]]))
	}

	enc.w.u(uint64(len(st.Frames)))
	for _, f := range st.Frames {
		enc.emitFrame(st, f)
	}
}

func (enc *encoder) emitFrame(st *State, f *Frame) {
	enc.w.s(f.Fn.Name)
	enc.w.u(uint64(blockIndex(f.Fn, f.Block, enc)))
	if f.Prev == nil {
		enc.w.u(0)
	} else {
		enc.w.u(uint64(blockIndex(f.Fn, f.Prev, enc)) + 1)
	}
	enc.w.u(uint64(f.Idx))
	if f.Caller == nil {
		enc.w.b(0)
	} else {
		// The awaiting call instruction lives in the *caller's* function;
		// the decoder resolves it against the previous frame.
		bi, ii, ok := enc.instrIndex(f.Caller)
		if !ok {
			enc.fail(fmt.Errorf("symex: codec: caller instruction not found in %s", f.Fn.Name))
			return
		}
		enc.w.b(1)
		enc.w.u(uint64(bi))
		enc.w.u(uint64(ii))
	}

	keys := sortedLocalKeys(enc, f)
	enc.w.u(uint64(len(keys)))
	for _, k := range keys {
		switch k := k.(type) {
		case *ir.Param:
			enc.w.b(0)
			enc.w.u(uint64(k.Idx))
		case *ir.Instr:
			bi, ii, ok := enc.instrIndex(k)
			if !ok {
				enc.fail(fmt.Errorf("symex: codec: local key instruction not in %s", f.Fn.Name))
				return
			}
			enc.w.b(1)
			enc.w.u(uint64(bi))
			enc.w.u(uint64(ii))
		default:
			enc.fail(fmt.Errorf("symex: codec: unencodable local key %T", k))
			return
		}
		enc.emitSymVal(f.Locals[k])
	}
}

func (enc *encoder) fail(err error) {
	if enc.err == nil {
		enc.err = err
	}
}

// instrIndex locates in within its owning function, via a lazily built
// per-function index.
func (enc *encoder) instrIndex(in *ir.Instr) (block, idx int, ok bool) {
	fn := in.Blk.Fn
	ix := enc.instrIx[fn]
	if ix == nil {
		ix = make(map[*ir.Instr][2]int)
		for bi, b := range fn.Blocks {
			for ii, x := range b.Instrs {
				ix[x] = [2]int{bi, ii}
			}
		}
		enc.instrIx[fn] = ix
	}
	pos, ok := ix[in]
	return pos[0], pos[1], ok
}

func blockIndex(fn *ir.Function, b *ir.Block, enc *encoder) int {
	for i, x := range fn.Blocks {
		if x == b {
			return i
		}
	}
	enc.fail(fmt.Errorf("symex: codec: block %s not in %s", b.Name, fn.Name))
	return 0
}

// sortedGlobals orders a state's globals map by name so the encoding
// is deterministic.
func sortedGlobals(m map[*ir.Global]*MemObject) []*ir.Global {
	out := make([]*ir.Global, 0, len(m))
	for g := range m {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// sortedLocalKeys orders a frame's locals deterministically: params by
// position, then instructions by (block, index).
func sortedLocalKeys(enc *encoder, f *Frame) []ir.Value {
	keys := make([]ir.Value, 0, len(f.Locals))
	for k := range f.Locals {
		keys = append(keys, k)
	}
	rank := func(v ir.Value) (int, int, int) {
		switch v := v.(type) {
		case *ir.Param:
			return 0, v.Idx, 0
		case *ir.Instr:
			bi, ii, _ := enc.instrIndex(v)
			return 1, bi, ii
		default:
			return 2, 0, 0
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a0, a1, a2 := rank(keys[i])
		b0, b1, b2 := rank(keys[j])
		if a0 != b0 {
			return a0 < b0
		}
		if a1 != b1 {
			return a1 < b1
		}
		return a2 < b2
	})
	return keys
}

// ---------------------------------------------------------------------
// Decoder

type decReader struct {
	data []byte
	pos  int
}

func (r *decReader) remaining() int { return len(r.data) - r.pos }

func (r *decReader) u() (uint64, error) {
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		return 0, fmt.Errorf("symex: codec: truncated varint at %d", r.pos)
	}
	r.pos += n
	return v, nil
}

// count reads a length whose elements occupy at least min bytes each,
// rejecting counts the remaining frame cannot possibly hold (the
// corrupted-frame allocation guard).
func (r *decReader) count(min int) (int, error) {
	v, err := r.u()
	if err != nil {
		return 0, err
	}
	if min < 1 {
		min = 1
	}
	if v > uint64(r.remaining()/min)+1 {
		return 0, fmt.Errorf("symex: codec: implausible count %d at %d", v, r.pos)
	}
	return int(v), nil
}

func (r *decReader) b() (byte, error) {
	if r.pos >= len(r.data) {
		return 0, fmt.Errorf("symex: codec: truncated frame at %d", r.pos)
	}
	c := r.data[r.pos]
	r.pos++
	return c, nil
}

func (r *decReader) s() (string, error) {
	n, err := r.count(1)
	if err != nil {
		return "", err
	}
	if r.remaining() < n {
		return "", fmt.Errorf("symex: codec: truncated string at %d", r.pos)
	}
	s := string(r.data[r.pos : r.pos+n])
	r.pos += n
	return s, nil
}

type decoder struct {
	e     *Engine
	r     decReader
	vars  []*expr.Var
	nodes []*expr.Expr
	objs  []*MemObject
}

// DecodeStates rebuilds a wire frame produced by EncodeStates into
// live states of this engine: expressions re-interned through the
// engine's builder, memory objects reconstructed with their aliasing,
// IR references resolved against the engine's module (which must be
// the same compiled program), and partitions rebuilt from the decoded
// path conditions. The frame's input-variable list is installed as the
// engine's, so bug inputs concretize identically; the engine's state-id
// counter advances past every decoded id so local forks never collide.
// A corrupted or truncated frame yields an error, never a panic.
func (e *Engine) DecodeStates(data []byte) (states []*State, err error) {
	// The builder panics on malformed structure (width mismatches and
	// the like); a corrupted frame must surface as an error instead.
	defer func() {
		if rec := recover(); rec != nil {
			states, err = nil, fmt.Errorf("symex: codec: corrupt frame: %v", rec)
		}
	}()
	d := &decoder{e: e, r: decReader{data: data}}
	if len(data) < len(codecMagic)+1 || string(data[:len(codecMagic)]) != codecMagic {
		return nil, fmt.Errorf("symex: codec: bad magic")
	}
	d.r.pos = len(codecMagic)
	ver, err := d.r.b()
	if err != nil {
		return nil, err
	}
	if ver != codecVersion {
		return nil, fmt.Errorf("symex: codec: version %d, want %d", ver, codecVersion)
	}
	if err := d.readVars(); err != nil {
		return nil, err
	}
	if err := d.readNodes(); err != nil {
		return nil, err
	}
	if err := d.readObjects(); err != nil {
		return nil, err
	}
	n, err := d.r.count(4)
	if err != nil {
		return nil, err
	}
	states = make([]*State, 0, n)
	maxID := int64(-1)
	for i := 0; i < n; i++ {
		st, err := d.readState()
		if err != nil {
			return nil, err
		}
		if st.ID > maxID {
			maxID = st.ID
		}
		states = append(states, st)
	}
	if d.r.remaining() != 0 {
		return nil, fmt.Errorf("symex: codec: %d trailing bytes", d.r.remaining())
	}
	for {
		cur := e.nextState.Load()
		if maxID < cur || e.nextState.CompareAndSwap(cur, maxID+1) {
			break
		}
	}
	return states, nil
}

func (d *decoder) readVars() error {
	nInput, err := d.r.u()
	if err != nil {
		return err
	}
	n, err := d.r.count(3)
	if err != nil {
		return err
	}
	if nInput > uint64(n) {
		return fmt.Errorf("symex: codec: %d input vars of %d", nInput, n)
	}
	d.vars = make([]*expr.Var, n)
	inputs := make([]*expr.Var, 0, nInput)
	for i := 0; i < n; i++ {
		name, err := d.r.s()
		if err != nil {
			return err
		}
		bits, err := d.r.u()
		if err != nil {
			return err
		}
		idx, err := d.r.u()
		if err != nil {
			return err
		}
		if bits == 0 || bits > 64 {
			return fmt.Errorf("symex: codec: var %q has %d bits", name, bits)
		}
		node := d.e.B.Var(&expr.Var{Name: name, Bits: int(bits), Idx: int(idx)})
		d.vars[i] = node.V
		if i < int(nInput) {
			inputs = append(inputs, node.V)
		}
	}
	d.e.inputVars = inputs
	return nil
}

func (d *decoder) readNodes() error {
	n, err := d.r.count(2)
	if err != nil {
		return err
	}
	d.nodes = make([]*expr.Expr, 0, n)
	for i := 0; i < n; i++ {
		x, err := d.readNode()
		if err != nil {
			return err
		}
		d.nodes = append(d.nodes, x)
	}
	return nil
}

// arg resolves a node-table reference; only already-decoded indices are
// valid (the table is topologically ordered).
func (d *decoder) arg() (*expr.Expr, error) {
	i, err := d.r.u()
	if err != nil {
		return nil, err
	}
	if i >= uint64(len(d.nodes)) {
		return nil, fmt.Errorf("symex: codec: forward node ref %d at %d", i, d.r.pos)
	}
	return d.nodes[i], nil
}

func (d *decoder) readNode() (*expr.Expr, error) {
	kind, err := d.r.b()
	if err != nil {
		return nil, err
	}
	bits64, err := d.r.u()
	if err != nil {
		return nil, err
	}
	bits := int(bits64)
	if bits <= 0 || bits > 64 {
		return nil, fmt.Errorf("symex: codec: node with %d bits", bits)
	}
	B := d.e.B
	switch expr.Kind(kind) {
	case expr.KConst:
		v, err := d.r.u()
		if err != nil {
			return nil, err
		}
		return B.Const(bits, v), nil
	case expr.KVar:
		i, err := d.r.u()
		if err != nil {
			return nil, err
		}
		if i >= uint64(len(d.vars)) {
			return nil, fmt.Errorf("symex: codec: var ref %d of %d", i, len(d.vars))
		}
		return B.Var(d.vars[i]), nil
	case expr.KBin, expr.KCmp:
		op, err := d.r.u()
		if err != nil {
			return nil, err
		}
		x, err := d.arg()
		if err != nil {
			return nil, err
		}
		y, err := d.arg()
		if err != nil {
			return nil, err
		}
		if expr.Kind(kind) == expr.KBin {
			return B.Bin(ir.Op(op), x, y), nil
		}
		return B.Cmp(ir.Op(op), x, y), nil
	case expr.KSelect:
		c, err := d.arg()
		if err != nil {
			return nil, err
		}
		t, err := d.arg()
		if err != nil {
			return nil, err
		}
		f, err := d.arg()
		if err != nil {
			return nil, err
		}
		return B.Select(c, t, f), nil
	case expr.KCast:
		op, err := d.r.u()
		if err != nil {
			return nil, err
		}
		x, err := d.arg()
		if err != nil {
			return nil, err
		}
		return B.Cast(ir.Op(op), x, bits), nil
	case expr.KRead:
		tn, err := d.r.count(1)
		if err != nil {
			return nil, err
		}
		table := make([]uint64, tn)
		for i := range table {
			if table[i], err = d.r.u(); err != nil {
				return nil, err
			}
		}
		idx, err := d.arg()
		if err != nil {
			return nil, err
		}
		return B.Read(table, bits, idx), nil
	}
	return nil, fmt.Errorf("symex: codec: unknown node kind %d", kind)
}

func (d *decoder) readType() (ir.Type, error) {
	tag, err := d.r.b()
	if err != nil {
		return nil, err
	}
	switch tag {
	case 0:
		bits, err := d.r.u()
		if err != nil {
			return nil, err
		}
		if bits == 0 || bits > 64 {
			return nil, fmt.Errorf("symex: codec: int type of %d bits", bits)
		}
		return ir.IntType{Bits: int(bits)}, nil
	case 1:
		elem, err := d.readType()
		if err != nil {
			return nil, err
		}
		return ir.PtrTo(elem), nil
	case 2:
		elem, err := d.readType()
		if err != nil {
			return nil, err
		}
		n, err := d.r.u()
		if err != nil {
			return nil, err
		}
		return ir.ArrayType{Elem: elem, Len: int64(n)}, nil
	case 3:
		return ir.Void, nil
	}
	return nil, fmt.Errorf("symex: codec: unknown type tag %d", tag)
}

func (d *decoder) readObjects() error {
	n, err := d.r.count(5)
	if err != nil {
		return err
	}
	d.objs = make([]*MemObject, n)
	// Phase one: allocate every object from its header so cell pointers
	// can reference any object (aliasing, cycles, forward references).
	cells := make([]int, n)
	for i := 0; i < n; i++ {
		name, err := d.r.s()
		if err != nil {
			return err
		}
		elem, err := d.readType()
		if err != nil {
			return err
		}
		count, err := d.r.u()
		if err != nil {
			return err
		}
		ro, err := d.r.b()
		if err != nil {
			return err
		}
		nc, err := d.r.count(1)
		if err != nil {
			return err
		}
		d.objs[i] = &MemObject{
			Name:     name,
			Elem:     elem,
			Count:    int64(count),
			ReadOnly: ro == 1,
			Cells:    make([]SymVal, nc),
		}
		cells[i] = nc
	}
	// Phase two: fill the cells.
	for i := 0; i < n; i++ {
		for j := 0; j < cells[i]; j++ {
			sv, err := d.readSymVal()
			if err != nil {
				return err
			}
			d.objs[i].Cells[j] = sv
		}
	}
	return nil
}

func (d *decoder) readSymVal() (SymVal, error) {
	tag, err := d.r.b()
	if err != nil {
		return SymVal{}, err
	}
	switch tag {
	case svAbsent:
		return SymVal{}, nil
	case svInt:
		x, err := d.arg()
		if err != nil {
			return SymVal{}, err
		}
		return SymVal{E: x}, nil
	case svPtr:
		oi, err := d.r.u()
		if err != nil {
			return SymVal{}, err
		}
		var obj *MemObject
		if oi != 0 {
			if oi-1 >= uint64(len(d.objs)) {
				return SymVal{}, fmt.Errorf("symex: codec: object ref %d of %d", oi-1, len(d.objs))
			}
			obj = d.objs[oi-1]
		}
		off, err := d.exprRef()
		if err != nil {
			return SymVal{}, err
		}
		return SymVal{IsPtr: true, Obj: obj, Off: off}, nil
	}
	return SymVal{}, fmt.Errorf("symex: codec: unknown symval tag %d", tag)
}

func (d *decoder) exprRef() (*expr.Expr, error) {
	i, err := d.r.u()
	if err != nil {
		return nil, err
	}
	if i == 0 {
		return nil, nil
	}
	if i-1 >= uint64(len(d.nodes)) {
		return nil, fmt.Errorf("symex: codec: node ref %d of %d", i-1, len(d.nodes))
	}
	return d.nodes[i-1], nil
}

func (d *decoder) readState() (*State, error) {
	id, err := d.r.u()
	if err != nil {
		return nil, err
	}
	forks, err := d.r.u()
	if err != nil {
		return nil, err
	}
	st := &State{ID: int64(id), Forks: int(forks)}

	npc, err := d.r.count(1)
	if err != nil {
		return nil, err
	}
	st.PC = make([]*expr.Expr, 0, npc)
	for i := 0; i < npc; i++ {
		c, err := d.arg()
		if err != nil {
			return nil, err
		}
		st.PC = append(st.PC, c)
	}
	// Group fingerprints are builder-local, so the carried partition is
	// rebuilt here rather than shipped. Decided-verdict reuse restarts
	// cold; correctness and query counts are unaffected.
	st.Part = solver.PartitionOf(st.PC)

	ng, err := d.r.count(2)
	if err != nil {
		return nil, err
	}
	st.Globals = make(map[*ir.Global]*MemObject, ng)
	for i := 0; i < ng; i++ {
		name, err := d.r.s()
		if err != nil {
			return nil, err
		}
		oi, err := d.r.u()
		if err != nil {
			return nil, err
		}
		g := d.e.Mod.Global(name)
		if g == nil {
			return nil, fmt.Errorf("symex: codec: no global %q in module", name)
		}
		if oi >= uint64(len(d.objs)) {
			return nil, fmt.Errorf("symex: codec: global object ref %d of %d", oi, len(d.objs))
		}
		st.Globals[g] = d.objs[oi]
	}

	nf, err := d.r.count(4)
	if err != nil {
		return nil, err
	}
	st.Frames = make([]*Frame, 0, nf)
	for i := 0; i < nf; i++ {
		f, err := d.readFrame(st.Frames)
		if err != nil {
			return nil, err
		}
		st.Frames = append(st.Frames, f)
	}
	return st, nil
}

func (d *decoder) readFrame(outer []*Frame) (*Frame, error) {
	fnName, err := d.r.s()
	if err != nil {
		return nil, err
	}
	fn := d.e.Mod.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("symex: codec: no function %q in module", fnName)
	}
	bi, err := d.r.u()
	if err != nil {
		return nil, err
	}
	if bi >= uint64(len(fn.Blocks)) {
		return nil, fmt.Errorf("symex: codec: block %d of %d in %s", bi, len(fn.Blocks), fnName)
	}
	f := &Frame{Fn: fn, Block: fn.Blocks[bi], Locals: make(map[ir.Value]SymVal)}
	pi, err := d.r.u()
	if err != nil {
		return nil, err
	}
	if pi != 0 {
		if pi-1 >= uint64(len(fn.Blocks)) {
			return nil, fmt.Errorf("symex: codec: prev block %d of %d in %s", pi-1, len(fn.Blocks), fnName)
		}
		f.Prev = fn.Blocks[pi-1]
	}
	idx, err := d.r.u()
	if err != nil {
		return nil, err
	}
	if idx > uint64(len(f.Block.Instrs)) {
		return nil, fmt.Errorf("symex: codec: instr index %d of %d in %s/%s", idx, len(f.Block.Instrs), fnName, f.Block.Name)
	}
	f.Idx = int(idx)

	hasCaller, err := d.r.b()
	if err != nil {
		return nil, err
	}
	if hasCaller == 1 {
		if len(outer) == 0 {
			return nil, fmt.Errorf("symex: codec: caller on bottom frame")
		}
		callerFn := outer[len(outer)-1].Fn
		in, err := d.readInstrRef(callerFn)
		if err != nil {
			return nil, err
		}
		f.Caller = in
	}

	nl, err := d.r.count(2)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nl; i++ {
		tag, err := d.r.b()
		if err != nil {
			return nil, err
		}
		var key ir.Value
		switch tag {
		case 0:
			pidx, err := d.r.u()
			if err != nil {
				return nil, err
			}
			if pidx >= uint64(len(fn.Params)) {
				return nil, fmt.Errorf("symex: codec: param %d of %d in %s", pidx, len(fn.Params), fnName)
			}
			key = fn.Params[pidx]
		case 1:
			in, err := d.readInstrRef(fn)
			if err != nil {
				return nil, err
			}
			key = in
		default:
			return nil, fmt.Errorf("symex: codec: unknown local key tag %d", tag)
		}
		sv, err := d.readSymVal()
		if err != nil {
			return nil, err
		}
		f.Locals[key] = sv
	}
	return f, nil
}

func (d *decoder) readInstrRef(fn *ir.Function) (*ir.Instr, error) {
	bi, err := d.r.u()
	if err != nil {
		return nil, err
	}
	ii, err := d.r.u()
	if err != nil {
		return nil, err
	}
	if bi >= uint64(len(fn.Blocks)) {
		return nil, fmt.Errorf("symex: codec: instr block %d of %d in %s", bi, len(fn.Blocks), fn.Name)
	}
	b := fn.Blocks[bi]
	if ii >= uint64(len(b.Instrs)) {
		return nil, fmt.Errorf("symex: codec: instr %d of %d in %s/%s", ii, len(b.Instrs), fn.Name, b.Name)
	}
	return b.Instrs[ii], nil
}
