// Package symex is a KLEE-style symbolic execution engine for the IR.
// It explores programs path by path: inputs are symbolic bytes, branch
// conditions become constraints, and a constraint solver decides which
// sides of each branch are feasible. Its cost profile matches the
// paper's §2.1 analysis — time is dominated by the number of explored
// paths, the instructions interpreted per path, and solver queries —
// which is what makes the -OVERIFY speedups reproducible.
package symex

import (
	"fmt"

	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/solver"
)

// SymVal is a symbolic runtime value: an integer expression or a pointer
// (object + symbolic element offset). A nil Obj with IsPtr set is null.
type SymVal struct {
	IsPtr bool
	E     *expr.Expr // integer value (nil for pointers)
	Obj   *MemObject
	Off   *expr.Expr // element offset, 64-bit
}

// MemObject is a memory object whose cells hold symbolic values.
type MemObject struct {
	Name     string
	Elem     ir.Type
	Count    int64
	Cells    []SymVal
	ReadOnly bool // never written: shared across states without cloning
}

// Frame is one activation record.
type Frame struct {
	Fn     *ir.Function
	Block  *ir.Block
	Prev   *ir.Block // predecessor block, for phi evaluation
	Idx    int       // index of the next instruction in Block
	Locals map[ir.Value]SymVal
	Caller *ir.Instr // call instruction awaiting the return value
}

// State is one execution path in progress.
type State struct {
	ID     int64
	Frames []*Frame
	PC     []*expr.Expr // path constraints (conjunction)
	// Part is the incremental independence partition of PC, kept in
	// lock step by addPC: the solver extends it in O(groups) per
	// appended constraint instead of re-partitioning the whole
	// condition per query, and decided group verdicts ride along.
	// Partitions are immutable, so forked states share one by pointer.
	Part    *solver.Partition
	Globals map[*ir.Global]*MemObject
	Forks   int // how many forks led here (path depth in the fork tree)
}

// top returns the active frame.
func (st *State) top() *Frame { return st.Frames[len(st.Frames)-1] }

// addPC appends a constraint to the path condition, extending the
// carried partition.
func (st *State) addPC(c *expr.Expr) {
	if c.IsTrue() {
		return
	}
	st.PC = append(st.PC, c)
	st.Part = st.Part.Extend(c)
}

// addPCPart appends a constraint whose extended partition the caller
// already computed (the condBr sibling queries), so the extension —
// and the group verdicts it was decided with — is reused instead of
// recomputed.
func (st *State) addPCPart(c *expr.Expr, p *solver.Partition) {
	if c.IsTrue() {
		return
	}
	st.PC = append(st.PC, c)
	st.Part = p
}

// clone deep-copies the state's mutable parts. Read-only objects and all
// expression nodes are shared (expressions are immutable).
func (st *State) clone(nextID int64) *State {
	ns := &State{
		ID:      nextID,
		PC:      append([]*expr.Expr(nil), st.PC...),
		Part:    st.Part, // immutable; shared across forks
		Globals: make(map[*ir.Global]*MemObject, len(st.Globals)),
		Forks:   st.Forks + 1,
	}
	objMap := make(map[*MemObject]*MemObject)
	var cloneObj func(o *MemObject) *MemObject
	cloneObj = func(o *MemObject) *MemObject {
		if o == nil {
			return nil
		}
		if o.ReadOnly {
			return o
		}
		if n, ok := objMap[o]; ok {
			return n
		}
		n := &MemObject{Name: o.Name, Elem: o.Elem, Count: o.Count, ReadOnly: o.ReadOnly}
		objMap[o] = n
		n.Cells = make([]SymVal, len(o.Cells))
		for i, c := range o.Cells {
			n.Cells[i] = SymVal{IsPtr: c.IsPtr, E: c.E, Obj: cloneObj(c.Obj), Off: c.Off}
		}
		return n
	}
	for g, o := range st.Globals {
		ns.Globals[g] = cloneObj(o)
	}
	ns.Frames = make([]*Frame, len(st.Frames))
	for i, f := range st.Frames {
		nf := &Frame{Fn: f.Fn, Block: f.Block, Prev: f.Prev, Idx: f.Idx, Caller: f.Caller}
		nf.Locals = make(map[ir.Value]SymVal, len(f.Locals))
		for k, v := range f.Locals {
			nf.Locals[k] = SymVal{IsPtr: v.IsPtr, E: v.E, Obj: cloneObj(v.Obj), Off: v.Off}
		}
		ns.Frames[i] = nf
	}
	return ns
}

// Where describes the state's current location for error messages.
func (st *State) Where() string {
	if len(st.Frames) == 0 {
		return "<done>"
	}
	f := st.top()
	return fmt.Sprintf("@%s/%s", f.Fn.Name, f.Block.Name)
}
