package symex

import (
	"container/heap"
	"fmt"
	"sync/atomic"

	"overify/internal/ir"
)

// Strategy orders the pending states of the sharded frontier. One
// strategy instance serves all shards of one engine run; the frontier
// serializes every call except NotifyCovered under its own lock, so
// implementations need no locking of their own there.
//
// The contract the conformance suite enforces: a strategy only decides
// *order*. It must never lose, duplicate or mutate a state — every
// inserted state comes back from exactly one Select, Steal or Evict —
// which is what makes the verdicts (bug set, path counts, instruction
// count) identical across strategies on an exhaustive run.
//
// NotifyCovered is the one concurrent entry point: exec calls it from
// any worker, without the frontier lock, whenever a block is executed
// for the first time. Implementations must keep it lock-free (the
// built-in ones bump an atomic generation counter at most).
type Strategy interface {
	// Name is the flag spelling ("dfs", "bfs", "covnew", "rand").
	Name() string
	// Insert adds forked states to the shard's pool.
	Insert(shard int, states []*State)
	// Select removes and returns the shard's best state, or nil.
	Select(shard int) *State
	// Steal removes and returns the state a thief should take from the
	// (non-empty) victim shard.
	Steal(shard int) *State
	// Evict removes and returns the least valuable state of the fullest
	// shard (the live-states cap fired), or nil if all shards are empty.
	Evict() *State
	// Len is the shard's pending-state count.
	Len(shard int) int
	// NotifyCovered tells the strategy that block b was just executed
	// for the first time. May race with every other method.
	NotifyCovered(b *ir.Block)
}

// SearchKind names a built-in search strategy.
type SearchKind int

// The built-in exploration strategies. DFS keeps the solver's caches
// hot (children share their parent's constraint prefix) and is the
// default; BFS finds shallow bugs first; CovNew weights states by the
// uncovered blocks their next step can reach (KLEE's --search=covnew);
// RandPath picks uniformly from the pending pool under a fixed seed;
// Interleave round-robins CovNew and DFS picks (KLEE's interleaved
// searcher), pairing coverage-seeking jumps with cache-hot deep dives.
const (
	DFS SearchKind = iota
	BFS
	CovNew
	RandPath
	Interleave
)

var searchNames = [...]string{"dfs", "bfs", "covnew", "rand", "interleave"}

// String returns the flag spelling, e.g. "covnew".
func (k SearchKind) String() string {
	if int(k) < len(searchNames) {
		return searchNames[k]
	}
	return fmt.Sprintf("search(%d)", int(k))
}

// ParseSearch converts a flag spelling into a SearchKind.
func ParseSearch(s string) (SearchKind, error) {
	switch s {
	case "dfs", "DFS", "":
		return DFS, nil
	case "bfs", "BFS":
		return BFS, nil
	case "covnew", "cov-new", "coverage":
		return CovNew, nil
	case "rand", "random", "random-path":
		return RandPath, nil
	case "interleave", "covnew+dfs", "interleaved":
		return Interleave, nil
	}
	return DFS, fmt.Errorf("symex: unknown search strategy %q (want dfs, bfs, covnew, rand or interleave)", s)
}

// Strategies lists every built-in kind, in flag order.
func Strategies() []SearchKind {
	return []SearchKind{DFS, BFS, CovNew, RandPath, Interleave}
}

// newStrategy builds the shard containers for one engine run. cov is
// the engine's coverage map (only covnew reads it); seed feeds the
// random-path PRNGs (0 picks a fixed default so runs stay reproducible).
func newStrategy(kind SearchKind, shards int, seed int64, cov *coverage) Strategy {
	switch kind {
	case BFS:
		return &listStrategy{name: "bfs", fifo: true, shards: make([][]*State, shards)}
	case CovNew:
		return &covnewStrategy{cov: cov, heaps: make([]covHeap, shards)}
	case RandPath:
		s := &randStrategy{shards: make([][]*State, shards), rngs: make([]uint64, shards)}
		if seed == 0 {
			seed = 1
		}
		for i := range s.rngs {
			// Distinct nonzero xorshift state per shard, derived from the
			// seed with a splitmix-style spread.
			s.rngs[i] = (uint64(seed) + uint64(i)*0x9E3779B97F4A7C15) | 1
		}
		return s
	case Interleave:
		return &interleaveStrategy{
			subs: [2]Strategy{
				newStrategy(CovNew, shards, seed, cov),
				newStrategy(DFS, shards, seed, cov),
			},
			turn: make([]uint8, shards),
			live: make([]int, shards),
			ref:  make(map[*State]*ilRef),
		}
	default:
		return &listStrategy{name: "dfs", shards: make([][]*State, shards)}
	}
}

// listStrategy is the slice-backed stack/queue shared by DFS and BFS.
type listStrategy struct {
	name   string
	fifo   bool // select from the front (BFS) instead of the back (DFS)
	shards [][]*State
}

func (l *listStrategy) Name() string            { return l.name }
func (l *listStrategy) Len(shard int) int       { return len(l.shards[shard]) }
func (l *listStrategy) NotifyCovered(*ir.Block) {}

func (l *listStrategy) Insert(shard int, states []*State) {
	l.shards[shard] = append(l.shards[shard], states...)
}

func (l *listStrategy) Select(shard int) *State {
	own := l.shards[shard]
	if len(own) == 0 {
		return nil
	}
	if l.fifo {
		st := own[0]
		l.shards[shard] = own[1:]
		return st
	}
	st := own[len(own)-1]
	l.shards[shard] = own[:len(own)-1]
	return st
}

// Steal takes the shard's oldest state: for DFS that is the shallowest
// one — the largest unexplored subtree, the classic work-stealing
// heuristic, leaving the victim its hot deep states — and for BFS it is
// exactly the state Select would return, so stealing preserves the
// breadth-first order.
func (l *listStrategy) Steal(shard int) *State {
	own := l.shards[shard]
	if len(own) == 0 {
		return nil
	}
	st := own[0]
	l.shards[shard] = own[1:]
	return st
}

// Evict drops the shallowest state of the fullest shard, matching the
// pre-strategy frontier's cap behavior.
func (l *listStrategy) Evict() *State {
	big := fullest(func(i int) int { return len(l.shards[i]) }, len(l.shards))
	if big < 0 {
		return nil
	}
	st := l.shards[big][0]
	l.shards[big] = l.shards[big][1:]
	return st
}

// randStrategy picks uniformly among a shard's pending states with a
// per-shard xorshift64 PRNG, so the exploration order is a deterministic
// function of (seed, shard) — same seed, same serial exploration order.
type randStrategy struct {
	shards [][]*State
	rngs   []uint64
}

func (r *randStrategy) Name() string            { return "rand" }
func (r *randStrategy) Len(shard int) int       { return len(r.shards[shard]) }
func (r *randStrategy) NotifyCovered(*ir.Block) {}

func (r *randStrategy) Insert(shard int, states []*State) {
	r.shards[shard] = append(r.shards[shard], states...)
}

func (r *randStrategy) next(shard int) uint64 {
	x := r.rngs[shard]
	x ^= x << 13
	x ^= x >> 7
	x ^= x << 17
	r.rngs[shard] = x
	return x
}

// pick removes a seeded-random element, filling the hole with the last
// element (order within the pool carries no meaning for random-path).
func (r *randStrategy) pick(shard int) *State {
	own := r.shards[shard]
	if len(own) == 0 {
		return nil
	}
	j := int(r.next(shard) % uint64(len(own)))
	st := own[j]
	own[j] = own[len(own)-1]
	r.shards[shard] = own[:len(own)-1]
	return st
}

func (r *randStrategy) Select(shard int) *State { return r.pick(shard) }

// Steal draws from the victim's PRNG too: the thief gets a random path,
// not systematically the pool's first slot.
func (r *randStrategy) Steal(shard int) *State { return r.pick(shard) }

func (r *randStrategy) Evict() *State {
	big := fullest(func(i int) int { return len(r.shards[i]) }, len(r.shards))
	if big < 0 {
		return nil
	}
	return r.pick(big)
}

// covnewStrategy is the coverage-weighted picker: states whose next
// block (or its successors) are uncovered score higher, steering
// workers toward unexplored territory instead of re-walking hot paths.
// Each shard is a max-heap ordered by (score, depth, insertion order).
//
// Scores are cached at insert time and go stale as coverage grows —
// NotifyCovered just bumps an atomic generation counter. Selection
// rescores lazily: pop the top, recompute; if the score dropped,
// re-push and retry. Coverage only grows, so cached scores only
// overestimate, and the first popped item whose fresh score matches its
// cached one is the true maximum.
type covnewStrategy struct {
	cov   *coverage
	heaps []covHeap
	seq   uint64
	gen   atomic.Uint64
}

type covItem struct {
	st    *State
	score int
	gen   uint64 // coverage generation the score was computed at
	seq   uint64 // insertion order, tie-break
}

type covHeap []*covItem

// covBefore is the heap order: higher score first, then deeper states
// (among equally promising states, keep the DFS-ish locality that makes
// solver prefixes cache well), then most recently inserted.
func covBefore(a, b *covItem) bool {
	if a.score != b.score {
		return a.score > b.score
	}
	if a.st.Forks != b.st.Forks {
		return a.st.Forks > b.st.Forks
	}
	return a.seq > b.seq
}

func (h covHeap) Len() int           { return len(h) }
func (h covHeap) Less(i, j int) bool { return covBefore(h[i], h[j]) }
func (h covHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *covHeap) Push(x any)        { *h = append(*h, x.(*covItem)) }
func (h *covHeap) Pop() any {
	old := *h
	n := len(old)
	it := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return it
}

func (c *covnewStrategy) Name() string      { return "covnew" }
func (c *covnewStrategy) Len(shard int) int { return len(c.heaps[shard]) }

func (c *covnewStrategy) NotifyCovered(*ir.Block) { c.gen.Add(1) }

// score counts the uncovered blocks one step from the state: its own
// next block weighs double (executing the state covers it for sure),
// each uncovered successor adds one.
func (c *covnewStrategy) score(st *State) int {
	if len(st.Frames) == 0 {
		return 0
	}
	b := st.top().Block
	s := 0
	if !c.cov.covered(b) {
		s += 2
	}
	for _, succ := range b.Succs() {
		if !c.cov.covered(succ) {
			s++
		}
	}
	return s
}

func (c *covnewStrategy) Insert(shard int, states []*State) {
	gen := c.gen.Load()
	for _, st := range states {
		c.seq++
		heap.Push(&c.heaps[shard], &covItem{st: st, score: c.score(st), gen: gen, seq: c.seq})
	}
}

// pop returns the shard's true current maximum via lazy rescoring.
func (c *covnewStrategy) pop(shard int) *State {
	h := &c.heaps[shard]
	for h.Len() > 0 {
		it := heap.Pop(h).(*covItem)
		gen := c.gen.Load()
		if it.gen == gen {
			return it.st
		}
		if s := c.score(it.st); s < it.score {
			it.score, it.gen = s, gen
			heap.Push(h, it)
			continue
		}
		return it.st
	}
	return nil
}

func (c *covnewStrategy) Select(shard int) *State { return c.pop(shard) }

// Steal takes the victim's best-scoring state — the strategy's own
// order, not an arbitrary slot — so work-stealing cannot demote a
// high-priority state behind a thief's leftovers.
func (c *covnewStrategy) Steal(shard int) *State { return c.pop(shard) }

// Evict removes the worst-scoring (then shallowest) state of the
// fullest shard. The scan is linear, but eviction only runs when the
// live-states cap fires — far off the hot path.
func (c *covnewStrategy) Evict() *State {
	big := fullest(func(i int) int { return len(c.heaps[i]) }, len(c.heaps))
	if big < 0 {
		return nil
	}
	h := c.heaps[big]
	worst := 0
	for i := 1; i < len(h); i++ {
		if covBefore(h[worst], h[i]) {
			worst = i
		}
	}
	return heap.Remove(&c.heaps[big], worst).(*covItem).st
}

// interleaveStrategy is KLEE's interleaved searcher over the covnew
// and dfs orderings: per shard, picks alternate between the
// coverage-weighted heap (jump to unexplored territory) and the DFS
// stack (deep dives with hot solver prefixes).
//
// Every inserted state lives in both sub-strategies; ref tracks how
// many copies remain, whether the state is still pending delivery, and
// which shard holds it. Popping a pending state from one side delivers
// it and marks the remaining copies stale; stale copies are dropped
// lazily when they surface later. Because the engine re-publishes the
// *same* State pointer after partial execution, an Insert may find
// leftover stale copies from the previous cycle — they stack onto the
// copy count and drain the same way. The conservation law the fuzz
// suite enforces (no state lost, duplicated or fabricated) holds
// because each insertion flips pending exactly once, and Len reports
// pending states only.
//
// All mutators run under the frontier lock like every other strategy;
// NotifyCovered stays lock-free by forwarding to covnew's atomic
// generation bump.
type interleaveStrategy struct {
	subs [2]Strategy // covnew, dfs
	turn []uint8     // per-shard round-robin cursor
	live []int       // per-shard pending-state count
	ref  map[*State]*ilRef
}

type ilRef struct {
	copies  int  // copies still sitting inside the two subs
	pending bool // not yet delivered since its last Insert
	shard   int
}

func (il *interleaveStrategy) Name() string              { return "interleave" }
func (il *interleaveStrategy) Len(shard int) int         { return il.live[shard] }
func (il *interleaveStrategy) NotifyCovered(b *ir.Block) { il.subs[0].NotifyCovered(b) }

func (il *interleaveStrategy) Insert(shard int, states []*State) {
	for _, st := range states {
		if r := il.ref[st]; r != nil {
			// Re-inserted while stale copies of its previous cycle are
			// still queued: stack the new pair on top.
			r.copies += 2
			r.pending = true
			r.shard = shard
		} else {
			il.ref[st] = &ilRef{copies: 2, pending: true, shard: shard}
		}
	}
	il.subs[0].Insert(shard, states)
	il.subs[1].Insert(shard, states)
	il.live[shard] += len(states)
}

// take delivers st if it is still pending, dropping stale copies as
// they surface; reports whether the caller got a live state.
func (il *interleaveStrategy) take(st *State) bool {
	r := il.ref[st]
	r.copies--
	delivered := r.pending
	if delivered {
		r.pending = false
		il.live[r.shard]--
	}
	if r.copies == 0 {
		delete(il.ref, st)
	}
	return delivered
}

// pop draws from one sub-strategy, skipping stale copies.
func (il *interleaveStrategy) pop(sub Strategy, shard int) *State {
	for {
		st := sub.Select(shard)
		if st == nil {
			return nil
		}
		if il.take(st) {
			return st
		}
	}
}

func (il *interleaveStrategy) Select(shard int) *State {
	first := il.subs[il.turn[shard]%2]
	second := il.subs[(il.turn[shard]+1)%2]
	il.turn[shard]++
	if st := il.pop(first, shard); st != nil {
		return st
	}
	return il.pop(second, shard)
}

// Steal follows the victim shard's own round-robin order, so stealing
// removes exactly the state the victim would have run next.
func (il *interleaveStrategy) Steal(shard int) *State { return il.Select(shard) }

// Evict drops the DFS side's choice (the shallowest state of its
// fullest shard), skipping stale copies; covnew is only consulted when
// the DFS stacks hold nothing live.
func (il *interleaveStrategy) Evict() *State {
	for _, sub := range []Strategy{il.subs[1], il.subs[0]} {
		for {
			st := sub.Evict()
			if st == nil {
				break
			}
			if il.take(st) {
				return st
			}
		}
	}
	return nil
}

// fullest returns the index with the largest non-zero length, or -1.
func fullest(length func(int) int, n int) int {
	big, best := -1, 0
	for i := 0; i < n; i++ {
		if l := length(i); l > best {
			big, best = i, l
		}
	}
	return big
}
