package symex

import (
	"time"

	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/solver"
)

// instrFlushStride is how many locally counted instructions a worker
// accumulates before flushing into the engine-wide total and checking
// global limits. Batching keeps the shared counter off the per-
// instruction hot path; the stride bounds how far the global count and
// the limit checks can lag.
const instrFlushStride = 1024

// worker is one exploration goroutine: a private solver (the search
// state is not concurrency-safe) over the shared query cache, a private
// bug list (merged deterministically after the run), and a local
// instruction counter batched into the engine totals.
type worker struct {
	e     *Engine
	id    int
	B     *expr.Builder
	fr    *frontier
	strat Strategy
	sol   *solver.Solver

	bugs        []Bug
	localInstrs int64     // not yet flushed to e.instrs
	lastAssigns int64     // solver assignments already flushed to e.assigns
	lastBlock   *ir.Block // last block fed to the coverage map
}

// run is the worker loop: take a state, explore its whole subtree
// depth-first (publishing the other side of each fork), repeat.
func (w *worker) run() {
	defer w.flushInstrs()
	for {
		st := w.fr.take(w.id, w.e.stopped.Load)
		if st == nil {
			return
		}
		w.e.explored.Add(1)
		w.explore(st)
	}
}

// explore drives one held state to the end of its path, following the
// true side of each fork immediately (DFS keeps the constraint prefix
// hot) and publishing the rest. In BFS mode every continuation goes
// back to the frontier so shallow states run first.
func (w *worker) explore(st *State) {
	for {
		stop, forked := w.step(st)
		if stop {
			// A global limit fired: drain pending work as truncated and
			// count the state this worker was holding. Other workers
			// observe e.stopped at their next check and do the same for
			// theirs.
			w.e.requestStop()
			w.e.truncated.Add(w.fr.drain() + int64(len(forked)) + 1)
			w.fr.release()
			return
		}
		if len(forked) == 0 {
			// Path ended (completed, errored, or pruned inside step).
			w.fr.release()
			if max := w.e.opts.MaxPaths; max > 0 && w.e.totalPaths() >= max {
				w.e.requestStop()
				w.e.truncated.Add(w.fr.drain())
			}
			return
		}
		if w.e.opts.Strategy != DFS {
			// Every non-DFS strategy fully owns the order: publish all
			// continuations and let Select pick the next state, so a
			// worker's inline continuation cannot jump the queue ahead of
			// a higher-priority pending state.
			w.e.truncated.Add(w.fr.put(w.id, forked))
			w.fr.release()
			return
		}
		// DFS: continue with the deepest continuation (step returns it
		// last), publish the rest for stealing.
		st = forked[len(forked)-1]
		w.e.explored.Add(1)
		w.e.truncated.Add(w.fr.put(w.id, forked[:len(forked)-1]))
	}
}

// countInstr counts one interpreted instruction, flushing the batch to
// the engine-wide counter on stride boundaries.
func (w *worker) countInstr() {
	w.localInstrs++
	if w.localInstrs >= instrFlushStride {
		w.flushInstrs()
	}
}

func (w *worker) flushInstrs() {
	if w.localInstrs > 0 {
		w.e.instrs.Add(w.localInstrs)
		w.localInstrs = 0
	}
}

// coverBlock feeds the engine's coverage map as execution enters b.
// The lastBlock memo keeps the per-instruction cost at one pointer
// compare; first-time covers notify the strategy (covnew rescores
// lazily off that signal) and check the CoverTarget stop condition.
func (w *worker) coverBlock(b *ir.Block) {
	if b == w.lastBlock {
		return
	}
	w.lastBlock = b
	if !w.e.cov.cover(b) {
		return
	}
	w.strat.NotifyCovered(b)
	if t := w.e.opts.CoverTarget; t > 0 && w.e.cov.count() >= int64(t) {
		w.e.requestStop()
	}
}

// overLimit checks the global stop conditions at batch granularity:
// another worker requested a stop, the instruction budget is spent, or
// the wall-clock deadline passed.
func (w *worker) overLimit() bool {
	if w.e.stopped.Load() {
		return true
	}
	if w.localInstrs == 0 { // just flushed: global count is fresh
		if max := w.e.opts.MaxInstrs; max > 0 && w.e.instrs.Load() >= max {
			w.e.timedOut.Store(true)
			return true
		}
		if !w.e.deadline.IsZero() && time.Now().After(w.e.deadline) {
			w.e.timedOut.Store(true)
			return true
		}
	}
	return false
}

// fork clones st for the other side of a branch.
func (w *worker) fork(st *State) *State {
	w.e.forks.Add(1)
	return st.clone(w.e.nextState.Add(1))
}

// reportBug records a defect with a concretized input from the model.
// Deduplication here is per-worker at site granularity (kind, message
// AND location): every distinct site survives until the cross-worker
// merge, where mergeBugs collapses to one report per (kind, message)
// by picking the smallest location. Deduplicating on (kind, message)
// already here would keep whichever site this worker's schedule
// reached first — and make the surviving report depend on the worker
// count.
func (w *worker) reportBug(st *State, kind BugKind, msg string, model map[*expr.Var]uint64) {
	bug := Bug{Kind: kind, Msg: msg, Where: st.Where()}
	if model != nil {
		bug.Input = make([]byte, len(w.e.inputVars))
		for i, v := range w.e.inputVars {
			bug.Input[i] = byte(model[v])
		}
	}
	for _, b := range w.bugs {
		if b.Kind == bug.Kind && b.Msg == bug.Msg && b.Where == bug.Where {
			return
		}
	}
	w.bugs = append(w.bugs, bug)
}

// sat asks the solver for pc + extra. Unknown (budget exhaustion) is
// mapped to "assume feasible", which keeps exploration sound; call
// sites that *report bugs* must use satTri and skip reporting on
// unknown.
func (w *worker) sat(st *State, extra *expr.Expr) (bool, map[*expr.Var]uint64) {
	res, model := w.satTri(st, extra)
	return res != satNo, model
}

// satTri is the three-valued feasibility query over the state's
// carried partition (extended by one constraint, not rebuilt).
func (w *worker) satTri(st *State, extra *expr.Expr) (satResult, map[*expr.Var]uint64) {
	p := st.Part
	if extra != nil {
		p = p.Extend(extra)
	}
	return w.satP(p)
}

// satTriPair decides the two sibling queries of a conditional branch
// (pc+a, pc+b with b = !a) and returns the extended partitions so the
// branch can carry them forward (group verdicts decided here ride
// along to the forked states). The queries share every path-condition
// group and differ in one, so both shared-cache lookups go through one
// batched striped-lock round trip (Solver.PrefetchParts) instead of
// two.
func (w *worker) satTriPair(st *State, a, b *expr.Expr) (resA, resB satResult, pa, pb *solver.Partition) {
	pa = st.Part.Extend(a)
	pb = st.Part.Extend(b)
	w.sol.PrefetchParts(pa, pb)
	resA, _ = w.satP(pa)
	resB, _ = w.satP(pb)
	return resA, resB, pa, pb
}

// checkAssignBudget flushes this worker's solver-assignment count into
// the engine total after a query and requests a stop once the
// MaxAssignments budget is spent. Queries are the enforcement boundary:
// assignments accrue thousands-per-instruction inside the solver, far
// below the instruction-flush stride overLimit polls at, so a
// stride-based check could miss the whole budget inside one hot query
// burst. Serial runs stop at the same query on every machine.
func (w *worker) checkAssignBudget() {
	max := w.e.opts.MaxAssignments
	if max <= 0 {
		return
	}
	if d := w.sol.Stats.Assignments - w.lastAssigns; d != 0 {
		w.e.assigns.Add(d)
		w.lastAssigns = w.sol.Stats.Assignments
	}
	if w.e.assigns.Load() >= max {
		w.e.timedOut.Store(true)
		w.e.requestStop()
	}
}

// satP maps a partitioned solver query onto the three-valued result.
func (w *worker) satP(p *solver.Partition) (satResult, map[*expr.Var]uint64) {
	defer w.checkAssignBudget()
	ok, model, err := w.sol.SatPartition(p)
	if err != nil {
		return satUnknown, nil
	}
	if ok {
		return satYes, model
	}
	return satNo, nil
}
