package symex_test

import (
	"fmt"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// The strategy-conformance suite is the subsystem's trust anchor: a
// search strategy only decides *order*, so on an exhaustive run every
// strategy — at any worker count — must produce byte-identical sorted
// bug reports and identical path/instruction/coverage verdicts. A
// strategy that loses, duplicates or re-executes a state shows up here
// as a verdict drift.

// conformanceCorpus is the program set the suite sweeps: the full
// corpus normally, a cheap but structurally diverse subset (loops,
// flags, two buffers, symbolic indexing) under -short.
func conformanceCorpus(t *testing.T) []coreutils.Program {
	t.Helper()
	if !testing.Short() {
		return coreutils.All()
	}
	var programs []coreutils.Program
	for _, name := range []string{"echo", "cat", "wc", "tr", "grep-v", "rev", "uniq", "seq"} {
		p, ok := coreutils.Get(name)
		if !ok {
			t.Fatalf("no corpus program %q", name)
		}
		programs = append(programs, p)
	}
	return programs
}

// verifyStrat compiles a corpus program and explores it with the given
// strategy, worker count and seed.
func verifyStrat(t *testing.T, p coreutils.Program, level pipeline.Level,
	n, workers int, strat symex.SearchKind, seed int64) *symex.Report {
	t.Helper()
	c, err := core.CompileProgram(p, level)
	if err != nil {
		t.Fatalf("%s at %s: %v", p.Name, level, err)
	}
	opts := core.VerifyOptions{InputBytes: n}
	opts.Engine.Workers = workers
	opts.Engine.Strategy = strat
	opts.Engine.Seed = seed
	rep, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatalf("%s at %s: verify: %v", p.Name, level, err)
	}
	return rep
}

// TestStrategyConformance: every strategy × workers∈{1,4} must match
// the dfs/workers=1 baseline exactly — sorted bug reports (kind,
// message, location), path counts, instruction count and block
// coverage. Subtests are named per strategy so CI can matrix over
// -run TestStrategyConformance/<name>.
func TestStrategyConformance(t *testing.T) {
	programs := conformanceCorpus(t)
	baseline := make(map[string]*symex.Report, len(programs))
	for _, p := range programs {
		baseline[p.Name] = verifyStrat(t, p, pipeline.OVerify, 3, 1, symex.DFS, 0)
	}
	for _, strat := range symex.Strategies() {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			for _, workers := range []int{1, 4} {
				for _, p := range programs {
					rep := verifyStrat(t, p, pipeline.OVerify, 3, workers, strat, 42)
					base := baseline[p.Name]
					tag := fmt.Sprintf("%s w=%d", p.Name, workers)
					if rep.Stats.Paths != base.Stats.Paths {
						t.Errorf("%s: paths %d != baseline %d", tag, rep.Stats.Paths, base.Stats.Paths)
					}
					if rep.Stats.ErrorPaths != base.Stats.ErrorPaths {
						t.Errorf("%s: error paths %d != baseline %d", tag, rep.Stats.ErrorPaths, base.Stats.ErrorPaths)
					}
					if rep.Stats.Instrs != base.Stats.Instrs {
						t.Errorf("%s: instrs %d != baseline %d", tag, rep.Stats.Instrs, base.Stats.Instrs)
					}
					if rep.Stats.CoveredBlocks != base.Stats.CoveredBlocks {
						t.Errorf("%s: covered blocks %d != baseline %d", tag, rep.Stats.CoveredBlocks, base.Stats.CoveredBlocks)
					}
					// The solver's verdict surface is schedule-invariant
					// on an exhaustive run: the same branches are queried
					// and decide the same way no matter the order, so the
					// per-query counters must match exactly. (Cache and
					// reuse hit counters legitimately vary per schedule.)
					bs, rs := base.Stats.SolverStats, rep.Stats.SolverStats
					if rs.Queries != bs.Queries || rs.Sat != bs.Sat || rs.Unsat != bs.Unsat || rs.Failures != bs.Failures {
						t.Errorf("%s: solver verdicts q=%d/sat=%d/unsat=%d/fail=%d != baseline q=%d/sat=%d/unsat=%d/fail=%d",
							tag, rs.Queries, rs.Sat, rs.Unsat, rs.Failures, bs.Queries, bs.Sat, bs.Unsat, bs.Failures)
					}
					bk, bb := bugKeys(rep), bugKeys(base)
					if fmt.Sprint(bk) != fmt.Sprint(bb) {
						t.Errorf("%s: bug reports %v != baseline %v", tag, bk, bb)
					}
				}
			}
		})
	}
}

// TestSolverConformanceAcrossLevels: the solver must be
// verdict-invariant at every optimization level, not just -OVERIFY:
// per (program, level), workers=4 must reproduce the serial baseline's
// paths, instructions, coverage, bug reports and solver verdict
// counters exactly. It sweeps the structurally diverse corpus subset
// (full-corpus × all-level equivalence costs ~15 minutes serial and is
// checked out-of-band; full corpus at -OVERIFY is TestStrategyConformance).
func TestSolverConformanceAcrossLevels(t *testing.T) {
	var programs []coreutils.Program
	for _, name := range []string{"echo", "cat", "wc", "tr", "grep-v", "rev", "uniq", "seq"} {
		p, ok := coreutils.Get(name)
		if !ok {
			t.Fatalf("no corpus program %q", name)
		}
		programs = append(programs, p)
	}
	levels := []pipeline.Level{pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify}
	if testing.Short() {
		levels = []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.OVerify}
	}
	for _, level := range levels {
		level := level
		t.Run(level.String(), func(t *testing.T) {
			for _, p := range programs {
				base := verifyStrat(t, p, level, 3, 1, symex.DFS, 0)
				rep := verifyStrat(t, p, level, 3, 4, symex.DFS, 0)
				tag := fmt.Sprintf("%s %s", p.Name, level)
				if rep.Stats.Paths != base.Stats.Paths || rep.Stats.ErrorPaths != base.Stats.ErrorPaths {
					t.Errorf("%s: paths %d/%d != baseline %d/%d", tag,
						rep.Stats.Paths, rep.Stats.ErrorPaths, base.Stats.Paths, base.Stats.ErrorPaths)
				}
				if rep.Stats.Instrs != base.Stats.Instrs {
					t.Errorf("%s: instrs %d != baseline %d", tag, rep.Stats.Instrs, base.Stats.Instrs)
				}
				if rep.Stats.CoveredBlocks != base.Stats.CoveredBlocks {
					t.Errorf("%s: covered %d != baseline %d", tag, rep.Stats.CoveredBlocks, base.Stats.CoveredBlocks)
				}
				bs, rs := base.Stats.SolverStats, rep.Stats.SolverStats
				if rs.Queries != bs.Queries || rs.Sat != bs.Sat || rs.Unsat != bs.Unsat || rs.Failures != bs.Failures {
					t.Errorf("%s: solver verdicts q=%d/sat=%d/unsat=%d/fail=%d != baseline q=%d/sat=%d/unsat=%d/fail=%d",
						tag, rs.Queries, rs.Sat, rs.Unsat, rs.Failures, bs.Queries, bs.Sat, bs.Unsat, bs.Failures)
				}
				if fmt.Sprint(bugKeys(rep)) != fmt.Sprint(bugKeys(base)) {
					t.Errorf("%s: bug reports diverged", tag)
				}
			}
		})
	}
}

// TestStrategyConformanceSeededBugs: the seeded-defect programs from
// the parallel suite must yield their bug under every strategy, with a
// reproducing input attached.
func TestStrategyConformanceSeededBugs(t *testing.T) {
	for _, strat := range symex.Strategies() {
		for _, bp := range buggyPrograms {
			n := bp.n
			if n == 0 {
				n = 3
			}
			c, err := core.CompileSource(bp.name, bp.src, pipeline.OVerify, core.DefaultLibc(pipeline.OVerify))
			if err != nil {
				t.Fatal(err)
			}
			opts := core.VerifyOptions{InputBytes: n}
			opts.Engine.Workers = 4
			opts.Engine.Strategy = strat
			rep, err := c.Verify("umain", opts)
			if err != nil {
				t.Fatal(err)
			}
			found := false
			for _, b := range rep.Bugs {
				if containsSub(b.Kind.String(), bp.kind) || containsSub(b.Msg, bp.kind) {
					found = true
					if b.Input == nil {
						t.Errorf("%s/%s: bug %q has no reproducing input", strat, bp.name, b.Msg)
					}
				}
			}
			if !found {
				t.Errorf("%s/%s: seeded %q bug not found (bugs: %v)", strat, bp.name, bp.kind, rep.Bugs)
			}
		}
	}
}

// TestCovnewCoverageEffortAtMostDFS: the point of the coverage-weighted
// picker. On branchy corpus programs, reaching full block coverage
// (CoverTarget = the exhaustive run's block count) must cost covnew no
// more explored states than dfs — and strictly fewer on at least one.
func TestCovnewCoverageEffortAtMostDFS(t *testing.T) {
	strictlyBetter := false
	for _, name := range []string{"wc", "uniq", "seq"} {
		p, ok := coreutils.Get(name)
		if !ok {
			t.Fatalf("no corpus program %q", name)
		}
		c, err := core.CompileProgram(p, pipeline.O0)
		if err != nil {
			t.Fatal(err)
		}
		full, err := c.Verify("umain", core.VerifyOptions{InputBytes: 3})
		if err != nil {
			t.Fatal(err)
		}
		total := full.Stats.CoveredBlocks
		statesToCover := func(strat symex.SearchKind) int64 {
			opts := core.VerifyOptions{InputBytes: 3}
			opts.Engine.Strategy = strat
			opts.Engine.CoverTarget = total
			rep, err := c.Verify("umain", opts)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Stats.CoveredBlocks < total {
				t.Errorf("%s/%s: stopped at %d blocks, want %d", name, strat, rep.Stats.CoveredBlocks, total)
			}
			return rep.Stats.StatesExplored
		}
		dfs := statesToCover(symex.DFS)
		covnew := statesToCover(symex.CovNew)
		t.Logf("%s: %d blocks, states to cover: dfs=%d covnew=%d", name, total, dfs, covnew)
		if covnew > dfs {
			t.Errorf("%s: covnew explored %d states to full coverage, dfs only %d", name, covnew, dfs)
		}
		if covnew < dfs {
			strictlyBetter = true
		}
	}
	if !strictlyBetter {
		t.Error("covnew never reached coverage in strictly fewer states than dfs")
	}
}

// TestRandSeedDeterminism: at one worker the random-path strategy is a
// pure function of the seed — two runs with the same seed report
// identical stats; the pop-order identity itself is asserted white-box
// in the symex package.
func TestRandSeedDeterminism(t *testing.T) {
	p, ok := coreutils.Get("wc")
	if !ok {
		t.Fatal("no wc program")
	}
	a := verifyStrat(t, p, pipeline.O0, 3, 1, symex.RandPath, 1234)
	b := verifyStrat(t, p, pipeline.O0, 3, 1, symex.RandPath, 1234)
	if a.Stats.Paths != b.Stats.Paths || a.Stats.Instrs != b.Stats.Instrs ||
		a.Stats.StatesExplored != b.Stats.StatesExplored {
		t.Errorf("same-seed runs diverged: %+v vs %+v", a.Stats, b.Stats)
	}
	if fmt.Sprint(bugKeys(a)) != fmt.Sprint(bugKeys(b)) {
		t.Errorf("same-seed bug reports diverged")
	}
}
