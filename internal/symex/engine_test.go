package symex_test

import (
	"testing"

	"overify/internal/core"
	"overify/internal/frontend"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// explore compiles src (no libc) and explores fn with an n-byte buffer.
func explore(t *testing.T, src, fn string, n int, opts symex.Options,
	level pipeline.Level) *symex.Report {
	t.Helper()
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := pipeline.OptimizeAtLevel(mod, level); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	eng := symex.NewEngine(mod, opts)
	buf := eng.SymbolicBuffer("input", n, true)
	rep, err := eng.Run(fn, []symex.SymVal{buf, eng.IntArg(ir.I32, uint64(n))}, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return rep
}

const branchySrc = `
int f(unsigned char *in, int n) {
	int count = 0;
	int i = 0;
	while (in[i] != 0) {
		if (in[i] == 'x') { count = count + 1; }
		i = i + 1;
	}
	return count;
}`

// TestDFSandBFSAgree: exploration order must not change the verdicts.
func TestDFSandBFSAgree(t *testing.T) {
	dfs := explore(t, branchySrc, "f", 4, symex.Options{Strategy: symex.DFS}, pipeline.O0)
	bfs := explore(t, branchySrc, "f", 4, symex.Options{Strategy: symex.BFS}, pipeline.O0)
	if dfs.Stats.Paths != bfs.Stats.Paths {
		t.Errorf("paths: dfs=%d bfs=%d", dfs.Stats.Paths, bfs.Stats.Paths)
	}
	if dfs.Stats.Instrs != bfs.Stats.Instrs {
		t.Errorf("instrs: dfs=%d bfs=%d", dfs.Stats.Instrs, bfs.Stats.Instrs)
	}
	if len(dfs.Bugs) != len(bfs.Bugs) {
		t.Errorf("bugs: dfs=%d bfs=%d", len(dfs.Bugs), len(bfs.Bugs))
	}
}

// TestPathCountExact: each of the n bytes is 0 / 'x' / other, the NUL
// cuts the string: for n=3 the path count is known exactly.
func TestPathCountExact(t *testing.T) {
	rep := explore(t, branchySrc, "f", 3, symex.Options{}, pipeline.O0)
	// Strings over {'x', other}: position of first NUL in {0,1,2,3}
	// gives 1 + 2 + 4 + 8 = 15 paths.
	if rep.Stats.Paths != 15 {
		t.Errorf("paths = %d, want 15", rep.Stats.Paths)
	}
	if len(rep.Bugs) != 0 {
		t.Errorf("unexpected bugs: %v", rep.Bugs)
	}
}

// TestMaxPathsTruncation: the MaxPaths limit stops exploration early
// and reports the truncation.
func TestMaxPathsTruncation(t *testing.T) {
	rep := explore(t, branchySrc, "f", 6, symex.Options{MaxPaths: 10}, pipeline.O0)
	if rep.Stats.TotalPaths() < 10 {
		t.Errorf("explored %d paths, expected at least 10", rep.Stats.TotalPaths())
	}
	if rep.Stats.TruncatedPaths == 0 {
		t.Error("expected truncated paths to be reported")
	}
}

// TestSymbolicWriteReadBack: a store at a symbolic index followed by a
// read at another symbolic index must see the ite-merged memory.
func TestSymbolicWriteReadBack(t *testing.T) {
	src := `
	int f(unsigned char *in, int n) {
		unsigned char buf[4];
		buf[0] = 0; buf[1] = 0; buf[2] = 0; buf[3] = 0;
		int i = (int)in[0] % 4;
		buf[i] = 7;
		int j = (int)in[1] % 4;
		if (buf[j] == 7) {
			// Only feasible when i == j.
			assert(i == j);
			return 1;
		}
		return 0;
	}`
	rep := explore(t, src, "f", 2, symex.Options{}, pipeline.OVerify)
	// The assert must hold on every feasible path: no bugs.
	if len(rep.Bugs) != 0 {
		t.Errorf("assert violated: %v", rep.Bugs)
	}
	if rep.Stats.Paths == 0 {
		t.Error("no paths explored")
	}
}

// TestInfeasiblePathsPruned: contradictory branches must not fork.
func TestInfeasiblePathsPruned(t *testing.T) {
	src := `
	int f(unsigned char *in, int n) {
		int c = (int)in[0];
		if (c > 100) {
			if (c < 50) {
				return 99; // unreachable
			}
			return 1;
		}
		return 0;
	}`
	rep := explore(t, src, "f", 1, symex.Options{}, pipeline.O0)
	// Reachable outcomes: c in (100,255] -> 1, c <= 100 -> 0. The dead
	// branch must not contribute a path.
	if rep.Stats.Paths != 2 {
		t.Errorf("paths = %d, want 2 (the 99-return is infeasible)", rep.Stats.Paths)
	}
}

// TestBugDeduplication: a bug site triggered on many paths is reported
// once.
func TestBugDeduplication(t *testing.T) {
	src := `
	int f(unsigned char *in, int n) {
		int i = 0;
		int acc = 0;
		while (in[i] != 0) {
			acc = acc + 100 / ((int)in[i] - 'z');  // crashes when byte == 'z'
			i = i + 1;
		}
		return acc;
	}`
	rep := explore(t, src, "f", 3, symex.Options{}, pipeline.O0)
	if len(rep.Bugs) != 1 {
		t.Errorf("got %d bug reports, want 1 deduplicated", len(rep.Bugs))
	}
	if rep.Stats.ErrorPaths == 0 {
		t.Error("error paths not counted")
	}
}

// TestCoverageSymbolicInt: the SymbolicInt helper drives non-buffer
// arguments (wc's `any` flag).
func TestCoverageSymbolicInt(t *testing.T) {
	src := `
	int f(unsigned char *in, int flag) {
		if (flag != 0) { return 2; }
		return 1;
	}`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	eng := symex.NewEngine(mod, symex.Options{})
	buf := eng.SymbolicBuffer("input", 1, true)
	flag := eng.SymbolicInt("flag", ir.I32)
	rep, err := eng.Run("f", []symex.SymVal{buf, flag}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Paths != 2 {
		t.Errorf("paths = %d, want 2 (flag zero / nonzero)", rep.Stats.Paths)
	}
}

// TestVerifyOptionsDefaultBytes: core.Verify defaults the input size.
func TestVerifyOptionsDefaultBytes(t *testing.T) {
	c, err := core.CompileSource("cat", `
int umain(unsigned char *input, int len) {
	int i = 0;
	while (input[i] != 0) { i = i + 1; }
	return i;
}`, pipeline.OVerify, core.DefaultLibc(pipeline.OVerify))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Verify("umain", core.VerifyOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.Paths != 5 {
		t.Errorf("paths = %d, want 5 (default 4 bytes + NUL positions)", rep.Stats.Paths)
	}
}
