package frontend_test

import (
	"testing"

	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
)

// wcSrc is Listing 1 from the paper, with the libc calls defined inline.
const wcSrc = `
int isspace(int c) {
	return c == ' ' || c == '\t' || c == '\n' || c == '\r' || c == 11 || c == 12;
}
int isalpha(int c) {
	return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z');
}
int wc(unsigned char *str, int any) {
	int res = 0;
	int new_word = 1;
	for (unsigned char *p = str; *p; ++p) {
		if (isspace(*p) || (any && !isalpha(*p))) {
			new_word = 1;
		} else {
			if (new_word) {
				++res;
				new_word = 0;
			}
		}
	}
	return res;
}
`

func runWc(t *testing.T, input string, any int64) int64 {
	t.Helper()
	mod, err := frontend.Lower("wc", wcSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m := interp.NewMachine(mod, interp.Options{})
	buf := interp.ByteObject("input", append([]byte(input), 0))
	ret, err := m.Call("wc",
		interp.PtrVal(buf, 0),
		interp.IntVal(ir.I32, uint64(any)))
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ir.SignExtend(32, ret.Bits)
}

func TestWcCountsWords(t *testing.T) {
	tests := []struct {
		in   string
		any  int64
		want int64
	}{
		{"", 0, 0},
		{"hello", 0, 1},
		{"hello world", 0, 2},
		{"  leading and   trailing  ", 0, 3},
		{"tab\tsep\nlines", 0, 3},
		{"a,b,c", 0, 1}, // commas are not spaces
		{"a,b,c", 1, 3}, // any!=0: non-alpha separates
		{"x1y", 1, 2},   // digits split words when any!=0
		{"...", 1, 0},
		{"one", 1, 1},
	}
	for _, tt := range tests {
		if got := runWc(t, tt.in, tt.any); got != tt.want {
			t.Errorf("wc(%q, %d) = %d, want %d", tt.in, tt.any, got, tt.want)
		}
	}
}

func TestLowerVerifies(t *testing.T) {
	mod, err := frontend.Lower("wc", wcSrc)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("verify: %v", err)
	}
	if mod.Func("wc") == nil || mod.Func("isspace") == nil {
		t.Fatal("missing functions in module")
	}
}
