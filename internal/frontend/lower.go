// Package frontend lowers MiniC ASTs to IR in the style of clang -O0:
// every local variable gets a stack slot (alloca), every use loads it,
// and short-circuit operators become explicit control flow. All
// optimization is left to internal/passes, so that the -O0 baseline in
// the paper's tables is faithful.
package frontend

import (
	"fmt"

	"overify/internal/ir"
	"overify/internal/lang"
)

// LowerFiles lowers one or more parsed files (e.g. a libc file and a
// program file) into a single IR module. Functions may be declared in one
// file and defined in another.
func LowerFiles(name string, files ...*lang.File) (*ir.Module, error) {
	lw := &lowerer{
		mod:     ir.NewModule(name),
		funcs:   make(map[string]*funcInfo),
		strings: make(map[string]*ir.Global),
	}
	// Phase 1: globals and function signatures.
	for _, f := range files {
		for _, g := range f.Globals {
			if err := lw.lowerGlobal(g); err != nil {
				return nil, err
			}
		}
		for _, fn := range f.Funcs {
			if err := lw.declareFunc(fn); err != nil {
				return nil, err
			}
		}
	}
	// Phase 2: bodies.
	for _, f := range files {
		for _, fn := range f.Funcs {
			if fn.Body == nil {
				continue
			}
			if err := lw.lowerFuncBody(fn); err != nil {
				return nil, err
			}
		}
	}
	// Any remaining declarations without bodies are an error: the module
	// must be self-contained for verification.
	for name, fi := range lw.funcs {
		if fi.irFunc.IsDeclaration() {
			return nil, fmt.Errorf("%s: function %s declared but never defined", fi.pos, name)
		}
	}
	if err := ir.VerifyModule(lw.mod); err != nil {
		return nil, err
	}
	return lw.mod, nil
}

// Lower parses and lowers a single source string; a convenience used
// throughout tests.
func Lower(name, src string) (*ir.Module, error) {
	f, err := lang.Parse(src)
	if err != nil {
		return nil, err
	}
	return LowerFiles(name, f)
}

type funcInfo struct {
	irFunc *ir.Function
	ret    *lang.CType
	params []*lang.CType
	pos    lang.Pos
}

type varInfo struct {
	addr ir.Value    // pointer to storage (alloca or global)
	ct   *lang.CType // declared C type
}

type lowerer struct {
	mod     *ir.Module
	funcs   map[string]*funcInfo
	strings map[string]*ir.Global
	nstr    int
}

func errAt(pos lang.Pos, format string, args ...interface{}) error {
	return &lang.Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// irType maps a MiniC scalar type to its IR type.
func irType(ct *lang.CType) ir.Type {
	switch ct.Kind {
	case lang.CVoid:
		return ir.Void
	case lang.CChar, lang.CUChar:
		return ir.I8
	case lang.CInt, lang.CUInt:
		return ir.I32
	case lang.CLong, lang.CULong:
		return ir.I64
	case lang.CPtr:
		return ir.PtrTo(irType(ct.Elem))
	case lang.CArray:
		return ir.PtrTo(irType(ct.Elem))
	}
	panic("frontend: unmapped type " + ct.String())
}

func (lw *lowerer) lowerGlobal(g *lang.GlobalDecl) error {
	var elem *lang.CType
	var count int64
	switch g.Type.Kind {
	case lang.CArray:
		elem, count = g.Type.Elem, g.Type.Len
	case lang.CPtr:
		return errAt(g.Pos, "global pointers are not supported")
	default:
		elem, count = g.Type, 1
	}
	if !elem.IsInteger() {
		return errAt(g.Pos, "global element type %s not supported", elem)
	}
	irg := &ir.Global{
		Name:     g.Name,
		Elem:     irType(elem),
		Count:    count,
		ReadOnly: g.ReadOnly,
	}
	if g.Init != nil {
		if int64(len(g.Init)) > count {
			return errAt(g.Pos, "too many initializers for %s[%d]", g.Name, count)
		}
		irg.Init = make([]uint64, count)
		for i, e := range g.Init {
			v, err := constEval(e)
			if err != nil {
				return err
			}
			irg.Init[i] = ir.Mask(elem.Bits(), v)
		}
	}
	lw.mod.AddGlobal(irg)
	return nil
}

// constEval evaluates a compile-time constant expression (global
// initializers).
func constEval(e lang.Expr) (uint64, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		return x.Val, nil
	case *lang.Unary:
		v, err := constEval(x.X)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case lang.Minus:
			return -v, nil
		case lang.Tilde:
			return ^v, nil
		case lang.Bang:
			if v == 0 {
				return 1, nil
			}
			return 0, nil
		}
	case *lang.Binary:
		l, err := constEval(x.L)
		if err != nil {
			return 0, err
		}
		r, err := constEval(x.R)
		if err != nil {
			return 0, err
		}
		switch x.Op {
		case lang.Plus:
			return l + r, nil
		case lang.Minus:
			return l - r, nil
		case lang.Star:
			return l * r, nil
		case lang.Pipe:
			return l | r, nil
		case lang.Amp:
			return l & r, nil
		case lang.Caret:
			return l ^ r, nil
		case lang.Shl:
			return l << (r & 63), nil
		case lang.Shr:
			return l >> (r & 63), nil
		}
	}
	return 0, errAt(e.Position(), "initializer is not a constant expression")
}

func (lw *lowerer) declareFunc(fd *lang.FuncDecl) error {
	var ptypes []ir.Type
	var ctypes []*lang.CType
	var names []string
	for _, p := range fd.Params {
		ct := p.Type.Decay()
		ctypes = append(ctypes, ct)
		ptypes = append(ptypes, irType(ct))
		names = append(names, p.Name)
	}
	sig := ir.FuncType{Ret: irType(fd.Ret), Params: ptypes}
	if old, ok := lw.funcs[fd.Name]; ok {
		// Re-declaration must match.
		if !ir.SameType(old.irFunc.Sig, sig) {
			return errAt(fd.Pos, "conflicting declarations of %s", fd.Name)
		}
		return nil
	}
	f := ir.NewFunction(fd.Name, sig, names...)
	lw.mod.AddFunc(f)
	lw.funcs[fd.Name] = &funcInfo{irFunc: f, ret: fd.Ret, params: ctypes, pos: fd.Pos}
	return nil
}

// fnLowerer lowers one function body.
type fnLowerer struct {
	*lowerer
	fd     *lang.FuncDecl
	fn     *ir.Function
	bd     *ir.Builder
	scopes []map[string]varInfo

	breakTo    []*ir.Block
	continueTo []*ir.Block
}

func (lw *lowerer) lowerFuncBody(fd *lang.FuncDecl) error {
	fi := lw.funcs[fd.Name]
	fn := fi.irFunc
	entry := fn.NewBlock("entry")
	fl := &fnLowerer{lowerer: lw, fd: fd, fn: fn, bd: ir.NewBuilder(fn, entry)}
	fl.pushScope()
	// clang -O0 style: spill parameters to stack slots.
	for i, p := range fn.Params {
		ct := fi.params[i]
		slot := fl.bd.Alloca(irType(ct), 1)
		fl.bd.Store(p, slot)
		fl.declare(fd.Params[i].Name, varInfo{addr: slot, ct: ct})
	}
	if err := fl.stmt(fd.Body); err != nil {
		return err
	}
	// Close a fall-through exit.
	if fl.bd.Cur.Term() == nil {
		if fi.ret.IsVoid() {
			fl.bd.Ret(nil)
		} else {
			// Falling off a non-void function returns zero (defined
			// behavior in MiniC, unlike C).
			fl.bd.Ret(zeroValue(fi.ret))
		}
	}
	ir.RemoveUnreachable(fn)
	hoistAllocas(fn)
	return nil
}

// hoistAllocas moves every alloca to the top of the entry block, in
// original order. MiniC allocas are function-scoped, so this is always
// semantics-preserving, and it guarantees that every alloca dominates all
// of its uses regardless of where the declaration appeared.
func hoistAllocas(fn *ir.Function) {
	entry := fn.Entry()
	if entry == nil {
		return
	}
	var allocas []*ir.Instr
	for _, b := range fn.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				allocas = append(allocas, in)
			} else {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	if len(allocas) == 0 {
		return
	}
	for _, a := range allocas {
		a.Blk = entry
	}
	entry.Instrs = append(allocas, entry.Instrs...)
}

func zeroValue(ct *lang.CType) ir.Value {
	if ct.IsPointer() {
		return ir.NullPtr(irType(ct.Elem))
	}
	return ir.ConstInt(irType(ct).(ir.IntType), 0)
}

func (fl *fnLowerer) pushScope() {
	fl.scopes = append(fl.scopes, make(map[string]varInfo))
}

func (fl *fnLowerer) popScope() { fl.scopes = fl.scopes[:len(fl.scopes)-1] }

func (fl *fnLowerer) declare(name string, vi varInfo) {
	fl.scopes[len(fl.scopes)-1][name] = vi
}

func (fl *fnLowerer) lookup(name string) (varInfo, bool) {
	for i := len(fl.scopes) - 1; i >= 0; i-- {
		if vi, ok := fl.scopes[i][name]; ok {
			return vi, true
		}
	}
	// Globals.
	if g := fl.mod.Global(name); g != nil {
		ct := ctypeOfGlobal(g)
		return varInfo{addr: g, ct: ct}, true
	}
	return varInfo{}, false
}

// ctypeOfGlobal reconstructs the MiniC type of a global from its IR shape.
func ctypeOfGlobal(g *ir.Global) *lang.CType {
	var elem *lang.CType
	switch g.Elem.(ir.IntType).Bits {
	case 8:
		elem = lang.TypeChar
	case 32:
		elem = lang.TypeInt
	default:
		elem = lang.TypeLong
	}
	if g.Count == 1 {
		return elem
	}
	return lang.ArrayOf(elem, g.Count)
}

// newBlockHere creates a block and repositions the builder on it if the
// current block is closed (dead-code continuation after return/break).
func (fl *fnLowerer) ensureOpen() {
	if fl.bd.Cur.Term() != nil {
		fl.bd.SetBlock(fl.fn.NewBlock("dead"))
	}
}

// typedVal is an rvalue paired with its MiniC type (already decayed).
type typedVal struct {
	v  ir.Value
	ct *lang.CType
}

// ---------------------------------------------------------------------
// Statements.

func (fl *fnLowerer) stmt(s lang.Stmt) error {
	fl.ensureOpen()
	switch st := s.(type) {
	case *lang.BlockStmt:
		fl.pushScope()
		for _, s2 := range st.List {
			if err := fl.stmt(s2); err != nil {
				return err
			}
		}
		fl.popScope()
		return nil
	case *lang.EmptyStmt:
		return nil
	case *lang.DeclStmt:
		for _, d := range st.Decls {
			if err := fl.declStmt(d); err != nil {
				return err
			}
		}
		return nil
	case *lang.ExprStmt:
		_, err := fl.exprOpt(st.X)
		return err
	case *lang.ReturnStmt:
		return fl.returnStmt(st)
	case *lang.IfStmt:
		return fl.ifStmt(st)
	case *lang.WhileStmt:
		return fl.whileStmt(st)
	case *lang.DoWhileStmt:
		return fl.doWhileStmt(st)
	case *lang.ForStmt:
		return fl.forStmt(st)
	case *lang.BreakStmt:
		if len(fl.breakTo) == 0 {
			return errAt(st.Position(), "break outside loop")
		}
		fl.bd.Br(fl.breakTo[len(fl.breakTo)-1])
		return nil
	case *lang.ContinueStmt:
		if len(fl.continueTo) == 0 {
			return errAt(st.Position(), "continue outside loop")
		}
		fl.bd.Br(fl.continueTo[len(fl.continueTo)-1])
		return nil
	case *lang.AssertStmt:
		cond, err := fl.truthy(st.X)
		if err != nil {
			return err
		}
		fl.bd.Check(ir.CheckAssert, cond, fmt.Sprintf("assert at %s", st.Position()))
		return nil
	}
	return errAt(s.Position(), "unsupported statement")
}

func (fl *fnLowerer) declStmt(d *lang.VarDecl) error {
	switch d.Type.Kind {
	case lang.CArray:
		if !d.Type.Elem.IsInteger() {
			return errAt(d.Pos, "array element type %s not supported", d.Type.Elem)
		}
		slot := fl.bd.Alloca(irType(d.Type.Elem), d.Type.Len)
		fl.declare(d.Name, varInfo{addr: slot, ct: d.Type})
		if d.Init != nil {
			return errAt(d.Pos, "array initializers are not supported for locals")
		}
		return nil
	case lang.CVoid:
		return errAt(d.Pos, "cannot declare void variable")
	default:
		slot := fl.bd.Alloca(irType(d.Type), 1)
		fl.declare(d.Name, varInfo{addr: slot, ct: d.Type})
		if d.Init != nil {
			tv, err := fl.expr(d.Init)
			if err != nil {
				return err
			}
			v, err := fl.convert(tv, d.Type, d.Pos)
			if err != nil {
				return err
			}
			fl.bd.Store(v, slot)
		}
		return nil
	}
}

func (fl *fnLowerer) returnStmt(st *lang.ReturnStmt) error {
	fi := fl.funcs[fl.fd.Name]
	if fi.ret.IsVoid() {
		if st.X != nil {
			return errAt(st.Position(), "return value in void function")
		}
		fl.bd.Ret(nil)
		return nil
	}
	if st.X == nil {
		return errAt(st.Position(), "missing return value")
	}
	tv, err := fl.expr(st.X)
	if err != nil {
		return err
	}
	v, err := fl.convert(tv, fi.ret, st.Position())
	if err != nil {
		return err
	}
	fl.bd.Ret(v)
	return nil
}

func (fl *fnLowerer) ifStmt(st *lang.IfStmt) error {
	cond, err := fl.truthy(st.Cond)
	if err != nil {
		return err
	}
	thenB := fl.fn.NewBlock("if.then")
	endB := fl.fn.NewBlock("if.end")
	elseB := endB
	if st.Else != nil {
		elseB = fl.fn.NewBlock("if.else")
	}
	fl.bd.CondBr(cond, thenB, elseB)
	fl.bd.SetBlock(thenB)
	if err := fl.stmt(st.Then); err != nil {
		return err
	}
	if fl.bd.Cur.Term() == nil {
		fl.bd.Br(endB)
	}
	if st.Else != nil {
		fl.bd.SetBlock(elseB)
		if err := fl.stmt(st.Else); err != nil {
			return err
		}
		if fl.bd.Cur.Term() == nil {
			fl.bd.Br(endB)
		}
	}
	fl.bd.SetBlock(endB)
	return nil
}

func (fl *fnLowerer) whileStmt(st *lang.WhileStmt) error {
	condB := fl.fn.NewBlock("while.cond")
	bodyB := fl.fn.NewBlock("while.body")
	endB := fl.fn.NewBlock("while.end")
	fl.bd.Br(condB)
	fl.bd.SetBlock(condB)
	cond, err := fl.truthy(st.Cond)
	if err != nil {
		return err
	}
	fl.bd.CondBr(cond, bodyB, endB)
	fl.bd.SetBlock(bodyB)
	fl.breakTo = append(fl.breakTo, endB)
	fl.continueTo = append(fl.continueTo, condB)
	err = fl.stmt(st.Body)
	fl.breakTo = fl.breakTo[:len(fl.breakTo)-1]
	fl.continueTo = fl.continueTo[:len(fl.continueTo)-1]
	if err != nil {
		return err
	}
	if fl.bd.Cur.Term() == nil {
		fl.bd.Br(condB)
	}
	fl.bd.SetBlock(endB)
	return nil
}

func (fl *fnLowerer) doWhileStmt(st *lang.DoWhileStmt) error {
	bodyB := fl.fn.NewBlock("do.body")
	condB := fl.fn.NewBlock("do.cond")
	endB := fl.fn.NewBlock("do.end")
	fl.bd.Br(bodyB)
	fl.bd.SetBlock(bodyB)
	fl.breakTo = append(fl.breakTo, endB)
	fl.continueTo = append(fl.continueTo, condB)
	err := fl.stmt(st.Body)
	fl.breakTo = fl.breakTo[:len(fl.breakTo)-1]
	fl.continueTo = fl.continueTo[:len(fl.continueTo)-1]
	if err != nil {
		return err
	}
	if fl.bd.Cur.Term() == nil {
		fl.bd.Br(condB)
	}
	fl.bd.SetBlock(condB)
	cond, err := fl.truthy(st.Cond)
	if err != nil {
		return err
	}
	fl.bd.CondBr(cond, bodyB, endB)
	fl.bd.SetBlock(endB)
	return nil
}

func (fl *fnLowerer) forStmt(st *lang.ForStmt) error {
	fl.pushScope()
	defer fl.popScope()
	if st.Init != nil {
		if err := fl.stmt(st.Init); err != nil {
			return err
		}
	}
	condB := fl.fn.NewBlock("for.cond")
	bodyB := fl.fn.NewBlock("for.body")
	postB := fl.fn.NewBlock("for.post")
	endB := fl.fn.NewBlock("for.end")
	fl.bd.Br(condB)
	fl.bd.SetBlock(condB)
	if st.Cond != nil {
		cond, err := fl.truthy(st.Cond)
		if err != nil {
			return err
		}
		fl.bd.CondBr(cond, bodyB, endB)
	} else {
		fl.bd.Br(bodyB)
	}
	fl.bd.SetBlock(bodyB)
	fl.breakTo = append(fl.breakTo, endB)
	fl.continueTo = append(fl.continueTo, postB)
	err := fl.stmt(st.Body)
	fl.breakTo = fl.breakTo[:len(fl.breakTo)-1]
	fl.continueTo = fl.continueTo[:len(fl.continueTo)-1]
	if err != nil {
		return err
	}
	if fl.bd.Cur.Term() == nil {
		fl.bd.Br(postB)
	}
	fl.bd.SetBlock(postB)
	if st.Post != nil {
		if _, err := fl.exprOpt(st.Post); err != nil {
			return err
		}
	}
	fl.bd.Br(condB)
	fl.bd.SetBlock(endB)
	return nil
}
