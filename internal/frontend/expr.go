package frontend

import (
	"fmt"

	"overify/internal/ir"
	"overify/internal/lang"
)

// exprOpt lowers an expression whose value may be discarded (expression
// statements); void calls are allowed here.
func (fl *fnLowerer) exprOpt(e lang.Expr) (typedVal, error) {
	if c, ok := e.(*lang.Call); ok {
		return fl.call(c, true)
	}
	return fl.expr(e)
}

// expr lowers e to an rvalue.
func (fl *fnLowerer) expr(e lang.Expr) (typedVal, error) {
	switch x := e.(type) {
	case *lang.IntLit:
		// Integer and char literals have type int in C.
		return typedVal{v: ir.ConstInt(ir.I32, x.Val), ct: lang.TypeInt}, nil

	case *lang.StrLit:
		g := fl.internString(x.Val)
		return typedVal{v: g, ct: lang.PtrTo(lang.TypeChar)}, nil

	case *lang.Ident:
		vi, ok := fl.lookup(x.Name)
		if !ok {
			return typedVal{}, errAt(x.Position(), "undefined identifier %q", x.Name)
		}
		if vi.ct.Kind == lang.CArray {
			// Arrays decay to a pointer to their first element.
			return typedVal{v: vi.addr, ct: lang.PtrTo(vi.ct.Elem)}, nil
		}
		return typedVal{v: fl.bd.Load(vi.addr), ct: vi.ct}, nil

	case *lang.Unary:
		return fl.unary(x)

	case *lang.Postfix:
		return fl.incDec(x.X, x.Op == lang.Inc, false, x.Position())

	case *lang.Binary:
		return fl.binary(x)

	case *lang.AssignExpr:
		return fl.assign(x)

	case *lang.Cond:
		return fl.ternary(x)

	case *lang.Call:
		return fl.call(x, false)

	case *lang.Index:
		addr, ct, err := fl.indexAddr(x)
		if err != nil {
			return typedVal{}, err
		}
		return typedVal{v: fl.bd.Load(addr), ct: ct}, nil

	case *lang.CastExpr:
		return fl.cast(x)
	}
	return typedVal{}, errAt(e.Position(), "unsupported expression")
}

func (fl *fnLowerer) internString(s string) *ir.Global {
	if g, ok := fl.strings[s]; ok {
		return g
	}
	g := ir.StringGlobal(fmt.Sprintf("str%d", fl.nstr), s)
	fl.nstr++
	fl.mod.AddGlobal(g)
	fl.strings[s] = g
	return g
}

// lvalue resolves e to an address and the MiniC type of the stored value.
func (fl *fnLowerer) lvalue(e lang.Expr) (ir.Value, *lang.CType, error) {
	switch x := e.(type) {
	case *lang.Ident:
		vi, ok := fl.lookup(x.Name)
		if !ok {
			return nil, nil, errAt(x.Position(), "undefined identifier %q", x.Name)
		}
		if vi.ct.Kind == lang.CArray {
			return nil, nil, errAt(x.Position(), "array %q is not assignable", x.Name)
		}
		return vi.addr, vi.ct, nil
	case *lang.Unary:
		if x.Op == lang.Star {
			tv, err := fl.expr(x.X)
			if err != nil {
				return nil, nil, err
			}
			if !tv.ct.IsPointer() {
				return nil, nil, errAt(x.Position(), "cannot dereference %s", tv.ct)
			}
			return tv.v, tv.ct.Elem, nil
		}
	case *lang.Index:
		return fl.indexAddr(x)
	}
	return nil, nil, errAt(e.Position(), "expression is not assignable")
}

func (fl *fnLowerer) indexAddr(x *lang.Index) (ir.Value, *lang.CType, error) {
	base, err := fl.expr(x.X)
	if err != nil {
		return nil, nil, err
	}
	if !base.ct.IsPointer() {
		return nil, nil, errAt(x.Position(), "cannot index %s", base.ct)
	}
	idx, err := fl.expr(x.I)
	if err != nil {
		return nil, nil, err
	}
	if !idx.ct.IsInteger() {
		return nil, nil, errAt(x.Position(), "index must be integer, got %s", idx.ct)
	}
	i64 := fl.bd.IntCast(idx.v, ir.I64, idx.ct.Signed())
	return fl.bd.GEP(base.v, i64), base.ct.Elem, nil
}

func (fl *fnLowerer) unary(x *lang.Unary) (typedVal, error) {
	switch x.Op {
	case lang.Star:
		tv, err := fl.expr(x.X)
		if err != nil {
			return typedVal{}, err
		}
		if !tv.ct.IsPointer() {
			return typedVal{}, errAt(x.Position(), "cannot dereference %s", tv.ct)
		}
		return typedVal{v: fl.bd.Load(tv.v), ct: tv.ct.Elem}, nil

	case lang.Amp:
		addr, ct, err := fl.lvalue(x.X)
		if err != nil {
			return typedVal{}, err
		}
		return typedVal{v: addr, ct: lang.PtrTo(ct)}, nil

	case lang.Minus:
		tv, err := fl.expr(x.X)
		if err != nil {
			return typedVal{}, err
		}
		pv, ct := fl.promote(tv)
		zero := ir.ConstInt(irType(ct).(ir.IntType), 0)
		return typedVal{v: fl.bd.Bin(ir.OpSub, zero, pv), ct: ct}, nil

	case lang.Tilde:
		tv, err := fl.expr(x.X)
		if err != nil {
			return typedVal{}, err
		}
		pv, ct := fl.promote(tv)
		ones := ir.ConstInt(irType(ct).(ir.IntType), ^uint64(0))
		return typedVal{v: fl.bd.Bin(ir.OpXor, pv, ones), ct: ct}, nil

	case lang.Bang:
		cond, err := fl.truthy(x.X)
		if err != nil {
			return typedVal{}, err
		}
		inv := fl.bd.Bin(ir.OpXor, cond, ir.Bool(true))
		return typedVal{v: fl.bd.ZExt(inv, ir.I32), ct: lang.TypeInt}, nil

	case lang.Inc, lang.Dec:
		return fl.incDec(x.X, x.Op == lang.Inc, true, x.Position())
	}
	return typedVal{}, errAt(x.Position(), "unsupported unary operator %s", x.Op)
}

// incDec lowers ++/-- (pre or post).
func (fl *fnLowerer) incDec(target lang.Expr, inc, pre bool, pos lang.Pos) (typedVal, error) {
	addr, ct, err := fl.lvalue(target)
	if err != nil {
		return typedVal{}, err
	}
	old := fl.bd.Load(addr)
	var nv ir.Value
	if ct.IsPointer() {
		delta := int64(1)
		if !inc {
			delta = -1
		}
		nv = fl.bd.GEP(old, ir.ConstInt(ir.I64, uint64(delta)))
	} else {
		one := ir.ConstInt(irType(ct).(ir.IntType), 1)
		op := ir.OpAdd
		if !inc {
			op = ir.OpSub
		}
		nv = fl.bd.Bin(op, old, one)
	}
	fl.bd.Store(nv, addr)
	if pre {
		return typedVal{v: nv, ct: ct}, nil
	}
	return typedVal{v: old, ct: ct}, nil
}

// promote applies C integer promotion: types narrower than int widen to
// signed int.
func (fl *fnLowerer) promote(tv typedVal) (ir.Value, *lang.CType) {
	if !tv.ct.IsInteger() {
		return tv.v, tv.ct
	}
	if tv.ct.Bits() < 32 {
		return fl.bd.IntCast(tv.v, ir.I32, tv.ct.Signed()), lang.TypeInt
	}
	return tv.v, tv.ct
}

// commonType returns the C "usual arithmetic conversions" result for two
// promoted integer types (int, uint, long, ulong).
func commonType(a, b *lang.CType) *lang.CType {
	rank := func(t *lang.CType) int {
		if t.Bits() == 64 {
			return 2
		}
		return 1
	}
	ra, rb := rank(a), rank(b)
	switch {
	case a.Kind == b.Kind:
		return a
	case a.Signed() == b.Signed():
		if ra >= rb {
			return a
		}
		return b
	}
	// Mixed signedness.
	signed, unsigned := a, b
	if !a.Signed() {
		signed, unsigned = b, a
	}
	if rank(unsigned) >= rank(signed) {
		return unsigned
	}
	// Signed type has greater rank (long vs uint): long represents all
	// uint values.
	return signed
}

// arith converts both operands for a binary arithmetic op, returning the
// converted values and the result type.
func (fl *fnLowerer) arith(l, r typedVal) (ir.Value, ir.Value, *lang.CType) {
	lv, lt := fl.promote(l)
	rv, rt := fl.promote(r)
	ct := commonType(lt, rt)
	it := irType(ct).(ir.IntType)
	lv = fl.bd.IntCast(lv, it, lt.Signed())
	rv = fl.bd.IntCast(rv, it, rt.Signed())
	return lv, rv, ct
}

func (fl *fnLowerer) binary(x *lang.Binary) (typedVal, error) {
	switch x.Op {
	case lang.AndAnd, lang.OrOr:
		return fl.shortCircuit(x)
	}
	l, err := fl.expr(x.L)
	if err != nil {
		return typedVal{}, err
	}
	r, err := fl.expr(x.R)
	if err != nil {
		return typedVal{}, err
	}

	// Pointer arithmetic and comparisons.
	if l.ct.IsPointer() || r.ct.IsPointer() {
		return fl.pointerBinary(x, l, r)
	}
	if !l.ct.IsInteger() || !r.ct.IsInteger() {
		return typedVal{}, errAt(x.Position(), "invalid operands %s and %s", l.ct, r.ct)
	}

	switch x.Op {
	case lang.Plus, lang.Minus, lang.Star, lang.Slash, lang.Percent,
		lang.Amp, lang.Pipe, lang.Caret:
		lv, rv, ct := fl.arith(l, r)
		var op ir.Op
		switch x.Op {
		case lang.Plus:
			op = ir.OpAdd
		case lang.Minus:
			op = ir.OpSub
		case lang.Star:
			op = ir.OpMul
		case lang.Slash:
			if ct.Signed() {
				op = ir.OpSDiv
			} else {
				op = ir.OpUDiv
			}
		case lang.Percent:
			if ct.Signed() {
				op = ir.OpSRem
			} else {
				op = ir.OpURem
			}
		case lang.Amp:
			op = ir.OpAnd
		case lang.Pipe:
			op = ir.OpOr
		case lang.Caret:
			op = ir.OpXor
		}
		return typedVal{v: fl.bd.Bin(op, lv, rv), ct: ct}, nil

	case lang.Shl, lang.Shr:
		lv, lt := fl.promote(l)
		rv, rt := fl.promote(r)
		it := irType(lt).(ir.IntType)
		rv = fl.bd.IntCast(rv, it, rt.Signed())
		var op ir.Op
		if x.Op == lang.Shl {
			op = ir.OpShl
		} else if lt.Signed() {
			op = ir.OpAShr
		} else {
			op = ir.OpLShr
		}
		return typedVal{v: fl.bd.Bin(op, lv, rv), ct: lt}, nil

	case lang.Eq, lang.Ne, lang.Lt, lang.Le, lang.Gt, lang.Ge:
		lv, rv, ct := fl.arith(l, r)
		op := cmpOp(x.Op, ct.Signed())
		c := fl.bd.Cmp(op, lv, rv)
		return typedVal{v: fl.bd.ZExt(c, ir.I32), ct: lang.TypeInt}, nil
	}
	return typedVal{}, errAt(x.Position(), "unsupported binary operator %s", x.Op)
}

func cmpOp(k lang.Kind, signed bool) ir.Op {
	switch k {
	case lang.Eq:
		return ir.OpEq
	case lang.Ne:
		return ir.OpNe
	case lang.Lt:
		if signed {
			return ir.OpSLt
		}
		return ir.OpULt
	case lang.Le:
		if signed {
			return ir.OpSLe
		}
		return ir.OpULe
	case lang.Gt:
		if signed {
			return ir.OpSGt
		}
		return ir.OpUGt
	default:
		if signed {
			return ir.OpSGe
		}
		return ir.OpUGe
	}
}

func (fl *fnLowerer) pointerBinary(x *lang.Binary, l, r typedVal) (typedVal, error) {
	// Normalize "int + ptr" to "ptr + int".
	if !l.ct.IsPointer() && x.Op == lang.Plus {
		l, r = r, l
	}
	switch x.Op {
	case lang.Plus, lang.Minus:
		if l.ct.IsPointer() && r.ct.IsInteger() {
			idx := fl.bd.IntCast(r.v, ir.I64, r.ct.Signed())
			if x.Op == lang.Minus {
				idx = fl.bd.Bin(ir.OpSub, ir.ConstInt(ir.I64, 0), idx)
			}
			return typedVal{v: fl.bd.GEP(l.v, idx), ct: l.ct}, nil
		}
		if x.Op == lang.Minus && l.ct.IsPointer() && r.ct.IsPointer() {
			return typedVal{v: fl.bd.PtrDiff(l.v, r.v), ct: lang.TypeLong}, nil
		}
	case lang.Eq, lang.Ne, lang.Lt, lang.Le, lang.Gt, lang.Ge:
		lv, rv, err := fl.matchPointers(l, r, x.Position())
		if err != nil {
			return typedVal{}, err
		}
		c := fl.bd.Cmp(cmpOp(x.Op, false), lv, rv)
		return typedVal{v: fl.bd.ZExt(c, ir.I32), ct: lang.TypeInt}, nil
	}
	return typedVal{}, errAt(x.Position(), "invalid pointer operation %s on %s and %s", x.Op, l.ct, r.ct)
}

// matchPointers converts operands of a pointer comparison to a common IR
// pointer type; an integer constant 0 becomes null.
func (fl *fnLowerer) matchPointers(l, r typedVal, pos lang.Pos) (ir.Value, ir.Value, error) {
	if l.ct.IsPointer() && r.ct.IsInteger() {
		if c, ok := r.v.(*ir.Const); ok && c.IsZero() {
			return l.v, ir.NullPtr(irType(l.ct.Elem)), nil
		}
		return nil, nil, errAt(pos, "comparison of pointer with non-zero integer")
	}
	if r.ct.IsPointer() && l.ct.IsInteger() {
		if c, ok := l.v.(*ir.Const); ok && c.IsZero() {
			return ir.NullPtr(irType(r.ct.Elem)), r.v, nil
		}
		return nil, nil, errAt(pos, "comparison of pointer with non-zero integer")
	}
	if !ir.SameType(l.v.Type(), r.v.Type()) {
		return nil, nil, errAt(pos, "comparison of incompatible pointers %s and %s", l.ct, r.ct)
	}
	return l.v, r.v, nil
}

// shortCircuit lowers && and || with explicit control flow and a result
// slot, mirroring clang -O0.
func (fl *fnLowerer) shortCircuit(x *lang.Binary) (typedVal, error) {
	slot := fl.bd.Alloca(ir.I32, 1)
	lv, err := fl.truthy(x.L)
	if err != nil {
		return typedVal{}, err
	}
	rhsB := fl.fn.NewBlock("sc.rhs")
	shortB := fl.fn.NewBlock("sc.short")
	endB := fl.fn.NewBlock("sc.end")
	if x.Op == lang.AndAnd {
		fl.bd.CondBr(lv, rhsB, shortB)
	} else {
		fl.bd.CondBr(lv, shortB, rhsB)
	}
	// Short-circuit arm: result is 0 for &&, 1 for ||.
	fl.bd.SetBlock(shortB)
	if x.Op == lang.AndAnd {
		fl.bd.Store(ir.ConstInt(ir.I32, 0), slot)
	} else {
		fl.bd.Store(ir.ConstInt(ir.I32, 1), slot)
	}
	fl.bd.Br(endB)
	// RHS arm.
	fl.bd.SetBlock(rhsB)
	rv, err := fl.truthy(x.R)
	if err != nil {
		return typedVal{}, err
	}
	fl.bd.Store(fl.bd.ZExt(rv, ir.I32), slot)
	fl.bd.Br(endB)
	fl.bd.SetBlock(endB)
	return typedVal{v: fl.bd.Load(slot), ct: lang.TypeInt}, nil
}

func (fl *fnLowerer) ternary(x *lang.Cond) (typedVal, error) {
	cond, err := fl.truthy(x.C)
	if err != nil {
		return typedVal{}, err
	}
	thenB := fl.fn.NewBlock("cond.then")
	elseB := fl.fn.NewBlock("cond.else")
	endB := fl.fn.NewBlock("cond.end")
	// Lower both arms into a shared slot; the slot's type is fixed after
	// the first arm is known, so lower the then-arm first into a
	// temporary position.
	fl.bd.CondBr(cond, thenB, elseB)

	fl.bd.SetBlock(thenB)
	tv, err := fl.expr(x.T)
	if err != nil {
		return typedVal{}, err
	}
	// Create the slot in the entry path: allocas are hoisted by position
	// independence (alloca has no operands), so emitting it here is fine.
	slot := fl.bd.Alloca(tv.v.Type(), 1)
	fl.bd.Store(tv.v, slot)
	fl.bd.Br(endB)

	fl.bd.SetBlock(elseB)
	fv, err := fl.expr(x.F)
	if err != nil {
		return typedVal{}, err
	}
	fvc, err := fl.convert(fv, tv.ct, x.Position())
	if err != nil {
		return typedVal{}, err
	}
	fl.bd.Store(fvc, slot)
	fl.bd.Br(endB)

	fl.bd.SetBlock(endB)
	return typedVal{v: fl.bd.Load(slot), ct: tv.ct}, nil
}

func (fl *fnLowerer) assign(x *lang.AssignExpr) (typedVal, error) {
	addr, ct, err := fl.lvalue(x.L)
	if err != nil {
		return typedVal{}, err
	}
	if x.Op == lang.Assign {
		rv, err := fl.expr(x.R)
		if err != nil {
			return typedVal{}, err
		}
		v, err := fl.convert(rv, ct, x.Position())
		if err != nil {
			return typedVal{}, err
		}
		fl.bd.Store(v, addr)
		return typedVal{v: v, ct: ct}, nil
	}
	// Compound assignment: desugar to load-op-store.
	var binOp lang.Kind
	switch x.Op {
	case lang.PlusAssign:
		binOp = lang.Plus
	case lang.MinusAssign:
		binOp = lang.Minus
	case lang.StarAssign:
		binOp = lang.Star
	case lang.SlashAssign:
		binOp = lang.Slash
	case lang.PercentAssign:
		binOp = lang.Percent
	case lang.AmpAssign:
		binOp = lang.Amp
	case lang.PipeAssign:
		binOp = lang.Pipe
	case lang.CaretAssign:
		binOp = lang.Caret
	case lang.ShlAssign:
		binOp = lang.Shl
	case lang.ShrAssign:
		binOp = lang.Shr
	default:
		return typedVal{}, errAt(x.Position(), "unsupported assignment operator")
	}
	old := typedVal{v: fl.bd.Load(addr), ct: ct}
	rv, err := fl.expr(x.R)
	if err != nil {
		return typedVal{}, err
	}
	var result typedVal
	if ct.IsPointer() {
		if binOp != lang.Plus && binOp != lang.Minus {
			return typedVal{}, errAt(x.Position(), "invalid pointer compound assignment")
		}
		idx := fl.bd.IntCast(rv.v, ir.I64, rv.ct.Signed())
		if binOp == lang.Minus {
			idx = fl.bd.Bin(ir.OpSub, ir.ConstInt(ir.I64, 0), idx)
		}
		result = typedVal{v: fl.bd.GEP(old.v, idx), ct: ct}
	} else {
		fake := &lang.Binary{Op: binOp}
		var err error
		result, err = fl.binaryOnValues(fake, old, rv, x.Position())
		if err != nil {
			return typedVal{}, err
		}
	}
	v, err := fl.convert(result, ct, x.Position())
	if err != nil {
		return typedVal{}, err
	}
	fl.bd.Store(v, addr)
	return typedVal{v: v, ct: ct}, nil
}

// binaryOnValues applies an arithmetic operator to already-lowered
// operands (used by compound assignment).
func (fl *fnLowerer) binaryOnValues(x *lang.Binary, l, r typedVal, pos lang.Pos) (typedVal, error) {
	switch x.Op {
	case lang.Plus, lang.Minus, lang.Star, lang.Slash, lang.Percent,
		lang.Amp, lang.Pipe, lang.Caret:
		lv, rv, ct := fl.arith(l, r)
		var op ir.Op
		switch x.Op {
		case lang.Plus:
			op = ir.OpAdd
		case lang.Minus:
			op = ir.OpSub
		case lang.Star:
			op = ir.OpMul
		case lang.Slash:
			if ct.Signed() {
				op = ir.OpSDiv
			} else {
				op = ir.OpUDiv
			}
		case lang.Percent:
			if ct.Signed() {
				op = ir.OpSRem
			} else {
				op = ir.OpURem
			}
		case lang.Amp:
			op = ir.OpAnd
		case lang.Pipe:
			op = ir.OpOr
		case lang.Caret:
			op = ir.OpXor
		}
		return typedVal{v: fl.bd.Bin(op, lv, rv), ct: ct}, nil
	case lang.Shl, lang.Shr:
		lv, lt := fl.promote(l)
		rv, rt := fl.promote(r)
		it := irType(lt).(ir.IntType)
		rv = fl.bd.IntCast(rv, it, rt.Signed())
		op := ir.OpShl
		if x.Op == lang.Shr {
			if lt.Signed() {
				op = ir.OpAShr
			} else {
				op = ir.OpLShr
			}
		}
		return typedVal{v: fl.bd.Bin(op, lv, rv), ct: lt}, nil
	}
	return typedVal{}, errAt(pos, "unsupported compound operator")
}

func (fl *fnLowerer) call(x *lang.Call, allowVoid bool) (typedVal, error) {
	fi, ok := fl.funcs[x.Name]
	if !ok {
		return typedVal{}, errAt(x.Position(), "call to undefined function %q", x.Name)
	}
	if len(x.Args) != len(fi.params) {
		return typedVal{}, errAt(x.Position(), "call to %s with %d args, want %d",
			x.Name, len(x.Args), len(fi.params))
	}
	args := make([]ir.Value, len(x.Args))
	for i, a := range x.Args {
		tv, err := fl.expr(a)
		if err != nil {
			return typedVal{}, err
		}
		v, err := fl.convert(tv, fi.params[i], a.Position())
		if err != nil {
			return typedVal{}, err
		}
		args[i] = v
	}
	res := fl.bd.Call(fi.irFunc, args...)
	if fi.ret.IsVoid() {
		if !allowVoid {
			return typedVal{}, errAt(x.Position(), "void value of %s() used", x.Name)
		}
		return typedVal{v: nil, ct: lang.TypeVoid}, nil
	}
	return typedVal{v: res, ct: fi.ret}, nil
}

func (fl *fnLowerer) cast(x *lang.CastExpr) (typedVal, error) {
	tv, err := fl.expr(x.X)
	if err != nil {
		return typedVal{}, err
	}
	if x.To.IsVoid() {
		return typedVal{v: nil, ct: lang.TypeVoid}, nil
	}
	v, err := fl.convert(tv, x.To, x.Position())
	if err != nil {
		return typedVal{}, err
	}
	return typedVal{v: v, ct: x.To}, nil
}

// convert coerces tv to MiniC type "to", inserting width changes as
// needed. Pointer conversions require identical IR representations
// (e.g. char* <-> unsigned char*); integer 0 converts to a null pointer.
func (fl *fnLowerer) convert(tv typedVal, to *lang.CType, pos lang.Pos) (ir.Value, error) {
	to = to.Decay()
	from := tv.ct.Decay()
	switch {
	case from.IsInteger() && to.IsInteger():
		return fl.bd.IntCast(tv.v, irType(to).(ir.IntType), from.Signed()), nil
	case from.IsPointer() && to.IsPointer():
		if !ir.SameType(irType(from), irType(to)) {
			return nil, errAt(pos, "incompatible pointer conversion %s to %s", from, to)
		}
		return tv.v, nil
	case from.IsInteger() && to.IsPointer():
		if c, ok := tv.v.(*ir.Const); ok && c.IsZero() {
			return ir.NullPtr(irType(to.Elem)), nil
		}
		return nil, errAt(pos, "cannot convert %s to %s", from, to)
	}
	return nil, errAt(pos, "cannot convert %s to %s", from, to)
}

// truthy lowers e and compares it against zero/null, yielding an i1.
func (fl *fnLowerer) truthy(e lang.Expr) (ir.Value, error) {
	tv, err := fl.expr(e)
	if err != nil {
		return nil, err
	}
	if tv.ct.IsPointer() {
		return fl.bd.Cmp(ir.OpNe, tv.v, ir.NullPtr(irType(tv.ct.Elem))), nil
	}
	if !tv.ct.IsInteger() {
		return nil, errAt(e.Position(), "%s is not a condition", tv.ct)
	}
	it := irType(tv.ct).(ir.IntType)
	return fl.bd.Cmp(ir.OpNe, tv.v, ir.ConstInt(it, 0)), nil
}
