package frontend_test

import (
	"testing"

	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
)

// evalFn lowers src and runs fn(args...), returning the sign-extended
// 32-bit result.
func evalFn(t *testing.T, src, fn string, args ...interp.Value) int64 {
	t.Helper()
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	m := interp.NewMachine(mod, interp.Options{})
	ret, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return ir.SignExtend(32, ret.Bits)
}

func arg(v int64) interp.Value { return interp.IntVal(ir.I32, uint64(v)) }

func TestIntegerPromotions(t *testing.T) {
	// char arithmetic promotes to int: no wraparound at 8 bits.
	src := `
	int f(void) {
		char a = 100;
		char b = 100;
		return a + b;   // 200, not 200-256
	}`
	if got := evalFn(t, src, "f"); got != 200 {
		t.Errorf("char+char = %d, want 200", got)
	}
}

func TestUnsignedCharZeroExtends(t *testing.T) {
	src := `
	int f(void) {
		unsigned char c = 200;
		return (int)c;
	}`
	if got := evalFn(t, src, "f"); got != 200 {
		t.Errorf("(int)uchar(200) = %d", got)
	}
}

func TestSignedCharSignExtends(t *testing.T) {
	src := `
	int f(void) {
		char c = (char)200;   // -56 as signed char
		return (int)c;
	}`
	if got := evalFn(t, src, "f"); got != -56 {
		t.Errorf("(int)char(200) = %d, want -56", got)
	}
}

func TestSignedDivisionTruncates(t *testing.T) {
	src := `int f(int a, int b) { return a / b; }`
	cases := []struct{ a, b, want int64 }{
		{7, 2, 3}, {-7, 2, -3}, {7, -2, -3}, {-7, -2, 3},
	}
	for _, c := range cases {
		if got := evalFn(t, src, "f", arg(c.a), arg(c.b)); got != c.want {
			t.Errorf("%d/%d = %d, want %d", c.a, c.b, got, c.want)
		}
	}
	srcMod := `int f(int a, int b) { return a % b; }`
	modCases := []struct{ a, b, want int64 }{
		{7, 3, 1}, {-7, 3, -1}, {7, -3, 1}, {-7, -3, -1},
	}
	for _, c := range modCases {
		if got := evalFn(t, srcMod, "f", arg(c.a), arg(c.b)); got != c.want {
			t.Errorf("%d%%%d = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestUnsignedComparison(t *testing.T) {
	// Unsigned comparison: 0xFFFFFFFF > 1.
	src := `
	int f(void) {
		unsigned int big = 0xFFFFFFFF;
		unsigned int one = 1;
		if (big > one) { return 1; }
		return 0;
	}`
	if got := evalFn(t, src, "f"); got != 1 {
		t.Error("unsigned comparison used signed semantics")
	}
	// Mixed signed/unsigned: -1 converts to UINT_MAX.
	src2 := `
	int f(void) {
		int neg = -1;
		unsigned int one = 1;
		if (neg > (int)one) { return 2; }    // signed: -1 > 1 false
		if ((unsigned int)neg > one) { return 1; }  // unsigned: max > 1
		return 0;
	}`
	if got := evalFn(t, src2, "f"); got != 1 {
		t.Errorf("mixed comparison = %d, want 1", got)
	}
}

func TestShiftSemantics(t *testing.T) {
	src := `
	int f(void) {
		int a = -8;
		unsigned int b = 0x80000000;
		if ((a >> 1) != -4) { return 1; }       // arithmetic shift for signed
		if ((b >> 1) != 0x40000000) { return 2; } // logical for unsigned
		if ((1 << 4) != 16) { return 3; }
		return 0;
	}`
	if got := evalFn(t, src, "f"); got != 0 {
		t.Errorf("shift check #%d failed", got)
	}
}

func TestShortCircuitEffects(t *testing.T) {
	// The RHS of && must not evaluate when the LHS is false.
	src := `
	int calls;
	int bump(void) { calls = calls + 1; return 1; }
	int f(int c) {
		calls = 0;
		if (c && bump()) { }
		return calls;
	}`
	if got := evalFn(t, src, "f", arg(0)); got != 0 {
		t.Errorf("&& evaluated RHS on false LHS (calls=%d)", got)
	}
	if got := evalFn(t, src, "f", arg(1)); got != 1 {
		t.Errorf("&& skipped RHS on true LHS (calls=%d)", got)
	}
}

func TestTernaryAndCompoundAssign(t *testing.T) {
	src := `
	int f(int x) {
		int y = x > 10 ? x * 2 : x + 1;
		y += 3;
		y <<= 1;
		y ^= 5;
		return y;
	}`
	want := func(x int64) int64 {
		var y int64
		if x > 10 {
			y = x * 2
		} else {
			y = x + 1
		}
		y += 3
		y <<= 1
		y ^= 5
		return int64(int32(y))
	}
	for _, x := range []int64{0, 5, 11, 100} {
		if got := evalFn(t, src, "f", arg(x)); got != want(x) {
			t.Errorf("f(%d) = %d, want %d", x, got, want(x))
		}
	}
}

func TestPrePostIncrement(t *testing.T) {
	src := `
	int f(void) {
		int i = 5;
		int a = i++;  // a=5, i=6
		int b = ++i;  // b=7, i=7
		int c = i--;  // c=7, i=6
		int d = --i;  // d=5, i=5
		return a * 1000 + b * 100 + c * 10 + d;
	}`
	if got := evalFn(t, src, "f"); got != 5000+700+70+5 {
		t.Errorf("inc/dec = %d", got)
	}
}

func TestPointerArithmeticIdioms(t *testing.T) {
	src := `
	int f(void) {
		unsigned char buf[8];
		unsigned char *p = buf;
		unsigned char *q = &buf[5];
		*p = 1;
		p += 3;
		*p = 2;
		if (q - p != 2) { return 1; }
		if (!(p < q)) { return 2; }
		if (buf[0] != 1 || buf[3] != 2) { return 3; }
		p = q - 5;
		if (p != buf) { return 4; }
		return 0;
	}`
	if got := evalFn(t, src, "f"); got != 0 {
		t.Errorf("pointer check #%d failed", got)
	}
}

func TestStringLiterals(t *testing.T) {
	src := `
	int f(void) {
		unsigned char *s = (unsigned char*)"abc";
		return (int)s[0] + (int)s[1] + (int)s[2] + (int)s[3];
	}`
	if got := evalFn(t, src, "f"); got != 'a'+'b'+'c' {
		t.Errorf("string literal sum = %d", got)
	}
}

func TestGlobalInitializers(t *testing.T) {
	src := `
	const int primes[5] = {2, 3, 5, 7, 11};
	int bias = 1 + 2 * 3;
	int f(int i) { return primes[i % 5] + bias; }`
	if got := evalFn(t, src, "f", arg(3)); got != 7+7 {
		t.Errorf("got %d", got)
	}
}

func TestFrontendRejects(t *testing.T) {
	bad := []string{
		`int f(void) { return g(); }`,               // undefined function
		`int f(void) { return x; }`,                 // undefined variable
		`int f(void) { break; }`,                    // break outside loop
		`int f(int a) { a(); return 0; }`,           // calling a variable
		`void f(void) { return 1; }`,                // value in void return
		`int f(int *p, long *q) { return p == q; }`, // incompatible ptr cmp
		`int f(void) { int x = "s"; return x; }`,    // string to int
		`int g(int); int f(void) { return g(1); }`,  // declared, not defined
	}
	for _, src := range bad {
		if _, err := frontend.Lower("t", src); err == nil {
			t.Errorf("accepted invalid program: %s", src)
		}
	}
}

func TestVoidFunctions(t *testing.T) {
	src := `
	int g;
	void set(int v) { g = v; }
	int f(void) { set(42); return g; }`
	if got := evalFn(t, src, "f"); got != 42 {
		t.Errorf("void call result %d", got)
	}
}

func TestRecursionSemantics(t *testing.T) {
	src := `
	int ack(int m, int n) {
		if (m == 0) { return n + 1; }
		if (n == 0) { return ack(m - 1, 1); }
		return ack(m - 1, ack(m, n - 1));
	}`
	if got := evalFn(t, src, "ack", arg(2), arg(3)); got != 9 {
		t.Errorf("ack(2,3) = %d, want 9", got)
	}
}
