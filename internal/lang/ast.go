package lang

import "fmt"

// CType is a MiniC semantic type.
type CType struct {
	Kind CTypeKind
	Elem *CType // pointer element / array element
	Len  int64  // array length
}

// CTypeKind enumerates MiniC type constructors.
type CTypeKind int

// MiniC type kinds. Integer kinds carry fixed widths: char 8, int 32,
// long 64 bits.
const (
	CVoid CTypeKind = iota
	CChar
	CUChar
	CInt
	CUInt
	CLong
	CULong
	CPtr
	CArray
)

// Common type singletons.
var (
	TypeVoid  = &CType{Kind: CVoid}
	TypeChar  = &CType{Kind: CChar}
	TypeUChar = &CType{Kind: CUChar}
	TypeInt   = &CType{Kind: CInt}
	TypeUInt  = &CType{Kind: CUInt}
	TypeLong  = &CType{Kind: CLong}
	TypeULong = &CType{Kind: CULong}
)

// PtrTo returns the pointer type to elem.
func PtrTo(elem *CType) *CType { return &CType{Kind: CPtr, Elem: elem} }

// ArrayOf returns the array type of n elems.
func ArrayOf(elem *CType, n int64) *CType {
	return &CType{Kind: CArray, Elem: elem, Len: n}
}

// IsInteger reports whether t is an integer type.
func (t *CType) IsInteger() bool {
	switch t.Kind {
	case CChar, CUChar, CInt, CUInt, CLong, CULong:
		return true
	}
	return false
}

// IsPointer reports whether t is a pointer (or array, which decays).
func (t *CType) IsPointer() bool { return t.Kind == CPtr || t.Kind == CArray }

// IsVoid reports whether t is void.
func (t *CType) IsVoid() bool { return t.Kind == CVoid }

// Signed reports whether an integer type is signed.
func (t *CType) Signed() bool {
	switch t.Kind {
	case CChar, CInt, CLong:
		return true
	}
	return false
}

// Bits returns the width of an integer type in bits.
func (t *CType) Bits() int {
	switch t.Kind {
	case CChar, CUChar:
		return 8
	case CInt, CUInt:
		return 32
	case CLong, CULong:
		return 64
	}
	return 0
}

// Decay converts arrays to pointers to their element type; other types
// are returned unchanged.
func (t *CType) Decay() *CType {
	if t.Kind == CArray {
		return PtrTo(t.Elem)
	}
	return t
}

// Equal reports structural type equality.
func (t *CType) Equal(o *CType) bool {
	if t == nil || o == nil {
		return t == o
	}
	if t.Kind != o.Kind || t.Len != o.Len {
		return false
	}
	if t.Elem != nil || o.Elem != nil {
		if t.Elem == nil || o.Elem == nil {
			return false
		}
		return t.Elem.Equal(o.Elem)
	}
	return true
}

// String renders the type in C syntax.
func (t *CType) String() string {
	switch t.Kind {
	case CVoid:
		return "void"
	case CChar:
		return "char"
	case CUChar:
		return "unsigned char"
	case CInt:
		return "int"
	case CUInt:
		return "unsigned int"
	case CLong:
		return "long"
	case CULong:
		return "unsigned long"
	case CPtr:
		return t.Elem.String() + "*"
	case CArray:
		return fmt.Sprintf("%s[%d]", t.Elem.String(), t.Len)
	}
	return "?"
}

// Expr is a MiniC expression AST node.
type Expr interface {
	exprNode()
	// Position returns the source position of the expression.
	Position() Pos
}

type exprBase struct{ Pos Pos }

func (exprBase) exprNode()       {}
func (e exprBase) Position() Pos { return e.Pos }

// IntLit is an integer or character literal.
type IntLit struct {
	exprBase
	Val    uint64
	IsChar bool
}

// StrLit is a string literal; its value is a pointer to a NUL-terminated
// read-only i8 array.
type StrLit struct {
	exprBase
	Val string
}

// Ident references a variable, parameter or function by name.
type Ident struct {
	exprBase
	Name string
}

// Unary is a prefix operator: ! ~ - + * & ++ --.
type Unary struct {
	exprBase
	Op Kind
	X  Expr
}

// Postfix is a postfix ++ or --.
type Postfix struct {
	exprBase
	Op Kind
	X  Expr
}

// Binary is an infix binary operator (arithmetic, bitwise, comparison).
// Short-circuit && and || are represented with Binary and lowered with
// control flow by the frontend.
type Binary struct {
	exprBase
	Op   Kind
	L, R Expr
}

// Assign is an assignment, possibly compound (Op != Assign means e.g. +=).
type AssignExpr struct {
	exprBase
	Op   Kind
	L, R Expr
}

// Cond is the ternary conditional operator.
type Cond struct {
	exprBase
	C, T, F Expr
}

// Call is a function call by name.
type Call struct {
	exprBase
	Name string
	Args []Expr
}

// Index is array/pointer subscripting: X[I].
type Index struct {
	exprBase
	X, I Expr
}

// CastExpr is an explicit C cast to a scalar type.
type CastExpr struct {
	exprBase
	To *CType
	X  Expr
}

// Stmt is a MiniC statement AST node.
type Stmt interface {
	stmtNode()
	// Position returns the source position of the statement.
	Position() Pos
}

type stmtBase struct{ Pos Pos }

func (stmtBase) stmtNode()       {}
func (s stmtBase) Position() Pos { return s.Pos }

// DeclStmt declares one or more local variables of a base type.
type DeclStmt struct {
	stmtBase
	Decls []*VarDecl
}

// VarDecl is a single declarator: a scalar or array variable with an
// optional initializer (scalars only).
type VarDecl struct {
	Name string
	Type *CType
	Init Expr // nil if absent
	Pos  Pos
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	stmtBase
	X Expr
}

// IfStmt is if/else.
type IfStmt struct {
	stmtBase
	Cond Expr
	Then Stmt
	Else Stmt // nil if absent
}

// WhileStmt is a while loop.
type WhileStmt struct {
	stmtBase
	Cond Expr
	Body Stmt
}

// DoWhileStmt is a do/while loop.
type DoWhileStmt struct {
	stmtBase
	Body Stmt
	Cond Expr
}

// ForStmt is a C for loop; Init may be a DeclStmt or ExprStmt.
type ForStmt struct {
	stmtBase
	Init Stmt // nil if absent
	Cond Expr // nil means true
	Post Expr // nil if absent
	Body Stmt
}

// ReturnStmt returns from the function.
type ReturnStmt struct {
	stmtBase
	X Expr // nil for void return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ stmtBase }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ stmtBase }

// BlockStmt is a brace-delimited scope.
type BlockStmt struct {
	stmtBase
	List []Stmt
}

// AssertStmt lowers to a runtime check (CheckAssert).
type AssertStmt struct {
	stmtBase
	X Expr
}

// EmptyStmt is a lone semicolon.
type EmptyStmt struct{ stmtBase }

// FuncDecl is a function definition or declaration (Body nil).
type FuncDecl struct {
	Name   string
	Ret    *CType
	Params []*VarDecl
	Body   *BlockStmt // nil for a declaration
	Pos    Pos
}

// GlobalDecl is a file-scope variable, optionally const with an
// initializer list (arrays) or single expression (scalars).
type GlobalDecl struct {
	Name     string
	Type     *CType
	Init     []Expr // element initializers; nil for zero-init
	ReadOnly bool
	Pos      Pos
}

// File is a parsed translation unit.
type File struct {
	Funcs   []*FuncDecl
	Globals []*GlobalDecl
}
