package lang

import "fmt"

// Parser is a recursive-descent parser for MiniC.
type Parser struct {
	toks []Token
	pos  int
}

// Parse parses a MiniC translation unit.
func Parse(src string) (*File, error) {
	toks, err := Tokenize(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	return p.parseFile()
}

func (p *Parser) cur() Token  { return p.toks[p.pos] }
func (p *Parser) next() Token { t := p.toks[p.pos]; p.pos++; return t }

func (p *Parser) peekKind(n int) Kind {
	if p.pos+n >= len(p.toks) {
		return EOF
	}
	return p.toks[p.pos+n].Kind
}

func (p *Parser) at(k Kind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k Kind) bool {
	if p.at(k) {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) expect(k Kind) (Token, error) {
	if p.at(k) {
		return p.next(), nil
	}
	return Token{}, p.errf("expected %s, found %s", k, p.describe(p.cur()))
}

func (p *Parser) describe(t Token) string {
	switch t.Kind {
	case IDENT:
		return fmt.Sprintf("identifier %q", t.Text)
	case INTLIT:
		return fmt.Sprintf("literal %s", t.Text)
	default:
		return fmt.Sprintf("%q", t.Kind.String())
	}
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &Error{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) parseFile() (*File, error) {
	f := &File{}
	for !p.at(EOF) {
		ro := p.accept(KwConst)
		base, err := p.parseBaseType()
		if err != nil {
			return nil, err
		}
		typ := p.parseStars(base)
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.at(LParen) {
			fn, err := p.parseFuncRest(typ, name)
			if err != nil {
				return nil, err
			}
			f.Funcs = append(f.Funcs, fn)
			continue
		}
		g, err := p.parseGlobalRest(typ, name, ro)
		if err != nil {
			return nil, err
		}
		f.Globals = append(f.Globals, g)
	}
	return f, nil
}

// atTypeStart reports whether the current token can begin a type.
func (p *Parser) atTypeStart() bool {
	switch p.cur().Kind {
	case KwInt, KwChar, KwLong, KwVoid, KwUnsigned, KwSigned, KwConst:
		return true
	}
	return false
}

func (p *Parser) parseBaseType() (*CType, error) {
	unsigned := false
	signed := false
	for {
		if p.accept(KwUnsigned) {
			unsigned = true
			continue
		}
		if p.accept(KwSigned) {
			signed = true
			continue
		}
		break
	}
	switch {
	case p.accept(KwVoid):
		if unsigned || signed {
			return nil, p.errf("void cannot be signed or unsigned")
		}
		return TypeVoid, nil
	case p.accept(KwChar):
		if unsigned {
			return TypeUChar, nil
		}
		return TypeChar, nil
	case p.accept(KwLong):
		p.accept(KwLong) // allow "long long"
		p.accept(KwInt)  // allow "long int"
		if unsigned {
			return TypeULong, nil
		}
		return TypeLong, nil
	case p.accept(KwInt):
		if unsigned {
			return TypeUInt, nil
		}
		return TypeInt, nil
	default:
		if unsigned {
			return TypeUInt, nil // bare "unsigned"
		}
		if signed {
			return TypeInt, nil // bare "signed"
		}
		return nil, p.errf("expected type, found %s", p.describe(p.cur()))
	}
}

func (p *Parser) parseStars(t *CType) *CType {
	for p.accept(Star) {
		p.accept(KwConst) // const pointers are accepted and ignored
		t = PtrTo(t)
	}
	return t
}

func (p *Parser) parseFuncRest(ret *CType, name Token) (*FuncDecl, error) {
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Name: name.Text, Ret: ret, Pos: name.Pos}
	if p.accept(KwVoid) && p.at(RParen) {
		// (void) parameter list
	} else if !p.at(RParen) {
		for {
			p.accept(KwConst)
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			typ := p.parseStars(base)
			pname, err := p.expect(IDENT)
			if err != nil {
				return nil, err
			}
			if p.accept(LBracket) {
				// Array parameters decay to pointers.
				if p.at(INTLIT) {
					p.next()
				}
				if _, err := p.expect(RBracket); err != nil {
					return nil, err
				}
				typ = PtrTo(typ)
			}
			fn.Params = append(fn.Params, &VarDecl{Name: pname.Text, Type: typ, Pos: pname.Pos})
			if !p.accept(Comma) {
				break
			}
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	if p.accept(Semi) {
		return fn, nil // declaration only
	}
	body, err := p.parseBlock()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *Parser) parseGlobalRest(typ *CType, name Token, ro bool) (*GlobalDecl, error) {
	g := &GlobalDecl{Name: name.Text, Type: typ, ReadOnly: ro, Pos: name.Pos}
	if p.accept(LBracket) {
		n, err := p.expect(INTLIT)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RBracket); err != nil {
			return nil, err
		}
		g.Type = ArrayOf(typ, int64(n.Val))
	}
	if p.accept(Assign) {
		if p.accept(LBrace) {
			for !p.at(RBrace) {
				e, err := p.parseCondExpr()
				if err != nil {
					return nil, err
				}
				g.Init = append(g.Init, e)
				if !p.accept(Comma) {
					break
				}
			}
			if _, err := p.expect(RBrace); err != nil {
				return nil, err
			}
		} else if p.at(STRLIT) && g.Type.Kind == CArray {
			s := p.next()
			for i := 0; i < len(s.Str); i++ {
				g.Init = append(g.Init, &IntLit{exprBase: exprBase{Pos: s.Pos}, Val: uint64(s.Str[i])})
			}
			g.Init = append(g.Init, &IntLit{exprBase: exprBase{Pos: s.Pos}})
		} else {
			e, err := p.parseCondExpr()
			if err != nil {
				return nil, err
			}
			g.Init = []Expr{e}
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return g, nil
}

func (p *Parser) parseBlock() (*BlockStmt, error) {
	lb, err := p.expect(LBrace)
	if err != nil {
		return nil, err
	}
	blk := &BlockStmt{stmtBase: stmtBase{Pos: lb.Pos}}
	for !p.at(RBrace) {
		if p.at(EOF) {
			return nil, p.errf("unexpected EOF in block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		blk.List = append(blk.List, s)
	}
	p.next() // consume RBrace
	return blk, nil
}

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch t.Kind {
	case LBrace:
		return p.parseBlock()
	case Semi:
		p.next()
		return &EmptyStmt{stmtBase{Pos: t.Pos}}, nil
	case KwIf:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		then, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		var els Stmt
		if p.accept(KwElse) {
			els, err = p.parseStmt()
			if err != nil {
				return nil, err
			}
		}
		return &IfStmt{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Then: then, Else: els}, nil
	case KwWhile:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{stmtBase: stmtBase{Pos: t.Pos}, Cond: cond, Body: body}, nil
	case KwDo:
		p.next()
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(KwWhile); err != nil {
			return nil, err
		}
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &DoWhileStmt{stmtBase: stmtBase{Pos: t.Pos}, Body: body, Cond: cond}, nil
	case KwFor:
		return p.parseFor()
	case KwReturn:
		p.next()
		var x Expr
		if !p.at(Semi) {
			var err error
			x, err = p.parseExpr()
			if err != nil {
				return nil, err
			}
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ReturnStmt{stmtBase: stmtBase{Pos: t.Pos}, X: x}, nil
	case KwBreak:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &BreakStmt{stmtBase{Pos: t.Pos}}, nil
	case KwContinue:
		p.next()
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &ContinueStmt{stmtBase{Pos: t.Pos}}, nil
	case KwAssert:
		p.next()
		if _, err := p.expect(LParen); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		if _, err := p.expect(Semi); err != nil {
			return nil, err
		}
		return &AssertStmt{stmtBase: stmtBase{Pos: t.Pos}, X: x}, nil
	}
	if p.atTypeStart() {
		return p.parseDeclStmt()
	}
	x, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return &ExprStmt{stmtBase: stmtBase{Pos: t.Pos}, X: x}, nil
}

func (p *Parser) parseDeclStmt() (Stmt, error) {
	pos := p.cur().Pos
	p.accept(KwConst)
	base, err := p.parseBaseType()
	if err != nil {
		return nil, err
	}
	ds := &DeclStmt{stmtBase: stmtBase{Pos: pos}}
	for {
		typ := p.parseStars(base)
		name, err := p.expect(IDENT)
		if err != nil {
			return nil, err
		}
		if p.accept(LBracket) {
			n, err := p.expect(INTLIT)
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			typ = ArrayOf(typ, int64(n.Val))
		}
		vd := &VarDecl{Name: name.Text, Type: typ, Pos: name.Pos}
		if p.accept(Assign) {
			vd.Init, err = p.parseAssignExpr()
			if err != nil {
				return nil, err
			}
		}
		ds.Decls = append(ds.Decls, vd)
		if !p.accept(Comma) {
			break
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	return ds, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(LParen); err != nil {
		return nil, err
	}
	fs := &ForStmt{stmtBase: stmtBase{Pos: t.Pos}}
	if !p.accept(Semi) {
		if p.atTypeStart() {
			init, err := p.parseDeclStmt()
			if err != nil {
				return nil, err
			}
			fs.Init = init
		} else {
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fs.Init = &ExprStmt{stmtBase: stmtBase{Pos: x.Position()}, X: x}
			if _, err := p.expect(Semi); err != nil {
				return nil, err
			}
		}
	}
	if !p.at(Semi) {
		var err error
		fs.Cond, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(Semi); err != nil {
		return nil, err
	}
	if !p.at(RParen) {
		var err error
		fs.Post, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(RParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	fs.Body = body
	return fs, nil
}

// Expression parsing. MiniC has no comma operator, so parseExpr is
// parseAssignExpr.
func (p *Parser) parseExpr() (Expr, error) { return p.parseAssignExpr() }

func isAssignOp(k Kind) bool { return k >= Assign && k <= ShrAssign }

func (p *Parser) parseAssignExpr() (Expr, error) {
	l, err := p.parseCondExpr()
	if err != nil {
		return nil, err
	}
	if isAssignOp(p.cur().Kind) {
		op := p.next()
		r, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		return &AssignExpr{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: l, R: r}, nil
	}
	return l, nil
}

func (p *Parser) parseCondExpr() (Expr, error) {
	c, err := p.parseBinExpr(0)
	if err != nil {
		return nil, err
	}
	if p.at(Question) {
		q := p.next()
		t, err := p.parseAssignExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(Colon); err != nil {
			return nil, err
		}
		f, err := p.parseCondExpr()
		if err != nil {
			return nil, err
		}
		return &Cond{exprBase: exprBase{Pos: q.Pos}, C: c, T: t, F: f}, nil
	}
	return c, nil
}

// binPrec returns the binding power of infix operators; 0 means not an
// infix operator.
func binPrec(k Kind) int {
	switch k {
	case OrOr:
		return 1
	case AndAnd:
		return 2
	case Pipe:
		return 3
	case Caret:
		return 4
	case Amp:
		return 5
	case Eq, Ne:
		return 6
	case Lt, Le, Gt, Ge:
		return 7
	case Shl, Shr:
		return 8
	case Plus, Minus:
		return 9
	case Star, Slash, Percent:
		return 10
	}
	return 0
}

func (p *Parser) parseBinExpr(minPrec int) (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec := binPrec(p.cur().Kind)
		if prec == 0 || prec < minPrec {
			return l, nil
		}
		op := p.next()
		r, err := p.parseBinExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{Pos: op.Pos}, Op: op.Kind, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case Bang, Tilde, Minus, Plus, Star, Amp:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		if t.Kind == Plus {
			return x, nil
		}
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}, nil
	case Inc, Dec:
		p.next()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}, nil
	case LParen:
		// Cast if '(' is followed by a type.
		if p.isCastStart() {
			p.next() // (
			p.accept(KwConst)
			base, err := p.parseBaseType()
			if err != nil {
				return nil, err
			}
			typ := p.parseStars(base)
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x, err := p.parseUnary()
			if err != nil {
				return nil, err
			}
			return &CastExpr{exprBase: exprBase{Pos: t.Pos}, To: typ, X: x}, nil
		}
	}
	return p.parsePostfix()
}

func (p *Parser) isCastStart() bool {
	if !p.at(LParen) {
		return false
	}
	switch p.peekKind(1) {
	case KwInt, KwChar, KwLong, KwVoid, KwUnsigned, KwSigned, KwConst:
		return true
	}
	return false
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		switch t.Kind {
		case LBracket:
			p.next()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(RBracket); err != nil {
				return nil, err
			}
			x = &Index{exprBase: exprBase{Pos: t.Pos}, X: x, I: idx}
		case Inc, Dec:
			p.next()
			x = &Postfix{exprBase: exprBase{Pos: t.Pos}, Op: t.Kind, X: x}
		case LParen:
			id, ok := x.(*Ident)
			if !ok {
				return nil, p.errf("calls must name a function directly")
			}
			p.next()
			call := &Call{exprBase: exprBase{Pos: t.Pos}, Name: id.Name}
			if !p.at(RParen) {
				for {
					a, err := p.parseAssignExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(Comma) {
						break
					}
				}
			}
			if _, err := p.expect(RParen); err != nil {
				return nil, err
			}
			x = call
		default:
			return x, nil
		}
	}
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case INTLIT:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Val}, nil
	case CHARLIT:
		p.next()
		return &IntLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Val, IsChar: true}, nil
	case STRLIT:
		p.next()
		return &StrLit{exprBase: exprBase{Pos: t.Pos}, Val: t.Str}, nil
	case IDENT:
		p.next()
		return &Ident{exprBase: exprBase{Pos: t.Pos}, Name: t.Text}, nil
	case LParen:
		p.next()
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(RParen); err != nil {
			return nil, err
		}
		return x, nil
	}
	return nil, p.errf("expected expression, found %s", p.describe(t))
}
