package lang

import (
	"strings"
	"testing"
)

func TestLexerTokens(t *testing.T) {
	toks, err := Tokenize(`int x = 0x1F + 'a' - 10; // comment
		/* block */ if (x >= 2) x <<= 3;`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []Kind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []Kind{
		KwInt, IDENT, Assign, INTLIT, Plus, CHARLIT, Minus, INTLIT, Semi,
		KwIf, LParen, IDENT, Ge, INTLIT, RParen, IDENT, ShlAssign, INTLIT, Semi,
		EOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(kinds), kinds, len(want))
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %s, want %s", i, kinds[i], want[i])
		}
	}
}

func TestLexerLiterals(t *testing.T) {
	tests := []struct {
		src  string
		val  uint64
		kind Kind
	}{
		{"42", 42, INTLIT},
		{"0x2A", 42, INTLIT},
		{"0", 0, INTLIT},
		{"'A'", 65, CHARLIT},
		{`'\n'`, 10, CHARLIT},
		{`'\0'`, 0, CHARLIT},
		{`'\\'`, 92, CHARLIT},
		{`'\x41'`, 65, CHARLIT},
		{"100u", 100, INTLIT},
		{"7L", 7, INTLIT},
	}
	for _, tt := range tests {
		toks, err := Tokenize(tt.src)
		if err != nil {
			t.Errorf("%q: %v", tt.src, err)
			continue
		}
		if toks[0].Kind != tt.kind || toks[0].Val != tt.val {
			t.Errorf("%q = (%s, %d), want (%s, %d)", tt.src, toks[0].Kind, toks[0].Val, tt.kind, tt.val)
		}
	}
}

func TestLexerStrings(t *testing.T) {
	toks, err := Tokenize(`"hi\tthere\n"`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Str != "hi\tthere\n" {
		t.Errorf("got %q", toks[0].Str)
	}
}

func TestLexerErrors(t *testing.T) {
	for _, src := range []string{
		`"unterminated`,
		`'`,
		`''`,
		`'ab'`,
		"/* unterminated",
		"@",
		`'\q'`,
	} {
		if _, err := Tokenize(src); err == nil {
			t.Errorf("%q: expected lex error", src)
		}
	}
}

func TestParserFunctions(t *testing.T) {
	f, err := Parse(`
		int add(int a, int b) { return a + b; }
		void noop(void) { }
		unsigned char deref(unsigned char *p) { return *p; }
		long big(long x);
		long big(long x) { return x; }
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Funcs) != 5 {
		t.Fatalf("got %d funcs, want 5 (incl. the declaration)", len(f.Funcs))
	}
	if f.Funcs[0].Name != "add" || len(f.Funcs[0].Params) != 2 {
		t.Errorf("add parsed wrong: %+v", f.Funcs[0])
	}
	if f.Funcs[1].Ret.Kind != CVoid {
		t.Error("noop should return void")
	}
	if f.Funcs[2].Params[0].Type.Kind != CPtr || f.Funcs[2].Params[0].Type.Elem.Kind != CUChar {
		t.Errorf("deref param type = %s", f.Funcs[2].Params[0].Type)
	}
	if f.Funcs[3].Body != nil {
		t.Error("declaration should have no body")
	}
}

func TestParserGlobals(t *testing.T) {
	f, err := Parse(`
		int counter;
		const char table[4] = {1, 2, 3, 4};
		char msg[6] = "hello";
		int limit = 10 + 2;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Globals) != 4 {
		t.Fatalf("got %d globals", len(f.Globals))
	}
	if !f.Globals[1].ReadOnly {
		t.Error("table should be const")
	}
	if len(f.Globals[2].Init) != 6 { // "hello" + NUL
		t.Errorf("msg init len = %d, want 6", len(f.Globals[2].Init))
	}
}

func TestParserPrecedence(t *testing.T) {
	// 1 + 2 * 3 must parse as 1 + (2 * 3).
	f, err := Parse(`int f(void) { return 1 + 2 * 3; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.List[0].(*ReturnStmt)
	add, ok := ret.X.(*Binary)
	if !ok || add.Op != Plus {
		t.Fatalf("top is %T, want + binary", ret.X)
	}
	if mul, ok := add.R.(*Binary); !ok || mul.Op != Star {
		t.Fatalf("rhs is %#v, want * binary", add.R)
	}
}

func TestParserStatements(t *testing.T) {
	src := `
	int f(int n) {
		int acc = 0;
		for (int i = 0; i < n; i++) {
			if (i % 2 == 0) continue;
			acc += i;
		}
		while (acc > 100) acc /= 2;
		do { acc--; } while (acc > 50);
		assert(acc <= 50);
		return acc > 0 ? acc : -acc;
	}`
	if _, err := Parse(src); err != nil {
		t.Fatal(err)
	}
}

func TestParserCasts(t *testing.T) {
	f, err := Parse(`long f(char c) { return (long)(unsigned char)c; }`)
	if err != nil {
		t.Fatal(err)
	}
	ret := f.Funcs[0].Body.List[0].(*ReturnStmt)
	outer, ok := ret.X.(*CastExpr)
	if !ok || outer.To.Kind != CLong {
		t.Fatalf("outer cast wrong: %#v", ret.X)
	}
	if inner, ok := outer.X.(*CastExpr); !ok || inner.To.Kind != CUChar {
		t.Fatalf("inner cast wrong: %#v", outer.X)
	}
}

func TestParserErrors(t *testing.T) {
	for _, src := range []string{
		"int f( { }",
		"int f(void) { return }",
		"int f(void) { if }",
		"int f(void) { break; }", // handled by frontend, parses fine
		"int 3x;",
		"blah",
		"int f(void) { x = ; }",
		"int f(void) { for (;; }",
	} {
		_, err := Parse(src)
		if src == "int f(void) { break; }" {
			if err != nil {
				t.Errorf("%q should parse (frontend rejects it)", src)
			}
			continue
		}
		if err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParserErrorPositions(t *testing.T) {
	_, err := Parse("int f(void) {\n\treturn $;\n}")
	if err == nil {
		t.Fatal("expected error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error %q should point at line 2", err)
	}
}
