package lang

import (
	"fmt"
	"strings"
)

// Lexer turns MiniC source text into a token stream.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Error is a front-end diagnostic with a source position.
type Error struct {
	Pos Pos
	Msg string
}

// Error formats the diagnostic.
func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (lx *Lexer) errf(pos Pos, format string, args ...interface{}) error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.peek2() == '*':
			start := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return lx.errf(start, "unterminated block comment")
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentCont(c byte) bool { return isIdentStart(c) || (c >= '0' && c <= '9') }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isHexDigit(c byte) bool {
	return isDigit(c) || (c >= 'a' && c <= 'f') || (c >= 'A' && c <= 'F')
}

// Next lexes and returns the next token.
func (lx *Lexer) Next() (Token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: EOF, Pos: pos}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		start := lx.off
		for lx.off < len(lx.src) && isIdentCont(lx.peek()) {
			lx.advance()
		}
		text := lx.src[start:lx.off]
		if kw, ok := keywords[text]; ok {
			return Token{Kind: kw, Pos: pos, Text: text}, nil
		}
		return Token{Kind: IDENT, Pos: pos, Text: text}, nil

	case isDigit(c):
		return lx.lexNumber(pos)

	case c == '\'':
		return lx.lexChar(pos)

	case c == '"':
		return lx.lexString(pos)
	}

	// Operators and punctuation.
	two := func(k Kind) (Token, error) {
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	three := func(k Kind) (Token, error) {
		lx.advance()
		lx.advance()
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	one := func(k Kind) (Token, error) {
		lx.advance()
		return Token{Kind: k, Pos: pos}, nil
	}
	d := lx.peek2()
	switch c {
	case '(':
		return one(LParen)
	case ')':
		return one(RParen)
	case '{':
		return one(LBrace)
	case '}':
		return one(RBrace)
	case '[':
		return one(LBracket)
	case ']':
		return one(RBracket)
	case ';':
		return one(Semi)
	case ',':
		return one(Comma)
	case '?':
		return one(Question)
	case ':':
		return one(Colon)
	case '~':
		return one(Tilde)
	case '+':
		if d == '+' {
			return two(Inc)
		}
		if d == '=' {
			return two(PlusAssign)
		}
		return one(Plus)
	case '-':
		if d == '-' {
			return two(Dec)
		}
		if d == '=' {
			return two(MinusAssign)
		}
		return one(Minus)
	case '*':
		if d == '=' {
			return two(StarAssign)
		}
		return one(Star)
	case '/':
		if d == '=' {
			return two(SlashAssign)
		}
		return one(Slash)
	case '%':
		if d == '=' {
			return two(PercentAssign)
		}
		return one(Percent)
	case '&':
		if d == '&' {
			return two(AndAnd)
		}
		if d == '=' {
			return two(AmpAssign)
		}
		return one(Amp)
	case '|':
		if d == '|' {
			return two(OrOr)
		}
		if d == '=' {
			return two(PipeAssign)
		}
		return one(Pipe)
	case '^':
		if d == '=' {
			return two(CaretAssign)
		}
		return one(Caret)
	case '!':
		if d == '=' {
			return two(Ne)
		}
		return one(Bang)
	case '=':
		if d == '=' {
			return two(Eq)
		}
		return one(Assign)
	case '<':
		if d == '<' {
			if lx.off+2 < len(lx.src) && lx.src[lx.off+2] == '=' {
				return three(ShlAssign)
			}
			return two(Shl)
		}
		if d == '=' {
			return two(Le)
		}
		return one(Lt)
	case '>':
		if d == '>' {
			if lx.off+2 < len(lx.src) && lx.src[lx.off+2] == '=' {
				return three(ShrAssign)
			}
			return two(Shr)
		}
		if d == '=' {
			return two(Ge)
		}
		return one(Gt)
	}
	return Token{}, lx.errf(pos, "unexpected character %q", string(c))
}

func (lx *Lexer) lexNumber(pos Pos) (Token, error) {
	start := lx.off
	var val uint64
	if lx.peek() == '0' && (lx.peek2() == 'x' || lx.peek2() == 'X') {
		lx.advance()
		lx.advance()
		if !isHexDigit(lx.peek()) {
			return Token{}, lx.errf(pos, "malformed hex literal")
		}
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) {
			c := lx.advance()
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			default:
				d = uint64(c-'A') + 10
			}
			val = val*16 + d
		}
	} else {
		for lx.off < len(lx.src) && isDigit(lx.peek()) {
			val = val*10 + uint64(lx.advance()-'0')
		}
	}
	// Accept (and ignore) C integer suffixes.
	for lx.off < len(lx.src) {
		c := lx.peek()
		if c == 'u' || c == 'U' || c == 'l' || c == 'L' {
			lx.advance()
		} else {
			break
		}
	}
	return Token{Kind: INTLIT, Pos: pos, Text: lx.src[start:lx.off], Val: val}, nil
}

func (lx *Lexer) escape(pos Pos) (byte, error) {
	if lx.off >= len(lx.src) {
		return 0, lx.errf(pos, "unterminated escape")
	}
	c := lx.advance()
	switch c {
	case 'n':
		return '\n', nil
	case 't':
		return '\t', nil
	case 'r':
		return '\r', nil
	case '0':
		return 0, nil
	case 'a':
		return 7, nil
	case 'b':
		return 8, nil
	case 'f':
		return 12, nil
	case 'v':
		return 11, nil
	case '\\', '\'', '"':
		return c, nil
	case 'x':
		var v uint64
		n := 0
		for lx.off < len(lx.src) && isHexDigit(lx.peek()) && n < 2 {
			c := lx.advance()
			var d uint64
			switch {
			case c >= '0' && c <= '9':
				d = uint64(c - '0')
			case c >= 'a' && c <= 'f':
				d = uint64(c-'a') + 10
			default:
				d = uint64(c-'A') + 10
			}
			v = v*16 + d
			n++
		}
		if n == 0 {
			return 0, lx.errf(pos, "malformed \\x escape")
		}
		return byte(v), nil
	}
	return 0, lx.errf(pos, "unknown escape \\%s", string(c))
}

func (lx *Lexer) lexChar(pos Pos) (Token, error) {
	lx.advance() // opening quote
	if lx.off >= len(lx.src) {
		return Token{}, lx.errf(pos, "unterminated char literal")
	}
	var v byte
	c := lx.advance()
	if c == '\\' {
		e, err := lx.escape(pos)
		if err != nil {
			return Token{}, err
		}
		v = e
	} else if c == '\'' {
		return Token{}, lx.errf(pos, "empty char literal")
	} else {
		v = c
	}
	if lx.off >= len(lx.src) || lx.advance() != '\'' {
		return Token{}, lx.errf(pos, "unterminated char literal")
	}
	return Token{Kind: CHARLIT, Pos: pos, Val: uint64(v)}, nil
}

func (lx *Lexer) lexString(pos Pos) (Token, error) {
	lx.advance() // opening quote
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errf(pos, "unterminated string literal")
		}
		c := lx.advance()
		if c == '"' {
			break
		}
		if c == '\n' {
			return Token{}, lx.errf(pos, "newline in string literal")
		}
		if c == '\\' {
			e, err := lx.escape(pos)
			if err != nil {
				return Token{}, err
			}
			sb.WriteByte(e)
			continue
		}
		sb.WriteByte(c)
	}
	return Token{Kind: STRLIT, Pos: pos, Str: sb.String()}, nil
}

// Tokenize lexes the entire input, returning all tokens including EOF.
func Tokenize(src string) ([]Token, error) {
	lx := NewLexer(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == EOF {
			return toks, nil
		}
	}
}
