// Package lang implements the MiniC front end: lexer, parser and AST.
//
// MiniC is a small C subset rich enough to express the paper's workloads
// (Coreutils-style text utilities): functions, signed/unsigned integer
// types (char, int, long), pointers, fixed-size arrays, string literals,
// full expression and control-flow syntax (if/else, while, do/while, for,
// break/continue, ?:, && and || with short-circuit semantics), and an
// assert() statement that lowers to a runtime check.
//
// Deliberate omissions (not needed by the corpus): structs/unions, floats,
// varargs, typedef, goto, switch, multi-dimensional arrays.
package lang

import "fmt"

// Kind classifies a token.
type Kind int

// Token kinds.
const (
	EOF Kind = iota
	IDENT
	INTLIT
	CHARLIT
	STRLIT

	// Keywords.
	KwInt
	KwChar
	KwLong
	KwVoid
	KwUnsigned
	KwSigned
	KwIf
	KwElse
	KwWhile
	KwDo
	KwFor
	KwReturn
	KwBreak
	KwContinue
	KwAssert
	KwConst

	// Punctuation and operators.
	LParen
	RParen
	LBrace
	RBrace
	LBracket
	RBracket
	Semi
	Comma
	Question
	Colon

	Assign
	PlusAssign
	MinusAssign
	StarAssign
	SlashAssign
	PercentAssign
	AmpAssign
	PipeAssign
	CaretAssign
	ShlAssign
	ShrAssign

	Plus
	Minus
	Star
	Slash
	Percent
	Amp
	Pipe
	Caret
	Tilde
	Bang
	Shl
	Shr
	AndAnd
	OrOr
	Eq
	Ne
	Lt
	Le
	Gt
	Ge
	Inc
	Dec
)

var kindNames = map[Kind]string{
	EOF: "EOF", IDENT: "identifier", INTLIT: "integer literal",
	CHARLIT: "char literal", STRLIT: "string literal",
	KwInt: "int", KwChar: "char", KwLong: "long", KwVoid: "void",
	KwUnsigned: "unsigned", KwSigned: "signed", KwIf: "if", KwElse: "else",
	KwWhile: "while", KwDo: "do", KwFor: "for", KwReturn: "return",
	KwBreak: "break", KwContinue: "continue", KwAssert: "assert", KwConst: "const",
	LParen: "(", RParen: ")", LBrace: "{", RBrace: "}",
	LBracket: "[", RBracket: "]", Semi: ";", Comma: ",",
	Question: "?", Colon: ":",
	Assign: "=", PlusAssign: "+=", MinusAssign: "-=", StarAssign: "*=",
	SlashAssign: "/=", PercentAssign: "%=", AmpAssign: "&=",
	PipeAssign: "|=", CaretAssign: "^=", ShlAssign: "<<=", ShrAssign: ">>=",
	Plus: "+", Minus: "-", Star: "*", Slash: "/", Percent: "%",
	Amp: "&", Pipe: "|", Caret: "^", Tilde: "~", Bang: "!",
	Shl: "<<", Shr: ">>", AndAnd: "&&", OrOr: "||",
	Eq: "==", Ne: "!=", Lt: "<", Le: "<=", Gt: ">", Ge: ">=",
	Inc: "++", Dec: "--",
}

// String returns the display name of the kind.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

var keywords = map[string]Kind{
	"int": KwInt, "char": KwChar, "long": KwLong, "void": KwVoid,
	"unsigned": KwUnsigned, "signed": KwSigned,
	"if": KwIf, "else": KwElse, "while": KwWhile, "do": KwDo, "for": KwFor,
	"return": KwReturn, "break": KwBreak, "continue": KwContinue,
	"assert": KwAssert, "const": KwConst,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String formats the position as "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is a lexed token with position and literal payload.
type Token struct {
	Kind Kind
	Pos  Pos
	Text string // identifier spelling or raw literal text
	Val  uint64 // INTLIT / CHARLIT value
	Str  string // decoded STRLIT contents
}
