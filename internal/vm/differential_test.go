package vm_test

import (
	"math/rand"
	"testing"

	"overify/internal/coreutils"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/libc"
	"overify/internal/pipeline"
	"overify/internal/vm"
)

// randomInput draws a byte string biased toward the characters the
// corpus programs branch on: letters, digits, separators, whitespace,
// NULs and a few raw bytes.
func randomInput(rng *rand.Rand) []byte {
	n := rng.Intn(20)
	b := make([]byte, n)
	for i := range b {
		switch rng.Intn(8) {
		case 0:
			b[i] = byte(' ')
		case 1:
			b[i] = byte('\n')
		case 2:
			b[i] = byte('0' + rng.Intn(10))
		case 3:
			b[i] = byte(":=+%/\\.-"[rng.Intn(8)])
		case 4:
			b[i] = byte(rng.Intn(256)) // anything, including NUL
		default:
			b[i] = byte('a' + rng.Intn(26))
		}
	}
	return b
}

// TestVMInterpRandomized is the randomized differential test: the same
// program and the same input must produce the same observable result
// (exit code, OUT sink, or the same decision to trap) on the reference
// interpreter and the bytecode VM. The seed is fixed so failures
// reproduce.
func TestVMInterpRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(0x0E41F1))
	programs := coreutils.All()
	levels := []pipeline.Level{pipeline.O0, pipeline.OVerify}
	rounds := 6
	if testing.Short() {
		rounds = 2
	}

	for _, prog := range programs {
		for _, level := range levels {
			p, mod := compileToVM(t, prog.Src, level, libc.Uclibc)
			for round := 0; round < rounds; round++ {
				input := randomInput(rng)

				vmM := vm.NewMachine(p)
				vbuf := vm.ByteObject("input", append(append([]byte{}, input...), 0))
				vret, verr := vmM.Call("umain", vm.PtrValue(vbuf, 0), vm.IntValue(32, uint64(len(input))))

				im := interp.NewMachine(mod, interp.Options{})
				ibuf := interp.ByteObject("input", append(append([]byte{}, input...), 0))
				iret, ierr := im.Call("umain", interp.PtrVal(ibuf, 0), interp.IntVal(ir.I32, uint64(len(input))))

				if (verr != nil) != (ierr != nil) {
					t.Errorf("%s %s input %q: vm err=%v, interp err=%v",
						prog.Name, level, input, verr, ierr)
					continue
				}
				if verr != nil {
					continue // both trapped: agreement
				}
				if vret.Bits != iret.Bits {
					t.Errorf("%s %s input %q: vm exit %d != interp exit %d",
						prog.Name, level, input, vret.Bits, iret.Bits)
				}
				vout, _ := vmM.GlobalData("OUT")
				iout, _ := im.GlobalData("OUT")
				for i := range vout {
					if vout[i] != iout[i] {
						t.Errorf("%s %s input %q: OUT[%d] vm=%d interp=%d",
							prog.Name, level, input, i, vout[i], iout[i])
						break
					}
				}
			}
		}
	}
}
