// Package vm compiles IR to a flat register bytecode and executes it.
// It plays the role of the paper's "release binary": the artifact the
// x86 backend would produce for S2E/SAGE, used here for the timed
// concrete runs (t_run). Compilation destroys SSA form (phi nodes
// become parallel moves on the incoming edges), assigns dense register
// numbers, and linearizes the CFG — so the VM exercises a genuinely
// different execution substrate than the tree-walking interpreter.
package vm

import (
	"fmt"

	"overify/internal/ir"
)

// OpCode is a bytecode operation.
type OpCode uint8

// Bytecode operations. Arithmetic ops reuse the IR opcode via the Sub
// field to share ir.EvalBin/EvalCmp semantics.
const (
	OpNop     OpCode = iota
	OpBin            // R[A] = R[B] op R[C]
	OpCmp            // R[A] = R[B] cmp R[C]
	OpCast           // R[A] = cast(R[B])
	OpSelect         // R[A] = R[B]!=0 ? R[C] : R[D(imm)]
	OpMov            // R[A] = R[B]
	OpConst          // R[A] = imm
	OpNull           // R[A] = null pointer
	OpGlobal         // R[A] = &globals[imm]
	OpAlloca         // R[A] = new object (elem bits, count)
	OpLoad           // R[A] = *R[B]
	OpStore          // *R[B] = R[A]
	OpGEP            // R[A] = R[B] + R[C] elements
	OpPtrDiff        // R[A] = R[B] - R[C]
	OpJump           // pc = Target
	OpJumpIf         // if R[A]!=0 pc = Target else fall through
	OpCall           // R[A] = call Fn(args in ArgRegs)
	OpRet            // return R[A] (A<0: void)
	OpCheck          // trap if R[A]==0
	OpTrap           // unconditional trap (unreachable)
)

var opNames = [...]string{
	"nop", "bin", "cmp", "cast", "select", "mov", "const", "null",
	"global", "alloca", "load", "store", "gep", "ptrdiff",
	"jump", "jumpif", "call", "ret", "check", "trap",
}

// String returns the mnemonic.
func (o OpCode) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// Inst is one bytecode instruction.
type Inst struct {
	Op      OpCode
	Sub     ir.Op  // arithmetic/cmp/cast sub-opcode
	A, B, C int32  // register operands
	Imm     uint64 // constant / global index / select false-reg
	Bits    uint8  // operand width for Bin/Cmp/Cast (source width for casts)
	ToBits  uint8  // destination width for casts
	Count   int64  // alloca element count
	Target  int32  // jump target
	Fn      int32  // callee function index
	Args    []int32
	Kind    ir.CheckKind
	Msg     string
}

// Func is one compiled function.
type Func struct {
	Name    string
	NumRegs int
	Params  []int32 // registers receiving the arguments
	Code    []Inst
	RetVoid bool
}

// GlobalDef describes a global object's initial contents.
type GlobalDef struct {
	Name     string
	Bits     uint8
	Count    int64
	Init     []uint64
	ReadOnly bool
}

// Program is a compiled module.
type Program struct {
	Name    string
	Funcs   []*Func
	ByName  map[string]int
	Globals []GlobalDef
}
