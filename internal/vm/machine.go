package vm

import (
	"fmt"

	"overify/internal/ir"
)

// Object is a runtime memory object.
type Object struct {
	Bits     uint8
	Count    int64
	Data     []Value
	ReadOnly bool
	Name     string
}

// Value is a VM register value: integer bits or a pointer.
type Value struct {
	IsPtr bool
	Bits  uint64
	Obj   *Object
	Off   int64
}

// IntValue makes an integer value of the given width.
func IntValue(bits int, v uint64) Value { return Value{Bits: ir.Mask(bits, v)} }

// PtrValue makes a pointer value.
func PtrValue(obj *Object, off int64) Value { return Value{IsPtr: true, Obj: obj, Off: off} }

// ByteObject builds an i8 object from raw bytes.
func ByteObject(name string, b []byte) *Object {
	d := make([]Value, len(b))
	for i, c := range b {
		d[i] = Value{Bits: uint64(c)}
	}
	return &Object{Bits: 8, Count: int64(len(b)), Data: d, Name: name}
}

// Trap is a VM runtime fault.
type Trap struct {
	Msg string
}

// Error formats the trap.
func (t *Trap) Error() string { return "vm trap: " + t.Msg }

// Stats counts VM work.
type Stats struct {
	Instrs int64
	Calls  int64
}

// Machine executes a compiled program.
type Machine struct {
	Prog    *Program
	Stats   Stats
	globals []*Object

	// MaxSteps bounds execution (default 2G).
	MaxSteps int64
	depth    int
}

// NewMachine instantiates global storage for a program.
func NewMachine(p *Program) *Machine {
	m := &Machine{Prog: p, MaxSteps: 2_000_000_000}
	for _, g := range p.Globals {
		obj := &Object{Bits: g.Bits, Count: g.Count, ReadOnly: g.ReadOnly, Name: "@" + g.Name}
		obj.Data = make([]Value, g.Count)
		for i, v := range g.Init {
			obj.Data[i] = Value{Bits: v}
		}
		m.globals = append(m.globals, obj)
	}
	return m
}

// GlobalData returns the integer contents of a named global.
func (m *Machine) GlobalData(name string) ([]uint64, bool) {
	for i, g := range m.Prog.Globals {
		if g.Name == name {
			out := make([]uint64, len(m.globals[i].Data))
			for j, v := range m.globals[i].Data {
				out[j] = v.Bits
			}
			return out, true
		}
	}
	return nil, false
}

// Call runs the named function.
func (m *Machine) Call(name string, args ...Value) (Value, error) {
	idx, ok := m.Prog.ByName[name]
	if !ok {
		return Value{}, fmt.Errorf("vm: no function %q", name)
	}
	return m.run(m.Prog.Funcs[idx], args)
}

func (m *Machine) run(f *Func, args []Value) (Value, error) {
	if len(args) != len(f.Params) {
		return Value{}, fmt.Errorf("vm: %s: %d args, want %d", f.Name, len(args), len(f.Params))
	}
	m.depth++
	defer func() { m.depth-- }()
	if m.depth > 10000 {
		return Value{}, &Trap{Msg: "call stack overflow"}
	}
	regs := make([]Value, f.NumRegs+64) // slack for operand temporaries
	for i, pr := range f.Params {
		regs[pr] = args[i]
	}
	grow := func(r int32) {
		if int(r) >= len(regs) {
			nr := make([]Value, int(r)+64)
			copy(nr, regs)
			regs = nr
		}
	}
	pc := int32(0)
	code := f.Code
	for {
		if pc < 0 || int(pc) >= len(code) {
			return Value{}, &Trap{Msg: fmt.Sprintf("%s: pc %d out of range", f.Name, pc)}
		}
		in := &code[pc]
		m.Stats.Instrs++
		if m.Stats.Instrs > m.MaxSteps {
			return Value{}, &Trap{Msg: "step budget exhausted"}
		}
		grow(in.A)
		switch in.Op {
		case OpNop:
		case OpConst:
			regs[in.A] = Value{Bits: in.Imm}
		case OpNull:
			regs[in.A] = Value{IsPtr: true}
		case OpGlobal:
			regs[in.A] = PtrValue(m.globals[in.Imm], 0)
		case OpMov:
			regs[in.A] = regs[in.B]
		case OpBin:
			r, ok := ir.EvalBin(in.Sub, int(in.Bits), regs[in.B].Bits, regs[in.C].Bits)
			if !ok {
				return Value{}, &Trap{Msg: fmt.Sprintf("%s in @%s", in.Sub, f.Name)}
			}
			regs[in.A] = Value{Bits: r}
		case OpCmp:
			a, b := regs[in.B], regs[in.C]
			var res bool
			if a.IsPtr || b.IsPtr {
				var err error
				res, err = cmpPtr(in.Sub, a, b)
				if err != nil {
					return Value{}, err
				}
			} else {
				res = ir.EvalCmp(in.Sub, int(in.Bits), a.Bits, b.Bits)
			}
			if res {
				regs[in.A] = Value{Bits: 1}
			} else {
				regs[in.A] = Value{}
			}
		case OpCast:
			regs[in.A] = Value{Bits: ir.EvalCast(in.Sub, int(in.Bits), int(in.ToBits), regs[in.B].Bits)}
		case OpSelect:
			if regs[in.B].Bits != 0 {
				regs[in.A] = regs[in.C]
			} else {
				regs[in.A] = regs[int32(in.Imm)]
			}
		case OpAlloca:
			obj := &Object{Bits: in.Bits, Count: in.Count, Data: make([]Value, in.Count)}
			regs[in.A] = PtrValue(obj, 0)
		case OpLoad:
			p := regs[in.B]
			if p.Obj == nil {
				return Value{}, &Trap{Msg: "load from null"}
			}
			if p.Off < 0 || p.Off >= p.Obj.Count {
				return Value{}, &Trap{Msg: fmt.Sprintf("load %s[%d] size %d", p.Obj.Name, p.Off, p.Obj.Count)}
			}
			regs[in.A] = p.Obj.Data[p.Off]
		case OpStore:
			p := regs[in.B]
			if p.Obj == nil {
				return Value{}, &Trap{Msg: "store to null"}
			}
			if p.Off < 0 || p.Off >= p.Obj.Count {
				return Value{}, &Trap{Msg: fmt.Sprintf("store %s[%d] size %d", p.Obj.Name, p.Off, p.Obj.Count)}
			}
			if p.Obj.ReadOnly {
				return Value{}, &Trap{Msg: "store to read-only " + p.Obj.Name}
			}
			v := regs[in.A]
			if !v.IsPtr {
				v.Bits = ir.Mask(int(p.Obj.Bits), v.Bits)
			}
			p.Obj.Data[p.Off] = v
		case OpGEP:
			p := regs[in.B]
			if p.Obj == nil {
				return Value{}, &Trap{Msg: "pointer arithmetic on null"}
			}
			regs[in.A] = PtrValue(p.Obj, p.Off+int64(regs[in.C].Bits))
		case OpPtrDiff:
			a, b := regs[in.B], regs[in.C]
			if a.Obj != b.Obj {
				return Value{}, &Trap{Msg: "ptrdiff across objects"}
			}
			regs[in.A] = Value{Bits: uint64(a.Off - b.Off)}
		case OpJump:
			pc = in.Target
			continue
		case OpJumpIf:
			if regs[in.A].Bits != 0 {
				pc = in.Target
				continue
			}
		case OpCall:
			m.Stats.Calls++
			callee := m.Prog.Funcs[in.Fn]
			args := make([]Value, len(in.Args))
			for i, ar := range in.Args {
				args[i] = regs[ar]
			}
			rv, err := m.run(callee, args)
			if err != nil {
				return Value{}, err
			}
			if in.A >= 0 {
				regs[in.A] = rv
			}
		case OpRet:
			if in.A < 0 {
				return Value{}, nil
			}
			return regs[in.A], nil
		case OpCheck:
			if regs[in.A].Bits == 0 {
				return Value{}, &Trap{Msg: fmt.Sprintf("check failed (%s): %s", in.Kind, in.Msg)}
			}
		case OpTrap:
			return Value{}, &Trap{Msg: in.Msg}
		default:
			return Value{}, &Trap{Msg: "bad opcode " + in.Op.String()}
		}
		pc++
	}
}

func cmpPtr(op ir.Op, a, b Value) (bool, error) {
	switch op {
	case ir.OpEq:
		return a.Obj == b.Obj && (a.Obj == nil || a.Off == b.Off), nil
	case ir.OpNe:
		return a.Obj != b.Obj || (a.Obj != nil && a.Off != b.Off), nil
	}
	if a.Obj != b.Obj {
		return false, &Trap{Msg: "relational pointer comparison across objects"}
	}
	switch op {
	case ir.OpULt:
		return a.Off < b.Off, nil
	case ir.OpULe:
		return a.Off <= b.Off, nil
	case ir.OpUGt:
		return a.Off > b.Off, nil
	case ir.OpUGe:
		return a.Off >= b.Off, nil
	}
	return false, &Trap{Msg: "bad pointer comparison"}
}
