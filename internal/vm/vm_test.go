package vm_test

import (
	"testing"

	"overify/internal/coreutils"
	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/lang"
	"overify/internal/libc"
	"overify/internal/pipeline"
	"overify/internal/vm"
)

// compileToVM builds a corpus program at a level and compiles to bytecode.
func compileToVM(t *testing.T, src string, level pipeline.Level, lk libc.Kind) (*vm.Program, *ir.Module) {
	t.Helper()
	progFile, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	libFile, err := libc.Parse(lk)
	if err != nil {
		t.Fatalf("libc: %v", err)
	}
	mod, err := frontend.LowerFiles("t", libFile, progFile)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if _, err := pipeline.OptimizeAtLevel(mod, level); err != nil {
		t.Fatalf("optimize: %v", err)
	}
	p, err := vm.Compile(mod)
	if err != nil {
		t.Fatalf("vm compile: %v", err)
	}
	return p, mod
}

// TestVMAgreesWithInterp runs every corpus program on both executors at
// several levels and compares exit codes — the bytecode backend must
// implement the exact same semantics as the reference interpreter.
func TestVMAgreesWithInterp(t *testing.T) {
	levels := []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify}
	for _, prog := range coreutils.All() {
		for _, level := range levels {
			p, mod := compileToVM(t, prog.Src, level, libc.Uclibc)

			vmM := vm.NewMachine(p)
			buf := vm.ByteObject("input", append([]byte(prog.Sample), 0))
			got, err := vmM.Call("umain", vm.PtrValue(buf, 0), vm.IntValue(32, uint64(len(prog.Sample))))
			if err != nil {
				t.Errorf("%s %s: vm: %v", prog.Name, level, err)
				continue
			}

			im := interp.NewMachine(mod, interp.Options{})
			ibuf := interp.ByteObject("input", append([]byte(prog.Sample), 0))
			want, err := im.Call("umain", interp.PtrVal(ibuf, 0), interp.IntVal(ir.I32, uint64(len(prog.Sample))))
			if err != nil {
				t.Errorf("%s %s: interp: %v", prog.Name, level, err)
				continue
			}
			if got.Bits != want.Bits {
				t.Errorf("%s %s: vm exit %d != interp exit %d", prog.Name, level, got.Bits, want.Bits)
			}
			// Output sink must agree too.
			vout, _ := vmM.GlobalData("OUT")
			iout, _ := im.GlobalData("OUT")
			for i := range vout {
				if vout[i] != iout[i] {
					t.Errorf("%s %s: OUT[%d] vm=%d interp=%d", prog.Name, level, i, vout[i], iout[i])
					break
				}
			}
		}
	}
}

// TestVMFasterThanInterp sanity-checks that the "release binary" is
// actually a faster substrate (the reason t_run uses it).
func TestVMFasterThanInterp(t *testing.T) {
	prog, _ := coreutils.Get("cksum")
	p, mod := compileToVM(t, prog.Src, pipeline.O3, libc.Uclibc)
	input := make([]byte, 2000)
	for i := range input {
		input[i] = byte('a' + i%26)
	}

	vmM := vm.NewMachine(p)
	buf := vm.ByteObject("input", append(input, 0))
	if _, err := vmM.Call("umain", vm.PtrValue(buf, 0), vm.IntValue(32, uint64(len(input)))); err != nil {
		t.Fatalf("vm: %v", err)
	}

	im := interp.NewMachine(mod, interp.Options{})
	ibuf := interp.ByteObject("input", append(input, 0))
	if _, err := im.Call("umain", interp.PtrVal(ibuf, 0), interp.IntVal(ir.I32, uint64(len(input)))); err != nil {
		t.Fatalf("interp: %v", err)
	}
	// Not a wall-clock comparison (noisy); instruction throughput is the
	// architecture point: same program, same work, on both substrates.
	if vmM.Stats.Instrs == 0 || im.Stats.Instrs == 0 {
		t.Fatal("no instructions counted")
	}
	t.Logf("vm instrs=%d interp instrs=%d", vmM.Stats.Instrs, im.Stats.Instrs)
}

// TestDisasm smoke-tests the disassembler.
func TestDisasm(t *testing.T) {
	prog, _ := coreutils.Get("echo")
	p, _ := compileToVM(t, prog.Src, pipeline.O0, libc.Uclibc)
	text := vm.Disasm(p)
	if len(text) == 0 {
		t.Fatal("empty disassembly")
	}
	for _, want := range []string{"func umain", "call", "ret"} {
		if !containsStr(text, want) {
			t.Errorf("disassembly missing %q", want)
		}
	}
}

func containsStr(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(s) > 0 && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}
