package vm

import (
	"fmt"

	"overify/internal/ir"
)

// Compile lowers a module to bytecode. Functions must be definitions.
func Compile(m *ir.Module) (*Program, error) {
	p := &Program{Name: m.Name, ByName: make(map[string]int)}
	globalIdx := make(map[*ir.Global]int, len(m.Globals))
	for i, g := range m.Globals {
		bits := 64
		if it, ok := g.Elem.(ir.IntType); ok {
			bits = it.Bits
		}
		p.Globals = append(p.Globals, GlobalDef{
			Name:     g.Name,
			Bits:     uint8(bits),
			Count:    g.Count,
			Init:     g.Init,
			ReadOnly: g.ReadOnly,
		})
		globalIdx[g] = i
	}
	fnIdx := make(map[*ir.Function]int, len(m.Funcs))
	for i, f := range m.Funcs {
		fnIdx[f] = i
	}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			return nil, fmt.Errorf("vm: cannot compile declaration @%s", f.Name)
		}
		cf, err := compileFunc(f, fnIdx, globalIdx)
		if err != nil {
			return nil, err
		}
		p.ByName[cf.Name] = len(p.Funcs)
		p.Funcs = append(p.Funcs, cf)
	}
	return p, nil
}

type fnCompiler struct {
	f         *ir.Function
	fnIdx     map[*ir.Function]int
	globalIdx map[*ir.Global]int
	regs      map[ir.Value]int32
	nextReg   int32
	code      []Inst
	blockPC   map[*ir.Block]int32
	fixups    []fixup // jumps to patch once block addresses are known
}

type fixup struct {
	pc    int
	block *ir.Block
}

func (fc *fnCompiler) reg(v ir.Value) int32 {
	if r, ok := fc.regs[v]; ok {
		return r
	}
	r := fc.nextReg
	fc.nextReg++
	fc.regs[v] = r
	return r
}

// operand materializes v into a register, emitting constant loads as
// needed (constants are not cached across uses; a register allocator is
// out of scope — the VM is a timing substrate, not a codegen study).
func (fc *fnCompiler) operand(v ir.Value) int32 {
	switch x := v.(type) {
	case *ir.Const:
		r := fc.nextReg
		fc.nextReg++
		fc.code = append(fc.code, Inst{Op: OpConst, A: r, Imm: x.Val, Bits: uint8(x.Typ.Bits)})
		return r
	case *ir.Null:
		r := fc.nextReg
		fc.nextReg++
		fc.code = append(fc.code, Inst{Op: OpNull, A: r})
		return r
	case *ir.Global:
		r := fc.nextReg
		fc.nextReg++
		fc.code = append(fc.code, Inst{Op: OpGlobal, A: r, Imm: uint64(fc.globalIdx[x])})
		return r
	default:
		return fc.reg(v)
	}
}

func compileFunc(f *ir.Function, fnIdx map[*ir.Function]int, globalIdx map[*ir.Global]int) (*Func, error) {
	fc := &fnCompiler{
		f:         f,
		fnIdx:     fnIdx,
		globalIdx: globalIdx,
		regs:      make(map[ir.Value]int32),
		blockPC:   make(map[*ir.Block]int32),
	}
	out := &Func{Name: f.Name, RetVoid: ir.SameType(f.Sig.Ret, ir.Void)}
	for _, p := range f.Params {
		out.Params = append(out.Params, fc.reg(p))
	}

	// Compile blocks in layout order. Phi nodes are destroyed: each
	// predecessor edge ends with parallel moves into temporaries, then
	// from temporaries into the phi registers (the two-step scheme is
	// immune to swap hazards), before the jump.
	for _, b := range f.Blocks {
		fc.blockPC[b] = int32(len(fc.code))
		for _, in := range b.Instrs {
			if in.Op == ir.OpPhi {
				fc.reg(in) // allocate the register; moves happen on edges
				continue
			}
			if in.IsTerminator() {
				fc.emitEdgeMoves(b, in)
			}
			if err := fc.emitInstr(in); err != nil {
				return nil, err
			}
		}
	}
	// Patch jump targets.
	for _, fx := range fc.fixups {
		fc.code[fx.pc].Target = fc.blockPC[fx.block]
	}
	out.Code = fc.code
	out.NumRegs = int(fc.nextReg)
	return out, nil
}

// emitEdgeMoves lowers the phi nodes of term's successors for the edge
// leaving block b. Unconditional edges emit the moves inline before the
// jump; conditional edges are split inside emitCondBr (each side gets a
// trampoline carrying its own moves), so they are skipped here.
func (fc *fnCompiler) emitEdgeMoves(b *ir.Block, term *ir.Instr) {
	if term.Op != ir.OpBr {
		return
	}
	for _, s := range term.Succs {
		if phis := s.Phis(); len(phis) > 0 {
			fc.emitParallelMoves(phis, b)
		}
	}
}

// emitParallelMoves writes phi inputs for edge pred->block(phis).
func (fc *fnCompiler) emitParallelMoves(phis []*ir.Instr, pred *ir.Block) {
	// Step 1: values into fresh temporaries.
	temps := make([]int32, len(phis))
	for i, phi := range phis {
		v := phi.PhiIncoming(pred)
		src := fc.operand(v)
		t := fc.nextReg
		fc.nextReg++
		temps[i] = t
		fc.code = append(fc.code, Inst{Op: OpMov, A: t, B: src})
	}
	// Step 2: temporaries into the phi registers.
	for i, phi := range phis {
		fc.code = append(fc.code, Inst{Op: OpMov, A: fc.reg(phi), B: temps[i]})
	}
}

func (fc *fnCompiler) emitInstr(in *ir.Instr) error {
	switch {
	case in.Op.IsBinary():
		b := fc.operand(in.Args[0])
		c := fc.operand(in.Args[1])
		fc.code = append(fc.code, Inst{
			Op: OpBin, Sub: in.Op, A: fc.reg(in), B: b, C: c,
			Bits: uint8(in.Typ.(ir.IntType).Bits),
		})
		return nil
	case in.Op.IsCmp():
		b := fc.operand(in.Args[0])
		c := fc.operand(in.Args[1])
		bits := 64
		if it, ok := in.Args[0].Type().(ir.IntType); ok {
			bits = it.Bits
		}
		fc.code = append(fc.code, Inst{
			Op: OpCmp, Sub: in.Op, A: fc.reg(in), B: b, C: c, Bits: uint8(bits),
		})
		return nil
	}
	switch in.Op {
	case ir.OpSelect:
		cnd := fc.operand(in.Args[0])
		tv := fc.operand(in.Args[1])
		fv := fc.operand(in.Args[2])
		fc.code = append(fc.code, Inst{Op: OpSelect, A: fc.reg(in), B: cnd, C: tv, Imm: uint64(fv)})
		return nil
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		b := fc.operand(in.Args[0])
		fc.code = append(fc.code, Inst{
			Op: OpCast, Sub: in.Op, A: fc.reg(in), B: b,
			Bits:   uint8(in.Args[0].Type().(ir.IntType).Bits),
			ToBits: uint8(in.Typ.(ir.IntType).Bits),
		})
		return nil
	case ir.OpAlloca:
		bits := 64
		if it, ok := in.Allocated.(ir.IntType); ok {
			bits = it.Bits
		}
		fc.code = append(fc.code, Inst{Op: OpAlloca, A: fc.reg(in), Bits: uint8(bits), Count: in.Count})
		return nil
	case ir.OpLoad:
		fc.code = append(fc.code, Inst{Op: OpLoad, A: fc.reg(in), B: fc.operand(in.Args[0])})
		return nil
	case ir.OpStore:
		v := fc.operand(in.Args[0])
		ptr := fc.operand(in.Args[1])
		fc.code = append(fc.code, Inst{Op: OpStore, A: v, B: ptr})
		return nil
	case ir.OpGEP:
		b := fc.operand(in.Args[0])
		c := fc.operand(in.Args[1])
		fc.code = append(fc.code, Inst{Op: OpGEP, A: fc.reg(in), B: b, C: c})
		return nil
	case ir.OpPtrDiff:
		b := fc.operand(in.Args[0])
		c := fc.operand(in.Args[1])
		fc.code = append(fc.code, Inst{Op: OpPtrDiff, A: fc.reg(in), B: b, C: c})
		return nil
	case ir.OpCall:
		args := make([]int32, len(in.Args))
		for i, a := range in.Args {
			args[i] = fc.operand(a)
		}
		dst := int32(-1)
		if !ir.SameType(in.Typ, ir.Void) {
			dst = fc.reg(in)
		}
		fc.code = append(fc.code, Inst{Op: OpCall, A: dst, Fn: int32(fc.fnIdx[in.Callee]), Args: args})
		return nil
	case ir.OpCheck:
		c := fc.operand(in.Args[0])
		fc.code = append(fc.code, Inst{Op: OpCheck, A: c, Kind: in.Kind, Msg: in.Msg})
		return nil
	case ir.OpBr:
		fc.fixups = append(fc.fixups, fixup{pc: len(fc.code), block: in.Succs[0]})
		fc.code = append(fc.code, Inst{Op: OpJump})
		return nil
	case ir.OpCondBr:
		return fc.emitCondBr(in)
	case ir.OpRet:
		r := int32(-1)
		if len(in.Args) == 1 {
			r = fc.operand(in.Args[0])
		}
		fc.code = append(fc.code, Inst{Op: OpRet, A: r})
		return nil
	case ir.OpUnreachable:
		fc.code = append(fc.code, Inst{Op: OpTrap, Msg: "unreachable"})
		return nil
	case ir.OpPhi:
		return nil // handled on edges
	}
	return fmt.Errorf("vm: cannot compile %s", in.Op)
}

func (fc *fnCompiler) emitCondBr(in *ir.Instr) error {
	cond := fc.operand(in.Args[0])
	// jumpif cond -> trueTarget ; jump falseTarget
	trueNeedsTramp := len(in.Succs[0].Phis()) > 0
	falseNeedsTramp := len(in.Succs[1].Phis()) > 0

	jumpIfPC := len(fc.code)
	fc.code = append(fc.code, Inst{Op: OpJumpIf, A: cond})
	jumpPC := len(fc.code)
	fc.code = append(fc.code, Inst{Op: OpJump})

	if trueNeedsTramp {
		fc.code[jumpIfPC].Target = int32(len(fc.code))
		fc.emitParallelMoves(in.Succs[0].Phis(), in.Blk)
		fc.fixups = append(fc.fixups, fixup{pc: len(fc.code), block: in.Succs[0]})
		fc.code = append(fc.code, Inst{Op: OpJump})
	} else {
		fc.fixups = append(fc.fixups, fixup{pc: jumpIfPC, block: in.Succs[0]})
	}
	if falseNeedsTramp {
		fc.code[jumpPC].Target = int32(len(fc.code))
		fc.emitParallelMoves(in.Succs[1].Phis(), in.Blk)
		fc.fixups = append(fc.fixups, fixup{pc: len(fc.code), block: in.Succs[1]})
		fc.code = append(fc.code, Inst{Op: OpJump})
	} else {
		fc.fixups = append(fc.fixups, fixup{pc: jumpPC, block: in.Succs[1]})
	}
	return nil
}
