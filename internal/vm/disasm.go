package vm

import (
	"fmt"
	"strings"
)

// Disasm renders the program's bytecode as text, one function per
// section, for debugging and for the minicvm -S flag.
func Disasm(p *Program) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; bytecode for module %s: %d functions, %d globals\n",
		p.Name, len(p.Funcs), len(p.Globals))
	for _, g := range p.Globals {
		fmt.Fprintf(&sb, "global @%s: %d x i%d", g.Name, g.Count, g.Bits)
		if g.ReadOnly {
			sb.WriteString(" const")
		}
		sb.WriteByte('\n')
	}
	for _, f := range p.Funcs {
		sb.WriteByte('\n')
		fmt.Fprintf(&sb, "func %s (regs=%d, params=%v):\n", f.Name, f.NumRegs, f.Params)
		for pc, in := range f.Code {
			fmt.Fprintf(&sb, "  %4d: %s\n", pc, disasmInst(p, &in))
		}
	}
	return sb.String()
}

func disasmInst(p *Program, in *Inst) string {
	switch in.Op {
	case OpBin:
		return fmt.Sprintf("r%d = %s.i%d r%d, r%d", in.A, in.Sub, in.Bits, in.B, in.C)
	case OpCmp:
		return fmt.Sprintf("r%d = %s.i%d r%d, r%d", in.A, in.Sub, in.Bits, in.B, in.C)
	case OpCast:
		return fmt.Sprintf("r%d = %s r%d (i%d->i%d)", in.A, in.Sub, in.B, in.Bits, in.ToBits)
	case OpSelect:
		return fmt.Sprintf("r%d = select r%d ? r%d : r%d", in.A, in.B, in.C, int32(in.Imm))
	case OpMov:
		return fmt.Sprintf("r%d = r%d", in.A, in.B)
	case OpConst:
		return fmt.Sprintf("r%d = %d (i%d)", in.A, in.Imm, in.Bits)
	case OpNull:
		return fmt.Sprintf("r%d = null", in.A)
	case OpGlobal:
		return fmt.Sprintf("r%d = @%s", in.A, p.Globals[in.Imm].Name)
	case OpAlloca:
		return fmt.Sprintf("r%d = alloca %d x i%d", in.A, in.Count, in.Bits)
	case OpLoad:
		return fmt.Sprintf("r%d = load [r%d]", in.A, in.B)
	case OpStore:
		return fmt.Sprintf("store r%d -> [r%d]", in.A, in.B)
	case OpGEP:
		return fmt.Sprintf("r%d = gep r%d + r%d", in.A, in.B, in.C)
	case OpPtrDiff:
		return fmt.Sprintf("r%d = ptrdiff r%d, r%d", in.A, in.B, in.C)
	case OpJump:
		return fmt.Sprintf("jump %d", in.Target)
	case OpJumpIf:
		return fmt.Sprintf("jumpif r%d -> %d", in.A, in.Target)
	case OpCall:
		return fmt.Sprintf("r%d = call %s %v", in.A, p.Funcs[in.Fn].Name, in.Args)
	case OpRet:
		if in.A < 0 {
			return "ret"
		}
		return fmt.Sprintf("ret r%d", in.A)
	case OpCheck:
		return fmt.Sprintf("check r%d (%s) %q", in.A, in.Kind, in.Msg)
	case OpTrap:
		return fmt.Sprintf("trap %q", in.Msg)
	}
	return in.Op.String()
}
