package autotune

import (
	"reflect"
	"testing"
	"time"

	"overify/internal/coreutils"
	"overify/internal/pipeline"
)

// A schedule that changes the verification verdict must be discarded,
// never ranked. The program below has a dead out-of-bounds load: the
// -OVERIFY baseline's dce deletes it (no bug), while a schedule without
// dce keeps it and verification reports the OOB — a verdict change the
// parity gate must reject.
const deadOOBLoad = `
int umain(unsigned char *s, int n) {
  int x;
  x = s[100];
  return 0;
}
`

func TestParityGateRejectsVerdictChangingSchedule(t *testing.T) {
	spec, err := pipeline.ParsePipeline("mem2reg,checks,annotate")
	if err != nil {
		t.Fatal(err)
	}
	cand, base, err := Evaluate(Options{
		Name:    "dead-oob",
		Source:  deadOOBLoad,
		Timeout: 10 * time.Second,
	}, spec)
	if err != nil {
		t.Fatal(err)
	}
	if !base.Valid() {
		t.Fatalf("baseline rejected: %s", base.Rejected)
	}
	if base.Bugs != 0 {
		t.Fatalf("baseline should report no bugs (dce deletes the dead load), got %d", base.Bugs)
	}
	if cand.Valid() {
		t.Fatalf("verdict-changing candidate was accepted: spec=%s bugs=%d (baseline bugs=%d)",
			cand.Spec, cand.Bugs, base.Bugs)
	}
	if cand.Rejected != "parity" {
		t.Fatalf("candidate rejected for %q, want \"parity\"", cand.Rejected)
	}
	if cand.Bugs == 0 {
		t.Fatalf("candidate was expected to surface the dead OOB load as a bug")
	}
}

// The solver-assignment budget is the deterministic stand-in for a
// wall-clock timeout: it must stop the engine at the same point on
// every run, so a budget-rejected candidate is rejected identically on
// any machine at any load.
func TestSolverBudgetRejectsDeterministically(t *testing.T) {
	p, ok := coreutils.Get("basename")
	if !ok {
		t.Fatal("basename missing from corpus")
	}
	ec := evalConfig{
		name: p.Name, src: p.Src, inputBytes: 4,
		timeout:    2 * time.Minute,
		maxAssigns: 4096,
	}
	a := evaluate(pipeline.PipelineSpec{}, ec)
	b := evaluate(pipeline.PipelineSpec{}, ec)
	if a.Rejected != "verify-budget" {
		t.Fatalf("capped run rejected for %q, want \"verify-budget\"", a.Rejected)
	}
	if a.Assignments < 4096 {
		t.Fatalf("budget did not engage: %d assignments measured", a.Assignments)
	}
	if a.Rejected != b.Rejected || a.Assignments != b.Assignments || a.Instrs != b.Instrs || a.Paths != b.Paths {
		t.Fatalf("budget stop diverged between identical runs:\n  a: rejected=%q assigns=%d instrs=%d paths=%d\n  b: rejected=%q assigns=%d instrs=%d paths=%d",
			a.Rejected, a.Assignments, a.Instrs, a.Paths,
			b.Rejected, b.Assignments, b.Instrs, b.Paths)
	}
}

func tuneOpts(name string, budget int) Options {
	p, ok := coreutils.Get(name)
	if !ok {
		panic("unknown corpus program " + name)
	}
	return Options{
		Name:    p.Name,
		Source:  p.Src,
		Budget:  budget,
		Seed:    1,
		Jobs:    2,
		Timeout: 10 * time.Second,
	}
}

// Same seed, same program, same budget: the search must retrace the
// same trajectory — identical candidate sequence and identical winner.
func TestTuneDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full double search in -short mode")
	}
	run := func() *Result {
		res, err := Tune(tuneOpts("true", 10))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Best.Spec != b.Best.Spec {
		t.Fatalf("same seed found different winners:\n  %s\n  %s", a.Best.Spec, b.Best.Spec)
	}
	if a.Best.Work != b.Best.Work {
		t.Fatalf("same winner scored differently: %d vs %d work units", a.Best.Work, b.Best.Work)
	}
	if a.Evaluated != b.Evaluated || a.Restarts != b.Restarts || a.MemoHits != b.MemoHits {
		t.Fatalf("search shape diverged: evaluated %d/%d restarts %d/%d memo %d/%d",
			a.Evaluated, b.Evaluated, a.Restarts, b.Restarts, a.MemoHits, b.MemoHits)
	}
	specsOf := func(r *Result) []string {
		out := make([]string, len(r.Candidates))
		for i, c := range r.Candidates {
			out[i] = c.Spec
		}
		return out
	}
	if !reflect.DeepEqual(specsOf(a), specsOf(b)) {
		t.Fatalf("same seed evaluated different candidate sequences")
	}
}

// The tuner's basic contract: the winner is never worse than the
// -OVERIFY baseline, holds bug parity, and its spec replays.
func TestTuneSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full search in -short mode")
	}
	res, err := Tune(tuneOpts("wc-c", 8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Valid() {
		t.Fatalf("winner is a rejected candidate: %s", res.Best.Rejected)
	}
	if res.Best.Work > res.Baseline.Work {
		t.Fatalf("winner (%d work units) is worse than baseline (%d)", res.Best.Work, res.Baseline.Work)
	}
	if res.Best.Bugs != res.Baseline.Bugs {
		t.Fatalf("winner bug count %d != baseline %d", res.Best.Bugs, res.Baseline.Bugs)
	}
	rt, err := pipeline.ParsePipeline(res.Best.Spec)
	if err != nil {
		t.Fatalf("winning spec does not parse: %v", err)
	}
	if rt.String() != res.Best.Spec {
		t.Fatalf("winning spec does not round-trip: %q -> %q", res.Best.Spec, rt.String())
	}
	if res.Evaluated == 0 || len(res.Candidates) != res.Evaluated {
		t.Fatalf("bookkeeping: evaluated=%d candidates=%d", res.Evaluated, len(res.Candidates))
	}
}
