package autotune

import (
	"fmt"
	"regexp"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"overify/internal/core"
	"overify/internal/passes"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// Candidate is one evaluated schedule. A candidate with a nonempty
// Rejected reason was discarded before ranking — the parity gate, the
// budget gates and compile failures all land here — and its counters
// are whatever was measured before the rejection.
type Candidate struct {
	// Spec is the canonical rendered pipeline (pipeline.Result.Spec),
	// guaranteed to parse back via ParsePipeline.
	Spec string

	// Work is the deterministic verify objective: solver assignments
	// tried + instructions symbolically executed, both serial-run
	// counters.
	Work        int64
	Assignments int64
	Instrs      int64
	Paths       int64
	Queries     int64
	Bugs        int

	// Compile-side measurements. CompileInvocations is the
	// deterministic compile-work currency the t_compile gate uses.
	CompileInvocations int
	InstrsOut          int
	CompileWall        time.Duration
	VerifyWall         time.Duration
	// PassTimings breaks compile work down per pass, so a t_compile
	// regression can be attributed to the inserted pass.
	PassTimings []passes.PassMetric

	// Rejected is "" for ranked candidates, else the gate that fired:
	// "parity", "verify-budget", "compile-budget", or "compile: ...".
	Rejected string

	spec   pipeline.PipelineSpec // parsed form, for mutation
	report *symex.Report         // engine report, for the parity gate
}

// Report returns the engine report behind the candidate's numbers (nil
// if compilation or verification never finished).
func (c *Candidate) Report() *symex.Report { return c.report }

// Valid reports whether the candidate survived every gate and may be
// ranked.
func (c *Candidate) Valid() bool { return c.Rejected == "" }

// evalConfig is the fixed context one search evaluates every candidate
// under.
type evalConfig struct {
	name, src  string
	inputBytes int
	timeout    time.Duration
	jobs       int    // pass-manager jobs per compile
	baseBugs   string // the baseline's normalized bug set ("" gates nothing)
	gate       bool   // apply parity/budget gates (false for the baseline itself)
	invCap     int    // compile gate: max pass invocations (0 = off)
	maxInstrs  int64  // verify gate: deterministic instruction cap (0 = off)
	maxAssigns int64  // verify gate: deterministic solver-assignment cap (0 = off)
}

// evalBaseline compiles and verifies the stock -OVERIFY configuration
// — the spec every candidate is gated and ranked against.
func evalBaseline(o Options) (*Candidate, string, error) {
	cand := evaluate(pipeline.PipelineSpec{}, evalConfig{
		name: o.Name, src: o.Source, inputBytes: o.InputBytes,
		timeout: o.Timeout, jobs: o.Jobs,
	})
	if !cand.Valid() {
		return nil, "", fmt.Errorf("autotune %s: -OVERIFY baseline failed: %s", o.Name, cand.Rejected)
	}
	return cand, bugKeys(cand.report), nil
}

// evaluate compiles src under the spec (zero-value spec: the canonical
// -OVERIFY pipeline) and measures one serial verification. Every gate
// that can fire on a well-formed candidate is deterministic: the
// instruction and solver-assignment caps stop the engine at the same
// point on every machine, so a candidate rejected as over-budget on one
// run is rejected identically on the next. The wall-clock backstop
// exists only for pathology the caps cannot see (a compile blowup, a
// stall inside a single solver query) and is sized so that a candidate
// within the deterministic caps can never reach it.
func evaluate(spec pipeline.PipelineSpec, ec evalConfig) *Candidate {
	cand := &Candidate{Spec: spec.String(), spec: spec}
	cfg := pipeline.LevelConfig(pipeline.OVerify)
	cfg.Jobs = ec.jobs
	if len(spec.Stages) > 0 {
		cfg.Pipeline = &spec
	}
	c, err := core.CompileWithConfig(ec.name, ec.src, cfg, core.DefaultLibc(pipeline.OVerify))
	if err != nil {
		cand.Rejected = "compile: " + err.Error()
		return cand
	}
	cand.Spec = c.Result.Spec // canonical rendering
	cand.CompileInvocations = c.Result.PassInvocations
	cand.InstrsOut = c.Result.InstrsOut
	cand.CompileWall = c.Result.CompileTime
	cand.PassTimings = c.Result.PassTimings
	if ec.invCap > 0 && cand.CompileInvocations > ec.invCap {
		cand.Rejected = "compile-budget"
		return cand
	}
	m, err := pipeline.MeasureVerify(c.Mod, pipeline.VerifySpec{
		Entry:          "umain",
		InputBytes:     ec.inputBytes,
		Timeout:        ec.timeout,
		MaxInstrs:      ec.maxInstrs,
		MaxAssignments: ec.maxAssigns,
	})
	if err != nil {
		cand.Rejected = "verify: " + err.Error()
		return cand
	}
	cand.Assignments = m.Assignments
	cand.Instrs = m.Instrs
	cand.Work = m.Assignments + m.Instrs
	cand.Paths = m.Paths
	cand.Queries = m.Queries
	cand.Bugs = m.Bugs
	cand.VerifyWall = m.Elapsed
	cand.report = m.Report
	if m.TimedOut || m.Truncated > 0 {
		// An incomplete exploration has no trustworthy bug set and no
		// comparable work count.
		cand.Rejected = "verify-budget"
		return cand
	}
	if ec.gate && bugKeys(m.Report) != ec.baseBugs {
		cand.Rejected = "parity"
		return cand
	}
	return cand
}

var bugPos = regexp.MustCompile(`(@[A-Za-z0-9_$]+)/[^ ]+`)

// bugKeys renders the position-normalized, deduplicated bug set — the
// same normalization the slicing parity suite uses, because the same
// caveat applies: a schedule's simplifycfg can merge two blocks whose
// defects the baseline reported separately.
func bugKeys(rep *symex.Report) string {
	if rep == nil {
		return ""
	}
	uniq := map[string]bool{}
	for _, b := range rep.Bugs {
		uniq[fmt.Sprintf("[%s] %s", b.Kind, bugPos.ReplaceAllString(b.Msg, "$1"))] = true
	}
	keys := make([]string, 0, len(uniq))
	for k := range uniq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// BugKeys exposes the parity normalization for tests.
func BugKeys(rep *symex.Report) string { return bugKeys(rep) }

// parallelDo runs f(0..n-1) on up to jobs goroutines (serial when jobs
// <= 1), the same index-addressed fan-out the bench drivers use: the
// caller's result slots keep deterministic order regardless of
// completion order.
func parallelDo(n, jobs int, f func(i int)) {
	if jobs < 0 {
		jobs = runtime.NumCPU()
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}
