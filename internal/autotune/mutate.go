package autotune

import (
	"math/rand"

	"overify/internal/passes"
	"overify/internal/pipeline"
)

// passWeights biases pass-pool draws by what the baseline compile
// attributed to each pass. The attribution currency is PassMetric's
// Changed count — invocations that actually rewrote the IR — which is
// deterministic across machines, unlike the wall-clock column. (Using
// Wall here would fork the candidate sequence between two runs of the
// same seed on a loaded machine, breaking the search's reproducibility
// contract.) A nil map degrades every draw to uniform.
type passWeights map[string]int64

// weightsFromMetrics sums per-pass Changed counts. Fixpoint stages
// report their member passes individually, so the attribution lands on
// the pass name regardless of how the schedule grouped it.
func weightsFromMetrics(metrics []passes.PassMetric) passWeights {
	if len(metrics) == 0 {
		return nil
	}
	w := make(passWeights, len(metrics))
	for _, m := range metrics {
		w[m.Name] += int64(m.Changed)
	}
	return w
}

// of returns the draw weight for one pass: 1 (so unattributed passes
// stay reachable) plus the baseline attribution.
func (w passWeights) of(pass string) int64 {
	if w == nil {
		return 1
	}
	return 1 + w[pass]
}

// pick draws one pass from pool, proportionally to weight.
func (w passWeights) pick(pool []string, rng *rand.Rand) string {
	if w == nil {
		return pool[rng.Intn(len(pool))]
	}
	var total int64
	for _, p := range pool {
		total += w.of(p)
	}
	r := rng.Int63n(total)
	for _, p := range pool {
		if r -= w.of(p); r < 0 {
			return p
		}
	}
	return pool[len(pool)-1]
}

// Candidate layout invariant: every spec the tuner builds is
//
//	prefix... , checks , annotate , post...
//
// The prefix is the optimization schedule proper (any registered pass
// except the instrumentation and slicing ones, fixpoints included).
// The checks/annotate suffix is fixed — deleting the checks pass would
// "win" the search by verifying a weaker property, so it is not part
// of the space. The post region runs after instrumentation, which is
// where slicing is sound (the check roots exist in the IR); it holds
// the slice/loopsummary stages and their cleanup.
//
// All mutation operators preserve this layout, so every mutant both
// parses back through ParsePipeline (the round-trip fuzz target) and
// verifies the same property as the baseline.

// optPool is the prefix-region pass pool: the registered optimization
// passes, minus instrumentation (checks/annotate — fixed suffix) and
// slicing (slice/loopsummary — post region only, via toggleSlice).
var optPool = []string{
	"mem2reg", "simplify", "cse", "simplifycfg", "dce",
	"jumpthread", "licm", "unswitch", "unroll", "ifconvert", "inline",
}

// postPool is the post-region cleanup pool. dce is deliberately
// absent, mirroring the slicing stages' cleanup: dce would delete dead
// trapping instructions that are exactly the roots the slice promised
// to keep. (The parity gate would catch the resulting bug loss on a
// buggy program, but only per-program; keeping dce out makes post
// schedules safe by construction.)
var postPool = []string{"simplify", "cse", "simplifycfg"}

// roundsPool is the fixpoint round-cap choices.
var roundsPool = []int{2, 4, 6, 8, 12}

const maxFixpointBody = 10

// seedSpecs returns the five stock levels' optimization stages, each
// re-fitted with the fixed checks/annotate suffix — the search's
// starting points.
func seedSpecs() []pipeline.PipelineSpec {
	levels := []pipeline.Level{
		pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify,
	}
	out := make([]pipeline.PipelineSpec, 0, len(levels))
	for _, lvl := range levels {
		var spec pipeline.PipelineSpec
		for _, st := range pipeline.Passes(pipeline.LevelConfig(lvl)).Stages {
			if st.Pass == "checks" || st.Pass == "annotate" {
				continue
			}
			spec.Stages = append(spec.Stages, st)
		}
		spec.Stages = append(spec.Stages,
			pipeline.Stage{Pass: "checks"}, pipeline.Stage{Pass: "annotate"})
		out = append(out, spec)
	}
	return out
}

// cloneSpec deep-copies a spec so mutation never aliases a candidate
// already in the memo.
func cloneSpec(s pipeline.PipelineSpec) pipeline.PipelineSpec {
	out := pipeline.PipelineSpec{Stages: make([]pipeline.Stage, len(s.Stages))}
	copy(out.Stages, s.Stages)
	for i := range out.Stages {
		if len(out.Stages[i].Fixpoint) > 0 {
			out.Stages[i].Fixpoint = append([]string(nil), out.Stages[i].Fixpoint...)
		}
	}
	return out
}

// regions splits a candidate into its three layout regions. The suffix
// is always [checks, annotate]; specs the tuner did not build itself
// go through seedSpecs/mutate only, so the invariant holds.
func regions(s pipeline.PipelineSpec) (pre, post []pipeline.Stage, ok bool) {
	ci := -1
	for i, st := range s.Stages {
		if st.Pass == "checks" {
			ci = i
			break
		}
	}
	if ci < 0 || ci+1 >= len(s.Stages) || s.Stages[ci+1].Pass != "annotate" {
		return nil, nil, false
	}
	return s.Stages[:ci], s.Stages[ci+2:], true
}

func assemble(pre, post []pipeline.Stage) pipeline.PipelineSpec {
	stages := make([]pipeline.Stage, 0, len(pre)+2+len(post))
	stages = append(stages, pre...)
	stages = append(stages, pipeline.Stage{Pass: "checks"}, pipeline.Stage{Pass: "annotate"})
	stages = append(stages, post...)
	return pipeline.PipelineSpec{Stages: stages}
}

// mutate returns one mutated deep copy of s. It retries operator draws
// until one applies, so the result always differs structurally from
// the input (modulo the rare self-inverse coincidence, which the
// fingerprint memo absorbs). Deterministic per rng state.
func mutate(s pipeline.PipelineSpec, rng *rand.Rand, maxStages int, w passWeights) pipeline.PipelineSpec {
	c := cloneSpec(s)
	pre, post, ok := regions(c)
	if !ok {
		// Defensive: refit the suffix rather than mutate blind.
		return assemble(c.Stages, nil)
	}
	for tries := 0; tries < 32; tries++ {
		np, npost, applied := applyOp(rng.Intn(10), pre, post, rng, w)
		if !applied {
			continue
		}
		if len(np)+2+len(npost) > maxStages {
			continue
		}
		return assemble(np, npost)
	}
	// Every operator failed to apply (tiny degenerate spec): fall back
	// to inserting one pass, which always applies.
	np := insertAt(pre, rng.Intn(len(pre)+1), pipeline.Stage{Pass: w.pick(optPool, rng)})
	return assemble(np, post)
}

// applyOp attempts one mutation operator; reports false when the
// operator does not apply to this candidate (empty region, no
// fixpoint, ...). pre/post are never mutated in place.
func applyOp(op int, pre, post []pipeline.Stage, rng *rand.Rand, w passWeights) (npre, npost []pipeline.Stage, ok bool) {
	// Generic ops pick a region: mostly the prefix, the post region a
	// quarter of the time once it exists.
	pickPost := len(post) > 0 && rng.Intn(4) == 0
	region, pool := pre, optPool
	if pickPost {
		region, pool = post, postPool
	}
	put := func(r []pipeline.Stage) ([]pipeline.Stage, []pipeline.Stage) {
		if pickPost {
			return copyStages(pre), r
		}
		return r, copyStages(post)
	}

	switch op {
	case 0: // insert a pass (weighted by baseline attribution)
		st := pipeline.Stage{Pass: w.pick(pool, rng)}
		a, b := put(insertAt(region, rng.Intn(len(region)+1), st))
		return a, b, true
	case 1: // delete a stage
		if len(region) == 0 {
			return nil, nil, false
		}
		a, b := put(deleteAt(region, rng.Intn(len(region))))
		return a, b, true
	case 2: // swap two stages
		if len(region) < 2 {
			return nil, nil, false
		}
		i, j := rng.Intn(len(region)), rng.Intn(len(region))
		if i == j {
			j = (j + 1) % len(region)
		}
		r := copyStages(region)
		r[i], r[j] = r[j], r[i]
		a, b := put(r)
		return a, b, true
	case 3: // duplicate a stage
		if len(region) == 0 {
			return nil, nil, false
		}
		i := rng.Intn(len(region))
		a, b := put(insertAt(region, i, region[i]))
		return a, b, true
	case 4: // grow a fixpoint body (prefix only: fixpoints live there)
		fi := fixpointIndexes(pre)
		if len(fi) == 0 {
			return nil, nil, false
		}
		r := copyStages(pre)
		i := fi[rng.Intn(len(fi))]
		body := r[i].Fixpoint
		if len(body) >= maxFixpointBody {
			return nil, nil, false
		}
		pos := rng.Intn(len(body) + 1)
		nb := append(append(append([]string(nil), body[:pos]...), w.pick(optPool, rng)), body[pos:]...)
		r[i].Fixpoint = nb
		return r, copyStages(post), true
	case 5: // shrink a fixpoint body (empty body deletes the stage)
		fi := fixpointIndexes(pre)
		if len(fi) == 0 {
			return nil, nil, false
		}
		r := copyStages(pre)
		i := fi[rng.Intn(len(fi))]
		body := r[i].Fixpoint
		if len(body) <= 1 {
			return deleteAt(pre, i), copyStages(post), true
		}
		pos := rng.Intn(len(body))
		r[i].Fixpoint = append(append([]string(nil), body[:pos]...), body[pos+1:]...)
		return r, copyStages(post), true
	case 6: // retune a fixpoint's round cap
		fi := fixpointIndexes(pre)
		if len(fi) == 0 {
			return nil, nil, false
		}
		r := copyStages(pre)
		i := fi[rng.Intn(len(fi))]
		rounds := roundsPool[rng.Intn(len(roundsPool))]
		if rounds == r[i].MaxRounds {
			return nil, nil, false
		}
		r[i].MaxRounds = rounds
		return r, copyStages(post), true
	case 7: // wrap a run of single passes into a fixpoint
		runs := singleRuns(pre)
		if len(runs) == 0 {
			return nil, nil, false
		}
		run := runs[rng.Intn(len(runs))]
		span := 2 + rng.Intn(3) // 2..4 stages
		if span > run.n {
			span = run.n
		}
		if span < 2 {
			return nil, nil, false
		}
		start := run.i + rng.Intn(run.n-span+1)
		body := make([]string, 0, span)
		for _, st := range pre[start : start+span] {
			body = append(body, st.Pass)
		}
		fx := pipeline.Stage{MaxRounds: roundsPool[rng.Intn(len(roundsPool))], Fixpoint: body}
		r := append(append(append([]pipeline.Stage(nil), pre[:start]...), fx), pre[start+span:]...)
		return r, copyStages(post), true
	case 8: // unwrap a fixpoint into its body
		fi := fixpointIndexes(pre)
		if len(fi) == 0 {
			return nil, nil, false
		}
		i := fi[rng.Intn(len(fi))]
		var flat []pipeline.Stage
		for _, name := range pre[i].Fixpoint {
			flat = append(flat, pipeline.Stage{Pass: name})
		}
		r := append(append(append([]pipeline.Stage(nil), pre[:i]...), flat...), pre[i+1:]...)
		return r, copyStages(post), true
	case 9: // toggle slice/loopsummary placement
		return copyStages(pre), toggleSlice(post), true
	}
	return nil, nil, false
}

// toggleSlice cycles the post region through the three slicing
// placements: none -> slice+cleanup -> slice+cleanup+loopsummary+
// cleanup -> none. Cleanup mirrors the canonical -OVERIFY slicing
// stages (no dce; see postPool).
func toggleSlice(post []pipeline.Stage) []pipeline.Stage {
	hasSlice, hasSummary := false, false
	for _, st := range post {
		switch st.Pass {
		case "slice":
			hasSlice = true
		case "loopsummary":
			hasSummary = true
		}
	}
	cleanup := []pipeline.Stage{{Pass: "simplify"}, {Pass: "cse"}, {Pass: "simplifycfg"}}
	switch {
	case !hasSlice:
		return append([]pipeline.Stage{{Pass: "slice"}}, cleanup...)
	case !hasSummary:
		return append(append(copyStages(post), pipeline.Stage{Pass: "loopsummary"}), cleanup...)
	default:
		return nil
	}
}

func copyStages(s []pipeline.Stage) []pipeline.Stage {
	return append([]pipeline.Stage(nil), s...)
}

func insertAt(s []pipeline.Stage, i int, st pipeline.Stage) []pipeline.Stage {
	out := make([]pipeline.Stage, 0, len(s)+1)
	out = append(out, s[:i]...)
	out = append(out, st)
	return append(out, s[i:]...)
}

func deleteAt(s []pipeline.Stage, i int) []pipeline.Stage {
	out := make([]pipeline.Stage, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func fixpointIndexes(s []pipeline.Stage) []int {
	var out []int
	for i, st := range s {
		if st.Pass == "" {
			out = append(out, i)
		}
	}
	return out
}

// singleRuns finds maximal runs of consecutive single-pass stages
// (fixpoints cannot nest, so only these are wrappable).
type run struct{ i, n int }

func singleRuns(s []pipeline.Stage) []run {
	var out []run
	i := 0
	for i < len(s) {
		if s[i].Pass == "" {
			i++
			continue
		}
		j := i
		for j < len(s) && s[j].Pass != "" {
			j++
		}
		if j-i >= 2 {
			out = append(out, run{i: i, n: j - i})
		}
		i = j
	}
	return out
}
