package autotune

import (
	"math/rand"
	"reflect"
	"testing"

	"overify/internal/pipeline"
)

// Every mutant must keep the fixed [checks, annotate] suffix layout and
// round-trip through ParsePipeline — the search relies on both.
func TestMutateKeepsLayoutAndRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for si, seed := range seedSpecs() {
		s := seed
		for step := 0; step < 200; step++ {
			s = mutate(s, rng, 24)
			if _, _, ok := regions(s); !ok {
				t.Fatalf("seed %d step %d: mutant lost the checks/annotate suffix: %s", si, step, s.String())
			}
			if len(s.Stages) > 24 {
				t.Fatalf("seed %d step %d: mutant exceeds MaxStages: %d stages", si, step, len(s.Stages))
			}
			rendered := s.String()
			rt, err := pipeline.ParsePipeline(rendered)
			if err != nil {
				t.Fatalf("seed %d step %d: mutant does not parse: %v\n  spec: %s", si, step, err, rendered)
			}
			if !reflect.DeepEqual(rt, s) {
				t.Fatalf("seed %d step %d: parse(render) != spec\n  spec: %s\n  got:  %s", si, step, rendered, rt.String())
			}
			for _, st := range s.Stages {
				for _, name := range st.Fixpoint {
					if name == "checks" || name == "annotate" {
						t.Fatalf("seed %d step %d: instrumentation pass inside a fixpoint: %s", si, step, rendered)
					}
				}
			}
		}
	}
}

// Mutation must never alias its input: the memo holds candidates by
// fingerprint of their rendered string, so in-place edits would corrupt
// already-recorded specs.
func TestMutateDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := seedSpecs()[4] // -OVERIFY: has fixpoints to share bodies with
	before := orig.String()
	for i := 0; i < 300; i++ {
		mutate(orig, rng, 24)
		if orig.String() != before {
			t.Fatalf("mutation %d modified its input:\n  before: %s\n  after:  %s", i, before, orig.String())
		}
	}
}

// The same rng seed must produce the same mutation sequence — the
// search's determinism rests on it.
func TestMutateDeterministic(t *testing.T) {
	render := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		s := seedSpecs()[4]
		out := make([]string, 0, 50)
		for i := 0; i < 50; i++ {
			s = mutate(s, rng, 24)
			out = append(out, s.String())
		}
		return out
	}
	a, b := render(99), render(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different mutation trajectories")
	}
}
