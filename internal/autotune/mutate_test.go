package autotune

import (
	"math/rand"
	"reflect"
	"testing"

	"overify/internal/pipeline"
)

// Every mutant must keep the fixed [checks, annotate] suffix layout and
// round-trip through ParsePipeline — the search relies on both.
func TestMutateKeepsLayoutAndRoundTrips(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for si, seed := range seedSpecs() {
		s := seed
		for step := 0; step < 200; step++ {
			s = mutate(s, rng, 24, nil)
			if _, _, ok := regions(s); !ok {
				t.Fatalf("seed %d step %d: mutant lost the checks/annotate suffix: %s", si, step, s.String())
			}
			if len(s.Stages) > 24 {
				t.Fatalf("seed %d step %d: mutant exceeds MaxStages: %d stages", si, step, len(s.Stages))
			}
			rendered := s.String()
			rt, err := pipeline.ParsePipeline(rendered)
			if err != nil {
				t.Fatalf("seed %d step %d: mutant does not parse: %v\n  spec: %s", si, step, err, rendered)
			}
			if !reflect.DeepEqual(rt, s) {
				t.Fatalf("seed %d step %d: parse(render) != spec\n  spec: %s\n  got:  %s", si, step, rendered, rt.String())
			}
			for _, st := range s.Stages {
				for _, name := range st.Fixpoint {
					if name == "checks" || name == "annotate" {
						t.Fatalf("seed %d step %d: instrumentation pass inside a fixpoint: %s", si, step, rendered)
					}
				}
			}
		}
	}
}

// Mutation must never alias its input: the memo holds candidates by
// fingerprint of their rendered string, so in-place edits would corrupt
// already-recorded specs.
func TestMutateDoesNotAliasInput(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	orig := seedSpecs()[4] // -OVERIFY: has fixpoints to share bodies with
	before := orig.String()
	for i := 0; i < 300; i++ {
		mutate(orig, rng, 24, nil)
		if orig.String() != before {
			t.Fatalf("mutation %d modified its input:\n  before: %s\n  after:  %s", i, before, orig.String())
		}
	}
}

// Weighted proposals must preserve the determinism contract: the same
// rng seed and the same attribution weights produce the same mutation
// sequence. (This is why weights are built from PassMetric's Changed
// counts and never from the wall-clock column.)
func TestWeightedProposalsDeterministic(t *testing.T) {
	w := passWeights{"cse": 50, "simplify": 12, "dce": 3}
	render := func() []string {
		rng := rand.New(rand.NewSource(7))
		s := seedSpecs()[4]
		out := make([]string, 0, 50)
		for i := 0; i < 50; i++ {
			s = mutate(s, rng, 24, w)
			out = append(out, s.String())
		}
		return out
	}
	a, b := render(), render()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed + same weights produced different mutation trajectories")
	}
}

// Weighted draws bias toward attributed passes without making any pass
// unreachable: the floor weight of 1 keeps unattributed passes in the
// pool, and heavy attribution dominates the draw distribution.
func TestWeightedPickBiasAndFloor(t *testing.T) {
	w := passWeights{"cse": 1000}
	if w.of("cse") != 1001 {
		t.Fatalf("attributed weight: got %d, want 1001", w.of("cse"))
	}
	if w.of("mem2reg") != 1 {
		t.Fatalf("unattributed floor: got %d, want 1", w.of("mem2reg"))
	}
	var nilW passWeights
	if nilW.of("cse") != 1 {
		t.Fatalf("nil weights floor: got %d, want 1", nilW.of("cse"))
	}
	rng := rand.New(rand.NewSource(1))
	hits := 0
	for i := 0; i < 2000; i++ {
		if w.pick(optPool, rng) == "cse" {
			hits++
		}
	}
	// cse carries 1001 of 1011 total weight; even a generous slack bound
	// on 2000 draws leaves it far above half.
	if hits < 1800 {
		t.Fatalf("cse drawn %d/2000 times despite ~99%% of the weight", hits)
	}
}

// The same rng seed must produce the same mutation sequence — the
// search's determinism rests on it.
func TestMutateDeterministic(t *testing.T) {
	render := func(seed int64) []string {
		rng := rand.New(rand.NewSource(seed))
		s := seedSpecs()[4]
		out := make([]string, 0, 50)
		for i := 0; i < 50; i++ {
			s = mutate(s, rng, 24, nil)
			out = append(out, s.String())
		}
		return out
	}
	a, b := render(99), render(99)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed produced different mutation trajectories")
	}
}
