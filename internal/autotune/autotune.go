// Package autotune searches the space of optimization schedules for
// one that minimizes symbolic-verification work on a given program —
// the paper's thesis made executable. -OVERIFY is a hand-written pass
// list; pipeline.PipelineSpec made pass lists data (PR 3), slicing
// made their payoff program-dependent (PR 8), so the schedule itself
// is now a search problem: seed from the five stock levels, mutate
// (insert/delete/swap/duplicate passes, grow/shrink fixpoint bodies,
// toggle slice/loopsummary placement), evaluate each candidate by
// compiling and verifying it, and hill-climb with random restarts.
//
// The objective is reproducible on shared CI hardware: candidates are
// ranked by deterministic work units — solver assignments tried plus
// instructions symbolically executed, both already counted by the
// engine — never by wall clock, and every evaluation runs the engine
// serially so the counts are schedule-independent. The candidate
// budgets are deterministic too: exploration stops at instruction and
// solver-assignment caps derived from the baseline (InstrsFactor,
// AssignsFactor), so an over-budget candidate is rejected at the same
// point on every run — a wall-clock budget would reject different
// candidates under different machine load and fork the search
// trajectory. Wall-clock is recorded per candidate and used only as a
// display tiebreaker in the bench rendering; letting it into the
// search comparator would make "reproducible from a fixed -seed" a lie
// on a noisy machine. Ties on
// work units fall through to compile work (pass invocations, also
// deterministic), then spec length, then the spec string.
//
// Soundness: a schedule that changes what verification finds is not an
// optimization, it is a different program. Every candidate is gated on
// bug parity against the -OVERIFY baseline — its position-normalized
// bug set must equal the baseline's — and a candidate that fails the
// gate is discarded, never ranked. Candidates also keep the
// instrumentation suffix (checks, annotate) fixed: deleting the checks
// pass would "win" by verifying a weaker property, so mutation cannot
// touch it. The slice/loopsummary stages are fair game — slicing holds
// bug parity by construction (PR 8's conformance suite), and where the
// search places slice is part of the headline result.
package autotune

import (
	"fmt"
	"math/rand"
	"time"

	"overify/internal/pipeline"
	"overify/internal/solver"
)

// Options configure one search.
type Options struct {
	// Name and Source identify the program (Name is display-only).
	Name   string
	Source string

	// InputBytes is the symbolic input size (default 4).
	InputBytes int
	// Timeout is the per-candidate wall-clock backstop (default 2m).
	// The real candidate budgets are InstrsFactor and AssignsFactor,
	// which stop the engine deterministically; the timeout only catches
	// pathology those caps cannot see (a compile blowup, a stall inside
	// one solver query). It is set far above the runtime the
	// deterministic caps allow on purpose: a backstop that can fire
	// under CPU contention would make the search trajectory
	// load-dependent.
	Timeout time.Duration
	// Budget caps unique candidate evaluations (default 64). The
	// baseline evaluation is free; memo hits cost nothing.
	Budget int
	// Seed fixes the mutation PRNG. Same seed, same program, same
	// budget => same search trajectory and same best spec.
	Seed int64
	// Jobs bounds concurrent candidate evaluations (0/1 serial). Each
	// evaluation owns a fresh engine, so fan-out cannot change any
	// candidate's deterministic counters.
	Jobs int
	// Neighborhood is how many mutants each hill-climb step evaluates
	// (default 6).
	Neighborhood int
	// MaxStages caps candidate spec length in top-level stages
	// (default 24), bounding compile-time bloat from duplication.
	MaxStages int
	// CompileFactor bounds candidate compile work: a candidate whose
	// pass invocations exceed factor x the baseline's is rejected
	// without verifying (default 1.0 — "equal-or-less t_compile",
	// measured in the deterministic currency).
	CompileFactor float64
	// InstrsFactor bounds candidate verify work: exploration is capped
	// at factor x the baseline's instruction count (default 16, floor
	// 1<<18) and a truncated candidate is rejected — deterministically,
	// unlike a wall-clock timeout.
	InstrsFactor int64
	// AssignsFactor bounds the other half of the work objective the
	// same way: a candidate's solver assignments are capped at factor x
	// the baseline's (default 8, floor 1<<16) and the engine stops
	// deterministically at the cap. Together the two caps bound every
	// candidate's runtime, which is what keeps the wall-clock backstop
	// from ever firing on a rankable candidate.
	AssignsFactor int64
}

func (o Options) withDefaults() Options {
	if o.InputBytes <= 0 {
		o.InputBytes = 4
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.Budget <= 0 {
		o.Budget = 64
	}
	if o.Neighborhood <= 0 {
		o.Neighborhood = 6
	}
	if o.MaxStages <= 0 {
		o.MaxStages = 24
	}
	if o.CompileFactor <= 0 {
		o.CompileFactor = 1.0
	}
	if o.InstrsFactor <= 0 {
		o.InstrsFactor = 16
	}
	if o.AssignsFactor <= 0 {
		o.AssignsFactor = 8
	}
	return o
}

// Result is what one search found.
type Result struct {
	Program  string
	Seed     int64
	Baseline *Candidate
	// Best is the winning candidate; it is the baseline itself when no
	// searched schedule beat it, so Best.Work <= Baseline.Work always.
	Best           *Candidate
	BestIsBaseline bool
	// ImprovementPct is the verify-work reduction vs the baseline.
	ImprovementPct float64
	Evaluated      int // unique candidate evaluations (baseline excluded)
	MemoHits       int // mutants skipped because their fingerprint was already evaluated
	Restarts       int
	// Candidates lists every unique evaluated candidate in evaluation
	// order (rejected ones included, with their rejection reason).
	Candidates []*Candidate
}

// Tune runs the search. The returned best spec is guaranteed to
// round-trip through ParsePipeline and to hold bug parity with the
// -OVERIFY baseline.
func Tune(opts Options) (*Result, error) {
	o := opts.withDefaults()
	base, baseBugs, err := evalBaseline(o)
	if err != nil {
		return nil, err
	}
	ec := evalConfig{
		name:       o.Name,
		src:        o.Source,
		inputBytes: o.InputBytes,
		timeout:    o.Timeout,
		jobs:       1,
		baseBugs:   baseBugs,
		gate:       true,
		invCap:     int(float64(base.CompileInvocations) * o.CompileFactor),
		maxInstrs:  maxi64(base.Instrs*o.InstrsFactor, 1<<18),
		maxAssigns: maxi64(base.Assignments*o.AssignsFactor, 1<<16),
	}

	res := &Result{Program: o.Name, Seed: o.Seed, Baseline: base}
	memo := map[solver.Fingerprint]bool{specFingerprint(base.Spec): true}
	seen := func(spec pipeline.PipelineSpec) bool {
		fp := specFingerprint(spec.String())
		if memo[fp] {
			res.MemoHits++
			return true
		}
		memo[fp] = true
		return false
	}

	// evalBatch evaluates specs concurrently (bounded by o.Jobs) and
	// records them. Selection happens only after the whole batch is
	// done, so completion order cannot influence the search.
	evalBatch := func(specs []pipeline.PipelineSpec) []*Candidate {
		out := make([]*Candidate, len(specs))
		parallelDo(len(specs), o.Jobs, func(i int) {
			out[i] = evaluate(specs[i], ec)
		})
		res.Candidates = append(res.Candidates, out...)
		res.Evaluated += len(out)
		return out
	}

	rng := rand.New(rand.NewSource(o.Seed ^ 0x07e1f1ed5eed))
	// Proposal weighting: the baseline compile's per-pass attribution
	// biases which pass an insert/grow mutation draws — passes that
	// actually rewrote this program propose more often. The attribution
	// is deterministic (Changed counts, not wall clock), so a fixed seed
	// still yields a fixed candidate sequence.
	weights := weightsFromMetrics(base.PassTimings)
	seeds := seedSpecs()
	best := base
	seedIdx := 0
	var cur *Candidate

	// nextStart picks a restart point: the stock levels round-robin,
	// then increasingly-kicked mutants of them once all five are seen.
	nextStart := func() (pipeline.PipelineSpec, bool) {
		for tries := 0; tries < 64; tries++ {
			s := cloneSpec(seeds[seedIdx%len(seeds)])
			kicks := seedIdx / len(seeds)
			seedIdx++
			for k := 0; k < kicks; k++ {
				s = mutate(s, rng, o.MaxStages, weights)
			}
			if !seen(s) {
				return s, true
			}
		}
		return pipeline.PipelineSpec{}, false
	}

	for res.Evaluated < o.Budget {
		if cur == nil {
			spec, ok := nextStart()
			if !ok {
				break // search space around the seeds is exhausted
			}
			res.Restarts++
			cur = evalBatch([]pipeline.PipelineSpec{spec})[0]
			if cur.Valid() && less(cur, best) {
				best = cur
			}
			continue
		}
		k := o.Neighborhood
		if room := o.Budget - res.Evaluated; k > room {
			k = room
		}
		var neighbors []pipeline.PipelineSpec
		for tries := 0; len(neighbors) < k && tries < 16*k; tries++ {
			m := mutate(cur.spec, rng, o.MaxStages, weights)
			if !seen(m) {
				neighbors = append(neighbors, m)
			}
		}
		if len(neighbors) == 0 {
			cur = nil // neighborhood exhausted: restart
			continue
		}
		var bn *Candidate
		for _, c := range evalBatch(neighbors) {
			if !c.Valid() {
				continue
			}
			if bn == nil || less(c, bn) {
				bn = c
			}
			if less(c, best) {
				best = c
			}
		}
		if bn != nil && (!cur.Valid() || less(bn, cur)) {
			cur = bn // greedy step
		} else {
			cur = nil // local optimum: restart
		}
	}

	res.Best = best
	res.BestIsBaseline = best == base
	if base.Work > 0 {
		res.ImprovementPct = 100 * float64(base.Work-best.Work) / float64(base.Work)
	}
	// The contract callers (and the CI smoke) rely on: the winning spec
	// replays — parse, re-render, byte-identical.
	rt, err := pipeline.ParsePipeline(best.Spec)
	if err != nil {
		return nil, fmt.Errorf("autotune %s: best spec does not parse back: %w", o.Name, err)
	}
	if rt.String() != best.Spec {
		return nil, fmt.Errorf("autotune %s: best spec does not round-trip: %q -> %q", o.Name, best.Spec, rt.String())
	}
	return res, nil
}

// Evaluate scores one explicit spec against the program's -OVERIFY
// baseline under the same gates the search applies — the single-spec
// entry point tests and replay tooling use.
func Evaluate(opts Options, spec pipeline.PipelineSpec) (cand, baseline *Candidate, err error) {
	o := opts.withDefaults()
	base, baseBugs, err := evalBaseline(o)
	if err != nil {
		return nil, nil, err
	}
	ec := evalConfig{
		name:       o.Name,
		src:        o.Source,
		inputBytes: o.InputBytes,
		timeout:    o.Timeout,
		jobs:       o.Jobs,
		baseBugs:   baseBugs,
		gate:       true,
		invCap:     int(float64(base.CompileInvocations) * o.CompileFactor),
		maxInstrs:  maxi64(base.Instrs*o.InstrsFactor, 1<<18),
		maxAssigns: maxi64(base.Assignments*o.AssignsFactor, 1<<16),
	}
	return evaluate(cloneSpec(spec), ec), base, nil
}

// less is the search's strict total order over valid candidates. It is
// fully deterministic — see the package comment for why wall clock is
// excluded.
func less(a, b *Candidate) bool {
	if a.Work != b.Work {
		return a.Work < b.Work
	}
	if a.CompileInvocations != b.CompileInvocations {
		return a.CompileInvocations < b.CompileInvocations
	}
	if len(a.Spec) != len(b.Spec) {
		return len(a.Spec) < len(b.Spec)
	}
	return a.Spec < b.Spec
}

// specFingerprint is the dedupe key: the rendered spec string hashed
// through the verdict store's 128-bit streaming hasher.
func specFingerprint(spec string) solver.Fingerprint {
	h := solver.NewHasher()
	h.WriteString(spec)
	return h.Sum()
}

func maxi64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
