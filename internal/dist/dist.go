// Package dist is the distributed-frontier coordinator: it splits one
// verification's exploration into frontier shards, ships each shard to
// a worker daemon over the packet protocol (KindDistExplore), and
// merges the workers' schedule-invariant outcomes into a single report
// that matches what a serial run of the same program would produce.
//
// The division of labor mirrors the in-process worker pool, one level
// up: Engine.Split drives a breadth-first prefix of the exploration
// until the frontier is wide enough, the state codec serializes the
// pending states, and each worker drains its shard to exhaustion with
// its own engine (and, optionally, its own solver portfolio). Because
// every branch decision still happens exactly once in exactly one
// process, the merged counters — paths, instructions, solver verdicts,
// covered-block union, bug identities — are invariant under the
// sharding, which is the conformance property the tests and the CI
// distributed-smoke job pin.
package dist

import (
	"fmt"
	"sort"
	"sync"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/daemon"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/verdicts"
)

// Options configures one distributed verification. The compile
// identity fields must reach every worker verbatim — the state codec
// names IR by position, so coordinator and workers must compile the
// exact same module.
type Options struct {
	Name   string // display name for Source
	Source string // MiniC source text (exclusive with Prog)
	Prog   string // corpus program name

	Level  string // optimization level (default -OVERIFY)
	Passes string // explicit pipeline (must match workers)
	Slice  bool
	Checks string

	Entry      string // entry function (default umain)
	InputBytes int    // symbolic input size (default 4)

	// SplitStates is how many pending states the coordinator's
	// breadth-first prefix aims for before sharding (default 8 per
	// worker). Small programs may exhaust during the split; the
	// degenerate one-process run is still a valid cluster run.
	SplitStates int

	Search    string
	Seed      int64
	Workers   int // engine workers inside each worker daemon
	TimeoutMS int64
	MaxInstrs int64

	// Portfolio/PortfolioStall enable the solver portfolio on workers
	// and on the coordinator's split phase (0 = fixed-order).
	Portfolio      int
	PortfolioStall int64
}

// Result is one distributed verification's outcome plus cluster-shape
// provenance.
type Result struct {
	Report  *symex.Report
	Covered []string // sorted covered-block union ("fn/block")

	SplitStates int // frontier states shipped
	ShardsSent  int // DistExplore requests issued (empty shards skipped)
	Cluster     int // workers offered shards
}

// resolveSource mirrors the daemon's source/prog convention.
func resolveSource(name, source, prog string) (string, string, error) {
	switch {
	case prog != "" && source != "":
		return "", "", fmt.Errorf("dist: both source and corpus program %q given", prog)
	case prog != "":
		p, ok := coreutils.Get(prog)
		if !ok {
			return "", "", fmt.Errorf("dist: unknown corpus program %q", prog)
		}
		return p.Name, p.Src, nil
	case source != "":
		if name == "" {
			name = "<source>"
		}
		return name, source, nil
	default:
		return "", "", fmt.Errorf("dist: neither source nor a corpus program given")
	}
}

// compileLocal compiles the coordinator's copy of the module with the
// exact configuration workers derive from the same request fields.
func compileLocal(name, src string, o Options, checks ir.CheckSet) (*core.Compiled, error) {
	level := o.Level
	if level == "" {
		level = "-OVERIFY"
	}
	lvl, err := pipeline.ParseLevel(level)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.LevelConfig(lvl)
	if o.Passes != "" {
		spec, err := pipeline.ParsePipeline(o.Passes)
		if err != nil {
			return nil, err
		}
		cfg.Pipeline = &spec
	}
	cfg.Slice = o.Slice
	cfg.SliceChecks = checks
	return core.CompileWithConfig(name, src, cfg, core.DefaultLibc(lvl))
}

// Verify runs one distributed verification across the given worker
// clients. At least one client is required; the coordinator itself
// only drives the split prefix and the merge.
func Verify(clients []*daemon.Client, o Options) (*Result, error) {
	if len(clients) == 0 {
		return nil, fmt.Errorf("dist: no worker clients")
	}
	name, src, err := resolveSource(o.Name, o.Source, o.Prog)
	if err != nil {
		return nil, err
	}
	checks, err := ir.ParseCheckSet(o.Checks)
	if err != nil {
		return nil, err
	}
	strat, err := symex.ParseSearch(searchOrDefault(o.Search))
	if err != nil {
		return nil, err
	}
	entry := o.Entry
	if entry == "" {
		entry = "umain"
	}
	n := o.InputBytes
	if n <= 0 {
		n = 4
	}
	want := o.SplitStates
	if want <= 0 {
		want = 8 * len(clients)
	}

	c, err := compileLocal(name, src, o, checks)
	if err != nil {
		return nil, err
	}
	engOpts := symex.Options{
		Strategy:  strat,
		Seed:      o.Seed,
		MaxInstrs: o.MaxInstrs,
		Checks:    checks,
	}
	engOpts.Solver.Portfolio = o.Portfolio
	engOpts.Solver.PortfolioStall = o.PortfolioStall
	eng := symex.NewEngine(c.Mod, engOpts)
	buf := eng.SymbolicBuffer("input", n, true)
	length := eng.IntArg(ir.I32, uint64(n))

	states, err := eng.Split(entry, []symex.SymVal{buf, length}, nil, want)
	if err != nil {
		return nil, err
	}

	// Deterministic round-robin sharding: state i goes to worker
	// i mod len(clients). The merge is order-invariant, so which worker
	// gets which shard never shows in the outcome.
	shards := make([][]*symex.State, len(clients))
	for i, st := range states {
		w := i % len(clients)
		shards[w] = append(shards[w], st)
	}

	covered := make(map[string]bool)
	for _, bn := range eng.CoveredBlockNames() {
		covered[bn] = true
	}
	reports := []*symex.Report{eng.PartialReport()}

	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		sent    int
		farmErr error
	)
	for w, shard := range shards {
		if len(shard) == 0 {
			continue
		}
		data, err := eng.EncodeStates(shard)
		if err != nil {
			return nil, fmt.Errorf("dist: encode shard for worker %d: %w", w, err)
		}
		sent++
		req := &daemon.DistExploreRequest{
			Name: name, Source: src,
			Level: o.Level, Passes: o.Passes,
			Slice: o.Slice, Checks: o.Checks,
			Search: o.Search, Seed: o.Seed, Workers: o.Workers,
			TimeoutMS: o.TimeoutMS, MaxInstrs: o.MaxInstrs,
			Portfolio: o.Portfolio, PortfolioStall: o.PortfolioStall,
			States: data,
		}
		wg.Add(1)
		go func(w int, nStates int, req *daemon.DistExploreRequest) {
			defer wg.Done()
			reply, err := clients[w].DistExplore(req)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if farmErr == nil {
					farmErr = fmt.Errorf("dist: worker %d: %w", w, err)
				}
				return
			}
			if reply.NStates != nStates {
				if farmErr == nil {
					farmErr = fmt.Errorf("dist: worker %d decoded %d states, sent %d", w, reply.NStates, nStates)
				}
				return
			}
			reports = append(reports, &symex.Report{Stats: reply.Stats, Bugs: reply.Bugs})
			for _, bn := range reply.Covered {
				covered[bn] = true
			}
		}(w, len(shard), req)
	}
	wg.Wait()
	if farmErr != nil {
		return nil, farmErr
	}

	merged := symex.MergeReports(reports...)
	merged.Stats.CoveredBlocks = len(covered)
	names := make([]string, 0, len(covered))
	for bn := range covered {
		names = append(names, bn)
	}
	sort.Strings(names)
	return &Result{
		Report:      merged,
		Covered:     names,
		SplitStates: len(states),
		ShardsSent:  sent,
		Cluster:     len(clients),
	}, nil
}

func searchOrDefault(s string) string {
	if s == "" {
		return "dfs"
	}
	return s
}

// NormalizedRender is the conformance rendering: verdicts.Render with
// the reproducing input bytes elided. Bug *identities* (kind, message,
// site) and every counter are schedule-invariant, but which concrete
// model witnesses a bug depends on solver history, which differs
// across schedules and cluster shapes — any model reproduces, so the
// normalized form drops only the witness, nothing the verdict states.
func NormalizedRender(rep *symex.Report) string {
	cp := &symex.Report{Stats: rep.Stats}
	for _, b := range rep.Bugs {
		cp.Bugs = append(cp.Bugs, symex.Bug{Kind: b.Kind, Msg: b.Msg, Where: b.Where})
	}
	return verdicts.Render(cp)
}
