package dist_test

import (
	"fmt"
	"net"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/daemon"
	"overify/internal/dist"
	"overify/internal/pipeline"
	"overify/internal/verdicts"
)

// newStore opens a fresh on-disk verdict store under a test temp dir.
func newStore(t *testing.T) *verdicts.Store {
	t.Helper()
	s, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

// cluster starts n in-process worker daemons over in-memory pipes and
// returns handshaken clients. Each worker is a full Server with its
// own warm state — separate builders, caches, and compile caches —
// exactly the isolation real worker processes would have.
func cluster(t *testing.T, n int) []*daemon.Client {
	t.Helper()
	clients := make([]*daemon.Client, n)
	for i := range clients {
		s := daemon.NewServer(daemon.Config{Name: fmt.Sprintf("worker-%d", i)})
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.ServeConn(serverEnd)
		}()
		c, err := daemon.NewClient(clientEnd, clientEnd)
		if err != nil {
			t.Fatalf("worker %d handshake: %v", i, err)
		}
		t.Cleanup(func() {
			c.Close()
			<-done
		})
		clients[i] = c
	}
	return clients
}

// serialRender is the baseline: one process, one engine, normalized
// rendering.
func serialRender(t *testing.T, prog string, level pipeline.Level, n int) string {
	t.Helper()
	p, ok := coreutils.Get(prog)
	if !ok {
		t.Fatalf("unknown corpus program %q", prog)
	}
	c, err := core.CompileProgram(p, level)
	if err != nil {
		t.Fatalf("compile %s at %s: %v", prog, level, err)
	}
	rep, err := c.Verify("umain", core.VerifyOptions{InputBytes: n})
	if err != nil {
		t.Fatalf("verify %s: %v", prog, err)
	}
	return dist.NormalizedRender(rep)
}

// TestClusterMatchesSerialEveryLevel is the conformance gate: for
// corpus programs at every optimization level, the normalized verdict
// of a 1-coordinator + 2-worker cluster is byte-identical to the
// serial baseline.
func TestClusterMatchesSerialEveryLevel(t *testing.T) {
	clients := cluster(t, 2)
	levels := []pipeline.Level{pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify}
	progs := []string{"wc", "tr"}
	if testing.Short() {
		levels = []pipeline.Level{pipeline.O0, pipeline.OVerify}
	}
	for _, prog := range progs {
		for _, level := range levels {
			label := fmt.Sprintf("%s@%s", prog, level)
			serial := serialRender(t, prog, level, 3)
			res, err := dist.Verify(clients, dist.Options{
				Prog: prog, Level: level.String(), InputBytes: 3, SplitStates: 8,
			})
			if err != nil {
				t.Fatalf("%s: %v", label, err)
			}
			if got := dist.NormalizedRender(res.Report); got != serial {
				t.Errorf("%s: cluster verdict diverged from serial\nserial:\n%s\ncluster:\n%s", label, serial, got)
			}
			if res.Report.Stats.CoveredBlocks != len(res.Covered) {
				t.Errorf("%s: covered count %d != union size %d", label, res.Report.Stats.CoveredBlocks, len(res.Covered))
			}
		}
	}
}

// TestClusterShapeInvariance pins that the verdict does not depend on
// the cluster size: 1, 2, and 4 workers all render identically.
func TestClusterShapeInvariance(t *testing.T) {
	renders := make(map[int]string)
	for _, n := range []int{1, 2, 4} {
		clients := cluster(t, n)
		res, err := dist.Verify(clients, dist.Options{
			Prog: "uniq", Level: "-OVERIFY", InputBytes: 3, SplitStates: 4 * n,
		})
		if err != nil {
			t.Fatalf("cluster of %d: %v", n, err)
		}
		renders[n] = dist.NormalizedRender(res.Report)
	}
	if renders[1] != renders[2] || renders[2] != renders[4] {
		t.Errorf("verdict depends on cluster size:\n1: %s\n2: %s\n4: %s", renders[1], renders[2], renders[4])
	}
	serial := serialRender(t, "uniq", pipeline.OVerify, 3)
	if renders[1] != serial {
		t.Errorf("cluster verdict diverged from serial:\nserial:\n%s\ncluster:\n%s", serial, renders[1])
	}
}

// TestClusterSharedVerdictCache wires two workers to one shared
// verdict cache daemon: after worker A publishes a verify outcome,
// worker B's identical request is served from the shared cache.
func TestClusterSharedVerdictCache(t *testing.T) {
	cacheStore := newStore(t)
	cacheSrv := daemon.NewServer(daemon.Config{Name: "cache", Verdicts: cacheStore})
	cacheClientFor := func() *daemon.Client {
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			cacheSrv.ServeConn(serverEnd)
		}()
		c, err := daemon.NewClient(clientEnd, clientEnd)
		if err != nil {
			t.Fatalf("cache handshake: %v", err)
		}
		t.Cleanup(func() {
			c.Close()
			<-done
		})
		return c
	}

	worker := func(name string) *daemon.Client {
		s := daemon.NewServer(daemon.Config{
			Name:           name,
			Verdicts:       newStore(t),
			RemoteVerdicts: cacheClientFor(),
		})
		clientEnd, serverEnd := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			s.ServeConn(serverEnd)
		}()
		c, err := daemon.NewClient(clientEnd, clientEnd)
		if err != nil {
			t.Fatalf("%s handshake: %v", name, err)
		}
		t.Cleanup(func() {
			c.Close()
			<-done
		})
		return c
	}

	a, b := worker("worker-a"), worker("worker-b")
	req := &daemon.VerifyRequest{Prog: "echo", InputBytes: 3}
	ra, err := a.Verify(req)
	if err != nil {
		t.Fatalf("worker-a verify: %v", err)
	}
	if ra.VerdictCacheHit {
		t.Fatalf("worker-a's cold verify claims a cache hit")
	}
	if cacheStore.Stores() == 0 {
		t.Fatalf("worker-a published nothing to the shared cache")
	}
	rb, err := b.Verify(req)
	if err != nil {
		t.Fatalf("worker-b verify: %v", err)
	}
	if !rb.VerdictCacheHit {
		t.Fatalf("worker-b's verify missed the shared verdict cache")
	}
	if ra.Render != rb.Render {
		t.Errorf("shared-cache verdict differs:\nA:\n%s\nB:\n%s", ra.Render, rb.Render)
	}
}
