package verdicts_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"overify/internal/core"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/verdicts"
)

// compile builds src at -O0 (no DCE, so unreachable functions survive
// into the module and the reachability claims below are meaningful).
func compile(t *testing.T, src string) *core.Compiled {
	t.Helper()
	c, err := core.CompileSource("t.c", src, pipeline.O0, core.DefaultLibc(pipeline.O0))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const keyBase = `
int helper(int x) { return x + 1; }
int unused(int x) { return x * 2; }
int umain(unsigned char *input, int len) {
	return helper(input[0]);
}
`

func TestKeyForReachability(t *testing.T) {
	base := compile(t, keyBase)
	k0, ok := verdicts.KeyFor(base.Mod, "umain", "ctx")
	if !ok {
		t.Fatal("KeyFor failed on base module")
	}
	if len(k0) != 32 {
		t.Fatalf("key %q is not 32 hex digits", k0)
	}

	// Editing a function umain never calls must not move the key.
	sameKey := compile(t, strings.Replace(keyBase, "x * 2", "x * 3", 1))
	if k, _ := verdicts.KeyFor(sameKey.Mod, "umain", "ctx"); k != k0 {
		t.Errorf("edit to unreachable function changed key: %s -> %s", k0, k)
	}

	// Any edit to reachable IR must move it.
	edited := compile(t, strings.Replace(keyBase, "x + 1", "x + 2", 1))
	if k, _ := verdicts.KeyFor(edited.Mod, "umain", "ctx"); k == k0 {
		t.Error("edit to reachable callee kept the key")
	}

	// So must a different context string (pipeline or verify config).
	if k, _ := verdicts.KeyFor(base.Mod, "umain", "ctx2"); k == k0 {
		t.Error("different context kept the key")
	}

	// Missing entry: nothing to key.
	if _, ok := verdicts.KeyFor(base.Mod, "no-such-fn", "ctx"); ok {
		t.Error("KeyFor succeeded for a missing entry function")
	}
}

func sampleReport() *symex.Report {
	rep := &symex.Report{}
	rep.Stats.Paths = 7
	rep.Stats.ErrorPaths = 1
	rep.Stats.Instrs = 1234
	rep.Stats.CoveredBlocks = 19
	rep.Stats.SolverStats.Queries = 42
	rep.Stats.SolverStats.Sat = 30
	rep.Stats.SolverStats.Unsat = 12
	rep.Bugs = []symex.Bug{{Kind: symex.BugOutOfBounds, Msg: "out of bounds", Where: "umain:3", Input: []byte("ab")}}
	return rep
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := verdicts.Key(strings.Repeat("ab", 16))
	rep := sampleReport()
	if err := store.Put(key, verdicts.FromReport(key, "prog", "umain", "-O2", rep)); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if r := verdicts.Render(got.Report()); r != verdicts.Render(rep) {
		t.Errorf("round-trip render mismatch:\ncold: %swarm: %s", verdicts.Render(rep), r)
	}
	if store.Len() != 1 || store.Hits != 1 || store.Stores != 1 {
		t.Errorf("counters: len=%d hits=%d stores=%d", store.Len(), store.Hits, store.Stores)
	}
}

func TestStoreToleratesCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := verdicts.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := verdicts.Key(strings.Repeat("cd", 16))
	entry := verdicts.FromReport(key, "prog", "umain", "-O2", sampleReport())
	path := filepath.Join(dir, string(key)+".json")

	corrupt := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Get(key); ok {
			t.Errorf("%s: corrupted entry served as a hit", name)
		}
		// And the store must recover: a fresh Put over the wreckage works.
		if err := store.Put(key, entry); err != nil {
			t.Fatalf("%s: Put over corrupted entry: %v", name, err)
		}
		if _, ok := store.Get(key); !ok {
			t.Fatalf("%s: repaired entry still missing", name)
		}
	}

	if err := store.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt("truncated", good[:len(good)/2])
	corrupt("garbage", []byte("not json at all\x00\xff"))
	corrupt("empty", nil)

	wrongSchema := strings.Replace(string(good), `"schema": 1`, `"schema": 999`, 1)
	if wrongSchema == string(good) {
		t.Fatal("schema marker not found in stored entry")
	}
	corrupt("wrong-schema", []byte(wrongSchema))

	wrongKey := strings.Replace(string(good), string(key), strings.Repeat("ef", 16), 1)
	corrupt("wrong-key", []byte(wrongKey))
}

func TestCacheable(t *testing.T) {
	rep := sampleReport()
	if !verdicts.Cacheable(rep) {
		t.Error("clean report not cacheable")
	}
	tr := sampleReport()
	tr.Stats.TruncatedPaths = 1
	to := sampleReport()
	to.Stats.TimedOut = true
	fa := sampleReport()
	fa.Stats.SolverStats.Failures = 1
	for name, r := range map[string]*symex.Report{"truncated": tr, "timed-out": to, "solver-failure": fa, "nil": nil} {
		if verdicts.Cacheable(r) {
			t.Errorf("%s report marked cacheable", name)
		}
	}
}
