package verdicts_test

import (
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"overify/internal/core"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/verdicts"
)

// compile builds src at -O0 (no DCE, so unreachable functions survive
// into the module and the reachability claims below are meaningful).
func compile(t *testing.T, src string) *core.Compiled {
	t.Helper()
	c, err := core.CompileSource("t.c", src, pipeline.O0, core.DefaultLibc(pipeline.O0))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

const keyBase = `
int helper(int x) { return x + 1; }
int unused(int x) { return x * 2; }
int umain(unsigned char *input, int len) {
	return helper(input[0]);
}
`

func TestKeyForReachability(t *testing.T) {
	base := compile(t, keyBase)
	k0, ok := verdicts.KeyFor(base.Mod, "umain", "ctx")
	if !ok {
		t.Fatal("KeyFor failed on base module")
	}
	if len(k0) != 32 {
		t.Fatalf("key %q is not 32 hex digits", k0)
	}

	// Editing a function umain never calls must not move the key.
	sameKey := compile(t, strings.Replace(keyBase, "x * 2", "x * 3", 1))
	if k, _ := verdicts.KeyFor(sameKey.Mod, "umain", "ctx"); k != k0 {
		t.Errorf("edit to unreachable function changed key: %s -> %s", k0, k)
	}

	// Any edit to reachable IR must move it.
	edited := compile(t, strings.Replace(keyBase, "x + 1", "x + 2", 1))
	if k, _ := verdicts.KeyFor(edited.Mod, "umain", "ctx"); k == k0 {
		t.Error("edit to reachable callee kept the key")
	}

	// So must a different context string (pipeline or verify config).
	if k, _ := verdicts.KeyFor(base.Mod, "umain", "ctx2"); k == k0 {
		t.Error("different context kept the key")
	}

	// Missing entry: nothing to key.
	if _, ok := verdicts.KeyFor(base.Mod, "no-such-fn", "ctx"); ok {
		t.Error("KeyFor succeeded for a missing entry function")
	}
}

func sampleReport() *symex.Report {
	rep := &symex.Report{}
	rep.Stats.Paths = 7
	rep.Stats.ErrorPaths = 1
	rep.Stats.Instrs = 1234
	rep.Stats.CoveredBlocks = 19
	rep.Stats.SolverStats.Queries = 42
	rep.Stats.SolverStats.Sat = 30
	rep.Stats.SolverStats.Unsat = 12
	rep.Bugs = []symex.Bug{{Kind: symex.BugOutOfBounds, Msg: "out of bounds", Where: "umain:3", Input: []byte("ab")}}
	return rep
}

func TestStoreRoundTrip(t *testing.T) {
	store, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	key := verdicts.Key(strings.Repeat("ab", 16))
	rep := sampleReport()
	if err := store.Put(key, verdicts.FromReport(key, "prog", "umain", "-O2", rep)); err != nil {
		t.Fatal(err)
	}
	got, ok := store.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if r := verdicts.Render(got.Report()); r != verdicts.Render(rep) {
		t.Errorf("round-trip render mismatch:\ncold: %swarm: %s", verdicts.Render(rep), r)
	}
	if store.Len() != 1 || store.Hits() != 1 || store.Stores() != 1 {
		t.Errorf("counters: len=%d hits=%d stores=%d", store.Len(), store.Hits(), store.Stores())
	}
}

func TestStoreToleratesCorruption(t *testing.T) {
	dir := t.TempDir()
	store, err := verdicts.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key := verdicts.Key(strings.Repeat("cd", 16))
	entry := verdicts.FromReport(key, "prog", "umain", "-O2", sampleReport())
	path := filepath.Join(dir, string(key)+".json")

	corrupt := func(name string, data []byte) {
		t.Helper()
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := store.Get(key); ok {
			t.Errorf("%s: corrupted entry served as a hit", name)
		}
		// And the store must recover: a fresh Put over the wreckage works.
		if err := store.Put(key, entry); err != nil {
			t.Fatalf("%s: Put over corrupted entry: %v", name, err)
		}
		if _, ok := store.Get(key); !ok {
			t.Fatalf("%s: repaired entry still missing", name)
		}
	}

	if err := store.Put(key, entry); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	corrupt("truncated", good[:len(good)/2])
	corrupt("garbage", []byte("not json at all\x00\xff"))
	corrupt("empty", nil)

	wrongSchema := strings.Replace(string(good), `"schema": 1`, `"schema": 999`, 1)
	if wrongSchema == string(good) {
		t.Fatal("schema marker not found in stored entry")
	}
	corrupt("wrong-schema", []byte(wrongSchema))

	wrongKey := strings.Replace(string(good), string(key), strings.Repeat("ef", 16), 1)
	corrupt("wrong-key", []byte(wrongKey))
}

// TestStoreConcurrentGetPut pins the daemon's core requirement: one
// Store shared by many goroutines must be race-free (run under -race)
// and its counters must stay consistent. The seed-era store mutated
// Hits/Misses with plain ++.
func TestStoreConcurrentGetPut(t *testing.T) {
	store, err := verdicts.OpenLimited(t.TempDir(), 8)
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]verdicts.Key, 16)
	for i := range keys {
		keys[i] = verdicts.Key(strings.Repeat(string(rune('a'+i%6)), 30) + "0" + string(rune('a'+i%10)))
	}
	rep := sampleReport()
	const goroutines, rounds = 8, 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				k := keys[(g+i)%len(keys)]
				if i%3 == 0 {
					if err := store.Put(k, verdicts.FromReport(k, "prog", "umain", "-O2", rep)); err != nil {
						t.Error(err)
						return
					}
				} else if e, ok := store.Get(k); ok {
					if got, want := verdicts.Render(e.Report()), verdicts.Render(rep); got != want {
						t.Errorf("concurrent Get returned a different outcome:\n%s\nvs\n%s", got, want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	gets := store.Hits() + store.Misses()
	if gets == 0 || store.Stores() == 0 {
		t.Errorf("counters lost updates: gets=%d stores=%d", gets, store.Stores())
	}
	if n := store.Len(); n > 8 {
		t.Errorf("bounded store holds %d entries, cap 8", n)
	}
}

// TestStoreEviction pins the bounded store's LRU-on-Put behavior:
// exceeding the cap removes the coldest entry (Get refreshes recency),
// evictions are counted, and evicted keys come back as plain misses.
func TestStoreEviction(t *testing.T) {
	store, err := verdicts.OpenLimited(t.TempDir(), 2)
	if err != nil {
		t.Fatal(err)
	}
	rep := sampleReport()
	key := func(i int) verdicts.Key {
		return verdicts.Key(strings.Repeat("0", 31) + string(rune('a'+i)))
	}
	put := func(i int) {
		t.Helper()
		if err := store.Put(key(i), verdicts.FromReport(key(i), "prog", "umain", "-O2", rep)); err != nil {
			t.Fatal(err)
		}
	}
	put(0)
	put(1)
	// Touch key 0 so key 1 is now the coldest.
	if _, ok := store.Get(key(0)); !ok {
		t.Fatal("resident entry missed")
	}
	put(2) // over cap: evicts key 1
	if store.Len() != 2 {
		t.Fatalf("Len = %d after eviction, want 2", store.Len())
	}
	if store.Evictions() != 1 {
		t.Errorf("Evictions = %d, want 1", store.Evictions())
	}
	if _, ok := store.Get(key(1)); ok {
		t.Error("evicted entry still served")
	}
	for _, i := range []int{0, 2} {
		if _, ok := store.Get(key(i)); !ok {
			t.Errorf("entry %d wrongly evicted", i)
		}
	}
}

// TestOpenLimitedAdoptsExisting: reopening a grown directory with a cap
// trims it to the cap, evicting the oldest files.
func TestOpenLimitedAdoptsExisting(t *testing.T) {
	dir := t.TempDir()
	store, err := verdicts.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	rep := sampleReport()
	for i := 0; i < 5; i++ {
		k := verdicts.Key(strings.Repeat("1", 31) + string(rune('a'+i)))
		if err := store.Put(k, verdicts.FromReport(k, "prog", "umain", "-O2", rep)); err != nil {
			t.Fatal(err)
		}
	}
	bounded, err := verdicts.OpenLimited(dir, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Len() != 3 {
		t.Errorf("reopened store holds %d entries, want 3", bounded.Len())
	}
	if bounded.Evictions() != 2 {
		t.Errorf("Evictions = %d, want 2", bounded.Evictions())
	}
}

func TestCacheable(t *testing.T) {
	rep := sampleReport()
	if !verdicts.Cacheable(rep) {
		t.Error("clean report not cacheable")
	}
	tr := sampleReport()
	tr.Stats.TruncatedPaths = 1
	to := sampleReport()
	to.Stats.TimedOut = true
	fa := sampleReport()
	fa.Stats.SolverStats.Failures = 1
	for name, r := range map[string]*symex.Report{"truncated": tr, "timed-out": to, "solver-failure": fa, "nil": nil} {
		if verdicts.Cacheable(r) {
			t.Errorf("%s report marked cacheable", name)
		}
	}
}
