// Package verdicts is the content-addressed verify-result store behind
// incremental re-verification (ROADMAP item 2): the paper's pitch only
// pays off if re-verifying after an edit is near-free, so per-entry
// verify outcomes are keyed by a fingerprint of everything that can
// change them — the canonical IR of the entry function and every
// function and global reachable from it, the pipeline that produced the
// module, and the verify configuration — and persisted as flat JSON
// files under a cache directory (`.overify-cache/` by convention).
//
// Soundness rests on two invariants the rest of the tree provides:
// verdicts are deterministic functions of content (the solver budget is
// counted in assignments tried, so no evaluator or schedule can flip a
// verdict — see internal/solver), and only deterministic outcomes are
// stored (Cacheable rejects truncated, timed-out or deadline-tainted
// runs). A warm lookup therefore reproduces the cold run's merged
// report byte-for-byte; Render gives that claim a concrete byte string
// to compare.
//
// Store reads are tolerant by design: a corrupted, truncated or
// wrong-schema entry is a cache miss, never an error — the worst a bad
// cache can do is cost one re-exploration.
package verdicts

import (
	"container/list"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"overify/internal/ir"
	"overify/internal/solver"
	"overify/internal/symex"
)

// Schema versions the on-disk entry layout; bump it whenever the entry
// fields or the meaning of a stored counter changes, and every old
// entry silently misses.
const Schema = 1

// Key is the content address of one verify outcome: 32 hex digits of
// the 128-bit fingerprint.
type Key string

// KeyFor fingerprints the verification-relevant content of mod rooted
// at entry: the canonical IR text of the entry function, of every
// function transitively reachable through calls, and of every global
// any of them references (all in sorted name order), plus the caller's
// context strings (pipeline description, verify configuration). It
// reports ok=false when the entry function does not exist — there is
// nothing meaningful to key.
//
// Keying the reachable closure rather than the whole module is what
// makes the store per-function: editing a function the entry never
// calls leaves the key unchanged, while any edit to reachable IR —
// including pass-pipeline changes that reshape it — produces a new key.
func KeyFor(mod *ir.Module, entry string, context ...string) (Key, bool) {
	root := mod.Func(entry)
	if root == nil {
		return "", false
	}

	// Reachable function closure, then referenced globals.
	seen := map[*ir.Function]bool{root: true}
	work := []*ir.Function{root}
	globals := map[string]*ir.Global{}
	var funcs []*ir.Function
	for len(work) > 0 {
		f := work[len(work)-1]
		work = work[:len(work)-1]
		funcs = append(funcs, f)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Callee != nil && !seen[in.Callee] {
					seen[in.Callee] = true
					work = append(work, in.Callee)
				}
				for _, a := range in.Args {
					if g, ok := a.(*ir.Global); ok {
						globals[g.Name] = g
					}
				}
			}
		}
	}
	sort.Slice(funcs, func(i, j int) bool { return funcs[i].Name < funcs[j].Name })
	gnames := make([]string, 0, len(globals))
	for n := range globals {
		gnames = append(gnames, n)
	}
	sort.Strings(gnames)

	h := solver.NewHasher()
	h.WriteString(fmt.Sprintf("overify-verdict-schema-%d\x00", Schema))
	h.WriteString(entry)
	h.WriteString("\x00")
	for _, c := range context {
		h.WriteString(c)
		h.WriteString("\x00")
	}
	for _, n := range gnames {
		h.WriteString(globals[n].Def())
		h.WriteString("\n")
	}
	for _, f := range funcs {
		h.WriteString(f.String())
		h.WriteString("\n")
	}
	return Key(h.Sum().Hex()), true
}

// Bug is the stored form of one merged bug report. Site identity
// (kind, message, location) is already stable across schedules — the
// deterministic merge guarantees it — so storing it verbatim round-
// trips byte-identically.
type Bug struct {
	Kind  int    `json:"kind"`
	Msg   string `json:"msg"`
	Where string `json:"where"`
	Input []byte `json:"input,omitempty"`
}

// Entry is one persisted verify outcome: the merged bug reports plus
// the schedule-invariant counters the conformance suites gate (paths,
// instructions, coverage, solver verdict counts). Wall-clock times and
// schedule-dependent counters (forks, states explored, per-worker
// stats) are deliberately absent — they could not be reproduced on a
// warm hit.
type Entry struct {
	Schema  int    `json:"schema"`
	Key     string `json:"key"`
	Program string `json:"program,omitempty"`
	Entry   string `json:"entry"`
	Level   string `json:"level,omitempty"`

	Bugs          []Bug `json:"bugs,omitempty"`
	Paths         int64 `json:"paths"`
	ErrorPaths    int64 `json:"errorPaths"`
	Instrs        int64 `json:"instrs"`
	CoveredBlocks int   `json:"coveredBlocks"`
	Queries       int64 `json:"queries"`
	Sat           int64 `json:"sat"`
	Unsat         int64 `json:"unsat"`
}

// Cacheable reports whether rep is a deterministic outcome safe to
// persist: every path ran to completion and, when a wall-clock budget
// was in play, no solver query failed (a deadline-induced ErrBudget
// depends on machine speed, not content; assignment-budget failures
// without a deadline are deterministic but conservatively rejected too
// — a failure means some branch was assumed feasible, and keeping the
// store failure-free keeps every stored verdict exact).
func Cacheable(rep *symex.Report) bool {
	return rep != nil &&
		!rep.Stats.TimedOut &&
		rep.Stats.TruncatedPaths == 0 &&
		rep.Stats.SolverStats.Failures == 0
}

// FromReport converts a verify report into its stored form.
func FromReport(key Key, program, entry, level string, rep *symex.Report) *Entry {
	e := &Entry{
		Schema: Schema, Key: string(key),
		Program: program, Entry: entry, Level: level,
		Paths:         rep.Stats.Paths,
		ErrorPaths:    rep.Stats.ErrorPaths,
		Instrs:        rep.Stats.Instrs,
		CoveredBlocks: rep.Stats.CoveredBlocks,
		Queries:       rep.Stats.SolverStats.Queries,
		Sat:           rep.Stats.SolverStats.Sat,
		Unsat:         rep.Stats.SolverStats.Unsat,
	}
	for _, b := range rep.Bugs {
		e.Bugs = append(e.Bugs, Bug{
			Kind: int(b.Kind), Msg: b.Msg, Where: b.Where,
			Input: append([]byte(nil), b.Input...),
		})
	}
	return e
}

// Report reconstitutes the stored outcome as a verify report. The
// VerdictCacheHits / SkippedFuncVerifies counters are the caller's to
// set — the entry records the cold run, not how it was served.
func (e *Entry) Report() *symex.Report {
	rep := &symex.Report{}
	rep.Stats.Paths = e.Paths
	rep.Stats.ErrorPaths = e.ErrorPaths
	rep.Stats.Instrs = e.Instrs
	rep.Stats.CoveredBlocks = e.CoveredBlocks
	rep.Stats.SolverStats.Queries = e.Queries
	rep.Stats.SolverStats.Sat = e.Sat
	rep.Stats.SolverStats.Unsat = e.Unsat
	for _, b := range e.Bugs {
		rep.Bugs = append(rep.Bugs, symex.Bug{
			Kind: symex.BugKind(b.Kind), Msg: b.Msg, Where: b.Where,
			Input: append([]byte(nil), b.Input...),
		})
	}
	return rep
}

// Render is the canonical byte rendering of a verify outcome: the
// verdict line, every merged bug with its reproducing input, and the
// schedule-invariant counters. Cold-vs-warm equivalence means "Render
// of both reports is byte-identical".
func Render(rep *symex.Report) string {
	var sb strings.Builder
	if len(rep.Bugs) == 0 {
		fmt.Fprintf(&sb, "verified: %d paths, no bugs\n", rep.Stats.Paths)
	} else {
		fmt.Fprintf(&sb, "bugs: %d\n", len(rep.Bugs))
		for _, b := range rep.Bugs {
			fmt.Fprintf(&sb, "  [%d] %s @ %s input=%q\n", int(b.Kind), b.Msg, b.Where, b.Input)
		}
	}
	fmt.Fprintf(&sb, "paths=%d errorPaths=%d truncated=%d instrs=%d covered=%d queries=%d sat=%d unsat=%d\n",
		rep.Stats.Paths, rep.Stats.ErrorPaths, rep.Stats.TruncatedPaths,
		rep.Stats.Instrs, rep.Stats.CoveredBlocks,
		rep.Stats.SolverStats.Queries, rep.Stats.SolverStats.Sat, rep.Stats.SolverStats.Unsat)
	return sb.String()
}

// Store is the on-disk verdict store: one flat JSON file per key under
// dir. Writers go through a temp file + rename so readers (including
// concurrent processes in watch mode) never observe a half-written
// entry; readers treat anything unreadable as a miss.
//
// A Store is safe for concurrent use: the daemon shares one across all
// in-flight verify jobs. Counters are atomic and the recency index that
// backs eviction is mutex-guarded; file IO itself runs outside the lock
// (rename is atomic, and a reader racing an eviction simply misses).
//
// A bounded store (OpenLimited with maxEntries > 0) evicts its
// least-recently-used entry on Put once the cap is exceeded. Eviction
// can never change a verdict — the store is a pure cache over
// deterministic outcomes — it only costs a future re-exploration.
type Store struct {
	dir string
	max int // max entries; 0 = unbounded

	hits      atomic.Int64
	misses    atomic.Int64
	stores    atomic.Int64
	evictions atomic.Int64

	// mu guards the recency index. lru front = most recently used;
	// index maps each resident key to its list element.
	mu    sync.Mutex
	lru   *list.List
	index map[Key]*list.Element
}

// DefaultDir is the conventional cache location.
const DefaultDir = ".overify-cache"

// Open creates (if needed) and opens an unbounded store rooted at dir;
// empty dir means DefaultDir.
func Open(dir string) (*Store, error) {
	return OpenLimited(dir, 0)
}

// OpenLimited opens a store capped at maxEntries (0 = unbounded).
// Entries already on disk are adopted into the recency index in file
// modification-time order (oldest = coldest) and the cap is enforced
// immediately, so a daemon restarted over a grown cache directory
// trims it rather than inheriting an unbounded footprint.
func OpenLimited(dir string, maxEntries int) (*Store, error) {
	if dir == "" {
		dir = DefaultDir
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("verdicts: open store: %w", err)
	}
	s := &Store{dir: dir, max: maxEntries, lru: list.New(), index: make(map[Key]*list.Element)}
	s.adoptExisting()
	return s, nil
}

// adoptExisting seeds the recency index from the directory contents and
// enforces the cap. Failures are ignored — an unindexed entry still
// serves Get; it just never gets evicted by this process.
func (s *Store) adoptExisting() {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return
	}
	type aged struct {
		key Key
		mod int64
	}
	entries := make([]aged, 0, len(matches))
	for _, m := range matches {
		key := Key(strings.TrimSuffix(filepath.Base(m), ".json"))
		st, err := os.Stat(m)
		if err != nil {
			continue
		}
		entries = append(entries, aged{key, st.ModTime().UnixNano()})
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].mod < entries[j].mod })
	s.mu.Lock()
	for _, e := range entries { // oldest first: each push lands in front of the older ones
		s.index[e.key] = s.lru.PushFront(e.key)
	}
	s.mu.Unlock()
	s.enforceCap()
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// Limit returns the entry cap (0 = unbounded).
func (s *Store) Limit() int { return s.max }

// Hits, Misses, Stores and Evictions are point-in-time counter reads.
func (s *Store) Hits() int64      { return s.hits.Load() }
func (s *Store) Misses() int64    { return s.misses.Load() }
func (s *Store) Stores() int64    { return s.stores.Load() }
func (s *Store) Evictions() int64 { return s.evictions.Load() }

func (s *Store) path(k Key) string {
	return filepath.Join(s.dir, string(k)+".json")
}

// touch marks k most-recently-used, inserting it if absent (e.g. an
// entry written by another process sharing the directory).
func (s *Store) touch(k Key) {
	s.mu.Lock()
	if el, ok := s.index[k]; ok {
		s.lru.MoveToFront(el)
	} else {
		s.index[k] = s.lru.PushFront(k)
	}
	s.mu.Unlock()
}

// enforceCap evicts least-recently-used entries until the index fits
// the cap. File removal happens outside the lock.
func (s *Store) enforceCap() {
	if s.max <= 0 {
		return
	}
	var victims []Key
	s.mu.Lock()
	for s.lru.Len() > s.max {
		el := s.lru.Back()
		if el == nil {
			break
		}
		k := el.Value.(Key)
		s.lru.Remove(el)
		delete(s.index, k)
		victims = append(victims, k)
	}
	s.mu.Unlock()
	for _, k := range victims {
		os.Remove(s.path(k))
		s.evictions.Add(1)
	}
}

// Get loads the entry for k. Any failure — missing file, torn write,
// garbage, schema or key mismatch — is reported as a miss.
func (s *Store) Get(k Key) (*Entry, bool) {
	data, err := os.ReadFile(s.path(k))
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	var e Entry
	if err := json.Unmarshal(data, &e); err != nil || e.Schema != Schema || e.Key != string(k) {
		s.misses.Add(1)
		return nil, false
	}
	s.hits.Add(1)
	s.touch(k)
	return &e, true
}

// Put persists e under k atomically (temp file + rename), then evicts
// cold entries if the store is over its cap. Errors are returned but
// safe to ignore: a failed write only loses warmth.
func (s *Store) Put(k Key, e *Entry) error {
	e.Schema, e.Key = Schema, string(k)
	data, err := json.MarshalIndent(e, "", "  ")
	if err != nil {
		return fmt.Errorf("verdicts: encode %s: %w", k, err)
	}
	tmp, err := os.CreateTemp(s.dir, "put-*.tmp")
	if err != nil {
		return fmt.Errorf("verdicts: write %s: %w", k, err)
	}
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("verdicts: write %s: %w", k, errFirst(werr, cerr))
	}
	if err := os.Rename(tmp.Name(), s.path(k)); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("verdicts: write %s: %w", k, err)
	}
	s.stores.Add(1)
	s.touch(k)
	s.enforceCap()
	return nil
}

func errFirst(errs ...error) error {
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// Len counts the entries currently on disk (test and reporting helper).
func (s *Store) Len() int {
	matches, err := filepath.Glob(filepath.Join(s.dir, "*.json"))
	if err != nil {
		return 0
	}
	return len(matches)
}
