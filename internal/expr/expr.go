// Package expr implements the hash-consed bitvector expression DAG that
// the symbolic executor builds and the solver decides. Expressions are
// immutable and deduplicated: structurally identical terms are the same
// pointer, so DAG sharing across forked states is free and equality
// tests are O(1).
//
// The expression language mirrors the IR's scalar semantics exactly
// (the same ir.EvalBin/EvalCmp/EvalCast functions evaluate both), which
// is what makes "the verifier and the CPU agree" testable.
package expr

import (
	"fmt"

	"overify/internal/ir"
)

// Kind classifies an expression node.
type Kind int

// Expression node kinds.
const (
	KConst Kind = iota
	KVar
	KBin    // ir binary op
	KCmp    // ir comparison (1-bit result)
	KSelect // ite(cond, a, b)
	KCast   // zext/sext/trunc
	KRead   // table[idx]: read of a concrete array at a symbolic index
)

// Var is a symbolic variable: one byte of program input.
type Var struct {
	Name string
	Bits int
	Idx  int // position in the input buffer
}

// Expr is an immutable, hash-consed expression node. Two structurally
// equal expressions built by the same Builder are pointer-equal.
type Expr struct {
	Kind Kind
	Bits int // result width in bits

	Op    ir.Op    // KBin, KCmp, KCast
	Val   uint64   // KConst
	V     *Var     // KVar
	Args  []*Expr  // operands (KBin: 2, KCmp: 2, KSelect: 3, KCast: 1, KRead: 1)
	Table []uint64 // KRead: the concrete cell values (masked to Bits)

	id   int64   // unique per Builder; used for canonical cache keys
	vset *VarSet // interned variable set, computed at construction
}

// ID returns the node's builder-unique id.
func (e *Expr) ID() int64 { return e.id }

// IsConst reports whether e is a constant, returning its value.
func (e *Expr) IsConst() (uint64, bool) {
	if e.Kind == KConst {
		return e.Val, true
	}
	return 0, false
}

// IsTrue reports whether e is the constant 1 of width 1.
func (e *Expr) IsTrue() bool { return e.Kind == KConst && e.Bits == 1 && e.Val == 1 }

// IsFalse reports whether e is the constant 0 of width 1.
func (e *Expr) IsFalse() bool { return e.Kind == KConst && e.Bits == 1 && e.Val == 0 }

// String renders the expression tree (shared nodes are re-printed).
func (e *Expr) String() string {
	switch e.Kind {
	case KConst:
		return fmt.Sprintf("%d:i%d", e.Val, e.Bits)
	case KVar:
		return e.V.Name
	case KBin, KCmp:
		return fmt.Sprintf("(%s %s %s)", e.Op, e.Args[0], e.Args[1])
	case KSelect:
		return fmt.Sprintf("(ite %s %s %s)", e.Args[0], e.Args[1], e.Args[2])
	case KCast:
		return fmt.Sprintf("(%s %s to i%d)", e.Op, e.Args[0], e.Bits)
	case KRead:
		return fmt.Sprintf("(read[%d] %s)", len(e.Table), e.Args[0])
	}
	return "?"
}

// Vars appends the distinct variables of e to out (deduplicated via
// seen). This is the walking slow path; VarSet is the O(1) lookup.
func (e *Expr) Vars(seen map[*Var]bool, visited map[*Expr]bool) {
	if visited[e] {
		return
	}
	visited[e] = true
	if e.Kind == KVar {
		seen[e.V] = true
		return
	}
	for _, a := range e.Args {
		a.Vars(seen, visited)
	}
}

// VarsOf returns the distinct variables appearing in the expressions,
// in builder-ordinal order, by merging the interned per-node sets (no
// DAG walk for builder-built expressions).
func VarsOf(es ...*Expr) []*Var {
	var u *VarSet
	for _, e := range es {
		u = MergeVarSets(u, e.VarSet())
	}
	if u == nil {
		return nil
	}
	return append([]*Var(nil), u.Vars()...)
}

// Size returns the number of distinct DAG nodes reachable from e.
func (e *Expr) Size() int {
	visited := make(map[*Expr]bool)
	var walk func(x *Expr)
	walk = func(x *Expr) {
		if visited[x] {
			return
		}
		visited[x] = true
		for _, a := range x.Args {
			walk(a)
		}
	}
	walk(e)
	return len(visited)
}
