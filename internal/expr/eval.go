package expr

import "overify/internal/ir"

// Eval evaluates e under a complete assignment of its variables, using
// the shared ir scalar semantics. Missing variables evaluate to zero.
// One-shot convenience over Evaluator (which amortizes the memo across
// calls).
func Eval(e *Expr, asn map[*Var]uint64) uint64 {
	ev := NewEvaluator()
	ev.Bind(asn)
	return ev.Eval(e)
}

// Evaluator evaluates expressions under complete assignments (missing
// variables read as zero, matching Eval) without per-call allocation:
// the memo map is reused across calls and invalidated in O(1) by a
// generation stamp when the assignment is rebound. The solver's
// model-reuse checks run every recent model over every query through
// one of these.
type Evaluator struct {
	asn  map[*Var]uint64
	memo map[*Expr]stampedVal
	gen  uint32
}

type stampedVal struct {
	gen uint32
	val uint64
}

// NewEvaluator returns an evaluator with no assignment bound.
func NewEvaluator() *Evaluator {
	return &Evaluator{memo: make(map[*Expr]stampedVal, 256), gen: 1}
}

// Bind sets the assignment for subsequent Eval calls and invalidates
// all memoized results.
func (ev *Evaluator) Bind(asn map[*Var]uint64) {
	ev.asn = asn
	ev.gen++
}

// Eval evaluates e under the bound assignment; semantics match the
// package-level Eval exactly.
func (ev *Evaluator) Eval(e *Expr) uint64 {
	if s, ok := ev.memo[e]; ok && s.gen == ev.gen {
		return s.val
	}
	var r uint64
	switch e.Kind {
	case KConst:
		r = e.Val
	case KVar:
		r = ir.Mask(e.Bits, ev.asn[e.V])
	case KBin:
		a := ev.Eval(e.Args[0])
		b := ev.Eval(e.Args[1])
		// Division by zero evaluates to 0 here; the engine checks the
		// denominator before ever building the expression.
		res, ok := ir.EvalBin(e.Op, e.Bits, a, b)
		if !ok {
			res = 0
		}
		r = res
	case KCmp:
		a := ev.Eval(e.Args[0])
		b := ev.Eval(e.Args[1])
		if ir.EvalCmp(e.Op, e.Args[0].Bits, a, b) {
			r = 1
		}
	case KSelect:
		if ev.Eval(e.Args[0]) != 0 {
			r = ev.Eval(e.Args[1])
		} else {
			r = ev.Eval(e.Args[2])
		}
	case KCast:
		r = ir.EvalCast(e.Op, e.Args[0].Bits, e.Bits, ev.Eval(e.Args[0]))
	case KRead:
		idx := ev.Eval(e.Args[0])
		if idx < uint64(len(e.Table)) {
			r = e.Table[idx]
		}
	}
	r = ir.Mask(e.Bits, r)
	ev.memo[e] = stampedVal{gen: ev.gen, val: r}
	return r
}

// PartialResult is a three-valued evaluation outcome.
type PartialResult struct {
	Known bool
	Val   uint64
}

// PartialEvaluator evaluates expressions under a mutable partial
// assignment without per-call allocation: results are memoized with a
// generation stamp, and Reset (after any assignment change) invalidates
// the memo in O(1).
type PartialEvaluator struct {
	Asn  map[*Var]uint64
	memo map[*Expr]stampedResult
	gen  uint32
	// Work counts node visits since construction; callers use it to
	// enforce time budgets.
	Work int64
}

type stampedResult struct {
	gen uint32
	res PartialResult
}

// NewPartialEvaluator returns an evaluator over the given assignment
// map (which the caller may mutate between Reset calls).
func NewPartialEvaluator(asn map[*Var]uint64) *PartialEvaluator {
	return &PartialEvaluator{Asn: asn, memo: make(map[*Expr]stampedResult, 256), gen: 1}
}

// Reset invalidates memoized results; call after changing Asn.
func (pe *PartialEvaluator) Reset() { pe.gen++ }

// Eval evaluates e under the current partial assignment.
func (pe *PartialEvaluator) Eval(e *Expr) PartialResult {
	if s, ok := pe.memo[e]; ok && s.gen == pe.gen {
		return s.res
	}
	pe.Work++
	res := pe.eval(e)
	if res.Known {
		res.Val = ir.Mask(e.Bits, res.Val)
	}
	pe.memo[e] = stampedResult{gen: pe.gen, res: res}
	return res
}

func (pe *PartialEvaluator) eval(e *Expr) PartialResult {
	unknown := PartialResult{}
	switch e.Kind {
	case KConst:
		return PartialResult{Known: true, Val: e.Val}
	case KVar:
		if v, ok := pe.Asn[e.V]; ok {
			return PartialResult{Known: true, Val: ir.Mask(e.Bits, v)}
		}
		return unknown
	case KBin:
		a := pe.Eval(e.Args[0])
		b := pe.Eval(e.Args[1])
		if a.Known && b.Known {
			r, ok := ir.EvalBin(e.Op, e.Bits, a.Val, b.Val)
			if !ok {
				r = 0
			}
			return PartialResult{Known: true, Val: r}
		}
		switch e.Op {
		case ir.OpAnd:
			if (a.Known && a.Val == 0) || (b.Known && b.Val == 0) {
				return PartialResult{Known: true, Val: 0}
			}
		case ir.OpOr:
			ones := ir.Mask(e.Bits, ^uint64(0))
			if (a.Known && a.Val == ones) || (b.Known && b.Val == ones) {
				return PartialResult{Known: true, Val: ones}
			}
		case ir.OpMul:
			if (a.Known && a.Val == 0) || (b.Known && b.Val == 0) {
				return PartialResult{Known: true, Val: 0}
			}
		}
		return unknown
	case KCmp:
		a := pe.Eval(e.Args[0])
		b := pe.Eval(e.Args[1])
		if a.Known && b.Known {
			if ir.EvalCmp(e.Op, e.Args[0].Bits, a.Val, b.Val) {
				return PartialResult{Known: true, Val: 1}
			}
			return PartialResult{Known: true, Val: 0}
		}
		return unknown
	case KSelect:
		c := pe.Eval(e.Args[0])
		if c.Known {
			if c.Val != 0 {
				return pe.Eval(e.Args[1])
			}
			return pe.Eval(e.Args[2])
		}
		t := pe.Eval(e.Args[1])
		f := pe.Eval(e.Args[2])
		if t.Known && f.Known && t.Val == f.Val {
			return t
		}
		return unknown
	case KCast:
		a := pe.Eval(e.Args[0])
		if a.Known {
			return PartialResult{Known: true, Val: ir.EvalCast(e.Op, e.Args[0].Bits, e.Bits, a.Val)}
		}
		return unknown
	case KRead:
		a := pe.Eval(e.Args[0])
		if a.Known {
			if a.Val < uint64(len(e.Table)) {
				return PartialResult{Known: true, Val: e.Table[a.Val]}
			}
			return PartialResult{Known: true, Val: 0}
		}
		return unknown
	}
	return unknown
}

// EvalPartial evaluates e under a partial assignment: variables present
// in asn are fixed, others unknown. Known short-circuits (x*0, and-with-
// false, or-with-true, select with known condition) are applied, which
// is what gives the solver its pruning power.
func EvalPartial(e *Expr, asn map[*Var]uint64, memo map[*Expr]PartialResult) PartialResult {
	if v, ok := memo[e]; ok {
		return v
	}
	res := evalPartial(e, asn, memo)
	if res.Known {
		res.Val = ir.Mask(e.Bits, res.Val)
	}
	memo[e] = res
	return res
}

func evalPartial(e *Expr, asn map[*Var]uint64, memo map[*Expr]PartialResult) PartialResult {
	unknown := PartialResult{}
	switch e.Kind {
	case KConst:
		return PartialResult{Known: true, Val: e.Val}
	case KVar:
		if v, ok := asn[e.V]; ok {
			return PartialResult{Known: true, Val: ir.Mask(e.Bits, v)}
		}
		return unknown
	case KBin:
		a := EvalPartial(e.Args[0], asn, memo)
		b := EvalPartial(e.Args[1], asn, memo)
		if a.Known && b.Known {
			r, ok := ir.EvalBin(e.Op, e.Bits, a.Val, b.Val)
			if !ok {
				r = 0
			}
			return PartialResult{Known: true, Val: r}
		}
		// Short-circuits with one known side.
		switch e.Op {
		case ir.OpAnd:
			if (a.Known && a.Val == 0) || (b.Known && b.Val == 0) {
				return PartialResult{Known: true, Val: 0}
			}
		case ir.OpOr:
			ones := ir.Mask(e.Bits, ^uint64(0))
			if (a.Known && a.Val == ones) || (b.Known && b.Val == ones) {
				return PartialResult{Known: true, Val: ones}
			}
		case ir.OpMul:
			if (a.Known && a.Val == 0) || (b.Known && b.Val == 0) {
				return PartialResult{Known: true, Val: 0}
			}
		}
		return unknown
	case KCmp:
		a := EvalPartial(e.Args[0], asn, memo)
		b := EvalPartial(e.Args[1], asn, memo)
		if a.Known && b.Known {
			if ir.EvalCmp(e.Op, e.Args[0].Bits, a.Val, b.Val) {
				return PartialResult{Known: true, Val: 1}
			}
			return PartialResult{Known: true, Val: 0}
		}
		return unknown
	case KSelect:
		c := EvalPartial(e.Args[0], asn, memo)
		if c.Known {
			if c.Val != 0 {
				return EvalPartial(e.Args[1], asn, memo)
			}
			return EvalPartial(e.Args[2], asn, memo)
		}
		// Unknown condition, but if both arms agree and are known, the
		// result is known anyway.
		t := EvalPartial(e.Args[1], asn, memo)
		f := EvalPartial(e.Args[2], asn, memo)
		if t.Known && f.Known && t.Val == f.Val {
			return t
		}
		return unknown
	case KCast:
		a := EvalPartial(e.Args[0], asn, memo)
		if a.Known {
			return PartialResult{Known: true, Val: ir.EvalCast(e.Op, e.Args[0].Bits, e.Bits, a.Val)}
		}
		return unknown
	case KRead:
		a := EvalPartial(e.Args[0], asn, memo)
		if a.Known {
			if a.Val < uint64(len(e.Table)) {
				return PartialResult{Known: true, Val: e.Table[a.Val]}
			}
			return PartialResult{Known: true, Val: 0}
		}
		return unknown
	}
	return unknown
}
