package expr

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"overify/internal/ir"
)

// Builder interns expression nodes and applies canonicalizing
// simplifications on construction. All expressions flowing through one
// symbolic-execution run must come from one Builder, so that
// structurally equal terms are pointer-equal and node ids are canonical
// cache keys across the whole run.
//
// A Builder made with NewConcurrentBuilder is safe for concurrent use:
// the parallel symbolic-execution engine shares one across all workers,
// which is what keeps the shared solver cache coherent (identical
// constraints get identical ids no matter which worker built them).
// NewBuilder returns the single-goroutine variant, which skips the
// synchronized interning map on the per-expression hot path — serial
// t_verify measurements pay no concurrency tax.
type Builder struct {
	concurrent bool
	plain      map[string]*Expr // single-goroutine interning
	shared     sync.Map         // concurrent interning: string -> *Expr
	nextID     atomic.Int64
	// nextVarOrd assigns each distinct variable a dense builder-local
	// ordinal — the bit position in every node's interned VarSet. A
	// losing racer in concurrent interning wastes an ordinal (harmless:
	// the bitset is merely one bit sparser).
	nextVarOrd atomic.Int64

	// nodesBuilt counts interning misses, a proxy for symbolic work.
	nodesBuilt atomic.Int64
	// cacheHits counts interning hits (structural sharing).
	cacheHits atomic.Int64
}

// NewBuilder returns an empty builder for single-goroutine use.
func NewBuilder() *Builder {
	return &Builder{plain: make(map[string]*Expr)}
}

// NewConcurrentBuilder returns an empty builder safe for concurrent
// interning from many goroutines.
func NewConcurrentBuilder() *Builder {
	return &Builder{concurrent: true}
}

// NodesBuilt returns the number of interning misses (distinct nodes).
func (b *Builder) NodesBuilt() int64 { return b.nodesBuilt.Load() }

// CacheHits returns the number of interning hits (structural sharing).
func (b *Builder) CacheHits() int64 { return b.cacheHits.Load() }

func (b *Builder) intern(key string, mk func() *Expr) *Expr {
	if !b.concurrent {
		if e, ok := b.plain[key]; ok {
			b.cacheHits.Add(1)
			return e
		}
		e := mk()
		e.id = b.nextID.Add(1)
		b.plain[key] = e
		b.nodesBuilt.Add(1)
		return e
	}
	if e, ok := b.shared.Load(key); ok {
		b.cacheHits.Add(1)
		return e.(*Expr)
	}
	e := mk()
	e.id = b.nextID.Add(1)
	if prev, loaded := b.shared.LoadOrStore(key, e); loaded {
		// Another worker interned the same term first; its node (and id)
		// wins so the term stays pointer-canonical.
		b.cacheHits.Add(1)
		return prev.(*Expr)
	}
	b.nodesBuilt.Add(1)
	return e
}

// Const builds a constant of the given width.
func (b *Builder) Const(bits int, v uint64) *Expr {
	v = ir.Mask(bits, v)
	key := "c" + strconv.Itoa(bits) + ":" + strconv.FormatUint(v, 10)
	return b.intern(key, func() *Expr {
		return &Expr{Kind: KConst, Bits: bits, Val: v, vset: emptyVarSet}
	})
}

// True is the 1-bit constant 1.
func (b *Builder) True() *Expr { return b.Const(1, 1) }

// False is the 1-bit constant 0.
func (b *Builder) False() *Expr { return b.Const(1, 0) }

// Bool converts a Go bool to a 1-bit constant.
func (b *Builder) Bool(v bool) *Expr {
	if v {
		return b.True()
	}
	return b.False()
}

// Var builds (or returns) the node for a symbolic variable.
func (b *Builder) Var(v *Var) *Expr {
	key := "v" + v.Name
	return b.intern(key, func() *Expr {
		ord := int32(b.nextVarOrd.Add(1) - 1)
		return &Expr{Kind: KVar, Bits: v.Bits, V: v, vset: singletonVarSet(v, ord)}
	})
}

func argKey(args ...*Expr) string {
	var sb strings.Builder
	for _, a := range args {
		sb.WriteByte(',')
		sb.WriteString(strconv.FormatInt(a.id, 10))
	}
	return sb.String()
}

// Bin builds a binary arithmetic/bitwise node with on-the-fly folding.
func (b *Builder) Bin(op ir.Op, x, y *Expr) *Expr {
	if x.Bits != y.Bits {
		panic(fmt.Sprintf("expr: %s width mismatch %d vs %d", op, x.Bits, y.Bits))
	}
	bits := x.Bits
	// Constant folding (division by zero stays symbolic: the engine
	// checks it before building).
	if xc, ok := x.IsConst(); ok {
		if yc, ok2 := y.IsConst(); ok2 {
			if r, okDiv := ir.EvalBin(op, bits, xc, yc); okDiv {
				return b.Const(bits, r)
			}
		}
	}
	// Canonicalize: constant on the right for commutative ops; otherwise
	// order operands by node id for interning stability.
	if op.IsCommutative() {
		_, xConst := x.IsConst()
		_, yConst := y.IsConst()
		switch {
		case xConst && !yConst:
			x, y = y, x
		case !xConst && !yConst && x.id > y.id:
			x, y = y, x
		}
	}
	if e := simplifyBin(b, op, x, y); e != nil {
		return e
	}
	key := "b" + strconv.Itoa(int(op)) + ":" + strconv.Itoa(bits) + argKey(x, y)
	return b.intern(key, func() *Expr {
		args := []*Expr{x, y}
		return &Expr{Kind: KBin, Bits: bits, Op: op, Args: args, vset: unionArgSets(args)}
	})
}

func simplifyBin(b *Builder, op ir.Op, x, y *Expr) *Expr {
	yc, yConst := y.IsConst()
	bits := x.Bits
	allOnes := ir.Mask(bits, ^uint64(0))
	switch op {
	case ir.OpAdd:
		if yConst && yc == 0 {
			return x
		}
	case ir.OpSub:
		if yConst && yc == 0 {
			return x
		}
		if x == y {
			return b.Const(bits, 0)
		}
	case ir.OpMul:
		if yConst && yc == 0 {
			return b.Const(bits, 0)
		}
		if yConst && yc == 1 {
			return x
		}
	case ir.OpAnd:
		if yConst && yc == 0 {
			return b.Const(bits, 0)
		}
		if yConst && yc == allOnes {
			return x
		}
		if x == y {
			return x
		}
	case ir.OpOr:
		if yConst && yc == 0 {
			return x
		}
		if yConst && yc == allOnes {
			return b.Const(bits, allOnes)
		}
		if x == y {
			return x
		}
	case ir.OpXor:
		if yConst && yc == 0 {
			return x
		}
		if x == y {
			return b.Const(bits, 0)
		}
		// Double negation: xor(xor(e, c1), c2) -> xor(e, c1^c2).
		if x.Kind == KBin && x.Op == ir.OpXor && yConst {
			if c1, ok := x.Args[1].IsConst(); ok {
				return b.Bin(ir.OpXor, x.Args[0], b.Const(bits, c1^yc))
			}
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if yConst && yc == 0 {
			return x
		}
	case ir.OpUDiv, ir.OpSDiv:
		if yConst && yc == 1 {
			return x
		}
	case ir.OpURem:
		if yConst && yc == 1 {
			return b.Const(bits, 0)
		}
	}
	return nil
}

// Not negates a 1-bit expression.
func (b *Builder) Not(x *Expr) *Expr {
	if x.Bits != 1 {
		panic("expr: Not on non-boolean")
	}
	return b.Bin(ir.OpXor, x, b.True())
}

// Cmp builds a comparison node (1-bit result) with folding.
func (b *Builder) Cmp(op ir.Op, x, y *Expr) *Expr {
	if x.Bits != y.Bits {
		panic(fmt.Sprintf("expr: %s width mismatch %d vs %d", op, x.Bits, y.Bits))
	}
	if xc, ok := x.IsConst(); ok {
		if yc, ok2 := y.IsConst(); ok2 {
			return b.Bool(ir.EvalCmp(op, x.Bits, xc, yc))
		}
	}
	if x == y {
		switch op {
		case ir.OpEq, ir.OpULe, ir.OpUGe, ir.OpSLe, ir.OpSGe:
			return b.True()
		default:
			return b.False()
		}
	}
	// Boolean-typed comparisons collapse: (x:i1 == 1) -> x, etc.
	if x.Bits == 1 {
		if yc, ok := y.IsConst(); ok {
			switch {
			case op == ir.OpEq && yc == 1, op == ir.OpNe && yc == 0:
				return x
			case op == ir.OpEq && yc == 0, op == ir.OpNe && yc == 1:
				return b.Not(x)
			}
		}
	}
	// (zext e1 to N) cmp const: compare at the source width when the
	// constant fits (this keeps solver terms small).
	if x.Kind == KCast && x.Op == ir.OpZExt {
		src := x.Args[0]
		if yc, ok := y.IsConst(); ok && yc <= ir.Mask(src.Bits, ^uint64(0)) {
			switch op {
			case ir.OpEq, ir.OpNe, ir.OpULt, ir.OpULe, ir.OpUGt, ir.OpUGe:
				return b.Cmp(op, src, b.Const(src.Bits, yc))
			}
		}
		// zext(x) == const that does not fit: statically false.
		if yc, ok := y.IsConst(); ok && yc > ir.Mask(src.Bits, ^uint64(0)) {
			switch op {
			case ir.OpEq:
				return b.False()
			case ir.OpNe:
				return b.True()
			}
		}
	}
	// ite(c, k1, k2) cmp const folds into c or !c when arms are consts.
	if x.Kind == KSelect {
		t, tOk := x.Args[1].IsConst()
		f, fOk := x.Args[2].IsConst()
		if tOk && fOk {
			if yc, ok := y.IsConst(); ok {
				tr := ir.EvalCmp(op, x.Bits, t, yc)
				fr := ir.EvalCmp(op, x.Bits, f, yc)
				switch {
				case tr && fr:
					return b.True()
				case !tr && !fr:
					return b.False()
				case tr && !fr:
					return x.Args[0]
				default:
					return b.Not(x.Args[0])
				}
			}
		}
	}
	key := "p" + strconv.Itoa(int(op)) + ":" + strconv.Itoa(x.Bits) + argKey(x, y)
	return b.intern(key, func() *Expr {
		args := []*Expr{x, y}
		return &Expr{Kind: KCmp, Bits: 1, Op: op, Args: args, vset: unionArgSets(args)}
	})
}

// Select builds ite(c, t, f).
func (b *Builder) Select(c, t, f *Expr) *Expr {
	if c.Bits != 1 {
		panic("expr: select cond must be 1 bit")
	}
	if t.Bits != f.Bits {
		panic("expr: select arm width mismatch")
	}
	if c.IsTrue() {
		return t
	}
	if c.IsFalse() {
		return f
	}
	if t == f {
		return t
	}
	// Boolean select is logic: ite(c, 1, 0) = c; ite(c, 0, 1) = !c;
	// ite(c, x, 0) = c & x; ite(c, 1, x) = c | x; etc.
	if t.Bits == 1 {
		if t.IsTrue() && f.IsFalse() {
			return c
		}
		if t.IsFalse() && f.IsTrue() {
			return b.Not(c)
		}
		if f.IsFalse() {
			return b.Bin(ir.OpAnd, c, t)
		}
		if t.IsTrue() {
			return b.Bin(ir.OpOr, c, f)
		}
		if t.IsFalse() {
			return b.Bin(ir.OpAnd, b.Not(c), f)
		}
		if f.IsTrue() {
			return b.Bin(ir.OpOr, b.Not(c), t)
		}
	}
	key := "s" + strconv.Itoa(t.Bits) + argKey(c, t, f)
	return b.intern(key, func() *Expr {
		args := []*Expr{c, t, f}
		return &Expr{Kind: KSelect, Bits: t.Bits, Args: args, vset: unionArgSets(args)}
	})
}

// Cast builds zext/sext/trunc of x to toBits.
func (b *Builder) Cast(op ir.Op, x *Expr, toBits int) *Expr {
	if xc, ok := x.IsConst(); ok {
		return b.Const(toBits, ir.EvalCast(op, x.Bits, toBits, xc))
	}
	if x.Bits == toBits {
		return x
	}
	// Collapse cast chains mirroring the IR simplifier.
	if x.Kind == KCast {
		inner := x.Args[0]
		switch {
		case op == ir.OpTrunc && (x.Op == ir.OpZExt || x.Op == ir.OpSExt):
			if inner.Bits == toBits {
				return inner
			}
			if inner.Bits > toBits {
				return b.Cast(ir.OpTrunc, inner, toBits)
			}
			return b.Cast(x.Op, inner, toBits)
		case op == ir.OpZExt && x.Op == ir.OpZExt:
			return b.Cast(ir.OpZExt, inner, toBits)
		case op == ir.OpSExt && x.Op == ir.OpSExt:
			return b.Cast(ir.OpSExt, inner, toBits)
		case op == ir.OpSExt && x.Op == ir.OpZExt:
			return b.Cast(ir.OpZExt, inner, toBits)
		}
	}
	// Push casts through selects with constant arms.
	if x.Kind == KSelect {
		_, tOk := x.Args[1].IsConst()
		_, fOk := x.Args[2].IsConst()
		if tOk && fOk {
			return b.Select(x.Args[0],
				b.Cast(op, x.Args[1], toBits), b.Cast(op, x.Args[2], toBits))
		}
	}
	key := "x" + strconv.Itoa(int(op)) + ":" + strconv.Itoa(toBits) + argKey(x)
	return b.intern(key, func() *Expr {
		args := []*Expr{x}
		return &Expr{Kind: KCast, Bits: toBits, Op: op, Args: args, vset: unionArgSets(args)}
	})
}

// Read builds table[idx] over a concrete table. The table slice must not
// be mutated afterwards (callers snapshot writable memory).
func (b *Builder) Read(table []uint64, bits int, idx *Expr) *Expr {
	if ic, ok := idx.IsConst(); ok {
		if ic < uint64(len(table)) {
			return b.Const(bits, table[ic])
		}
		// Out-of-range constant read: the engine reports the bug before
		// building; return 0 defensively.
		return b.Const(bits, 0)
	}
	// Key on table contents: different snapshots intern separately.
	var sb strings.Builder
	sb.WriteByte('r')
	sb.WriteString(strconv.Itoa(bits))
	for _, v := range table {
		sb.WriteByte(':')
		sb.WriteString(strconv.FormatUint(v, 36))
	}
	sb.WriteString(argKey(idx))
	return b.intern(sb.String(), func() *Expr {
		args := []*Expr{idx}
		return &Expr{Kind: KRead, Bits: bits, Args: args, Table: table, vset: unionArgSets(args)}
	})
}
