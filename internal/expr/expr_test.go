package expr

import (
	"math/rand"
	"testing"
	"testing/quick"

	"overify/internal/ir"
)

func TestHashConsing(t *testing.T) {
	b := NewBuilder()
	v := &Var{Name: "x", Bits: 8}
	x1 := b.Var(v)
	x2 := b.Var(v)
	if x1 != x2 {
		t.Error("same var interned twice")
	}
	a := b.Bin(ir.OpAdd, b.Cast(ir.OpZExt, x1, 32), b.Const(32, 5))
	c := b.Bin(ir.OpAdd, b.Cast(ir.OpZExt, x2, 32), b.Const(32, 5))
	if a != c {
		t.Error("structurally equal expressions must be pointer-equal")
	}
}

func TestBuilderFolding(t *testing.T) {
	b := NewBuilder()
	if v, ok := b.Bin(ir.OpAdd, b.Const(32, 2), b.Const(32, 3)).IsConst(); !ok || v != 5 {
		t.Error("2+3 must fold")
	}
	v := b.Var(&Var{Name: "x", Bits: 8})
	x := b.Cast(ir.OpZExt, v, 32)
	if b.Bin(ir.OpAdd, x, b.Const(32, 0)) != x {
		t.Error("x+0 must simplify to x")
	}
	if got, ok := b.Bin(ir.OpMul, x, b.Const(32, 0)).IsConst(); !ok || got != 0 {
		t.Error("x*0 must fold to 0")
	}
	if b.Bin(ir.OpXor, x, x).Kind != KConst {
		t.Error("x^x must fold to 0")
	}
	// Double negation of a boolean.
	c := b.Cmp(ir.OpEq, x, b.Const(32, 7))
	if b.Not(b.Not(c)) != c {
		t.Error("!!c must be c")
	}
	// Select with boolean arms.
	if b.Select(c, b.True(), b.False()) != c {
		t.Error("ite(c,1,0) must be c")
	}
	// Comparison narrowing through zext.
	n := b.Cmp(ir.OpEq, x, b.Const(32, 300))
	if !n.IsFalse() {
		t.Errorf("zext8 == 300 must be false, got %s", n)
	}
}

func TestCastChains(t *testing.T) {
	b := NewBuilder()
	v := b.Var(&Var{Name: "x", Bits: 8})
	z32 := b.Cast(ir.OpZExt, v, 32)
	back := b.Cast(ir.OpTrunc, z32, 8)
	if back != v {
		t.Error("trunc(zext(x)) to original width must be x")
	}
	z64 := b.Cast(ir.OpZExt, z32, 64)
	if z64.Kind != KCast || z64.Args[0] != v {
		t.Error("zext(zext(x)) must collapse to one zext from the source")
	}
}

// randomExpr builds a random expression over the given vars.
func randomExpr(r *rand.Rand, b *Builder, vars []*Var, depth int) *Expr {
	if depth <= 0 || r.Intn(4) == 0 {
		if r.Intn(2) == 0 {
			return b.Cast(ir.OpZExt, b.Var(vars[r.Intn(len(vars))]), 32)
		}
		return b.Const(32, uint64(r.Intn(512)))
	}
	x := randomExpr(r, b, vars, depth-1)
	y := randomExpr(r, b, vars, depth-1)
	ops := []ir.Op{ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpLShr}
	switch r.Intn(3) {
	case 0:
		c := b.Cmp(ir.OpULt, x, y)
		return b.Cast(ir.OpZExt, c, 32)
	case 1:
		c := b.Cmp(ir.OpEq, x, b.Const(32, uint64(r.Intn(256))))
		return b.Select(c, x, y)
	default:
		return b.Bin(ops[r.Intn(len(ops))], x, y)
	}
}

// TestSimplifierSoundness: whatever the builder's on-the-fly
// simplifications do, evaluating the built expression must equal
// evaluating the unsimplified semantics. We check by comparing two
// differently-associated constructions of the same semantic value.
func TestSimplifierSoundness(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	vars := []*Var{
		{Name: "a", Bits: 8}, {Name: "b", Bits: 8}, {Name: "c", Bits: 8},
	}
	for trial := 0; trial < 2000; trial++ {
		b := NewBuilder()
		e := randomExpr(r, b, vars, 4)
		asn := map[*Var]uint64{}
		for _, v := range vars {
			asn[v] = uint64(r.Intn(256))
		}
		got := Eval(e, asn)
		// An independent evaluator: partial evaluation with a full
		// assignment must agree with Eval.
		pe := NewPartialEvaluator(asn)
		res := pe.Eval(e)
		if !res.Known || res.Val != got {
			t.Fatalf("trial %d: Eval=%d PartialEval=%+v for %s", trial, got, res, e)
		}
	}
}

// TestPartialEvalConservative: with a partial assignment, a Known result
// must match the full evaluation for every completion of the assignment.
func TestPartialEvalConservative(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	vars := []*Var{
		{Name: "a", Bits: 8}, {Name: "b", Bits: 8},
	}
	for trial := 0; trial < 500; trial++ {
		b := NewBuilder()
		e := randomExpr(r, b, vars, 3)
		partial := map[*Var]uint64{vars[0]: uint64(r.Intn(256))}
		pe := NewPartialEvaluator(partial)
		res := pe.Eval(e)
		if !res.Known {
			continue
		}
		// Try several completions; all must agree with the partial value.
		for k := 0; k < 16; k++ {
			full := map[*Var]uint64{vars[0]: partial[vars[0]], vars[1]: uint64(r.Intn(256))}
			if got := Eval(e, full); got != res.Val {
				t.Fatalf("trial %d: partial said %d but completion gives %d for %s",
					trial, res.Val, got, e)
			}
		}
	}
}

func TestReadNode(t *testing.T) {
	b := NewBuilder()
	table := []uint64{10, 20, 30, 40}
	v := &Var{Name: "i", Bits: 8}
	idx := b.Cast(ir.OpZExt, b.Var(v), 64)
	e := b.Read(table, 8, idx)
	if e.Kind != KRead {
		t.Fatalf("kind = %v", e.Kind)
	}
	if got := Eval(e, map[*Var]uint64{v: 2}); got != 30 {
		t.Errorf("read[2] = %d", got)
	}
	// Constant index folds at build time.
	c := b.Read(table, 8, b.Const(64, 1))
	if got, ok := c.IsConst(); !ok || got != 20 {
		t.Errorf("read const idx = %v %v", got, ok)
	}
}

func TestVarsOf(t *testing.T) {
	b := NewBuilder()
	va := &Var{Name: "a", Bits: 8}
	vb := &Var{Name: "b", Bits: 8}
	e := b.Bin(ir.OpAdd,
		b.Cast(ir.OpZExt, b.Var(va), 32),
		b.Cast(ir.OpZExt, b.Var(vb), 32))
	vars := VarsOf(e)
	if len(vars) != 2 {
		t.Errorf("got %d vars", len(vars))
	}
}

// TestEvalMatchesIRSemantics cross-checks expr evaluation against the
// shared ir.EvalBin on random values (they use the same code, so this
// is a regression guard on the wiring, not the math).
func TestEvalMatchesIRSemantics(t *testing.T) {
	prop := func(a, b uint64) bool {
		bld := NewBuilder()
		x := bld.Const(32, a)
		y := bld.Const(32, b)
		for _, op := range []ir.Op{ir.OpAdd, ir.OpMul, ir.OpAnd, ir.OpLShr} {
			e := bld.Bin(op, x, y)
			want, _ := ir.EvalBin(op, 32, a, b)
			if got, ok := e.IsConst(); !ok || got != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}
