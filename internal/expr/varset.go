package expr

import (
	"sort"
	"sync/atomic"
)

// VarSet is the immutable set of distinct variables appearing in an
// expression. The Builder computes one for every node at construction
// time — a child-set union, almost always resolved by pointer reuse —
// so the solver's per-query independence analysis never walks the DAG.
//
// Representation: a bitset over builder-local variable ordinals (dense,
// assigned when a variable's node is first interned) plus the matching
// ordinal-sorted variable list. Sets from different Builders must not
// be mixed, the same rule that already governs node ids.
type VarSet struct {
	words []uint64
	list  []*Var
	ords  []int32
}

// emptyVarSet is the shared set of constant expressions.
var emptyVarSet = &VarSet{}

// Len returns the number of variables in the set.
func (s *VarSet) Len() int { return len(s.list) }

// Empty reports whether the set has no variables.
func (s *VarSet) Empty() bool { return len(s.list) == 0 }

// Vars returns the variables in ordinal order. The slice is shared and
// must not be mutated.
func (s *VarSet) Vars() []*Var { return s.list }

// Intersects reports whether the two sets share a variable.
func (s *VarSet) Intersects(o *VarSet) bool {
	n := len(s.words)
	if len(o.words) < n {
		n = len(o.words)
	}
	for i := 0; i < n; i++ {
		if s.words[i]&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// subsetOf reports whether every variable of s is in o.
func (s *VarSet) subsetOf(o *VarSet) bool {
	for i, w := range s.words {
		if i >= len(o.words) {
			return w == 0
		}
		if w&^o.words[i] != 0 {
			return false
		}
	}
	return true
}

// MergeVarSets returns the union of two sets, reusing one of the inputs
// when the other adds nothing (the common case on a growing path
// condition).
func MergeVarSets(a, b *VarSet) *VarSet {
	switch {
	case a == nil || a.Empty():
		if b == nil {
			return emptyVarSet
		}
		return b
	case b == nil || b.Empty():
		return a
	case a == b:
		return a
	case b.subsetOf(a):
		return a
	case a.subsetOf(b):
		return b
	}
	nw := len(a.words)
	if len(b.words) > nw {
		nw = len(b.words)
	}
	u := &VarSet{
		words: make([]uint64, nw),
		list:  make([]*Var, 0, len(a.list)+len(b.list)),
		ords:  make([]int32, 0, len(a.list)+len(b.list)),
	}
	copy(u.words, a.words)
	for i, w := range b.words {
		u.words[i] |= w
	}
	// Sorted merge of the ordinal lists, dropping duplicates.
	i, j := 0, 0
	for i < len(a.list) && j < len(b.list) {
		switch {
		case a.ords[i] < b.ords[j]:
			u.list = append(u.list, a.list[i])
			u.ords = append(u.ords, a.ords[i])
			i++
		case a.ords[i] > b.ords[j]:
			u.list = append(u.list, b.list[j])
			u.ords = append(u.ords, b.ords[j])
			j++
		default:
			u.list = append(u.list, a.list[i])
			u.ords = append(u.ords, a.ords[i])
			i++
			j++
		}
	}
	for ; i < len(a.list); i++ {
		u.list = append(u.list, a.list[i])
		u.ords = append(u.ords, a.ords[i])
	}
	for ; j < len(b.list); j++ {
		u.list = append(u.list, b.list[j])
		u.ords = append(u.ords, b.ords[j])
	}
	return u
}

// singletonVarSet builds the set {v} at the given builder ordinal.
func singletonVarSet(v *Var, ord int32) *VarSet {
	words := make([]uint64, ord/64+1)
	words[ord/64] = 1 << uint(ord%64)
	return &VarSet{words: words, list: []*Var{v}, ords: []int32{ord}}
}

// unionArgSets unions the interned sets of a node's operands.
func unionArgSets(args []*Expr) *VarSet {
	var u *VarSet
	for _, a := range args {
		u = MergeVarSets(u, a.VarSet())
	}
	if u == nil {
		return emptyVarSet
	}
	return u
}

// varSetWalks counts fallback DAG walks — VarSet() calls on expressions
// that were not produced by a Builder. The solver's white-box tests
// assert this stays flat across its per-query path: builder-built
// expressions always carry an interned set.
var varSetWalks atomic.Int64

// VarSetWalks returns the number of fallback DAG walks performed so far
// (test instrumentation).
func VarSetWalks() int64 { return varSetWalks.Load() }

// VarSet returns e's variable set. Builder-built expressions carry an
// interned set computed at construction; a literal-constructed Expr
// (tests) falls back to a counted DAG walk using Var.Idx as the
// ordinal.
func (e *Expr) VarSet() *VarSet {
	if e.vset != nil {
		return e.vset
	}
	varSetWalks.Add(1)
	seen := make(map[*Var]bool)
	visited := make(map[*Expr]bool)
	e.Vars(seen, visited)
	if len(seen) == 0 {
		return emptyVarSet
	}
	list := make([]*Var, 0, len(seen))
	for v := range seen {
		list = append(list, v)
	}
	sort.Slice(list, func(i, j int) bool {
		if list[i].Idx != list[j].Idx {
			return list[i].Idx < list[j].Idx
		}
		return list[i].Name < list[j].Name
	})
	s := &VarSet{list: list, ords: make([]int32, len(list))}
	maxOrd := 0
	for i, v := range list {
		s.ords[i] = int32(v.Idx)
		if v.Idx > maxOrd {
			maxOrd = v.Idx
		}
	}
	s.words = make([]uint64, maxOrd/64+1)
	for _, o := range s.ords {
		s.words[o/64] |= 1 << uint(o%64)
	}
	return s
}
