package expr

import (
	"math/rand"
	"sort"
	"testing"

	"overify/internal/ir"
)

// varsOfByWalk is the reference implementation: a fresh DAG walk.
func varsOfByWalk(es ...*Expr) []*Var {
	seen := make(map[*Var]bool)
	visited := make(map[*Expr]bool)
	for _, e := range es {
		e.Vars(seen, visited)
	}
	out := make([]*Var, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	return out
}

// TestVarSetMatchesWalk: for random builder-built DAGs, the interned
// set must contain exactly the variables a walk finds.
func TestVarSetMatchesWalk(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	vars := []*Var{
		{Name: "a", Bits: 8, Idx: 0}, {Name: "b", Bits: 8, Idx: 1},
		{Name: "c", Bits: 8, Idx: 2}, {Name: "d", Bits: 8, Idx: 3},
	}
	for trial := 0; trial < 500; trial++ {
		b := NewBuilder()
		e := randomExpr(r, b, vars, 5)
		got := e.VarSet().Vars()
		want := varsOfByWalk(e)
		if len(got) != len(want) {
			t.Fatalf("trial %d: set has %d vars, walk found %d (%s)", trial, len(got), len(want), e)
		}
		wantSet := make(map[*Var]bool, len(want))
		for _, v := range want {
			wantSet[v] = true
		}
		for _, v := range got {
			if !wantSet[v] {
				t.Fatalf("trial %d: set contains %s, walk did not find it", trial, v.Name)
			}
		}
		// The list must be ordinal-sorted and duplicate-free.
		if !sort.SliceIsSorted(e.VarSet().ords, func(i, j int) bool {
			return e.VarSet().ords[i] < e.VarSet().ords[j]
		}) {
			t.Fatalf("trial %d: ordinal list not sorted", trial)
		}
	}
}

// TestVarSetSharing: constructions that add no variables must reuse the
// child's set pointer — no allocation on the common path.
func TestVarSetSharing(t *testing.T) {
	b := NewBuilder()
	v := b.Var(&Var{Name: "x", Bits: 8, Idx: 0})
	x := b.Cast(ir.OpZExt, v, 32)
	if x.VarSet() != v.VarSet() {
		t.Error("cast must share the operand's var set")
	}
	sum := b.Bin(ir.OpAdd, x, b.Const(32, 5))
	if sum.VarSet() != x.VarSet() {
		t.Error("binop with a constant must share the operand's var set")
	}
	cmp := b.Cmp(ir.OpULt, sum, b.Const(32, 100))
	if cmp.VarSet() != x.VarSet() {
		t.Error("comparison with a constant must share the operand's var set")
	}
	if n := b.Const(32, 9).VarSet().Len(); n != 0 {
		t.Errorf("constant has %d vars", n)
	}
}

// TestVarSetIntersects covers the solver's independence primitive.
func TestVarSetIntersects(t *testing.T) {
	b := NewBuilder()
	x := b.Var(&Var{Name: "x", Bits: 8, Idx: 0})
	y := b.Var(&Var{Name: "y", Bits: 8, Idx: 1})
	xy := b.Bin(ir.OpAdd, b.Cast(ir.OpZExt, x, 32), b.Cast(ir.OpZExt, y, 32))
	if x.VarSet().Intersects(y.VarSet()) {
		t.Error("{x} intersects {y}")
	}
	if !xy.VarSet().Intersects(x.VarSet()) || !xy.VarSet().Intersects(y.VarSet()) {
		t.Error("{x,y} must intersect both singletons")
	}
	if got := MergeVarSets(x.VarSet(), y.VarSet()); got.Len() != 2 {
		t.Errorf("merged set has %d vars", got.Len())
	}
	if MergeVarSets(xy.VarSet(), x.VarSet()) != xy.VarSet() {
		t.Error("merging a subset must reuse the superset pointer")
	}
}

// TestVarSetWalkCounter: builder-built expressions never walk; literal
// Exprs fall back to a counted walk.
func TestVarSetWalkCounter(t *testing.T) {
	b := NewBuilder()
	v := b.Var(&Var{Name: "x", Bits: 8, Idx: 0})
	e := b.Cmp(ir.OpEq, v, b.Const(8, 4))
	start := VarSetWalks()
	_ = e.VarSet()
	_ = VarsOf(e, v)
	if d := VarSetWalks() - start; d != 0 {
		t.Errorf("builder-built expressions walked %d times", d)
	}
	lit := &Expr{Kind: KVar, Bits: 8, V: &Var{Name: "lit", Bits: 8, Idx: 0}}
	_ = lit.VarSet()
	if d := VarSetWalks() - start; d != 1 {
		t.Errorf("literal expression walks = %d, want 1", d)
	}
}

// TestEvaluatorMatchesEval: the reusable evaluator is Eval without the
// per-call memo allocation — results must be identical, across rebinds.
func TestEvaluatorMatchesEval(t *testing.T) {
	r := rand.New(rand.NewSource(4))
	vars := []*Var{
		{Name: "a", Bits: 8, Idx: 0}, {Name: "b", Bits: 8, Idx: 1},
	}
	ev := NewEvaluator()
	for trial := 0; trial < 300; trial++ {
		b := NewBuilder()
		e := randomExpr(r, b, vars, 4)
		asn := map[*Var]uint64{}
		for _, v := range vars {
			if r.Intn(3) > 0 { // sometimes missing: must read as zero
				asn[v] = uint64(r.Intn(256))
			}
		}
		ev.Bind(asn)
		if got, want := ev.Eval(e), Eval(e, asn); got != want {
			t.Fatalf("trial %d: Evaluator=%d Eval=%d for %s", trial, got, want, e)
		}
		// Repeat under the same binding exercises the memo.
		if got, want := ev.Eval(e), Eval(e, asn); got != want {
			t.Fatalf("trial %d (memo): Evaluator=%d Eval=%d", trial, got, want)
		}
	}
}
