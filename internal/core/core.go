// Package core is the facade tying the tool chain together: parse MiniC,
// link a libc variant, optimize at a level (the -OVERIFY switch lives
// here), then execute concretely or verify symbolically. The public root
// package overify re-exports this API.
package core

import (
	"fmt"

	"overify/internal/coreutils"
	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/lang"
	"overify/internal/libc"
	"overify/internal/passes"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// Compiled is a program compiled at a specific optimization level with a
// specific libc variant.
type Compiled struct {
	Name   string
	Mod    *ir.Module
	Level  pipeline.Level
	Libc   libc.Kind
	Result *pipeline.Result
}

// DefaultLibc returns the library variant a level links by default:
// -OVERIFY ships its own verification-friendly libc (§3), everything
// else uses the uclibc-style baseline (as KLEE does).
func DefaultLibc(level pipeline.Level) libc.Kind {
	if level == pipeline.OVerify {
		return libc.Verified
	}
	return libc.Uclibc
}

// CompileSource parses src, links the libc variant, and optimizes at the
// given level.
func CompileSource(name, src string, level pipeline.Level, lk libc.Kind) (*Compiled, error) {
	cfg := pipeline.LevelConfig(level)
	return CompileWithConfig(name, src, cfg, lk)
}

// CompileWithConfig is CompileSource with an explicit pipeline config
// (custom cost models, checks toggles, per-pass verification).
func CompileWithConfig(name, src string, cfg pipeline.Config, lk libc.Kind) (*Compiled, error) {
	progFile, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	libFile, err := libc.Parse(lk)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", lk, err)
	}
	mod, err := frontend.LowerFiles(name, libFile, progFile)
	if err != nil {
		return nil, fmt.Errorf("lower %s: %w", name, err)
	}
	res, err := pipeline.Optimize(mod, cfg)
	if err != nil {
		return nil, fmt.Errorf("optimize %s at %s: %w", name, cfg.Level, err)
	}
	return &Compiled{Name: name, Mod: mod, Level: cfg.Level, Libc: lk, Result: res}, nil
}

// CompileWithPasses compiles src + libc and then runs an explicit pass
// list under the given cost model (used by the Table 2 ablation).
func CompileWithPasses(name, src string, lk libc.Kind, cost passes.CostModel, seq []passes.Pass) (*Compiled, error) {
	progFile, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	libFile, err := libc.Parse(lk)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", lk, err)
	}
	mod, err := frontend.LowerFiles(name, libFile, progFile)
	if err != nil {
		return nil, fmt.Errorf("lower %s: %w", name, err)
	}
	res, err := pipeline.OptimizeWithPasses(mod, cost, seq)
	if err != nil {
		return nil, fmt.Errorf("optimize %s: %w", name, err)
	}
	return &Compiled{Name: name, Mod: mod, Libc: lk, Result: res}, nil
}

// CompileProgram compiles a corpus program with the level's default libc.
func CompileProgram(p coreutils.Program, level pipeline.Level) (*Compiled, error) {
	return CompileSource(p.Name, p.Src, level, DefaultLibc(level))
}

// RunResult is the outcome of one concrete execution.
type RunResult struct {
	Exit   int64
	Output []byte
	Stats  interp.Stats
}

// Run executes fn(input, len(input)) concretely on the reference
// interpreter and collects the bytes written to the libc OUT sink.
func (c *Compiled) Run(fn string, input []byte) (*RunResult, error) {
	m := interp.NewMachine(c.Mod, interp.Options{})
	buf := interp.ByteObject("input", append(append([]byte{}, input...), 0))
	ret, err := m.Call(fn,
		interp.PtrVal(buf, 0),
		interp.IntVal(ir.I32, uint64(len(input))))
	if err != nil {
		return nil, err
	}
	rr := &RunResult{Exit: ir.SignExtend(32, ret.Bits), Stats: m.Stats}
	rr.Output = readOut(m)
	return rr, nil
}

// readOut extracts the libc output sink contents from a machine.
func readOut(m *interp.Machine) []byte {
	outn, ok1 := m.GlobalData("OUTN")
	out, ok2 := m.GlobalData("OUT")
	if !ok1 || !ok2 || len(outn) == 0 {
		return nil
	}
	n := int(ir.SignExtend(32, outn[0]))
	if n < 0 {
		n = 0
	}
	if n > len(out) {
		n = len(out)
	}
	res := make([]byte, n)
	for i := 0; i < n; i++ {
		res[i] = byte(out[i])
	}
	return res
}

// VerifyOptions configure symbolic verification.
type VerifyOptions struct {
	// InputBytes is the symbolic input size (the paper uses 2–10).
	InputBytes int
	// Engine options (timeouts, limits, search strategy + seed,
	// CoverTarget, workers). Use symex.ParseSearch to map a flag
	// spelling onto Engine.Strategy.
	Engine symex.Options
}

// Verify explores fn(input, n) exhaustively with an n-byte symbolic
// NUL-terminated input, the KLEE coreutils setup of §4.
func (c *Compiled) Verify(fn string, opts VerifyOptions) (*symex.Report, error) {
	if opts.InputBytes <= 0 {
		opts.InputBytes = 4
	}
	eng := symex.NewEngine(c.Mod, opts.Engine)
	buf := eng.SymbolicBuffer("input", opts.InputBytes, true)
	length := eng.IntArg(ir.I32, uint64(opts.InputBytes))
	return eng.Run(fn, []symex.SymVal{buf, length}, nil)
}
