// Package core is the facade tying the tool chain together: parse MiniC,
// link a libc variant, optimize at a level (the -OVERIFY switch lives
// here), then execute concretely or verify symbolically. The public root
// package overify re-exports this API.
package core

import (
	"fmt"

	"overify/internal/coreutils"
	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/lang"
	"overify/internal/libc"
	"overify/internal/passes"
	"overify/internal/pipeline"
	"overify/internal/symex"
	"overify/internal/verdicts"
)

// Compiled is a program compiled at a specific optimization level with a
// specific libc variant.
type Compiled struct {
	Name   string
	Mod    *ir.Module
	Level  pipeline.Level
	Libc   libc.Kind
	Result *pipeline.Result

	// PipelineDesc identifies how the module was produced — level,
	// rendered pass pipeline, checks/annotation switches, libc variant.
	// It is the compilation half of the verdict store's content key;
	// empty (the explicit-pass-list ablation path) disables verdict
	// caching for this compile.
	PipelineDesc string
}

// DefaultLibc returns the library variant a level links by default:
// -OVERIFY ships its own verification-friendly libc (§3), everything
// else uses the uclibc-style baseline (as KLEE does).
func DefaultLibc(level pipeline.Level) libc.Kind {
	if level == pipeline.OVerify {
		return libc.Verified
	}
	return libc.Uclibc
}

// CompileSource parses src, links the libc variant, and optimizes at the
// given level.
func CompileSource(name, src string, level pipeline.Level, lk libc.Kind) (*Compiled, error) {
	cfg := pipeline.LevelConfig(level)
	return CompileWithConfig(name, src, cfg, lk)
}

// CompileWithConfig is CompileSource with an explicit pipeline config
// (custom cost models, checks toggles, per-pass verification).
func CompileWithConfig(name, src string, cfg pipeline.Config, lk libc.Kind) (*Compiled, error) {
	progFile, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	libFile, err := libc.Parse(lk)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", lk, err)
	}
	mod, err := frontend.LowerFiles(name, libFile, progFile)
	if err != nil {
		return nil, fmt.Errorf("lower %s: %w", name, err)
	}
	res, err := pipeline.Optimize(mod, cfg)
	if err != nil {
		return nil, fmt.Errorf("optimize %s at %s: %w", name, cfg.Level, err)
	}
	// The slice configuration needs no fields of its own: the rendered
	// spec contains the slice/loopsummary stages, annotated with the
	// kept-check subset when it is not "all".
	desc := fmt.Sprintf("level=%s|pipeline=%s|checks=%v|ranges=%v|libc=%s",
		cfg.Level, res.Spec, cfg.Checks, cfg.AnnotateRanges, lk)
	return &Compiled{Name: name, Mod: mod, Level: cfg.Level, Libc: lk, Result: res, PipelineDesc: desc}, nil
}

// CompileWithPasses compiles src + libc and then runs an explicit pass
// list under the given cost model (used by the Table 2 ablation).
func CompileWithPasses(name, src string, lk libc.Kind, cost passes.CostModel, seq []passes.Pass) (*Compiled, error) {
	progFile, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", name, err)
	}
	libFile, err := libc.Parse(lk)
	if err != nil {
		return nil, fmt.Errorf("parse %s: %w", lk, err)
	}
	mod, err := frontend.LowerFiles(name, libFile, progFile)
	if err != nil {
		return nil, fmt.Errorf("lower %s: %w", name, err)
	}
	res, err := pipeline.OptimizeWithPasses(mod, cost, seq)
	if err != nil {
		return nil, fmt.Errorf("optimize %s: %w", name, err)
	}
	return &Compiled{Name: name, Mod: mod, Libc: lk, Result: res}, nil
}

// CompileProgram compiles a corpus program with the level's default libc.
func CompileProgram(p coreutils.Program, level pipeline.Level) (*Compiled, error) {
	return CompileSource(p.Name, p.Src, level, DefaultLibc(level))
}

// RunResult is the outcome of one concrete execution.
type RunResult struct {
	Exit   int64
	Output []byte
	Stats  interp.Stats
}

// Run executes fn(input, len(input)) concretely on the reference
// interpreter and collects the bytes written to the libc OUT sink.
func (c *Compiled) Run(fn string, input []byte) (*RunResult, error) {
	m := interp.NewMachine(c.Mod, interp.Options{})
	buf := interp.ByteObject("input", append(append([]byte{}, input...), 0))
	ret, err := m.Call(fn,
		interp.PtrVal(buf, 0),
		interp.IntVal(ir.I32, uint64(len(input))))
	if err != nil {
		return nil, err
	}
	rr := &RunResult{Exit: ir.SignExtend(32, ret.Bits), Stats: m.Stats}
	rr.Output = readOut(m)
	return rr, nil
}

// readOut extracts the libc output sink contents from a machine.
func readOut(m *interp.Machine) []byte {
	outn, ok1 := m.GlobalData("OUTN")
	out, ok2 := m.GlobalData("OUT")
	if !ok1 || !ok2 || len(outn) == 0 {
		return nil
	}
	n := int(ir.SignExtend(32, outn[0]))
	if n < 0 {
		n = 0
	}
	if n > len(out) {
		n = len(out)
	}
	res := make([]byte, n)
	for i := 0; i < n; i++ {
		res[i] = byte(out[i])
	}
	return res
}

// VerifyOptions configure symbolic verification.
type VerifyOptions struct {
	// InputBytes is the symbolic input size (the paper uses 2–10).
	InputBytes int
	// Engine options (timeouts, limits, search strategy + seed,
	// CoverTarget, workers). Use symex.ParseSearch to map a flag
	// spelling onto Engine.Strategy.
	Engine symex.Options
	// Checks restricts verification to a subset of check kinds (the
	// zero value keeps them all). Skipped checks neither report bugs
	// nor constrain paths; native traps (division, memory) still do.
	// Copied onto Engine.Checks before running.
	Checks ir.CheckSet
	// Verdicts, when non-nil, is consulted before exploring: if the
	// store holds an outcome for this exact content key (reachable IR +
	// pipeline + verify config) the stored merged report is returned
	// without running the engine, and deterministic outcomes of cold
	// runs are persisted for next time.
	Verdicts *verdicts.Store
}

// normalized applies defaults and folds Checks into the engine options,
// so the content key and the run agree on the effective configuration.
func (opts VerifyOptions) normalized() VerifyOptions {
	if opts.InputBytes <= 0 {
		opts.InputBytes = 4
	}
	if opts.Checks != ir.AllChecks {
		opts.Engine.Checks = opts.Checks
	}
	return opts
}

// verifyDesc renders the outcome-relevant verify configuration for the
// content key. Strategy, seed and worker count are deliberately absent:
// the conformance suites pin merged reports as schedule-invariant, so
// they cannot change a stored outcome. Budgets and limits can, so they
// are in.
func verifyDesc(opts VerifyOptions) string {
	return fmt.Sprintf("entrybytes=%d|maxpaths=%d|maxinstrs=%d|maxstates=%d|cover=%d|maxnodes=%d|maxwork=%d|history=%d|verifychecks=%s",
		opts.InputBytes, opts.Engine.MaxPaths, opts.Engine.MaxInstrs, opts.Engine.MaxStates,
		opts.Engine.CoverTarget, opts.Engine.Solver.MaxNodes, opts.Engine.Solver.MaxWork,
		opts.Engine.Solver.ModelHistory, opts.Engine.Checks)
}

// VerdictKey computes the content key Verify would use for fn under
// opts, and whether verdict caching applies to this compile at all.
func (c *Compiled) VerdictKey(fn string, opts VerifyOptions) (verdicts.Key, bool) {
	opts = opts.normalized()
	if c.PipelineDesc == "" {
		return "", false
	}
	return verdicts.KeyFor(c.Mod, fn, c.PipelineDesc, verifyDesc(opts))
}

// Verify explores fn(input, n) exhaustively with an n-byte symbolic
// NUL-terminated input, the KLEE coreutils setup of §4. With a verdict
// store attached it becomes the incremental re-verify path: unchanged
// content is answered from the store (VerdictCacheHits and
// SkippedFuncVerifies count the skipped work), and fresh deterministic
// outcomes are persisted.
func (c *Compiled) Verify(fn string, opts VerifyOptions) (*symex.Report, error) {
	opts = opts.normalized()
	var key verdicts.Key
	keyed := false
	if opts.Verdicts != nil {
		key, keyed = c.VerdictKey(fn, opts)
		if keyed {
			if e, ok := opts.Verdicts.Get(key); ok {
				rep := e.Report()
				rep.Stats.VerdictCacheHits = 1
				rep.Stats.SkippedFuncVerifies = 1
				return rep, nil
			}
		}
	}
	eng := symex.NewEngine(c.Mod, opts.Engine)
	buf := eng.SymbolicBuffer("input", opts.InputBytes, true)
	length := eng.IntArg(ir.I32, uint64(opts.InputBytes))
	rep, err := eng.Run(fn, []symex.SymVal{buf, length}, nil)
	if err == nil && keyed && verdicts.Cacheable(rep) {
		// Best-effort: a failed write only loses warmth.
		_ = opts.Verdicts.Put(key, verdicts.FromReport(key, c.Name, fn, c.Level.String(), rep))
	}
	return rep, err
}
