package core_test

import (
	"fmt"
	"regexp"
	"sort"
	"strings"
	"testing"

	"overify/internal/core"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// sliceCheckSubsets are the kept-check configurations the parity sweep
// exercises: everything, and two single-property modes.
var sliceCheckSubsets = []struct {
	name   string
	checks ir.CheckSet
}{
	{"all", ir.AllChecks},
	{"div-by-zero", ir.ChecksOf(ir.CheckDivByZero)},
	{"bounds", ir.ChecksOf(ir.CheckBounds)},
}

// blockPos strips the block component of position strings ("@fn/block"
// → "@fn"): slicing changes block structure (flattened branches merge
// differently under simplifycfg), so parity is pinned at function
// granularity while instruction-level content is pinned by Kind + Msg.
var blockPos = regexp.MustCompile(`(@[A-Za-z0-9_$]+)/[^ ]+`)

func normalizePos(s string) string {
	return blockPos.ReplaceAllString(s, "$1")
}

// bugSet renders a report's merged bugs as a sorted, position-normalized
// SET for byte-wise comparison. The engine already collapses to one
// report per exact defect message; normalizing away block names can
// merge two sites the baseline kept apart (slicing's simplifycfg moves
// both into one block), so the comparison must dedupe too.
func bugSet(rep *symex.Report) []string {
	uniq := map[string]bool{}
	for _, b := range rep.Bugs {
		uniq[fmt.Sprintf("[%s] %s", b.Kind, normalizePos(b.Msg))] = true
	}
	out := make([]string, 0, len(uniq))
	for k := range uniq {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// verifyAt compiles name/src at level (optionally sliced) and verifies
// it on n symbolic bytes with the given kept-check subset.
func verifyAt(t *testing.T, name, src string, level pipeline.Level, slice bool, checks ir.CheckSet, n int) *symex.Report {
	t.Helper()
	cfg := pipeline.LevelConfig(level)
	cfg.Slice = slice
	cfg.SliceChecks = checks
	c, err := core.CompileWithConfig(name, src, cfg, core.DefaultLibc(level))
	if err != nil {
		t.Fatalf("%s at %s (slice=%v): compile: %v", name, level, slice, err)
	}
	opts := core.VerifyOptions{InputBytes: n, Checks: checks}
	// Budget each exploration so the sweep stays minutes, not hours: a
	// truncated run opts out of the parity comparison (the caller
	// checks), it never fails it.
	opts.Engine.MaxInstrs = 150_000
	rep, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatalf("%s at %s (slice=%v): verify: %v", name, level, slice, err)
	}
	return rep
}

// truncated reports whether rep's exploration hit a budget; parity
// claims only hold between two complete explorations.
func truncated(rep *symex.Report) bool {
	return rep.Stats.TruncatedPaths > 0 || rep.Stats.TimedOut
}

// TestSliceBugParityCorpus is the conformance suite for the slicer: on
// every corpus program, at every level, for every kept-check subset,
// the sliced program must report exactly the bugs the baseline reports
// (none — the corpus is believed correct) while exploring no more
// paths or instructions, and strictly fewer somewhere across the sweep.
func TestSliceBugParityCorpus(t *testing.T) {
	levels := allLevels
	subsets := sliceCheckSubsets
	if testing.Short() {
		levels = []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.OVerify}
		subsets = subsets[:2]
	}
	strictlyFewerPaths := 0
	strictlyFewerInstrs := 0
	for _, p := range corpus(t) {
		for _, level := range levels {
			for _, sub := range subsets {
				base := verifyAt(t, p.Name, p.Src, level, false, sub.checks, 2)
				sliced := verifyAt(t, p.Name, p.Src, level, true, sub.checks, 2)
				tag := fmt.Sprintf("%s at %s checks=%s", p.Name, level, sub.name)
				if truncated(base) || truncated(sliced) {
					continue
				}
				bb, sb := bugSet(base), bugSet(sliced)
				if strings.Join(bb, "\n") != strings.Join(sb, "\n") {
					t.Errorf("%s: bug sets differ\nbaseline: %v\nsliced:   %v", tag, bb, sb)
				}
				if sliced.Stats.Paths > base.Stats.Paths {
					t.Errorf("%s: sliced explored more paths (%d > %d)", tag, sliced.Stats.Paths, base.Stats.Paths)
				}
				if sliced.Stats.Paths < base.Stats.Paths {
					strictlyFewerPaths++
				}
				if sliced.Stats.Instrs < base.Stats.Instrs {
					strictlyFewerInstrs++
				}
			}
		}
	}
	if strictlyFewerPaths == 0 {
		t.Error("slicing never reduced the path count anywhere in the sweep")
	}
	if strictlyFewerInstrs == 0 {
		t.Error("slicing never reduced the instruction count anywhere in the sweep")
	}
}

// buggyPrograms are hand-written programs whose baselines report bugs;
// parity on these pins that slicing never loses (or invents) a bug,
// including when the trap sits behind irrelevant-looking data flow.
var buggyPrograms = []struct{ name, src string }{
	{"div-feeding-sliced-sink", `
int umain(unsigned char *input, int len) {
	unsigned int crc = 0;
	int i = 0;
	int q = 0;
	while (input[i] != 0) {
		crc = crc ^ ((unsigned int)(int)input[i] << 8);
		q = 100 / ((int)input[i] - 65);
		i = i + 1;
	}
	return (int)crc + q;
}
`},
	{"bounds-by-input", `
int umain(unsigned char *input, int len) {
	int tab[4];
	tab[0] = 1; tab[1] = 2; tab[2] = 3; tab[3] = 4;
	return tab[(int)input[0] & 7];
}
`},
	{"trap-inside-loop", `
int umain(unsigned char *input, int len) {
	int acc = 0;
	int i = 0;
	while (i < 2) {
		acc = acc + 10 / ((int)input[i] - 65);
		i = i + 1;
	}
	return 0;
}
`},
	{"cross-function-global-div", `
int g;
void setup(unsigned char *input) { g = (int)input[0] - 65; }
int umain(unsigned char *input, int len) {
	setup(input);
	return 7 / g;
}
`},
	{"escaping-pointer-div", `
void put(int *p, int v) { *p = v; }
int umain(unsigned char *input, int len) {
	int cell = 0;
	put(&cell, (int)input[0] - 65);
	return 100 / cell;
}
`},
}

// TestSliceBugParityBuggy: same sweep over programs that do fail; the
// baseline must find at least one bug and the slice exactly the same
// set on the kept checks.
func TestSliceBugParityBuggy(t *testing.T) {
	for _, p := range buggyPrograms {
		for _, level := range allLevels {
			for _, sub := range sliceCheckSubsets {
				base := verifyAt(t, p.name, p.src, level, false, sub.checks, 2)
				sliced := verifyAt(t, p.name, p.src, level, true, sub.checks, 2)
				tag := fmt.Sprintf("%s at %s checks=%s", p.name, level, sub.name)
				// The bug must be visible in the unoptimized baseline;
				// higher levels may legally lose a trap whose result is
				// dead (dce deletes it) — parity is still required there.
				if sub.checks == ir.AllChecks && level == pipeline.O0 && len(base.Bugs) == 0 {
					t.Errorf("%s: baseline found no bugs — the program is supposed to fail", tag)
				}
				bb, sb := bugSet(base), bugSet(sliced)
				if strings.Join(bb, "\n") != strings.Join(sb, "\n") {
					t.Errorf("%s: bug sets differ\nbaseline: %v\nsliced:   %v", tag, bb, sb)
				}
			}
		}
	}
}

// genProgram derives a small MiniC program from fuzz bytes: a fixed
// frame around a data-chosen mix of irrelevant accumulation, input
// branching, fixed-bound loops, and genuinely trapping arithmetic and
// indexing. The generator only produces well-formed programs, so every
// fuzz input exercises the parity property rather than the parser.
func genProgram(data []byte) string {
	var sb strings.Builder
	sb.WriteString("int umain(unsigned char *input, int len) {\n")
	sb.WriteString("\tint a = (int)input[0];\n\tint b = (int)input[1];\n")
	sb.WriteString("\tunsigned int acc = 0;\n")
	sb.WriteString("\tint arr[4];\n\tarr[0] = 1; arr[1] = 2; arr[2] = 3; arr[3] = 4;\n")
	nstmt := 0
	for i := 1; i < len(data) && nstmt < 6; i += 2 {
		k := int(data[i-1])
		arg := int(data[i])
		switch k % 6 {
		case 0:
			fmt.Fprintf(&sb, "\tacc = acc ^ ((unsigned int)a << %d);\n", arg%8)
		case 1:
			fmt.Fprintf(&sb, "\tif (a > %d) { a = a - 1; } else { b = b + 1; }\n", arg%128)
		case 2:
			fmt.Fprintf(&sb, "\tacc = acc + (unsigned int)(100 / (a - %d));\n", arg%128)
		case 3:
			fmt.Fprintf(&sb, "\tb = b + arr[a & %d];\n", []int{3, 7}[arg%2])
		case 4:
			fmt.Fprintf(&sb, "\t{ int k%d = 0; while (k%d < %d) { acc = acc * 3 + (unsigned int)b; k%d = k%d + 1; } }\n",
				nstmt, nstmt, 2+arg%4, nstmt, nstmt)
		case 5:
			fmt.Fprintf(&sb, "\tb = b / ((a & %d) + %d);\n", 3+4*(arg%2), arg%2)
		}
		nstmt++
	}
	sb.WriteString("\treturn (int)acc + b;\n}\n")
	return sb.String()
}

// FuzzSliceEquivalence is the differential fuzzer: any generated
// program must report the same normalized bug set sliced and unsliced,
// at whatever level the input selects.
func FuzzSliceEquivalence(f *testing.F) {
	f.Add([]byte{0, 0})
	f.Add([]byte{1, 2, 0, 66, 4, 1})
	f.Add([]byte{3, 1, 2, 65, 5, 1})
	f.Add([]byte{4, 3, 3, 0, 2, 66, 0, 7})
	f.Add([]byte{5, 0, 5, 1, 1, 10, 4, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		level := allLevels[int(data[0])%len(allLevels)]
		src := genProgram(data[1:])
		cmp := func(slice bool) *symex.Report {
			cfg := pipeline.LevelConfig(level)
			cfg.Slice = slice
			cfg.SliceChecks = ir.AllChecks
			c, err := core.CompileWithConfig("fuzz", src, cfg, core.DefaultLibc(level))
			if err != nil {
				t.Fatalf("compile (slice=%v) of\n%s: %v", slice, src, err)
			}
			opts := core.VerifyOptions{InputBytes: 2}
			opts.Engine.MaxInstrs = 400_000
			rep, err := c.Verify("umain", opts)
			if err != nil {
				t.Fatalf("verify (slice=%v) of\n%s: %v", slice, src, err)
			}
			return rep
		}
		base := cmp(false)
		sliced := cmp(true)
		if base.Stats.TruncatedPaths > 0 || sliced.Stats.TruncatedPaths > 0 ||
			base.Stats.TimedOut || sliced.Stats.TimedOut {
			return // a truncated exploration has no parity claim
		}
		bb, sb := bugSet(base), bugSet(sliced)
		if strings.Join(bb, "\n") != strings.Join(sb, "\n") {
			t.Errorf("bug sets differ at %s for\n%s\nbaseline: %v\nsliced:   %v", level, src, bb, sb)
		}
	})
}
