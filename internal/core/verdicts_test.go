package core_test

import (
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/verdicts"
)

func coreutilsGet(t *testing.T, name string) (coreutils.Program, bool) {
	t.Helper()
	p, ok := coreutils.Get(name)
	if !ok {
		t.Fatalf("corpus program %q missing", name)
	}
	return p, ok
}

// TestColdWarmEquivalence is the verdict store's correctness gate: the
// whole corpus at every level, verified cold into one shared store and
// then warm out of it. Every warm report must render byte-identically
// to its cold run, and the warm sweep must skip the overwhelming
// majority of per-function verifies (≥90% — cells that truncate at the
// instruction cap are not cacheable and count against the rate).
func TestColdWarmEquivalence(t *testing.T) {
	store, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	verify := func(p string, level pipeline.Level) (string, int64) {
		prog, _ := coreutilsGet(t, p)
		c, err := core.CompileProgram(prog, level)
		if err != nil {
			t.Fatalf("%s at %s: %v", p, level, err)
		}
		vo := core.VerifyOptions{InputBytes: 2, Verdicts: store}
		vo.Engine.MaxInstrs = 2_000_000
		rep, err := c.Verify("umain", vo)
		if err != nil {
			t.Fatalf("%s at %s: verify: %v", p, level, err)
		}
		return verdicts.Render(rep), rep.Stats.SkippedFuncVerifies
	}

	var total, skipped int64
	for _, p := range corpus(t) {
		if p.Name == "cksum" {
			// cksum's CRC loop blows the instruction cap below -O3, so
			// it is uncacheable there and pays its ~30s exploration
			// twice per level; the overify-bench -verdicts sweep covers
			// it (and its honest hit to the skip rate) instead.
			continue
		}
		for _, level := range allLevels {
			cold, coldSkip := verify(p.Name, level)
			if coldSkip != 0 {
				t.Errorf("%s at %s: cold run hit the cache", p.Name, level)
			}
			warm, warmSkip := verify(p.Name, level)
			if warm != cold {
				t.Errorf("%s at %s: warm render differs\ncold: %swarm: %s", p.Name, level, cold, warm)
			}
			total++
			skipped += warmSkip
		}
	}
	if rate := float64(skipped) / float64(total); rate < 0.9 {
		t.Errorf("warm sweep skipped only %d of %d verifies (%.0f%%), want >= 90%%", skipped, total, 100*rate)
	}
}

// TestVerifyCacheCounters pins the hit-path bookkeeping: a warm Verify
// reports VerdictCacheHits and SkippedFuncVerifies so callers can tell
// a served verdict from a re-exploration.
func TestVerifyCacheCounters(t *testing.T) {
	store, err := verdicts.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	prog, _ := coreutilsGet(t, "basename")
	c, err := core.CompileProgram(prog, pipeline.OVerify)
	if err != nil {
		t.Fatal(err)
	}
	opts := core.VerifyOptions{InputBytes: 2, Verdicts: store}
	cold, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Stats.VerdictCacheHits != 0 || store.Stores() != 1 {
		t.Fatalf("cold run: hits=%d stores=%d", cold.Stats.VerdictCacheHits, store.Stores())
	}
	warm, err := c.Verify("umain", opts)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.VerdictCacheHits != 1 || warm.Stats.SkippedFuncVerifies != 1 {
		t.Errorf("warm run: hits=%d skipped=%d, want 1/1", warm.Stats.VerdictCacheHits, warm.Stats.SkippedFuncVerifies)
	}
	// A different verify configuration is a different content key.
	other := opts
	other.InputBytes = 3
	rep, err := c.Verify("umain", other)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Stats.VerdictCacheHits != 0 {
		t.Error("changed InputBytes still hit the cache")
	}
}

// TestVerdictKeyPipelineStability is the fingerprint-stability claim:
// re-rendering the pipeline spec through ParsePipeline and recompiling
// must reproduce the exact content key (specs round-trip, and identical
// content hashes identically), while different levels never collide
// (the level is part of the pipeline description).
func TestVerdictKeyPipelineStability(t *testing.T) {
	prog, _ := coreutilsGet(t, "basename")
	opts := core.VerifyOptions{InputBytes: 2}
	seen := map[verdicts.Key]pipeline.Level{}
	for _, level := range allLevels {
		c, err := core.CompileProgram(prog, level)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		key, ok := c.VerdictKey("umain", opts)
		if !ok {
			t.Fatalf("%s: no verdict key for a canonical compile", level)
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("%s and %s share a content key", prev, level)
		}
		seen[key] = level

		cfg := pipeline.LevelConfig(level)
		if c.Result.Spec != "" { // -O0's canonical pipeline is empty
			spec, err := pipeline.ParsePipeline(c.Result.Spec)
			if err != nil {
				t.Fatalf("%s: rendered spec does not parse: %v", level, err)
			}
			cfg.Pipeline = &spec
		}
		rt, err := core.CompileWithConfig(prog.Name, prog.Src, cfg, core.DefaultLibc(level))
		if err != nil {
			t.Fatalf("%s: round-trip compile: %v", level, err)
		}
		rtKey, ok := rt.VerdictKey("umain", opts)
		if !ok {
			t.Fatalf("%s: no verdict key for round-trip compile", level)
		}
		if rtKey != key {
			t.Errorf("%s: pipeline round-trip moved the key: %s -> %s", level, key, rtKey)
		}
	}
}

// TestExplicitPassListDisablesCaching pins the ablation escape hatch:
// CompileWithPasses has no pipeline description, so verdict caching is
// off rather than keyed ambiguously.
func TestExplicitPassListDisablesCaching(t *testing.T) {
	prog, _ := coreutilsGet(t, "basename")
	c, err := core.CompileProgram(prog, pipeline.O0)
	if err != nil {
		t.Fatal(err)
	}
	c.PipelineDesc = ""
	if _, ok := c.VerdictKey("umain", core.VerifyOptions{InputBytes: 2}); ok {
		t.Error("VerdictKey succeeded without a pipeline description")
	}
}
