package core_test

import (
	"bytes"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/libc"
	"overify/internal/pipeline"
)

var allLevels = []pipeline.Level{
	pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify,
}

// corpus returns the programs under test: the full suite normally, a
// representative slice in -short mode (these sweeps cost a few seconds
// each at full size).
func corpus(t *testing.T) []coreutils.Program {
	all := coreutils.All()
	if testing.Short() && len(all) > 8 {
		return all[:8]
	}
	return all
}

// TestCorpusCompilesEverywhere compiles every corpus program at every
// level with both libc variants; any pass bug that breaks the IR
// verifier fails here.
func TestCorpusCompilesEverywhere(t *testing.T) {
	for _, p := range corpus(t) {
		for _, level := range allLevels {
			for _, lk := range []libc.Kind{libc.Uclibc, libc.Verified} {
				if _, err := core.CompileSource(p.Name, p.Src, level, lk); err != nil {
					t.Errorf("%s at %s with %s: %v", p.Name, level, lk, err)
				}
			}
		}
	}
}

// TestCorpusDifferential is the §2.3 equivalence argument as a test:
// every program, on its sample input, must produce the same exit code
// and output at every optimization level and with both libc variants.
func TestCorpusDifferential(t *testing.T) {
	for _, p := range corpus(t) {
		var wantExit int64
		var wantOut []byte
		first := true
		for _, level := range allLevels {
			for _, lk := range []libc.Kind{libc.Uclibc, libc.Verified} {
				c, err := core.CompileSource(p.Name, p.Src, level, lk)
				if err != nil {
					t.Fatalf("%s at %s/%s: compile: %v", p.Name, level, lk, err)
				}
				rr, err := c.Run("umain", []byte(p.Sample))
				if err != nil {
					t.Errorf("%s at %s/%s: run: %v", p.Name, level, lk, err)
					continue
				}
				if first {
					wantExit, wantOut, first = rr.Exit, rr.Output, false
					continue
				}
				if rr.Exit != wantExit {
					t.Errorf("%s at %s/%s: exit = %d, want %d", p.Name, level, lk, rr.Exit, wantExit)
				}
				if !bytes.Equal(rr.Output, wantOut) {
					t.Errorf("%s at %s/%s: output = %q, want %q", p.Name, level, lk, rr.Output, wantOut)
				}
			}
		}
	}
}

// TestCorpusVerifySmall runs exhaustive symbolic execution with 2 input
// bytes on every program at -OVERIFY; nothing should report bugs (the
// corpus is believed correct) and nothing should time out.
func TestCorpusVerifySmall(t *testing.T) {
	for _, p := range corpus(t) {
		c, err := core.CompileProgram(p, pipeline.OVerify)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		rep, err := c.Verify("umain", core.VerifyOptions{InputBytes: 2})
		if err != nil {
			t.Errorf("%s: verify: %v", p.Name, err)
			continue
		}
		if rep.Stats.TimedOut {
			t.Errorf("%s: timed out", p.Name)
		}
		if len(rep.Bugs) != 0 {
			t.Errorf("%s: unexpected bugs: %v", p.Name, rep.Bugs)
		}
		if rep.Stats.Paths == 0 {
			t.Errorf("%s: no paths completed", p.Name)
		}
	}
}

// TestBudgetAccountingRegression pins the bug that motivated making the
// solver budget evaluator-independent: basename at -O3/-OVERIFY with a
// 3-byte input has three "last slash index" groups whose unsat proofs
// blew the compiled tape's slot-tick budget (trading 3 unsat verdicts
// for ErrBudget failures), even though the same groups were decided
// under the legacy evaluator's accounting. With budget counted in
// assignments tried and value-set propagation closing the pathological
// groups, every query must now be decided: zero budget failures, and
// the unsat verdicts are back.
func TestBudgetAccountingRegression(t *testing.T) {
	p, ok := coreutils.Get("basename")
	if !ok {
		t.Fatal("basename not in corpus")
	}
	for _, level := range []pipeline.Level{pipeline.O3, pipeline.OVerify} {
		c, err := core.CompileProgram(p, level)
		if err != nil {
			t.Fatalf("%s: %v", level, err)
		}
		rep, err := c.Verify("umain", core.VerifyOptions{InputBytes: 3})
		if err != nil {
			t.Fatalf("%s: verify: %v", level, err)
		}
		ss := rep.Stats.SolverStats
		if ss.Failures != 0 {
			t.Errorf("%s: %d budget failures, want 0 (queries=%d unsat=%d)",
				level, ss.Failures, ss.Queries, ss.Unsat)
		}
		if ss.Unsat < 3 {
			t.Errorf("%s: %d unsat verdicts, want >= 3", level, ss.Unsat)
		}
		if len(rep.Bugs) != 0 {
			t.Errorf("%s: unexpected bugs: %v", level, rep.Bugs)
		}
	}
}
