package watch

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// TestSameMtimeRewriteDetected is the regression pin for the watch-mode
// bug: an edit landing within the same mtime granularity as the
// previous read must still be detected. mtime-only comparison missed
// it; the (mtime, size) signature catches the size change.
func TestSameMtimeRewriteDetected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.c")
	if err := os.WriteFile(path, []byte("int f() { return 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	sig0, err := StatSig(path)
	if err != nil {
		t.Fatal(err)
	}
	// Rewrite with different content (different length), then force the
	// mtime back to exactly the previous value — the same-granularity
	// save an mtime-only comparison silently ignores.
	if err := os.WriteFile(path, []byte("int f() { return 1 + 1; }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, sig0.ModTime, sig0.ModTime); err != nil {
		t.Fatal(err)
	}
	sig1, err := StatSig(path)
	if err != nil {
		t.Fatal(err)
	}
	if !sig1.ModTime.Equal(sig0.ModTime) {
		t.Skip("filesystem did not honor Chtimes; cannot reproduce same-mtime rewrite")
	}
	if !sig1.Changed(sig0) {
		t.Error("same-mtime rewrite with a different size went undetected")
	}
}

func TestUnchangedFileNotFlagged(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.c")
	if err := os.WriteFile(path, []byte("abc"), 0o644); err != nil {
		t.Fatal(err)
	}
	a, err := StatSig(path)
	if err != nil {
		t.Fatal(err)
	}
	b, err := StatSig(path)
	if err != nil {
		t.Fatal(err)
	}
	if b.Changed(a) {
		t.Error("two stats of an untouched file disagree")
	}
}

// TestReadStableConsistent: the returned bytes always match the
// returned signature's size, even with a writer racing the reads.
func TestReadStableConsistent(t *testing.T) {
	path := filepath.Join(t.TempDir(), "f.c")
	if err := os.WriteFile(path, []byte("seed"), 0o644); err != nil {
		t.Fatal(err)
	}
	var stop atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; !stop.Load(); i++ {
			// Alternate between two contents of different sizes.
			content := []byte("short")
			if i%2 == 1 {
				content = []byte("a considerably longer body of text")
			}
			os.WriteFile(path, content, 0o644)
			time.Sleep(time.Millisecond)
		}
	}()
	for i := 0; i < 50; i++ {
		data, sig, err := ReadStable(path)
		if err != nil {
			t.Fatalf("ReadStable: %v", err)
		}
		if int64(len(data)) != sig.Size {
			t.Fatalf("returned %d bytes with signature size %d (torn read)", len(data), sig.Size)
		}
	}
	stop.Store(true)
	<-done
}

func TestReadStableMissingFile(t *testing.T) {
	if _, _, err := ReadStable(filepath.Join(t.TempDir(), "nope.c")); err == nil {
		t.Error("ReadStable succeeded on a missing file")
	}
}
