// Package watch provides the change detection behind `symbex -watch`:
// polling a source file for edits without missing fast saves or reading
// torn content.
//
// Two failure modes of naive mtime polling are addressed here. First,
// comparing mtime alone misses an edit that lands within the same
// mtime granularity as the previous read (coarse filesystem timestamps
// make this routine with editor save-then-save sequences); a Sig
// therefore pairs mtime with size, catching any same-instant rewrite
// that changes length. A same-mtime same-size rewrite remains
// invisible to any stat-based poller — the next poll's mtime tick
// catches it. Second, a read racing an editor's non-atomic write can
// observe half-written content; ReadStable re-stats after reading and
// retries until the signature is unchanged across the read, so the
// returned bytes correspond to a file that was stable for the whole
// read.
package watch

import (
	"fmt"
	"os"
	"time"
)

// Sig is a file's change signature: modification time plus size.
// Two files states with equal Sigs are treated as the same content.
type Sig struct {
	ModTime time.Time
	Size    int64
}

// StatSig stats path and returns its signature.
func StatSig(path string) (Sig, error) {
	st, err := os.Stat(path)
	if err != nil {
		return Sig{}, err
	}
	return Sig{ModTime: st.ModTime(), Size: st.Size()}, nil
}

// Changed reports whether s differs from prev in either dimension.
func (s Sig) Changed(prev Sig) bool {
	return !s.ModTime.Equal(prev.ModTime) || s.Size != prev.Size
}

// readRetries bounds ReadStable's verify-after-read loop; a file
// rewritten continuously for this many attempts is reported as an
// error rather than spinning.
const readRetries = 10

// readSettle is how long ReadStable waits between retries, giving an
// in-progress editor write time to finish.
const readSettle = 10 * time.Millisecond

// ReadStable reads path and returns its contents together with the
// signature they correspond to. The file is stat'ed before and after
// the read; a signature mismatch means the read raced a writer, so the
// content may be torn — it is discarded and the read retried after a
// short settle.
func ReadStable(path string) ([]byte, Sig, error) {
	for try := 0; try < readRetries; try++ {
		before, err := StatSig(path)
		if err != nil {
			return nil, Sig{}, err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, Sig{}, err
		}
		after, err := StatSig(path)
		if err != nil {
			return nil, Sig{}, err
		}
		if !after.Changed(before) && int64(len(data)) == after.Size {
			return data, after, nil
		}
		time.Sleep(readSettle)
	}
	return nil, Sig{}, fmt.Errorf("watch: %s kept changing across %d read attempts", path, readRetries)
}
