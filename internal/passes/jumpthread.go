package passes

import "overify/internal/ir"

// JumpThread redirects edges whose branch outcome is already decided on
// that edge — the paper's first "Simplifying control flow" example: "a
// conditional branch jumps to a location where another condition is
// subsumed by the first one". Two cases are handled:
//
//  1. A block consisting only of phis and a condbr on one of those phis:
//     predecessors contributing a constant jump straight to the decided
//     successor. Short-circuit (&&, ||) lowering produces exactly this
//     shape after mem2reg.
//
//  2. A condbr on a condition v in a block dominated by an edge that
//     already decided v (the predecessor branched on v too): the
//     predecessor's edge is redirected past the re-test.
//
// Threading redirects edges: preserves nothing. Each successful
// thread invalidates before returning so the next round's dominance
// query (through the Context cache) is fresh.
func JumpThread() Pass {
	return funcPass{name: "jumpthread", preserves: NoAnalyses, run: jumpThreadFunc}
}

func jumpThreadFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("jumpthread", f)
	changed := false
	for rounds := 0; rounds < 20; rounds++ {
		n := threadPhiConstants(f, cx)
		n += threadSameCondition(f, cx)
		if n == 0 {
			break
		}
		changed = true
	}
	if changed {
		if r := ir.RemoveUnreachable(f); r > 0 {
			cx.Stats.DeadBlocks += r
			cx.Invalidate(f, NoAnalyses)
		}
	}
	return changed
}

// blockIsPhisAndBranch reports whether b contains only phi nodes followed
// by its terminator.
func blockIsPhisAndBranch(b *ir.Block) bool {
	return b.FirstNonPhi() == len(b.Instrs)-1
}

// branchDecider recognizes branch conditions that a constant phi input
// decides: either the condition is the phi itself, or it is a
// comparison of the phi against a constant that lives in the same block
// and is used only by the branch. Returns the phi, the cmp instruction
// (nil when the condition is the phi itself), and a function mapping a
// constant incoming value to the branch direction.
func branchDecider(f *ir.Function, b *ir.Block, t *ir.Instr) (*ir.Instr, *ir.Instr, func(*ir.Const) bool) {
	if phi, ok := t.Args[0].(*ir.Instr); ok && phi.Op == ir.OpPhi && phi.Blk == b {
		if b.FirstNonPhi() == len(b.Instrs)-1 {
			return phi, nil, func(c *ir.Const) bool { return !c.IsZero() }
		}
		return nil, nil, nil
	}
	cmp, ok := t.Args[0].(*ir.Instr)
	if !ok || !cmp.Op.IsCmp() || cmp.Blk != b {
		return nil, nil, nil
	}
	// Block must be: phis..., cmp, condbr.
	if b.FirstNonPhi() != len(b.Instrs)-2 || b.Instrs[len(b.Instrs)-2] != cmp {
		return nil, nil, nil
	}
	phi, ok := cmp.Args[0].(*ir.Instr)
	rhs, okC := cmp.Args[1].(*ir.Const)
	if !ok || !okC || phi.Op != ir.OpPhi || phi.Blk != b {
		return nil, nil, nil
	}
	if ir.CountUses(f, cmp) != 1 {
		return nil, nil, nil
	}
	bits := rhs.Typ.Bits
	op := cmp.Op
	return phi, cmp, func(c *ir.Const) bool { return ir.EvalCmp(op, bits, c.Val, rhs.Val) }
}

func threadPhiConstants(f *ir.Function, cx *Context) int {
	n := 0
	dt := cx.Dom(f)
	// domOK reports whether value v is available at the end of block p.
	domOK := func(v ir.Value, p *ir.Block) bool {
		in, ok := v.(*ir.Instr)
		if !ok {
			return true
		}
		return in.Blk != nil && dt.Dominates(in.Blk, p)
	}
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr || b == f.Entry() {
			continue
		}
		phi, cmp, decide := branchDecider(f, b, t)
		if phi == nil {
			continue
		}
		// Find a predecessor whose incoming value decides the branch.
		for i, pred := range phi.Incoming {
			c, isConst := phi.Args[i].(*ir.Const)
			if !isConst {
				continue
			}
			dest := t.Succs[0]
			if !decide(c) {
				dest = t.Succs[1]
			}
			if dest == b {
				continue // self-loop; leave to loop passes
			}
			// Redirecting pred past b means b no longer dominates dest.
			// Every value defined in b must therefore have no uses
			// outside b other than dest's phi entries for the b edge
			// (which we translate below). A use anywhere else (e.g. a
			// loop body reading the header's phis) forbids threading.
			if bDefsEscape(f, b, dest) {
				continue
			}
			// Values defined in b must be translated to their value on
			// the pred edge: b's phis take their incoming value, the
			// decider cmp is a known constant, anything else aborts.
			translate := func(vb ir.Value) (ir.Value, bool) {
				inner, ok := vb.(*ir.Instr)
				if !ok || inner.Blk != b {
					return vb, true
				}
				if inner.Op == ir.OpPhi {
					return inner.PhiIncoming(pred), true
				}
				if inner == cmp {
					return ir.Bool(decide(c)), true
				}
				return nil, false
			}
			conflict := false
			for _, dphi := range dest.Phis() {
				vb, ok := translate(dphi.PhiIncoming(b))
				if !ok || !domOK(vb, pred) {
					conflict = true
					break
				}
				if existing := dphi.PhiIncoming(pred); existing != nil && !sameValue(existing, vb) {
					conflict = true
					break
				}
			}
			if conflict {
				continue
			}
			for _, dphi := range dest.Phis() {
				vb, _ := translate(dphi.PhiIncoming(b))
				if dphi.PhiIncoming(pred) == nil {
					dphi.SetPhiIncoming(pred, vb)
				}
			}
			// Redirect pred's edge(s) to b over to dest.
			pt := pred.Term()
			for j, s := range pt.Succs {
				if s == b {
					pt.Succs[j] = dest
				}
			}
			// b loses the pred edge.
			for _, bphi := range b.Phis() {
				bphi.RemovePhiIncoming(pred)
			}
			cx.Stats.JumpsThreaded++
			// The CFG changed: invalidate and return so the caller's next
			// dominance query recomputes before the next transformation.
			cx.Invalidate(f, NoAnalyses)
			return n + 1
		}
	}
	return n
}

// bDefsEscape reports whether any instruction defined in b is used
// outside b, except as a phi input of dest flowing along the b edge.
func bDefsEscape(f *ir.Function, b, dest *ir.Block) bool {
	defs := make(map[ir.Value]bool, len(b.Instrs))
	for _, in := range b.Instrs {
		if !ir.SameType(in.Typ, ir.Void) {
			defs[in] = true
		}
	}
	if len(defs) == 0 {
		return false
	}
	for _, ub := range f.Blocks {
		for _, u := range ub.Instrs {
			if u.Blk == b {
				continue // uses inside b are fine
			}
			for i, a := range u.Args {
				if !defs[a] {
					continue
				}
				// Allowed: dest phi entry for the edge from b.
				if u.Op == ir.OpPhi && u.Blk == dest && u.Incoming[i] == b {
					continue
				}
				return true
			}
		}
	}
	return false
}

func threadSameCondition(f *ir.Function, cx *Context) int {
	preds := f.Preds()
	dt := cx.Dom(f)
	domOK := func(v ir.Value, p *ir.Block) bool {
		in, ok := v.(*ir.Instr)
		if !ok {
			return true
		}
		return in.Blk != nil && dt.Dominates(in.Blk, p)
	}
	n := 0
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr || b == f.Entry() {
			continue
		}
		if !blockIsPhisAndBranch(b) || len(b.Phis()) > 0 {
			continue
		}
		cond := t.Args[0]
		for _, pred := range preds[b] {
			pt := pred.Term()
			if pt.Op != ir.OpCondBr || pt.Args[0] != cond || pred == b {
				continue
			}
			// The pred's true-edge to b implies cond; false-edge implies
			// !cond.
			for j, s := range pt.Succs {
				if s != b {
					continue
				}
				dest := t.Succs[j] // j==0: cond true; j==1: cond false
				if dest == b {
					continue
				}
				conflict := false
				for _, dphi := range dest.Phis() {
					vb := dphi.PhiIncoming(b)
					if !domOK(vb, pred) {
						conflict = true
						break
					}
					if existing := dphi.PhiIncoming(pred); existing != nil && !sameValue(existing, vb) {
						conflict = true
						break
					}
				}
				if conflict {
					continue
				}
				for _, dphi := range dest.Phis() {
					vb := dphi.PhiIncoming(b)
					if dphi.PhiIncoming(pred) == nil {
						dphi.SetPhiIncoming(pred, vb)
					}
				}
				pt.Succs[j] = dest
				stillPred := false
				for _, s2 := range pt.Succs {
					if s2 == b {
						stillPred = true
					}
				}
				if !stillPred {
					for _, bphi := range b.Phis() {
						bphi.RemovePhiIncoming(pred)
					}
				}
				cx.Stats.JumpsThreaded++
				cx.Invalidate(f, NoAnalyses)
				return n + 1
			}
		}
	}
	return n
}
