package passes

import "overify/internal/ir"

// Unroll fully unrolls loops whose trip count is a compile-time constant,
// by repeatedly peeling the first iteration and letting constant folding
// collapse the peeled copy. Unrolling removes the loop's back edge — for
// a symbolic executor that converts "fork at the header every iteration"
// into straight-line code (paper §4: -OSYMBEX "removes loops from the
// program whenever possible, even if this increases the program size").
// Peeling clones blocks and rewires edges: preserves nothing. Each
// peel round invalidates so the next round's discovery is fresh.
func Unroll() Pass {
	return funcPass{name: "unroll", preserves: NoAnalyses, run: unrollFunc}
}

func unrollFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("unroll", f)
	changed := false
	budget := cx.Cost.UnrollGrowthCap
	for rounds := 0; rounds < 4*cx.Cost.UnrollMaxTrip+16; rounds++ {
		dt := cx.Dom(f)
		loops := cx.Loops(f)
		peeled := false
		// Innermost first.
		for i := len(loops) - 1; i >= 0; i-- {
			l := loops[i]
			if l.Header == f.Entry() {
				continue
			}
			trip, ok := constTripCount(f, l)
			if !ok || trip > int64(cx.Cost.UnrollMaxTrip) {
				continue
			}
			growth := int(trip) * l.NumInstrs()
			if growth > budget {
				continue
			}
			if !peelOnce(cx, f, l, dt) {
				continue
			}
			budget -= l.NumInstrs()
			cx.Stats.LoopsPeeled++
			if trip == 0 {
				// The peeled copy's header test fails immediately; the
				// loop is gone after cleanup.
				cx.Stats.LoopsUnrolled++
			}
			peeled = true
			changed = true
			break
		}
		if !peeled {
			break
		}
		// The peel cloned blocks and the cleanup below rewrites the CFG:
		// the next round must rediscover dominance and loops.
		cx.Invalidate(f, NoAnalyses)
		// Fold the peeled iteration so the next trip count is visible.
		cxLocal := &Context{Cost: cx.Cost}
		simplifyFunc(f, cxLocal)
		simplifyCFGFunc(f, cxLocal)
		dceFunc(f, cxLocal)
		cx.Stats.InstrsFolded += cxLocal.Stats.InstrsFolded
		cx.Stats.DeadInstrs += cxLocal.Stats.DeadInstrs
		cx.Stats.DeadBlocks += cxLocal.Stats.DeadBlocks
		cx.Stats.BlocksMerged += cxLocal.Stats.BlocksMerged
	}
	return changed
}

// constTripCount recognizes the canonical counted loop:
//
//	header: iv = phi [init(const) from preheader, next from latch]
//	        cond = icmp iv, limit(const) ; condbr cond, inside, outside
//	latch:  next = iv +/- step(const)
//
// and returns how many times the body executes.
func constTripCount(f *ir.Function, l *ir.Loop) (int64, bool) {
	preds := f.Preds()
	ph := l.Preheader(preds)
	if ph == nil {
		// A preheader is created during peeling; for counting purposes,
		// find the unique outside predecessor if there is one.
		var outside []*ir.Block
		for _, p := range preds[l.Header] {
			if !l.Blocks[p] {
				outside = append(outside, p)
			}
		}
		if len(outside) != 1 {
			return 0, false
		}
		ph = outside[0]
	}
	t := l.Header.Term()
	if t == nil || t.Op != ir.OpCondBr {
		return 0, false
	}
	cmp, ok := t.Args[0].(*ir.Instr)
	if !ok || !cmp.Op.IsCmp() || cmp.Blk != l.Header {
		return 0, false
	}
	stayOnTrue := l.Blocks[t.Succs[0]]
	if stayOnTrue == l.Blocks[t.Succs[1]] {
		return 0, false // both in or both out
	}

	// Identify iv and limit.
	iv, okIv := cmp.Args[0].(*ir.Instr)
	limit, okLim := cmp.Args[1].(*ir.Const)
	cmpOp := cmp.Op
	if !okIv || !okLim {
		// Try the swapped orientation: limit on the left.
		limit, okLim = cmp.Args[0].(*ir.Const)
		iv, okIv = cmp.Args[1].(*ir.Instr)
		if !okIv || !okLim {
			return 0, false
		}
		cmpOp = swapCmp(cmpOp)
	}
	if iv.Op != ir.OpPhi || iv.Blk != l.Header || len(iv.Incoming) != 2 {
		return 0, false
	}
	init, okInit := iv.PhiIncoming(ph).(*ir.Const)
	if !okInit {
		return 0, false
	}
	var next ir.Value
	for i, ib := range iv.Incoming {
		if ib != ph {
			next = iv.Args[i]
		}
	}
	step, okStep := next.(*ir.Instr)
	if !okStep || (step.Op != ir.OpAdd && step.Op != ir.OpSub) || !l.Blocks[step.Blk] {
		return 0, false
	}
	var stepC *ir.Const
	if step.Args[0] == iv {
		stepC, okStep = step.Args[1].(*ir.Const)
	} else if step.Args[1] == iv && step.Op == ir.OpAdd {
		stepC, okStep = step.Args[0].(*ir.Const)
	} else {
		return 0, false
	}
	if !okStep || stepC.IsZero() {
		return 0, false
	}

	// Simulate the header test numerically.
	bits := limit.Typ.Bits
	v := init.Val
	var count int64
	const maxSim = 1 << 16
	for ir.EvalCmp(cmpOp, bits, v, limit.Val) == stayOnTrue {
		count++
		if count > maxSim {
			return 0, false
		}
		if step.Op == ir.OpAdd {
			v = ir.Mask(bits, v+stepC.Val)
		} else {
			v = ir.Mask(bits, v-stepC.Val)
		}
		if v == init.Val {
			return 0, false // wrapped a full cycle: not a counted loop
		}
	}
	return count, true
}

func swapCmp(op ir.Op) ir.Op {
	switch op {
	case ir.OpULt:
		return ir.OpUGt
	case ir.OpULe:
		return ir.OpUGe
	case ir.OpUGt:
		return ir.OpULt
	case ir.OpUGe:
		return ir.OpULe
	case ir.OpSLt:
		return ir.OpSGt
	case ir.OpSLe:
		return ir.OpSGe
	case ir.OpSGt:
		return ir.OpSLt
	case ir.OpSGe:
		return ir.OpSLe
	}
	return op // eq/ne symmetric
}

// peelOnce executes one loop iteration before the loop: the body is
// cloned, the preheader enters the clone, and the clone's back edges
// land on the original header.
func peelOnce(cx *Context, f *ir.Function, l *ir.Loop, dt *ir.DomTree) bool {
	if !lcssa(f, l, dt) {
		return false
	}
	ph := ensurePreheader(cx, f, l)
	if ph == nil {
		return false
	}
	region := l.BlocksInRPO(dt)
	blockMap, vm := ir.CloneBlocks(f, region, nil)
	cloneHeader := blockMap[l.Header]

	// Preheader enters the peeled copy.
	phTerm := ph.Term()
	for i, s := range phTerm.Succs {
		if s == l.Header {
			phTerm.Succs[i] = cloneHeader
		}
	}

	// Cloned back edges re-enter the original loop; the original header's
	// phis switch their initial values to the peeled iteration's results.
	for _, latch := range l.Latches {
		cloneLatch := blockMap[latch]
		t := cloneLatch.Term()
		for i, s := range t.Succs {
			if s == cloneHeader {
				t.Succs[i] = l.Header
			}
		}
		for _, phi := range l.Header.Phis() {
			v := phi.PhiIncoming(latch)
			phi.SetPhiIncoming(cloneLatch, vm.Lookup(v))
		}
	}
	for _, phi := range l.Header.Phis() {
		phi.RemovePhiIncoming(ph)
	}

	// Exit-block phis gain edges from the peeled copy. This must happen
	// while vm's phi mappings are still live instructions.
	for _, e := range l.Exits {
		cloneFrom := blockMap[e.From]
		for _, phi := range e.To.Phis() {
			v := phi.PhiIncoming(e.From)
			if v != nil {
				phi.SetPhiIncoming(cloneFrom, vm.Lookup(v))
			}
		}
	}

	// The peeled header executes exactly once (preds: preheader only), so
	// its phis collapse to their preheader values.
	for _, phi := range cloneHeader.Phis() {
		v := phi.PhiIncoming(ph)
		ir.ReplaceUses(f, phi, v)
		cloneHeader.Remove(phi)
	}
	return true
}
