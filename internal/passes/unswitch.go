package passes

import "overify/internal/ir"

// Unswitch hoists loop-invariant conditional branches out of loops by
// cloning the loop: the condition is tested once in the preheader, and
// each copy of the loop runs with the branch resolved. This is the
// paper's motivating -O3 example (§1): unswitching wc's "any != 0" test
// turns O(3^n) explored paths into O(2^n), because the symbolic executor
// no longer re-forks on the invariant condition at every iteration.
//
// The price is code growth, which a CPU-oriented pipeline strictly
// limits (UnswitchMaxSize/UnswitchMaxClones); -OVERIFY pays it gladly.
// Unswitching clones the loop: preserves nothing. Each successful
// round invalidates so the next round's discovery is fresh.
func Unswitch() Pass {
	return funcPass{name: "unswitch", preserves: NoAnalyses, run: unswitchFunc}
}

func unswitchFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("unswitch", f)
	changed := false
	for round := 0; round < cx.Cost.UnswitchMaxClones; round++ {
		if !unswitchOne(f, cx) {
			break
		}
		changed = true
		// The clone and the cleanup below rewrite the CFG: rediscover
		// before the next round.
		cx.Invalidate(f, NoAnalyses)
		// Clean up the specialized copies before looking again, so the
		// size estimate for the next round sees the folded loops.
		cxLocal := &Context{Cost: cx.Cost}
		simplifyFunc(f, cxLocal)
		simplifyCFGFunc(f, cxLocal)
		dceFunc(f, cxLocal)
		cx.Stats.InstrsFolded += cxLocal.Stats.InstrsFolded
		cx.Stats.DeadInstrs += cxLocal.Stats.DeadInstrs
		cx.Stats.DeadBlocks += cxLocal.Stats.DeadBlocks
		cx.Stats.BlocksMerged += cxLocal.Stats.BlocksMerged
	}
	return changed
}

func unswitchOne(f *ir.Function, cx *Context) bool {
	dt := cx.Dom(f)
	loops := cx.Loops(f)
	// Innermost loops first: their bodies are smallest, and unswitching
	// an inner loop often unlocks the outer one.
	for i := len(loops) - 1; i >= 0; i-- {
		l := loops[i]
		if l.Header == f.Entry() {
			continue
		}
		if l.NumInstrs() > cx.Cost.UnswitchMaxSize {
			continue
		}
		br := findInvariantBranch(l)
		if br == nil {
			continue
		}
		if doUnswitch(cx, f, l, dt, br) {
			cx.Stats.LoopsUnswitched++
			return true
		}
	}
	return false
}

// findInvariantBranch returns a conditional branch inside l whose
// condition is loop-invariant: defined outside the loop, or a pure
// in-loop computation whose chain bottoms out in invariant values (the
// canonical `if (mode)` shape computes `icmp mode, 0` inside the body;
// doUnswitch hoists such chains to the preheader).
func findInvariantBranch(l *ir.Loop) *ir.Instr {
	for _, b := range l.BlocksSorted() {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		cond := t.Args[0]
		if _, isConst := cond.(*ir.Const); isConst {
			continue
		}
		if !invariantValue(l, cond, 0) {
			continue
		}
		// Both successors identical is trivially foldable elsewhere.
		if t.Succs[0] == t.Succs[1] {
			continue
		}
		return t
	}
	return nil
}

// invariantValue reports whether v is loop-invariant, looking through
// pure in-loop computation chains up to a small depth.
func invariantValue(l *ir.Loop, v ir.Value, depth int) bool {
	if !definedInLoop(l, v) {
		return true
	}
	if depth > 4 {
		return false
	}
	in := v.(*ir.Instr)
	if !isPure(in) || in.Op == ir.OpPhi {
		return false
	}
	for _, a := range in.Args {
		if !invariantValue(l, a, depth+1) {
			return false
		}
	}
	return true
}

// hoistInvariantChain moves v's pure in-loop computation chain to the
// preheader (before its terminator), bottom-up.
func hoistInvariantChain(l *ir.Loop, ph *ir.Block, v ir.Value) {
	in, ok := v.(*ir.Instr)
	if !ok || in.Blk == nil || !l.Blocks[in.Blk] {
		return
	}
	for _, a := range in.Args {
		hoistInvariantChain(l, ph, a)
	}
	in.Blk.Remove(in)
	in.Blk = ph
	ph.InsertBefore(in, ph.Term())
}

func doUnswitch(cx *Context, f *ir.Function, l *ir.Loop, dt *ir.DomTree, br *ir.Instr) bool {
	// Loop-closed SSA first: cloning adds exit edges, which is only safe
	// when outside uses go through exit phis.
	if !lcssa(f, l, dt) {
		return false
	}
	ph := ensurePreheader(cx, f, l)
	if ph == nil {
		return false
	}
	cond := br.Args[0]
	// The condition may be a pure chain computed inside the loop; hoist
	// it so the preheader's new branch can use it.
	hoistInvariantChain(l, ph, cond)
	region := l.BlocksInRPO(dt)

	blockMap, vm := ir.CloneBlocks(f, region, nil)

	// Exit-block phis gain edges from the cloned exit predecessors.
	for _, e := range l.Exits {
		cloneFrom := blockMap[e.From]
		for _, phi := range e.To.Phis() {
			v := phi.PhiIncoming(e.From)
			if v != nil {
				phi.SetPhiIncoming(cloneFrom, vm.Lookup(v))
			}
		}
	}

	// The preheader now tests the invariant condition once.
	phTerm := ph.Term()
	phTerm.Op = ir.OpCondBr
	phTerm.Args = []ir.Value{cond}
	phTerm.Succs = []*ir.Block{l.Header, blockMap[l.Header]}

	// Specialize: in the original loop the condition is true; in the
	// clone it is false. The unswitched branches then fold.
	origSet := l.Blocks
	cloneSet := make(map[*ir.Block]bool, len(blockMap))
	for _, nb := range blockMap {
		cloneSet[nb] = true
	}
	replaceUsesInBlocks(origSet, cond, ir.Bool(true))
	replaceUsesInBlocks(cloneSet, cond, ir.Bool(false))
	return true
}
