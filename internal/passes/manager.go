package passes

import (
	"runtime"
	"sync"
	"time"

	"overify/internal/ir"
)

// Manager schedules a pass sequence over a module. It is the layer the
// pipeline package drives and adds three things over calling Pass.Run
// in a loop:
//
//   - analysis caching: it primes the Context's per-function cache and
//     invalidates, after every changed run, exactly what the pass's
//     Preserves declaration does not cover;
//   - change-driven fixpoints: a Fixpoint over FunctionPasses runs as
//     a per-function worklist — each function iterates the body until
//     *it* reports a round with no change and is then skipped, instead
//     of riding along for every other function's remaining rounds;
//   - per-function parallelism: FunctionPasses (and whole per-function
//     fixpoints) run across functions in a bounded worker pool. This
//     is safe because function passes touch only their function (the
//     one cross-function pass, Inline, is a module pass and runs
//     serially), and deterministic because per-function work is
//     independent and Stats merge in module order.
//
// The scheduling is equivalence-preserving by construction: a skipped
// function run is one that would have reported no change (function
// passes are independent across functions and deterministic), so the
// cached, change-driven and parallel schedules all emit byte-identical
// IR and identical Stats to the sequential fresh-analysis baseline —
// which the pipeline equivalence suite asserts over the whole corpus.
type Manager struct {
	// Jobs bounds concurrent per-function pass executions; 0 or 1 runs
	// serially in module order, negative uses one job per CPU (the -j
	// convention the symbolic-execution engine follows).
	Jobs int
	// NoSkip disables function-level change tracking: fixpoints run
	// global rounds over every function until a whole round reports no
	// change, reproducing the pre-manager schedule (and its invocation
	// count — the baseline the worklist is measured against).
	NoSkip bool
	// AfterPass, when set, runs after every top-level pass completes
	// (pipeline.Config.VerifyEachPass re-verifies the IR here). A
	// non-nil error aborts the run.
	AfterPass func(p Pass) error
}

// PassMetric is one pass's counters across a run, aggregated by name.
type PassMetric struct {
	Name        string
	Invocations int // function-level executions (module passes: 1 per Run)
	Changed     int // executions that reported a change
	Skipped     int // executions avoided by function-level change tracking
	Wall        time.Duration
}

// RunMetrics is what Manager.Run reports; pipeline.Result surfaces it.
type RunMetrics struct {
	Passes      []PassMetric // per pass name, first-appearance order
	Invocations int          // total function-level pass executions
	Skipped     int          // total executions avoided by change tracking
	StagesRun   int          // top-level passes run
}

// add accumulates a tally into the named pass's metric.
func (rm *RunMetrics) add(name string, t passTally) {
	rm.Invocations += t.invocations
	rm.Skipped += t.skipped
	for i := range rm.Passes {
		if rm.Passes[i].Name == name {
			rm.Passes[i].Invocations += t.invocations
			rm.Passes[i].Changed += t.changed
			rm.Passes[i].Skipped += t.skipped
			rm.Passes[i].Wall += t.wall
			return
		}
	}
	rm.Passes = append(rm.Passes, PassMetric{
		Name: name, Invocations: t.invocations, Changed: t.changed,
		Skipped: t.skipped, Wall: t.wall,
	})
}

// passTally is one job's counters for one pass.
type passTally struct {
	invocations int
	changed     int
	skipped     int
	wall        time.Duration
}

// Run executes seq over m, threading cx (cost model, stats, analysis
// cache) through every pass.
func (mgr *Manager) Run(m *ir.Module, seq []Pass, cx *Context) (*RunMetrics, error) {
	cx.prime(m)
	rm := &RunMetrics{}
	for _, p := range seq {
		mgr.runStage(m, p, cx, rm)
		rm.StagesRun++
		if mgr.AfterPass != nil {
			if err := mgr.AfterPass(p); err != nil {
				return rm, err
			}
		}
	}
	return rm, nil
}

// fixpointer is what Fixpoint builds; the manager unpacks it to drive
// the worklist itself.
type fixpointer interface {
	Pass
	Rounds() int
	Body() []Pass
}

func (mgr *Manager) runStage(m *ir.Module, p Pass, cx *Context, rm *RunMetrics) {
	if fp, ok := p.(fixpointer); ok {
		if body, allFunc := functionBody(fp.Body()); allFunc {
			mgr.runFixpoint(m, body, fp.Rounds(), cx, rm)
			return
		}
		// A fixpoint containing a module pass (none of the built-in
		// pipelines build one) falls back to module-level rounds.
	}
	if fp, ok := p.(FunctionPass); ok {
		mgr.runFuncStage(m, []FunctionPass{fp}, 1, cx, rm)
		return
	}
	// Module pass (or legacy fallback): serial, on the parent context.
	// The Run implementations invalidate the analyses they clobber per
	// function themselves (see the Pass contract).
	start := time.Now()
	changed := p.Run(m, cx)
	t := passTally{invocations: 1, wall: time.Since(start)}
	if changed {
		t.changed = 1
	}
	rm.add(p.Name(), t)
}

// functionBody asserts every pass in body is a FunctionPass.
func functionBody(body []Pass) ([]FunctionPass, bool) {
	out := make([]FunctionPass, 0, len(body))
	for _, p := range body {
		fp, ok := p.(FunctionPass)
		if !ok {
			return nil, false
		}
		out = append(out, fp)
	}
	return out, true
}

// runFixpoint drives a fixpoint stage over function passes.
func (mgr *Manager) runFixpoint(m *ir.Module, body []FunctionPass, rounds int, cx *Context, rm *RunMetrics) {
	if mgr.NoSkip {
		mgr.runFuncStage(m, body, rounds, cx, rm)
		return
	}
	funcs := definedFuncs(m)
	jobs := make([]*funcJob, len(funcs))
	mgr.forEach(funcs, cx, func(i int, f *ir.Function, ccx *Context) {
		job := &funcJob{tallies: make([]passTally, len(body))}
		jobs[i] = job
		for round := 0; round < rounds; round++ {
			job.rounds++
			any := false
			for pi, p := range body {
				if runTimed(p, f, ccx, &job.tallies[pi]) {
					any = true
				}
			}
			if !any {
				break
			}
		}
	})
	// The legacy schedule runs every function for as many rounds as the
	// slowest-settling function needed; everything under that high-water
	// mark is a skipped execution.
	maxRounds := 0
	for _, job := range jobs {
		if job.rounds > maxRounds {
			maxRounds = job.rounds
		}
	}
	for _, job := range jobs {
		for pi := range body {
			job.tallies[pi].skipped += maxRounds - job.rounds
		}
	}
	mgr.merge(body, funcs, jobs, cx, rm)
}

// runFuncStage runs body over every function for up to rounds global
// rounds (rounds == 1 for a plain pass stage), stopping early when a
// whole round reports no change — the legacy schedule.
func (mgr *Manager) runFuncStage(m *ir.Module, body []FunctionPass, rounds int, cx *Context, rm *RunMetrics) {
	funcs := definedFuncs(m)
	jobs := make([]*funcJob, len(funcs))
	for i := range jobs {
		jobs[i] = &funcJob{tallies: make([]passTally, len(body))}
	}
	for round := 0; round < rounds; round++ {
		var anyMu sync.Mutex
		any := false
		mgr.forEach(funcs, cx, func(i int, f *ir.Function, ccx *Context) {
			job := jobs[i]
			changed := false
			for pi, p := range body {
				if runTimed(p, f, ccx, &job.tallies[pi]) {
					changed = true
				}
			}
			if changed {
				anyMu.Lock()
				any = true
				anyMu.Unlock()
			}
		})
		if !any {
			break
		}
	}
	mgr.merge(body, funcs, jobs, cx, rm)
}

// runTimed executes one pass on one function, invalidating what the
// pass clobbers when it reports a change.
func runTimed(p FunctionPass, f *ir.Function, cx *Context, t *passTally) bool {
	start := time.Now()
	changed := p.RunOnFunc(f, cx)
	t.wall += time.Since(start)
	t.invocations++
	if changed {
		t.changed++
		cx.Invalidate(f, p.Preserves())
	}
	return changed
}

// funcJob accumulates one function's per-pass tallies for the
// deterministic merge.
type funcJob struct {
	rounds  int
	tallies []passTally
}

// forEach runs work over every function, in module order serially or
// across a bounded pool when Jobs > 1 (negative Jobs = one per CPU,
// matching the symbolic-execution engine's -j convention). In parallel
// mode each function gets a child context (own Stats, shared cost
// model and analysis cache); serial mode threads the parent context
// straight through.
func (mgr *Manager) forEach(funcs []*ir.Function, cx *Context, work func(i int, f *ir.Function, ccx *Context)) {
	jobs := mgr.Jobs
	if jobs < 0 {
		jobs = runtime.NumCPU()
	}
	if jobs <= 1 || len(funcs) <= 1 {
		for i, f := range funcs {
			work(i, f, cx)
		}
		return
	}
	children := make([]*Context, len(funcs))
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i, f := range funcs {
		children[i] = cx.child()
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, f *ir.Function) {
			defer func() { <-sem; wg.Done() }()
			work(i, f, children[i])
		}(i, f)
	}
	wg.Wait()
	// Deterministic merge: module order, regardless of completion order.
	for _, ccx := range children {
		cx.Stats.Add(ccx.Stats)
	}
}

// merge folds the per-function tallies into the run metrics in module
// order.
func (mgr *Manager) merge(body []FunctionPass, funcs []*ir.Function, jobs []*funcJob, cx *Context, rm *RunMetrics) {
	for pi, p := range body {
		var total passTally
		for _, job := range jobs {
			if job == nil {
				continue
			}
			t := job.tallies[pi]
			total.invocations += t.invocations
			total.changed += t.changed
			total.skipped += t.skipped
			total.wall += t.wall
		}
		rm.add(p.Name(), total)
	}
}

func definedFuncs(m *ir.Module) []*ir.Function {
	out := make([]*ir.Function, 0, len(m.Funcs))
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			out = append(out, f)
		}
	}
	return out
}
