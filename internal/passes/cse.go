package passes

import (
	"fmt"
	"strings"

	"overify/internal/ir"
)

// CSE performs dominator-scoped common-subexpression elimination on pure
// instructions. Repeated subexpressions cost a symbolic executor twice:
// they are interpreted again and they enlarge the constraint terms sent
// to the solver, so deduplication helps verification even more than it
// helps a CPU (paper Table 2, "arithmetic simplifications").
// CSE only deletes pure instructions; the CFG analyses survive.
func CSE() Pass {
	return funcPass{name: "cse", preserves: AllAnalyses, run: cseFunc}
}

func cseFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("cse", f)
	dt := cx.Dom(f)
	children := dt.Children()
	changed := false

	// When the function contains no stores and no calls (common after
	// mem2reg plus full inlining: the remaining memory is a read-only
	// input buffer), loads behave like pure functions of their pointer
	// and participate in CSE. A dominating identical load traps exactly
	// when the dominated one would, so the replacement is also
	// trap-equivalent.
	memSafe := true
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore || in.Op == ir.OpCall {
				memSafe = false
			}
		}
	}

	// Scoped hash table: each dominator-tree scope layers its definitions
	// over the parent's.
	type scope map[string]*ir.Instr
	var walk func(b *ir.Block, avail []scope)
	walk = func(b *ir.Block, avail []scope) {
		local := make(scope)
		avail = append(avail, local)
		lookup := func(k string) *ir.Instr {
			for i := len(avail) - 1; i >= 0; i-- {
				if in, ok := avail[i][k]; ok {
					return in
				}
			}
			return nil
		}
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			k, ok := cseKey(in)
			if !ok && memSafe && in.Op == ir.OpLoad {
				k, ok = "load|"+in.Typ.String()+"|"+operandKey(in.Args[0]), true
			}
			if !ok {
				kept = append(kept, in)
				continue
			}
			if prev := lookup(k); prev != nil {
				ir.ReplaceUses(f, in, prev)
				in.Blk = nil
				cx.Stats.InstrsCSEd++
				changed = true
				continue
			}
			local[k] = in
			kept = append(kept, in)
		}
		b.Instrs = kept
		for _, c := range children[b] {
			walk(c, avail)
		}
	}
	if e := f.Entry(); e != nil {
		walk(e, nil)
	}
	return changed
}

// cseKey builds a structural key for a pure instruction; ok is false for
// instructions that must not be deduplicated.
func cseKey(in *ir.Instr) (string, bool) {
	if !isPure(in) || in.Op == ir.OpPhi {
		return "", false
	}
	var sb strings.Builder
	op := in.Op
	args := in.Args
	// Canonical operand order for commutative operations.
	if op.IsCommutative() && len(args) == 2 {
		if operandKey(args[1]) < operandKey(args[0]) {
			args = []ir.Value{args[1], args[0]}
		}
	}
	fmt.Fprintf(&sb, "%d|%s|", int(op), in.Typ)
	for _, a := range args {
		sb.WriteString(operandKey(a))
		sb.WriteByte(',')
	}
	return sb.String(), true
}

func operandKey(v ir.Value) string {
	switch x := v.(type) {
	case *ir.Const:
		return fmt.Sprintf("c%s:%d", x.Typ, x.Val)
	case *ir.Null:
		return "null:" + x.Typ.String()
	case *ir.Global:
		return "@" + x.Name
	case *ir.Param:
		return "p" + x.Nam
	case *ir.Instr:
		return fmt.Sprintf("t%d", x.ID)
	}
	return fmt.Sprintf("?%p", v)
}
