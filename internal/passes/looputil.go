package passes

import "overify/internal/ir"

// ensurePreheader returns the loop's preheader, creating one if the
// header has multiple outside predecessors or a conditional entry edge.
// Returns nil when the header is the function entry (such loops are left
// alone). Creating a preheader is a CFG edit, so it invalidates the
// function's cached analyses even when the calling pass otherwise
// preserves them (the callers keep using their already-computed — and
// still structurally valid — trees for the rest of their run).
func ensurePreheader(cx *Context, f *ir.Function, l *ir.Loop) *ir.Block {
	if l.Header == f.Entry() {
		return nil
	}
	preds := f.Preds()
	if ph := l.Preheader(preds); ph != nil {
		return ph
	}
	var outside []*ir.Block
	for _, p := range preds[l.Header] {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 0 {
		return nil
	}
	cx.Invalidate(f, NoAnalyses)
	ph := f.NewBlock(l.Header.Name + ".ph")

	// Header phis: fold the outside incoming edges into the preheader.
	for _, phi := range l.Header.Phis() {
		if len(outside) == 1 {
			v := phi.PhiIncoming(outside[0])
			phi.RemovePhiIncoming(outside[0])
			phi.SetPhiIncoming(ph, v)
			continue
		}
		nphi := &ir.Instr{Op: ir.OpPhi, Typ: phi.Typ}
		f.ClaimID(nphi)
		nphi.Blk = ph
		ph.Instrs = append(ph.Instrs, nphi)
		for _, p := range outside {
			nphi.SetPhiIncoming(p, phi.PhiIncoming(p))
			phi.RemovePhiIncoming(p)
		}
		phi.SetPhiIncoming(ph, nphi)
	}
	bd := ir.NewBuilder(f, ph)
	bd.Br(l.Header)
	for _, p := range outside {
		t := p.Term()
		for i, s := range t.Succs {
			if s == l.Header {
				t.Succs[i] = ph
			}
		}
	}
	return ph
}

// definedInLoop reports whether v is an instruction defined inside l.
func definedInLoop(l *ir.Loop, v ir.Value) bool {
	in, ok := v.(*ir.Instr)
	return ok && in.Blk != nil && l.Blocks[in.Blk]
}

// loopInvariant reports whether every operand of in is defined outside l.
func loopInvariant(l *ir.Loop, in *ir.Instr) bool {
	for _, a := range in.Args {
		if definedInLoop(l, a) {
			return false
		}
	}
	return true
}

// lcssa puts the loop into loop-closed SSA form: every value defined in
// the loop and used outside it is routed through a phi node in the exit
// block that dominates the use. Loop cloning (unswitch, unroll/peel) can
// then add new exit edges by extending those phis without breaking
// dominance. Returns false when the loop's exits are too irregular to
// close (the caller must then skip the transform).
func lcssa(f *ir.Function, l *ir.Loop, dt *ir.DomTree) bool {
	if len(l.Exits) == 0 {
		return true // no exits, nothing can be used outside
	}
	preds := f.Preds()
	// Group exit edges by target and require every predecessor of each
	// exit target to be a loop block, so a phi there covers all edges.
	froms := make(map[*ir.Block][]*ir.Block)
	for _, e := range l.Exits {
		froms[e.To] = append(froms[e.To], e.From)
	}
	for to := range froms {
		for _, p := range preds[to] {
			if !l.Blocks[p] {
				return false
			}
		}
	}

	type useRef struct {
		in  *ir.Instr
		arg int
	}
	for _, b := range l.BlocksInRPO(dt) {
		for _, def := range b.Instrs {
			if ir.SameType(def.Typ, ir.Void) {
				continue
			}
			var outside []useRef
			for _, ub := range f.Blocks {
				for _, u := range ub.Instrs {
					for i, a := range u.Args {
						if a != def {
							continue
						}
						useBlock := u.Blk
						if u.Op == ir.OpPhi {
							useBlock = u.Incoming[i]
						}
						if !l.Blocks[useBlock] {
							outside = append(outside, useRef{u, i})
						}
					}
				}
			}
			if len(outside) == 0 {
				continue
			}
			phiAt := make(map[*ir.Block]*ir.Instr)
			getPhi := func(to *ir.Block) *ir.Instr {
				if phi := phiAt[to]; phi != nil {
					return phi
				}
				phi := &ir.Instr{Op: ir.OpPhi, Typ: def.Typ}
				f.ClaimID(phi)
				phi.Blk = to
				to.Instrs = append([]*ir.Instr{phi}, to.Instrs...)
				for _, p := range preds[to] {
					phi.SetPhiIncoming(p, def)
				}
				phiAt[to] = phi
				return phi
			}
			for _, u := range outside {
				useBlock := u.in.Blk
				if u.in.Op == ir.OpPhi {
					useBlock = u.in.Incoming[u.arg]
				}
				// Deepest exit target dominating the use.
				var chosen *ir.Block
				for to := range froms {
					if dt.Dominates(to, useBlock) {
						if chosen == nil || dt.Dominates(chosen, to) {
							chosen = to
						}
					}
				}
				if chosen == nil || !dt.Dominates(def.Blk, chosen) {
					return false // cannot place a dominated phi: bail out
				}
				// The phi's operands read def at the end of each exit
				// predecessor, so def must dominate them all.
				for _, p := range preds[chosen] {
					if !dt.Dominates(def.Blk, p) {
						return false
					}
				}
				if u.in == phiAt[chosen] {
					continue // don't rewrite the lcssa phi's own operand
				}
				u.in.Args[u.arg] = getPhi(chosen)
			}
		}
	}
	return true
}

// replaceUsesInBlocks rewrites uses of old with new, but only within the
// given block set. Used by unswitching to specialize each loop copy with
// the known branch outcome.
func replaceUsesInBlocks(blocks map[*ir.Block]bool, old, new ir.Value) int {
	n := 0
	for b := range blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
					n++
				}
			}
		}
	}
	return n
}
