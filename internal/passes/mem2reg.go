package passes

import (
	"overify/internal/ir"
)

// Mem2Reg promotes single-element allocas whose address never escapes
// into SSA registers, inserting phi nodes at iterated dominance
// frontiers (Cytron et al.). This is the enabling pass for everything
// else: the clang-style -O0 output keeps every variable in memory, which
// hides all structure from the other passes (and from verification
// tools, as the paper's "Instruction simplification" section notes).
// Promotion adds phis and deletes loads/stores/allocas but never
// touches an edge, so the CFG analyses survive.
func Mem2Reg() Pass {
	return funcPass{name: "mem2reg", preserves: AllAnalyses, run: mem2regFunc}
}

func mem2regFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("mem2reg", f)
	allocas := promotableAllocas(f)
	if len(allocas) == 0 {
		return false
	}
	dt := cx.Dom(f)
	df := dt.DominanceFrontiers()

	// Phi placement at iterated dominance frontiers of the defs.
	type phiKey struct {
		b *ir.Block
		a *ir.Instr
	}
	phiFor := make(map[phiKey]*ir.Instr)
	for _, a := range allocas {
		defBlocks := make(map[*ir.Block]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpStore && in.Args[1] == a {
					defBlocks[b] = true
				}
			}
		}
		// Seed the worklist in block order, not map order: phi IDs are
		// claimed in pop order, and the module text must be identical
		// across runs (and across manager schedules).
		work := make([]*ir.Block, 0, len(defBlocks))
		for _, b := range f.Blocks {
			if defBlocks[b] {
				work = append(work, b)
			}
		}
		placed := make(map[*ir.Block]bool)
		for len(work) > 0 {
			b := work[len(work)-1]
			work = work[:len(work)-1]
			for _, fr := range df[b] {
				if placed[fr] {
					continue
				}
				placed[fr] = true
				phi := &ir.Instr{Op: ir.OpPhi, Typ: a.Allocated}
				f.ClaimID(phi)
				phi.Blk = fr
				fr.Instrs = append([]*ir.Instr{phi}, fr.Instrs...)
				phiFor[phiKey{fr, a}] = phi
				if !defBlocks[fr] {
					defBlocks[fr] = true
					work = append(work, fr)
				}
			}
		}
	}

	// Renaming walk over the dominator tree.
	children := dt.Children()
	zero := func(a *ir.Instr) ir.Value {
		// A load before any store reads the variable's initial storage,
		// which MiniC defines as zero (unlike C's undef).
		if pt, ok := a.Allocated.(ir.PtrType); ok {
			return ir.NullPtr(pt.Elem)
		}
		return ir.ConstInt(a.Allocated.(ir.IntType), 0)
	}
	isPromoted := make(map[ir.Value]*ir.Instr, len(allocas))
	for _, a := range allocas {
		isPromoted[a] = a
	}

	var rename func(b *ir.Block, cur map[*ir.Instr]ir.Value)
	rename = func(b *ir.Block, cur map[*ir.Instr]ir.Value) {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpPhi:
				// A phi we placed defines its alloca.
				for _, a := range allocas {
					if phiFor[phiKey{b, a}] == in {
						cur[a] = in
						break
					}
				}
				kept = append(kept, in)
			case ir.OpLoad:
				if a, ok := isPromoted[in.Args[0]]; ok {
					v, have := cur[a]
					if !have {
						v = zero(a)
					}
					ir.ReplaceUses(f, in, v)
					in.Blk = nil
					continue // drop the load
				}
				kept = append(kept, in)
			case ir.OpStore:
				if a, ok := isPromoted[in.Args[1]]; ok {
					cur[a] = in.Args[0]
					in.Blk = nil
					continue // drop the store
				}
				kept = append(kept, in)
			default:
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
		// Fill successor phis along each edge.
		for _, s := range b.Succs() {
			for _, a := range allocas {
				if phi := phiFor[phiKey{s, a}]; phi != nil {
					v, have := cur[a]
					if !have {
						v = zero(a)
					}
					phi.SetPhiIncoming(b, v)
				}
			}
		}
		for _, c := range children[b] {
			// Each child gets its own copy of the current-definition map.
			childCur := make(map[*ir.Instr]ir.Value, len(cur))
			for k, v := range cur {
				childCur[k] = v
			}
			rename(c, childCur)
		}
	}
	rename(f.Entry(), make(map[*ir.Instr]ir.Value))

	// Remove the allocas themselves.
	for _, a := range allocas {
		if a.Blk != nil {
			a.Blk.Remove(a)
		}
	}
	cx.Stats.AllocasPromoted += len(allocas)
	return true
}

// promotableAllocas returns single-cell allocas used only as the pointer
// operand of loads and stores (the address never escapes).
func promotableAllocas(f *ir.Function) []*ir.Instr {
	var out []*ir.Instr
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca && in.Count == 1 {
				out = append(out, in)
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	escaped := make(map[ir.Value]bool)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, arg := range in.Args {
				ok := (in.Op == ir.OpLoad && i == 0) || (in.Op == ir.OpStore && i == 1)
				if !ok {
					escaped[arg] = true
				}
			}
		}
	}
	kept := out[:0]
	for _, a := range out {
		if !escaped[a] {
			kept = append(kept, a)
		}
	}
	return kept
}
