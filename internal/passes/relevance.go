package passes

import (
	"overify/internal/ir"
)

// Check-relevance analysis: the backward closure of the configured
// check set over the IR's data, control, and memory dependence edges.
// An instruction is *relevant* when deleting it could change whether
// some kept check (or natively trapping instruction) fires, or whether
// the program terminates. Everything outside the closure is the slice
// pass's prey.
//
// The closure is module-wide and interprocedural (via Instr.Callee
// edges), and deliberately conservative where precision would need a
// real points-to analysis:
//
//   - memory: a relevant load from a known object keeps every store to
//     that object — plus every store through an unknown pointer when
//     the object's address escapes; a relevant load through an unknown
//     pointer keeps every store to every escaping object. Loads kept
//     only because they could fault (nothing relevant consumes their
//     value) keep their address computation but pin no stores at all.
//   - termination: every loop-exit branch stays relevant, so a sliced
//     loop still runs its original trip count; a function containing a
//     block that cannot reach any exit keeps all its branches.
//   - divergence: a call is kept whenever the callee could loop or
//     recurse, even if nothing it computes is observable.
type Relevance struct {
	Checks ir.CheckSet

	relevant map[*ir.Instr]bool
	live     map[*ir.Block]bool
	roots    int
}

// Relevant reports whether in is inside the backward closure of the
// check set.
func (r *Relevance) Relevant(in *ir.Instr) bool { return r.relevant[in] }

// Live reports whether some relevant instruction lives in b (or b's
// execution decides one).
func (r *Relevance) Live(b *ir.Block) bool { return r.live[b] }

// Roots returns the number of closure roots (kept checks plus
// possibly-trapping instructions) found in the module.
func (r *Relevance) Roots() int { return r.roots }

// workItem is one queued propagation. Value-relevant instructions
// (their result feeds the closure) propagate the full rule set; kept
// trap roots whose value nothing relevant consumes (full=false) only
// keep their operands — in particular, a load kept solely because it
// could fault needs its address, not the memory it would read.
type workItem struct {
	in   *ir.Instr
	full bool
}

// relevanceBuilder holds the per-module fixpoint state.
type relevanceBuilder struct {
	m   *ir.Module
	rel *Relevance

	work     []workItem
	valueRel map[*ir.Instr]bool

	// cd maps a block to the branch blocks it is control-dependent on
	// (Ferrante-style, via the postdominator tree).
	cd map[*ir.Block][]*ir.Block

	// Memory dependence indexes: stores grouped by known base object
	// (an *ir.Global or the defining OpAlloca), plus stores through
	// pointers no static analysis here can name.
	storesByObj  map[ir.Value][]*ir.Instr
	unknownStore []*ir.Instr

	// escapes marks object bases reachable through pointers
	// knownObjectAccess cannot resolve (address passed to a call,
	// stored, compared, phi'd, or re-derived through a second GEP).
	// Loads through unknown pointers can only observe escaping objects.
	escapes      map[ir.Value]bool
	unknownHot   bool // a value-relevant load from a known escaping object exists
	escStoresHot bool // a value-relevant unknown load exists

	// Interprocedural state.
	callSites  map[*ir.Function][]*ir.Instr // call instrs by callee
	needed     map[*ir.Function]bool        // function contains relevant code
	mayDiverge map[*ir.Function]bool
}

// ComputeRelevance builds the check-relevance closure of m for the
// given kept-check subset (zero = all checks).
func ComputeRelevance(m *ir.Module, checks ir.CheckSet) *Relevance {
	b := &relevanceBuilder{
		m: m,
		rel: &Relevance{
			Checks:   checks,
			relevant: make(map[*ir.Instr]bool),
			live:     make(map[*ir.Block]bool),
		},
		valueRel:    make(map[*ir.Instr]bool),
		cd:          make(map[*ir.Block][]*ir.Block),
		storesByObj: make(map[ir.Value][]*ir.Instr),
		escapes:     make(map[ir.Value]bool),
		callSites:   make(map[*ir.Function][]*ir.Instr),
		needed:      make(map[*ir.Function]bool),
	}
	b.index()
	b.markRoots()
	b.run()
	return b.rel
}

// index precomputes control-dependence edges, the memory and call-site
// indexes, and the per-function divergence summaries.
func (b *relevanceBuilder) index() {
	for _, f := range b.m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		pdt := ir.ComputePostDom(f)
		for _, blk := range f.Blocks {
			succs := blk.Succs()
			if len(succs) < 2 {
				continue
			}
			// Each successor chain up to (exclusive) ipdom(blk) is
			// control-dependent on blk. A nil ipdom means the chain runs
			// to the virtual exit.
			stop := pdt.Ipdom(blk)
			for _, s := range succs {
				for t := s; t != nil && t != stop; t = pdt.Ipdom(t) {
					b.cd[t] = append(b.cd[t], blk)
					if !pdt.HasExit(t) {
						break // no postdom chain to climb; fallback covers it
					}
				}
			}
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				switch in.Op {
				case ir.OpStore:
					if base, idx, count, ok := knownObjectAccess(in.Args[1]); ok {
						_, _ = idx, count
						b.storesByObj[base] = append(b.storesByObj[base], in)
					} else {
						b.unknownStore = append(b.unknownStore, in)
					}
				case ir.OpCall:
					if in.Callee != nil {
						b.callSites[in.Callee] = append(b.callSites[in.Callee], in)
					}
				}
			}
		}
	}
	b.mayDiverge = divergenceSummaries(b.m)
	b.indexEscapes()
}

// indexEscapes computes which object bases (allocas, globals) may be
// reached through a pointer knownObjectAccess cannot resolve. The walk
// mirrors that resolver exactly: a base or its one-level GEPs may only
// appear in address positions; any other use — call argument, stored
// value, return, phi/select, comparison, a second GEP — publishes the
// address beyond what the memory index can see.
func (b *relevanceBuilder) indexEscapes() {
	// derived[v] lists the one-level GEPs over base v.
	addressOnly := func(v ir.Value, firstLevel bool) bool {
		for _, f := range b.m.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					for i, a := range in.Args {
						if a != v {
							continue
						}
						switch {
						case in.Op == ir.OpLoad && i == 0:
						case in.Op == ir.OpStore && i == 1:
						case in.Op == ir.OpCheck:
							// A bounds check inspects the address without
							// publishing it.
						case in.Op == ir.OpGEP && i == 0 && firstLevel:
							// The GEP itself is vetted by the caller.
						default:
							return false
						}
					}
				}
			}
		}
		return true
	}
	vet := func(base ir.Value) bool {
		if !addressOnly(base, true) {
			return false
		}
		for _, f := range b.m.Funcs {
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op == ir.OpGEP && in.Args[0] == base && !addressOnly(in, false) {
						return false
					}
				}
			}
		}
		return true
	}
	for _, g := range b.m.Globals {
		if !vet(g) {
			b.escapes[g] = true
		}
	}
	for _, f := range b.m.Funcs {
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == ir.OpAlloca && !vet(in) {
					b.escapes[in] = true
				}
			}
		}
	}
}

// divergenceSummaries reports, per defined function, whether it could
// fail to terminate: it contains a loop, sits on a call-graph cycle, or
// (transitively) calls a function that does. Declarations count as
// divergent — the engine models them as traps, which the root set
// already keeps, but a call summary must stay conservative.
func divergenceSummaries(m *ir.Module) map[*ir.Function]bool {
	div := make(map[*ir.Function]bool)
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			div[f] = true
			continue
		}
		dt := ir.ComputeDom(f)
		if len(ir.FindLoops(f, dt)) > 0 {
			div[f] = true
		}
		// An unreachable-block-free function could still hide a cycle in
		// unreachable code; those blocks are never executed, so only
		// reachable loops matter, which FindLoops already restricts to.
	}
	// Propagate over the call graph to a fixpoint; cycles (recursion)
	// converge to divergent because each member sees the other's bit
	// once one is set — seed cycles by walking with an on-stack set.
	state := make(map[*ir.Function]int) // 0 unvisited, 1 on stack, 2 done
	var visit func(f *ir.Function)
	visit = func(f *ir.Function) {
		if state[f] == 2 {
			return
		}
		if state[f] == 1 {
			div[f] = true // recursion
			return
		}
		state[f] = 1
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if in.Op != ir.OpCall || in.Callee == nil {
					continue
				}
				visit(in.Callee)
				if div[in.Callee] {
					div[f] = true
				}
			}
		}
		state[f] = 2
	}
	for _, f := range m.Funcs {
		if !f.IsDeclaration() {
			visit(f)
		}
	}
	// One more linear sweep so callers of newly-divergent cycle members
	// settle (visit marks members done before the cycle head's bit is
	// known).
	for changed := true; changed; {
		changed = false
		for _, f := range m.Funcs {
			if f.IsDeclaration() || div[f] {
				continue
			}
			for _, blk := range f.Blocks {
				for _, in := range blk.Instrs {
					if in.Op == ir.OpCall && in.Callee != nil && div[in.Callee] {
						div[f] = true
						changed = true
					}
				}
			}
		}
	}
	return div
}

// markRoots seeds the closure: kept checks, possibly-trapping
// instructions, loop-exit branches (termination), and calls to
// possibly-divergent callees.
func (b *relevanceBuilder) markRoots() {
	for _, f := range b.m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		dt := ir.ComputeDom(f)
		loops := ir.FindLoops(f, dt)
		for _, l := range loops {
			for _, ex := range l.Exits {
				if t := ex.From.Term(); t != nil {
					b.mark(t)
				}
			}
		}
		// Fallback for control flow the loop forest cannot see
		// (irreducible cycles, blocks that never reach an exit): keep
		// every branch in the function.
		pdt := ir.ComputePostDom(f)
		noExit := false
		for _, blk := range f.Blocks {
			if dt.Reachable(blk) && !pdt.HasExit(blk) {
				noExit = true
				break
			}
		}
		if noExit {
			for _, blk := range f.Blocks {
				if t := blk.Term(); t != nil && t.Op == ir.OpCondBr {
					b.mark(t)
				}
			}
		}
		for _, blk := range f.Blocks {
			for _, in := range blk.Instrs {
				if b.isRoot(in) {
					b.rel.roots++
					// Trap roots join as operand-only members: whether they
					// fault depends on their operands, not on who reads their
					// result. mark() upgrades them if a relevant consumer
					// appears.
					b.markTrap(in)
				}
				// The slice pass replaces irrelevant integer return values
				// with zero; non-integer returns have no such stand-in, so
				// their producers must stay in the closure.
				if in.Op == ir.OpRet && len(in.Args) == 1 {
					if _, isInt := in.Args[0].Type().(ir.IntType); !isInt {
						if ai, isInstr := in.Args[0].(*ir.Instr); isInstr {
							b.mark(ai)
						}
					}
				}
			}
		}
	}
}

// isRoot reports whether in can fire a kept check or trap natively —
// deleting it could silence a bug, so it anchors the closure.
func (b *relevanceBuilder) isRoot(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpCheck:
		return b.rel.Checks.Contains(in.Kind)
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		c, ok := in.Args[1].(*ir.Const)
		return !ok || c.IsZero()
	case ir.OpLoad:
		return !safeAccess(in.Args[0], false)
	case ir.OpStore:
		return !safeAccess(in.Args[1], true)
	case ir.OpGEP:
		// GEP traps only on a null base; a base rooted in an alloca or
		// global is never null.
		base, _, _, ok := knownObjectAccess(in)
		_ = base
		return !ok
	case ir.OpPtrDiff, ir.OpUnreachable:
		return true
	case ir.OpCall:
		// Indirect/external calls trap in the engine; calls to
		// possibly-divergent callees must survive for termination.
		return in.Callee == nil || in.Callee.IsDeclaration() || b.mayDiverge[in.Callee]
	}
	// Relational pointer comparison traps across objects.
	if in.Op.IsCmp() && in.Op != ir.OpEq && in.Op != ir.OpNe {
		if _, ok := in.Args[0].Type().(ir.PtrType); ok {
			return true
		}
		if _, ok := in.Args[1].Type().(ir.PtrType); ok {
			return true
		}
	}
	return false
}

// safeAccess reports whether a load/store through p provably cannot
// trap: a known alloca/global base, a constant in-bounds index, and
// (for stores) a writable object.
func safeAccess(p ir.Value, isStore bool) bool {
	base, idx, count, ok := knownObjectAccess(p)
	if !ok {
		return false
	}
	if g, isG := base.(*ir.Global); isG && isStore && g.ReadOnly {
		return false
	}
	c, isConst := idx.(*ir.Const)
	return isConst && c.Val < uint64(count)
}

// mark adds in to the closure as value-relevant: something kept
// consumes its result, so the full propagation rules apply.
func (b *relevanceBuilder) mark(in *ir.Instr) {
	if in == nil || b.valueRel[in] {
		return
	}
	b.valueRel[in] = true
	b.rel.relevant[in] = true
	b.work = append(b.work, workItem{in: in, full: true})
}

// markTrap keeps in because it could fault or diverge, without claiming
// anything reads its result. A later mark() upgrades it — the worklist
// admits the same instruction once per mode.
func (b *relevanceBuilder) markTrap(in *ir.Instr) {
	if in == nil || b.rel.relevant[in] {
		return
	}
	b.rel.relevant[in] = true
	b.work = append(b.work, workItem{in: in, full: false})
}

// markLive records that block blk executes relevant work, making every
// branch it is control-dependent on relevant.
func (b *relevanceBuilder) markLive(blk *ir.Block) {
	if blk == nil || b.rel.live[blk] {
		return
	}
	b.rel.live[blk] = true
	for _, br := range b.cd[blk] {
		if t := br.Term(); t != nil {
			b.mark(t)
		}
	}
}

// run drains the worklist to the closure fixpoint.
func (b *relevanceBuilder) run() {
	for len(b.work) > 0 {
		it := b.work[len(b.work)-1]
		b.work = b.work[:len(b.work)-1]
		b.propagate(it.in, it.full)
	}
}

func (b *relevanceBuilder) propagate(in *ir.Instr, full bool) {
	blk := in.Blk
	if blk != nil {
		b.markLive(blk)
		// The function containing relevant code must be reachable: every
		// call site naming it is kept.
		if fn := blk.Fn; fn != nil && !b.needed[fn] {
			b.needed[fn] = true
			for _, call := range b.callSites[fn] {
				b.mark(call)
			}
		}
	}

	// Data dependence: every operand the engine will evaluate.
	for _, a := range in.Args {
		ai, ok := a.(*ir.Instr)
		if !ok {
			continue
		}
		b.mark(ai)
		// A relevant use of a call's result needs the callee's returns.
		if ai.Op == ir.OpCall && ai.Callee != nil && !ai.Callee.IsDeclaration() {
			for _, cb := range ai.Callee.Blocks {
				if t := cb.Term(); t != nil && t.Op == ir.OpRet {
					b.mark(t)
					for _, ra := range t.Args {
						if ri, ok := ra.(*ir.Instr); ok {
							b.mark(ri)
						}
					}
				}
			}
		}
	}

	// The remaining rules concern the instruction's RESULT: which value a
	// phi carries, what a load reads. A trap-only member's result feeds
	// nothing relevant, so those rules don't apply to it.
	if !full {
		return
	}

	switch in.Op {
	case ir.OpPhi:
		// A phi also depends on WHICH edge entered the block; keep each
		// incoming block's terminator (and thereby, via control
		// dependence of those blocks, the branches that choose among
		// them).
		for _, p := range in.Incoming {
			b.markLive(p)
			if t := p.Term(); t != nil {
				b.mark(t)
			}
		}
	case ir.OpLoad:
		b.propagateLoad(in)
	}
}

// propagateLoad keeps the stores a value-relevant load could observe.
// Non-escaping objects cannot be named by an unknown pointer (the
// escape walk mirrors knownObjectAccess resolution exactly), so only
// escaping objects couple the known and unknown store populations.
func (b *relevanceBuilder) propagateLoad(in *ir.Instr) {
	base, _, _, ok := knownObjectAccess(in.Args[0])
	if ok {
		for _, st := range b.storesByObj[base] {
			b.mark(st)
		}
		if b.escapes[base] && !b.unknownHot {
			b.unknownHot = true
			for _, st := range b.unknownStore {
				b.mark(st)
			}
		}
		return
	}
	// Unknown pointer: could observe any escaping object, or whatever an
	// unknown-pointer store last wrote.
	if !b.escStoresHot {
		b.escStoresHot = true
		for _, st := range b.unknownStore {
			b.mark(st)
		}
		for base, sts := range b.storesByObj {
			if !b.escapes[base] {
				continue
			}
			for _, st := range sts {
				b.mark(st)
			}
		}
	}
}
