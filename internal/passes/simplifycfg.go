package passes

import "overify/internal/ir"

// SimplifyCFG folds branches on constants, merges straight-line block
// chains, forwards empty blocks, and prunes unreachable code. Control-
// flow shape is the dominant verification cost (paper §2.1), so every
// removed edge pays off twice: fewer blocks to interpret and fewer
// places where path merging loses precision.
// Every change this pass makes is a CFG change; it preserves nothing.
func SimplifyCFG() Pass {
	return funcPass{name: "simplifycfg", preserves: NoAnalyses, run: simplifyCFGFunc}
}

func simplifyCFGFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("simplifycfg", f)
	changed := false
	for {
		n := 0
		n += foldConstBranches(f)
		if r := ir.RemoveUnreachable(f); r > 0 {
			cx.Stats.DeadBlocks += r
			n += r
		}
		n += removeSinglePredPhis(f)
		n += mergeStraightLine(f, cx)
		n += forwardEmptyBlocks(f)
		if n == 0 {
			break
		}
		changed = true
	}
	return changed
}

// foldConstBranches rewrites condbr on a constant into br, and condbr
// whose successors are identical into br.
func foldConstBranches(f *ir.Function) int {
	n := 0
	for _, b := range f.Blocks {
		t := b.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		if c, ok := t.Args[0].(*ir.Const); ok {
			taken, dead := t.Succs[0], t.Succs[1]
			if c.IsZero() {
				taken, dead = dead, taken
			}
			t.Op = ir.OpBr
			t.Args = nil
			t.Succs = []*ir.Block{taken}
			if dead != taken {
				for _, phi := range dead.Phis() {
					phi.RemovePhiIncoming(b)
				}
			}
			n++
			continue
		}
		if t.Succs[0] == t.Succs[1] {
			t.Op = ir.OpBr
			t.Args = nil
			t.Succs = t.Succs[:1]
			n++
		}
	}
	return n
}

// removeSinglePredPhis replaces phis in single-predecessor blocks with
// their unique incoming value.
func removeSinglePredPhis(f *ir.Function) int {
	preds := f.Preds()
	n := 0
	for _, b := range f.Blocks {
		if len(preds[b]) != 1 {
			continue
		}
		for _, phi := range b.Phis() {
			if len(phi.Incoming) == 1 {
				ir.ReplaceUses(f, phi, phi.Args[0])
				b.Remove(phi)
				n++
			}
		}
	}
	return n
}

// mergeStraightLine splices a block into its unique predecessor when that
// predecessor jumps to it unconditionally.
func mergeStraightLine(f *ir.Function, cx *Context) int {
	n := 0
	for {
		preds := f.Preds()
		merged := false
		for _, b := range f.Blocks {
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			c := t.Succs[0]
			if c == b || c == f.Entry() || len(preds[c]) != 1 {
				continue
			}
			if len(c.Phis()) > 0 {
				continue // removeSinglePredPhis will clear these first
			}
			// Splice: drop b's br, append c's instructions.
			b.Instrs = b.Instrs[:len(b.Instrs)-1]
			for _, in := range c.Instrs {
				in.Blk = b
				b.Instrs = append(b.Instrs, in)
			}
			// Successor phis referring to c now come from b.
			for _, s := range b.Succs() {
				for _, phi := range s.Phis() {
					for i, ib := range phi.Incoming {
						if ib == c {
							phi.Incoming[i] = b
						}
					}
				}
			}
			c.Instrs = nil
			f.RemoveBlock(c)
			cx.Stats.BlocksMerged++
			n++
			merged = true
			break // CFG changed; recompute preds
		}
		if !merged {
			return n
		}
	}
}

// forwardEmptyBlocks redirects edges through blocks that contain only an
// unconditional branch.
func forwardEmptyBlocks(f *ir.Function) int {
	n := 0
	for {
		preds := f.Preds()
		forwarded := false
		for _, b := range f.Blocks {
			if b == f.Entry() || len(b.Instrs) != 1 {
				continue
			}
			t := b.Term()
			if t == nil || t.Op != ir.OpBr {
				continue
			}
			dst := t.Succs[0]
			if dst == b {
				continue
			}
			// Every predecessor's edge to b is redirected to dst, carrying
			// b's phi contribution along. Skip preds that already branch
			// to dst with a conflicting phi value.
			ok := true
			for _, p := range preds[b] {
				alreadyPred := false
				for _, s := range p.Succs() {
					if s == dst {
						alreadyPred = true
					}
				}
				if alreadyPred {
					for _, phi := range dst.Phis() {
						vb := phi.PhiIncoming(b)
						vp := phi.PhiIncoming(p)
						if vb == nil || vp == nil || !sameValue(vb, vp) {
							ok = false
						}
					}
				}
			}
			if !ok || len(preds[b]) == 0 {
				continue
			}
			for _, phi := range dst.Phis() {
				vb := phi.PhiIncoming(b)
				phi.RemovePhiIncoming(b)
				for _, p := range preds[b] {
					if phi.PhiIncoming(p) == nil {
						phi.SetPhiIncoming(p, vb)
					}
				}
			}
			for _, p := range preds[b] {
				pt := p.Term()
				for i, s := range pt.Succs {
					if s == b {
						pt.Succs[i] = dst
					}
				}
			}
			b.Instrs = nil
			f.RemoveBlock(b)
			n++
			forwarded = true
			break
		}
		if !forwarded {
			return n
		}
	}
}
