package passes

import (
	"fmt"

	"overify/internal/ir"
)

// InsertChecks adds runtime checks ahead of potentially-trapping
// operations: division/remainder by zero, shifts by the operand width or
// more, and out-of-bounds element accesses where the underlying object
// is statically known. The paper (§3, "Runtime checks") argues this
// makes verification *simpler*: every class of illegal behavior becomes
// the single property "the program does not crash", which a symbolic
// executor checks natively at each Check instruction.
// Checks are straight-line instruction insertions: the CFG analyses
// survive.
func InsertChecks() Pass {
	return funcPass{name: "checks", preserves: AllAnalyses, run: insertChecksFunc}
}

func insertChecksFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("checks", f)
	changed := false
	for _, b := range f.Blocks {
		// Collect first: inserting while iterating would invalidate the
		// index math.
		var work []*ir.Instr
		for _, in := range b.Instrs {
			work = append(work, in)
		}
		for _, in := range work {
			switch in.Op {
			case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
				t := in.Typ.(ir.IntType)
				if c, ok := in.Args[1].(*ir.Const); ok && !c.IsZero() {
					continue // trivially safe
				}
				cmp := &ir.Instr{Op: ir.OpNe, Typ: ir.I1,
					Args: []ir.Value{in.Args[1], ir.ConstInt(t, 0)}}
				f.ClaimID(cmp)
				b.InsertBefore(cmp, in)
				chk := &ir.Instr{Op: ir.OpCheck, Typ: ir.Void, Kind: ir.CheckDivByZero,
					Args: []ir.Value{cmp}, Msg: fmt.Sprintf("%s in @%s", in.Op, f.Name)}
				f.ClaimID(chk)
				b.InsertBefore(chk, in)
				cx.Stats.ChecksInserted++
				changed = true

			case ir.OpShl, ir.OpLShr, ir.OpAShr:
				t := in.Typ.(ir.IntType)
				if c, ok := in.Args[1].(*ir.Const); ok && c.Val < uint64(t.Bits) {
					continue
				}
				if _, ok := in.Args[1].(*ir.Const); ok {
					continue // constant oversized shift: defined as 0/sign-fill
				}
				cmp := &ir.Instr{Op: ir.OpULt, Typ: ir.I1,
					Args: []ir.Value{in.Args[1], ir.ConstInt(t, uint64(t.Bits))}}
				f.ClaimID(cmp)
				b.InsertBefore(cmp, in)
				chk := &ir.Instr{Op: ir.OpCheck, Typ: ir.Void, Kind: ir.CheckShift,
					Args: []ir.Value{cmp}, Msg: fmt.Sprintf("shift amount in @%s", f.Name)}
				f.ClaimID(chk)
				b.InsertBefore(chk, in)
				cx.Stats.ChecksInserted++
				changed = true

			case ir.OpLoad, ir.OpStore:
				ptrIdx := 0
				if in.Op == ir.OpStore {
					ptrIdx = 1
				}
				base, idx, count, ok := knownObjectAccess(in.Args[ptrIdx])
				if !ok {
					continue
				}
				_ = base
				if c, okc := idx.(*ir.Const); okc && c.Val < uint64(count) {
					continue // statically in bounds
				}
				cmp := &ir.Instr{Op: ir.OpULt, Typ: ir.I1,
					Args: []ir.Value{idx, ir.ConstInt(ir.I64, uint64(count))}}
				f.ClaimID(cmp)
				b.InsertBefore(cmp, in)
				chk := &ir.Instr{Op: ir.OpCheck, Typ: ir.Void, Kind: ir.CheckBounds,
					Args: []ir.Value{cmp}, Msg: fmt.Sprintf("%s bounds in @%s", in.Op, f.Name)}
				f.ClaimID(chk)
				b.InsertBefore(chk, in)
				cx.Stats.ChecksInserted++
				changed = true
			}
		}
	}
	return changed
}

// knownObjectAccess recognizes a pointer operand of the form
// gep(alloca|global, idx) (or the bare object, idx 0) and returns the
// index value and the object's element count.
func knownObjectAccess(p ir.Value) (base ir.Value, idx ir.Value, count int64, ok bool) {
	switch x := p.(type) {
	case *ir.Global:
		return x, ir.ConstInt(ir.I64, 0), x.Count, true
	case *ir.Instr:
		switch x.Op {
		case ir.OpAlloca:
			return x, ir.ConstInt(ir.I64, 0), x.Count, true
		case ir.OpGEP:
			switch b := x.Args[0].(type) {
			case *ir.Global:
				return b, x.Args[1], b.Count, true
			case *ir.Instr:
				if b.Op == ir.OpAlloca {
					return b, x.Args[1], b.Count, true
				}
			}
		}
	}
	return nil, nil, 0, false
}
