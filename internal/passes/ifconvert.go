package passes

import "overify/internal/ir"

// IfConvert replaces conditional branches over side-effect-free code with
// speculative straight-line code and select instructions — the transform
// that produces the paper's Listing 2: wc's loop body with every branch
// removed. GCC/LLVM perform it only when the speculated work is cheaper
// than a branch (a handful of instructions); under -OVERIFY "this
// simplification is pursued more aggressively, because the cost of a
// branch is higher" (§3) — each removed branch halves the number of
// paths a symbolic executor must explore through the region.
//
// Patterns handled (A's terminator is condbr(c, T, F)):
//
//	diamond:  T and F are distinct single-pred blocks, both pure, both
//	          jumping to the same J.
//	triangle: T is pure and single-pred with unique successor F (or
//	          symmetrically F jumps to T).
//
// Phi nodes in the join block become selects on c.
// Converting a branch removes blocks and edges: preserves nothing.
func IfConvert() Pass {
	return funcPass{name: "ifconvert", preserves: NoAnalyses, run: ifConvertFunc}
}

func ifConvertFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("ifconvert", f)
	changed := false
	for rounds := 0; rounds < 100; rounds++ {
		if !ifConvertOne(f, cx) {
			break
		}
		changed = true
	}
	return changed
}

// speculable reports whether a block's non-terminator instructions can
// be executed unconditionally, and their cost.
func speculable(b *ir.Block, cost *CostModel) (int, bool) {
	n := 0
	for _, in := range b.Instrs {
		if in.IsTerminator() {
			continue
		}
		if in.Op == ir.OpPhi {
			return 0, false // handled only in the join block
		}
		if !isPure(in) {
			// Loads may be speculated only if the model explicitly
			// allows potentially-trapping speculation.
			if in.Op == ir.OpLoad && cost.SpeculateLoads {
				n++
				continue
			}
			return 0, false
		}
		n++
	}
	return n, true
}

func singlePred(preds map[*ir.Block][]*ir.Block, b *ir.Block, p *ir.Block) bool {
	return len(preds[b]) == 1 && preds[b][0] == p
}

func ifConvertOne(f *ir.Function, cx *Context) bool {
	preds := f.Preds()
	budget := cx.Cost.SpeculationBudget
	for _, a := range f.Blocks {
		t := a.Term()
		if t == nil || t.Op != ir.OpCondBr {
			continue
		}
		cond := t.Args[0]
		tb, fb := t.Succs[0], t.Succs[1]
		if tb == fb {
			continue
		}

		// Diamond.
		if singlePred(preds, tb, a) && singlePred(preds, fb, a) {
			tTerm, fTerm := tb.Term(), fb.Term()
			if tTerm != nil && fTerm != nil && tTerm.Op == ir.OpBr && fTerm.Op == ir.OpBr &&
				tTerm.Succs[0] == fTerm.Succs[0] {
				join := tTerm.Succs[0]
				if join == a || join == tb || join == fb {
					continue
				}
				ct, okT := speculable(tb, &cx.Cost)
				cf, okF := speculable(fb, &cx.Cost)
				if okT && okF && ct+cf <= budget {
					convertDiamond(f, a, tb, fb, join, cond)
					cx.Stats.BranchesConverted++
					return true
				}
			}
		}

		// Triangle with the "then" side as the speculated block.
		if singlePred(preds, tb, a) {
			tTerm := tb.Term()
			if tTerm != nil && tTerm.Op == ir.OpBr && tTerm.Succs[0] == fb && fb != a {
				if ct, ok := speculable(tb, &cx.Cost); ok && ct <= budget {
					convertTriangle(f, a, tb, fb, cond, true)
					cx.Stats.BranchesConverted++
					return true
				}
			}
		}
		// Triangle with the "else" side speculated.
		if singlePred(preds, fb, a) {
			fTerm := fb.Term()
			if fTerm != nil && fTerm.Op == ir.OpBr && fTerm.Succs[0] == tb && tb != a {
				if cf, ok := speculable(fb, &cx.Cost); ok && cf <= budget {
					convertTriangle(f, a, fb, tb, cond, false)
					cx.Stats.BranchesConverted++
					return true
				}
			}
		}

		// Branch folding to a common destination (LLVM's
		// FoldBranchToCommonDest): short-circuit cascades produce
		//   A: br cA, J, B          B: br cB, J, C
		// which merges into A: br (cA|cB), J, C — and symmetrically for
		// the && shape. This is what reduces an || chain to arithmetic.
		if foldCommonDest(f, preds, a, cond, tb, fb, budget, cx) {
			cx.Stats.BranchesConverted++
			return true
		}
	}
	return false
}

func foldCommonDest(f *ir.Function, preds map[*ir.Block][]*ir.Block,
	a *ir.Block, cond ir.Value, tb, fb *ir.Block, budget int, cx *Context) bool {
	try := func(j, b *ir.Block, orShape bool) bool {
		if !singlePred(preds, b, a) || b == j || j == a {
			return false
		}
		bt := b.Term()
		if bt == nil || bt.Op != ir.OpCondBr {
			return false
		}
		var other *ir.Block
		if orShape {
			// A: br cA, J, B ; B: br cB, J, other
			if bt.Succs[0] != j {
				return false
			}
			other = bt.Succs[1]
		} else {
			// A: br cA, B, J ; B: br cB, other, J
			if bt.Succs[1] != j {
				return false
			}
			other = bt.Succs[0]
		}
		if other == a || other == b {
			return false
		}
		cost, ok := speculable(b, &cx.Cost)
		if !ok || cost > budget {
			return false
		}
		cB := bt.Args[0]

		// Splice B's body into A, build the merged condition, rewire.
		a.Instrs = a.Instrs[:len(a.Instrs)-1] // drop A's condbr
		moveBody(a, b)
		bd := ir.NewBuilder(f, a)
		var merged ir.Value
		if orShape {
			merged = bd.Bin(ir.OpOr, cond, cB)
		} else {
			merged = bd.Bin(ir.OpAnd, cond, cB)
		}
		// J's phis: the edge from A now covers both old edges; on it the
		// value is vA when cA decided (true for or, false for and), else
		// vB.
		for _, phi := range j.Phis() {
			vA := phi.PhiIncoming(a)
			vB := phi.PhiIncoming(b)
			phi.RemovePhiIncoming(b)
			if vA == nil && vB == nil {
				continue
			}
			var repl ir.Value
			switch {
			case vA == nil:
				repl = vB
			case vB == nil || sameValue(vA, vB):
				repl = vA
			case orShape:
				repl = bd.Select(cond, vA, vB)
			default:
				repl = bd.Select(cond, vB, vA)
			}
			phi.SetPhiIncoming(a, repl)
		}
		// other's phis: the edge previously from B now comes from A.
		for _, phi := range other.Phis() {
			vB := phi.PhiIncoming(b)
			phi.RemovePhiIncoming(b)
			if vB != nil && phi.PhiIncoming(a) == nil {
				phi.SetPhiIncoming(a, vB)
			}
		}
		if orShape {
			bd.CondBr(merged, j, other)
		} else {
			bd.CondBr(merged, other, j)
		}
		f.RemoveBlock(b)
		return true
	}
	if try(tb, fb, true) {
		return true
	}
	return try(fb, tb, false)
}

// moveBody appends b's non-terminator instructions to a (before a's
// terminator position — the caller has already removed a's terminator).
func moveBody(a, b *ir.Block) {
	for _, in := range b.Instrs {
		if in.IsTerminator() {
			continue
		}
		in.Blk = a
		a.Instrs = append(a.Instrs, in)
	}
	b.Instrs = nil
}

func convertDiamond(f *ir.Function, a, tb, fb, join *ir.Block, cond ir.Value) {
	// Remove a's condbr, splice both sides, emit selects, then br join.
	a.Instrs = a.Instrs[:len(a.Instrs)-1]
	moveBody(a, tb)
	moveBody(a, fb)
	bd := ir.NewBuilder(f, a)
	for _, phi := range join.Phis() {
		vt := phi.PhiIncoming(tb)
		vf := phi.PhiIncoming(fb)
		phi.RemovePhiIncoming(tb)
		phi.RemovePhiIncoming(fb)
		var repl ir.Value
		if sameValue(vt, vf) {
			repl = vt
		} else {
			repl = bd.Select(cond, vt, vf)
		}
		phi.SetPhiIncoming(a, repl)
	}
	bd.Br(join)
	f.RemoveBlock(tb)
	f.RemoveBlock(fb)
	// Join phis that now have a single pred collapse later in
	// simplifycfg; nothing further needed here.
}

// convertTriangle handles A->(spec)->join and A->join directly.
// specIsThen says whether the speculated block is the true successor.
func convertTriangle(f *ir.Function, a, spec, join *ir.Block, cond ir.Value, specIsThen bool) {
	a.Instrs = a.Instrs[:len(a.Instrs)-1]
	moveBody(a, spec)
	bd := ir.NewBuilder(f, a)
	for _, phi := range join.Phis() {
		vs := phi.PhiIncoming(spec)
		va := phi.PhiIncoming(a)
		phi.RemovePhiIncoming(spec)
		var repl ir.Value
		switch {
		case vs == nil && va == nil:
			continue
		case sameValue(vs, va):
			repl = vs
		case specIsThen:
			repl = bd.Select(cond, vs, va)
		default:
			repl = bd.Select(cond, va, vs)
		}
		phi.SetPhiIncoming(a, repl)
	}
	bd.Br(join)
	f.RemoveBlock(spec)
}
