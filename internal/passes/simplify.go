package passes

import (
	"overify/internal/ir"
)

// Simplify is the instruction-combining pass: constant folding, algebraic
// identities, cast and comparison chains, select and phi degeneration.
// The paper's "Instruction simplification" section notes these are "good
// for execution speed, but can be even better for verification": every
// folded instruction is one the symbolic executor never interprets and
// one fewer term in its path constraints.
// Folding replaces and deletes instructions but never rewrites a
// terminator's successors (simplifycfg does that), so the CFG analyses
// survive.
func Simplify() Pass {
	return funcPass{name: "simplify", preserves: AllAnalyses, run: simplifyFunc}
}

func simplifyFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("simplify", f)
	changed := false
	// Iterate to a fixpoint: folding one instruction can expose more.
	for round := 0; round < 50; round++ {
		n := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Blk == nil {
					continue // removed this round
				}
				if v := simplifyInstr(f, in); v != nil {
					ir.ReplaceUses(f, in, v)
					in.Blk.Remove(in)
					n++
				}
			}
		}
		if n == 0 {
			break
		}
		cx.Stats.InstrsFolded += n
		changed = true
	}
	return changed
}

// simplifyInstr returns a replacement value for in, or nil if it cannot
// be simplified away.
func simplifyInstr(f *ir.Function, in *ir.Instr) ir.Value {
	switch {
	case in.Op.IsBinary():
		return simplifyBinary(in)
	case in.Op.IsCmp():
		return simplifyCmp(in)
	}
	switch in.Op {
	case ir.OpSelect:
		return simplifySelect(in)
	case ir.OpZExt, ir.OpSExt, ir.OpTrunc:
		return simplifyCast(in)
	case ir.OpPhi:
		return simplifyPhi(in)
	case ir.OpGEP:
		// gep p, 0 -> p
		if c, ok := in.Args[1].(*ir.Const); ok && c.IsZero() {
			return in.Args[0]
		}
		// gep (gep p, a), b -> gep p, a+b only when a+b is constant
		// (otherwise we would need to insert an add instruction).
		if base, ok := in.Args[0].(*ir.Instr); ok && base.Op == ir.OpGEP {
			c1, ok1 := base.Args[1].(*ir.Const)
			c2, ok2 := in.Args[1].(*ir.Const)
			if ok1 && ok2 {
				in.Args[0] = base.Args[0]
				in.Args[1] = ir.ConstInt(ir.I64, c1.Val+c2.Val)
				return nil // simplified in place; keep instruction
			}
		}
	}
	return nil
}

func constOf(v ir.Value) (*ir.Const, bool) {
	c, ok := v.(*ir.Const)
	return c, ok
}

func simplifyBinary(in *ir.Instr) ir.Value {
	t := in.Typ.(ir.IntType)
	a, aConst := constOf(in.Args[0])
	b, bConst := constOf(in.Args[1])

	// Canonicalize constants to the right for commutative ops.
	if aConst && !bConst && in.Op.IsCommutative() {
		in.Args[0], in.Args[1] = in.Args[1], in.Args[0]
		a, aConst = constOf(in.Args[0])
		b, bConst = constOf(in.Args[1])
	}

	if aConst && bConst {
		if r, ok := ir.EvalBin(in.Op, t.Bits, a.Val, b.Val); ok {
			return ir.ConstInt(t, r)
		}
		return nil // division by constant zero: keep the trap
	}

	x := in.Args[0]
	sameOperands := in.Args[0] == in.Args[1]

	switch in.Op {
	case ir.OpAdd:
		if bConst && b.IsZero() {
			return x
		}
	case ir.OpSub:
		if bConst && b.IsZero() {
			return x
		}
		if sameOperands {
			return ir.ConstInt(t, 0)
		}
	case ir.OpMul:
		if bConst && b.IsZero() {
			return ir.ConstInt(t, 0)
		}
		if bConst && b.IsOne() {
			return x
		}
	case ir.OpUDiv, ir.OpSDiv:
		if bConst && b.IsOne() {
			return x
		}
	case ir.OpURem:
		if bConst && b.IsOne() {
			return ir.ConstInt(t, 0)
		}
	case ir.OpAnd:
		if bConst && b.IsZero() {
			return ir.ConstInt(t, 0)
		}
		if bConst && b.IsAllOnes() {
			return x
		}
		if sameOperands {
			return x
		}
	case ir.OpOr:
		if bConst && b.IsZero() {
			return x
		}
		if bConst && b.IsAllOnes() {
			return ir.ConstInt(t, b.Val)
		}
		if sameOperands {
			return x
		}
	case ir.OpXor:
		if bConst && b.IsZero() {
			return x
		}
		if sameOperands {
			return ir.ConstInt(t, 0)
		}
		// xor (xor x, c1), c2 -> xor x, c1^c2 ; in particular double
		// logical negation collapses.
		if inner, ok := in.Args[0].(*ir.Instr); ok && inner.Op == ir.OpXor && bConst {
			if c1, ok := constOf(inner.Args[1]); ok {
				if (c1.Val ^ b.Val) == 0 {
					return inner.Args[0]
				}
				in.Args[0] = inner.Args[0]
				in.Args[1] = ir.ConstInt(t, c1.Val^b.Val)
				return nil
			}
		}
	case ir.OpShl, ir.OpLShr, ir.OpAShr:
		if bConst && b.IsZero() {
			return x
		}
		if aConst && a.IsZero() {
			return ir.ConstInt(t, 0)
		}
	}
	return nil
}

func simplifyCmp(in *ir.Instr) ir.Value {
	// Pointer comparisons: only null == null / null != null fold.
	if _, isPtr := in.Args[0].Type().(ir.PtrType); isPtr {
		_, an := in.Args[0].(*ir.Null)
		_, bn := in.Args[1].(*ir.Null)
		if an && bn {
			return ir.Bool(in.Op == ir.OpEq || in.Op == ir.OpULe || in.Op == ir.OpUGe)
		}
		if g, ok := in.Args[0].(*ir.Global); ok && bn {
			_ = g
			return ir.Bool(in.Op == ir.OpNe || in.Op == ir.OpUGt || in.Op == ir.OpUGe)
		}
		if g, ok := in.Args[1].(*ir.Global); ok && an {
			_ = g
			return ir.Bool(in.Op == ir.OpNe || in.Op == ir.OpULt || in.Op == ir.OpULe)
		}
		if in.Args[0] == in.Args[1] {
			return ir.Bool(in.Op == ir.OpEq || in.Op == ir.OpULe || in.Op == ir.OpUGe)
		}
		return nil
	}

	bits := in.Args[0].Type().(ir.IntType).Bits
	a, aConst := constOf(in.Args[0])
	b, bConst := constOf(in.Args[1])
	if aConst && bConst {
		return ir.Bool(ir.EvalCmp(in.Op, bits, a.Val, b.Val))
	}
	if in.Args[0] == in.Args[1] {
		switch in.Op {
		case ir.OpEq, ir.OpULe, ir.OpUGe, ir.OpSLe, ir.OpSGe:
			return ir.Bool(true)
		default:
			return ir.Bool(false)
		}
	}

	// icmp (zext i1 x to N), 0  ->  x == 0 reduces to !x ; x != 0 is x.
	if z, ok := in.Args[0].(*ir.Instr); ok && z.Op == ir.OpZExt && bConst {
		if it, ok := z.Args[0].Type().(ir.IntType); ok && it.Bits == 1 {
			switch {
			case in.Op == ir.OpNe && b.IsZero():
				return z.Args[0]
			case in.Op == ir.OpEq && b.IsOne():
				return z.Args[0]
			case in.Op == ir.OpEq && b.IsZero(), in.Op == ir.OpNe && b.IsOne():
				// Build "xor x, true" in place of the compare.
				in.Op = ir.OpXor
				in.Typ = ir.I1
				in.Args = []ir.Value{z.Args[0], ir.Bool(true)}
				return nil
			}
		}
	}

	// icmp i1 x, 0 / x, 1 on boolean values.
	if bits == 1 && bConst {
		switch {
		case in.Op == ir.OpNe && b.IsZero(), in.Op == ir.OpEq && b.IsOne():
			return in.Args[0]
		case in.Op == ir.OpEq && b.IsZero(), in.Op == ir.OpNe && b.IsOne():
			in.Op = ir.OpXor
			in.Typ = ir.I1
			in.Args = []ir.Value{in.Args[0], ir.Bool(true)}
			return nil
		}
	}

	// Unsigned ranges against 0: x ult 0 is false, x uge 0 is true.
	if bConst && b.IsZero() {
		switch in.Op {
		case ir.OpULt:
			return ir.Bool(false)
		case ir.OpUGe:
			return ir.Bool(true)
		case ir.OpULe:
			in.Op = ir.OpEq
			return nil
		case ir.OpUGt:
			in.Op = ir.OpNe
			return nil
		}
	}
	return nil
}

func simplifySelect(in *ir.Instr) ir.Value {
	if c, ok := constOf(in.Args[0]); ok {
		if c.IsZero() {
			return in.Args[2]
		}
		return in.Args[1]
	}
	if in.Args[1] == in.Args[2] {
		return in.Args[1]
	}
	// select c, true, false -> c ; select c, false, true -> !c (i1 only).
	if t, ok := in.Typ.(ir.IntType); ok && t.Bits == 1 {
		tv, tc := constOf(in.Args[1])
		fv, fc := constOf(in.Args[2])
		if tc && fc {
			if tv.IsOne() && fv.IsZero() {
				return in.Args[0]
			}
			if tv.IsZero() && fv.IsOne() {
				in.Op = ir.OpXor
				in.Args = []ir.Value{in.Args[0], ir.Bool(true)}
				return nil
			}
		}
	}
	return nil
}

func simplifyCast(in *ir.Instr) ir.Value {
	from := in.Args[0].Type().(ir.IntType).Bits
	to := in.Typ.(ir.IntType).Bits
	if c, ok := constOf(in.Args[0]); ok {
		return ir.ConstInt(in.Typ.(ir.IntType), ir.EvalCast(in.Op, from, to, c.Val))
	}
	// Cast chains: trunc(zext/sext x) where the widths line up.
	if inner, ok := in.Args[0].(*ir.Instr); ok {
		innerFrom, okInner := inner.Args[0].Type().(ir.IntType) // widths of inner source
		if (inner.Op == ir.OpZExt || inner.Op == ir.OpSExt) && okInner {
			if in.Op == ir.OpTrunc {
				switch {
				case innerFrom.Bits == to:
					return inner.Args[0] // trunc(ext x) back to original width
				case innerFrom.Bits > to:
					in.Args[0] = inner.Args[0] // truncate the original directly
					return nil
				case innerFrom.Bits < to:
					// Still an extension overall; re-express as ext of source.
					in.Op = inner.Op
					in.Args[0] = inner.Args[0]
					return nil
				}
			}
			if in.Op == ir.OpZExt && inner.Op == ir.OpZExt {
				in.Args[0] = inner.Args[0] // zext(zext x) -> zext x
				return nil
			}
			if in.Op == ir.OpSExt && inner.Op == ir.OpSExt {
				in.Args[0] = inner.Args[0]
				return nil
			}
			// sext(zext x) is zext overall.
			if in.Op == ir.OpSExt && inner.Op == ir.OpZExt {
				in.Op = ir.OpZExt
				in.Args[0] = inner.Args[0]
				return nil
			}
		}
	}
	return nil
}

func simplifyPhi(in *ir.Instr) ir.Value {
	// A phi whose incoming values are all identical (ignoring self-
	// references) is that value.
	var only ir.Value
	for _, a := range in.Args {
		if a == in {
			continue
		}
		if only == nil {
			only = a
		} else if !sameValue(only, a) {
			return nil
		}
	}
	return only
}

// sameValue reports whether two operands are statically the same value.
func sameValue(a, b ir.Value) bool {
	if a == b {
		return true
	}
	ca, ok1 := a.(*ir.Const)
	cb, ok2 := b.(*ir.Const)
	if ok1 && ok2 {
		return ca.Typ == cb.Typ && ca.Val == cb.Val
	}
	na, ok1 := a.(*ir.Null)
	nb, ok2 := b.(*ir.Null)
	if ok1 && ok2 {
		return ir.SameType(na.Typ, nb.Typ)
	}
	return false
}
