package passes

import (
	"overify/internal/ir"
)

// Check-guided loop summarization: the cksum pattern. After slicing, a
// loop whose body is nothing but its own termination skeleton (the
// induction phi, the step, the exit compare) computes nothing any kept
// check can observe — but the unroller would still expand it and the
// engine would still walk every iteration. Replace the whole loop with
// its summary instead: jump from the preheader straight to the exit.
//
// No havoc values are needed: the only live-outs a loop may have here
// are none at all (any in-loop definition used outside the loop
// disqualifies it), and the exit block's phis take their loop-invariant
// incoming values, so the summary is exact, not an over-approximation.
//
// Deleting a loop is only sound if the original provably terminated on
// every path — otherwise the slice would finish paths the baseline
// never completes. We require a constant trip count (the same proof the
// unroller trusts), a unique exit edge, and a body free of side
// effects, calls, and memory traffic.
func LoopSummaryPass() Pass { return loopSummaryPass{} }

type loopSummaryPass struct{}

func (loopSummaryPass) Name() string           { return "loopsummary" }
func (loopSummaryPass) Preserves() AnalysisSet { return NoAnalyses }

func (loopSummaryPass) Run(m *ir.Module, cx *Context) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		for summarizeOneLoop(f, cx) {
			changed = true
		}
	}
	return changed
}

// summarizeOneLoop deletes at most one summarizable loop of f,
// recomputing analyses afterwards; the caller loops to a fixpoint.
func summarizeOneLoop(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("loopsummary", f)
	rel := cx.Relevance(f.Mod)
	loops := cx.Loops(f)
	for _, l := range loops {
		if !summarizable(f, l, rel) {
			continue
		}
		if _, ok := constTripCount(f, l); !ok {
			continue // termination not provable; keep the loop
		}
		ph := l.Preheader(f.Preds())
		if ph == nil {
			continue
		}
		exit := l.Exits[0]
		// Capture the exit block's incoming values along the exit edge
		// before rewiring; the summarizability scan proved they are
		// loop-invariant.
		exitPhis := exit.To.Phis()
		vals := make([]ir.Value, len(exitPhis))
		for i, phi := range exitPhis {
			vals[i] = phi.PhiIncoming(exit.From)
		}
		ir.RedirectBranch(ph, l.Header, exit.To)
		for i, phi := range exitPhis {
			if vals[i] != nil {
				phi.SetPhiIncoming(ph, vals[i])
			}
		}
		cx.Invalidate(f, NoAnalyses)
		cx.Stats.DeadBlocks += ir.RemoveUnreachable(f)
		cx.Stats.LoopsSummarized++
		return true
	}
	return false
}

// summarizable vets l's shape: one exit edge, a body containing only
// the termination skeleton (every non-skeleton instruction must be
// pure and irrelevant), and no value flowing out of the loop.
func summarizable(f *ir.Function, l *ir.Loop, rel *Relevance) bool {
	if len(l.Exits) != 1 {
		return false
	}
	exit := l.Exits[0]
	// The backward closure of the exit branch inside the loop is the
	// termination skeleton the summary deletes along with the body.
	skeleton := make(map[*ir.Instr]bool)
	var grow func(in *ir.Instr)
	grow = func(in *ir.Instr) {
		if in == nil || skeleton[in] || in.Blk == nil || !l.Blocks[in.Blk] {
			return
		}
		skeleton[in] = true
		for _, a := range in.Args {
			if ai, ok := a.(*ir.Instr); ok {
				grow(ai)
			}
		}
	}
	grow(exit.From.Term())

	for b := range l.Blocks {
		t := b.Term()
		if t == nil {
			return false
		}
		if b == exit.From {
			if t.Op != ir.OpCondBr {
				return false
			}
		} else if t.Op != ir.OpBr {
			return false // a second conditional branch is not skeleton
		}
		for _, in := range b.Instrs {
			if in.IsTerminator() {
				continue
			}
			if skeleton[in] {
				// Skeleton members must still be side-effect free: a
				// memory-based counter (pre-mem2reg) cannot be deleted.
				if !isPure(in) && in.Op != ir.OpPhi {
					return false
				}
				continue
			}
			if !isPure(in) && in.Op != ir.OpPhi {
				return false
			}
			if rel.Relevant(in) {
				return false // relevant non-skeleton work lives here
			}
		}
	}
	// No definition may escape the loop — neither through ordinary uses
	// nor through exit-block phis.
	for _, b := range f.Blocks {
		if l.Blocks[b] {
			continue
		}
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if definedInLoop(l, a) {
					return false
				}
			}
		}
	}
	return true
}
