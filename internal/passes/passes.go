// Package passes implements the optimization passes that -OVERIFY
// composes (paper §3): SSA construction (mem2reg), instruction
// simplification, CSE, dead-code elimination, CFG simplification, jump
// threading, function inlining, loop-invariant code motion, loop
// unswitching, loop unrolling, if-conversion (branch → select), runtime
// check insertion, and range annotation.
//
// Every pass is tuned by a CostModel. The paper's central claim is that
// verification wants different cost constants than a CPU: a conditional
// branch that costs ~1 cycle on hardware multiplies path counts in a
// symbolic executor. Pipelines in internal/pipeline instantiate the same
// passes with CPU-oriented (-O2/-O3) or verifier-oriented (-OVERIFY)
// models.
package passes

import (
	"fmt"

	"overify/internal/ir"
)

// CostModel parameterizes pass aggressiveness. The zero value is useless;
// use one of the pipeline presets.
type CostModel struct {
	// BranchCost is the relative cost of a conditional branch. CPUs: ~1.
	// Symbolic execution: each branch may double the path count, so
	// -OVERIFY uses a large value. If-conversion speculates a side while
	// speculated-instruction-cost <= BranchCost * SpeculationBudget.
	BranchCost int

	// SpeculationBudget is the maximum number of instructions to
	// speculate per converted branch side.
	SpeculationBudget int

	// SpeculateLoads permits if-conversion to hoist loads into
	// unconditional position. This can turn a path that never loaded out
	// of bounds into one that traps, so it is off in all presets; it
	// exists to measure the paper's remark that some "optimizations" are
	// only safe for analysis purposes.
	SpeculateLoads bool

	// InlineThreshold is the maximum callee size (in IR instructions)
	// considered for inlining.
	InlineThreshold int

	// InlineGrowthCap bounds the size a caller may reach through
	// inlining, in instructions.
	InlineGrowthCap int

	// InlineRounds bounds repeated inlining sweeps (handles call chains).
	InlineRounds int

	// UnrollMaxTrip is the largest constant trip count fully unrolled.
	UnrollMaxTrip int

	// UnrollGrowthCap bounds instructions added by unrolling one loop.
	UnrollGrowthCap int

	// UnswitchMaxSize is the largest loop body (instructions) cloned by
	// one unswitching step.
	UnswitchMaxSize int

	// UnswitchMaxClones bounds unswitching steps per function.
	UnswitchMaxClones int
}

// Stats aggregates pass counters across a pipeline run. The Table 3
// columns of the paper come directly from here.
type Stats struct {
	FunctionsInlined  int // call sites inlined ("# functions inlined")
	LoopsUnswitched   int // "# loops unswitched"
	LoopsUnrolled     int // loops fully unrolled away
	LoopsPeeled       int // individual iterations peeled
	BranchesConverted int // "# branches converted" by if-conversion

	AllocasPromoted int
	InstrsFolded    int
	InstrsCSEd      int
	InstrsHoisted   int
	JumpsThreaded   int
	BlocksMerged    int
	DeadInstrs      int
	DeadBlocks      int
	ChecksInserted  int
	RangesAttached  int

	InstrsSliced    int // instructions deleted by the slice pass
	BranchesSliced  int // conditional branches flattened by the slice pass
	FuncsSliced     int // whole functions deleted by the slice pass
	LoopsSummarized int // check-irrelevant loops replaced by summaries
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.FunctionsInlined += other.FunctionsInlined
	s.LoopsUnswitched += other.LoopsUnswitched
	s.LoopsUnrolled += other.LoopsUnrolled
	s.LoopsPeeled += other.LoopsPeeled
	s.BranchesConverted += other.BranchesConverted
	s.AllocasPromoted += other.AllocasPromoted
	s.InstrsFolded += other.InstrsFolded
	s.InstrsCSEd += other.InstrsCSEd
	s.InstrsHoisted += other.InstrsHoisted
	s.JumpsThreaded += other.JumpsThreaded
	s.BlocksMerged += other.BlocksMerged
	s.DeadInstrs += other.DeadInstrs
	s.DeadBlocks += other.DeadBlocks
	s.ChecksInserted += other.ChecksInserted
	s.RangesAttached += other.RangesAttached
	s.InstrsSliced += other.InstrsSliced
	s.BranchesSliced += other.BranchesSliced
	s.FuncsSliced += other.FuncsSliced
	s.LoopsSummarized += other.LoopsSummarized
}

// Context carries the cost model, statistics and the per-function
// analysis cache through a pipeline run. The zero value (plus a cost
// model) is a valid uncached context: Dom/Loops recompute on every
// call, which is what the fresh-analysis baseline and the pass unit
// tests use.
type Context struct {
	Cost  CostModel
	Stats Stats

	// SliceChecks is the check subset the slice/loopsummary passes
	// target (zero value: all checks). SliceEntry names the function
	// whose reachable closure the slicer keeps ("" defaults to umain).
	SliceChecks ir.CheckSet
	SliceEntry  string

	// analyses caches Dom/Loops per function; nil disables caching.
	// See analysis.go.
	analyses map[*ir.Function]*analysisEntry
	// relevance caches the module-wide check-relevance closure; shared
	// (with a lock) by child contexts. See analysis.go.
	relevance *relevanceBox
}

// NewContext returns a context with analysis caching enabled.
func NewContext(cost CostModel) *Context {
	cx := &Context{Cost: cost}
	cx.EnableAnalysisCache()
	return cx
}

// child derives a per-function context sharing the parent's cost model
// and analysis cache but accumulating its own Stats, so the parallel
// manager can merge function results in deterministic module order.
func (cx *Context) child() *Context {
	return &Context{
		Cost:        cx.Cost,
		SliceChecks: cx.SliceChecks,
		SliceEntry:  cx.SliceEntry,
		analyses:    cx.analyses,
		relevance:   cx.relevance,
	}
}

// Pass transforms a module in place, returning whether anything
// changed, and declares which cached analyses survive a changed run
// (LLVM-NewPM-style PreservedAnalyses, reduced to the two analyses
// this compiler has). A pass whose mutations are instruction-only may
// declare AllAnalyses and call Context.Invalidate itself at the rare
// points where it does touch the CFG (DCE and LICM do exactly that).
type Pass interface {
	Name() string
	Run(m *ir.Module, cx *Context) bool
	Preserves() AnalysisSet
}

// FunctionPass is a Pass that works one function at a time with no
// cross-function effects. The manager runs FunctionPasses across
// functions in a bounded worker pool and drives fixpoints over them as
// a per-function worklist.
type FunctionPass interface {
	Pass
	RunOnFunc(f *ir.Function, cx *Context) bool
}

// funcPass adapts a per-function transform into a Pass.
type funcPass struct {
	name      string
	preserves AnalysisSet
	run       func(f *ir.Function, cx *Context) bool
}

func (p funcPass) Name() string           { return p.name }
func (p funcPass) Preserves() AnalysisSet { return p.preserves }

func (p funcPass) RunOnFunc(f *ir.Function, cx *Context) bool {
	return p.run(f, cx)
}

func (p funcPass) Run(m *ir.Module, cx *Context) bool {
	changed := false
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		if p.run(f, cx) {
			changed = true
			cx.Invalidate(f, p.preserves)
		}
	}
	return changed
}

// Fixpoint runs a sequence of passes repeatedly until a full round
// reports no change (or maxRounds is hit). Cleanup passes expose new
// opportunities for structural passes and vice versa, so pipelines
// compose them with this combinator instead of guessing a fixed length.
// Under the Manager, a fixpoint over FunctionPasses becomes a
// per-function worklist: each function iterates until *it* stops
// changing and is then skipped, instead of riding along for every
// other function's remaining rounds.
func Fixpoint(maxRounds int, ps ...Pass) Pass {
	return fixpointPass{max: maxRounds, seq: ps}
}

type fixpointPass struct {
	max int
	seq []Pass
}

func (p fixpointPass) Name() string { return "fixpoint" }

// Rounds is the round cap; the Manager reads it to drive the worklist.
func (p fixpointPass) Rounds() int { return p.max }

// Body is the pass sequence iterated each round.
func (p fixpointPass) Body() []Pass { return p.seq }

// Preserves is the intersection of the body's declarations: what every
// inner pass keeps valid, the whole fixpoint keeps valid.
func (p fixpointPass) Preserves() AnalysisSet {
	set := AllAnalyses
	for _, inner := range p.seq {
		set &= inner.Preserves()
	}
	return set
}

func (p fixpointPass) Run(m *ir.Module, cx *Context) bool {
	changed := false
	for round := 0; round < p.max; round++ {
		any := false
		for _, inner := range p.seq {
			if inner.Run(m, cx) {
				any = true
			}
		}
		if !any {
			break
		}
		changed = true
	}
	return changed
}

// isPure reports whether an instruction can be removed if unused and
// duplicated or reordered freely (no side effects, cannot trap).
// Division and remainder trap on zero, so they are not pure.
func isPure(in *ir.Instr) bool {
	switch in.Op {
	case ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem:
		return false
	case ir.OpSelect, ir.OpZExt, ir.OpSExt, ir.OpTrunc, ir.OpGEP, ir.OpPhi:
		return true
	case ir.OpPtrDiff:
		return false // traps across objects
	case ir.OpLoad:
		return false // may trap, reads memory
	}
	return in.Op.IsBinary() || in.Op.IsCmp()
}

// removableIfDead reports whether an unused instruction may be deleted.
// Unused loads and divisions are removable under MiniC's semantics
// (their traps are considered detectable by the checks pass instead),
// mirroring LLVM treating them as removable when dead.
func removableIfDead(in *ir.Instr) bool {
	if isPure(in) {
		return true
	}
	switch in.Op {
	case ir.OpLoad, ir.OpUDiv, ir.OpSDiv, ir.OpURem, ir.OpSRem, ir.OpPtrDiff, ir.OpAlloca:
		return true
	}
	return false
}

func dumpOnPanic(name string, f *ir.Function) {
	if r := recover(); r != nil {
		panic(fmt.Sprintf("pass %s on @%s: %v\n%s", name, f.Name, r, f.String()))
	}
}
