package passes_test

import (
	"strings"
	"testing"

	"overify/internal/frontend"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/passes"
	"overify/internal/pipeline"
)

// run compiles src, applies the pass list, verifies the IR, and returns
// the module.
func run(t *testing.T, src string, seq ...passes.Pass) (*ir.Module, *passes.Context) {
	t.Helper()
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	cx := &passes.Context{Cost: pipeline.VerifyCost()}
	for _, p := range seq {
		p.Run(mod, cx)
		if err := ir.VerifyModule(mod); err != nil {
			t.Fatalf("after %s: %v", p.Name(), err)
		}
	}
	return mod, cx
}

// exec runs fn(args...) on the interpreter.
func exec(t *testing.T, mod *ir.Module, fn string, args ...interp.Value) int64 {
	t.Helper()
	m := interp.NewMachine(mod, interp.Options{})
	ret, err := m.Call(fn, args...)
	if err != nil {
		t.Fatalf("run %s: %v", fn, err)
	}
	return ir.SignExtend(32, ret.Bits)
}

func i32(v int64) interp.Value { return interp.IntVal(ir.I32, uint64(v)) }

func cleanup() []passes.Pass {
	return []passes.Pass{passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE()}
}

func TestMem2RegRemovesMemoryOps(t *testing.T) {
	src := `int f(int a, int b) { int x = a; int y = b; x = x + y; return x; }`
	mod, cx := run(t, src, passes.Mem2Reg())
	if cx.Stats.AllocasPromoted == 0 {
		t.Fatal("no allocas promoted")
	}
	f := mod.Func("f")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca || in.Op == ir.OpLoad || in.Op == ir.OpStore {
				t.Errorf("residual memory op %s", in)
			}
		}
	}
	if got := exec(t, mod, "f", i32(2), i32(3)); got != 5 {
		t.Errorf("f(2,3) = %d", got)
	}
}

func TestMem2RegInsertsPhis(t *testing.T) {
	src := `int f(int c) { int x = 1; if (c) { x = 2; } return x; }`
	mod, _ := run(t, src, passes.Mem2Reg())
	f := mod.Func("f")
	phis := 0
	for _, b := range f.Blocks {
		phis += len(b.Phis())
	}
	if phis == 0 {
		t.Error("expected a phi at the join")
	}
	if exec(t, mod, "f", i32(0)) != 1 || exec(t, mod, "f", i32(5)) != 2 {
		t.Error("wrong semantics after promotion")
	}
}

func TestMem2RegKeepsEscapedAllocas(t *testing.T) {
	// The array's address flows into GEP: not promotable.
	src := `int f(int i) { int a[3]; a[0] = 7; a[1] = 8; a[2] = 9; return a[i % 3]; }`
	mod, _ := run(t, src, passes.Mem2Reg())
	f := mod.Func("f")
	found := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpAlloca {
				found = true
			}
		}
	}
	if !found {
		t.Error("array alloca must survive")
	}
	if exec(t, mod, "f", i32(4)) != 8 {
		t.Error("wrong value")
	}
}

func TestSimplifyFoldsConstants(t *testing.T) {
	src := `int f(int x) { int y = x; x -= y; return x + 3 * 4 - 12; }`
	mod, _ := run(t, src, append([]passes.Pass{passes.Mem2Reg()}, cleanup()...)...)
	f := mod.Func("f")
	// The paper's §3 example: x = input(); y = x; x -= y  =>  x == 0.
	if f.NumInstrs() > 2 {
		t.Errorf("expected ~ret 0, got %d instrs:\n%s", f.NumInstrs(), f)
	}
	if exec(t, mod, "f", i32(123)) != 0 {
		t.Error("wrong fold")
	}
}

func TestSimplifyCFGFoldsConstBranch(t *testing.T) {
	src := `int f(int x) { if (1) { return x; } return 0 - x; }`
	mod, _ := run(t, src, append([]passes.Pass{passes.Mem2Reg()}, cleanup()...)...)
	if mod.Func("f").NumBranches() != 0 {
		t.Errorf("constant branch not folded:\n%s", mod.Func("f"))
	}
}

func TestIfConvertMakesSelects(t *testing.T) {
	src := `int max(int a, int b) { int m; if (a > b) { m = a; } else { m = b; } return m; }`
	mod, _ := run(t, src,
		append(append([]passes.Pass{passes.Mem2Reg()}, cleanup()...),
			passes.IfConvert(), passes.SimplifyCFG())...)
	f := mod.Func("max")
	if f.NumBranches() != 0 {
		t.Errorf("branch not converted:\n%s", f)
	}
	hasSelect := false
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpSelect {
				hasSelect = true
			}
		}
	}
	if !hasSelect {
		t.Error("no select produced")
	}
	if exec(t, mod, "max", i32(3), i32(9)) != 9 || exec(t, mod, "max", i32(9), i32(3)) != 9 {
		t.Error("max broken")
	}
}

func TestIfConvertRespectsSideEffects(t *testing.T) {
	// The store in the arm must prevent speculation.
	src := `
	int g;
	int f(int c) { if (c) { g = 1; } return g; }`
	mod, cx := run(t, src,
		append(append([]passes.Pass{passes.Mem2Reg()}, cleanup()...), passes.IfConvert())...)
	if cx.Stats.BranchesConverted != 0 {
		t.Error("must not speculate stores")
	}
	if mod.Func("f").NumBranches() != 1 {
		t.Error("branch should remain")
	}
}

func TestInlineReplacesCall(t *testing.T) {
	src := `
	int sq(int x) { return x * x; }
	int f(int a) { return sq(a) + sq(a + 1); }`
	mod, cx := run(t, src, passes.Inline())
	if cx.Stats.FunctionsInlined != 2 {
		t.Errorf("inlined %d call sites, want 2", cx.Stats.FunctionsInlined)
	}
	for _, b := range mod.Func("f").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpCall {
				t.Error("call should be gone")
			}
		}
	}
	if exec(t, mod, "f", i32(3)) != 25 {
		t.Error("wrong result after inlining")
	}
}

func TestInlineRespectsThreshold(t *testing.T) {
	src := `
	int sq(int x) { return x * x; }
	int f(int a) { return sq(a); }`
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	cost := pipeline.CPUCost()
	cost.InlineThreshold = 1 // nothing fits
	cx := &passes.Context{Cost: cost}
	passes.Inline().Run(mod, cx)
	if cx.Stats.FunctionsInlined != 0 {
		t.Error("threshold ignored")
	}
}

func TestUnrollDissolvesCountedLoop(t *testing.T) {
	src := `int f(void) { int s = 0; for (int i = 0; i < 5; i++) { s += i; } return s; }`
	mod, cx := run(t, src,
		append(append([]passes.Pass{passes.Mem2Reg()}, cleanup()...),
			passes.Unroll(), passes.Simplify(), passes.SimplifyCFG(), passes.DCE())...)
	if cx.Stats.LoopsPeeled == 0 {
		t.Fatal("nothing peeled")
	}
	f := mod.Func("f")
	if f.NumBranches() != 0 {
		t.Errorf("loop not fully unrolled:\n%s", f)
	}
	if exec(t, mod, "f") != 10 {
		t.Error("wrong sum")
	}
}

func TestUnswitchHoistsInvariantBranch(t *testing.T) {
	// The branch on `mode` is loop-invariant; its arms call putch-like
	// side effects (stores to g), so if-conversion cannot remove it.
	src := `
	int g;
	int f(int mode, int n) {
		int i = 0;
		while (i < n) {
			if (mode) { g = g + 2; } else { g = g + 1; }
			i = i + 1;
		}
		return g;
	}`
	mod, cx := run(t, src,
		append(append([]passes.Pass{passes.Mem2Reg()}, cleanup()...),
			passes.Unswitch(), passes.Simplify(), passes.SimplifyCFG(), passes.DCE())...)
	if cx.Stats.LoopsUnswitched != 1 {
		t.Fatalf("unswitched %d loops, want 1", cx.Stats.LoopsUnswitched)
	}
	// Each exec uses a fresh machine, so g starts at 0: mode=1 adds 2
	// per iteration, mode=0 adds 1.
	if exec(t, mod, "f", i32(1), i32(3)) != 6 || exec(t, mod, "f", i32(0), i32(3)) != 3 {
		t.Error("wrong semantics after unswitching")
	}
}

func TestChecksInserted(t *testing.T) {
	src := `int f(int a, int b) { return a / b; }`
	mod, cx := run(t, src, passes.Mem2Reg(), passes.InsertChecks())
	if cx.Stats.ChecksInserted == 0 {
		t.Fatal("no checks inserted")
	}
	// The check must fire before the division traps.
	m := interp.NewMachine(mod, interp.Options{})
	_, err := m.Call("f", i32(1), i32(0))
	tr, ok := err.(*interp.Trap)
	if !ok || tr.Kind != interp.TrapCheckFailed {
		t.Errorf("err = %v, want check-failed trap", err)
	}
}

func TestAnnotateAttachesRanges(t *testing.T) {
	src := `int f(unsigned char *p) { return (int)p[0] % 10; }`
	mod, cx := run(t, src,
		append([]passes.Pass{passes.Mem2Reg()}, append(cleanup(), passes.Annotate())...)...)
	if cx.Stats.RangesAttached == 0 {
		t.Fatal("no ranges attached")
	}
	// The urem result must carry [0,9].
	found := false
	for _, b := range mod.Func("f").Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpURem || in.Op == ir.OpSRem {
				if in.Meta != nil && in.Meta.Range != nil && in.Meta.Range.Hi <= 9 {
					found = true
				}
			}
		}
	}
	_ = found // the rem may fold; presence of any range suffices
}

func TestJumpThreadShortCircuit(t *testing.T) {
	// After mem2reg, the && lowering leaves a phi-of-constants branch
	// that jump threading must collapse.
	src := `int f(int a, int b) { if (a > 0 && b > 0) { return 1; } return 0; }`
	mod, cx := run(t, src,
		append(append([]passes.Pass{passes.Mem2Reg()}, cleanup()...),
			passes.JumpThread(), passes.SimplifyCFG(), passes.DCE())...)
	if cx.Stats.JumpsThreaded == 0 {
		t.Error("nothing threaded")
	}
	for _, tc := range []struct{ a, b, want int64 }{
		{1, 1, 1}, {1, 0, 0}, {0, 1, 0}, {0, 0, 0},
	} {
		if got := exec(t, mod, "f", i32(tc.a), i32(tc.b)); got != tc.want {
			t.Errorf("f(%d,%d) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestLICMHoists(t *testing.T) {
	src := `
	int f(int a, int b, int n) {
		int s = 0;
		for (int i = 0; i < n; i++) {
			s = s + a * b;
		}
		return s;
	}`
	mod, cx := run(t, src,
		append(append([]passes.Pass{passes.Mem2Reg()}, cleanup()...), passes.LICM())...)
	if cx.Stats.InstrsHoisted == 0 {
		t.Error("a*b not hoisted")
	}
	if exec(t, mod, "f", i32(3), i32(4), i32(5)) != 60 {
		t.Error("wrong result")
	}
}

// TestPipelineIdempotent: running the OVerify pipeline twice must leave
// the module unchanged the second time (a fixpoint was reached).
func TestPipelineIdempotent(t *testing.T) {
	src := strings.ReplaceAll(`
	int helper(int c) { if (c > 10) { return c - 10; } return c; }
	int f(unsigned char *p, int n) {
		int s = 0;
		for (int i = 0; i < n; i++) { s += helper((int)p[0]); }
		return s;
	}`, "\t", " ")
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pipeline.OptimizeAtLevel(mod, pipeline.OVerify); err != nil {
		t.Fatal(err)
	}
	before := mod.Func("f").NumInstrs()
	if _, err := pipeline.OptimizeAtLevel(mod, pipeline.OVerify); err != nil {
		t.Fatal(err)
	}
	after := mod.Func("f").NumInstrs()
	if after > before {
		t.Errorf("second pipeline run grew the function: %d -> %d", before, after)
	}
}
