package passes

import "overify/internal/ir"

// LICM hoists loop-invariant pure computations into the preheader. For a
// symbolic executor this removes work from *every explored iteration of
// every path*, a multiplicative saving the paper attributes to standard
// simplifications (§3, Table 2 row 1).
// Hoisting moves instructions between existing blocks, which the CFG
// analyses survive; the one CFG edit — ensurePreheader creating a
// block — invalidates through the Context at the point it happens.
func LICM() Pass {
	return funcPass{name: "licm", preserves: AllAnalyses, run: licmFunc}
}

func licmFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("licm", f)
	changed := false
	// Hoisting changes block contents but not the loop structure, so
	// one discovery pass suffices.
	dt := cx.Dom(f)
	loops := cx.Loops(f)
	// Innermost-first (deepest first) so inner-loop invariants can then
	// be hoisted further out by the enclosing loop's turn.
	for i := len(loops) - 1; i >= 0; i-- {
		l := loops[i]
		ph := ensurePreheader(cx, f, l)
		if ph == nil {
			continue
		}
		for {
			moved := 0
			for _, b := range l.BlocksInRPO(dt) {
				kept := b.Instrs[:0]
				for _, in := range b.Instrs {
					if isPure(in) && in.Op != ir.OpPhi && loopInvariant(l, in) {
						in.Blk = ph
						ph.InsertBefore(in, ph.Term())
						cx.Stats.InstrsHoisted++
						moved++
						changed = true
						continue
					}
					kept = append(kept, in)
				}
				b.Instrs = kept
			}
			if moved == 0 {
				break
			}
		}
	}
	return changed
}
