package passes

import (
	"overify/internal/ir"
)

// The slice pass deletes everything outside the check-relevance
// closure: instructions whose values cannot reach a kept check or trap,
// conditional branches no kept instruction is control-dependent on
// (flattened to unconditional branches — both arms compute nothing
// observable, so either serves), and whole functions no kept call can
// reach. It runs as a serial module pass: the relevance closure it
// consumes is module-wide, so per-function parallelism would race the
// analysis against mutation.
//
// Soundness contract (pinned by the bug-parity conformance suite):
// sliced verification reports exactly the baseline's bugs on the kept
// checks. Deleting an irrelevant branch merges the path pair that
// diverged on it, so the sliced path condition at any root is the union
// of the baseline path conditions reaching it — a bug is satisfiable
// after slicing iff it was on some baseline path.
func SlicePass() Pass { return slicePass{} }

type slicePass struct{}

func (slicePass) Name() string           { return "slice" }
func (slicePass) Preserves() AnalysisSet { return NoAnalyses }

func (slicePass) Run(m *ir.Module, cx *Context) bool {
	rel := cx.Relevance(m)
	changed := false
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		if sliceFunc(f, rel, cx) {
			changed = true
			cx.Invalidate(f, NoAnalyses)
		}
	}
	if removeUnreachableFuncs(m, cx) {
		changed = true
	}
	return changed
}

func sliceFunc(f *ir.Function, rel *Relevance, cx *Context) bool {
	defer dumpOnPanic("slice", f)
	changed := false
	for _, b := range f.Blocks {
		work := make([]*ir.Instr, len(b.Instrs))
		copy(work, b.Instrs)
		for _, in := range work {
			switch {
			case in.Op == ir.OpCondBr && !rel.Relevant(in):
				// No kept instruction is control-dependent on this branch
				// and its condition feeds nothing kept: both arms reach the
				// same relevant code, so flatten to the first.
				dropped := in.Succs[1]
				in.Op = ir.OpBr
				in.Args = nil
				in.Succs = in.Succs[:1]
				if dropped != in.Succs[0] {
					for _, phi := range dropped.Phis() {
						phi.RemovePhiIncoming(b)
					}
				}
				cx.Stats.BranchesSliced++
				changed = true

			case in.Op == ir.OpRet:
				// Returns always survive (the CFG needs its exits), but a
				// return value outside the closure is unobservable:
				// replace it with zero so the chain computing it can go.
				for i, a := range in.Args {
					ai, ok := a.(*ir.Instr)
					if !ok || rel.Relevant(ai) {
						continue
					}
					if it, ok := ai.Typ.(ir.IntType); ok {
						in.Args[i] = ir.ConstInt(it, 0)
						changed = true
					}
				}

			case !in.IsTerminator() && !rel.Relevant(in):
				b.Remove(in)
				cx.Stats.InstrsSliced++
				changed = true
			}
		}
	}
	if changed {
		cx.Stats.DeadBlocks += ir.RemoveUnreachable(f)
	}
	return changed
}

// removeUnreachableFuncs deletes every function the sliced entry can no
// longer call, declarations included. The entry defaults to umain, the
// corpus's verification entry point.
func removeUnreachableFuncs(m *ir.Module, cx *Context) bool {
	entryName := cx.SliceEntry
	if entryName == "" {
		entryName = "umain"
	}
	entry := m.Func(entryName)
	if entry == nil || entry.IsDeclaration() {
		return false
	}
	keep := make(map[*ir.Function]bool)
	var walk func(f *ir.Function)
	walk = func(f *ir.Function) {
		if keep[f] {
			return
		}
		keep[f] = true
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpCall && in.Callee != nil {
					walk(in.Callee)
				}
			}
		}
	}
	walk(entry)
	var doomed []*ir.Function
	for _, f := range m.Funcs {
		if !keep[f] {
			doomed = append(doomed, f)
		}
	}
	for _, f := range doomed {
		m.RemoveFunc(f)
		cx.Stats.FuncsSliced++
	}
	return len(doomed) > 0
}
