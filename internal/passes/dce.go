package passes

import "overify/internal/ir"

// DCE removes instructions whose results are never used and blocks that
// can never execute. Fewer instructions mean less work per path for a
// symbolic executor, and -O0 output is full of dead loads.
//
// The steady-state work is instruction-only, which preserves the CFG
// analyses; the one CFG mutation (dropping unreachable blocks) is rare
// after the first cleanup and invalidates precisely when it fires.
func DCE() Pass {
	return funcPass{name: "dce", preserves: AllAnalyses, run: dceFunc}
}

func dceFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("dce", f)
	changed := false
	if n := ir.RemoveUnreachable(f); n > 0 {
		cx.Stats.DeadBlocks += n
		cx.Invalidate(f, NoAnalyses)
		changed = true
	}
	// Iterate: removing one dead instruction can make its operands dead.
	for {
		used := make(map[ir.Value]bool)
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				for _, a := range in.Args {
					used[a] = true
				}
			}
		}
		n := 0
		for _, b := range f.Blocks {
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if !used[in] && !ir.SameType(in.Typ, ir.Void) && removableIfDead(in) {
					in.Blk = nil
					n++
					continue
				}
				kept = append(kept, in)
			}
			b.Instrs = kept
		}
		if n == 0 {
			break
		}
		cx.Stats.DeadInstrs += n
		changed = true
	}
	return changed
}
