package passes

import (
	"fmt"
	"sort"
)

// registry maps the textual pass names of -passes= pipelines (and of
// pipeline.PipelineSpec stages) onto their constructors. The names are
// the same spellings Pass.Name reports.
var registry = map[string]func() Pass{
	"mem2reg":     Mem2Reg,
	"simplify":    Simplify,
	"cse":         CSE,
	"simplifycfg": SimplifyCFG,
	"dce":         DCE,
	"jumpthread":  JumpThread,
	"licm":        LICM,
	"unswitch":    Unswitch,
	"unroll":      Unroll,
	"ifconvert":   IfConvert,
	"inline":      Inline,
	"checks":      InsertChecks,
	"annotate":    Annotate,
	"slice":       SlicePass,
	"loopsummary": LoopSummaryPass,
}

// ByName constructs the named pass, or errors with the known names.
func ByName(name string) (Pass, error) {
	ctor, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("passes: unknown pass %q (known: %v)", name, Names())
	}
	return ctor(), nil
}

// Names lists every registered pass name, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
