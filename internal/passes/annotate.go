package passes

import "overify/internal/ir"

// Annotate computes conservative unsigned value ranges for instruction
// results and attaches them as metadata. Today's compilers compute this
// information and throw it away; the paper ("Program annotations", §3)
// argues it should be preserved for verification tools, which is exactly
// what the symbolic executor does with it: a branch whose condition's
// range excludes a value needs no solver query.
// Annotation attaches metadata only: the CFG analyses survive.
func Annotate() Pass {
	return funcPass{name: "annotate", preserves: AllAnalyses, run: annotateFunc}
}

const maxU64 = ^uint64(0)

func fullRange(bits int) ir.Range { return ir.Range{Lo: 0, Hi: ir.Mask(bits, maxU64)} }

func annotateFunc(f *ir.Function, cx *Context) bool {
	defer dumpOnPanic("annotate", f)
	ranges := make(map[ir.Value]ir.Range)
	rangeOf := func(v ir.Value) (ir.Range, bool) {
		if c, ok := v.(*ir.Const); ok {
			return ir.Range{Lo: c.Val, Hi: c.Val}, true
		}
		r, ok := ranges[v]
		return r, ok
	}

	changed := false
	// A few propagation rounds in RPO pick up phi cycles conservatively.
	rpo := ir.ReversePostorder(f)
	for round := 0; round < 4; round++ {
		for _, b := range rpo {
			for _, in := range b.Instrs {
				it, isInt := in.Typ.(ir.IntType)
				if !isInt {
					continue
				}
				r, ok := deriveRange(in, it, rangeOf)
				if !ok {
					continue
				}
				old, had := ranges[in]
				if !had || old != r {
					ranges[in] = r
					changed = true
				}
			}
		}
	}

	n := 0
	for v, r := range ranges {
		in, ok := v.(*ir.Instr)
		if !ok {
			continue
		}
		full := fullRange(in.Typ.(ir.IntType).Bits)
		if r == full {
			continue // nothing learned
		}
		if in.Meta == nil {
			in.Meta = &ir.Meta{}
		}
		rr := r
		in.Meta.Range = &rr
		n++
	}
	cx.Stats.RangesAttached += n
	return changed && n > 0
}

// deriveRange computes a conservative unsigned range for in from its
// operands' ranges.
func deriveRange(in *ir.Instr, t ir.IntType, rangeOf func(ir.Value) (ir.Range, bool)) (ir.Range, bool) {
	full := fullRange(t.Bits)
	switch in.Op {
	case ir.OpZExt:
		from := in.Args[0].Type().(ir.IntType)
		if r, ok := rangeOf(in.Args[0]); ok {
			return r, true
		}
		return ir.Range{Lo: 0, Hi: ir.Mask(from.Bits, maxU64)}, true

	case ir.OpTrunc:
		if r, ok := rangeOf(in.Args[0]); ok && r.Hi <= ir.Mask(t.Bits, maxU64) {
			return r, true
		}
		return full, true

	case ir.OpAnd:
		// x & mask <= mask.
		hi := full.Hi
		if r, ok := rangeOf(in.Args[0]); ok && r.Hi < hi {
			hi = r.Hi
		}
		if r, ok := rangeOf(in.Args[1]); ok && r.Hi < hi {
			hi = r.Hi
		}
		return ir.Range{Lo: 0, Hi: hi}, true

	case ir.OpURem:
		if c, ok := in.Args[1].(*ir.Const); ok && !c.IsZero() {
			return ir.Range{Lo: 0, Hi: c.Val - 1}, true
		}

	case ir.OpUDiv:
		if r, ok := rangeOf(in.Args[0]); ok {
			return ir.Range{Lo: 0, Hi: r.Hi}, true
		}

	case ir.OpLShr:
		if c, ok := in.Args[1].(*ir.Const); ok && c.Val < uint64(t.Bits) {
			return ir.Range{Lo: 0, Hi: ir.Mask(t.Bits, maxU64) >> c.Val}, true
		}

	case ir.OpSelect:
		r1, ok1 := rangeOf(in.Args[1])
		r2, ok2 := rangeOf(in.Args[2])
		if ok1 && ok2 {
			return unionRange(r1, r2), true
		}

	case ir.OpPhi:
		var acc ir.Range
		first := true
		for _, a := range in.Args {
			r, ok := rangeOf(a)
			if !ok {
				return full, true
			}
			if first {
				acc, first = r, false
			} else {
				acc = unionRange(acc, r)
			}
		}
		if !first {
			return acc, true
		}

	case ir.OpAdd:
		r1, ok1 := rangeOf(in.Args[0])
		r2, ok2 := rangeOf(in.Args[1])
		if ok1 && ok2 {
			// Only safe if no wraparound is possible.
			if r1.Hi <= full.Hi-r2.Hi {
				return ir.Range{Lo: r1.Lo + r2.Lo, Hi: r1.Hi + r2.Hi}, true
			}
		}

	case ir.OpLoad:
		// A load of i8 is bounded by its width.
		if t.Bits < 64 {
			return full, true
		}
	}
	if in.Op.IsCmp() {
		return ir.Range{Lo: 0, Hi: 1}, true
	}
	return full, true
}

func unionRange(a, b ir.Range) ir.Range {
	lo := a.Lo
	if b.Lo < lo {
		lo = b.Lo
	}
	hi := a.Hi
	if b.Hi > hi {
		hi = b.Hi
	}
	return ir.Range{Lo: lo, Hi: hi}
}
