package passes

import "overify/internal/ir"

// Inline replaces direct calls with the callee's body. The paper's
// -OSYMBEX "aggressively inlines functions in order to benefit from
// simplifications due to function specialization" (§4): once the body is
// inlined, constant arguments fold, and the callee's branches become
// visible to unswitching and if-conversion. The CPU-oriented pipelines
// use a small InlineThreshold; -OVERIFY a very large one.
func Inline() Pass { return inlinePass{} }

type inlinePass struct{}

func (inlinePass) Name() string { return "inline" }

// Inlining splices blocks into the caller: preserves nothing. It is
// the one module pass (it reads callee bodies while rewriting the
// caller), so the manager runs it serially.
func (inlinePass) Preserves() AnalysisSet { return NoAnalyses }

func (inlinePass) Run(m *ir.Module, cx *Context) bool {
	changed := false
	rounds := cx.Cost.InlineRounds
	if rounds <= 0 {
		rounds = 1
	}
	for r := 0; r < rounds; r++ {
		any := false
		for _, f := range m.Funcs {
			if f.IsDeclaration() {
				continue
			}
			if inlineIntoFunc(f, cx) {
				cx.Invalidate(f, NoAnalyses)
				any = true
			}
		}
		if !any {
			break
		}
		changed = true
	}
	return changed
}

func inlineIntoFunc(caller *ir.Function, cx *Context) bool {
	defer dumpOnPanic("inline", caller)
	changed := false
	for {
		call := findInlinableCall(caller, cx)
		if call == nil {
			return changed
		}
		inlineCall(caller, call)
		cx.Stats.FunctionsInlined++
		changed = true
	}
}

func findInlinableCall(caller *ir.Function, cx *Context) *ir.Instr {
	callerSize := caller.NumInstrs()
	for _, b := range caller.Blocks {
		for _, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			callee := in.Callee
			if callee == caller || callee.IsDeclaration() {
				continue
			}
			size := callee.NumInstrs()
			if size > cx.Cost.InlineThreshold {
				continue
			}
			if callerSize+size > cx.Cost.InlineGrowthCap {
				continue
			}
			return in
		}
	}
	return nil
}

// inlineCall splices callee's body in place of the call instruction.
func inlineCall(caller *ir.Function, call *ir.Instr) {
	callee := call.Callee
	callBlock := call.Blk

	// Split callBlock at the call: everything after it moves to "cont".
	cont := caller.NewBlock(callBlock.Name + ".cont")
	idx := -1
	for i, in := range callBlock.Instrs {
		if in == call {
			idx = i
			break
		}
	}
	tail := callBlock.Instrs[idx+1:]
	callBlock.Instrs = callBlock.Instrs[:idx] // drop the call itself
	call.Blk = nil
	for _, in := range tail {
		in.Blk = cont
		cont.Instrs = append(cont.Instrs, in)
	}
	// Successor phis that referenced callBlock now flow from cont.
	for _, s := range cont.Succs() {
		for _, phi := range s.Phis() {
			for i, ib := range phi.Incoming {
				if ib == callBlock {
					phi.Incoming[i] = cont
				}
			}
		}
	}

	// Clone the callee body with parameters bound to the arguments.
	blockMap, vm := ir.CloneFunctionBody(caller, callee, call.Args)
	entryClone := blockMap[callee.Entry()]

	// Jump into the inlined body.
	bd := ir.NewBuilder(caller, callBlock)
	bd.Br(entryClone)

	// Rewire cloned returns to cont, collecting return values.
	type retEdge struct {
		b *ir.Block
		v ir.Value
	}
	var rets []retEdge
	for _, ob := range callee.Blocks {
		nb := blockMap[ob]
		t := nb.Term()
		if t == nil || t.Op != ir.OpRet {
			continue
		}
		var rv ir.Value
		if len(t.Args) == 1 {
			rv = t.Args[0]
		}
		t.Op = ir.OpBr
		t.Args = nil
		t.Succs = []*ir.Block{cont}
		rets = append(rets, retEdge{b: nb, v: rv})
	}
	_ = vm

	// Replace uses of the call result.
	if !ir.SameType(call.Typ, ir.Void) && len(rets) > 0 {
		var repl ir.Value
		if len(rets) == 1 {
			repl = rets[0].v
		} else {
			phi := &ir.Instr{Op: ir.OpPhi, Typ: call.Typ}
			caller.ClaimID(phi)
			phi.Blk = cont
			cont.Instrs = append([]*ir.Instr{phi}, cont.Instrs...)
			for _, re := range rets {
				phi.SetPhiIncoming(re.b, re.v)
			}
			repl = phi
		}
		ir.ReplaceUses(caller, call, repl)
	}

	if len(rets) == 0 {
		// Callee never returns (infinite loop or always-trapping); cont
		// is unreachable.
		cont.Instrs = nil
		bd2 := ir.NewBuilder(caller, cont)
		bd2.Unreachable()
	}

	// Cloned allocas stay where the body was spliced (not hoisted to the
	// caller entry): if the call site sits in a loop, re-executing the
	// alloca each iteration gives the same fresh-zeroed storage the
	// callee would have received per call at -O0.
}
