package passes

import (
	"sync"

	"overify/internal/ir"
)

// AnalysisSet is a bitset of the per-function analyses the pass manager
// caches. A pass declares what it keeps valid via Pass.Preserves; the
// manager invalidates only what a changed pass clobbers, so a chain of
// analysis-preserving passes (mem2reg, simplify, cse, dce's
// instruction-only path, checks, annotate) shares one dominator tree
// and one loop forest instead of recomputing them per pass — the
// t_compile term of the paper's end-to-end verification budget.
type AnalysisSet uint32

// The cached analyses.
const (
	// AnalysisDom is the dominator tree (ir.ComputeDom).
	AnalysisDom AnalysisSet = 1 << iota
	// AnalysisLoops is the natural-loop forest (ir.FindLoops). Loops
	// are derived from the dominator tree, so invalidating AnalysisDom
	// always invalidates AnalysisLoops too.
	AnalysisLoops
	// AnalysisRelevance is the module-wide check-relevance closure
	// (ComputeRelevance), consumed by the slice and loopsummary passes.
	// It is keyed by instruction identity, so it survives only passes
	// that change nothing at all — it is deliberately NOT part of
	// AllAnalyses, and a pass must name the bit explicitly to preserve
	// it.
	AnalysisRelevance
)

// Convenience sets for Preserves declarations. AllAnalyses is the
// per-function CFG set (Dom+Loops); see AnalysisRelevance for why the
// module-scoped relevance closure is excluded.
const (
	NoAnalyses  AnalysisSet = 0
	AllAnalyses             = AnalysisDom | AnalysisLoops
)

// Has reports whether every analysis in q is in s.
func (s AnalysisSet) Has(q AnalysisSet) bool { return s&q == q }

// AnalysisStats counts analysis-cache effectiveness across a pipeline
// run; pipeline.Result surfaces it next to the per-pass timings.
type AnalysisStats struct {
	DomHits           int64 // Dom() served from cache
	DomComputes       int64 // Dom() recomputed (cache miss or caching off)
	LoopHits          int64
	LoopComputes      int64
	RelevanceHits     int64 // Relevance() served from the module-wide cache
	RelevanceComputes int64
}

// Add accumulates o into s.
func (s *AnalysisStats) Add(o AnalysisStats) {
	s.DomHits += o.DomHits
	s.DomComputes += o.DomComputes
	s.LoopHits += o.LoopHits
	s.LoopComputes += o.LoopComputes
	s.RelevanceHits += o.RelevanceHits
	s.RelevanceComputes += o.RelevanceComputes
}

// HitRate is the fraction of Dom/Loops requests served from cache.
func (s AnalysisStats) HitRate() float64 {
	total := s.DomHits + s.DomComputes + s.LoopHits + s.LoopComputes
	if total == 0 {
		return 0
	}
	return float64(s.DomHits+s.LoopHits) / float64(total)
}

// analysisEntry caches one function's analyses. Entries are touched
// only by the goroutine currently running passes on that function (the
// manager never schedules one function on two workers), so no locking
// is needed; the per-entry counters are merged after the run.
type analysisEntry struct {
	dom   *ir.DomTree
	loops []*ir.Loop
	stats AnalysisStats
}

// Dom returns f's dominator tree, from cache when this Context caches
// analyses (pipeline runs do; a bare &Context{} recomputes fresh every
// call, which is also the stance of the cached-vs-fresh equivalence
// test's baseline).
func (cx *Context) Dom(f *ir.Function) *ir.DomTree {
	e := cx.entry(f)
	if e == nil {
		return ir.ComputeDom(f)
	}
	if e.dom == nil {
		e.dom = ir.ComputeDom(f)
		e.stats.DomComputes++
	} else {
		e.stats.DomHits++
	}
	return e.dom
}

// Loops returns f's natural loops, cached like Dom.
func (cx *Context) Loops(f *ir.Function) []*ir.Loop {
	e := cx.entry(f)
	if e == nil {
		return ir.FindLoops(f, cx.Dom(f))
	}
	if e.loops == nil {
		e.loops = ir.FindLoops(f, cx.Dom(f))
		e.stats.LoopComputes++
	} else {
		e.stats.LoopHits++
	}
	return e.loops
}

// relevanceBox holds the module-wide check-relevance closure. Unlike
// the per-function entries it is shared by every child Context (the
// parallel manager's workers all see it), so access is mutex-guarded:
// any worker that changes its function drops the closure for everyone.
type relevanceBox struct {
	mu     sync.Mutex
	module *ir.Module
	checks ir.CheckSet
	rel    *Relevance
	hits   int64
	comps  int64
}

// Relevance returns the module-wide check-relevance closure for m under
// this context's SliceChecks subset, cached in the analysis cache next
// to Dom/Loops. Only a pass that preserves AnalysisRelevance keeps it
// alive across a change; every other changed pass drops it via
// Invalidate.
func (cx *Context) Relevance(m *ir.Module) *Relevance {
	if cx.relevance == nil {
		return ComputeRelevance(m, cx.SliceChecks)
	}
	box := cx.relevance
	box.mu.Lock()
	defer box.mu.Unlock()
	if box.rel != nil && box.module == m && box.checks == cx.SliceChecks {
		box.hits++
		return box.rel
	}
	box.rel = ComputeRelevance(m, cx.SliceChecks)
	box.module = m
	box.checks = cx.SliceChecks
	box.comps++
	return box.rel
}

// Invalidate drops f's cached analyses except those in preserved.
// Passes call this at the precise points where they mutate the CFG
// (jump threading an edge, peeling a loop, creating a preheader,
// removing an unreachable block); the manager additionally calls it
// with the pass's static Preserves set after every changed run.
// Invalidating the dominator tree always drops the loop forest too,
// since loops are derived from it.
func (cx *Context) Invalidate(f *ir.Function, preserved AnalysisSet) {
	if cx.relevance != nil && preserved&AnalysisRelevance == 0 {
		cx.relevance.mu.Lock()
		cx.relevance.rel = nil
		cx.relevance.module = nil
		cx.relevance.mu.Unlock()
	}
	e := cx.entry(f)
	if e == nil {
		return
	}
	if preserved&AnalysisDom == 0 {
		e.dom = nil
		e.loops = nil
		return
	}
	if preserved&AnalysisLoops == 0 {
		e.loops = nil
	}
}

// EnableAnalysisCache turns on per-function analysis caching for this
// context. pipeline.Optimize enables it unless the configuration asks
// for the fresh-analysis baseline.
func (cx *Context) EnableAnalysisCache() {
	if cx.analyses == nil {
		cx.analyses = make(map[*ir.Function]*analysisEntry)
	}
	if cx.relevance == nil {
		cx.relevance = &relevanceBox{}
	}
}

// AnalysisCached reports whether this context caches analyses.
func (cx *Context) AnalysisCached() bool { return cx.analyses != nil }

// AnalysisStats sums the cache counters over every function seen.
func (cx *Context) AnalysisStats() AnalysisStats {
	var total AnalysisStats
	for _, e := range cx.analyses {
		total.Add(e.stats)
	}
	if cx.relevance != nil {
		cx.relevance.mu.Lock()
		total.RelevanceHits += cx.relevance.hits
		total.RelevanceComputes += cx.relevance.comps
		cx.relevance.mu.Unlock()
	}
	return total
}

// prime pre-creates cache entries for every defined function so the
// parallel manager never writes the entry map from two goroutines (the
// per-entry fields are only touched by the function's current owner).
func (cx *Context) prime(m *ir.Module) {
	if cx.analyses == nil {
		return
	}
	for _, f := range m.Funcs {
		if f.IsDeclaration() {
			continue
		}
		if cx.analyses[f] == nil {
			cx.analyses[f] = &analysisEntry{}
		}
	}
}

// entry returns f's cache slot, or nil when caching is off. The lazy
// insert only happens on serial paths (tests building a bare Context
// then enabling the cache); the manager primes all entries up front.
func (cx *Context) entry(f *ir.Function) *analysisEntry {
	if cx.analyses == nil {
		return nil
	}
	e := cx.analyses[f]
	if e == nil {
		e = &analysisEntry{}
		cx.analyses[f] = e
	}
	return e
}
