package passes_test

import (
	"testing"

	"overify/internal/frontend"
	"overify/internal/ir"
	"overify/internal/passes"
	"overify/internal/pipeline"
)

// lower compiles src without running any passes.
func lower(t *testing.T, src string) *ir.Module {
	t.Helper()
	mod, err := frontend.Lower("t", src)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return mod
}

// countOps tallies op occurrences across the module's defined functions.
func countOps(m *ir.Module, op ir.Op) int {
	n := 0
	for _, f := range m.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

// TestSliceDeletesIrrelevantWork: the cksum pattern. A checksum
// accumulator that only feeds the (integer) return value is irrelevant
// once nothing checks it; slicing must delete the work and flatten the
// data-dependent branch that forks paths.
func TestSliceDeletesIrrelevantWork(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	unsigned int crc = 0;
	int i = 0;
	while (i < len) {
		crc = crc ^ ((unsigned int)(int)input[i] << 8);
		if (crc & 0x8000) {
			crc = (crc << 1) ^ 0x1021;
		} else {
			crc = crc << 1;
		}
		i = i + 1;
	}
	return (int)crc;
}
`
	mod, cx := run(t, src, passes.Mem2Reg(), passes.SlicePass())
	if cx.Stats.InstrsSliced == 0 {
		t.Error("no instructions sliced from the crc accumulation")
	}
	if cx.Stats.BranchesSliced == 0 {
		t.Error("the crc&0x8000 branch should have been flattened")
	}
	f := mod.Func("umain")
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpXor || in.Op == ir.OpShl {
				t.Errorf("crc computation survived slicing: %s", in)
			}
		}
	}
}

// TestRelevanceKeepsTrapRoots: a division whose result is never used by
// anything relevant is still a root — deleting it would silence the
// divide-by-zero the baseline reports.
func TestRelevanceKeepsTrapRoots(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	int q = 100 / ((int)input[0] - 65);
	return 0;
}
`
	mod, _ := run(t, src, passes.Mem2Reg(), passes.SlicePass())
	if n := countOps(mod, ir.OpSDiv); n != 1 {
		t.Fatalf("trapping sdiv count after slice = %d, want 1", n)
	}
}

// TestRelevanceEscapingPointer: a helper stores through a pointer
// parameter; the caller divides by the stored value. The store happens
// in another function through escaped memory — the relevance closure
// must keep the whole chain (store, helper call, address computation).
func TestRelevanceEscapingPointer(t *testing.T) {
	src := `
void put(int *p, int v) { *p = v; }
int umain(unsigned char *input, int len) {
	int cell = 0;
	put(&cell, (int)input[0] - 65);
	return 100 / cell;
}
`
	mod := lower(t, src)
	cx := &passes.Context{Cost: pipeline.VerifyCost()}
	passes.Mem2Reg().Run(mod, cx)
	rel := passes.ComputeRelevance(mod, ir.AllChecks)
	put := mod.Func("put")
	foundStore := false
	for _, b := range put.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore {
				foundStore = true
				if !rel.Relevant(in) {
					t.Error("store through escaping pointer not relevant")
				}
			}
		}
	}
	if !foundStore {
		t.Fatal("expected a store in put (mem2reg must not promote an escaping cell)")
	}
	// And slicing must not delete the call that performs the store.
	passes.SlicePass().Run(mod, cx)
	if n := countOps(mod, ir.OpCall); n != 1 {
		t.Errorf("call count after slice = %d, want 1 (the put call carries the store)", n)
	}
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("after slice: %v", err)
	}
}

// TestRelevanceCrossFunctionGlobal: a global written by one function
// and used as a divisor in another. The writer is only reachable
// through a call, and the memory link crosses the function boundary.
func TestRelevanceCrossFunctionGlobal(t *testing.T) {
	src := `
int g;
void setup(unsigned char *input) { g = (int)input[0] - 65; }
int umain(unsigned char *input, int len) {
	setup(input);
	return 7 / g;
}
`
	mod := lower(t, src)
	cx := &passes.Context{Cost: pipeline.VerifyCost()}
	passes.Mem2Reg().Run(mod, cx)
	rel := passes.ComputeRelevance(mod, ir.AllChecks)
	setup := mod.Func("setup")
	for _, b := range setup.Blocks {
		for _, in := range b.Instrs {
			if in.Op == ir.OpStore && !rel.Relevant(in) {
				t.Error("cross-function global store not relevant")
			}
		}
	}
	passes.SlicePass().Run(mod, cx)
	if n := countOps(mod, ir.OpStore); n == 0 {
		t.Error("the global store feeding the divisor was sliced away")
	}
	if err := ir.VerifyModule(mod); err != nil {
		t.Fatalf("after slice: %v", err)
	}
}

// TestRelevanceCheckInsideLoop: a trap inside a loop keeps the loop —
// neither slice nor loopsummary may remove a loop whose body can fail.
func TestRelevanceCheckInsideLoop(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	int acc = 0;
	int i = 0;
	while (i < 3) {
		acc = acc + 10 / ((int)input[i] - 65);
		i = i + 1;
	}
	return 0;
}
`
	mod, cx := run(t, src, passes.Mem2Reg(), passes.SlicePass(), passes.LoopSummaryPass())
	if cx.Stats.LoopsSummarized != 0 {
		t.Error("a loop containing a trapping division was summarized away")
	}
	if n := countOps(mod, ir.OpSDiv); n != 1 {
		t.Errorf("sdiv count after slice = %d, want 1", n)
	}
}

// TestLoopSummarySkeletonLoop: a counted loop whose body is pure,
// irrelevant work collapses to a preheader→exit jump.
func TestLoopSummarySkeletonLoop(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	unsigned int crc = 0;
	int k = 0;
	while (k < 8) {
		crc = (crc << 1) & 0xFFFF;
		k = k + 1;
	}
	return (int)crc;
}
`
	_, cx := run(t, src, passes.Mem2Reg(), passes.SlicePass(),
		passes.Simplify(), passes.CSE(), passes.SimplifyCFG(),
		passes.LoopSummaryPass())
	if cx.Stats.LoopsSummarized == 0 {
		t.Error("the pure counted loop was not summarized")
	}
}

// TestSliceRemovesUncalledFunctions: functions unreachable from the
// entry disappear entirely.
func TestSliceRemovesUncalledFunctions(t *testing.T) {
	src := `
int helper(int x) { return x * 3; }
int umain(unsigned char *input, int len) { return 1; }
`
	mod, cx := run(t, src, passes.Mem2Reg(), passes.SlicePass())
	if cx.Stats.FuncsSliced == 0 {
		t.Error("uncalled helper not removed")
	}
	if mod.Func("helper") != nil {
		t.Error("helper still present after slice")
	}
}

// TestRelevancePerCheckSubset: with only bounds checks kept, a shift
// whose amount the shift check would flag stays only when the shift
// kind is in the kept set. (The trap roots — division, memory — are
// always kept; OpCheck roots follow the configured subset.)
func TestRelevancePerCheckSubset(t *testing.T) {
	src := `
int umain(unsigned char *input, int len) {
	int a[4];
	a[0] = 1;
	return a[(int)input[0]];
}
`
	mod := lower(t, src)
	rel := passes.ComputeRelevance(mod, ir.ChecksOf(ir.CheckBounds))
	if rel.Roots() == 0 {
		t.Fatal("bounds-relevant program has no roots")
	}
}
