package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"overify/internal/autotune"
	"overify/internal/coreutils"
	"overify/internal/passes"
	"overify/internal/pipeline"
)

// TuneSweepOptions configure the autotuner study: one schedule search
// per program, each reported against its -OVERIFY baseline.
type TuneSweepOptions struct {
	// Programs restricts the corpus (default: a representative subset —
	// a full-corpus sweep is Budget x corpus evaluations).
	Programs []string
	// InputBytes is the symbolic input size (default 4).
	InputBytes int
	// Budget caps candidate evaluations per program (default 64).
	Budget int
	// Seed fixes every program's search PRNG; the whole sweep is
	// reproducible from it.
	Seed int64
	// Timeout is the per-candidate wall-clock backstop (default 2m —
	// far above what the deterministic instruction/assignment caps
	// allow, so load cannot perturb the deterministic search).
	Timeout time.Duration
	// Jobs bounds concurrent candidate evaluations per search.
	Jobs int
}

// tuneDefaultPrograms is the default sweep subset: small enough that a
// Budget-64 search per program stays in CI time, varied enough to show
// schedule sensitivity (loop-heavy, branch-heavy, and trivial shapes).
var tuneDefaultPrograms = []string{
	"basename", "cat", "cksum", "dirname", "echo",
	"false", "sum", "tr", "true", "uniq", "wc-c", "wc-l",
}

func (o TuneSweepOptions) withDefaults() TuneSweepOptions {
	if len(o.Programs) == 0 {
		o.Programs = append([]string(nil), tuneDefaultPrograms...)
	}
	if o.InputBytes == 0 {
		o.InputBytes = 4
	}
	if o.Budget == 0 {
		o.Budget = 64
	}
	if o.Timeout == 0 {
		o.Timeout = 2 * time.Minute
	}
	return o
}

// PassTimingJSON is one pass's cumulative compile-side counters, the
// per-pass breakdown the -json output carries for baseline and winner.
type PassTimingJSON struct {
	Pass        string  `json:"pass"`
	Invocations int     `json:"invocations"`
	Changed     int     `json:"changed"`
	Skipped     int     `json:"skipped"`
	WallMS      float64 `json:"wall_ms"`
}

func passTimingsJSON(ms []passes.PassMetric) []PassTimingJSON {
	out := make([]PassTimingJSON, 0, len(ms))
	for _, m := range ms {
		out = append(out, PassTimingJSON{
			Pass: m.Name, Invocations: m.Invocations,
			Changed: m.Changed, Skipped: m.Skipped, WallMS: durMs(m.Wall),
		})
	}
	return out
}

// TuneRow is one program's search outcome.
type TuneRow struct {
	Program string `json:"program"`
	Seed    int64  `json:"seed"`

	// Work units = solver assignments + instructions executed, the
	// deterministic t_verify currency.
	BaseWork int64 `json:"work_base"`
	BestWork int64 `json:"work_best"`
	// Compile work in the deterministic currency (pass invocations).
	BaseInvocations int `json:"invocations_base"`
	BestInvocations int `json:"invocations_best"`

	BaseVerifyMS float64 `json:"t_verify_base_ms"`
	BestVerifyMS float64 `json:"t_verify_best_ms"`
	BaseBugs     int     `json:"bugs_base"`
	BestBugs     int     `json:"bugs_best"`

	ImprovementPct float64 `json:"improvement_pct"`
	BestIsBaseline bool    `json:"best_is_baseline"`
	BestSpec       string  `json:"best_spec"`
	// SlicePlacement says where (if anywhere) the search put the slice
	// stages — part of the headline result.
	SlicePlacement string `json:"slice_placement"`

	Evaluated int `json:"evaluated"`
	MemoHits  int `json:"memo_hits"`
	Restarts  int `json:"restarts"`

	// Per-pass cumulative compile counters for both schedules.
	BasePassTimings []PassTimingJSON `json:"pass_timings_base"`
	BestPassTimings []PassTimingJSON `json:"pass_timings_best"`
}

// slicePlacement describes where the winning schedule put the slicing
// stages, in stage coordinates.
func slicePlacement(spec string) string {
	parsed, err := pipeline.ParsePipeline(spec)
	if err != nil {
		return "unparsed"
	}
	var where []string
	for i, st := range parsed.Stages {
		if st.Pass == "slice" || st.Pass == "loopsummary" {
			where = append(where, fmt.Sprintf("%s@%d", st.Pass, i+1))
		}
	}
	if len(where) == 0 {
		return "none"
	}
	return strings.Join(where, ",")
}

// TuneSweep runs one schedule search per program.
func TuneSweep(opts TuneSweepOptions) ([]TuneRow, error) {
	opts = opts.withDefaults()
	var rows []TuneRow
	for _, name := range opts.Programs {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, fmt.Errorf("autotune: unknown corpus program %q", name)
		}
		res, err := autotune.Tune(autotune.Options{
			Name: p.Name, Source: p.Src,
			InputBytes: opts.InputBytes,
			Budget:     opts.Budget,
			Seed:       opts.Seed,
			Timeout:    opts.Timeout,
			Jobs:       opts.Jobs,
		})
		if err != nil {
			return nil, err
		}
		base, best := res.Baseline, res.Best
		rows = append(rows, TuneRow{
			Program: p.Name, Seed: opts.Seed,
			BaseWork: base.Work, BestWork: best.Work,
			BaseInvocations: base.CompileInvocations, BestInvocations: best.CompileInvocations,
			BaseVerifyMS: durMs(base.VerifyWall), BestVerifyMS: durMs(best.VerifyWall),
			BaseBugs: base.Bugs, BestBugs: best.Bugs,
			ImprovementPct: res.ImprovementPct,
			BestIsBaseline: res.BestIsBaseline,
			BestSpec:       best.Spec,
			SlicePlacement: slicePlacement(best.Spec),
			Evaluated:      res.Evaluated,
			MemoHits:       res.MemoHits,
			Restarts:       res.Restarts,
			BasePassTimings: passTimingsJSON(base.PassTimings),
			BestPassTimings: passTimingsJSON(best.PassTimings),
		})
	}
	return rows, nil
}

// RenderTuneSweep renders the study as the text recorded in
// EXPERIMENTS.md. Work units order the comparison; wall times are shown
// as the (machine-dependent) tiebreaker only.
func RenderTuneSweep(rows []TuneRow, opts TuneSweepOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Pass-ordering autotuner: %d symbolic bytes, budget %d candidates/program, seed %d\n",
		opts.InputBytes, opts.Budget, opts.Seed)
	fmt.Fprintf(&sb, "  %-12s %14s %14s %7s %11s %11s %6s %s\n",
		"program", "work(-OVERIFY)", "work(best)", "gain", "invocations", "t_vfy[ms]", "evals", "best schedule")
	improved := 0
	for _, r := range rows {
		if !r.BestIsBaseline && r.BestWork < r.BaseWork {
			improved++
		}
		sched := r.BestSpec
		if r.BestIsBaseline {
			sched = "(baseline wins)"
		}
		fmt.Fprintf(&sb, "  %-12s %14d %14d %6.1f%% %5d→%-5d %5.1f→%-5.1f %6d %s\n",
			r.Program, r.BaseWork, r.BestWork, r.ImprovementPct,
			r.BaseInvocations, r.BestInvocations,
			r.BaseVerifyMS, r.BestVerifyMS, r.Evaluated, sched)
		if r.SlicePlacement != "none" {
			fmt.Fprintf(&sb, "  %-12s %s\n", "", "slice placement: "+r.SlicePlacement)
		}
	}
	fmt.Fprintf(&sb, "  (searched schedules beat -OVERIFY on %d of %d programs, bug parity held on all)\n",
		improved, len(rows))
	return sb.String()
}

// TuneSweepJSON marshals the study for BENCH_autotune.json.
func TuneSweepJSON(rows []TuneRow, opts TuneSweepOptions) ([]byte, error) {
	opts = opts.withDefaults()
	doc := struct {
		Experiment string    `json:"experiment"`
		InputBytes int       `json:"input_bytes"`
		Budget     int       `json:"budget"`
		Seed       int64     `json:"seed"`
		Objective  string    `json:"objective"`
		Rows       []TuneRow `json:"rows"`
	}{
		Experiment: "pass-ordering autotuner: hill-climbed schedule vs stock -OVERIFY per program",
		InputBytes: opts.InputBytes,
		Budget:     opts.Budget,
		Seed:       opts.Seed,
		Objective:  "verify work units (solver assignments + instructions executed); compile bounded by pass invocations <= baseline",
		Rows:       rows,
	}
	return json.MarshalIndent(doc, "", "  ")
}
