package bench

import (
	"fmt"
	"strings"

	"overify/internal/coreutils"
	"overify/internal/libc"
	"overify/internal/passes"
	"overify/internal/pipeline"
)

// Table3Row aggregates pass statistics for one optimization level
// across the whole corpus — the paper's Table 3, extended with the
// pass manager's work accounting (invocations actually run, runs the
// change-driven fixpoints skipped, and the Dom/Loops cache hit rate —
// the t_compile side of the verification budget).
type Table3Row struct {
	Level             pipeline.Level
	FunctionsInlined  int
	LoopsUnswitched   int
	LoopsUnrolled     int
	BranchesConverted int
	Programs          int
	Failures          int

	PassInvocations int
	SkippedFuncRuns int
	Analysis        passes.AnalysisStats
}

// Table3 compiles every corpus program at -O0, -O3 and -OVERIFY
// (-OSYMBEX in the paper) and sums the transformation counters. The
// libc is held fixed at the uclibc baseline for every level so the
// counters compare pass behavior on identical input code (the verified
// libc is already branch-free at the source level, which would make the
// -OVERIFY counters look artificially low).
func Table3() ([]Table3Row, error) {
	levels := []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify}
	var rows []Table3Row
	for _, level := range levels {
		row := Table3Row{Level: level}
		var total passes.Stats
		for _, p := range coreutils.All() {
			c, err := CompileAtWithLibc(p.Name, p.Src, level, libc.Uclibc)
			if err != nil {
				row.Failures++
				continue
			}
			total.Add(c.Result.Stats)
			row.PassInvocations += c.Result.PassInvocations
			row.SkippedFuncRuns += c.Result.SkippedFuncRuns
			row.Analysis.Add(c.Result.Analysis)
			row.Programs++
		}
		row.FunctionsInlined = total.FunctionsInlined
		row.LoopsUnswitched = total.LoopsUnswitched
		// The paper counts loops unrolled; our unroller reports both
		// fully-dissolved loops and individual peels — fully unrolled
		// loops are the comparable number.
		row.LoopsUnrolled = total.LoopsUnrolled
		row.BranchesConverted = total.BranchesConverted
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable3 formats the rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Table 3: compiling the %d-program corpus with different options\n", len(coreutils.All()))
	fmt.Fprintf(&sb, "%-24s", "Optimization")
	for _, r := range rows {
		name := r.Level.String()
		if r.Level == pipeline.OVerify {
			name = "-OSYMBEX"
		}
		fmt.Fprintf(&sb, "%12s", name)
	}
	sb.WriteByte('\n')
	line := func(label string, f func(r Table3Row) int) {
		fmt.Fprintf(&sb, "%-24s", label)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%12s", fmtCount(int64(f(r))))
		}
		sb.WriteByte('\n')
	}
	line("# functions inlined", func(r Table3Row) int { return r.FunctionsInlined })
	line("# loops unswitched", func(r Table3Row) int { return r.LoopsUnswitched })
	line("# loops unrolled", func(r Table3Row) int { return r.LoopsUnrolled })
	line("# branches converted", func(r Table3Row) int { return r.BranchesConverted })
	line("# pass invocations", func(r Table3Row) int { return r.PassInvocations })
	line("# runs skipped", func(r Table3Row) int { return r.SkippedFuncRuns })
	fmt.Fprintf(&sb, "%-24s", "analysis cache hits")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%11.0f%%", 100*r.Analysis.HitRate())
	}
	sb.WriteByte('\n')
	return sb.String()
}
