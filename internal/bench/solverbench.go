package bench

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/solver"
	"overify/internal/symex"
)

// SolverBenchResult is one microbenchmark measurement.
type SolverBenchResult struct {
	Name        string
	Iterations  int
	NsPerOp     float64
	AllocsPerOp int64
	BytesPerOp  int64
}

// SolverBench measures the solver's per-query constant factors on
// captured corpus workload: wc's real exploration queries (serial,
// -OVERIFY), replayed through fresh and long-lived solvers, plus the
// incremental-partition variant of the same stream. overify-bench
// -solver -json records the results — the before/after trajectory in
// BENCH_solver.json comes from running it across solver changes.
func SolverBench() ([]SolverBenchResult, error) {
	queries, err := captureQueries("wc", 4)
	if err != nil {
		return nil, err
	}

	run := func(name string, fn func(b *testing.B)) SolverBenchResult {
		r := testing.Benchmark(fn)
		return SolverBenchResult{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}

	results := []SolverBenchResult{
		run("Sat/replay-cold", func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				s := solver.New(solver.Options{})
				for _, q := range queries {
					if _, _, err := s.Sat(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
		run("Sat/replay-hot", func(b *testing.B) {
			s := solver.New(solver.Options{})
			for _, q := range queries {
				if _, _, err := s.Sat(q); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, q := range queries {
					if _, _, err := s.Sat(q); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
		run("SatPartition/replay", func(b *testing.B) {
			parts := make([]*solver.Partition, len(queries))
			for i, q := range queries {
				parts[i] = solver.PartitionOf(q)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s := solver.New(solver.Options{})
				for _, p := range parts {
					if _, _, err := s.SatPartition(p); err != nil {
						b.Fatal(err)
					}
				}
			}
		}),
	}
	return results, nil
}

// captureQueries replays a corpus program's exploration (serial DFS,
// -OVERIFY) with solver.CaptureQuery installed and returns every live
// query in issue order. Deterministic: the same build captures the
// same stream every time.
func captureQueries(program string, n int) ([][]*expr.Expr, error) {
	p, ok := coreutils.Get(program)
	if !ok {
		return nil, fmt.Errorf("solverbench: unknown program %q", program)
	}
	c, err := core.CompileProgram(p, pipeline.OVerify)
	if err != nil {
		return nil, err
	}
	var queries [][]*expr.Expr
	solver.CaptureQuery = func(q []*expr.Expr) {
		queries = append(queries, append([]*expr.Expr(nil), q...))
	}
	defer func() { solver.CaptureQuery = nil }()
	eng := symex.NewEngine(c.Mod, symex.Options{})
	buf := eng.SymbolicBuffer("input", n, true)
	length := eng.IntArg(ir.I32, uint64(n))
	if _, err := eng.Run("umain", []symex.SymVal{buf, length}, nil); err != nil {
		return nil, err
	}
	if len(queries) == 0 {
		return nil, fmt.Errorf("solverbench: no queries captured from %s", program)
	}
	return queries, nil
}

// RenderSolverBench formats the measurements as a table.
func RenderSolverBench(results []SolverBenchResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Solver microbenchmarks (captured wc query stream, %s)\n", runtime.Version())
	fmt.Fprintf(&sb, "%-24s %12s %12s %12s\n", "benchmark", "ns/op", "B/op", "allocs/op")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-24s %12.0f %12d %12d\n", r.Name, r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
	}
	return sb.String()
}

// SolverBenchJSON renders the measurements machine-readably (the
// BENCH_solver.json sections).
func SolverBenchJSON(results []SolverBenchResult) ([]byte, error) {
	out := struct {
		Workload string
		Results  []SolverBenchResult
	}{
		Workload: "wc -OVERIFY serial exploration, 4 symbolic bytes, captured via solver.CaptureQuery",
		Results:  results,
	}
	return json.MarshalIndent(out, "", "  ")
}
