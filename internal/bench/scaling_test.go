package bench_test

import (
	"runtime"
	"testing"
	"time"

	"overify/internal/bench"
	"overify/internal/pipeline"
)

// TestScalingShape runs the worker-scaling study on wc and asserts the
// invariants that hold on any hardware: verdicts (path counts) are
// identical at every worker count, and -OVERIFY still collapses the
// path count versus -O0 regardless of parallelism — the two levers
// compound, they do not interfere.
func TestScalingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	opts := bench.ScalingOptions{
		Program:    "wc",
		InputBytes: 5,
		Timeout:    90 * time.Second,
		Workers:    []int{1, 2, 4},
	}
	rows, err := bench.Scaling(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bench.RenderScaling(rows, opts))
	byLevel := map[pipeline.Level]bench.ScalingRow{}
	for _, r := range rows {
		byLevel[r.Level] = r
		for _, cell := range r.Cells {
			if cell.TimedOut {
				t.Errorf("%s at %d workers timed out", r.Level, cell.Workers)
			}
			if cell.Paths != r.Cells[0].Paths {
				t.Errorf("%s: paths at %d workers = %d, want %d (verdicts must not depend on workers)",
					r.Level, cell.Workers, cell.Paths, r.Cells[0].Paths)
			}
		}
	}
	o0, ov := byLevel[pipeline.O0], byLevel[pipeline.OVerify]
	if len(o0.Cells) == 0 || len(ov.Cells) == 0 {
		t.Fatal("missing levels")
	}
	if ov.Cells[0].Paths >= o0.Cells[0].Paths {
		t.Errorf("OVerify paths (%d) should be below O0 (%d) at every worker count",
			ov.Cells[0].Paths, o0.Cells[0].Paths)
	}
}

// TestScalingSpeedup asserts the wall-clock benefit of the worker pool.
// It needs real hardware parallelism, so it only runs with 4+ CPUs —
// on a single-core box the engine's verdicts still hold (asserted
// above) but no wall-clock gain is physically possible.
func TestScalingSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("need 4+ CPUs for a wall-clock speedup, have %d", runtime.NumCPU())
	}
	// 7 symbolic bytes at -O0 gives a deep, fork-heavy frontier: several
	// hundred milliseconds of solver-dominated work to spread over
	// 4 workers.
	opts := bench.ScalingOptions{
		Program:    "wc",
		InputBytes: 7,
		Timeout:    5 * time.Minute,
		Workers:    []int{1, 4},
		Levels:     []pipeline.Level{pipeline.O0},
	}
	rows, err := bench.Scaling(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bench.RenderScaling(rows, opts))
	cells := rows[0].Cells
	speedup := cells[len(cells)-1].Speedup
	if speedup < 2.0 {
		t.Errorf("4-worker speedup = %.2fx, want >= 2x", speedup)
	}
}
