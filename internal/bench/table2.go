package bench

import (
	"fmt"
	"strings"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/libc"
	"overify/internal/passes"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// Table2Benchmarks is the program set the ablation measures on: wc plus
// a few corpus utilities with different control-flow shapes.
var Table2Benchmarks = []string{"wc", "tr", "cut", "uniq", "sum"}

// Table2Row measures one transformation's impact on verification and
// execution — the measured version of the paper's qualitative Table 2.
type Table2Row struct {
	Name string

	// Verification cost with and without the transformation: symbolic
	// instructions interpreted and paths explored, summed over the
	// benchmark set.
	VerifInstrsBase int64
	VerifInstrsWith int64
	PathsBase       int64
	PathsWith       int64

	// Execution cost: concrete instructions on the sample inputs.
	ExecInstrsBase int64
	ExecInstrsWith int64
}

// VerifImpact is the sign of the verification effect (+ improves).
func (r Table2Row) VerifImpact() string { return impact(r.VerifInstrsBase, r.VerifInstrsWith) }

// ExecImpact is the sign of the execution effect (+ improves).
func (r Table2Row) ExecImpact() string { return impact(r.ExecInstrsBase, r.ExecInstrsWith) }

func impact(base, with int64) string {
	if base == 0 {
		return "0"
	}
	delta := float64(base-with) / float64(base)
	switch {
	case delta > 0.02:
		return "+"
	case delta < -0.02:
		return "-"
	default:
		return "0"
	}
}

func pct(base, with int64) string {
	if base == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%+.0f%%", 100*float64(base-with)/float64(base))
}

// ablation defines one Table 2 row: the baseline pass list and the pass
// list with the transformation under study added.
type ablation struct {
	name string
	base func(cost passes.CostModel) []passes.Pass
	with func(cost passes.CostModel) []passes.Pass
}

func cleanupSeq() []passes.Pass {
	return []passes.Pass{passes.Simplify(), passes.CSE(), passes.SimplifyCFG(), passes.DCE()}
}

func ablations() []ablation {
	ssa := func(passes.CostModel) []passes.Pass { return []passes.Pass{passes.Mem2Reg()} }
	ssaClean := func(passes.CostModel) []passes.Pass {
		return append([]passes.Pass{passes.Mem2Reg()}, cleanupSeq()...)
	}
	withExtra := func(base func(passes.CostModel) []passes.Pass, extra ...passes.Pass) func(passes.CostModel) []passes.Pass {
		return func(cost passes.CostModel) []passes.Pass {
			seq := append([]passes.Pass(nil), base(cost)...)
			seq = append(seq, extra...)
			seq = append(seq, cleanupSeq()...)
			return seq
		}
	}
	return []ablation{
		{
			// Paper row 1: constant propagation/folding, arithmetic
			// simplifications.
			name: "constant folding + simplification",
			base: ssa,
			with: withExtra(ssa),
		},
		{
			// Paper row 2: remove/split memory accesses (mem2reg is the
			// "convert memory to registers" transform).
			name: "remove memory accesses (mem2reg)",
			base: func(passes.CostModel) []passes.Pass { return nil },
			with: func(passes.CostModel) []passes.Pass {
				return []passes.Pass{passes.Mem2Reg(), passes.DCE()}
			},
		},
		{
			// Paper row 3: simplify control flow — jump threading and
			// loop unswitching.
			name: "jump threading + unswitching",
			base: ssaClean,
			with: withExtra(ssaClean, passes.JumpThread(), passes.Unswitch()),
		},
		{
			// Paper row 4: restructure the program — inlining and
			// unrolling.
			name: "inlining + unrolling",
			base: ssaClean,
			with: withExtra(ssaClean, passes.Inline(), passes.Mem2Reg(), passes.Unroll()),
		},
		{
			// The transform behind Listing 2: speculative branch-free
			// conversion. Inlining first so callee branches are visible.
			name: "if-conversion (branch->select)",
			base: withExtra(ssaClean, passes.Inline(), passes.Mem2Reg()),
			with: withExtra(ssaClean, passes.Inline(), passes.Mem2Reg(),
				passes.Fixpoint(8, append([]passes.Pass{passes.IfConvert(), passes.JumpThread()}, cleanupSeq()...)...)),
		},
		{
			// Paper row 7: generate runtime checks. More work for both
			// sides, but every illegal behavior becomes a detectable
			// crash.
			name: "runtime checks",
			base: ssaClean,
			with: withExtra(ssaClean, passes.InsertChecks()),
		},
		{
			// Paper row 6: program annotations (ranges) — preserved
			// metadata the verifier consumes for free branch decisions.
			name: "range annotations",
			base: ssaClean,
			with: withExtra(ssaClean, passes.Annotate()),
		},
	}
}

// Table2Options bound the ablation study.
type Table2Options struct {
	InputBytes int // symbolic input size (default 3)
	Cost       *passes.CostModel
}

// Table2 measures each transformation's verification and execution
// impact over the benchmark set.
func Table2(opts Table2Options) ([]Table2Row, error) {
	if opts.InputBytes == 0 {
		opts.InputBytes = 3
	}
	cost := pipeline.VerifyCost()
	if opts.Cost != nil {
		cost = *opts.Cost
	}
	var rows []Table2Row
	for _, ab := range ablations() {
		row := Table2Row{Name: ab.name}
		for _, progName := range Table2Benchmarks {
			src, sample, fn, verify := benchProgram(progName)
			for _, variant := range []struct {
				seq []passes.Pass
				vi  *int64
				pi  *int64
				ei  *int64
			}{
				{ab.base(cost), &row.VerifInstrsBase, &row.PathsBase, &row.ExecInstrsBase},
				{ab.with(cost), &row.VerifInstrsWith, &row.PathsWith, &row.ExecInstrsWith},
			} {
				c, err := core.CompileWithPasses(progName, src, libc.Uclibc, cost, variant.seq)
				if err != nil {
					return nil, fmt.Errorf("table2 %s/%s: %w", ab.name, progName, err)
				}
				rep, err := verify(c, opts.InputBytes)
				if err != nil {
					return nil, fmt.Errorf("table2 %s/%s: verify: %w", ab.name, progName, err)
				}
				*variant.vi += rep.Stats.Instrs
				*variant.pi += rep.Stats.TotalPaths()
				rr, err := c.Run(fn, []byte(sample))
				if err != nil {
					return nil, fmt.Errorf("table2 %s/%s: run: %w", ab.name, progName, err)
				}
				*variant.ei += rr.Stats.Instrs
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// benchProgram resolves a Table 2 benchmark name to source, sample
// input, entry function, and a verify driver.
func benchProgram(name string) (src, sample, fn string, verify func(*core.Compiled, int) (*symex.Report, error)) {
	if name == "wc" {
		return WcSource, "some words here", "wc",
			func(c *core.Compiled, n int) (*symex.Report, error) {
				return VerifyWc(c, n, symex.Options{})
			}
	}
	p, ok := coreutils.Get(name)
	if !ok {
		panic("bench: unknown table2 program " + name)
	}
	return p.Src, p.Sample, "umain",
		func(c *core.Compiled, n int) (*symex.Report, error) {
			return c.Verify("umain", core.VerifyOptions{InputBytes: n})
		}
}

// RenderTable2 formats the measured ablation like the paper's Table 2,
// with measured percentages next to the +/− signs.
func RenderTable2(rows []Table2Row) string {
	var sb strings.Builder
	sb.WriteString("Table 2: measured impact of each transformation (base -> with, summed over benchmarks)\n")
	fmt.Fprintf(&sb, "%-36s %14s %14s %16s %14s\n",
		"Transformation", "Verification", "(sym instrs)", "(paths)", "Execution")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-36s %7s %6s %14s %16s %7s %6s\n",
			r.Name,
			r.VerifImpact(), pct(r.VerifInstrsBase, r.VerifInstrsWith),
			fmt.Sprintf("%s->%s", fmtCount(r.VerifInstrsBase), fmtCount(r.VerifInstrsWith)),
			fmt.Sprintf("%s->%s", fmtCount(r.PathsBase), fmtCount(r.PathsWith)),
			r.ExecImpact(), pct(r.ExecInstrsBase, r.ExecInstrsWith))
	}
	return sb.String()
}
