package bench

import (
	"encoding/json"
	"fmt"
	"net"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/daemon"
	"overify/internal/dist"
	"overify/internal/pipeline"
)

// DistributedSweepOptions configure the distributed-frontier study:
// per corpus program and cluster size, one serial baseline against a
// cold and a warm coordinator + N-worker run, plus the solver
// portfolio's counter-based comparison on the hard groups.
type DistributedSweepOptions struct {
	// Programs restricts the sweep (default: a structural mix plus the
	// portfolio's hard targets).
	Programs []string
	// HardPrograms are measured fixed-order vs portfolio (default
	// cksum, basename — cksum's groups fall to value-set propagation
	// and act as the control; basename's path-prefix disjunctions stall
	// the fixed order and are where the portfolio pays).
	HardPrograms []string
	// ClusterSizes are the worker counts swept (default 1, 2, 4).
	ClusterSizes []int
	// InputBytes is the symbolic input size (default 4).
	InputBytes int
	// MaxInstrs caps each exploration (default 4,000,000).
	MaxInstrs int64
	// Level is the optimization level (default -OVERIFY).
	Level pipeline.Level
	// LevelSet marks Level as explicitly chosen (lets O0 be selected).
	LevelSet bool
	// Portfolio is the race width for worker solvers (default 4).
	Portfolio int
	// PortfolioStall is the assignment stall threshold (default 4096).
	PortfolioStall int64
	// SplitTarget is the frontier width the coordinator's split phase
	// aims for (default 4). It is deliberately NOT scaled with cluster
	// size: the corpus programs' breadth-first frontiers peak at 2-15
	// states, and a target past the peak exhausts the program locally
	// and ships nothing.
	SplitTarget int
}

func (o DistributedSweepOptions) withDefaults() DistributedSweepOptions {
	if len(o.Programs) == 0 {
		o.Programs = []string{"wc", "tr", "uniq", "cksum", "basename"}
	}
	if len(o.HardPrograms) == 0 {
		o.HardPrograms = []string{"cksum", "basename"}
	}
	if len(o.ClusterSizes) == 0 {
		o.ClusterSizes = []int{1, 2, 4}
	}
	if o.InputBytes == 0 {
		o.InputBytes = 4
	}
	if o.MaxInstrs == 0 {
		o.MaxInstrs = 4_000_000
	}
	if !o.LevelSet {
		o.Level = pipeline.OVerify
	}
	if o.Portfolio == 0 {
		o.Portfolio = 4
	}
	if o.PortfolioStall == 0 {
		o.PortfolioStall = 4096
	}
	if o.SplitTarget == 0 {
		o.SplitTarget = 4
	}
	return o
}

// DistributedRow is one (program, cluster size) measurement.
type DistributedRow struct {
	Program     string  `json:"program"`
	Cluster     int     `json:"cluster"`
	SerialMs    float64 `json:"t_serial_ms"`     // one process, one engine
	ColdMs      float64 `json:"t_cold_ms"`       // split + ship to cold workers + merge
	WarmMs      float64 `json:"t_warm_ms"`       // repeat against warm worker caches
	SplitStates int     `json:"split_states"`    // frontier states shipped
	ShardsSent  int     `json:"shards_sent"`     // workers that received a shard
	WarmHits    int     `json:"warm_compile_hits"` // warm-run workers serving from the compile cache
	Assignments int64   `json:"assignments"`     // distributed total (portfolio enabled)
	Races       int64   `json:"portfolio_races"`
	Wins        int64   `json:"portfolio_wins"`
	Identical   bool    `json:"identical"` // normalized render == serial baseline
}

// PortfolioRow is one hard group's fixed-order vs portfolio
// comparison. Both assignment columns are counters — pure functions of
// the program, identical on every machine. The failure columns record
// solver budget exhaustions: on basename the fixed order burns its
// work cap on one stalled group and drops the path, while the
// portfolio's reordered search answers it — the portfolio is not just
// faster, it settles a query the fixed order gives up on.
type PortfolioRow struct {
	Program              string  `json:"program"`
	FixedAssignments     int64   `json:"fixed_assignments"`
	PortfolioAssignments int64   `json:"portfolio_assignments"`
	FixedFailures        int64   `json:"fixed_failures"`
	PortfolioFailures    int64   `json:"portfolio_failures"`
	Races                int64   `json:"portfolio_races"`
	Wins                 int64   `json:"portfolio_wins"`
	SpeedupX             float64 `json:"speedup_x"` // fixed / portfolio
}

// DistributedResult is the whole study.
type DistributedResult struct {
	Rows      []DistributedRow `json:"rows"`
	Portfolio []PortfolioRow   `json:"portfolio"`
}

// pipeCluster starts n in-process worker daemons over in-memory pipes
// — the same Server code path overifyd serves, minus socket setup.
// close tears every connection down.
func pipeCluster(n int) (clients []*daemon.Client, close func(), err error) {
	var conns []*daemon.Client
	close = func() {
		for _, c := range conns {
			c.Close()
		}
	}
	for i := 0; i < n; i++ {
		s := daemon.NewServer(daemon.Config{Name: fmt.Sprintf("bench-worker-%d", i)})
		clientEnd, serverEnd := net.Pipe()
		go s.ServeConn(serverEnd)
		c, err := daemon.NewClient(clientEnd, clientEnd)
		if err != nil {
			close()
			return nil, nil, fmt.Errorf("worker %d handshake: %w", i, err)
		}
		conns = append(conns, c)
	}
	return conns, close, nil
}

// DistributedSweep runs the study.
func DistributedSweep(opts DistributedSweepOptions) (*DistributedResult, error) {
	opts = opts.withDefaults()
	res := &DistributedResult{}

	serialVerify := func(name string, portfolio int) (*core.Compiled, *coreResult, error) {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, nil, fmt.Errorf("distributed sweep: unknown corpus program %q", name)
		}
		start := time.Now()
		c, err := core.CompileProgram(p, opts.Level)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", name, err)
		}
		vo := core.VerifyOptions{InputBytes: opts.InputBytes}
		vo.Engine.MaxInstrs = opts.MaxInstrs
		vo.Engine.Solver.Portfolio = portfolio
		vo.Engine.Solver.PortfolioStall = opts.PortfolioStall
		rep, err := c.Verify("umain", vo)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: verify: %w", name, err)
		}
		return c, &coreResult{
			elapsedMs: durMs(time.Since(start)),
			render:    dist.NormalizedRender(rep),
			assigns:   rep.Stats.SolverStats.Assignments,
			failures:  rep.Stats.SolverStats.Failures,
			races:     rep.Stats.SolverStats.PortfolioRaces,
			wins:      rep.Stats.SolverStats.PortfolioWins,
		}, nil
	}

	for _, name := range opts.Programs {
		// The conformance baseline runs the same solver configuration as
		// the cluster (portfolio included): what the sharding must not
		// change is the exploration outcome, so the solver must be held
		// equal on both sides. (The portfolio's own effect vs the fixed
		// order is the separate comparison below.)
		_, serial, err := serialVerify(name, opts.Portfolio)
		if err != nil {
			return nil, err
		}
		for _, k := range opts.ClusterSizes {
			clients, closeCluster, err := pipeCluster(k)
			if err != nil {
				return nil, err
			}
			do := func() (*dist.Result, float64, error) {
				start := time.Now()
				r, err := dist.Verify(clients, dist.Options{
					Prog: name, Level: opts.Level.String(),
					InputBytes: opts.InputBytes, MaxInstrs: opts.MaxInstrs,
					SplitStates:    opts.SplitTarget,
					Portfolio:      opts.Portfolio,
					PortfolioStall: opts.PortfolioStall,
				})
				return r, durMs(time.Since(start)), err
			}
			cold, coldMs, err := do()
			if err != nil {
				closeCluster()
				return nil, fmt.Errorf("%s cluster=%d cold: %w", name, k, err)
			}
			warm, warmMs, err := do()
			closeCluster()
			if err != nil {
				return nil, fmt.Errorf("%s cluster=%d warm: %w", name, k, err)
			}
			row := DistributedRow{
				Program: name, Cluster: k,
				SerialMs: serial.elapsedMs, ColdMs: coldMs, WarmMs: warmMs,
				SplitStates: cold.SplitStates, ShardsSent: cold.ShardsSent,
				Assignments: cold.Report.Stats.SolverStats.Assignments,
				Races:       cold.Report.Stats.SolverStats.PortfolioRaces,
				Wins:        cold.Report.Stats.SolverStats.PortfolioWins,
				Identical: dist.NormalizedRender(cold.Report) == serial.render &&
					dist.NormalizedRender(warm.Report) == serial.render,
			}
			// Warm-run compile hits are not in the merged report; infer
			// from the warm run being a repeat against the same servers.
			row.WarmHits = warm.ShardsSent
			res.Rows = append(res.Rows, row)
		}
	}

	for _, name := range opts.HardPrograms {
		_, fixed, err := serialVerify(name, 0)
		if err != nil {
			return nil, err
		}
		_, port, err := serialVerify(name, opts.Portfolio)
		if err != nil {
			return nil, err
		}
		row := PortfolioRow{
			Program:              name,
			FixedAssignments:     fixed.assigns,
			PortfolioAssignments: port.assigns,
			FixedFailures:        fixed.failures,
			PortfolioFailures:    port.failures,
			Races:                port.races,
			Wins:                 port.wins,
		}
		if port.assigns > 0 {
			row.SpeedupX = float64(fixed.assigns) / float64(port.assigns)
		}
		res.Portfolio = append(res.Portfolio, row)
	}
	return res, nil
}

// coreResult is one serial measurement.
type coreResult struct {
	elapsedMs float64
	render    string
	assigns   int64
	failures  int64
	races     int64
	wins      int64
}

// RenderDistributedSweep renders the study as the text recorded in
// EXPERIMENTS.md.
func RenderDistributedSweep(res *DistributedResult, opts DistributedSweepOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Distributed frontier sweep at %s, %d symbolic bytes (portfolio %d, stall %d)\n",
		opts.Level, opts.InputBytes, opts.Portfolio, opts.PortfolioStall)
	fmt.Fprintf(&sb, "  %-10s %8s %12s %11s %11s %7s %7s %6s %6s %10s\n",
		"program", "cluster", "t_serial[ms]", "t_cold[ms]", "t_warm[ms]", "states", "shards", "races", "wins", "identical")
	identical := true
	for _, r := range res.Rows {
		fmt.Fprintf(&sb, "  %-10s %8d %12.1f %11.1f %11.1f %7d %7d %6d %6d %10v\n",
			r.Program, r.Cluster, r.SerialMs, r.ColdMs, r.WarmMs,
			r.SplitStates, r.ShardsSent, r.Races, r.Wins, r.Identical)
		identical = identical && r.Identical
	}
	fmt.Fprintf(&sb, "  all renders identical to serial: %v\n", identical)
	fmt.Fprintf(&sb, "  Solver portfolio on hard groups (assignment counters, machine-independent):\n")
	fmt.Fprintf(&sb, "  %-10s %14s %16s %9s %9s %6s %6s %9s\n",
		"program", "fixed", "portfolio", "fix.fail", "pf.fail", "races", "wins", "speedup")
	for _, r := range res.Portfolio {
		fmt.Fprintf(&sb, "  %-10s %14d %16d %9d %9d %6d %6d %8.2fx\n",
			r.Program, r.FixedAssignments, r.PortfolioAssignments,
			r.FixedFailures, r.PortfolioFailures, r.Races, r.Wins, r.SpeedupX)
	}
	return sb.String()
}

// DistributedSweepJSON is the machine-readable form
// (BENCH_distributed.json).
func DistributedSweepJSON(res *DistributedResult, opts DistributedSweepOptions) ([]byte, error) {
	opts = opts.withDefaults()
	doc := struct {
		InputBytes     int              `json:"input_bytes"`
		MaxInstrs      int64            `json:"max_instrs"`
		Level          string           `json:"level"`
		ClusterSizes   []int            `json:"cluster_sizes"`
		Portfolio      int              `json:"portfolio"`
		PortfolioStall int64            `json:"portfolio_stall"`
		Rows           []DistributedRow `json:"rows"`
		PortfolioRows  []PortfolioRow   `json:"portfolio_rows"`
	}{opts.InputBytes, opts.MaxInstrs, opts.Level.String(), opts.ClusterSizes,
		opts.Portfolio, opts.PortfolioStall, res.Rows, res.Portfolio}
	return json.MarshalIndent(doc, "", "  ")
}
