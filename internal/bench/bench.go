// Package bench contains the experiment drivers that regenerate every
// table and figure in the paper's evaluation: Table 1 (the wc
// micro-benchmark), Table 2 (per-transformation impact, measured as an
// ablation), Table 3 (pass statistics over the corpus) and Figure 4
// (per-program compile+verify times at -O0/-O3/-OSYMBEX).
//
// Absolute numbers differ from the paper (different decade, different
// substrate); the shapes — who wins, by what factor, where the
// crossovers are — are asserted by the tests in this package and
// recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"overify/internal/core"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/libc"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// parallelDo runs f(0..n-1) on up to jobs goroutines (serially when
// jobs <= 1). The experiment drivers use it to compile whole modules in
// parallel — per-program parallelism above the pass manager's
// per-function kind — writing results into index-addressed slots so the
// output order stays deterministic regardless of completion order.
func parallelDo(n, jobs int, f func(i int)) {
	if jobs < 0 {
		jobs = runtime.NumCPU() // -1 = one job per CPU, like the other -j consumers
	}
	if jobs <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			f(i)
		}
		return
	}
	sem := make(chan struct{}, jobs)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			f(i)
		}(i)
	}
	wg.Wait()
}

// WcSource is Listing 1 from the paper: the word-count function whose
// classification helpers come from the linked libc.
const WcSource = `
int wc(unsigned char *str, int any) {
	int res = 0;
	int new_word = 1;
	for (unsigned char *p = str; *p; ++p) {
		if (isspace(*p) || (any && !isalpha(*p))) {
			new_word = 1;
		} else {
			if (new_word) {
				++res;
				new_word = 0;
			}
		}
	}
	return res;
}
`

// VerifyWc symbolically explores wc over strings of up to n bytes with a
// symbolic `any` flag — the paper's Table 1 experiment.
func VerifyWc(c *core.Compiled, n int, opts symex.Options) (*symex.Report, error) {
	eng := symex.NewEngine(c.Mod, opts)
	buf := eng.SymbolicBuffer("input", n, true)
	any := eng.SymbolicInt("any", ir.I32)
	return eng.Run("wc", []symex.SymVal{buf, any}, nil)
}

// WordText generates a deterministic text with the given number of
// words, the "t_run" workload (the paper used 10^8 words; callers scale).
func WordText(words int) []byte {
	var sb strings.Builder
	sb.Grow(words * 6)
	for i := 0; i < words; i++ {
		switch i % 4 {
		case 0:
			sb.WriteString("lorem ")
		case 1:
			sb.WriteString("ipsum\t")
		case 2:
			sb.WriteString("dolor\n")
		default:
			sb.WriteString("sit ")
		}
	}
	return []byte(sb.String())
}

// TimeConcreteRun runs fn(buf, len) on the interpreter and reports the
// wall time and instruction count.
func TimeConcreteRun(c *core.Compiled, fn string, input []byte, extraArgs ...interp.Value) (time.Duration, int64, error) {
	m := interp.NewMachine(c.Mod, interp.Options{MaxSteps: 2_000_000_000})
	buf := interp.ByteObject("input", append(append([]byte{}, input...), 0))
	args := []interp.Value{interp.PtrVal(buf, 0)}
	args = append(args, extraArgs...)
	start := time.Now()
	_, err := m.Call(fn, args...)
	return time.Since(start), m.Stats.Instrs, err
}

// CompileAt compiles src at a level with the level's default libc,
// returning the compile result (timed inside pipeline.Optimize).
func CompileAt(name, src string, level pipeline.Level) (*core.Compiled, error) {
	return core.CompileSource(name, src, level, core.DefaultLibc(level))
}

// CompileOpts are the pass-manager knobs the experiment drivers share:
// an explicit -passes pipeline and the compile-side worker count.
type CompileOpts struct {
	Pipeline *pipeline.PipelineSpec
	Jobs     int
}

// CompileAtOpts is CompileAt with pass-manager overrides.
func CompileAtOpts(name, src string, level pipeline.Level, co CompileOpts) (*core.Compiled, error) {
	cfg := pipeline.LevelConfig(level)
	cfg.Pipeline = co.Pipeline
	cfg.Jobs = co.Jobs
	return core.CompileWithConfig(name, src, cfg, core.DefaultLibc(level))
}

// CompileAtWithLibc pins the libc variant.
func CompileAtWithLibc(name, src string, level pipeline.Level, lk libc.Kind) (*core.Compiled, error) {
	return core.CompileSource(name, src, level, lk)
}

// fmtDur renders a duration in the paper's milliseconds-style.
func fmtDur(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

// fmtCount renders large counts with thousands separators.
func fmtCount(n int64) string {
	s := fmt.Sprintf("%d", n)
	if len(s) <= 3 {
		return s
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	return s + "," + strings.Join(parts, ",")
}
