package bench

import (
	"fmt"
	"runtime"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// ScalingOptions parameterize the worker-scaling study: per-level
// verification wall-clock at 1..N workers. This is the harness behind
// the parallel-engine claim — program-side reductions (-OVERIFY) and
// verifier-side throughput (workers) compound.
type ScalingOptions struct {
	// Program is the corpus target (default "wc").
	Program string
	// InputBytes is the symbolic input size (default 5).
	InputBytes int
	// Timeout caps each cell (default 60s).
	Timeout time.Duration
	// Workers are the worker counts to sweep (default 1,2,4..NumCPU,
	// always at least 1,2,4).
	Workers []int
	// Levels to measure (default O0, O3, OVerify — Figure 4's columns).
	Levels []pipeline.Level
	// Strategy is the exploration order (default DFS).
	Strategy symex.SearchKind
	// Seed feeds the random-path strategy.
	Seed int64
}

// ScalingCell is one (level, workers) measurement.
type ScalingCell struct {
	Workers  int
	Elapsed  time.Duration
	Paths    int64
	TimedOut bool
	Speedup  float64 // wall-clock of the same level at 1 worker / this
}

// ScalingRow is one level's sweep over worker counts.
type ScalingRow struct {
	Level       pipeline.Level
	CompileTime time.Duration
	Cells       []ScalingCell
}

// DefaultWorkerCounts returns the sweep 1,2,4,...,NumCPU (deduplicated,
// ascending; always includes 1, 2 and 4 so the table is comparable
// across machines).
func DefaultWorkerCounts() []int {
	counts := []int{1, 2, 4}
	for n := 8; n <= runtime.NumCPU(); n *= 2 {
		counts = append(counts, n)
	}
	return counts
}

// withDefaults resolves the zero-valued fields; Scaling and
// RenderScaling both normalize through here so the header always
// matches the measurement.
func (o ScalingOptions) withDefaults() ScalingOptions {
	if o.Program == "" {
		o.Program = "wc"
	}
	if o.InputBytes == 0 {
		o.InputBytes = 5
	}
	if o.Timeout == 0 {
		o.Timeout = 60 * time.Second
	}
	if o.Workers == nil {
		o.Workers = DefaultWorkerCounts()
	}
	if o.Levels == nil {
		o.Levels = []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify}
	}
	return o
}

// Scaling runs the worker-scaling study on one corpus program.
func Scaling(opts ScalingOptions) ([]ScalingRow, error) {
	opts = opts.withDefaults()
	p, ok := coreutils.Get(opts.Program)
	if !ok {
		return nil, fmt.Errorf("scaling: unknown corpus program %q", opts.Program)
	}

	var rows []ScalingRow
	for _, level := range opts.Levels {
		c, err := core.CompileProgram(p, level)
		if err != nil {
			return nil, fmt.Errorf("scaling %s at %s: %w", p.Name, level, err)
		}
		row := ScalingRow{Level: level, CompileTime: c.Result.CompileTime}
		spec := pipeline.VerifySpec{
			InputBytes: opts.InputBytes,
			Timeout:    opts.Timeout,
			Strategy:   opts.Strategy,
			Seed:       opts.Seed,
		}
		ms, err := pipeline.MeasureVerifyScaling(c.Mod, spec, opts.Workers)
		if err != nil {
			return nil, fmt.Errorf("scaling %s at %s: %w", p.Name, level, err)
		}
		var base time.Duration
		for i, m := range ms {
			cell := ScalingCell{
				Workers:  m.Workers,
				Elapsed:  m.Elapsed,
				Paths:    m.Paths,
				TimedOut: m.TimedOut,
			}
			if i == 0 {
				base = m.Elapsed
			}
			if m.Elapsed > 0 && base > 0 {
				cell.Speedup = float64(base) / float64(m.Elapsed)
			}
			row.Cells = append(row.Cells, cell)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderScaling formats the sweep: one block per level, one line per
// worker count, with the speedup relative to the level's serial run.
func RenderScaling(rows []ScalingRow, opts ScalingOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Worker scaling: %s, %d symbolic bytes (GOMAXPROCS=%d)\n",
		opts.Program, opts.InputBytes, runtime.GOMAXPROCS(0))
	for _, row := range rows {
		fmt.Fprintf(&sb, "\n%s (compile %s)\n", row.Level, fmtDur(row.CompileTime)+"ms")
		fmt.Fprintf(&sb, "  %8s %14s %10s %10s\n", "workers", "tverify [ms]", "paths", "speedup")
		for _, cell := range row.Cells {
			d := fmtDur(cell.Elapsed)
			if cell.TimedOut {
				d = ">" + d
			}
			fmt.Fprintf(&sb, "  %8d %14s %10s %9.2fx\n",
				cell.Workers, d, fmtCount(cell.Paths), cell.Speedup)
		}
	}
	sb.WriteString("\n(speedup is relative to the same level at the first worker count;\n")
	sb.WriteString(" wall-clock gains require GOMAXPROCS > 1 — verdicts never depend on workers)\n")
	return sb.String()
}
