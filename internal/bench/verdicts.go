package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/verdicts"
)

// VerdictSweepOptions configure the warm-vs-cold verdict-store
// measurement: the full corpus is verified twice per level against one
// content-addressed store — once cold (populating it) and once warm
// (served from it) — and the warm run must reproduce every cold report
// byte-identically while skipping the exploration.
type VerdictSweepOptions struct {
	// Programs restricts the corpus (default: all).
	Programs []string
	// InputBytes is the symbolic input size (default 3, the full-corpus
	// sweep setting).
	InputBytes int
	// MaxInstrs caps each cell's exploration (default 2,000,000, the
	// recorded sweep cap). Truncated runs are not cacheable, so capped
	// cells count against the skip rate honestly.
	MaxInstrs int64
	// Workers is the engine worker count (0/1 serial).
	Workers int
	// Levels to measure (default: all five).
	Levels []pipeline.Level
	// Dir is the store directory; empty uses a fresh temp directory.
	Dir string
}

func (o VerdictSweepOptions) withDefaults() VerdictSweepOptions {
	if len(o.Programs) == 0 {
		for _, p := range coreutils.All() {
			o.Programs = append(o.Programs, p.Name)
		}
	}
	if o.InputBytes == 0 {
		o.InputBytes = 3
	}
	if o.MaxInstrs == 0 {
		o.MaxInstrs = 2_000_000
	}
	if len(o.Levels) == 0 {
		o.Levels = []pipeline.Level{pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify}
	}
	return o
}

// VerdictRow is one level's warm-vs-cold measurement.
type VerdictRow struct {
	Level       string  `json:"level"`
	Programs    int     `json:"programs"`
	ColdMs      float64 `json:"t_verify_cold_ms"`
	WarmMs      float64 `json:"t_verify_warm_ms"`
	Stored      int64   `json:"stored"`
	WarmHits    int64   `json:"warm_hits"`
	WarmSkipped int64   `json:"warm_skipped_verifies"`
	Identical   bool    `json:"identical"`
}

// VerdictSweep runs the cold and warm corpus sweeps. Both phases
// recompile every program — compile time is excluded from the reported
// verify times, so the warm column isolates what the store saves: the
// exploration itself.
func VerdictSweep(opts VerdictSweepOptions) ([]VerdictRow, error) {
	opts = opts.withDefaults()
	dir := opts.Dir
	if dir == "" {
		d, err := os.MkdirTemp("", "overify-verdicts-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(d)
		dir = d
	}
	store, err := verdicts.Open(dir)
	if err != nil {
		return nil, err
	}

	verify := func(p coreutils.Program, level pipeline.Level) (string, *VerdictRowCell, error) {
		c, err := core.CompileProgram(p, level)
		if err != nil {
			return "", nil, fmt.Errorf("%s at %s: %w", p.Name, level, err)
		}
		vo := core.VerifyOptions{InputBytes: opts.InputBytes, Verdicts: store}
		vo.Engine.MaxInstrs = opts.MaxInstrs
		vo.Engine.Workers = opts.Workers
		start := time.Now()
		rep, err := c.Verify("umain", vo)
		if err != nil {
			return "", nil, fmt.Errorf("%s at %s: verify: %w", p.Name, level, err)
		}
		return verdicts.Render(rep), &VerdictRowCell{
			Elapsed: time.Since(start),
			Hits:    rep.Stats.VerdictCacheHits,
			Skipped: rep.Stats.SkippedFuncVerifies,
		}, nil
	}

	var rows []VerdictRow
	for _, level := range opts.Levels {
		row := VerdictRow{Level: level.String(), Programs: len(opts.Programs), Identical: true}
		cold := make(map[string]string, len(opts.Programs))
		before := store.Stores()
		for _, name := range opts.Programs {
			p, ok := coreutils.Get(name)
			if !ok {
				return nil, fmt.Errorf("verdicts: unknown corpus program %q", name)
			}
			render, cell, err := verify(p, level)
			if err != nil {
				return nil, err
			}
			cold[name] = render
			row.ColdMs += durMs(cell.Elapsed)
		}
		row.Stored = store.Stores() - before
		for _, name := range opts.Programs {
			p, _ := coreutils.Get(name)
			render, cell, err := verify(p, level)
			if err != nil {
				return nil, err
			}
			row.WarmMs += durMs(cell.Elapsed)
			row.WarmHits += cell.Hits
			row.WarmSkipped += cell.Skipped
			if render != cold[name] {
				row.Identical = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// VerdictRowCell carries one verify call's measurement.
type VerdictRowCell struct {
	Elapsed time.Duration
	Hits    int64
	Skipped int64
}

// RenderVerdictSweep renders the sweep as the text recorded in
// EXPERIMENTS.md.
func RenderVerdictSweep(rows []VerdictRow, opts VerdictSweepOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Verdict-store warm-vs-cold sweep: %d programs, %d symbolic bytes, %d-instr cap\n",
		len(opts.Programs), opts.InputBytes, opts.MaxInstrs)
	fmt.Fprintf(&sb, "  %-9s %14s %14s %8s %10s %10s %10s\n",
		"level", "t_cold[ms]", "t_warm[ms]", "speedup", "stored", "warm hits", "identical")
	var verifies, skipped int64
	for _, r := range rows {
		speedup := 0.0
		if r.WarmMs > 0 {
			speedup = r.ColdMs / r.WarmMs
		}
		fmt.Fprintf(&sb, "  %-9s %14.1f %14.1f %7.1fx %10d %10d %10v\n",
			r.Level, r.ColdMs, r.WarmMs, speedup, r.Stored, r.WarmHits, r.Identical)
		verifies += int64(r.Programs)
		skipped += r.WarmSkipped
	}
	if verifies > 0 {
		fmt.Fprintf(&sb, "  warm sweep skipped %d of %d per-function verifies (%.0f%%)\n",
			skipped, verifies, 100*float64(skipped)/float64(verifies))
	}
	return sb.String()
}

// VerdictSweepJSON is the machine-readable form (BENCH_verdicts.json).
func VerdictSweepJSON(rows []VerdictRow, opts VerdictSweepOptions) ([]byte, error) {
	opts = opts.withDefaults()
	doc := struct {
		InputBytes int          `json:"input_bytes"`
		MaxInstrs  int64        `json:"max_instrs"`
		Programs   int          `json:"programs"`
		Rows       []VerdictRow `json:"rows"`
	}{opts.InputBytes, opts.MaxInstrs, len(opts.Programs), rows}
	return json.MarshalIndent(doc, "", "  ")
}
