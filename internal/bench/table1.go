package bench

import (
	"fmt"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/interp"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/solver"
	"overify/internal/symex"
)

// Table1Options parameterize the wc micro-benchmark.
type Table1Options struct {
	// InputBytes is the maximum symbolic string length (paper: 10).
	InputBytes int
	// RunWords is the word count for the concrete t_run workload
	// (paper: 10^8; scaled down by default).
	RunWords int
	// VerifyTimeout caps each level's exploration.
	VerifyTimeout time.Duration
	// Workers is the symbolic-execution worker count (0/1 serial).
	Workers int
	// Strategy is the exploration order (default DFS).
	Strategy symex.SearchKind
	// Seed feeds the random-path strategy.
	Seed int64
	// Levels to measure (default: O0, O2, O3, OVerify — the paper's
	// columns).
	Levels []pipeline.Level
	// Pipeline overrides every level's pass sequence (-passes=).
	Pipeline *pipeline.PipelineSpec
}

// Table1Row is one column of the paper's Table 1 (transposed: one row
// per optimization level).
type Table1Row struct {
	Level       pipeline.Level
	VerifyTime  time.Duration
	CompileTime time.Duration
	RunTime     time.Duration
	RunInstrs   int64
	Instrs      int64 // instructions interpreted during verification
	Paths       int64
	TimedOut    bool
	Bugs        int
	Solver      solver.Stats // the per-query cost the paper says dominates
}

// Table1 reproduces the paper's Table 1: exhaustively explore wc for
// strings up to InputBytes characters at each level, measure compile,
// verify and concrete-run time. All levels compile up front — in
// parallel when Workers allows — then verify and run serially so the
// timing columns are not perturbed by concurrent work.
func Table1(opts Table1Options) ([]Table1Row, error) {
	if opts.InputBytes == 0 {
		opts.InputBytes = 10
	}
	if opts.RunWords == 0 {
		opts.RunWords = 50_000
	}
	if opts.VerifyTimeout == 0 {
		opts.VerifyTimeout = 60 * time.Second
	}
	if opts.Levels == nil {
		opts.Levels = []pipeline.Level{pipeline.O0, pipeline.O2, pipeline.O3, pipeline.OVerify}
	}
	text := WordText(opts.RunWords)

	compiled := make([]*core.Compiled, len(opts.Levels))
	errs := make([]error, len(opts.Levels))
	parallelDo(len(opts.Levels), opts.Workers, func(i int) {
		compiled[i], errs[i] = CompileAtOpts("wc", WcSource, opts.Levels[i], CompileOpts{Pipeline: opts.Pipeline, Jobs: opts.Workers})
	})

	var rows []Table1Row
	for i, level := range opts.Levels {
		if errs[i] != nil {
			return nil, fmt.Errorf("table1 %s: %w", level, errs[i])
		}
		c := compiled[i]
		row := Table1Row{Level: level, CompileTime: c.Result.CompileTime}

		rep, err := VerifyWc(c, opts.InputBytes, symex.Options{Timeout: opts.VerifyTimeout, Workers: opts.Workers, Strategy: opts.Strategy, Seed: opts.Seed})
		if err != nil {
			return nil, fmt.Errorf("table1 %s: verify: %w", level, err)
		}
		row.VerifyTime = rep.Stats.Elapsed
		row.Instrs = rep.Stats.Instrs
		row.Paths = rep.Stats.TotalPaths()
		row.TimedOut = rep.Stats.TimedOut
		row.Bugs = len(rep.Bugs)
		row.Solver = rep.Stats.SolverStats

		rt, ri, err := TimeConcreteRun(c, "wc", text, interp.IntVal(ir.I32, 0))
		if err != nil {
			return nil, fmt.Errorf("table1 %s: run: %w", level, err)
		}
		row.RunTime = rt
		row.RunInstrs = ri
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderTable1 formats the rows like the paper's Table 1.
func RenderTable1(rows []Table1Row, opts Table1Options) string {
	var sb strings.Builder
	n := opts.InputBytes
	if n == 0 {
		n = 10
	}
	fmt.Fprintf(&sb, "Table 1: exhaustive symbolic execution of wc, strings up to %d bytes\n", n)
	fmt.Fprintf(&sb, "%-14s", "Optimization")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%14s", r.Level.String())
	}
	sb.WriteByte('\n')

	line := func(label string, f func(r Table1Row) string) {
		fmt.Fprintf(&sb, "%-14s", label)
		for _, r := range rows {
			fmt.Fprintf(&sb, "%14s", f(r))
		}
		sb.WriteByte('\n')
	}
	line("tverify [ms]", func(r Table1Row) string {
		s := fmtDur(r.VerifyTime)
		if r.TimedOut {
			s = ">" + s
		}
		return s
	})
	line("tcompile [ms]", func(r Table1Row) string { return fmtDur(r.CompileTime) })
	line("trun [ms]", func(r Table1Row) string { return fmtDur(r.RunTime) })
	line("# instructions", func(r Table1Row) string { return fmtCount(r.Instrs) })
	line("# paths", func(r Table1Row) string { return fmtCount(r.Paths) })
	line("solver queries", func(r Table1Row) string { return fmtCount(r.Solver.Queries) })
	line("cache hits", func(r Table1Row) string { return fmtCount(r.Solver.CacheHits) })
	line("partition hits", func(r Table1Row) string { return fmtCount(r.Solver.PartitionHits) })
	line("model reuse", func(r Table1Row) string { return fmtCount(r.Solver.ModelReuseHits) })
	line("tape compiles", func(r Table1Row) string { return fmtCount(r.Solver.TapeCompiles) })
	return sb.String()
}
