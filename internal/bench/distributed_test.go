package bench

import (
	"encoding/json"
	"strings"
	"testing"
)

// A small sweep must produce one row per (program, cluster size), every
// row conformant with its serial baseline, real shards shipped for a
// program whose frontier actually splits, and valid JSON with the
// portfolio comparison attached.
func TestDistributedSweepSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real cluster verifications")
	}
	opts := DistributedSweepOptions{
		Programs:     []string{"tr"},
		HardPrograms: []string{"cksum"},
		ClusterSizes: []int{1, 2},
	}
	res, err := DistributedSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows: got %d, want 2", len(res.Rows))
	}
	for _, r := range res.Rows {
		if !r.Identical {
			t.Errorf("%s cluster=%d: cluster render diverged from serial", r.Program, r.Cluster)
		}
		if r.SplitStates == 0 || r.ShardsSent == 0 {
			t.Errorf("%s cluster=%d: nothing shipped (states=%d shards=%d) — tr splits at the default target",
				r.Program, r.Cluster, r.SplitStates, r.ShardsSent)
		}
	}
	if len(res.Portfolio) != 1 || res.Portfolio[0].Program != "cksum" {
		t.Fatalf("portfolio rows: %+v", res.Portfolio)
	}
	if res.Portfolio[0].FixedAssignments <= 0 {
		t.Fatalf("portfolio row has no assignment counter: %+v", res.Portfolio[0])
	}

	text := RenderDistributedSweep(res, opts)
	if !strings.Contains(text, "all renders identical to serial: true") {
		t.Fatalf("render lacks the conformance line:\n%s", text)
	}
	data, err := DistributedSweepJSON(res, opts)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows          []DistributedRow `json:"rows"`
		PortfolioRows []PortfolioRow   `json:"portfolio_rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Rows) != 2 || len(doc.PortfolioRows) != 1 {
		t.Fatalf("JSON shape: %d rows, %d portfolio rows", len(doc.Rows), len(doc.PortfolioRows))
	}
}
