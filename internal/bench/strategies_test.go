package bench

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"overify/internal/pipeline"
	"overify/internal/symex"
)

// TestStrategyCompareConformance: the bench harness must surface the
// engine's strategy-independence — same paths and bugs in every cell of
// a row — and render/serialize every strategy it ran.
func TestStrategyCompareConformance(t *testing.T) {
	opts := StrategyCompareOptions{
		Programs:   []string{"wc", "uniq"},
		InputBytes: 3,
		Timeout:    30 * time.Second,
		Levels:     []pipeline.Level{pipeline.O0},
	}
	rows, err := StrategyCompare(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	nStrats := len(symex.Strategies())
	for _, row := range rows {
		if len(row.Cells) != nStrats {
			t.Fatalf("%s: got %d cells, want %d strategies", row.Program, len(row.Cells), nStrats)
		}
		base := row.Cells[0]
		for _, cell := range row.Cells {
			if cell.Err != "" {
				t.Fatalf("%s/%s: %s", row.Program, cell.Strategy, cell.Err)
			}
			if cell.Paths != base.Paths || cell.Bugs != base.Bugs {
				t.Errorf("%s/%s: paths=%d bugs=%d diverge from %s (paths=%d bugs=%d)",
					row.Program, cell.Strategy, cell.Paths, cell.Bugs,
					base.Strategy, base.Paths, base.Bugs)
			}
			if cell.States <= 0 || cell.Covered <= 0 {
				t.Errorf("%s/%s: empty work counters: %+v", row.Program, cell.Strategy, cell)
			}
		}
	}

	text := RenderStrategyCompare(rows, opts)
	for _, name := range []string{"dfs", "bfs", "covnew", "rand", "interleave", "fastest"} {
		if !strings.Contains(text, name) {
			t.Errorf("rendering lacks %q:\n%s", name, text)
		}
	}

	data, err := StrategyCompareJSON(rows, opts)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Rows []StrategyRow `json:"rows"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("JSON round trip: %v", err)
	}
	if len(doc.Rows) != 2 || len(doc.Rows[0].Cells) != nStrats {
		t.Errorf("JSON lost rows: %d rows", len(doc.Rows))
	}
}

// TestStrategyCompareUnknownProgram: a bad program name is a hard error.
func TestStrategyCompareUnknownProgram(t *testing.T) {
	if _, err := StrategyCompare(StrategyCompareOptions{Programs: []string{"no-such"}}); err == nil {
		t.Error("unknown program accepted")
	}
}
