package bench

import (
	"encoding/json"
	"fmt"
	"regexp"
	"sort"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// SliceSweepOptions configure the slicing study: every program × level
// cell is verified twice — baseline and sliced — under the same budget,
// and the sweep reports what the slicer deleted from the exploration
// (paths, instructions, wall time) while pinning bug parity.
type SliceSweepOptions struct {
	// Programs restricts the corpus (default: all).
	Programs []string
	// InputBytes is the symbolic input size (default 3).
	InputBytes int
	// Timeout budgets each cell's exploration (default 3s). The
	// headline measurement is cksum: its baseline times out below -O3,
	// its slice must not.
	Timeout time.Duration
	// Checks is the kept-check subset (default: all).
	Checks ir.CheckSet
	// Levels to measure (default: all five).
	Levels []pipeline.Level
}

func (o SliceSweepOptions) withDefaults() SliceSweepOptions {
	if len(o.Programs) == 0 {
		for _, p := range coreutils.All() {
			o.Programs = append(o.Programs, p.Name)
		}
	}
	if o.InputBytes == 0 {
		o.InputBytes = 3
	}
	if o.Timeout == 0 {
		o.Timeout = 3 * time.Second
	}
	if len(o.Levels) == 0 {
		o.Levels = []pipeline.Level{pipeline.O0, pipeline.O1, pipeline.O2, pipeline.O3, pipeline.OVerify}
	}
	return o
}

// SliceRow is one (program, level) cell: the same verification run
// baseline and sliced.
type SliceRow struct {
	Program string `json:"program"`
	Level   string `json:"level"`

	BaseMs       float64 `json:"t_verify_base_ms"`
	SliceMs      float64 `json:"t_verify_sliced_ms"`
	BasePaths    int64   `json:"paths_base"`
	SlicePaths   int64   `json:"paths_sliced"`
	BaseInstrs   int64   `json:"instrs_base"`
	SliceInstrs  int64   `json:"instrs_sliced"`
	BaseTimeout  bool    `json:"base_timed_out"`
	SliceTimeout bool    `json:"sliced_timed_out"`

	// BugParity: the sliced run reported exactly the baseline's bugs
	// (positions normalized to function granularity). Vacuously true
	// when either side timed out.
	BugParity bool `json:"bug_parity"`
}

var slicePos = regexp.MustCompile(`(@[A-Za-z0-9_$]+)/[^ ]+`)

// sliceBugKeys renders the position-normalized bug set (deduplicated:
// block-granularity normalization can merge sites the engine reported
// separately).
func sliceBugKeys(rep *symex.Report) string {
	uniq := map[string]bool{}
	for _, b := range rep.Bugs {
		uniq[fmt.Sprintf("[%s] %s", b.Kind, slicePos.ReplaceAllString(b.Msg, "$1"))] = true
	}
	keys := make([]string, 0, len(uniq))
	for k := range uniq {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, "\n")
}

// SliceSweep measures the slicing study.
func SliceSweep(opts SliceSweepOptions) ([]SliceRow, error) {
	opts = opts.withDefaults()
	verify := func(p coreutils.Program, level pipeline.Level, slice bool) (*symex.Report, float64, error) {
		cfg := pipeline.LevelConfig(level)
		cfg.Slice = slice
		cfg.SliceChecks = opts.Checks
		c, err := core.CompileWithConfig(p.Name, p.Src, cfg, core.DefaultLibc(level))
		if err != nil {
			return nil, 0, fmt.Errorf("%s at %s (slice=%v): %w", p.Name, level, slice, err)
		}
		vo := core.VerifyOptions{InputBytes: opts.InputBytes, Checks: opts.Checks}
		vo.Engine.Timeout = opts.Timeout
		start := time.Now()
		rep, err := c.Verify("umain", vo)
		if err != nil {
			return nil, 0, fmt.Errorf("%s at %s (slice=%v): verify: %w", p.Name, level, slice, err)
		}
		return rep, durMs(time.Since(start)), nil
	}

	var rows []SliceRow
	for _, name := range opts.Programs {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, fmt.Errorf("slicing: unknown corpus program %q", name)
		}
		for _, level := range opts.Levels {
			base, baseMs, err := verify(p, level, false)
			if err != nil {
				return nil, err
			}
			sliced, sliceMs, err := verify(p, level, true)
			if err != nil {
				return nil, err
			}
			row := SliceRow{
				Program: p.Name, Level: level.String(),
				BaseMs: baseMs, SliceMs: sliceMs,
				BasePaths: base.Stats.Paths, SlicePaths: sliced.Stats.Paths,
				BaseInstrs: base.Stats.Instrs, SliceInstrs: sliced.Stats.Instrs,
				BaseTimeout: base.Stats.TimedOut, SliceTimeout: sliced.Stats.TimedOut,
				BugParity: true,
			}
			if !row.BaseTimeout && !row.SliceTimeout {
				row.BugParity = sliceBugKeys(base) == sliceBugKeys(sliced)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// RenderSliceSweep renders the study as the text recorded in
// EXPERIMENTS.md.
func RenderSliceSweep(rows []SliceRow, opts SliceSweepOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Verification-aware slicing sweep: %d symbolic bytes, %s budget, checks=%s\n",
		opts.InputBytes, opts.Timeout, opts.Checks)
	fmt.Fprintf(&sb, "  %-12s %-9s %12s %12s %12s %12s %8s %s\n",
		"program", "level", "t_base[ms]", "t_slice[ms]", "paths", "instrs", "parity", "")
	reducedPaths := map[string]bool{}
	for _, r := range rows {
		note := ""
		if r.BaseTimeout {
			note = "base TIMEOUT"
		}
		if r.SliceTimeout {
			note += " slice TIMEOUT"
		}
		parity := "ok"
		if !r.BugParity {
			parity = "FAIL"
		}
		if r.SlicePaths < r.BasePaths || r.SliceInstrs < r.BaseInstrs {
			reducedPaths[r.Program] = true
		}
		fmt.Fprintf(&sb, "  %-12s %-9s %12.1f %12.1f %6d→%-6d %6d→%-6d %8s %s\n",
			r.Program, r.Level, r.BaseMs, r.SliceMs,
			r.BasePaths, r.SlicePaths, r.BaseInstrs, r.SliceInstrs, parity, note)
	}
	fmt.Fprintf(&sb, "  (%d of the measured programs shrank in paths or instructions)\n", len(reducedPaths))
	return sb.String()
}

// SliceSweepJSON marshals the study for BENCH_slicing.json.
func SliceSweepJSON(rows []SliceRow, opts SliceSweepOptions) ([]byte, error) {
	opts = opts.withDefaults()
	doc := struct {
		Experiment string     `json:"experiment"`
		InputBytes int        `json:"input_bytes"`
		TimeoutMS  float64    `json:"timeout_ms"`
		Checks     string     `json:"checks"`
		Rows       []SliceRow `json:"rows"`
	}{
		Experiment: "verification-aware slicing: baseline vs sliced exploration per program x level",
		InputBytes: opts.InputBytes,
		TimeoutMS:  durMs(opts.Timeout),
		Checks:     opts.Checks.String(),
		Rows:       rows,
	}
	return json.MarshalIndent(doc, "", "  ")
}
