package bench_test

import (
	"testing"
	"time"

	"overify/internal/bench"
	"overify/internal/pipeline"
)

// TestTable1Shape asserts the qualitative claims of the paper's Table 1
// at a laptop-scale input size.
func TestTable1Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-level wc exploration in -short mode")
	}
	opts := bench.Table1Options{InputBytes: 6, RunWords: 2000, VerifyTimeout: 90 * time.Second}
	rows, err := bench.Table1(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bench.RenderTable1(rows, opts))
	byLevel := map[pipeline.Level]bench.Table1Row{}
	for _, r := range rows {
		byLevel[r.Level] = r
	}
	o0, o2, o3, ov := byLevel[pipeline.O0], byLevel[pipeline.O2], byLevel[pipeline.O3], byLevel[pipeline.OVerify]

	// Paths: O0 == O2 (same CFG structure); O3 roughly equal (its gain
	// here is per-path instruction count, not path count — see
	// EXPERIMENTS.md); OVerify collapses to n+1.
	if o0.Paths != o2.Paths {
		t.Errorf("paths: O0 (%d) != O2 (%d)", o0.Paths, o2.Paths)
	}
	if float64(o3.Paths) > 1.05*float64(o2.Paths) {
		t.Errorf("paths: O3 (%d) should not exceed O2 (%d) by more than 5%%", o3.Paths, o2.Paths)
	}
	if ov.Paths*10 > o3.Paths {
		t.Errorf("paths: OVerify (%d) should be at least 10x below O3 (%d)", ov.Paths, o3.Paths)
	}
	if ov.Paths != int64(opts.InputBytes)+1 {
		t.Errorf("OVerify paths = %d, want %d", ov.Paths, opts.InputBytes+1)
	}
	// Instructions interpreted: strictly decreasing O0 -> O2 -> O3 -> OVerify.
	if !(o0.Instrs > o2.Instrs && o2.Instrs > o3.Instrs && o3.Instrs > ov.Instrs) {
		t.Errorf("instrs not strictly decreasing: %d, %d, %d, %d",
			o0.Instrs, o2.Instrs, o3.Instrs, ov.Instrs)
	}
	// Verification time: OVerify fastest by a wide margin.
	if ov.VerifyTime*10 > o0.VerifyTime {
		t.Errorf("OVerify verify time %v not >=10x faster than O0 %v", ov.VerifyTime, o0.VerifyTime)
	}
	// The execution conflict: the branch-free -OVERIFY build executes
	// more instructions per concrete run than -O3 (paper: 2.5x slower).
	if ov.RunInstrs <= o3.RunInstrs {
		t.Errorf("run instrs: OVerify (%d) should exceed O3 (%d) — the CPU/verifier conflict",
			ov.RunInstrs, o3.RunInstrs)
	}
}

// TestTable3Shape asserts Table 3's claims: -O0 does nothing, -OSYMBEX
// transforms far more than -O3.
func TestTable3Shape(t *testing.T) {
	rows, err := bench.Table3()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bench.RenderTable3(rows))
	byLevel := map[pipeline.Level]bench.Table3Row{}
	for _, r := range rows {
		byLevel[r.Level] = r
		if r.Failures != 0 {
			t.Errorf("%s: %d programs failed to compile", r.Level, r.Failures)
		}
	}
	o0, o3, ov := byLevel[pipeline.O0], byLevel[pipeline.O3], byLevel[pipeline.OVerify]
	if o0.FunctionsInlined != 0 || o0.LoopsUnswitched != 0 || o0.BranchesConverted != 0 {
		t.Errorf("-O0 should transform nothing: %+v", o0)
	}
	if ov.FunctionsInlined <= o3.FunctionsInlined {
		t.Errorf("inlined: OVerify (%d) should exceed O3 (%d)", ov.FunctionsInlined, o3.FunctionsInlined)
	}
	if ov.BranchesConverted <= o3.BranchesConverted {
		t.Errorf("converted: OVerify (%d) should exceed O3 (%d)", ov.BranchesConverted, o3.BranchesConverted)
	}
}

// TestFigure4Small runs the corpus study on a subset with small budgets
// and asserts the headline direction: -OSYMBEX wins overall.
func TestFigure4Small(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-corpus verification study in -short mode")
	}
	// 5 bytes puts the experiment in the verification-dominated regime
	// the paper measures (with 2-3 bytes, compile time dominates and -O0
	// "wins" by not compiling — the effect the paper says "vanishes in
	// longer experiments").
	opts := bench.Figure4Options{
		InputBytes: 5,
		Timeout:    5 * time.Second,
	}
	rows, summary, err := bench.Figure4(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bench.RenderFigure4(rows, summary, opts))
	if summary.TotalOVerify >= summary.TotalO3 {
		t.Errorf("OVerify total (%v) should beat O3 total (%v)",
			summary.TotalOVerify, summary.TotalO3)
	}
	if summary.ReductionVsO0 <= 0 {
		t.Errorf("expected positive reduction vs O0, got %.2f", summary.ReductionVsO0)
	}
}

// TestTable2Shape asserts the measured ablation's signs for the rows
// where the paper is unambiguous.
func TestTable2Shape(t *testing.T) {
	rows, err := bench.Table2(bench.Table2Options{InputBytes: 3})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", bench.RenderTable2(rows))
	byName := map[string]bench.Table2Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Constant folding helps both verification and execution.
	cf := byName["constant folding + simplification"]
	if cf.VerifImpact() != "+" {
		t.Errorf("constant folding verification impact = %s, want +", cf.VerifImpact())
	}
	if cf.ExecImpact() == "-" {
		t.Errorf("constant folding execution impact = -, want + or 0")
	}
	// mem2reg helps both.
	m2r := byName["remove memory accesses (mem2reg)"]
	if m2r.VerifImpact() != "+" || m2r.ExecImpact() != "+" {
		t.Errorf("mem2reg impacts = %s/%s, want +/+", m2r.VerifImpact(), m2r.ExecImpact())
	}
	// If-conversion helps verification (the paper's headline) and hurts
	// or is neutral for execution.
	ic := byName["if-conversion (branch->select)"]
	if ic.VerifImpact() != "+" {
		t.Errorf("if-conversion verification impact = %s, want +", ic.VerifImpact())
	}
	if ic.PathsWith >= ic.PathsBase {
		t.Errorf("if-conversion paths: %d -> %d, want a reduction", ic.PathsBase, ic.PathsWith)
	}
	// Runtime checks cost execution time (negative) — that's their price.
	rc := byName["runtime checks"]
	if rc.ExecImpact() == "+" {
		t.Errorf("runtime checks execution impact = +, want - or 0")
	}
}
