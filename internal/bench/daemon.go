package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/daemon"
	"overify/internal/pipeline"
	"overify/internal/verdicts"
)

// DaemonSweepOptions configure the warm-vs-cold daemon measurement:
// each corpus program is verified once cold through the CLI path
// (fresh compile, fresh engine — what a standalone symbex run pays),
// then three times through one in-process daemon server: cold
// (populating its caches), warm through the verdict store, and warm
// with the verdict store bypassed so the run exercises the shared
// builder + solver cache. Every daemon render must be byte-identical
// to the CLI baseline.
type DaemonSweepOptions struct {
	// Programs restricts the corpus (default: all).
	Programs []string
	// InputBytes is the symbolic input size (default 3).
	InputBytes int
	// MaxInstrs caps each exploration (default 2,000,000).
	MaxInstrs int64
	// Level is the optimization level (default -OVERIFY).
	Level pipeline.Level
	// LevelSet marks Level as explicitly chosen (lets O0 be selected).
	LevelSet bool
}

func (o DaemonSweepOptions) withDefaults() DaemonSweepOptions {
	if len(o.Programs) == 0 {
		for _, p := range coreutils.All() {
			o.Programs = append(o.Programs, p.Name)
		}
	}
	if o.InputBytes == 0 {
		o.InputBytes = 3
	}
	if o.MaxInstrs == 0 {
		o.MaxInstrs = 2_000_000
	}
	if !o.LevelSet {
		o.Level = pipeline.OVerify
	}
	return o
}

// DaemonRow is one program's cold-vs-warm measurement.
type DaemonRow struct {
	Program      string  `json:"program"`
	CLIMs        float64 `json:"t_cli_ms"`         // cold CLI path: compile + verify
	DaemonColdMs float64 `json:"t_daemon_cold_ms"` // first daemon request
	WarmMs       float64 `json:"t_warm_ms"`        // repeat via the verdict store
	EngineWarmMs float64 `json:"t_engine_warm_ms"` // repeat bypassing verdicts
	VerdictHit   bool    `json:"verdict_hit"`
	SkipRate     float64 `json:"engine_warm_skip_rate"` // fraction of engine-warm queries answered without a fresh search
	Identical    bool    `json:"identical"`
}

// DaemonSweep runs the sweep against an in-process daemon server (the
// same code path overifyd serves; the wire protocol adds only framing).
func DaemonSweep(opts DaemonSweepOptions) ([]DaemonRow, error) {
	opts = opts.withDefaults()
	dir, err := os.MkdirTemp("", "overify-daemon-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	store, err := verdicts.Open(dir)
	if err != nil {
		return nil, err
	}
	srv := daemon.NewServer(daemon.Config{Verdicts: store})

	var rows []DaemonRow
	for _, name := range opts.Programs {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, fmt.Errorf("daemon sweep: unknown corpus program %q", name)
		}

		// CLI baseline: everything cold.
		cliStart := time.Now()
		c, err := core.CompileProgram(p, opts.Level)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		vo := core.VerifyOptions{InputBytes: opts.InputBytes}
		vo.Engine.MaxInstrs = opts.MaxInstrs
		rep, err := c.Verify("umain", vo)
		if err != nil {
			return nil, fmt.Errorf("%s: verify: %w", name, err)
		}
		row := DaemonRow{Program: name, CLIMs: durMs(time.Since(cliStart)), Identical: true}
		baseline := verdicts.Render(rep)

		req := &daemon.VerifyRequest{
			Prog: name, Level: opts.Level.String(),
			InputBytes: opts.InputBytes, MaxInstrs: opts.MaxInstrs,
		}
		cold, err := srv.Verify(req)
		if err != nil {
			return nil, fmt.Errorf("%s: daemon cold: %w", name, err)
		}
		row.DaemonColdMs = cold.CompileMS + cold.VerifyMS

		warm, err := srv.Verify(req)
		if err != nil {
			return nil, fmt.Errorf("%s: daemon warm: %w", name, err)
		}
		row.WarmMs = warm.CompileMS + warm.VerifyMS
		row.VerdictHit = warm.VerdictCacheHit

		noVerd := *req
		noVerd.NoVerdicts = true
		engineWarm, err := srv.Verify(&noVerd)
		if err != nil {
			return nil, fmt.Errorf("%s: daemon engine-warm: %w", name, err)
		}
		row.EngineWarmMs = engineWarm.CompileMS + engineWarm.VerifyMS
		if engineWarm.SolverQueries > 0 {
			row.SkipRate = 1 - float64(engineWarm.SolverSearches)/float64(engineWarm.SolverQueries)
		}
		for _, render := range []string{cold.Render, warm.Render, engineWarm.Render} {
			if render != baseline {
				row.Identical = false
			}
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderDaemonSweep renders the sweep as the text recorded in
// EXPERIMENTS.md.
func RenderDaemonSweep(rows []DaemonRow, opts DaemonSweepOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Daemon warm-vs-cold sweep: %d programs at %s, %d symbolic bytes\n",
		len(rows), opts.Level, opts.InputBytes)
	fmt.Fprintf(&sb, "  %-10s %12s %12s %12s %14s %9s %10s\n",
		"program", "t_cli[ms]", "t_cold[ms]", "t_warm[ms]", "t_engine[ms]", "skipped", "identical")
	var identical = true
	var cli, warm float64
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-10s %12.1f %12.1f %12.1f %14.1f %8.0f%% %10v\n",
			r.Program, r.CLIMs, r.DaemonColdMs, r.WarmMs, r.EngineWarmMs, 100*r.SkipRate, r.Identical)
		identical = identical && r.Identical
		cli += r.CLIMs
		warm += r.WarmMs
	}
	if warm > 0 {
		fmt.Fprintf(&sb, "  warm daemon repeat: %.1fx faster than the cold CLI path (all identical: %v)\n",
			cli/warm, identical)
	}
	return sb.String()
}

// DaemonSweepJSON is the machine-readable form (BENCH_daemon.json).
func DaemonSweepJSON(rows []DaemonRow, opts DaemonSweepOptions) ([]byte, error) {
	opts = opts.withDefaults()
	doc := struct {
		InputBytes int         `json:"input_bytes"`
		MaxInstrs  int64       `json:"max_instrs"`
		Level      string      `json:"level"`
		Rows       []DaemonRow `json:"rows"`
	}{opts.InputBytes, opts.MaxInstrs, opts.Level.String(), rows}
	return json.MarshalIndent(doc, "", "  ")
}
