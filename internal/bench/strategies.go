package bench

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// StrategyCompareOptions parameterize the search-strategy study: for
// each (program, level), verify once per strategy and compare t_verify
// and the work counters. This is the Figure-4-style harness that says
// which exploration order minimizes verification effort at each
// optimization level — the verifier-side analogue of the paper's
// program-side -OVERIFY lever.
type StrategyCompareOptions struct {
	// Programs restricts the corpus (default: all).
	Programs []string
	// InputBytes is the symbolic input size (default 3).
	InputBytes int
	// Timeout caps each (program, level, strategy) cell (default 5s).
	Timeout time.Duration
	// Workers is the engine worker count (0/1 serial).
	Workers int
	// Levels to measure (default O0 and O2 — unoptimized vs. the
	// classic CPU-oriented middle level).
	Levels []pipeline.Level
	// Strategies to compare (default: all built-ins).
	Strategies []symex.SearchKind
	// Seed feeds the random-path strategy.
	Seed int64
}

func (o StrategyCompareOptions) withDefaults() StrategyCompareOptions {
	if o.Programs == nil {
		o.Programs = coreutils.Names()
	}
	if o.InputBytes == 0 {
		o.InputBytes = 3
	}
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	if o.Levels == nil {
		o.Levels = []pipeline.Level{pipeline.O0, pipeline.O2}
	}
	if o.Strategies == nil {
		o.Strategies = symex.Strategies()
	}
	return o
}

// StrategyCell is one (program, level, strategy) measurement.
type StrategyCell struct {
	Strategy string  `json:"strategy"`
	VerifyMs float64 `json:"t_verify_ms"`
	Paths    int64   `json:"paths"`
	States   int64   `json:"states_explored"`
	Instrs   int64   `json:"instrs"`
	Covered  int     `json:"covered_blocks"`
	Bugs     int     `json:"bugs"`
	TimedOut bool    `json:"timed_out,omitempty"`
	Err      string  `json:"error,omitempty"`
}

// StrategyRow is one (program, level) sweep over strategies.
type StrategyRow struct {
	Program   string         `json:"program"`
	Level     string         `json:"level"`
	CompileMs float64        `json:"t_compile_ms"`
	Cells     []StrategyCell `json:"strategies"`
}

// StrategyCompare runs the study: compile each program once per level,
// then verify once per strategy against the same module.
func StrategyCompare(opts StrategyCompareOptions) ([]StrategyRow, error) {
	opts = opts.withDefaults()
	var rows []StrategyRow
	for _, name := range opts.Programs {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, fmt.Errorf("strategies: unknown corpus program %q", name)
		}
		for _, level := range opts.Levels {
			c, err := core.CompileProgram(p, level)
			if err != nil {
				return nil, fmt.Errorf("strategies %s at %s: %w", name, level, err)
			}
			row := StrategyRow{
				Program:   name,
				Level:     level.String(),
				CompileMs: durMs(c.Result.CompileTime),
			}
			for _, strat := range opts.Strategies {
				cell := StrategyCell{Strategy: strat.String()}
				m, err := pipeline.MeasureVerify(c.Mod, pipeline.VerifySpec{
					InputBytes: opts.InputBytes,
					Timeout:    opts.Timeout,
					Workers:    opts.Workers,
					Strategy:   strat,
					Seed:       opts.Seed,
				})
				if err != nil {
					cell.Err = err.Error()
					row.Cells = append(row.Cells, cell)
					continue
				}
				cell.VerifyMs = durMs(m.Elapsed)
				cell.Paths = m.Paths
				cell.States = m.States
				cell.Instrs = m.Instrs
				cell.Covered = m.Covered
				cell.Bugs = m.Bugs
				cell.TimedOut = m.TimedOut
				row.Cells = append(row.Cells, cell)
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// StrategyCompareJSON renders the rows as the BENCH_strategies.json
// trajectory artifact: per-strategy t_verify and states-explored that
// later PRs benchmark against.
func StrategyCompareJSON(rows []StrategyRow, opts StrategyCompareOptions) ([]byte, error) {
	opts = opts.withDefaults()
	doc := struct {
		InputBytes int           `json:"input_bytes"`
		TimeoutMs  float64       `json:"timeout_ms"`
		Workers    int           `json:"workers"`
		Rows       []StrategyRow `json:"rows"`
	}{opts.InputBytes, durMs(opts.Timeout), opts.Workers, rows}
	return json.MarshalIndent(doc, "", "  ")
}

// RenderStrategyCompare draws one block per (program, level): a line
// per strategy plus a verdict line naming the t_verify winner.
func RenderStrategyCompare(rows []StrategyRow, opts StrategyCompareOptions) string {
	opts = opts.withDefaults()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Search-strategy comparison: %d symbolic bytes, timeout %s, %d programs\n",
		opts.InputBytes, opts.Timeout, len(opts.Programs))
	for _, row := range rows {
		fmt.Fprintf(&sb, "\n%s at %s (compile %.1fms)\n", row.Program, row.Level, row.CompileMs)
		fmt.Fprintf(&sb, "  %-8s %12s %10s %10s %10s %6s\n",
			"strategy", "tverify[ms]", "paths", "states", "covered", "bugs")
		best := ""
		bestMs := 0.0
		for _, cell := range row.Cells {
			if cell.Err != "" {
				fmt.Fprintf(&sb, "  %-8s error: %s\n", cell.Strategy, cell.Err)
				continue
			}
			d := fmt.Sprintf("%.1f", cell.VerifyMs)
			if cell.TimedOut {
				d = ">" + d
			}
			fmt.Fprintf(&sb, "  %-8s %12s %10s %10s %10d %6d\n",
				cell.Strategy, d, fmtCount(cell.Paths), fmtCount(cell.States), cell.Covered, cell.Bugs)
			if !cell.TimedOut && (best == "" || cell.VerifyMs < bestMs) {
				best, bestMs = cell.Strategy, cell.VerifyMs
			}
		}
		if best != "" {
			fmt.Fprintf(&sb, "  -> fastest: %s\n", best)
		}
	}
	sb.WriteString("\n(verdicts are strategy-independent; what differs is effort. A budgeted run\n")
	sb.WriteString(" — MaxPaths, CoverTarget or a timeout — is where strategy choice pays.)\n")
	return sb.String()
}

// durMs converts a duration to float milliseconds for the JSON artifact.
func durMs(d time.Duration) float64 { return float64(d.Microseconds()) / 1000.0 }
