package bench

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// Figure4Options parameterize the corpus study.
type Figure4Options struct {
	// InputBytes is the symbolic input size (paper: 2–10 bytes).
	InputBytes int
	// Timeout caps each (program, level) exploration — the paper's
	// one-hour budget, scaled.
	Timeout time.Duration
	// Workers is the symbolic-execution worker count (0/1 serial).
	Workers int
	// Strategy is the exploration order (default DFS).
	Strategy symex.SearchKind
	// Seed feeds the random-path strategy.
	Seed int64
	// Programs restricts the corpus (default: all).
	Programs []string
	// Pipeline overrides every level's pass sequence (-passes=).
	Pipeline *pipeline.PipelineSpec

	// Budget adds the time-to-coverage study: after each cell's
	// exhaustive run, every strategy in BudgetStrategies re-explores
	// under the cell's Timeout with CoverTarget set, measuring how fast
	// each search order reaches coverage rather than how fast it
	// exhausts the program.
	Budget bool
	// CoverTarget is the block count the budget runs stop at; 0 uses
	// each cell's own exhaustive coverage (full coverage of that
	// program at that level).
	CoverTarget int
	// BudgetStrategies defaults to every built-in strategy.
	BudgetStrategies []symex.SearchKind
}

// Figure4Levels are the three configurations the paper compares.
var Figure4Levels = []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify}

// Figure4Cell is one (program, level) measurement.
type Figure4Cell struct {
	Total    time.Duration // compile + verify
	Compile  time.Duration
	Verify   time.Duration
	Paths    int64
	Instrs   int64
	TimedOut bool
	Bugs     int
	Err      string

	// Budget holds the per-strategy time-to-coverage columns (strategy
	// name -> measurement), present when Figure4Options.Budget is set.
	Budget map[string]*Figure4Budget `json:",omitempty"`
}

// Figure4Budget is one strategy's run against a coverage target under
// the cell's timeout.
type Figure4Budget struct {
	Target   int // block-coverage stop condition
	Covered  int // blocks actually covered when the run stopped
	States   int64
	Paths    int64
	Elapsed  time.Duration
	TimedOut bool // hit the timeout before the coverage target
}

// Figure4Row is one program's measurements across levels.
type Figure4Row struct {
	Program string
	Cells   map[pipeline.Level]*Figure4Cell
}

// Figure4Summary aggregates the paper's headline claims.
type Figure4Summary struct {
	Programs          int
	TotalO0           time.Duration
	TotalO3           time.Duration
	TotalOVerify      time.Duration
	ReductionVsO3     float64 // fraction of total time saved vs -O3
	ReductionVsO0     float64
	MaxSpeedupVsO3    float64 // best per-program ratio t(O3)/t(OVerify)
	MaxSpeedupProgram string
	TimeoutsO0        int
	TimeoutsO3        int
	TimeoutsOVerify   int
	RescuedFromO3     int // timed out at -O3, completed at -OVERIFY
	OVerifySlower     int // programs where -O3 beat -OVERIFY
}

// normalized fills the option defaults. Figure4, RenderFigure4 and
// Figure4JSON all normalize, so the rendered and recorded
// budget/timeout values always match what the runs actually used.
func (o Figure4Options) normalized() Figure4Options {
	if o.InputBytes == 0 {
		o.InputBytes = 4
	}
	if o.Timeout == 0 {
		o.Timeout = 5 * time.Second
	}
	return o
}

// Figure4 runs the corpus study: compile+verify every program at -O0,
// -O3 and -OVERIFY. Phase 1 compiles every (program, level) module —
// in parallel when Workers allows, results landing in index-addressed
// slots so the study's ordering stays deterministic; phase 2 verifies
// serially so the wall-clock columns are not perturbed by concurrent
// compilation (each module's compile time was already measured inside
// pipeline.Optimize).
func Figure4(opts Figure4Options) ([]Figure4Row, *Figure4Summary, error) {
	opts = opts.normalized()
	names := opts.Programs
	if names == nil {
		names = coreutils.Names()
	}

	programs := make([]coreutils.Program, len(names))
	for i, name := range names {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, nil, fmt.Errorf("figure4: unknown program %q", name)
		}
		programs[i] = p
	}

	// Phase 1: compile every cell, per-program × per-level parallelism.
	nl := len(Figure4Levels)
	compiled := make([]*core.Compiled, len(programs)*nl)
	cerrs := make([]error, len(programs)*nl)
	parallelDo(len(programs)*nl, opts.Workers, func(i int) {
		p, level := programs[i/nl], Figure4Levels[i%nl]
		compiled[i], cerrs[i] = CompileAtOpts(p.Name, p.Src, level, CompileOpts{Pipeline: opts.Pipeline, Jobs: opts.Workers})
	})

	// Phase 2: verify serially, in the deterministic study order.
	var rows []Figure4Row
	for pi, p := range programs {
		row := Figure4Row{Program: p.Name, Cells: make(map[pipeline.Level]*Figure4Cell)}
		for li, level := range Figure4Levels {
			cell := &Figure4Cell{}
			row.Cells[level] = cell
			c, err := compiled[pi*nl+li], cerrs[pi*nl+li]
			if err != nil {
				cell.Err = err.Error()
				continue
			}
			cell.Compile = c.Result.CompileTime
			eng := symex.NewEngine(c.Mod, symex.Options{Timeout: opts.Timeout, Workers: opts.Workers, Strategy: opts.Strategy, Seed: opts.Seed})
			buf := eng.SymbolicBuffer("input", opts.InputBytes, true)
			length := eng.IntArg(ir.I32, uint64(opts.InputBytes))
			rep, err := eng.Run("umain", []symex.SymVal{buf, length}, nil)
			if err != nil {
				cell.Err = err.Error()
				continue
			}
			cell.Verify = rep.Stats.Elapsed
			cell.Total = cell.Compile + cell.Verify
			cell.Paths = rep.Stats.TotalPaths()
			cell.Instrs = rep.Stats.Instrs
			cell.TimedOut = rep.Stats.TimedOut
			cell.Bugs = len(rep.Bugs)
			if opts.Budget {
				budgetCells(c.Mod, cell, rep.Stats.CoveredBlocks, opts)
			}
		}
		rows = append(rows, row)
	}
	return rows, summarizeFigure4(rows, opts), nil
}

// budgetCells runs the per-strategy time-to-coverage study for one
// (program, level) cell: each strategy explores under the same timeout
// with CoverTarget set, so the columns compare how fast the orderings
// reach coverage — the regime where search strategy actually matters
// (exhaustive runs do identical work by the conformance theorem).
func budgetCells(mod *ir.Module, cell *Figure4Cell, fullCoverage int, opts Figure4Options) {
	target := opts.CoverTarget
	if target <= 0 {
		target = fullCoverage
	}
	strategies := opts.BudgetStrategies
	if strategies == nil {
		strategies = symex.Strategies()
	}
	cell.Budget = make(map[string]*Figure4Budget, len(strategies))
	for _, strat := range strategies {
		eng := symex.NewEngine(mod, symex.Options{
			Timeout:     opts.Timeout,
			Workers:     opts.Workers,
			Strategy:    strat,
			Seed:        opts.Seed,
			CoverTarget: target,
		})
		buf := eng.SymbolicBuffer("input", opts.InputBytes, true)
		length := eng.IntArg(ir.I32, uint64(opts.InputBytes))
		rep, err := eng.Run("umain", []symex.SymVal{buf, length}, nil)
		if err != nil {
			continue
		}
		cell.Budget[strat.String()] = &Figure4Budget{
			Target:   target,
			Covered:  rep.Stats.CoveredBlocks,
			States:   rep.Stats.StatesExplored,
			Paths:    rep.Stats.TotalPaths(),
			Elapsed:  rep.Stats.Elapsed,
			TimedOut: rep.Stats.TimedOut || rep.Stats.CoveredBlocks < target,
		}
	}
}

func summarizeFigure4(rows []Figure4Row, opts Figure4Options) *Figure4Summary {
	s := &Figure4Summary{Programs: len(rows)}
	for _, row := range rows {
		o0 := row.Cells[pipeline.O0]
		o3 := row.Cells[pipeline.O3]
		ov := row.Cells[pipeline.OVerify]
		if o0 == nil || o3 == nil || ov == nil {
			continue
		}
		s.TotalO0 += o0.Total
		s.TotalO3 += o3.Total
		s.TotalOVerify += ov.Total
		if o0.TimedOut {
			s.TimeoutsO0++
		}
		if o3.TimedOut {
			s.TimeoutsO3++
		}
		if ov.TimedOut {
			s.TimeoutsOVerify++
		}
		if o3.TimedOut && !ov.TimedOut {
			s.RescuedFromO3++
		}
		if !o3.TimedOut && !ov.TimedOut && o3.Total < ov.Total {
			s.OVerifySlower++
		}
		if !ov.TimedOut && ov.Total > 0 {
			speedup := float64(o3.Total) / float64(ov.Total)
			if speedup > s.MaxSpeedupVsO3 {
				s.MaxSpeedupVsO3 = speedup
				s.MaxSpeedupProgram = row.Program
			}
		}
	}
	if s.TotalO3 > 0 {
		s.ReductionVsO3 = 1 - float64(s.TotalOVerify)/float64(s.TotalO3)
	}
	if s.TotalO0 > 0 {
		s.ReductionVsO0 = 1 - float64(s.TotalOVerify)/float64(s.TotalO0)
	}
	return s
}

// RenderFigure4 draws the study as a sorted text chart in the spirit of
// the paper's Figure 4 (one bar per experiment), followed by the
// summary lines the paper quotes.
func RenderFigure4(rows []Figure4Row, s *Figure4Summary, opts Figure4Options) string {
	opts = opts.normalized()
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: compile+verify time per program (%d symbolic bytes, timeout %s)\n\n",
		opts.InputBytes, opts.Timeout)
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s  %s\n", "program", "-O0[ms]", "-O3[ms]", "-OSYMBEX[ms]", "gain vs -O3")

	// Sort like the paper: programs where -OVERIFY gains most on the
	// right; here: ascending gain.
	sorted := append([]Figure4Row(nil), rows...)
	gain := func(r Figure4Row) float64 {
		o3, ov := r.Cells[pipeline.O3], r.Cells[pipeline.OVerify]
		if o3 == nil || ov == nil || ov.Total == 0 {
			return 0
		}
		return float64(o3.Total) - float64(ov.Total)
	}
	sort.Slice(sorted, func(i, j int) bool { return gain(sorted[i]) < gain(sorted[j]) })

	for _, row := range sorted {
		o0, o3, ov := row.Cells[pipeline.O0], row.Cells[pipeline.O3], row.Cells[pipeline.OVerify]
		cellStr := func(c *Figure4Cell) string {
			if c == nil || c.Err != "" {
				return "err"
			}
			str := fmtDur(c.Total)
			if c.TimedOut {
				str = ">" + str
			}
			return str
		}
		bar := ""
		if o3 != nil && ov != nil && ov.Total > 0 {
			ratio := float64(o3.Total) / float64(ov.Total)
			n := int(ratio)
			if n > 40 {
				n = 40
			}
			if n >= 1 {
				bar = strings.Repeat("#", n)
			}
			bar = fmt.Sprintf("%-40s %.1fx", bar, ratio)
		}
		fmt.Fprintf(&sb, "%-10s %12s %12s %12s  %s\n",
			row.Program, cellStr(o0), cellStr(o3), cellStr(ov), bar)
	}

	renderFigure4Budget(&sb, sorted, opts)

	fmt.Fprintf(&sb, "\nSummary over %d programs:\n", s.Programs)
	fmt.Fprintf(&sb, "  total time: -O0 %s, -O3 %s, -OSYMBEX %s\n",
		s.TotalO0.Round(time.Millisecond), s.TotalO3.Round(time.Millisecond),
		s.TotalOVerify.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  -OSYMBEX reduces total time by %.0f%% vs -O3 and %.0f%% vs -O0\n",
		100*s.ReductionVsO3, 100*s.ReductionVsO0)
	fmt.Fprintf(&sb, "  max benefit: %.0fx (%s)\n", s.MaxSpeedupVsO3, s.MaxSpeedupProgram)
	fmt.Fprintf(&sb, "  timeouts: %d at -O0, %d at -O3, %d at -OSYMBEX (%d rescued from -O3)\n",
		s.TimeoutsO0, s.TimeoutsO3, s.TimeoutsOVerify, s.RescuedFromO3)
	fmt.Fprintf(&sb, "  programs where -O3 beat -OSYMBEX: %d\n", s.OVerifySlower)
	return sb.String()
}

// renderFigure4Budget draws the per-strategy time-to-coverage columns
// when the budget study ran: states explored (and wall time) until the
// coverage target, ">" marking runs that hit the timeout first.
func renderFigure4Budget(sb *strings.Builder, rows []Figure4Row, opts Figure4Options) {
	strategies := opts.BudgetStrategies
	if strategies == nil {
		strategies = symex.Strategies()
	}
	any := false
	for _, row := range rows {
		for _, cell := range row.Cells {
			if len(cell.Budget) > 0 {
				any = true
			}
		}
	}
	if !any {
		return
	}
	fmt.Fprintf(sb, "\nTime to coverage (states until target, wall ms; timeout %s):\n", opts.Timeout)
	fmt.Fprintf(sb, "%-10s %-9s %7s", "program", "level", "target")
	for _, strat := range strategies {
		fmt.Fprintf(sb, " %16s", strat)
	}
	sb.WriteByte('\n')
	for _, row := range rows {
		for _, level := range Figure4Levels {
			cell := row.Cells[level]
			if cell == nil || len(cell.Budget) == 0 {
				continue
			}
			target := 0
			for _, b := range cell.Budget {
				target = b.Target
			}
			fmt.Fprintf(sb, "%-10s %-9s %7d", row.Program, level, target)
			for _, strat := range strategies {
				b := cell.Budget[strat.String()]
				if b == nil {
					fmt.Fprintf(sb, " %16s", "err")
					continue
				}
				mark := ""
				if b.TimedOut {
					mark = ">"
				}
				fmt.Fprintf(sb, " %16s", fmt.Sprintf("%s%d(%sms)", mark, b.States, fmtDur(b.Elapsed)))
			}
			sb.WriteByte('\n')
		}
	}
}

// Figure4JSON renders the study (rows, summary, options) as JSON — the
// machine-readable record overify-bench -figure4 -json writes, with
// the budget columns included when they ran.
func Figure4JSON(rows []Figure4Row, s *Figure4Summary, opts Figure4Options) ([]byte, error) {
	opts = opts.normalized()
	type cellJSON struct {
		Level string
		*Figure4Cell
	}
	type rowJSON struct {
		Program string
		Cells   []cellJSON
	}
	out := struct {
		InputBytes  int
		TimeoutMs   float64
		Workers     int
		Budget      bool
		CoverTarget int
		Rows        []rowJSON
		Summary     *Figure4Summary
	}{
		InputBytes:  opts.InputBytes,
		TimeoutMs:   float64(opts.Timeout.Microseconds()) / 1000,
		Workers:     opts.Workers,
		Budget:      opts.Budget,
		CoverTarget: opts.CoverTarget,
		Summary:     s,
	}
	for _, row := range rows {
		rj := rowJSON{Program: row.Program}
		for _, level := range Figure4Levels {
			if cell := row.Cells[level]; cell != nil {
				rj.Cells = append(rj.Cells, cellJSON{Level: level.String(), Figure4Cell: cell})
			}
		}
		out.Rows = append(out.Rows, rj)
	}
	return json.MarshalIndent(out, "", "  ")
}
