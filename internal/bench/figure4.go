package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"overify/internal/coreutils"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/symex"
)

// Figure4Options parameterize the corpus study.
type Figure4Options struct {
	// InputBytes is the symbolic input size (paper: 2–10 bytes).
	InputBytes int
	// Timeout caps each (program, level) exploration — the paper's
	// one-hour budget, scaled.
	Timeout time.Duration
	// Workers is the symbolic-execution worker count (0/1 serial).
	Workers int
	// Strategy is the exploration order (default DFS).
	Strategy symex.SearchKind
	// Seed feeds the random-path strategy.
	Seed int64
	// Programs restricts the corpus (default: all).
	Programs []string
}

// Figure4Levels are the three configurations the paper compares.
var Figure4Levels = []pipeline.Level{pipeline.O0, pipeline.O3, pipeline.OVerify}

// Figure4Cell is one (program, level) measurement.
type Figure4Cell struct {
	Total    time.Duration // compile + verify
	Compile  time.Duration
	Verify   time.Duration
	Paths    int64
	Instrs   int64
	TimedOut bool
	Bugs     int
	Err      string
}

// Figure4Row is one program's measurements across levels.
type Figure4Row struct {
	Program string
	Cells   map[pipeline.Level]*Figure4Cell
}

// Figure4Summary aggregates the paper's headline claims.
type Figure4Summary struct {
	Programs          int
	TotalO0           time.Duration
	TotalO3           time.Duration
	TotalOVerify      time.Duration
	ReductionVsO3     float64 // fraction of total time saved vs -O3
	ReductionVsO0     float64
	MaxSpeedupVsO3    float64 // best per-program ratio t(O3)/t(OVerify)
	MaxSpeedupProgram string
	TimeoutsO0        int
	TimeoutsO3        int
	TimeoutsOVerify   int
	RescuedFromO3     int // timed out at -O3, completed at -OVERIFY
	OVerifySlower     int // programs where -O3 beat -OVERIFY
}

// Figure4 runs the corpus study: compile+verify every program at -O0,
// -O3 and -OVERIFY.
func Figure4(opts Figure4Options) ([]Figure4Row, *Figure4Summary, error) {
	if opts.InputBytes == 0 {
		opts.InputBytes = 4
	}
	if opts.Timeout == 0 {
		opts.Timeout = 5 * time.Second
	}
	names := opts.Programs
	if names == nil {
		names = coreutils.Names()
	}

	var rows []Figure4Row
	for _, name := range names {
		p, ok := coreutils.Get(name)
		if !ok {
			return nil, nil, fmt.Errorf("figure4: unknown program %q", name)
		}
		row := Figure4Row{Program: name, Cells: make(map[pipeline.Level]*Figure4Cell)}
		for _, level := range Figure4Levels {
			cell := &Figure4Cell{}
			row.Cells[level] = cell
			c, err := CompileAt(p.Name, p.Src, level)
			if err != nil {
				cell.Err = err.Error()
				continue
			}
			cell.Compile = c.Result.CompileTime
			eng := symex.NewEngine(c.Mod, symex.Options{Timeout: opts.Timeout, Workers: opts.Workers, Strategy: opts.Strategy, Seed: opts.Seed})
			buf := eng.SymbolicBuffer("input", opts.InputBytes, true)
			length := eng.IntArg(ir.I32, uint64(opts.InputBytes))
			rep, err := eng.Run("umain", []symex.SymVal{buf, length}, nil)
			if err != nil {
				cell.Err = err.Error()
				continue
			}
			cell.Verify = rep.Stats.Elapsed
			cell.Total = cell.Compile + cell.Verify
			cell.Paths = rep.Stats.TotalPaths()
			cell.Instrs = rep.Stats.Instrs
			cell.TimedOut = rep.Stats.TimedOut
			cell.Bugs = len(rep.Bugs)
		}
		rows = append(rows, row)
	}
	return rows, summarizeFigure4(rows, opts), nil
}

func summarizeFigure4(rows []Figure4Row, opts Figure4Options) *Figure4Summary {
	s := &Figure4Summary{Programs: len(rows)}
	for _, row := range rows {
		o0 := row.Cells[pipeline.O0]
		o3 := row.Cells[pipeline.O3]
		ov := row.Cells[pipeline.OVerify]
		if o0 == nil || o3 == nil || ov == nil {
			continue
		}
		s.TotalO0 += o0.Total
		s.TotalO3 += o3.Total
		s.TotalOVerify += ov.Total
		if o0.TimedOut {
			s.TimeoutsO0++
		}
		if o3.TimedOut {
			s.TimeoutsO3++
		}
		if ov.TimedOut {
			s.TimeoutsOVerify++
		}
		if o3.TimedOut && !ov.TimedOut {
			s.RescuedFromO3++
		}
		if !o3.TimedOut && !ov.TimedOut && o3.Total < ov.Total {
			s.OVerifySlower++
		}
		if !ov.TimedOut && ov.Total > 0 {
			speedup := float64(o3.Total) / float64(ov.Total)
			if speedup > s.MaxSpeedupVsO3 {
				s.MaxSpeedupVsO3 = speedup
				s.MaxSpeedupProgram = row.Program
			}
		}
	}
	if s.TotalO3 > 0 {
		s.ReductionVsO3 = 1 - float64(s.TotalOVerify)/float64(s.TotalO3)
	}
	if s.TotalO0 > 0 {
		s.ReductionVsO0 = 1 - float64(s.TotalOVerify)/float64(s.TotalO0)
	}
	return s
}

// RenderFigure4 draws the study as a sorted text chart in the spirit of
// the paper's Figure 4 (one bar per experiment), followed by the
// summary lines the paper quotes.
func RenderFigure4(rows []Figure4Row, s *Figure4Summary, opts Figure4Options) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Figure 4: compile+verify time per program (%d symbolic bytes, timeout %s)\n\n",
		opts.InputBytes, opts.Timeout)
	fmt.Fprintf(&sb, "%-10s %12s %12s %12s  %s\n", "program", "-O0[ms]", "-O3[ms]", "-OSYMBEX[ms]", "gain vs -O3")

	// Sort like the paper: programs where -OVERIFY gains most on the
	// right; here: ascending gain.
	sorted := append([]Figure4Row(nil), rows...)
	gain := func(r Figure4Row) float64 {
		o3, ov := r.Cells[pipeline.O3], r.Cells[pipeline.OVerify]
		if o3 == nil || ov == nil || ov.Total == 0 {
			return 0
		}
		return float64(o3.Total) - float64(ov.Total)
	}
	sort.Slice(sorted, func(i, j int) bool { return gain(sorted[i]) < gain(sorted[j]) })

	for _, row := range sorted {
		o0, o3, ov := row.Cells[pipeline.O0], row.Cells[pipeline.O3], row.Cells[pipeline.OVerify]
		cellStr := func(c *Figure4Cell) string {
			if c == nil || c.Err != "" {
				return "err"
			}
			str := fmtDur(c.Total)
			if c.TimedOut {
				str = ">" + str
			}
			return str
		}
		bar := ""
		if o3 != nil && ov != nil && ov.Total > 0 {
			ratio := float64(o3.Total) / float64(ov.Total)
			n := int(ratio)
			if n > 40 {
				n = 40
			}
			if n >= 1 {
				bar = strings.Repeat("#", n)
			}
			bar = fmt.Sprintf("%-40s %.1fx", bar, ratio)
		}
		fmt.Fprintf(&sb, "%-10s %12s %12s %12s  %s\n",
			row.Program, cellStr(o0), cellStr(o3), cellStr(ov), bar)
	}

	fmt.Fprintf(&sb, "\nSummary over %d programs:\n", s.Programs)
	fmt.Fprintf(&sb, "  total time: -O0 %s, -O3 %s, -OSYMBEX %s\n",
		s.TotalO0.Round(time.Millisecond), s.TotalO3.Round(time.Millisecond),
		s.TotalOVerify.Round(time.Millisecond))
	fmt.Fprintf(&sb, "  -OSYMBEX reduces total time by %.0f%% vs -O3 and %.0f%% vs -O0\n",
		100*s.ReductionVsO3, 100*s.ReductionVsO0)
	fmt.Fprintf(&sb, "  max benefit: %.0fx (%s)\n", s.MaxSpeedupVsO3, s.MaxSpeedupProgram)
	fmt.Fprintf(&sb, "  timeouts: %d at -O0, %d at -O3, %d at -OSYMBEX (%d rescued from -O3)\n",
		s.TimeoutsO0, s.TimeoutsO3, s.TimeoutsOVerify, s.RescuedFromO3)
	fmt.Fprintf(&sb, "  programs where -O3 beat -OSYMBEX: %d\n", s.OVerifySlower)
	return sb.String()
}
