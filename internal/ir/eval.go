package ir

// This file centralizes the scalar semantics of the IR. Constant folding,
// the concrete interpreter, the bytecode VM and the symbolic executor all
// evaluate operations through these helpers, so a value computed four
// different ways is guaranteed to agree bit-for-bit.

// EvalBin evaluates a binary op on width-masked operands, returning the
// masked result. ok is false exactly when the operation traps (division
// or remainder by zero).
func EvalBin(op Op, bits int, a, b uint64) (res uint64, ok bool) {
	a = Mask(bits, a)
	b = Mask(bits, b)
	switch op {
	case OpAdd:
		return Mask(bits, a+b), true
	case OpSub:
		return Mask(bits, a-b), true
	case OpMul:
		return Mask(bits, a*b), true
	case OpUDiv:
		if b == 0 {
			return 0, false
		}
		return Mask(bits, a/b), true
	case OpSDiv:
		if b == 0 {
			return 0, false
		}
		sa, sb := SignExtend(bits, a), SignExtend(bits, b)
		// Overflow case INT_MIN / -1 wraps (two's complement), like LLVM
		// at the machine level; MiniC defines it as wrapping.
		if sb == -1 {
			return Mask(bits, uint64(-sa)), true
		}
		return Mask(bits, uint64(sa/sb)), true
	case OpURem:
		if b == 0 {
			return 0, false
		}
		return Mask(bits, a%b), true
	case OpSRem:
		if b == 0 {
			return 0, false
		}
		sa, sb := SignExtend(bits, a), SignExtend(bits, b)
		if sb == -1 {
			return 0, true
		}
		return Mask(bits, uint64(sa%sb)), true
	case OpAnd:
		return a & b, true
	case OpOr:
		return a | b, true
	case OpXor:
		return a ^ b, true
	case OpShl:
		if b >= uint64(bits) {
			return 0, true
		}
		return Mask(bits, a<<b), true
	case OpLShr:
		if b >= uint64(bits) {
			return 0, true
		}
		return a >> b, true
	case OpAShr:
		sa := SignExtend(bits, a)
		if b >= uint64(bits) {
			if sa < 0 {
				return Mask(bits, ^uint64(0)), true
			}
			return 0, true
		}
		return Mask(bits, uint64(sa>>b)), true
	}
	panic("ir: EvalBin: not a binary op: " + op.String())
}

// EvalCmp evaluates an integer comparison on width-masked operands.
func EvalCmp(op Op, bits int, a, b uint64) bool {
	a = Mask(bits, a)
	b = Mask(bits, b)
	switch op {
	case OpEq:
		return a == b
	case OpNe:
		return a != b
	case OpULt:
		return a < b
	case OpULe:
		return a <= b
	case OpUGt:
		return a > b
	case OpUGe:
		return a >= b
	}
	sa, sb := SignExtend(bits, a), SignExtend(bits, b)
	switch op {
	case OpSLt:
		return sa < sb
	case OpSLe:
		return sa <= sb
	case OpSGt:
		return sa > sb
	case OpSGe:
		return sa >= sb
	}
	panic("ir: EvalCmp: not a comparison: " + op.String())
}

// EvalCast evaluates zext/sext/trunc from fromBits to toBits.
func EvalCast(op Op, fromBits, toBits int, v uint64) uint64 {
	switch op {
	case OpZExt:
		return Mask(fromBits, v)
	case OpSExt:
		return Mask(toBits, uint64(SignExtend(fromBits, v)))
	case OpTrunc:
		return Mask(toBits, v)
	}
	panic("ir: EvalCast: not a cast: " + op.String())
}
