package ir

import "fmt"

// Builder provides a convenient API for emitting instructions at the end
// of a current block, with result-type inference and light validation.
type Builder struct {
	Fn  *Function
	Cur *Block
}

// NewBuilder returns a builder positioned at b.
func NewBuilder(fn *Function, b *Block) *Builder {
	return &Builder{Fn: fn, Cur: b}
}

// SetBlock repositions the builder.
func (bd *Builder) SetBlock(b *Block) { bd.Cur = b }

// Closed reports whether the current block already has a terminator, in
// which case further emission is a frontend bug.
func (bd *Builder) Closed() bool { return bd.Cur.Term() != nil }

func (bd *Builder) emit(in *Instr) *Instr {
	if bd.Closed() {
		panic(fmt.Sprintf("ir: emit %s into closed block %s", in.Op, bd.Cur.Name))
	}
	return bd.Cur.Append(in)
}

func intOf(v Value, op Op) IntType {
	it, ok := v.Type().(IntType)
	if !ok {
		panic(fmt.Sprintf("ir: %s: integer operand required, got %s", op, v.Type()))
	}
	return it
}

// Bin emits a binary arithmetic/bitwise instruction.
func (bd *Builder) Bin(op Op, a, b Value) *Instr {
	if !op.IsBinary() {
		panic("ir: Bin: " + op.String() + " is not binary")
	}
	at := intOf(a, op)
	bt := intOf(b, op)
	if at.Bits != bt.Bits {
		panic(fmt.Sprintf("ir: %s: width mismatch %s vs %s", op, at, bt))
	}
	return bd.emit(&Instr{Op: op, Typ: at, Args: []Value{a, b}})
}

// Cmp emits an integer or pointer comparison producing i1. Pointer
// comparisons use the unsigned predicates plus eq/ne.
func (bd *Builder) Cmp(op Op, a, b Value) *Instr {
	if !op.IsCmp() {
		panic("ir: Cmp: " + op.String() + " is not a comparison")
	}
	if _, aPtr := a.Type().(PtrType); aPtr {
		if !SameType(a.Type(), b.Type()) {
			panic(fmt.Sprintf("ir: %s: pointer type mismatch %s vs %s", op, a.Type(), b.Type()))
		}
		switch op {
		case OpEq, OpNe, OpULt, OpULe, OpUGt, OpUGe:
		default:
			panic("ir: " + op.String() + " not valid on pointers")
		}
		return bd.emit(&Instr{Op: op, Typ: I1, Args: []Value{a, b}})
	}
	at := intOf(a, op)
	bt := intOf(b, op)
	if at.Bits != bt.Bits {
		panic(fmt.Sprintf("ir: %s: width mismatch %s vs %s", op, at, bt))
	}
	return bd.emit(&Instr{Op: op, Typ: I1, Args: []Value{a, b}})
}

// PtrDiff emits the i64 element distance between two pointers of the same
// type into the same object.
func (bd *Builder) PtrDiff(a, b Value) *Instr {
	if !SameType(a.Type(), b.Type()) {
		panic("ir: ptrdiff: operand type mismatch")
	}
	if _, ok := a.Type().(PtrType); !ok {
		panic("ir: ptrdiff: pointer operands required")
	}
	return bd.emit(&Instr{Op: OpPtrDiff, Typ: I64, Args: []Value{a, b}})
}

// Select emits select(cond, t, f).
func (bd *Builder) Select(cond, t, f Value) *Instr {
	if !SameType(cond.Type(), I1) {
		panic("ir: select: cond must be i1")
	}
	if !SameType(t.Type(), f.Type()) {
		panic("ir: select: arm type mismatch")
	}
	return bd.emit(&Instr{Op: OpSelect, Typ: t.Type(), Args: []Value{cond, t, f}})
}

// ZExt zero-extends v to type to.
func (bd *Builder) ZExt(v Value, to IntType) *Instr {
	return bd.emit(&Instr{Op: OpZExt, Typ: to, Args: []Value{v}})
}

// SExt sign-extends v to type to.
func (bd *Builder) SExt(v Value, to IntType) *Instr {
	return bd.emit(&Instr{Op: OpSExt, Typ: to, Args: []Value{v}})
}

// Trunc truncates v to type to.
func (bd *Builder) Trunc(v Value, to IntType) *Instr {
	return bd.emit(&Instr{Op: OpTrunc, Typ: to, Args: []Value{v}})
}

// IntCast converts v to integer type to, zero- or sign-extending when
// widening and truncating when narrowing. Same-width is the identity.
func (bd *Builder) IntCast(v Value, to IntType, signed bool) Value {
	from := intOf(v, OpZExt)
	switch {
	case from.Bits == to.Bits:
		return v
	case from.Bits > to.Bits:
		return bd.Trunc(v, to)
	case signed:
		return bd.SExt(v, to)
	default:
		return bd.ZExt(v, to)
	}
}

// Alloca allocates count elements of elem in the frame.
func (bd *Builder) Alloca(elem Type, count int64) *Instr {
	return bd.emit(&Instr{Op: OpAlloca, Typ: PtrTo(elem), Allocated: elem, Count: count})
}

// Load reads the element pointed to by ptr.
func (bd *Builder) Load(ptr Value) *Instr {
	pt, ok := ptr.Type().(PtrType)
	if !ok {
		panic("ir: load: pointer operand required")
	}
	return bd.emit(&Instr{Op: OpLoad, Typ: pt.Elem, Args: []Value{ptr}})
}

// Store writes val through ptr.
func (bd *Builder) Store(val, ptr Value) *Instr {
	pt, ok := ptr.Type().(PtrType)
	if !ok {
		panic("ir: store: pointer operand required")
	}
	if !SameType(pt.Elem, val.Type()) {
		panic(fmt.Sprintf("ir: store: %s into %s", val.Type(), ptr.Type()))
	}
	return bd.emit(&Instr{Op: OpStore, Typ: Void, Args: []Value{val, ptr}})
}

// GEP computes &base[index]; index must be i64.
func (bd *Builder) GEP(base, index Value) *Instr {
	if _, ok := base.Type().(PtrType); !ok {
		panic("ir: gep: pointer operand required")
	}
	if it, ok := index.Type().(IntType); !ok || it.Bits != 64 {
		panic("ir: gep: index must be i64")
	}
	return bd.emit(&Instr{Op: OpGEP, Typ: base.Type(), Args: []Value{base, index}})
}

// Call emits a direct call.
func (bd *Builder) Call(callee *Function, args ...Value) *Instr {
	if len(args) != len(callee.Sig.Params) {
		panic(fmt.Sprintf("ir: call %s: %d args, want %d", callee.Name, len(args), len(callee.Sig.Params)))
	}
	for i, a := range args {
		if !SameType(a.Type(), callee.Sig.Params[i]) {
			panic(fmt.Sprintf("ir: call %s: arg %d is %s, want %s",
				callee.Name, i, a.Type(), callee.Sig.Params[i]))
		}
	}
	return bd.emit(&Instr{Op: OpCall, Typ: callee.Sig.Ret, Callee: callee, Args: args})
}

// Phi emits an empty phi of type t at the top of the current block;
// incoming edges are added with SetPhiIncoming.
func (bd *Builder) Phi(t Type) *Instr {
	in := &Instr{Op: OpPhi, Typ: t}
	in.Blk = bd.Cur
	bd.Fn.ClaimID(in)
	// Phis must stay grouped at the block head.
	pos := bd.Cur.FirstNonPhi()
	bd.Cur.Instrs = append(bd.Cur.Instrs, nil)
	copy(bd.Cur.Instrs[pos+1:], bd.Cur.Instrs[pos:])
	bd.Cur.Instrs[pos] = in
	return in
}

// Check emits a runtime check that cond holds.
func (bd *Builder) Check(kind CheckKind, cond Value, msg string) *Instr {
	if !SameType(cond.Type(), I1) {
		panic("ir: check: cond must be i1")
	}
	return bd.emit(&Instr{Op: OpCheck, Typ: Void, Kind: kind, Args: []Value{cond}, Msg: msg})
}

// Br emits an unconditional branch to dst and closes the block.
func (bd *Builder) Br(dst *Block) *Instr {
	return bd.emit(&Instr{Op: OpBr, Typ: Void, Succs: []*Block{dst}})
}

// CondBr branches to then when cond is true, otherwise to els.
func (bd *Builder) CondBr(cond Value, then, els *Block) *Instr {
	if !SameType(cond.Type(), I1) {
		panic("ir: condbr: cond must be i1")
	}
	return bd.emit(&Instr{Op: OpCondBr, Typ: Void, Args: []Value{cond}, Succs: []*Block{then, els}})
}

// Ret emits a return; v may be nil for void functions.
func (bd *Builder) Ret(v Value) *Instr {
	in := &Instr{Op: OpRet, Typ: Void}
	if v != nil {
		in.Args = []Value{v}
	}
	return bd.emit(in)
}

// Unreachable marks the end of a block control cannot reach.
func (bd *Builder) Unreachable() *Instr {
	return bd.emit(&Instr{Op: OpUnreachable, Typ: Void})
}
