package ir

import (
	"fmt"
	"strings"
)

// String renders the module in an LLVM-like textual form, stable across
// identical inputs and therefore usable in tests.
func (m *Module) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "; module %s\n", m.Name)
	for _, g := range m.Globals {
		sb.WriteString(g.Def())
		sb.WriteByte('\n')
	}
	if len(m.Globals) > 0 {
		sb.WriteByte('\n')
	}
	for i, f := range m.Funcs {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(f.String())
	}
	return sb.String()
}

// Def renders the global's definition line.
func (g *Global) Def() string {
	var sb strings.Builder
	kind := "global"
	if g.ReadOnly {
		kind = "constant"
	}
	fmt.Fprintf(&sb, "@%s = %s [%d x %s]", g.Name, kind, g.Count, g.Elem)
	if g.Init != nil {
		sb.WriteString(" [")
		for i, v := range g.Init {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "%d", v)
		}
		sb.WriteString("]")
	} else {
		sb.WriteString(" zeroinitializer")
	}
	return sb.String()
}

// String renders the function with all blocks and instructions.
func (f *Function) String() string {
	var sb strings.Builder
	if f.IsDeclaration() {
		fmt.Fprintf(&sb, "declare %s @%s\n", f.Sig, f.Name)
		return sb.String()
	}
	fmt.Fprintf(&sb, "define %s @%s(", f.Sig.Ret, f.Name)
	for i, p := range f.Params {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "%s %%%s", p.Typ, p.Nam)
	}
	sb.WriteString(") {\n")
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(in.String())
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func operand(v Value) string {
	if v == nil {
		return "<nil>"
	}
	return fmt.Sprintf("%s %s", v.Type(), v.Ref())
}

// String renders a single instruction.
func (in *Instr) String() string {
	var sb strings.Builder
	if !SameType(in.Typ, Void) {
		fmt.Fprintf(&sb, "%s = ", in.Ref())
	}
	switch in.Op {
	case OpAlloca:
		fmt.Fprintf(&sb, "alloca %s, %d", in.Allocated, in.Count)
	case OpLoad:
		fmt.Fprintf(&sb, "load %s, %s", in.Typ, operand(in.Args[0]))
	case OpStore:
		fmt.Fprintf(&sb, "store %s, %s", operand(in.Args[0]), operand(in.Args[1]))
	case OpGEP:
		fmt.Fprintf(&sb, "gep %s, %s", operand(in.Args[0]), operand(in.Args[1]))
	case OpCall:
		fmt.Fprintf(&sb, "call %s @%s(", in.Typ, in.Callee.Name)
		for i, a := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(operand(a))
		}
		sb.WriteString(")")
	case OpPhi:
		fmt.Fprintf(&sb, "phi %s ", in.Typ)
		for i := range in.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "[%s, %%%s]", in.Args[i].Ref(), in.Incoming[i].Name)
		}
	case OpSelect:
		fmt.Fprintf(&sb, "select %s, %s, %s",
			operand(in.Args[0]), operand(in.Args[1]), operand(in.Args[2]))
	case OpZExt, OpSExt, OpTrunc:
		fmt.Fprintf(&sb, "%s %s to %s", in.Op, operand(in.Args[0]), in.Typ)
	case OpCheck:
		fmt.Fprintf(&sb, "check %s, %s ; %q", in.Kind, operand(in.Args[0]), in.Msg)
	case OpBr:
		fmt.Fprintf(&sb, "br label %%%s", in.Succs[0].Name)
	case OpCondBr:
		fmt.Fprintf(&sb, "br %s, label %%%s, label %%%s",
			operand(in.Args[0]), in.Succs[0].Name, in.Succs[1].Name)
	case OpRet:
		if len(in.Args) == 0 {
			sb.WriteString("ret void")
		} else {
			fmt.Fprintf(&sb, "ret %s", operand(in.Args[0]))
		}
	case OpUnreachable:
		sb.WriteString("unreachable")
	default:
		// Binary ops, comparisons.
		fmt.Fprintf(&sb, "%s %s %s, %s", in.Op, in.Args[0].Type(), in.Args[0].Ref(), in.Args[1].Ref())
	}
	if in.Meta != nil && in.Meta.Range != nil {
		fmt.Fprintf(&sb, " ; !range [%d,%d]", in.Meta.Range.Lo, in.Meta.Range.Hi)
	}
	return sb.String()
}
