package ir

import (
	"fmt"
	"strings"
)

// CheckSet is a subset of CheckKinds, used to verify one property at a
// time: the slicer keeps only checks in the set, and the engine skips
// OpCheck instructions whose kind is outside it. The zero value means
// "all checks" — the common case costs nothing to spell.
type CheckSet uint32

// AllChecks is the zero CheckSet: every check kind is kept.
const AllChecks CheckSet = 0

// ChecksOf builds a CheckSet containing exactly the given kinds.
func ChecksOf(kinds ...CheckKind) CheckSet {
	var s CheckSet
	for _, k := range kinds {
		s |= 1 << uint(k)
	}
	return s
}

// Contains reports whether kind k is kept by the set. The zero set
// keeps everything.
func (s CheckSet) Contains(k CheckKind) bool {
	return s == 0 || s&(1<<uint(k)) != 0
}

// All reports whether the set keeps every check kind.
func (s CheckSet) All() bool { return s == 0 }

// String spells the set as a comma-joined kind list, or "all".
func (s CheckSet) String() string {
	if s == 0 {
		return "all"
	}
	var names []string
	for k := CheckDivByZero; k <= CheckAssert; k++ {
		if s&(1<<uint(k)) != 0 {
			names = append(names, k.String())
		}
	}
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ",")
}

// ParseCheckSet parses a comma-separated list of check kind names
// ("div-by-zero,bounds"). Empty input and "all" mean all checks.
func ParseCheckSet(s string) (CheckSet, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "all" {
		return AllChecks, nil
	}
	var set CheckSet
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		found := false
		for k := CheckDivByZero; k <= CheckAssert; k++ {
			if k.String() == part {
				set |= 1 << uint(k)
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("ir: unknown check kind %q (want one of %s)", part, checkKindNames())
		}
	}
	return set, nil
}

func checkKindNames() string {
	var names []string
	for k := CheckDivByZero; k <= CheckAssert; k++ {
		names = append(names, k.String())
	}
	return strings.Join(names, ", ")
}
