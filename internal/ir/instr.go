package ir

import "fmt"

// Op identifies an instruction opcode.
type Op int

// Instruction opcodes. Binary and comparison operators take two integer
// operands of equal width; comparisons produce i1.
const (
	OpInvalid Op = iota

	// Integer arithmetic.
	OpAdd
	OpSub
	OpMul
	OpUDiv
	OpSDiv
	OpURem
	OpSRem

	// Bitwise.
	OpAnd
	OpOr
	OpXor
	OpShl
	OpLShr
	OpAShr

	// Comparisons (result i1).
	OpEq
	OpNe
	OpULt
	OpULe
	OpUGt
	OpUGe
	OpSLt
	OpSLe
	OpSGt
	OpSGe

	// Select: args = [cond(i1), ifTrue, ifFalse].
	OpSelect

	// Width conversions.
	OpZExt
	OpSExt
	OpTrunc

	// Memory. Alloca allocates Count elements of Allocated type and yields
	// a pointer to the first. GEP: args = [base, index(i64)] and yields a
	// pointer of the same type. Load: args = [ptr]. Store: args = [val, ptr].
	OpAlloca
	OpLoad
	OpStore
	OpGEP

	// PtrDiff: args = [p, q] of the same pointer type; yields the i64
	// element distance p-q. Both must point into the same object.
	OpPtrDiff

	// Call: Callee + args.
	OpCall

	// Phi: args parallel to Incoming blocks.
	OpPhi

	// Check evaluates args[0] (i1); if false at run time, the program traps
	// with Msg. Inserted by the runtime-checks pass; treated as a verified
	// property by symbolic execution.
	OpCheck

	// Terminators.
	OpBr          // unconditional: Succs[0]
	OpCondBr      // args = [cond]; Succs = [then, else]
	OpRet         // args = [value] or empty for void
	OpUnreachable // control must not reach here
)

var opNames = [...]string{
	OpInvalid: "invalid",
	OpAdd:     "add", OpSub: "sub", OpMul: "mul",
	OpUDiv: "udiv", OpSDiv: "sdiv", OpURem: "urem", OpSRem: "srem",
	OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpLShr: "lshr", OpAShr: "ashr",
	OpEq: "icmp eq", OpNe: "icmp ne",
	OpULt: "icmp ult", OpULe: "icmp ule", OpUGt: "icmp ugt", OpUGe: "icmp uge",
	OpSLt: "icmp slt", OpSLe: "icmp sle", OpSGt: "icmp sgt", OpSGe: "icmp sge",
	OpSelect: "select", OpZExt: "zext", OpSExt: "sext", OpTrunc: "trunc",
	OpAlloca: "alloca", OpLoad: "load", OpStore: "store", OpGEP: "gep",
	OpPtrDiff: "ptrdiff",
	OpCall:    "call", OpPhi: "phi", OpCheck: "check",
	OpBr: "br", OpCondBr: "br", OpRet: "ret", OpUnreachable: "unreachable",
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsBinary reports whether the opcode is a two-operand arithmetic,
// bitwise or shift operation.
func (o Op) IsBinary() bool { return o >= OpAdd && o <= OpAShr }

// IsCmp reports whether the opcode is an integer comparison.
func (o Op) IsCmp() bool { return o >= OpEq && o <= OpSGe }

// IsTerminator reports whether the opcode ends a basic block.
func (o Op) IsTerminator() bool {
	return o == OpBr || o == OpCondBr || o == OpRet || o == OpUnreachable
}

// IsCommutative reports whether operand order is irrelevant.
func (o Op) IsCommutative() bool {
	switch o {
	case OpAdd, OpMul, OpAnd, OpOr, OpXor, OpEq, OpNe:
		return true
	}
	return false
}

// HasSideEffects reports whether the instruction cannot be freely removed
// or speculated: stores, calls, checks and terminators.
func (o Op) HasSideEffects() bool {
	switch o {
	case OpStore, OpCall, OpCheck, OpAlloca:
		return true
	}
	return o.IsTerminator()
}

// CheckKind classifies runtime checks inserted by the checks pass.
type CheckKind int

// The runtime checks -OVERIFY can insert (§3, "Runtime checks").
const (
	CheckNone CheckKind = iota
	CheckDivByZero
	CheckBounds
	CheckShift
	CheckAssert // user-level assert() from MiniC
)

var checkNames = [...]string{"none", "div-by-zero", "bounds", "shift", "assert"}

// String returns the human-readable check kind.
func (k CheckKind) String() string {
	if int(k) < len(checkNames) {
		return checkNames[k]
	}
	return "check?"
}

// Range is an inclusive unsigned value range attached as metadata.
type Range struct {
	Lo, Hi uint64
}

// Meta carries optional analysis results preserved for verification tools
// (§3, "Program annotations").
type Meta struct {
	Range *Range // unsigned range of the instruction result
}

// Instr is a single IR instruction. An Instr is also a Value (its result).
// Void-typed instructions (store, br, ...) must not be used as operands.
type Instr struct {
	Op   Op
	Typ  Type
	Args []Value

	Blk *Block // owning block
	ID  int    // SSA name; unique within the function

	// Op-specific fields.
	Succs     []*Block  // Br: 1 entry; CondBr: [then, else]
	Incoming  []*Block  // Phi: parallel to Args
	Callee    *Function // Call
	Allocated Type      // Alloca element type
	Count     int64     // Alloca element count
	Kind      CheckKind // Check
	Msg       string    // Check message / source position

	Meta *Meta // optional verification metadata
}

// Type returns the result type of the instruction.
func (in *Instr) Type() Type { return in.Typ }

// Ref returns the SSA register spelling "%tN".
func (in *Instr) Ref() string { return fmt.Sprintf("%%t%d", in.ID) }

// IsTerminator reports whether this instruction ends its block.
func (in *Instr) IsTerminator() bool { return in.Op.IsTerminator() }

// Operand returns the i'th operand.
func (in *Instr) Operand(i int) Value { return in.Args[i] }

// SetOperand replaces the i'th operand.
func (in *Instr) SetOperand(i int, v Value) { in.Args[i] = v }

// PhiIncoming returns the value flowing into the phi from pred, or nil if
// pred is not an incoming block.
func (in *Instr) PhiIncoming(pred *Block) Value {
	for i, b := range in.Incoming {
		if b == pred {
			return in.Args[i]
		}
	}
	return nil
}

// SetPhiIncoming sets the value flowing in from pred, appending a new edge
// if pred is not yet incoming.
func (in *Instr) SetPhiIncoming(pred *Block, v Value) {
	for i, b := range in.Incoming {
		if b == pred {
			in.Args[i] = v
			return
		}
	}
	in.Incoming = append(in.Incoming, pred)
	in.Args = append(in.Args, v)
}

// RemovePhiIncoming deletes the edge from pred, if present.
func (in *Instr) RemovePhiIncoming(pred *Block) {
	for i, b := range in.Incoming {
		if b == pred {
			in.Incoming = append(in.Incoming[:i], in.Incoming[i+1:]...)
			in.Args = append(in.Args[:i], in.Args[i+1:]...)
			return
		}
	}
}
