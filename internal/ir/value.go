package ir

import (
	"fmt"
)

// Value is anything that can appear as an instruction operand: constants,
// function parameters, globals, and the results of instructions.
type Value interface {
	// Type returns the type of the value.
	Type() Type
	// Ref returns the operand spelling used when the value is referenced,
	// e.g. "%x", "@str0" or "i32 7" without the type.
	Ref() string
}

// Const is an integer constant of a fixed width. Constants are immutable;
// Val is always stored masked to the type's bit width.
type Const struct {
	Typ IntType
	Val uint64
}

// ConstInt returns an integer constant of type t holding v masked to the
// type's width.
func ConstInt(t IntType, v uint64) *Const {
	return &Const{Typ: t, Val: Mask(t.Bits, v)}
}

// Bool returns the i1 constant for b.
func Bool(b bool) *Const {
	if b {
		return ConstInt(I1, 1)
	}
	return ConstInt(I1, 0)
}

// Type returns the constant's integer type.
func (c *Const) Type() Type { return c.Typ }

// Ref returns the decimal spelling of the constant.
func (c *Const) Ref() string { return fmt.Sprintf("%d", c.Val) }

// SignedVal returns the constant interpreted as a signed integer.
func (c *Const) SignedVal() int64 { return SignExtend(c.Typ.Bits, c.Val) }

// IsZero reports whether the constant is zero.
func (c *Const) IsZero() bool { return c.Val == 0 }

// IsOne reports whether the constant is one.
func (c *Const) IsOne() bool { return c.Val == 1 }

// IsAllOnes reports whether every bit of the constant is set.
func (c *Const) IsAllOnes() bool { return c.Val == Mask(c.Typ.Bits, ^uint64(0)) }

// Param is a formal parameter of a function.
type Param struct {
	Nam string
	Typ Type
	Idx int // position in the parameter list
}

// Type returns the parameter's type.
func (p *Param) Type() Type { return p.Typ }

// Ref returns "%name".
func (p *Param) Ref() string { return "%" + p.Nam }

// Global is a module-level object: a named array of Count elements of type
// Elem, optionally initialized with Init (little-endian element values).
// As a Value, a Global is a pointer to its first element.
type Global struct {
	Name     string
	Elem     Type
	Count    int64
	Init     []uint64 // element values; nil means zero-initialized
	ReadOnly bool     // string literals and lookup tables
}

// Type returns a pointer to the global's element type.
func (g *Global) Type() Type { return PtrTo(g.Elem) }

// Ref returns "@name".
func (g *Global) Ref() string { return "@" + g.Name }

// StringGlobal builds a read-only, NUL-terminated i8 global from s.
func StringGlobal(name, s string) *Global {
	init := make([]uint64, len(s)+1)
	for i := 0; i < len(s); i++ {
		init[i] = uint64(s[i])
	}
	return &Global{Name: name, Elem: I8, Count: int64(len(s) + 1), Init: init, ReadOnly: true}
}

// Null is the null pointer constant of a given pointer type.
type Null struct {
	Typ PtrType
}

// Type returns the pointer type of the null constant.
func (n *Null) Type() Type { return n.Typ }

// Ref returns "null".
func (n *Null) Ref() string { return "null" }

// NullPtr returns a null constant of pointer-to-elem type.
func NullPtr(elem Type) *Null { return &Null{Typ: PtrTo(elem)} }

// IsConstValue reports whether v is a *Const, returning it if so.
func IsConstValue(v Value) (*Const, bool) {
	c, ok := v.(*Const)
	return c, ok
}

// ConstEq reports whether v is a constant equal to x (unsigned, after
// masking x to v's width).
func ConstEq(v Value, x uint64) bool {
	c, ok := v.(*Const)
	return ok && c.Val == Mask(c.Typ.Bits, x)
}
