package ir

// ValueMap maps original values to their clones during region duplication.
type ValueMap map[Value]Value

// Lookup returns the mapping for v, defaulting to v itself (constants,
// globals and values defined outside the cloned region map to themselves).
func (vm ValueMap) Lookup(v Value) Value {
	if nv, ok := vm[v]; ok {
		return nv
	}
	return v
}

// CloneBlocks duplicates the given blocks into f, remapping operands and
// successor edges that point inside the region. Values defined outside the
// region (and blocks outside it) are left as-is. The returned map extends
// vm with old-block→new-block and old-instr→new-instr entries.
//
// The caller provides vm pre-seeded with any additional substitutions
// (e.g. parameter→argument for inlining); pass nil for none.
func CloneBlocks(f *Function, region []*Block, vm ValueMap) (map[*Block]*Block, ValueMap) {
	if vm == nil {
		vm = make(ValueMap)
	}
	blockMap := make(map[*Block]*Block, len(region))
	// First create empty clones so intra-region branches can be remapped.
	for _, b := range region {
		nb := &Block{Name: b.Name}
		f.AdoptBlock(nb)
		blockMap[b] = nb
	}
	// Clone instructions.
	for _, b := range region {
		nb := blockMap[b]
		for _, in := range b.Instrs {
			ni := &Instr{
				Op:        in.Op,
				Typ:       in.Typ,
				Callee:    in.Callee,
				Allocated: in.Allocated,
				Count:     in.Count,
				Kind:      in.Kind,
				Msg:       in.Msg,
			}
			if in.Meta != nil {
				m := *in.Meta
				ni.Meta = &m
			}
			ni.Args = make([]Value, len(in.Args))
			copy(ni.Args, in.Args) // remapped below
			if in.Succs != nil {
				ni.Succs = make([]*Block, len(in.Succs))
				for i, s := range in.Succs {
					if ns, ok := blockMap[s]; ok {
						ni.Succs[i] = ns
					} else {
						ni.Succs[i] = s
					}
				}
			}
			if in.Incoming != nil {
				ni.Incoming = make([]*Block, len(in.Incoming))
				copy(ni.Incoming, in.Incoming) // remapped below
			}
			f.ClaimID(ni)
			ni.Blk = nb
			nb.Instrs = append(nb.Instrs, ni)
			vm[in] = ni
		}
	}
	// Remap operands and phi incoming blocks.
	for _, b := range region {
		for i, in := range b.Instrs {
			ni := blockMap[b].Instrs[i]
			for j, a := range ni.Args {
				ni.Args[j] = vm.Lookup(a)
			}
			for j, ib := range ni.Incoming {
				if nib, ok := blockMap[ib]; ok {
					ni.Incoming[j] = nib
				}
			}
			_ = in
		}
	}
	return blockMap, vm
}

// CloneFunctionBody clones all blocks of src into dst, substituting
// src's parameters with the given argument values. Returns the block map
// and value map for the caller to wire up entry/exit.
func CloneFunctionBody(dst *Function, src *Function, args []Value) (map[*Block]*Block, ValueMap) {
	vm := make(ValueMap, len(args))
	for i, p := range src.Params {
		vm[p] = args[i]
	}
	return CloneBlocks(dst, src.Blocks, vm)
}
