package ir

import "fmt"

// Block is a basic block: a straight-line sequence of instructions ending
// in exactly one terminator.
type Block struct {
	Name   string
	Fn     *Function
	Instrs []*Instr
}

// Term returns the block's terminator, or nil if the block is still open.
func (b *Block) Term() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if last.IsTerminator() {
		return last
	}
	return nil
}

// Succs returns the successor blocks (empty for ret/unreachable).
func (b *Block) Succs() []*Block {
	if t := b.Term(); t != nil {
		return t.Succs
	}
	return nil
}

// Append adds an instruction at the end of the block and claims ownership.
func (b *Block) Append(in *Instr) *Instr {
	in.Blk = b
	if in.ID == 0 && b.Fn != nil {
		b.Fn.nextID++
		in.ID = b.Fn.nextID
	}
	b.Instrs = append(b.Instrs, in)
	return in
}

// InsertBefore inserts in ahead of pos within the block. pos must be in
// the block.
func (b *Block) InsertBefore(in *Instr, pos *Instr) {
	in.Blk = b
	if in.ID == 0 && b.Fn != nil {
		b.Fn.nextID++
		in.ID = b.Fn.nextID
	}
	for i, x := range b.Instrs {
		if x == pos {
			b.Instrs = append(b.Instrs, nil)
			copy(b.Instrs[i+1:], b.Instrs[i:])
			b.Instrs[i] = in
			return
		}
	}
	panic("ir: InsertBefore: position not in block")
}

// Remove deletes in from the block. It does not fix up uses.
func (b *Block) Remove(in *Instr) {
	for i, x := range b.Instrs {
		if x == in {
			b.Instrs = append(b.Instrs[:i], b.Instrs[i+1:]...)
			in.Blk = nil
			return
		}
	}
}

// Phis returns the block's leading phi instructions.
func (b *Block) Phis() []*Instr {
	var out []*Instr
	for _, in := range b.Instrs {
		if in.Op != OpPhi {
			break
		}
		out = append(out, in)
	}
	return out
}

// FirstNonPhi returns the index of the first non-phi instruction.
func (b *Block) FirstNonPhi() int {
	for i, in := range b.Instrs {
		if in.Op != OpPhi {
			return i
		}
	}
	return len(b.Instrs)
}

// Function is a MiniC function lowered to IR. Blocks[0] is the entry block.
type Function struct {
	Name   string
	Sig    FuncType
	Params []*Param
	Blocks []*Block
	Mod    *Module

	nextID    int // SSA register counter
	nextBlock int // block name counter
}

// NewFunction creates an empty function with the given signature. Parameter
// names default to p0, p1, ... if names is short.
func NewFunction(name string, sig FuncType, names ...string) *Function {
	f := &Function{Name: name, Sig: sig}
	for i, pt := range sig.Params {
		pn := fmt.Sprintf("p%d", i)
		if i < len(names) && names[i] != "" {
			pn = names[i]
		}
		f.Params = append(f.Params, &Param{Nam: pn, Typ: pt, Idx: i})
	}
	return f
}

// Entry returns the entry block (nil for declarations).
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock creates a block named after hint (made unique) and appends it.
func (f *Function) NewBlock(hint string) *Block {
	if hint == "" {
		hint = "bb"
	}
	f.nextBlock++
	b := &Block{Name: fmt.Sprintf("%s%d", hint, f.nextBlock), Fn: f}
	f.Blocks = append(f.Blocks, b)
	return b
}

// AdoptBlock appends an externally built block (used by cloning) and gives
// it a fresh unique name.
func (f *Function) AdoptBlock(b *Block) {
	f.nextBlock++
	b.Name = fmt.Sprintf("%s.%d", b.Name, f.nextBlock)
	b.Fn = f
	f.Blocks = append(f.Blocks, b)
}

// RemoveBlock deletes b from the function. It does not fix up edges.
func (f *Function) RemoveBlock(b *Block) {
	for i, x := range f.Blocks {
		if x == b {
			f.Blocks = append(f.Blocks[:i], f.Blocks[i+1:]...)
			return
		}
	}
}

// ClaimID assigns a fresh SSA id to in (used when building instructions
// outside a block, e.g. during cloning).
func (f *Function) ClaimID(in *Instr) {
	f.nextID++
	in.ID = f.nextID
}

// Preds returns the predecessor map of the current CFG.
func (f *Function) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(f.Blocks))
	for _, b := range f.Blocks {
		preds[b] = nil
	}
	for _, b := range f.Blocks {
		for _, s := range b.Succs() {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// NumInstrs returns the instruction count across all blocks.
func (f *Function) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// NumBranches counts conditional branches, a key verification-cost metric.
func (f *Function) NumBranches() int {
	n := 0
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && t.Op == OpCondBr {
			n++
		}
	}
	return n
}

// IsDeclaration reports whether the function has no body.
func (f *Function) IsDeclaration() bool { return len(f.Blocks) == 0 }

// Module is a translation unit: an ordered set of functions and globals.
type Module struct {
	Name    string
	Funcs   []*Function
	Globals []*Global

	funcsByName map[string]*Function
	nextGlobal  int
}

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, funcsByName: make(map[string]*Function)}
}

// AddFunc appends f, replacing any declaration with the same name.
func (m *Module) AddFunc(f *Function) *Function {
	if old, ok := m.funcsByName[f.Name]; ok {
		if !old.IsDeclaration() && !f.IsDeclaration() {
			panic("ir: duplicate function definition " + f.Name)
		}
		if f.IsDeclaration() {
			return old
		}
		// Replace the declaration in place.
		for i, x := range m.Funcs {
			if x == old {
				m.Funcs[i] = f
			}
		}
	} else {
		m.Funcs = append(m.Funcs, f)
	}
	m.funcsByName[f.Name] = f
	f.Mod = m
	return f
}

// Func returns the function with the given name, or nil.
func (m *Module) Func(name string) *Function { return m.funcsByName[name] }

// AddGlobal appends g to the module, making its name unique if needed.
func (m *Module) AddGlobal(g *Global) *Global {
	for _, old := range m.Globals {
		if old.Name == g.Name {
			m.nextGlobal++
			g.Name = fmt.Sprintf("%s.%d", g.Name, m.nextGlobal)
		}
	}
	m.Globals = append(m.Globals, g)
	return g
}

// RemoveFunc deletes f from the module. It is the caller's job to make
// sure no remaining call instruction names f (the slicer removes
// functions only after every call site referencing them is gone).
func (m *Module) RemoveFunc(f *Function) {
	for i, x := range m.Funcs {
		if x == f {
			m.Funcs = append(m.Funcs[:i], m.Funcs[i+1:]...)
			break
		}
	}
	if m.funcsByName[f.Name] == f {
		delete(m.funcsByName, f.Name)
	}
}

// Global returns the named global, or nil.
func (m *Module) Global(name string) *Global {
	for _, g := range m.Globals {
		if g.Name == name {
			return g
		}
	}
	return nil
}

// NumInstrs returns the total instruction count of all function bodies,
// the paper's static program-size metric.
func (m *Module) NumInstrs() int {
	n := 0
	for _, f := range m.Funcs {
		n += f.NumInstrs()
	}
	return n
}
