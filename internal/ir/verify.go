package ir

import (
	"fmt"
	"strings"
)

// VerifyError aggregates structural problems found in a module.
type VerifyError struct {
	Problems []string
}

// Error joins all problems into one message.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("ir verify: %d problem(s):\n  %s",
		len(e.Problems), strings.Join(e.Problems, "\n  "))
}

// VerifyModule checks structural invariants of every function in m:
// single terminator per block, operand type agreement, phi/CFG edge
// consistency, and SSA dominance of uses by definitions. It returns nil
// when the module is well-formed.
func VerifyModule(m *Module) error {
	var problems []string
	for _, f := range m.Funcs {
		problems = append(problems, verifyFunc(f)...)
	}
	if len(problems) > 0 {
		return &VerifyError{Problems: problems}
	}
	return nil
}

// VerifyFunc checks a single function; see VerifyModule.
func VerifyFunc(f *Function) error {
	problems := verifyFunc(f)
	if len(problems) > 0 {
		return &VerifyError{Problems: problems}
	}
	return nil
}

func verifyFunc(f *Function) []string {
	var p []string
	bad := func(format string, args ...interface{}) {
		p = append(p, fmt.Sprintf("@%s: ", f.Name)+fmt.Sprintf(format, args...))
	}
	if f.IsDeclaration() {
		return nil
	}
	inFunc := make(map[*Block]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		inFunc[b] = true
	}
	preds := f.Preds()
	dt := ComputeDom(f)

	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			bad("block %s is empty", b.Name)
			continue
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.IsTerminator() != isLast {
				bad("block %s: terminator placement at instr %d (%s)", b.Name, i, in.Op)
			}
			if in.Op == OpPhi && i >= b.FirstNonPhi() {
				bad("block %s: phi %s after non-phi", b.Name, in.Ref())
			}
			if in.Blk != b {
				bad("block %s: instr %s has wrong owner", b.Name, in.Ref())
			}
			for _, s := range in.Succs {
				if !inFunc[s] {
					bad("block %s: successor %s not in function", b.Name, s.Name)
				}
			}
			p = append(p, verifyInstrTypes(f, b, in)...)
		}
		// Phi edges must match predecessors exactly (for reachable blocks).
		if dt.Reachable(b) {
			for _, phi := range b.Phis() {
				if len(phi.Incoming) != len(preds[b]) {
					bad("block %s: phi %s has %d incoming, %d preds",
						b.Name, phi.Ref(), len(phi.Incoming), len(preds[b]))
					continue
				}
				for _, pr := range preds[b] {
					if phi.PhiIncoming(pr) == nil {
						bad("block %s: phi %s missing edge from %s", b.Name, phi.Ref(), pr.Name)
					}
				}
			}
		}
	}

	// SSA dominance: every use of an instruction result must be dominated
	// by its definition. Only meaningful for reachable code.
	for _, b := range f.Blocks {
		if !dt.Reachable(b) {
			continue
		}
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				def, ok := a.(*Instr)
				if !ok {
					continue
				}
				if def.Blk == nil {
					bad("block %s: %s uses detached instr %s", b.Name, in.Ref(), def.Ref())
					continue
				}
				if !dt.Reachable(def.Blk) {
					continue
				}
				if !dt.InstrDominates(def, in, i) {
					bad("block %s: use of %s in %s not dominated by def (in %s)",
						b.Name, def.Ref(), in.Ref(), def.Blk.Name)
				}
			}
		}
	}
	return p
}

func verifyInstrTypes(f *Function, b *Block, in *Instr) []string {
	var p []string
	bad := func(format string, args ...interface{}) {
		p = append(p, fmt.Sprintf("@%s/%s: %s: ", f.Name, b.Name, in.Ref())+fmt.Sprintf(format, args...))
	}
	intArg := func(i int) (IntType, bool) {
		if i >= len(in.Args) || in.Args[i] == nil {
			bad("missing operand %d", i)
			return IntType{}, false
		}
		it, ok := in.Args[i].Type().(IntType)
		if !ok {
			bad("operand %d: want integer, got %s", i, in.Args[i].Type())
		}
		return it, ok
	}
	switch {
	case in.Op.IsBinary():
		a, ok1 := intArg(0)
		c, ok2 := intArg(1)
		if ok1 && ok2 {
			if a.Bits != c.Bits {
				bad("width mismatch %s vs %s", a, c)
			}
			if rt, ok := in.Typ.(IntType); !ok || rt.Bits != a.Bits {
				bad("result type %s, want %s", in.Typ, a)
			}
		}
	case in.Op.IsCmp():
		if len(in.Args) == 2 && in.Args[0] != nil && in.Args[1] != nil {
			if _, isPtr := in.Args[0].Type().(PtrType); isPtr {
				if !SameType(in.Args[0].Type(), in.Args[1].Type()) {
					bad("pointer cmp type mismatch %s vs %s", in.Args[0].Type(), in.Args[1].Type())
				}
				switch in.Op {
				case OpEq, OpNe, OpULt, OpULe, OpUGt, OpUGe:
				default:
					bad("%s not valid on pointers", in.Op)
				}
				if !SameType(in.Typ, I1) {
					bad("cmp result must be i1")
				}
				break
			}
		}
		a, ok1 := intArg(0)
		c, ok2 := intArg(1)
		if ok1 && ok2 && a.Bits != c.Bits {
			bad("width mismatch %s vs %s", a, c)
		}
		if !SameType(in.Typ, I1) {
			bad("cmp result must be i1")
		}
	case in.Op == OpPtrDiff:
		if len(in.Args) != 2 || !SameType(in.Args[0].Type(), in.Args[1].Type()) {
			bad("ptrdiff operand mismatch")
		} else if _, ok := in.Args[0].Type().(PtrType); !ok {
			bad("ptrdiff needs pointer operands")
		}
		if !SameType(in.Typ, I64) {
			bad("ptrdiff result must be i64")
		}
	case in.Op == OpSelect:
		if len(in.Args) != 3 {
			bad("select needs 3 operands")
			break
		}
		if !SameType(in.Args[0].Type(), I1) {
			bad("select cond must be i1")
		}
		if !SameType(in.Args[1].Type(), in.Args[2].Type()) || !SameType(in.Typ, in.Args[1].Type()) {
			bad("select arm/result type mismatch")
		}
	case in.Op == OpZExt || in.Op == OpSExt:
		a, ok := intArg(0)
		rt, ok2 := in.Typ.(IntType)
		if ok && ok2 && a.Bits >= rt.Bits {
			bad("%s from %s to %s does not widen", in.Op, a, rt)
		}
	case in.Op == OpTrunc:
		a, ok := intArg(0)
		rt, ok2 := in.Typ.(IntType)
		if ok && ok2 && a.Bits <= rt.Bits {
			bad("trunc from %s to %s does not narrow", a, rt)
		}
	case in.Op == OpLoad:
		pt, ok := in.Args[0].Type().(PtrType)
		if !ok {
			bad("load from non-pointer %s", in.Args[0].Type())
		} else if !SameType(in.Typ, pt.Elem) {
			bad("load type %s from %s", in.Typ, pt)
		}
	case in.Op == OpStore:
		pt, ok := in.Args[1].Type().(PtrType)
		if !ok {
			bad("store to non-pointer %s", in.Args[1].Type())
		} else if !SameType(in.Args[0].Type(), pt.Elem) {
			bad("store %s into %s", in.Args[0].Type(), pt)
		}
	case in.Op == OpGEP:
		if _, ok := in.Args[0].Type().(PtrType); !ok {
			bad("gep base must be pointer")
		}
		if it, ok := in.Args[1].Type().(IntType); !ok || it.Bits != 64 {
			bad("gep index must be i64")
		}
	case in.Op == OpCall:
		if in.Callee == nil {
			bad("call without callee")
			break
		}
		if len(in.Args) != len(in.Callee.Sig.Params) {
			bad("call @%s: %d args, want %d", in.Callee.Name, len(in.Args), len(in.Callee.Sig.Params))
			break
		}
		for i, a := range in.Args {
			if !SameType(a.Type(), in.Callee.Sig.Params[i]) {
				bad("call @%s arg %d: %s, want %s", in.Callee.Name, i, a.Type(), in.Callee.Sig.Params[i])
			}
		}
		if !SameType(in.Typ, in.Callee.Sig.Ret) {
			bad("call @%s result: %s, want %s", in.Callee.Name, in.Typ, in.Callee.Sig.Ret)
		}
	case in.Op == OpPhi:
		if len(in.Args) != len(in.Incoming) {
			bad("phi args/incoming length mismatch")
		}
		for _, a := range in.Args {
			if a != nil && !SameType(a.Type(), in.Typ) {
				bad("phi operand type %s, want %s", a.Type(), in.Typ)
			}
		}
	case in.Op == OpCheck:
		if len(in.Args) != 1 || !SameType(in.Args[0].Type(), I1) {
			bad("check cond must be i1")
		}
	case in.Op == OpCondBr:
		if len(in.Args) != 1 || !SameType(in.Args[0].Type(), I1) {
			bad("condbr cond must be i1")
		}
		if len(in.Succs) != 2 {
			bad("condbr needs 2 successors")
		}
	case in.Op == OpBr:
		if len(in.Succs) != 1 {
			bad("br needs 1 successor")
		}
	case in.Op == OpRet:
		want := f.Sig.Ret
		if SameType(want, Void) {
			if len(in.Args) != 0 {
				bad("ret value in void function")
			}
		} else if len(in.Args) != 1 || !SameType(in.Args[0].Type(), want) {
			bad("ret type mismatch, want %s", want)
		}
	}
	return p
}
