package ir

import "sort"

// Loop describes a natural loop discovered from a back edge.
type Loop struct {
	Header  *Block
	Blocks  map[*Block]bool // includes the header
	Latches []*Block        // blocks with a back edge to the header

	// Exits are (from, to) edges leaving the loop.
	Exits []LoopExit

	Parent *Loop // enclosing loop, if any
	Depth  int   // nesting depth, outermost = 1
}

// LoopExit is a CFG edge from inside the loop to a block outside it.
type LoopExit struct {
	From *Block
	To   *Block
}

// Contains reports whether b belongs to the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// NumBlocks returns the loop body size in blocks.
func (l *Loop) NumBlocks() int { return len(l.Blocks) }

// NumInstrs returns the loop body size in instructions.
func (l *Loop) NumInstrs() int {
	n := 0
	for b := range l.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// BlocksSorted returns the loop's blocks sorted by name, for
// deterministic iteration when no dominator tree is at hand.
func (l *Loop) BlocksSorted() []*Block {
	out := make([]*Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// BlocksInRPO returns the loop's blocks sorted by the dominator tree's
// reverse postorder, for deterministic iteration.
func (l *Loop) BlocksInRPO(dt *DomTree) []*Block {
	out := make([]*Block, 0, len(l.Blocks))
	for b := range l.Blocks {
		out = append(out, b)
	}
	sort.Slice(out, func(i, j int) bool { return dt.order[out[i]] < dt.order[out[j]] })
	return out
}

// FindLoops discovers the natural loops of f using dt. Loops sharing a
// header are merged. The result is ordered outermost-first and is
// deterministic.
func FindLoops(f *Function, dt *DomTree) []*Loop {
	preds := f.Preds()
	byHeader := make(map[*Block]*Loop)
	var headers []*Block

	for _, b := range dt.RPO() {
		for _, s := range b.Succs() {
			if !dt.Dominates(s, b) {
				continue // not a back edge
			}
			l := byHeader[s]
			if l == nil {
				l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
				byHeader[s] = l
				headers = append(headers, s)
			}
			l.Latches = append(l.Latches, b)
			// Walk backwards from the latch to collect the body.
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if l.Blocks[x] {
					continue
				}
				l.Blocks[x] = true
				for _, p := range preds[x] {
					if dt.Reachable(p) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	// Establish nesting: loop A is inside B if B contains A's header and
	// A != B. Choose the smallest enclosing loop as the parent.
	for _, a := range loops {
		for _, b := range loops {
			if a == b || !b.Blocks[a.Header] {
				continue
			}
			if a.Parent == nil || a.Parent.NumBlocks() > b.NumBlocks() {
				a.Parent = b
			}
		}
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
		// Collect exit edges.
		for b := range l.Blocks {
			for _, s := range b.Succs() {
				if !l.Blocks[s] {
					l.Exits = append(l.Exits, LoopExit{From: b, To: s})
				}
			}
		}
		sort.Slice(l.Exits, func(i, j int) bool {
			if l.Exits[i].From.Name != l.Exits[j].From.Name {
				return l.Exits[i].From.Name < l.Exits[j].From.Name
			}
			return l.Exits[i].To.Name < l.Exits[j].To.Name
		})
		sort.Slice(l.Latches, func(i, j int) bool { return l.Latches[i].Name < l.Latches[j].Name })
	}
	// Outermost-first, then by header RPO index for determinism.
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth < loops[j].Depth
		}
		return dt.order[loops[i].Header] < dt.order[loops[j].Header]
	})
	return loops
}

// Preheader returns the unique predecessor of the header outside the loop
// whose only successor is the header; nil if there is none.
func (l *Loop) Preheader(preds map[*Block][]*Block) *Block {
	var outside []*Block
	for _, p := range preds[l.Header] {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) != 1 {
		return nil
	}
	ph := outside[0]
	if t := ph.Term(); t != nil && t.Op == OpBr {
		return ph
	}
	return nil
}
