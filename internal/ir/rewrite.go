package ir

// ReplaceUses rewrites every operand in f that references old to use new
// instead. It returns the number of operands rewritten.
func ReplaceUses(f *Function, old, new Value) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for i, a := range in.Args {
				if a == old {
					in.Args[i] = new
					n++
				}
			}
		}
	}
	return n
}

// HasUses reports whether v (an instruction result or parameter) is
// referenced anywhere in f.
func HasUses(f *Function, v Value) bool {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					return true
				}
			}
		}
	}
	return false
}

// CountUses returns the number of operand slots in f referencing v.
func CountUses(f *Function, v Value) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			for _, a := range in.Args {
				if a == v {
					n++
				}
			}
		}
	}
	return n
}

// RedirectBranch rewrites every successor edge of b that targets from so
// it targets to, and fixes the phi nodes of both blocks accordingly.
func RedirectBranch(b *Block, from, to *Block) {
	t := b.Term()
	if t == nil {
		return
	}
	changed := false
	for i, s := range t.Succs {
		if s == from {
			t.Succs[i] = to
			changed = true
		}
	}
	if !changed {
		return
	}
	// b no longer flows into from (unless another edge remains).
	still := false
	for _, s := range t.Succs {
		if s == from {
			still = true
		}
	}
	if !still {
		for _, phi := range from.Phis() {
			phi.RemovePhiIncoming(b)
		}
	}
	// Phis in to gain an edge from b; the caller must set meaningful
	// values — default to the value flowing along any existing edge is not
	// safe, so leave the phi untouched if b is already incoming.
	for _, phi := range to.Phis() {
		if phi.PhiIncoming(b) == nil && len(phi.Incoming) > 0 {
			// Caller responsibility; keep structure valid by duplicating
			// the first incoming value (passes that use RedirectBranch
			// only do so when to has no phis or b's value is set after).
			phi.SetPhiIncoming(b, phi.Args[0])
		}
	}
}

// RemoveUnreachable deletes blocks not reachable from the entry, fixing up
// phi nodes of surviving blocks. Returns the number of blocks removed.
func RemoveUnreachable(f *Function) int {
	if len(f.Blocks) == 0 {
		return 0
	}
	reach := make(map[*Block]bool, len(f.Blocks))
	stack := []*Block{f.Entry()}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reach[b] {
			continue
		}
		reach[b] = true
		stack = append(stack, b.Succs()...)
	}
	var kept []*Block
	removed := 0
	for _, b := range f.Blocks {
		if reach[b] {
			kept = append(kept, b)
		} else {
			removed++
		}
	}
	if removed == 0 {
		return 0
	}
	f.Blocks = kept
	for _, b := range kept {
		for _, phi := range b.Phis() {
			for i := len(phi.Incoming) - 1; i >= 0; i-- {
				if !reach[phi.Incoming[i]] {
					phi.RemovePhiIncoming(phi.Incoming[i])
				}
			}
		}
	}
	return removed
}
