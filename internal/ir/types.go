// Package ir defines a typed, SSA-based intermediate representation for
// MiniC programs, together with the analyses (dominators, natural loops)
// and structural utilities (cloning, rewriting, verification) that the
// optimization passes in internal/passes operate on.
//
// The IR deliberately mirrors a small subset of LLVM IR: a Module holds
// Functions and Globals; a Function is a list of Blocks; a Block is a list
// of Instrs ending in a terminator. Values are integers of explicit bit
// width (i1, i8, i32, i64) or pointers. Memory is object-based: an Alloca
// or Global names an object, and GEP computes element addresses within it.
package ir

import (
	"fmt"
	"strconv"
)

// Type is the interface implemented by all IR types.
type Type interface {
	// String returns the LLVM-like spelling of the type (e.g. "i32").
	String() string
	// Size returns the size of the type in bytes. Void has size 0.
	Size() int64
	isType()
}

// IntType is an integer type of a fixed bit width (1, 8, 16, 32 or 64).
type IntType struct {
	Bits int
}

func (t IntType) String() string { return "i" + strconv.Itoa(t.Bits) }

// Size returns the storage size in bytes; i1 occupies one byte.
func (t IntType) Size() int64 {
	if t.Bits <= 8 {
		return 1
	}
	return int64(t.Bits / 8)
}
func (IntType) isType() {}

// Convenient singletons for the integer types MiniC uses.
var (
	I1  = IntType{Bits: 1}
	I8  = IntType{Bits: 8}
	I16 = IntType{Bits: 16}
	I32 = IntType{Bits: 32}
	I64 = IntType{Bits: 64}
)

// PtrType is a pointer to values of an element type.
type PtrType struct {
	Elem Type
}

func (t PtrType) String() string { return t.Elem.String() + "*" }

// Size returns the size of a pointer; the IR models pointers as 64-bit.
func (t PtrType) Size() int64 { return 8 }
func (PtrType) isType()       {}

// PtrTo returns the pointer type with element type elem.
func PtrTo(elem Type) PtrType { return PtrType{Elem: elem} }

// ArrayType is a fixed-length array. It appears only as the allocated type
// of an Alloca or Global; array values are never first-class.
type ArrayType struct {
	Elem Type
	Len  int64
}

func (t ArrayType) String() string {
	return fmt.Sprintf("[%d x %s]", t.Len, t.Elem.String())
}

// Size returns the total array size in bytes.
func (t ArrayType) Size() int64 { return t.Len * t.Elem.Size() }
func (ArrayType) isType()       {}

// VoidType is the type of functions that return nothing.
type VoidType struct{}

func (VoidType) String() string { return "void" }

// Size of void is zero.
func (VoidType) Size() int64 { return 0 }
func (VoidType) isType()     {}

// Void is the singleton void type.
var Void = VoidType{}

// FuncType describes a function signature.
type FuncType struct {
	Ret    Type
	Params []Type
}

func (t FuncType) String() string {
	s := t.Ret.String() + " ("
	for i, p := range t.Params {
		if i > 0 {
			s += ", "
		}
		s += p.String()
	}
	return s + ")"
}

// Size of a function type is not meaningful; it returns 0.
func (t FuncType) Size() int64 { return 0 }
func (FuncType) isType()       {}

// IsInt reports whether t is an integer type, returning it if so.
func IsInt(t Type) (IntType, bool) {
	it, ok := t.(IntType)
	return it, ok
}

// IsPtr reports whether t is a pointer type, returning it if so.
func IsPtr(t Type) (PtrType, bool) {
	pt, ok := t.(PtrType)
	return pt, ok
}

// SameType reports whether two types are structurally identical.
func SameType(a, b Type) bool {
	switch at := a.(type) {
	case IntType:
		bt, ok := b.(IntType)
		return ok && at.Bits == bt.Bits
	case PtrType:
		bt, ok := b.(PtrType)
		return ok && SameType(at.Elem, bt.Elem)
	case ArrayType:
		bt, ok := b.(ArrayType)
		return ok && at.Len == bt.Len && SameType(at.Elem, bt.Elem)
	case VoidType:
		_, ok := b.(VoidType)
		return ok
	case FuncType:
		bt, ok := b.(FuncType)
		if !ok || !SameType(at.Ret, bt.Ret) || len(at.Params) != len(bt.Params) {
			return false
		}
		for i := range at.Params {
			if !SameType(at.Params[i], bt.Params[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// Mask truncates v to the given bit width, treating it as unsigned.
func Mask(bits int, v uint64) uint64 {
	if bits >= 64 {
		return v
	}
	return v & ((1 << uint(bits)) - 1)
}

// SignExtend interprets the low bits of v as a signed integer of the given
// width and returns its value sign-extended to int64.
func SignExtend(bits int, v uint64) int64 {
	if bits >= 64 {
		return int64(v)
	}
	v = Mask(bits, v)
	sign := uint64(1) << uint(bits-1)
	if v&sign != 0 {
		return int64(v | ^(sign<<1 - 1))
	}
	return int64(v)
}
