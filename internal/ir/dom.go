package ir

// DomTree holds immediate-dominator information for a function's CFG,
// computed with the Cooper–Harvey–Kennedy iterative algorithm.
type DomTree struct {
	fn    *Function
	idom  map[*Block]*Block
	order map[*Block]int // reverse postorder index; unreachable blocks absent
	rpo   []*Block
}

// ReversePostorder returns the function's reachable blocks in reverse
// postorder (entry first).
func ReversePostorder(f *Function) []*Block {
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs() {
			visit(s)
		}
		post = append(post, b)
	}
	if e := f.Entry(); e != nil {
		visit(e)
	}
	// Reverse in place.
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// ComputeDom builds the dominator tree of f's reachable CFG.
func ComputeDom(f *Function) *DomTree {
	dt := &DomTree{
		fn:    f,
		idom:  make(map[*Block]*Block),
		order: make(map[*Block]int),
	}
	dt.rpo = ReversePostorder(f)
	for i, b := range dt.rpo {
		dt.order[b] = i
	}
	entry := f.Entry()
	if entry == nil {
		return dt
	}
	preds := f.Preds()
	dt.idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range dt.rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range preds[b] {
				if dt.idom[p] == nil {
					continue // not yet processed or unreachable
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = dt.intersect(p, newIdom)
				}
			}
			if newIdom != nil && dt.idom[b] != newIdom {
				dt.idom[b] = newIdom
				changed = true
			}
		}
	}
	return dt
}

func (dt *DomTree) intersect(a, b *Block) *Block {
	for a != b {
		for dt.order[a] > dt.order[b] {
			a = dt.idom[a]
		}
		for dt.order[b] > dt.order[a] {
			b = dt.idom[b]
		}
	}
	return a
}

// Idom returns the immediate dominator of b (entry's idom is entry itself);
// nil for unreachable blocks.
func (dt *DomTree) Idom(b *Block) *Block { return dt.idom[b] }

// Reachable reports whether b is reachable from the entry.
func (dt *DomTree) Reachable(b *Block) bool {
	_, ok := dt.order[b]
	return ok
}

// Dominates reports whether a dominates b (reflexively).
func (dt *DomTree) Dominates(a, b *Block) bool {
	if !dt.Reachable(a) || !dt.Reachable(b) {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := dt.idom[b]
		if next == nil || next == b {
			return false
		}
		b = next
	}
}

// RPO returns the blocks in reverse postorder.
func (dt *DomTree) RPO() []*Block { return dt.rpo }

// Children returns the dominator-tree children of each block.
func (dt *DomTree) Children() map[*Block][]*Block {
	ch := make(map[*Block][]*Block)
	for _, b := range dt.rpo {
		if b == dt.fn.Entry() {
			continue
		}
		id := dt.idom[b]
		if id != nil {
			ch[id] = append(ch[id], b)
		}
	}
	return ch
}

// DominanceFrontiers computes the dominance frontier of every reachable
// block (Cytron et al.), used for pruned-SSA phi placement in mem2reg.
func (dt *DomTree) DominanceFrontiers() map[*Block][]*Block {
	df := make(map[*Block][]*Block)
	preds := dt.fn.Preds()
	for _, b := range dt.rpo {
		if len(preds[b]) < 2 {
			continue
		}
		for _, p := range preds[b] {
			if !dt.Reachable(p) {
				continue
			}
			runner := p
			for runner != dt.idom[b] {
				found := false
				for _, x := range df[runner] {
					if x == b {
						found = true
						break
					}
				}
				if !found {
					df[runner] = append(df[runner], b)
				}
				next := dt.idom[runner]
				if next == nil || next == runner {
					break
				}
				runner = next
			}
		}
	}
	return df
}

// InstrDominates reports whether def is available at the point of use.
// Both must belong to the same function; phi uses are considered to occur
// at the end of the corresponding incoming block.
func (dt *DomTree) InstrDominates(def *Instr, use *Instr, useOperand int) bool {
	defB := def.Blk
	useB := use.Blk
	if use.Op == OpPhi {
		useB = use.Incoming[useOperand]
		if defB != useB {
			return dt.Dominates(defB, useB)
		}
		return true // def in the incoming block dominates its end
	}
	if defB != useB {
		return dt.Dominates(defB, useB)
	}
	for _, in := range defB.Instrs {
		if in == def {
			return true
		}
		if in == use {
			return false
		}
	}
	return false
}
