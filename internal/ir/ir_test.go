package ir

import (
	"testing"
	"testing/quick"
)

// buildDiamond constructs: entry -> (then|else) -> join.
func buildDiamond() (*Module, *Function) {
	m := NewModule("t")
	f := NewFunction("f", FuncType{Ret: I32, Params: []Type{I32}}, "x")
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	thenB := f.NewBlock("then")
	elseB := f.NewBlock("else")
	join := f.NewBlock("join")

	bd := NewBuilder(f, entry)
	c := bd.Cmp(OpSGt, f.Params[0], ConstInt(I32, 0))
	bd.CondBr(c, thenB, elseB)

	bd.SetBlock(thenB)
	v1 := bd.Bin(OpAdd, f.Params[0], ConstInt(I32, 1))
	bd.Br(join)

	bd.SetBlock(elseB)
	v2 := bd.Bin(OpSub, f.Params[0], ConstInt(I32, 1))
	bd.Br(join)

	bd.SetBlock(join)
	phi := bd.Phi(I32)
	phi.SetPhiIncoming(thenB, v1)
	phi.SetPhiIncoming(elseB, v2)
	bd.Ret(phi)
	return m, f
}

func TestVerifyAcceptsDiamond(t *testing.T) {
	m, _ := buildDiamond()
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesBadPhi(t *testing.T) {
	m, f := buildDiamond()
	// Remove one phi edge: verifier must complain.
	join := f.Blocks[3]
	join.Phis()[0].RemovePhiIncoming(f.Blocks[1])
	if err := VerifyModule(m); err == nil {
		t.Fatal("expected phi edge error")
	}
}

func TestVerifyCatchesDominance(t *testing.T) {
	m, f := buildDiamond()
	// Use a then-block value directly in join (not through the phi).
	join := f.Blocks[3]
	thenVal := f.Blocks[1].Instrs[0]
	ret := join.Term()
	ret.Args[0] = thenVal
	if err := VerifyModule(m); err == nil {
		t.Fatal("expected dominance error")
	}
}

func TestVerifyCatchesTypeErrors(t *testing.T) {
	m := NewModule("t")
	f := NewFunction("f", FuncType{Ret: I32, Params: []Type{I32}}, "x")
	m.AddFunc(f)
	b := f.NewBlock("entry")
	// Hand-build a width-mismatched add.
	bad := &Instr{Op: OpAdd, Typ: I32, Args: []Value{f.Params[0], ConstInt(I64, 1)}}
	b.Append(bad)
	b.Append(&Instr{Op: OpRet, Typ: Void, Args: []Value{bad}})
	if err := VerifyModule(m); err == nil {
		t.Fatal("expected width mismatch error")
	}
}

func TestDominators(t *testing.T) {
	_, f := buildDiamond()
	dt := ComputeDom(f)
	entry, thenB, elseB, join := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if dt.Idom(join) != entry {
		t.Errorf("idom(join) = %v, want entry", dt.Idom(join).Name)
	}
	if !dt.Dominates(entry, join) || !dt.Dominates(entry, thenB) {
		t.Error("entry must dominate everything")
	}
	if dt.Dominates(thenB, join) || dt.Dominates(elseB, join) {
		t.Error("branch arms must not dominate the join")
	}
	df := dt.DominanceFrontiers()
	if len(df[thenB]) != 1 || df[thenB][0] != join {
		t.Errorf("DF(then) = %v, want [join]", df[thenB])
	}
}

func buildLoop() (*Module, *Function) {
	m := NewModule("t")
	f := NewFunction("f", FuncType{Ret: I32, Params: []Type{I32}}, "n")
	m.AddFunc(f)
	entry := f.NewBlock("entry")
	header := f.NewBlock("header")
	body := f.NewBlock("body")
	exit := f.NewBlock("exit")

	bd := NewBuilder(f, entry)
	bd.Br(header)

	bd.SetBlock(header)
	iv := bd.Phi(I32)
	cond := bd.Cmp(OpSLt, iv, f.Params[0])
	bd.CondBr(cond, body, exit)

	bd.SetBlock(body)
	next := bd.Bin(OpAdd, iv, ConstInt(I32, 1))
	bd.Br(header)

	iv.SetPhiIncoming(entry, ConstInt(I32, 0))
	iv.SetPhiIncoming(body, next)

	bd.SetBlock(exit)
	bd.Ret(iv)
	return m, f
}

func TestLoopDiscovery(t *testing.T) {
	m, f := buildLoop()
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
	dt := ComputeDom(f)
	loops := FindLoops(f, dt)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != f.Blocks[1] {
		t.Errorf("header = %s", l.Header.Name)
	}
	if l.NumBlocks() != 2 {
		t.Errorf("loop has %d blocks, want 2 (header+body)", l.NumBlocks())
	}
	if len(l.Latches) != 1 || l.Latches[0] != f.Blocks[2] {
		t.Errorf("latches = %v", l.Latches)
	}
	if len(l.Exits) != 1 || l.Exits[0].To != f.Blocks[3] {
		t.Errorf("exits = %v", l.Exits)
	}
	preds := f.Preds()
	if ph := l.Preheader(preds); ph != f.Blocks[0] {
		t.Errorf("preheader = %v", ph)
	}
}

func TestCloneBlocks(t *testing.T) {
	m, f := buildLoop()
	region := []*Block{f.Blocks[1], f.Blocks[2]}
	blockMap, vm := CloneBlocks(f, region, nil)
	if len(blockMap) != 2 {
		t.Fatalf("cloned %d blocks", len(blockMap))
	}
	// Clone internal edges must point at clones.
	ch := blockMap[f.Blocks[1]]
	cb := blockMap[f.Blocks[2]]
	if cb.Term().Succs[0] != ch {
		t.Error("cloned back edge must target the cloned header")
	}
	// The cloned header's branch condition must be the cloned compare.
	origCond := f.Blocks[1].Instrs[1]
	if vm.Lookup(origCond) == Value(origCond) {
		t.Error("condition was not remapped")
	}
	_ = m
}

func TestMaskSignExtend(t *testing.T) {
	if Mask(8, 0x1FF) != 0xFF {
		t.Error("Mask(8, 0x1FF)")
	}
	if Mask(64, ^uint64(0)) != ^uint64(0) {
		t.Error("Mask(64) must be identity")
	}
	if SignExtend(8, 0xFF) != -1 {
		t.Errorf("SignExtend(8, 0xFF) = %d", SignExtend(8, 0xFF))
	}
	if SignExtend(8, 0x7F) != 127 {
		t.Error("SignExtend(8, 0x7F)")
	}
	if SignExtend(32, 0x80000000) != -2147483648 {
		t.Error("SignExtend(32, min)")
	}
}

// TestEvalBinProperties checks algebraic identities of the shared scalar
// semantics with random operands.
func TestEvalBinProperties(t *testing.T) {
	for _, bits := range []int{8, 32, 64} {
		bits := bits
		commutes := func(a, b uint64) bool {
			for _, op := range []Op{OpAdd, OpMul, OpAnd, OpOr, OpXor} {
				x, _ := EvalBin(op, bits, a, b)
				y, _ := EvalBin(op, bits, b, a)
				if x != y {
					return false
				}
			}
			return true
		}
		if err := quick.Check(commutes, nil); err != nil {
			t.Errorf("i%d commutativity: %v", bits, err)
		}
		subSelf := func(a uint64) bool {
			x, _ := EvalBin(OpSub, bits, a, a)
			return x == 0
		}
		if err := quick.Check(subSelf, nil); err != nil {
			t.Errorf("i%d x-x=0: %v", bits, err)
		}
		masked := func(a, b uint64) bool {
			for op := OpAdd; op <= OpAShr; op++ {
				r, ok := EvalBin(op, bits, a, b)
				if ok && r != Mask(bits, r) {
					return false
				}
			}
			return true
		}
		if err := quick.Check(masked, nil); err != nil {
			t.Errorf("i%d results masked: %v", bits, err)
		}
	}
}

// TestEvalCmpTrichotomy: exactly one of <, ==, > holds (signed and
// unsigned).
func TestEvalCmpTrichotomy(t *testing.T) {
	prop := func(a, b uint64) bool {
		for _, bits := range []int{8, 32, 64} {
			u := 0
			if EvalCmp(OpULt, bits, a, b) {
				u++
			}
			if EvalCmp(OpEq, bits, a, b) {
				u++
			}
			if EvalCmp(OpUGt, bits, a, b) {
				u++
			}
			s := 0
			if EvalCmp(OpSLt, bits, a, b) {
				s++
			}
			if EvalCmp(OpEq, bits, a, b) {
				s++
			}
			if EvalCmp(OpSGt, bits, a, b) {
				s++
			}
			if u != 1 || s != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisionSemantics(t *testing.T) {
	if _, ok := EvalBin(OpUDiv, 32, 5, 0); ok {
		t.Error("udiv by zero must not evaluate")
	}
	if _, ok := EvalBin(OpSRem, 32, 5, 0); ok {
		t.Error("srem by zero must not evaluate")
	}
	// INT_MIN / -1 wraps.
	r, ok := EvalBin(OpSDiv, 8, 0x80, 0xFF)
	if !ok || r != 0x80 {
		t.Errorf("sdiv INT_MIN/-1 = %x ok=%v, want 80", r, ok)
	}
	// INT_MIN %% -1 == 0.
	r, ok = EvalBin(OpSRem, 8, 0x80, 0xFF)
	if !ok || r != 0 {
		t.Errorf("srem INT_MIN%%-1 = %x, want 0", r)
	}
	// Oversized shifts.
	if r, _ := EvalBin(OpShl, 8, 1, 9); r != 0 {
		t.Error("shl by >= width must give 0")
	}
	if r, _ := EvalBin(OpAShr, 8, 0x80, 200); r != 0xFF {
		t.Error("ashr by >= width must sign-fill")
	}
}

func TestReplaceUses(t *testing.T) {
	_, f := buildDiamond()
	add := f.Blocks[1].Instrs[0]
	n := ReplaceUses(f, add, ConstInt(I32, 7))
	if n != 1 {
		t.Errorf("replaced %d uses, want 1 (the phi)", n)
	}
	if CountUses(f, add) != 0 {
		t.Error("still has uses")
	}
}

func TestRemoveUnreachable(t *testing.T) {
	m, f := buildDiamond()
	dead := f.NewBlock("dead")
	bd := NewBuilder(f, dead)
	bd.Br(f.Blocks[3]) // jumps into join, but nothing reaches dead
	// The join phi gains a bogus edge that removal must clean up.
	f.Blocks[3].Phis()[0].SetPhiIncoming(dead, ConstInt(I32, 9))
	if n := RemoveUnreachable(f); n != 1 {
		t.Fatalf("removed %d blocks, want 1", n)
	}
	if err := VerifyModule(m); err != nil {
		t.Fatal(err)
	}
}

func TestModulePrinting(t *testing.T) {
	m, _ := buildDiamond()
	text := m.String()
	for _, want := range []string{"define i32 @f", "phi i32", "icmp sgt", "ret i32"} {
		found := false
		for i := 0; i+len(want) <= len(text); i++ {
			if text[i:i+len(want)] == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("printed IR missing %q:\n%s", want, text)
		}
	}
}
