package ir

// PostDomTree holds immediate-postdominator information for a
// function's CFG, computed with the same Cooper–Harvey–Kennedy
// iteration as ComputeDom but over the reverse CFG, rooted at a
// virtual exit node that unifies every ret/unreachable block. Blocks
// from which no exit is reachable (infinite loops) have no
// postdominator and are reported by HasExit as false — clients that
// delete control flow must treat them conservatively.
type PostDomTree struct {
	fn    *Function
	exit  *Block            // virtual exit sentinel, never part of the function
	ipdom map[*Block]*Block // nil entry: block cannot reach an exit
	order map[*Block]int    // reverse postorder index on the reverse CFG
}

// ComputePostDom builds the postdominator tree of f.
func ComputePostDom(f *Function) *PostDomTree {
	pt := &PostDomTree{
		fn:    f,
		exit:  &Block{Name: "<virtual-exit>"},
		ipdom: make(map[*Block]*Block),
		order: make(map[*Block]int),
	}
	preds := f.Preds() // real preds = reverse-CFG succs

	var exits []*Block
	for _, b := range f.Blocks {
		if t := b.Term(); t != nil && (t.Op == OpRet || t.Op == OpUnreachable) {
			exits = append(exits, b)
		}
	}

	// Postorder on the reverse CFG from the virtual exit; reversing it
	// gives the RPO the CHK iteration wants (virtual exit first).
	seen := make(map[*Block]bool, len(f.Blocks))
	var post []*Block
	var visit func(b *Block)
	visit = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, p := range preds[b] {
			visit(p)
		}
		post = append(post, b)
	}
	for _, e := range exits {
		visit(e)
	}
	post = append(post, pt.exit)
	rpo := make([]*Block, len(post))
	for i, b := range post {
		rpo[len(post)-1-i] = b
	}
	for i, b := range rpo {
		pt.order[b] = i
	}

	pt.ipdom[pt.exit] = pt.exit
	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == pt.exit {
				continue
			}
			// Reverse-CFG predecessors of b: its real successors, plus the
			// virtual exit when b itself exits the function.
			var newIpdom *Block
			consider := func(s *Block) {
				if pt.ipdom[s] == nil {
					return
				}
				if newIpdom == nil {
					newIpdom = s
				} else {
					newIpdom = pt.intersect(s, newIpdom)
				}
			}
			if t := b.Term(); t != nil && (t.Op == OpRet || t.Op == OpUnreachable) {
				consider(pt.exit)
			}
			for _, s := range b.Succs() {
				consider(s)
			}
			if newIpdom != nil && pt.ipdom[b] != newIpdom {
				pt.ipdom[b] = newIpdom
				changed = true
			}
		}
	}
	return pt
}

func (pt *PostDomTree) intersect(a, b *Block) *Block {
	for a != b {
		for pt.order[a] > pt.order[b] {
			a = pt.ipdom[a]
		}
		for pt.order[b] > pt.order[a] {
			b = pt.ipdom[b]
		}
	}
	return a
}

// Ipdom returns b's immediate postdominator, or nil when it is the
// virtual exit (b exits the function directly) or b cannot reach an
// exit at all (distinguish with HasExit).
func (pt *PostDomTree) Ipdom(b *Block) *Block {
	ip := pt.ipdom[b]
	if ip == pt.exit {
		return nil
	}
	return ip
}

// HasExit reports whether some ret/unreachable block is reachable from b.
func (pt *PostDomTree) HasExit(b *Block) bool { return pt.ipdom[b] != nil }

// PostDominates reports whether a postdominates b (reflexively). False
// when either block cannot reach an exit.
func (pt *PostDomTree) PostDominates(a, b *Block) bool {
	if pt.ipdom[a] == nil || pt.ipdom[b] == nil {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := pt.ipdom[b]
		if next == b || next == nil {
			return false
		}
		if next == pt.exit {
			return false
		}
		b = next
	}
}
