package daemon

import (
	"container/list"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"overify/internal/core"
	"overify/internal/coreutils"
	"overify/internal/expr"
	"overify/internal/ir"
	"overify/internal/pipeline"
	"overify/internal/solver"
	"overify/internal/symex"
	"overify/internal/verdicts"
)

// Config sizes the daemon's shared state and admission control. The
// zero value gets sensible long-running defaults from withDefaults.
type Config struct {
	// Name identifies the daemon in handshakes and stats.
	Name string

	// MaxJobs bounds concurrently executing verify/compile jobs
	// (admission control; default NumCPU). Requests beyond the bound
	// queue up to QueueWait before being rejected as overloaded; queued
	// requests are granted round-robin across connections (FIFO within
	// a connection), so one deeply pipelined client cannot starve the
	// rest.
	MaxJobs int
	// QueueWait is how long an admitted connection's request may wait
	// for a job slot (default 30s).
	QueueWait time.Duration

	// SolverCacheCap bounds the shared solver query cache in decided
	// groups (default 1M entries; 0 keeps the default — use a negative
	// value for an unbounded cache).
	SolverCacheCap int
	// BuilderCap rotates the shared expression builder (and with it the
	// solver cache, whose keys are builder-local node ids) once the DAG
	// exceeds this many nodes (default 4M; negative = never rotate).
	// Rotation is the DAG's eviction policy: the old generation stays
	// alive for its in-flight runs and is garbage-collected when they
	// finish. Requests never observe a torn generation — each run pins
	// one (builder, cache) pair for its whole lifetime.
	BuilderCap int64

	// Verdicts, when non-nil, is the shared verdict store. Nil disables
	// verdict caching daemon-wide.
	Verdicts *verdicts.Store

	// RemoteVerdicts, when non-nil, is a connection to another daemon's
	// verdict cache service (verdictGet/verdictPut frames): before a
	// verify runs cold, the remote cache is probed and a hit is adopted
	// into the local store; a cold cacheable outcome is published back.
	// This is how a worker cluster shares one verdict cache. Remote IO
	// is best-effort — a dead peer degrades to local-only caching.
	RemoteVerdicts *Client

	// CompileCacheCap bounds the compiled-module cache (default 64
	// modules; negative = unbounded). A hit skips parse + lower +
	// optimize and keeps the per-function analysis results with it.
	CompileCacheCap int
}

func (c Config) withDefaults() Config {
	if c.Name == "" {
		c.Name = "overifyd"
	}
	if c.MaxJobs == 0 {
		c.MaxJobs = runtime.NumCPU()
	}
	if c.QueueWait == 0 {
		c.QueueWait = 30 * time.Second
	}
	switch {
	case c.SolverCacheCap == 0:
		c.SolverCacheCap = 1 << 20
	case c.SolverCacheCap < 0:
		c.SolverCacheCap = 0 // unbounded
	}
	switch {
	case c.BuilderCap == 0:
		c.BuilderCap = 4 << 20
	case c.BuilderCap < 0:
		c.BuilderCap = 0 // never rotate
	}
	switch {
	case c.CompileCacheCap == 0:
		c.CompileCacheCap = 64
	case c.CompileCacheCap < 0:
		c.CompileCacheCap = 0 // unbounded
	}
	return c
}

// generation is one (builder, solver cache) epoch. The two rotate
// together because cache keys are fingerprints of builder-local node
// ids — entries from one builder are meaningless (and dangerous) under
// another.
type generation struct {
	id      int64
	builder *expr.Builder
	cache   *solver.Cache
	// tapes shares compiled constraint tapes across the generation's
	// runs; like the cache it is keyed by builder-local fingerprints, so
	// it rotates with the builder.
	tapes *solver.TapeCache
}

// Server is the long-lived verification service. One Server holds all
// warm state; connections and requests are cheap views onto it.
type Server struct {
	cfg Config

	genMu     sync.Mutex
	gen       *generation
	rotations atomic.Int64

	compiles *compileCache

	adm      *admission // job-slot dispatcher, round-robin across connections
	draining atomic.Bool
	drainCh  chan struct{}

	active   atomic.Int64
	served   atomic.Int64
	rejected atomic.Int64

	jobsWG  sync.WaitGroup // in-flight verify/compile jobs
	connsWG sync.WaitGroup // open connections
	connsMu sync.Mutex
	conns   map[io.Closer]struct{}

	listenMu sync.Mutex
	listener net.Listener

	// testJobGate, when non-nil, is closed-over by jobs before they
	// start real work; tests use it to hold slots deterministically.
	testJobGate func()
}

// NewServer builds a server over cfg.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		compiles: newCompileCache(cfg.CompileCacheCap),
		adm:      newAdmission(cfg.MaxJobs),
		drainCh:  make(chan struct{}),
		conns:    make(map[io.Closer]struct{}),
	}
	s.gen = &generation{
		id:      1,
		builder: expr.NewConcurrentBuilder(),
		cache:   solver.NewCacheWithCap(cfg.SolverCacheCap),
		tapes:   solver.NewTapeCache(0),
	}
	return s
}

// currentGen returns the generation new runs should pin, rotating
// first if the builder outgrew its cap.
func (s *Server) currentGen() *generation {
	s.genMu.Lock()
	defer s.genMu.Unlock()
	if s.cfg.BuilderCap > 0 && s.gen.builder.NodesBuilt() > s.cfg.BuilderCap {
		s.gen = &generation{
			id:      s.gen.id + 1,
			builder: expr.NewConcurrentBuilder(),
			cache:   solver.NewCacheWithCap(s.cfg.SolverCacheCap),
			tapes:   solver.NewTapeCache(0),
		}
		s.rotations.Add(1)
	}
	return s.gen
}

// Serve accepts connections until the listener fails or Shutdown runs.
func (s *Server) Serve(l net.Listener) error {
	s.listenMu.Lock()
	s.listener = l
	s.listenMu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.connsWG.Add(1)
		go func() {
			defer s.connsWG.Done()
			s.ServeConn(conn)
		}()
	}
}

// Shutdown drains the server: no new connections or jobs are admitted,
// in-flight jobs run to completion, then every connection is closed.
// Safe to call more than once.
func (s *Server) Shutdown() {
	if s.draining.Swap(true) {
		return
	}
	close(s.drainCh)
	s.listenMu.Lock()
	if s.listener != nil {
		s.listener.Close()
	}
	s.listenMu.Unlock()
	s.jobsWG.Wait()
	s.connsMu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.connsMu.Unlock()
	s.connsWG.Wait()
}

// conn is one client connection's state: a shared writer lock (replies
// from concurrent jobs interleave at packet granularity) over the
// underlying stream.
type conn struct {
	s  *Server
	rw io.ReadWriter
	wm sync.Mutex
}

func (c *conn) reply(p *Packet) {
	c.wm.Lock()
	defer c.wm.Unlock()
	// A write error means the client is gone; jobs finish regardless.
	_ = WritePacket(c.rw, p)
}

func (c *conn) replyErr(id uint32, overloaded bool, format string, args ...any) {
	c.reply(&Packet{ID: id, Kind: KindError, Body: body(ErrorBody{
		Message: fmt.Sprintf(format, args...), Overloaded: overloaded,
	})})
}

// ServeConn speaks the packet protocol over rw until EOF, a framing
// error, or shutdown. It is the building block for both transports:
// the socket accept loop and -stdio mode call it directly.
func (s *Server) ServeConn(rw io.ReadWriter) {
	if closer, ok := rw.(io.Closer); ok {
		s.connsMu.Lock()
		s.conns[closer] = struct{}{}
		s.connsMu.Unlock()
		defer func() {
			s.connsMu.Lock()
			delete(s.conns, closer)
			s.connsMu.Unlock()
			closer.Close()
		}()
	}
	c := &conn{s: s, rw: rw}

	// Handshake: the first packet must be a matching-version hello.
	first, err := ReadPacket(rw)
	if err != nil {
		var de *DecodeError
		if errors.As(err, &de) {
			c.replyErr(0, false, "handshake: %v", err)
		}
		return
	}
	var hello Hello
	if first.Kind != KindHello || decode(first.Body, &hello) != nil {
		c.replyErr(first.ID, false, "handshake: first packet must be a hello, got %q", first.Kind)
		return
	}
	if hello.Version != ProtocolVersion {
		c.replyErr(first.ID, false, "protocol version mismatch: client %d, daemon %d", hello.Version, ProtocolVersion)
		return
	}
	c.reply(&Packet{ID: first.ID, Kind: KindHello, Body: body(Hello{Version: ProtocolVersion, Name: s.cfg.Name})})

	var jobs sync.WaitGroup
	defer jobs.Wait()
	for {
		p, err := ReadPacket(rw)
		if err != nil {
			var de *DecodeError
			if errors.As(err, &de) {
				// Sound frame, bad JSON: answer and keep serving.
				c.replyErr(0, false, "%v", err)
				continue
			}
			return // EOF or unrecoverable framing error
		}
		switch p.Kind {
		case KindStats:
			c.reply(&Packet{ID: p.ID, Kind: KindReply, Body: body(s.statsReply())})
		case KindVerdictGet, KindVerdictPut:
			// Cache traffic answers inline, outside admission control: a
			// worker mid-explore probing the shared verdict cache must
			// never queue behind the very explore jobs it is serving.
			s.verdictFrame(c, p)
		case KindVerify, KindCompile, KindDistExplore:
			jobs.Add(1)
			go func(p *Packet) {
				defer jobs.Done()
				s.runJob(c, p)
			}(p)
		default:
			c.replyErr(p.ID, false, "unknown request kind %q", p.Kind)
		}
	}
}

// runJob pushes one request through admission control and dispatches.
func (s *Server) runJob(c *conn, p *Packet) {
	if s.draining.Load() {
		s.rejected.Add(1)
		c.replyErr(p.ID, true, "daemon is draining")
		return
	}
	switch s.adm.acquire(c, s.cfg.QueueWait, s.drainCh) {
	case timedOut:
		s.rejected.Add(1)
		c.replyErr(p.ID, true, "daemon overloaded: no job slot within %s (max %d jobs)", s.cfg.QueueWait, s.cfg.MaxJobs)
		return
	case drained:
		s.rejected.Add(1)
		c.replyErr(p.ID, true, "daemon is draining")
		return
	}
	s.jobsWG.Add(1)
	s.active.Add(1)
	defer func() {
		s.adm.release()
		s.active.Add(-1)
		s.jobsWG.Done()
	}()
	if s.testJobGate != nil {
		s.testJobGate()
	}

	switch p.Kind {
	case KindVerify:
		var req VerifyRequest
		if err := decode(p.Body, &req); err != nil {
			c.replyErr(p.ID, false, "verify: bad request body: %v", err)
			return
		}
		reply, err := s.Verify(&req)
		if err != nil {
			c.replyErr(p.ID, false, "verify: %v", err)
			return
		}
		s.served.Add(1)
		c.reply(&Packet{ID: p.ID, Kind: KindReply, Body: body(reply)})
	case KindCompile:
		var req CompileRequest
		if err := decode(p.Body, &req); err != nil {
			c.replyErr(p.ID, false, "compile: bad request body: %v", err)
			return
		}
		reply, err := s.Compile(&req)
		if err != nil {
			c.replyErr(p.ID, false, "compile: %v", err)
			return
		}
		s.served.Add(1)
		c.reply(&Packet{ID: p.ID, Kind: KindReply, Body: body(reply)})
	case KindDistExplore:
		var req DistExploreRequest
		if err := decode(p.Body, &req); err != nil {
			c.replyErr(p.ID, false, "distExplore: bad request body: %v", err)
			return
		}
		reply, err := s.DistExplore(&req)
		if err != nil {
			c.replyErr(p.ID, false, "distExplore: %v", err)
			return
		}
		s.served.Add(1)
		c.reply(&Packet{ID: p.ID, Kind: KindReply, Body: body(reply)})
	}
}

// verdictFrame answers one verdictGet/verdictPut inline.
func (s *Server) verdictFrame(c *conn, p *Packet) {
	switch p.Kind {
	case KindVerdictGet:
		var req VerdictGetRequest
		if err := decode(p.Body, &req); err != nil {
			c.replyErr(p.ID, false, "verdictGet: bad request body: %v", err)
			return
		}
		reply := &VerdictGetReply{}
		if s.cfg.Verdicts != nil {
			reply.Entry, reply.Found = s.cfg.Verdicts.Get(req.Key)
		}
		c.reply(&Packet{ID: p.ID, Kind: KindReply, Body: body(reply)})
	case KindVerdictPut:
		var req VerdictPutRequest
		if err := decode(p.Body, &req); err != nil {
			c.replyErr(p.ID, false, "verdictPut: bad request body: %v", err)
			return
		}
		reply := &VerdictPutReply{}
		if s.cfg.Verdicts != nil && req.Entry != nil && req.Key != "" {
			if err := s.cfg.Verdicts.Put(req.Key, req.Entry); err != nil {
				c.replyErr(p.ID, false, "verdictPut: %v", err)
				return
			}
			reply.Stored = true
		}
		c.reply(&Packet{ID: p.ID, Kind: KindReply, Body: body(reply)})
	}
}

// resolveSource maps the request's source/prog convention onto (name,
// source text).
func resolveSource(name, source, prog string) (string, string, error) {
	switch {
	case prog != "" && source != "":
		return "", "", fmt.Errorf("request carries both source and corpus program %q", prog)
	case prog != "":
		p, ok := coreutils.Get(prog)
		if !ok {
			return "", "", fmt.Errorf("unknown corpus program %q", prog)
		}
		return p.Name, p.Src, nil
	case source != "":
		if name == "" {
			name = "<source>"
		}
		return name, source, nil
	default:
		return "", "", fmt.Errorf("request carries neither source nor a corpus program")
	}
}

// compileFor compiles (or serves from the module cache) one request's
// program. The cache key covers everything that shapes the module:
// source text, level, explicit pipeline, the level-implied libc, and
// the slicing configuration.
func (s *Server) compileFor(name, src, level, passes string, jobs int, slice bool, checks ir.CheckSet) (*core.Compiled, bool, error) {
	lvl, err := pipeline.ParseLevel(levelOrDefault(level))
	if err != nil {
		return nil, false, err
	}
	var pipeSpec *pipeline.PipelineSpec
	if passes != "" {
		spec, err := pipeline.ParsePipeline(passes)
		if err != nil {
			return nil, false, err
		}
		pipeSpec = &spec
	}
	lk := core.DefaultLibc(lvl)

	sliceKey := ""
	if slice {
		sliceKey = "slice:" + checks.String()
	}
	h := solver.NewHasher()
	for _, part := range []string{name, src, lvl.String(), passes, lk.String(), sliceKey} {
		h.WriteString(part)
		h.WriteString("\x00")
	}
	key := h.Sum().Hex()
	if c, ok := s.compiles.get(key); ok {
		return c, true, nil
	}
	cfg := pipeline.LevelConfig(lvl)
	cfg.Jobs = jobs
	cfg.Pipeline = pipeSpec
	cfg.Slice = slice
	cfg.SliceChecks = checks
	c, err := core.CompileWithConfig(name, src, cfg, lk)
	if err != nil {
		return nil, false, err
	}
	s.compiles.put(key, c)
	return c, false, nil
}

func levelOrDefault(level string) string {
	if level == "" {
		return "-OVERIFY"
	}
	return level
}

// Verify executes one verify request against the warm state. It is
// exported (and used directly by the in-process bench harness) but the
// normal entry is a KindVerify packet.
func (s *Server) Verify(req *VerifyRequest) (*VerifyReply, error) {
	name, src, err := resolveSource(req.Name, req.Source, req.Prog)
	if err != nil {
		return nil, err
	}
	entry := req.Entry
	if entry == "" {
		entry = "umain"
	}
	strat, err := symex.ParseSearch(searchOrDefault(req.Search))
	if err != nil {
		return nil, err
	}
	checks, err := ir.ParseCheckSet(req.Checks)
	if err != nil {
		return nil, err
	}

	compileStart := time.Now()
	c, compileHit, err := s.compileFor(name, src, req.Level, req.Passes, req.Workers, req.Slice, checks)
	if err != nil {
		return nil, err
	}
	compileMS := float64(time.Since(compileStart)) / float64(time.Millisecond)

	gen := s.currentGen()
	opts := core.VerifyOptions{InputBytes: req.InputBytes, Checks: checks}
	if !req.NoVerdicts {
		opts.Verdicts = s.cfg.Verdicts
	}
	opts.Engine.Timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	opts.Engine.MaxInstrs = req.MaxInstrs
	opts.Engine.Strategy = strat
	opts.Engine.Seed = req.Seed
	opts.Engine.CoverTarget = req.Cover
	opts.Engine.Workers = req.Workers
	opts.Engine.Builder = gen.builder
	opts.Engine.Cache = gen.cache
	opts.Engine.Tapes = gen.tapes

	// Shared verdict cache: adopt a remote hit into the local store so
	// the verify below is served warm; remember the key when the remote
	// missed too, to publish a cold cacheable outcome back. Remote IO is
	// best-effort — errors degrade to local-only caching.
	var remoteKey verdicts.Key
	if !req.NoVerdicts && s.cfg.RemoteVerdicts != nil && s.cfg.Verdicts != nil {
		if key, ok := c.VerdictKey(entry, opts); ok {
			if _, hit := s.cfg.Verdicts.Get(key); !hit {
				if e, found, err := s.cfg.RemoteVerdicts.VerdictGet(key); err == nil && found {
					_ = s.cfg.Verdicts.Put(key, e)
				} else if err == nil {
					remoteKey = key
				}
			}
		}
	}

	verifyStart := time.Now()
	rep, err := c.Verify(entry, opts)
	if err != nil {
		return nil, err
	}
	verifyMS := float64(time.Since(verifyStart)) / float64(time.Millisecond)

	if remoteKey != "" && rep.Stats.VerdictCacheHits == 0 && verdicts.Cacheable(rep) {
		_, _ = s.cfg.RemoteVerdicts.VerdictPut(remoteKey,
			verdicts.FromReport(remoteKey, name, entry, c.Level.String(), rep))
	}

	reply := &VerifyReply{
		Render:          verdicts.Render(rep),
		Name:            name,
		Level:           c.Level.String(),
		Entry:           entry,
		Paths:           rep.Stats.Paths,
		Instrs:          rep.Stats.Instrs,
		TimedOut:        rep.Stats.TimedOut,
		VerdictCacheHit: rep.Stats.VerdictCacheHits > 0,
		CompileCacheHit: compileHit,
		SolverQueries:   rep.Stats.SolverStats.Queries,
		SolverWarmHits: rep.Stats.SolverStats.CacheHits +
			rep.Stats.SolverStats.PartitionHits +
			rep.Stats.SolverStats.ModelReuseHits,
		SolverSearches: rep.Stats.SolverStats.TapeCompiles + rep.Stats.SolverStats.TapeReuses,
		TapeReuses:     rep.Stats.SolverStats.TapeReuses,
		Generation:     gen.id,
		CompileMS:      compileMS,
		VerifyMS:       verifyMS,
	}
	for _, b := range rep.Bugs {
		reply.Bugs = append(reply.Bugs, BugReport{
			Kind: b.Kind.String(), Msg: b.Msg, Where: b.Where,
			Input: append([]byte(nil), b.Input...),
		})
	}
	return reply, nil
}

func searchOrDefault(s string) string {
	if s == "" {
		return "dfs"
	}
	return s
}

// DistExplore drains one encoded frontier shard: compile (or cache-hit)
// the coordinator's exact module, decode the states against this
// generation's builder, run them to exhaustion, and report the
// schedule-invariant outcome. Exported for the in-process harnesses;
// the normal entry is a KindDistExplore packet.
func (s *Server) DistExplore(req *DistExploreRequest) (*DistExploreReply, error) {
	name, src, err := resolveSource(req.Name, req.Source, req.Prog)
	if err != nil {
		return nil, err
	}
	strat, err := symex.ParseSearch(searchOrDefault(req.Search))
	if err != nil {
		return nil, err
	}
	checks, err := ir.ParseCheckSet(req.Checks)
	if err != nil {
		return nil, err
	}
	c, compileHit, err := s.compileFor(name, src, req.Level, req.Passes, req.Workers, req.Slice, checks)
	if err != nil {
		return nil, err
	}

	gen := s.currentGen()
	opts := symex.Options{
		Timeout:   time.Duration(req.TimeoutMS) * time.Millisecond,
		MaxInstrs: req.MaxInstrs,
		Strategy:  strat,
		Seed:      req.Seed,
		Workers:   req.Workers,
		Builder:   gen.builder,
		Cache:     gen.cache,
		Tapes:     gen.tapes,
		Checks:    checks,
	}
	opts.Solver.Portfolio = req.Portfolio
	opts.Solver.PortfolioStall = req.PortfolioStall

	eng := symex.NewEngine(c.Mod, opts)
	states, err := eng.DecodeStates(req.States)
	if err != nil {
		return nil, fmt.Errorf("decode shard: %w", err)
	}
	start := time.Now()
	rep := eng.RunStates(states)
	return &DistExploreReply{
		Stats:           rep.Stats,
		Bugs:            rep.Bugs,
		Covered:         eng.CoveredBlockNames(),
		NStates:         len(states),
		Generation:      gen.id,
		CompileCacheHit: compileHit,
		ExploreMS:       float64(time.Since(start)) / float64(time.Millisecond),
	}, nil
}

// Compile executes one compile-only request.
func (s *Server) Compile(req *CompileRequest) (*CompileReply, error) {
	name, src, err := resolveSource(req.Name, req.Source, req.Prog)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	c, hit, err := s.compileFor(name, src, req.Level, req.Passes, 0, false, ir.AllChecks)
	if err != nil {
		return nil, err
	}
	reply := &CompileReply{
		Name:            name,
		Level:           c.Level.String(),
		CompileMS:       float64(time.Since(start)) / float64(time.Millisecond),
		PassInvocations: int64(c.Result.PassInvocations),
		SkippedRuns:     int64(c.Result.SkippedFuncRuns),
		AnalysisHitRate: c.Result.Analysis.HitRate(),
		CompileCacheHit: hit,
	}
	if req.IR {
		reply.IR = c.Mod.String()
	}
	return reply, nil
}

// Preload compiles every source file matching glob into the module
// cache and probes the verdict store for each, so a daemon's first
// client request on those programs hits warm caches instead of paying
// the cold compile. Run it before accepting connections. Returns how
// many files were loaded; a file that fails to compile aborts the
// preload with its error (a preload list is configuration — a broken
// entry should be loud, not skipped).
func (s *Server) Preload(glob string) (int, error) {
	paths, err := filepath.Glob(glob)
	if err != nil {
		return 0, fmt.Errorf("preload: bad glob %q: %w", glob, err)
	}
	sort.Strings(paths)
	n := 0
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			return n, fmt.Errorf("preload %s: %w", path, err)
		}
		c, _, err := s.compileFor(path, string(data), "", "", 0, false, ir.AllChecks)
		if err != nil {
			return n, fmt.Errorf("preload %s: %w", path, err)
		}
		if s.cfg.Verdicts != nil {
			// Probing with default verify options mirrors what a plain
			// verify request would ask; a stored outcome is now a warm
			// in-memory hit for the first client.
			if key, ok := c.VerdictKey("umain", core.VerifyOptions{}); ok {
				_, _ = s.cfg.Verdicts.Get(key)
			}
		}
		n++
	}
	return n, nil
}

// statsReply snapshots the daemon counters.
func (s *Server) statsReply() *StatsReply {
	r := &StatsReply{Name: s.cfg.Name}
	s.genMu.Lock()
	gen := s.gen
	s.genMu.Unlock()
	r.Generation = gen.id

	r.Jobs.Active = s.active.Load()
	r.Jobs.Served = s.served.Load()
	r.Jobs.Rejected = s.rejected.Load()
	r.Jobs.MaxJobs = s.cfg.MaxJobs

	r.Builder.Nodes = gen.builder.NodesBuilt()
	r.Builder.Hits = gen.builder.CacheHits()
	r.Builder.Cap = s.cfg.BuilderCap
	r.Builder.Rotation = s.rotations.Load()

	snap := gen.cache.Snapshot()
	r.SolverCache.Entries = snap.Entries
	r.SolverCache.Hits = snap.Hits
	r.SolverCache.Misses = snap.Misses
	r.SolverCache.Evictions = snap.Evictions
	r.SolverCache.Capacity = snap.Capacity

	if v := s.cfg.Verdicts; v != nil {
		r.Verdicts.Dir = v.Dir()
		r.Verdicts.Entries = v.Len()
		r.Verdicts.Hits = v.Hits()
		r.Verdicts.Misses = v.Misses()
		r.Verdicts.Stores = v.Stores()
		r.Verdicts.Evictions = v.Evictions()
		r.Verdicts.Limit = v.Limit()
	}

	r.Compiles.Entries = s.compiles.len()
	r.Compiles.Hits = s.compiles.hits.Load()
	r.Compiles.Misses = s.compiles.misses.Load()
	r.Compiles.Evictions = s.compiles.evictions.Load()
	r.Compiles.Capacity = s.compiles.cap
	return r
}

func decode(raw []byte, v any) error {
	if len(raw) == 0 {
		return fmt.Errorf("empty body")
	}
	return json.Unmarshal(raw, v)
}

// compileCache is a mutex-guarded LRU of compiled modules. Values are
// shared by concurrent verifies — a compiled module is read-only after
// optimization, which the pipeline-equivalence suite relies on too.
type compileCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	lru *list.List // of compileSlot; front = most recent

	hits, misses, evictions atomic.Int64
}

type compileSlot struct {
	key string
	c   *core.Compiled
}

func newCompileCache(cap int) *compileCache {
	return &compileCache{cap: cap, m: make(map[string]*list.Element), lru: list.New()}
}

func (cc *compileCache) get(key string) (*core.Compiled, bool) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.m[key]; ok {
		cc.lru.MoveToFront(el)
		cc.hits.Add(1)
		return el.Value.(compileSlot).c, true
	}
	cc.misses.Add(1)
	return nil, false
}

func (cc *compileCache) put(key string, c *core.Compiled) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if el, ok := cc.m[key]; ok { // concurrent compile of the same key: keep the resident one
		cc.lru.MoveToFront(el)
		return
	}
	cc.m[key] = cc.lru.PushFront(compileSlot{key: key, c: c})
	for cc.cap > 0 && cc.lru.Len() > cc.cap {
		el := cc.lru.Back()
		cc.lru.Remove(el)
		delete(cc.m, el.Value.(compileSlot).key)
		cc.evictions.Add(1)
	}
}

func (cc *compileCache) len() int {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.lru.Len()
}
